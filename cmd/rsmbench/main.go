// Command rsmbench runs the experiments from EXPERIMENTS.md by ID and prints
// their tables and figures.
//
// Usage:
//
//	rsmbench -exp t1            # one experiment
//	rsmbench -exp all -dur 3s   # the full suite, 3s of load per run
//	rsmbench -exp lin -seed 7   # linearizability chaos check from a seed
//	rsmbench -exp read          # read fast path: mode x read-ratio sweep
//	rsmbench -exp write         # write path: pipeline depth x apply mode sweep
//	rsmbench -exp reconfig      # R2 reconfig-latency shootout (speculative start)
//	rsmbench -exp catchup       # K1 lagging-replica catch-up (checkpoints vs replay)
//	rsmbench -exp mega          # C1 100k-session open-loop megaload (smart vs naive)
//
// Experiment IDs: t1 t1d f1 t2 f2 t3 f3 t4 f4 t5 f5 lin read write shard reconfig catchup mega megalin (see DESIGN.md §4).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/reconfig"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("exp", "all", "experiment ID (t1,t1d,f1,t2,f2,t3,f3,t4,f4,t5,f5,lin,read,write,shard,reconfig,catchup,mega,megalin or all)")
		dur     = flag.Duration("dur", 2*time.Second, "load duration per run")
		clients = flag.Int("clients", 4, "closed-loop client count")
		seed    = flag.Int64("seed", 1, "nemesis schedule seed (lin experiment)")
		rate    = flag.Float64("rate", 6000, "offered open-loop load, ops/s (mega experiment)")
		cpuProf = flag.String("pprof", "", "write a CPU profile covering the selected experiments to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		// A stray positional arg (e.g. `rsmbench t1d` instead of
		// `rsmbench -exp t1d`) would otherwise silently run the full suite.
		fmt.Fprintf(os.Stderr, "unexpected argument %q (use -exp %s)\n", flag.Arg(0), flag.Arg(0))
		return 2
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}

	tun := harness.DefaultTuning()
	ids := strings.Split(strings.ToLower(*exp), ",")
	if *exp == "all" {
		ids = []string{"t1", "t1d", "f1", "t2", "f2", "t3", "f3", "t4", "f4", "t5", "f5"}
	}
	for _, id := range ids {
		fmt.Printf("=== experiment %s ===\n", strings.ToUpper(id))
		if err := runOne(id, tun, *dur, *clients, *seed, *rate); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			return 1
		}
		fmt.Println()
	}
	return 0
}

func runOne(id string, tun harness.Tuning, dur time.Duration, clients int, seed int64, rate float64) error {
	allSystems := []harness.SystemKind{harness.Composed, harness.StopTheWorld, harness.Inband}
	switch id {
	case "t1":
		res, err := harness.RunT1StaticScaling(tun, []int{3, 5, 7, 9}, dur, clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "t1d":
		res, err := harness.RunT1Durable(tun,
			[]string{harness.StorageMem, harness.StorageFile, harness.StorageWAL}, 3, dur, clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "f1":
		for _, kind := range allSystems {
			res, err := harness.RunDisruption(kind, tun, dur, clients, 0)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
		}
	case "t2":
		var results []harness.DisruptionResult
		sizes := []int{16 << 10, 256 << 10, 1 << 20, 8 << 20}
		harness.WarmHeap(tun, sizes[len(sizes)-1])
		for _, size := range sizes {
			for _, kind := range allSystems {
				res, err := harness.RunDisruptionMedian(kind, tun, dur, clients, size)
				if err != nil {
					return err
				}
				results = append(results, res)
				if kind == harness.Composed {
					// Monolithic-transfer ablation row: same system, the
					// pre-chunking wedge and single-shot fetch.
					mt := tun
					mt.Mono = true
					res, err := harness.RunDisruptionMedian(kind, mt, dur, clients, size)
					if err != nil {
						return err
					}
					results = append(results, res)
				}
			}
		}
		fmt.Print(harness.RenderDisruptionTable(results))
	case "f2":
		res, err := harness.RunF2StateTransfer(tun, []int{16 << 10, 256 << 10, 1 << 20}, dur, clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "t3":
		res, err := harness.RunT3Failover(tun, 2*dur, clients, 200*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "f3":
		res, err := harness.RunF3Elastic(tun, dur/2, clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "t4":
		res, err := harness.RunT4MessageCost(tun, 300, clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "f4":
		res, err := harness.RunF4Alpha(tun, []int{1, 2, 4, 8, 16, 32}, dur, 2*clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "t5":
		var results []harness.DisruptionResult
		for _, kind := range allSystems {
			res, err := harness.RunDisruption(kind, tun, dur, clients, 0)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
		fmt.Print(harness.RenderLatencyTable(results))
	case "f5":
		var results []harness.DisruptionResult
		f5sizes := []int{8 << 10, 512 << 10, 4 << 20}
		harness.WarmHeap(tun, f5sizes[len(f5sizes)-1])
		for _, size := range f5sizes {
			for _, kind := range []harness.SystemKind{harness.Composed, harness.Inband} {
				res, err := harness.RunDisruptionMedian(kind, tun, dur, clients, size)
				if err != nil {
					return err
				}
				results = append(results, res)
				if kind == harness.Composed {
					mt := tun
					mt.Mono = true
					res, err := harness.RunDisruptionMedian(kind, mt, dur, clients, size)
					if err != nil {
						return err
					}
					results = append(results, res)
				}
			}
		}
		fmt.Print(harness.RenderCrossover(results))
	case "read":
		// R1 runs on the durable WAL backend with synced writes: that is
		// where the fast path's "no log append, no fsync" advantage is
		// real rather than an artifact of free in-memory writes. More
		// clients than the other experiments so concurrent reads share
		// probe rounds.
		rt := tun
		rt.Storage = harness.StorageWAL
		rt.SyncWrites = true
		rc := clients
		if rc < 24 {
			rc = 24
		}
		res, err := harness.RunReadScaling(rt,
			[]reconfig.ReadMode{reconfig.ReadModeLog, reconfig.ReadModeIndex, reconfig.ReadModeLease},
			[]int{3, 5}, []float64{0, 0.5, 0.9, 0.99}, dur, rc)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "write":
		// W1 runs on the durable WAL backend with synced writes — the
		// configuration where pipeline depth governs how many fsync+broadcast
		// rounds overlap — and drives a write-only workload. Many more
		// clients than the other experiments so the closed-loop phase
		// saturates even deep pipelines, and an open-loop arrival rate
		// chosen above the unpipelined configuration's capacity but below
		// the pipelined one's, so the fixed-rate phase separates "keeping
		// up" from "underwater" instead of idling below both.
		wt := tun
		wc := clients
		if wc < 64 {
			wc = 64
		}
		res, err := harness.RunW1WritePath(wt, []int{1, 2, 4, 8, 16}, dur, wc, 4000)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "shard":
		// S1 drives the multi-group sharded runtime on the durable WAL
		// backend: the same 3 processes and client count at every row, only
		// the group count changes. Enough clients that 8 independent event
		// loops all stay busy; the interesting columns are aggregate ops/s
		// (rising with groups on multi-core) and syncs/op (falling — the
		// shared WAL coalesces fsyncs across groups).
		sc := clients
		if sc < 64 {
			sc = 64
		}
		res, err := harness.RunShardScaling(tun, []int{1, 2, 4, 8}, dur, sc)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "reconfig":
		// R2 is the flagship comparative experiment: speculative successor
		// start vs the wait-for-transfer ablation vs the in-band baseline,
		// at 8MB of preloaded state — the size where the transfer truly
		// gates the successor and time-to-first-decide separates the
		// designs.
		res, err := harness.RunR2ReconfigShootout(tun, 8<<20, dur, clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "catchup":
		// K1: a member lags 50k decided slots behind at 8MB of state, then
		// the link heals. The checkpoint arm fetches the survivors' newest
		// mid-log checkpoint (the truncated log cannot be replayed); the
		// NoCheckpoints ablation replays every missed slot. More clients
		// than the default so driving the 50k-slot lag doesn't dominate
		// wall-clock time.
		cc := clients
		if cc < 32 {
			cc = 32
		}
		res, err := harness.RunK1Catchup(tun, 8<<20, 50000, cc)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "mega":
		// C1 drives 100k open-loop sessions (or -clients if >= 1000) through
		// a reconfiguration storm via the real client library: smart arm
		// (shared directory + admission control) vs naive ablation. The
		// offered rate sits at the storm-capacity edge, where the ablation's
		// unbounded queues collapse and shedding keeps every op accounted.
		sessions := 100000
		if clients >= 1000 {
			sessions = clients
		}
		mdur := dur
		if mdur < 10*time.Second {
			mdur = 10 * time.Second
		}
		mt := tun
		mt.SubmitQueue = 256
		res, err := harness.RunC1Megaload(mt, sessions, rate, mdur)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if res.Smart.Silent != 0 {
			return fmt.Errorf("smart arm had %d silent drops", res.Smart.Silent)
		}
	case "megalin":
		res, err := harness.RunMegaLin(tun, seed, 10000, 2000, dur)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if res.Unknown || !res.Linearizable {
			return fmt.Errorf("linearizability check did not pass (seed %d)", seed)
		}
	case "lin":
		res, err := harness.RunLin(tun, seed, dur, clients)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if res.Unknown || !res.Linearizable {
			return fmt.Errorf("linearizability check did not pass (seed %d)", seed)
		}
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
