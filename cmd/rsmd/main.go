// Command rsmd hosts a complete reconfigurable-SMR key/value cluster in one
// process and exposes an interactive console for exploring it: submit
// operations, reconfigure live, crash and restart replicas, inspect the
// configuration chain.
//
// Usage:
//
//	rsmd -n 3 -spares 2                  # simulated network, in-memory stores
//	rsmd -n 3 -spares 2 -tcp             # real loopback TCP sockets
//	rsmd -n 3 -store wal -fsync          # group-commit WAL persistence
//	rsmd -n 3 -store file -dir /tmp/rsm  # file-per-key persistence at a path
//
// Console commands:
//
//	put <key> <value>      write through the replicated log
//	get <key>              read through the replicated log
//	del <key>              delete a key
//	members                show the current configuration
//	reconfig <id> ...      change membership to the listed node IDs
//	chain                  print the configuration chain
//	crash <id>             kill a replica process (store survives)
//	restart <id>           restart a crashed replica from its store
//	stats                  per-node counters
//	help | quit
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := 3
	spares := 2
	useTCP := false
	store := "mem"
	storeDir := ""
	fsync := false
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-n":
			if i+1 < len(args) {
				i++
				fmt.Sscanf(args[i], "%d", &n)
			}
		case "-spares":
			if i+1 < len(args) {
				i++
				fmt.Sscanf(args[i], "%d", &spares)
			}
		case "-tcp":
			useTCP = true
		case "-store":
			if i+1 < len(args) {
				i++
				store = args[i]
			}
		case "-dir":
			if i+1 < len(args) {
				i++
				storeDir = args[i]
			}
		case "-fsync":
			fsync = true
		default:
			fmt.Fprintf(os.Stderr, "unknown flag %q\n", args[i])
			return 2
		}
	}
	if n < 1 {
		n = 1
	}
	switch store {
	case "mem", "file", "wal":
	default:
		fmt.Fprintf(os.Stderr, "unknown store %q (want mem, file or wal)\n", store)
		return 2
	}

	c := cluster.New(cluster.Config{
		Transport:  transport.Options{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		TCP:        useTCP,
		Node:       cluster.FastOptions(),
		Factory:    statemachine.NewKVMachine,
		Storage:    store,
		StorageDir: storeDir,
		SyncWrites: fsync,
	})
	defer c.Close()

	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cfg, err := c.Bootstrap(members...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bootstrap:", err)
		return 1
	}
	for i := 0; i < spares; i++ {
		id := types.NodeID(fmt.Sprintf("s%d", i+1))
		if _, err := c.AddSpare(id); err != nil {
			fmt.Fprintln(os.Stderr, "spare:", err)
			return 1
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	if err := c.WaitServing(ctx, members...); err != nil {
		cancel()
		fmt.Fprintln(os.Stderr, "cluster never served:", err)
		return 1
	}
	cancel()

	cl := c.NewClient(client.Options{})
	mode := "simulated network"
	if useTCP {
		mode = "loopback TCP"
	}
	durability := store
	if fsync {
		durability += "+fsync"
	}
	fmt.Printf("cluster up: %s (+%d spares, %s, store=%s). Type 'help' for commands.\n", cfg, spares, mode, durability)

	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("rsm> ")
		if !scanner.Scan() {
			fmt.Println()
			return 0
		}
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		if done := execute(c, cl, fields); done {
			return 0
		}
	}
}

func execute(c *cluster.Cluster, cl *client.Client, fields []string) (quit bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	switch fields[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("put|get|del|members|reconfig|chain|crash|restart|stats|quit")
	case "put":
		if len(fields) < 3 {
			fmt.Println("usage: put <key> <value>")
			return
		}
		reply, err := cl.Submit(ctx, statemachine.EncodePut(fields[1], []byte(strings.Join(fields[2:], " "))))
		report(reply, err)
	case "get":
		if len(fields) != 2 {
			fmt.Println("usage: get <key>")
			return
		}
		reply, err := cl.Submit(ctx, statemachine.EncodeGet(fields[1]))
		if err == nil && statemachine.ReplyStatus(reply) == statemachine.StatusOK {
			fmt.Printf("%q\n", statemachine.ReplyPayload(reply))
			return
		}
		report(reply, err)
	case "del":
		if len(fields) != 2 {
			fmt.Println("usage: del <key>")
			return
		}
		reply, err := cl.Submit(ctx, statemachine.EncodeDelete(fields[1]))
		report(reply, err)
	case "members":
		cfg, err := cl.Locate(ctx)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(cfg)
	case "reconfig":
		if len(fields) < 2 {
			fmt.Println("usage: reconfig <node> [node...]")
			return
		}
		ids := make([]types.NodeID, 0, len(fields)-1)
		for _, f := range fields[1:] {
			ids = append(ids, types.NodeID(f))
		}
		cfg, err := cl.Reconfigure(ctx, ids)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("now", cfg)
	case "chain":
		res, err := cl.Chain(ctx)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("initial:", res.Initial)
		for _, rec := range res.Records {
			fmt.Printf("  cfg%d --wedged@%d--> %s\n", rec.From, rec.WedgeSlot, rec.To)
		}
	case "crash":
		if len(fields) != 2 {
			fmt.Println("usage: crash <node>")
			return
		}
		c.Crash(types.NodeID(fields[1]))
		fmt.Println("crashed", fields[1])
	case "restart":
		if len(fields) != 2 {
			fmt.Println("usage: restart <node>")
			return
		}
		if _, err := c.Restart(types.NodeID(fields[1])); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("restarted", fields[1])
	case "stats":
		for _, id := range c.Nodes() {
			n := c.Node(id)
			if n == nil {
				continue
			}
			st := n.Stats()
			cfgID, slot := n.AppliedSlot()
			fmt.Printf("  %-4s cfg%d@%d applied=%d wedges=%d fetched=%d served=%d violations=%d\n",
				id, cfgID, slot, st.Applied, st.Wedges, st.SnapshotsFetched, st.SnapshotsServed, st.InvariantViolations)
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", fields[0])
	}
	return false
}

func report(reply []byte, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(statemachine.ReplyStatus(reply))
}
