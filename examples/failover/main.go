// Failover: a replica crashes; the service keeps running on the surviving
// quorum, and a reconfiguration replaces the dead node with a standby —
// restoring full fault-tolerance without restarting the service.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	c := cluster.New(cluster.Config{
		Transport: transport.Options{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		Node:      cluster.FastOptions(),
		Factory:   statemachine.NewBankMachine,
	})
	defer c.Close()

	if _, err := c.Bootstrap("n1", "n2", "n3"); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		return err
	}
	if _, err := c.AddSpare("standby"); err != nil {
		return err
	}

	cl := c.NewClient(client.Options{})
	mustOK(cl.Submit(ctx, statemachine.EncodeOpen("alice", 100)))
	mustOK(cl.Submit(ctx, statemachine.EncodeOpen("bob", 100)))
	mustOK(cl.Submit(ctx, statemachine.EncodeTransfer("alice", "bob", 30)))
	fmt.Println("bank open; alice→bob transfer done")

	// Disaster: n3 dies hard.
	crashAt := time.Now()
	c.Crash("n3")
	fmt.Println("n3 crashed")

	// The surviving majority still serves (2 of 3).
	mustOK(cl.Submit(ctx, statemachine.EncodeTransfer("bob", "alice", 10)))
	fmt.Println("still serving on {n1,n2} — quorum holds")

	// Repair: replace n3 with the standby via reconfiguration. The standby
	// fetches the bank state (including session dedup tables) and joins.
	cfg, err := cl.Reconfigure(ctx, []types.NodeID{"n1", "n2", "standby"})
	if err != nil {
		return err
	}
	if err := c.WaitServing(ctx, "standby"); err != nil {
		return err
	}
	fmt.Printf("repaired in %v: now %s\n", time.Since(crashAt).Round(time.Millisecond), cfg)

	// Full fault tolerance is back: the conservation invariant held
	// through crash + repair.
	reply, err := cl.Submit(ctx, statemachine.EncodeTotal())
	if err != nil {
		return err
	}
	total, err := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
	if err != nil {
		return err
	}
	fmt.Printf("total balance after failover: %d (expected 200)\n", total)
	if total != 200 {
		return fmt.Errorf("conservation violated: %d", total)
	}
	return nil
}

func mustOK(reply []byte, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		os.Exit(1)
	}
	if st := statemachine.ReplyStatus(reply); st != statemachine.StatusOK {
		fmt.Fprintln(os.Stderr, "op status:", st)
		os.Exit(1)
	}
}
