// Sharded: the multi-group runtime. Three processes host four independent
// RSM groups over ONE shared transport and ONE shared WAL per process; a
// hash-partitioned router spreads the keyspace across the groups and
// follows generation-stamped redirects when shards move. A shard's group
// is then reconfigured onto new machines (migration-via-reconfiguration)
// while the other groups keep serving.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/router"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sharded:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A group manager: each process is ONE endpoint and ONE store, shared
	//    by every group hosted there. Group traffic is demultiplexed by the
	//    GroupID in the transport frame; group state is namespaced by a key
	//    prefix in the shared WAL, so all groups' records coalesce into the
	//    same group-commit fsyncs.
	m := cluster.NewGroupManager(cluster.Config{
		Transport: transport.Options{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		Node:      cluster.FastOptions(),
	})
	defer m.Close()

	// 2. Partition the keyspace: hash shards split evenly across four
	//    groups, each group replicated n=3 on the same three processes.
	gids := []types.GroupID{1, 2, 3, 4}
	smap, err := router.SplitShards(gids)
	if err != nil {
		return err
	}
	home := []types.NodeID{"p1", "p2", "p3"}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, gid := range gids {
		if err := m.CreateGroup(gid, home, router.PartitionedFactory(smap.ShardsOf(gid), smap.Gen)); err != nil {
			return err
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			return err
		}
	}
	ctl := router.NewController(m, smap)
	rt := router.New(m, ctl)
	fmt.Printf("serving: %d groups x n=%d on %d processes, %d shards\n",
		len(gids), len(home), len(home), len(smap.Owner))

	// 3. Routed writes: the router hashes each key to a shard, wraps the op
	//    with the shard's generation stamp, and submits to the owning group.
	submit := func(client types.NodeID, seq uint64, key string, op []byte) ([]byte, error) {
		var lastErr error
		for i := 0; i < 200; i++ {
			attempt, cancel := context.WithTimeout(ctx, time.Second)
			reply, err := rt.Submit(attempt, client, seq, key, op)
			cancel()
			if err == nil {
				return reply, nil
			}
			lastErr = err
			time.Sleep(5 * time.Millisecond)
		}
		return nil, lastErr
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("user-%04d", i)
		if _, err := submit("demo", uint64(i+1), key, statemachine.EncodePut(key, []byte("v1"))); err != nil {
			return err
		}
	}
	for _, gs := range m.PerGroupStats() {
		fmt.Printf("  group %d: applied=%d shards=%d\n", gs.Group, gs.Applied, len(smap.ShardsOf(gs.Group)))
	}

	// 4. Move one shard's group to fresh machines. The group reconfigures
	//    via chunked state transfer — its shards, sessions, and data travel
	//    as one snapshot; the shard map does not change. The other three
	//    groups never notice.
	for _, id := range []types.NodeID{"q1", "q2", "q3"} {
		if err := m.AddProcess(id); err != nil {
			return err
		}
	}
	_, moveGid := smap.OwnerOf("user-0000")
	fmt.Printf("moving group %d (owner of user-0000) to q1,q2,q3...\n", moveGid)
	if err := ctl.MoveGroup(ctx, moveGid, []types.NodeID{"q1", "q2", "q3"}); err != nil {
		return err
	}
	fmt.Printf("group %d now on %v\n", moveGid, m.GroupMembers(moveGid))

	// 5. The data survived the move and the router still finds it.
	reply, err := submit("demo", 100, "user-0000", statemachine.EncodeGet("user-0000"))
	if err != nil {
		return err
	}
	fmt.Printf("after move: user-0000 = %q\n", statemachine.ReplyPayload(reply))
	return nil
}
