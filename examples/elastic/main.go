// Elastic: the motivating scenario of FRAPPE-style elastic services — scale
// a replicated KV service out 3→5→7 and back in 7→3 while clients keep
// writing, and print the committed-ops timeline to show the service never
// stops.
//
//	go run ./examples/elastic
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/statemachine"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elastic:", err)
		os.Exit(1)
	}
}

func run() error {
	c := cluster.New(cluster.Config{
		Transport: transport.Options{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		Node:      cluster.FastOptions(),
		Factory:   statemachine.NewKVMachine,
	})
	defer c.Close()

	all := []types.NodeID{"n1", "n2", "n3", "n4", "n5", "n6", "n7"}
	if _, err := c.Bootstrap(all[0], all[1], all[2]); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, all[0], all[1], all[2]); err != nil {
		return err
	}
	for _, id := range all[3:] {
		if _, err := c.AddSpare(id); err != nil {
			return err
		}
	}

	// Background writers.
	timeline := stats.NewTimeline()
	loadCtx, stopLoad := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient(client.Options{})
			i := 0
			for loadCtx.Err() == nil {
				i++
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := cl.Submit(loadCtx, statemachine.EncodePut(key, []byte("x"))); err == nil {
					timeline.Record()
				}
			}
		}(w)
	}

	admin := c.NewClient(client.Options{})
	plan := [][]types.NodeID{all[:5], all[:7], all[:5], all[:3]}
	for _, members := range plan {
		time.Sleep(600 * time.Millisecond)
		timeline.MarkNow(fmt.Sprintf("scale to %d", len(members)))
		cfg, err := admin.Reconfigure(ctx, members)
		if err != nil {
			stopLoad()
			wg.Wait()
			return err
		}
		fmt.Printf("reconfigured: %s\n", cfg)
	}
	time.Sleep(600 * time.Millisecond)
	stopLoad()
	wg.Wait()

	fmt.Printf("\ncommitted %d writes; longest commit gap %v\n",
		timeline.Count(), timeline.LongestGap().Round(time.Millisecond))
	fmt.Println("ops per 100ms across the elastic chain:")
	for i, n := range timeline.Series(100 * time.Millisecond) {
		bar := ""
		for j := int64(0); j < n/5; j++ {
			bar += "#"
		}
		fmt.Printf("  %4dms %4d %s\n", i*100, n, bar)
	}
	for _, m := range timeline.Marks() {
		fmt.Printf("  mark %q at +%v\n", m.Label, m.At.Sub(timeline.Start()).Round(time.Millisecond))
	}
	return nil
}
