// Migration: replace EVERY replica of a running service, one reconfiguration
// at a time, until the cluster runs on entirely different machines — while a
// client keeps writing and verifies that no acknowledged write is ever lost.
// This is the "rolling datacenter move" the composed design makes routine.
//
//	go run ./examples/migration
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "migration:", err)
		os.Exit(1)
	}
}

func run() error {
	c := cluster.New(cluster.Config{
		Transport: transport.Options{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		Node:      cluster.FastOptions(),
		Factory:   statemachine.NewKVMachine,
	})
	defer c.Close()

	old := []types.NodeID{"old1", "old2", "old3"}
	fresh := []types.NodeID{"new1", "new2", "new3"}
	if _, err := c.Bootstrap(old...); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, old...); err != nil {
		return err
	}
	for _, id := range fresh {
		if _, err := c.AddSpare(id); err != nil {
			return err
		}
	}

	// A writer that records every acknowledged key.
	var mu sync.Mutex
	var acked []string
	loadCtx, stopLoad := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := c.NewClient(client.Options{})
		i := 0
		for loadCtx.Err() == nil {
			i++
			key := fmt.Sprintf("doc-%05d", i)
			if _, err := cl.Submit(loadCtx, statemachine.EncodePut(key, []byte("payload"))); err == nil {
				mu.Lock()
				acked = append(acked, key)
				mu.Unlock()
			}
		}
	}()

	// Rolling replacement: one node per step, four configurations total.
	admin := c.NewClient(client.Options{})
	steps := [][]types.NodeID{
		{"old2", "old3", "new1"},
		{"old3", "new1", "new2"},
		{"new1", "new2", "new3"},
	}
	for _, members := range steps {
		time.Sleep(300 * time.Millisecond)
		cfg, err := admin.Reconfigure(ctx, members)
		if err != nil {
			stopLoad()
			wg.Wait()
			return err
		}
		fmt.Println("step:", cfg)
	}
	time.Sleep(300 * time.Millisecond)
	stopLoad()
	wg.Wait()

	// Verify on the fully migrated cluster: every acknowledged write is
	// readable; the old nodes are no longer part of the service.
	mu.Lock()
	keys := append([]string(nil), acked...)
	mu.Unlock()
	fmt.Printf("verifying %d acknowledged writes on the new cluster...\n", len(keys))
	verifier := c.NewClient(client.Options{})
	for _, key := range keys {
		reply, err := verifier.Submit(ctx, statemachine.EncodeGet(key))
		if err != nil {
			return err
		}
		if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
			return fmt.Errorf("acknowledged write %s lost", key)
		}
	}
	final, err := verifier.Locate(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("migration complete: %s — zero acknowledged writes lost\n", final)
	return nil
}
