// Quickstart: boot a 3-replica reconfigurable KV service, write and read
// through the replicated log, grow the cluster to 5 replicas WITHOUT
// restarting anything, and keep serving.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A cluster over a simulated network with realistic latencies.
	c := cluster.New(cluster.Config{
		Transport: transport.Options{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond},
		Node:      cluster.FastOptions(),
		Factory:   statemachine.NewKVMachine,
	})
	defer c.Close()

	cfg, err := c.Bootstrap("n1", "n2", "n3")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		return err
	}
	fmt.Println("serving:", cfg)

	// 2. A client session: linearizable writes and reads via consensus.
	cl := c.NewClient(client.Options{})
	if _, err := cl.Submit(ctx, statemachine.EncodePut("greeting", []byte("hello, composed SMR"))); err != nil {
		return err
	}
	reply, err := cl.Submit(ctx, statemachine.EncodeGet("greeting"))
	if err != nil {
		return err
	}
	fmt.Printf("read back: %q\n", statemachine.ReplyPayload(reply))

	// 3. Live reconfiguration: two spares join; configuration 2 starts a
	//    fresh static engine seeded with the transferred state. No node
	//    restarts, no service interruption.
	for _, id := range []types.NodeID{"n4", "n5"} {
		if _, err := c.AddSpare(id); err != nil {
			return err
		}
	}
	newCfg, err := cl.Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4", "n5"})
	if err != nil {
		return err
	}
	fmt.Println("reconfigured to:", newCfg)

	// 4. The data survived the configuration change.
	reply, err = cl.Submit(ctx, statemachine.EncodeGet("greeting"))
	if err != nil {
		return err
	}
	fmt.Printf("after reconfig: %q\n", statemachine.ReplyPayload(reply))

	// 5. Inspect the configuration chain the service hops along.
	chain, err := cl.Chain(ctx)
	if err != nil {
		return err
	}
	fmt.Println("chain:")
	fmt.Println("  initial:", chain.Initial)
	for _, rec := range chain.Records {
		fmt.Printf("  cfg%d --wedged at slot %d--> %s\n", rec.From, rec.WedgeSlot, rec.To)
	}
	return nil
}
