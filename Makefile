GO ?= go

.PHONY: all build test race bench vet fmt-check ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent core; package-level tests are where
# the lock-ordering and group-commit races would surface.
race:
	$(GO) test -race ./internal/...

# Full experiment suite, one pass per benchmark (each iteration is a complete
# wall-clock scenario). Storage micro-benchmarks get a real -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench StorageBackends -benchtime 2s ./internal/storage/

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

ci: vet build test race fmt-check
