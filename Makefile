GO ?= go

.PHONY: all build test race bench bench-read bench-snapshot bench-write bench-shard bench-reconfig bench-catchup bench-mega vet fmt-check ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent core; package-level tests are where
# the lock-ordering and group-commit races would surface.
race:
	$(GO) test -race ./internal/...

# Full experiment suite, one pass per benchmark (each iteration is a complete
# wall-clock scenario). Storage micro-benchmarks get a real -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench StorageBackends -benchtime 2s ./internal/storage/

# Read-path smoke: one pass of the R1 read-scaling benchmark (serving mode x
# read ratio on the durable WAL backend) — quick sanity that the fast path
# still beats log reads. The full sweep lives in `rsmbench -exp read`.
bench-read:
	$(GO) test -run '^$$' -bench R1ReadScaling -benchtime 1x .

# State-transfer smoke: one composed member swap with ~4MB of preloaded
# state, chunked vs monolithic transfer, reporting commit gap and wedge
# capture time. The full sweep lives in `rsmbench -exp t2,f2,f5`.
bench-snapshot:
	$(GO) test -run '^$$' -bench SnapshotTransfer -benchtime 1x .
	$(GO) test -run '^$$' -bench ForkVsSnapshot -benchtime 2s ./internal/statemachine/

# Write-path smoke: one pass each of the pipeline-depth sweep and the
# parallel-vs-serial apply ablation on the fsynced WAL backend. The full W1
# table with open-loop latency lives in `rsmbench -exp write`.
bench-write:
	$(GO) test -run '^$$' -bench 'PipelineDepth|ParallelApply' -benchtime 1x .

# Sharded-runtime smoke: one pass of the S1 group-count sweep (1 vs 8 groups
# over shared TCP+WAL, routed write load). The full 1/2/4/8 table with the
# fsync-coalescing columns lives in `rsmbench -exp shard`.
bench-shard:
	$(GO) test -run '^$$' -bench ShardScaling -benchtime 1x .

# Reconfig-latency smoke: one pass of the R2 shootout at 8MB state —
# speculative vs wait-for-transfer successor start (full member replacement)
# vs the in-band baseline, reporting time-to-first-decide in c+1 and the
# commit gap. The canonical table lives in `rsmbench -exp reconfig`.
bench-reconfig:
	$(GO) test -run '^$$' -bench R2ReconfigShootout -benchtime 1x .

# Catch-up smoke: one pass of the K1 shootout — a member lagging 50k decided
# slots at 8MB state heals and catches up by checkpoint fetch vs the
# NoCheckpoints full-replay ablation, plus restart-recovery time and the
# retained-log bound. The canonical table lives in `rsmbench -exp catchup`.
bench-catchup:
	$(GO) test -run '^$$' -bench K1Catchup -benchtime 1x .

# Megaload smoke: one pass of the C1 benchmark — 100k open-loop client
# sessions through a reconfiguration storm, smart client + admission control
# vs the naive ablation. The canonical table lives in `rsmbench -exp mega`.
bench-mega:
	$(GO) test -run '^$$' -bench C1Megaload -benchtime 1x -timeout 30m .

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

ci: vet build test race fmt-check
