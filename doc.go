// Package repro reproduces "Brief announcement: reconfigurable state machine
// replication from non-reconfigurable building blocks" (Bortnikov, Chockler,
// Perelman, Roytman, Shachor, Shnayderman; PODC 2012) as a complete Go
// library: a reconfigurable SMR service composed from chained static
// Multi-Paxos engines, two baselines (stop-the-world and in-band α-window
// reconfiguration), the full substrate they run on (simulated network,
// stable storage, deterministic state machines, client sessions), and a
// benchmark harness regenerating every experiment in EXPERIMENTS.md.
//
// Start with DESIGN.md for the system inventory, internal/core for the
// contribution's API, and examples/quickstart for a running tour. The
// benchmarks in bench_test.go are run with:
//
//	go test -bench=. -benchmem -benchtime=1x .
package repro
