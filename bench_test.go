package repro

// One benchmark per experiment in DESIGN.md §4 / EXPERIMENTS.md. Each runs a
// complete scenario (cluster boot, load, reconfiguration, teardown) per
// iteration and reports the experiment's headline numbers as custom metrics,
// so `go test -bench=. -benchmem` regenerates every table and figure.
//
// Benchmarks intentionally use wall-clock scenarios (seconds each); run with
// -benchtime=1x for a single pass per experiment.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/reconfig"
)

func tuning() harness.Tuning { return harness.DefaultTuning() }

const (
	benchClients = 4
	benchRunDur  = 2 * time.Second
)

// BenchmarkT1StaticPaxosScaling — Table T1: throughput/latency of the static
// substrate at n ∈ {3,5,7,9}.
func BenchmarkT1StaticPaxosScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunT1StaticScaling(tuning(), []int{3, 5, 7, 9}, benchRunDur, benchClients)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.Throughput, fmt.Sprintf("ops/s/n%d", row.N))
		}
	}
}

// BenchmarkT1DurableBackends — Table T1d: throughput/latency of the static
// substrate with acceptor persistence on real storage backends (mem as the
// no-durability reference, file-per-key vs group-commit WAL with fsync).
func BenchmarkT1DurableBackends(b *testing.B) {
	backends := []string{harness.StorageMem, harness.StorageFile, harness.StorageWAL}
	for i := 0; i < b.N; i++ {
		res, err := harness.RunT1Durable(tuning(), backends, 3, benchRunDur, benchClients)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.Throughput, "ops/s/"+row.Backend)
		}
	}
}

// BenchmarkF1ReconfigTimeline — Figure F1: committed-ops timeline around a
// member swap, per system.
func BenchmarkF1ReconfigTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kind := range []harness.SystemKind{harness.Composed, harness.StopTheWorld, harness.Inband} {
			res, err := harness.RunDisruption(kind, tuning(), benchRunDur, benchClients, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + res.Render())
			b.ReportMetric(res.Gap.Seconds()*1000, "gap-ms/"+kind.String())
			b.ReportMetric(res.Throughput, "ops/s/"+kind.String())
		}
	}
}

// BenchmarkT2Downtime — Table T2: longest commit gap per system per state
// size.
func BenchmarkT2Downtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results []harness.DisruptionResult
		for _, size := range []int{16 << 10, 256 << 10, 1 << 20} {
			for _, kind := range []harness.SystemKind{harness.Composed, harness.StopTheWorld, harness.Inband} {
				res, err := harness.RunDisruptionMedian(kind, tuning(), benchRunDur, benchClients, size)
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, res)
				b.ReportMetric(res.Gap.Seconds()*1000,
					fmt.Sprintf("gap-ms/%s/%dKB", kind, size>>10))
			}
		}
		b.Log("\n" + harness.RenderDisruptionTable(results))
	}
}

// BenchmarkF2StateTransfer — Figure F2: composed reconfiguration latency vs
// snapshot size, with and without speculative start.
func BenchmarkF2StateTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunF2StateTransfer(tuning(), []int{16 << 10, 256 << 10, 1 << 20}, benchRunDur, benchClients)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			tag := "spec"
			if !row.Speculative {
				tag = "nospec"
			}
			if row.Mono {
				tag += "-mono"
			}
			b.ReportMetric(row.ReconfigTook.Seconds()*1000,
				fmt.Sprintf("reconfig-ms/%s/%dKB", tag, row.StateBytes>>10))
		}
	}
}

// BenchmarkSnapshotTransfer — the state-transfer smoke benchmark behind
// `make bench-snapshot`: one member swap of the composed system with a
// multi-megabyte preloaded state, chunked vs monolithic transfer. Headline
// metrics are the commit gap (client-visible downtime), the reconfigure
// call duration, and the longest time any node held its mutex capturing
// state at a wedge (COW fork vs full serialize).
func BenchmarkSnapshotTransfer(b *testing.B) {
	const stateBytes = 4 << 20
	harness.WarmHeap(tuning(), stateBytes)
	for _, mode := range []struct {
		name string
		mono bool
	}{{"chunked", false}, {"mono", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := tuning()
				t.Mono = mode.mono
				res, err := harness.RunDisruption(harness.Composed, t, benchRunDur, benchClients, stateBytes)
				if err != nil {
					b.Fatal(err)
				}
				b.Log("\n" + res.Render())
				b.ReportMetric(res.Gap.Seconds()*1000, "gap-ms")
				b.ReportMetric(res.ReconfigTook.Seconds()*1000, "reconfig-ms")
				b.ReportMetric(float64(res.Transfer.MaxWedgeCapture.Microseconds()), "wedge-capture-us")
			}
		})
	}
}

// BenchmarkR2ReconfigShootout — Table R2 smoke behind `make bench-reconfig`:
// the reconfiguration-latency shootout at 8MB state. Headline metrics are
// time-to-first-decide in c+1 for the speculative vs wait-for-transfer
// composed variants (full member replacement — nothing can execute in c+1
// until a joiner has the state) and the client-visible commit gap per
// variant. The inband row is a single swap (it cannot full-replace).
func BenchmarkR2ReconfigShootout(b *testing.B) {
	const stateBytes = 8 << 20
	for i := 0; i < b.N; i++ {
		res, err := harness.RunR2ReconfigShootout(tuning(), stateBytes, benchRunDur, benchClients)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			tag := row.System.String()
			if row.System == harness.Composed {
				if row.Speculative {
					tag += "-spec"
				} else {
					tag += "-wait"
				}
			}
			if row.TTFDKnown {
				b.ReportMetric(row.TTFD.Seconds()*1000, "ttfd-ms/"+tag)
			}
			b.ReportMetric(row.Gap.Seconds()*1000, "gap-ms/"+tag)
		}
	}
}

// BenchmarkK1Catchup — Table K1 smoke behind `make bench-catchup`: a member
// lags 50k decided slots at 8MB state, then the link heals. Headline metrics
// are time-to-caught-up for the checkpoint-fetch arm vs the NoCheckpoints
// full-replay ablation, restart-recovery time, and the worst node's retained
// decided slots (bounded by the checkpoint interval vs the whole log).
func BenchmarkK1Catchup(b *testing.B) {
	const (
		stateBytes = 8 << 20
		lagSlots   = 50000
	)
	for i := 0; i < b.N; i++ {
		res, err := harness.RunK1Catchup(tuning(), stateBytes, lagSlots, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			tag := "ckpt"
			if !row.Checkpoints {
				tag = "replay"
			}
			b.ReportMetric(row.CatchupTook.Seconds()*1000, "catchup-ms/"+tag)
			b.ReportMetric(row.RestartTook.Seconds()*1000, "restart-ms/"+tag)
			b.ReportMetric(float64(row.Retained), "retained-slots/"+tag)
		}
	}
}

// BenchmarkT3Failover — Table T3: crash-to-restored-service time.
func BenchmarkT3Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunT3Failover(tuning(), 2*benchRunDur, benchClients, 200*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		b.ReportMetric(res.CrashToServe.Seconds()*1000, "crash-to-serve-ms")
		b.ReportMetric(res.GapAfterCrash.Seconds()*1000, "gap-ms")
	}
}

// BenchmarkF3Elastic — Figure F3: throughput timeline across the elastic
// chain 3→5→7→5→3.
func BenchmarkF3Elastic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunF3Elastic(tuning(), 800*time.Millisecond, benchClients)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		b.ReportMetric(float64(res.Acked), "acked-ops")
	}
}

// BenchmarkT4MessageCost — Table T4: messages/bytes per op and per
// reconfiguration, per system.
func BenchmarkT4MessageCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunT4MessageCost(tuning(), 300, benchClients)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.MsgsPerOp, "msgs/op/"+row.System.String())
			b.ReportMetric(float64(row.ReconfigMsgs), "reconf-msgs/"+row.System.String())
		}
	}
}

// BenchmarkF4AlphaWindow — Figure F4: in-band throughput vs α with the
// composed system as the uncapped reference.
func BenchmarkF4AlphaWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunF4Alpha(tuning(), []int{1, 2, 4, 8, 16, 32}, 1500*time.Millisecond, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			name := fmt.Sprintf("ops/s/alpha%d", row.Alpha)
			if row.Alpha == 0 {
				name = "ops/s/composed"
			}
			b.ReportMetric(row.Throughput, name)
		}
	}
}

// BenchmarkT5LatencyPercentiles — Table T5: latency distribution in steady
// state vs during the reconfiguration epoch, per system.
func BenchmarkT5LatencyPercentiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results []harness.DisruptionResult
		for _, kind := range []harness.SystemKind{harness.Composed, harness.StopTheWorld, harness.Inband} {
			res, err := harness.RunDisruption(kind, tuning(), benchRunDur, benchClients, 0)
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, res)
			b.ReportMetric(res.SteadyLat.P99.Seconds()*1000, "steady-p99-ms/"+kind.String())
			b.ReportMetric(res.DisruptLat.P99.Seconds()*1000, "reconf-p99-ms/"+kind.String())
		}
		b.Log("\n" + harness.RenderLatencyTable(results))
	}
}

// BenchmarkF5Crossover — Figure F5: disruption vs state size, composed vs
// in-band.
func BenchmarkF5Crossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results []harness.DisruptionResult
		for _, size := range []int{8 << 10, 512 << 10, 4 << 20} {
			for _, kind := range []harness.SystemKind{harness.Composed, harness.Inband} {
				res, err := harness.RunDisruptionMedian(kind, tuning(), benchRunDur, benchClients, size)
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, res)
				b.ReportMetric(res.Gap.Seconds()*1000,
					fmt.Sprintf("gap-ms/%s/%dKB", kind, size>>10))
			}
		}
		b.Log("\n" + harness.RenderCrossover(results))
	}
}

// BenchmarkA1Batching — ablation A1: commands-per-slot batching on the
// static substrate under concurrent load.
func BenchmarkA1Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunA1Batching(tuning(), []int{1, 4, 16, 64}, 1500*time.Millisecond, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.Throughput, fmt.Sprintf("ops/s/batch%d", row.BatchSize))
		}
	}
}

// BenchmarkBatchSizeDefault — the sweep behind the shipped
// paxos.Options.BatchSize default: candidate batch sizes on the durable WAL
// backend with synced writes, where commands-per-slot packing decides how
// many commands share one group-commit fsync. (A1 above keeps the in-memory
// ablation; this one is the deployment-relevant configuration.)
func BenchmarkBatchSizeDefault(b *testing.B) {
	t := tuning()
	t.Storage = harness.StorageWAL
	t.SyncWrites = true
	for i := 0; i < b.N; i++ {
		res, err := harness.RunA1Batching(t, []int{1, 8, 16, 32}, 1500*time.Millisecond, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.Throughput, fmt.Sprintf("ops/s/batch%d", row.BatchSize))
		}
	}
}

// BenchmarkPipelineDepth — the sweep behind the shipped
// paxos.Options.Pipeline default: proposer window depths on the durable WAL
// backend with synced writes, where the depth decides how many slot rounds
// share one group-commit fsync. Closed-loop phase only; the W1 table in
// EXPERIMENTS.md (`make bench-write`) adds the open-loop latency columns.
func BenchmarkPipelineDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunW1WritePath(tuning(), []int{1, 2, 4, 8, 16}, 1500*time.Millisecond, 64, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			if row.SerialApply {
				continue
			}
			b.ReportMetric(row.Throughput, fmt.Sprintf("ops/s/depth%d", row.Pipeline))
		}
	}
}

// BenchmarkParallelApply — decide/apply decoupling plus sharded parallel
// apply against the coupled serial ablation (Options.SerialApply), at the
// shipped pipeline depth on the durable WAL backend.
func BenchmarkParallelApply(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunW1WritePath(tuning(), []int{4}, benchRunDur, 64, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			mode := "parallel"
			if row.SerialApply {
				mode = "serial"
			}
			b.ReportMetric(row.Throughput, "ops/s/"+mode)
		}
	}
}

// BenchmarkShardScaling — Table S1 smoke behind `make bench-shard`: the
// multi-group sharded runtime at 1 vs 8 groups over shared TCP-style
// transport and one fsynced WAL per process. Headline metrics are the
// aggregate routed write throughput per group count and the fsync
// coalescing ratio (group commits per physical fsync) at 8 groups. The
// full 1/2/4/8 table lives in `rsmbench -exp shard`.
func BenchmarkShardScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunShardScaling(tuning(), []int{1, 8}, benchRunDur, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.Throughput, fmt.Sprintf("ops/s/groups%d", row.Groups))
			if row.SyncsPerOp > 0 {
				b.ReportMetric(row.GroupCommitsPerOp/row.SyncsPerOp,
					fmt.Sprintf("gc-per-sync/groups%d", row.Groups))
			}
		}
	}
}

// BenchmarkR1ReadScaling — Table R1: linearizable read fast path, serving
// mode x read ratio at n=3 on the durable WAL backend.
func BenchmarkR1ReadScaling(b *testing.B) {
	t := tuning()
	t.Storage = harness.StorageWAL
	t.SyncWrites = true
	modes := []reconfig.ReadMode{reconfig.ReadModeLog, reconfig.ReadModeIndex, reconfig.ReadModeLease}
	for i := 0; i < b.N; i++ {
		res, err := harness.RunReadScaling(t, modes, []int{3}, []float64{0.9}, benchRunDur, 24)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.Throughput, fmt.Sprintf("ops/s/mode%d", uint8(row.Mode)))
		}
	}
}

// BenchmarkC1Megaload — Table C1: 100k open-loop client sessions driven
// through the real RPC client library across a reconfiguration storm, smart
// arm (shared config directory + server admission control) vs the naive
// ablation (per-session cache, fixed backoff, unbounded server queues).
// Headline metrics are each arm's goodput and ack p99, plus the smart arm's
// silent-drop count (must be 0: every unserved submit is answered).
func BenchmarkC1Megaload(b *testing.B) {
	t := tuning()
	t.SubmitQueue = 256
	for i := 0; i < b.N; i++ {
		res, err := harness.RunC1Megaload(t, 100000, 6000, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		if res.Smart.Silent != 0 {
			b.Fatalf("smart arm had %d silent drops", res.Smart.Silent)
		}
		b.ReportMetric(res.Smart.Goodput, "ops/s/smart")
		b.ReportMetric(res.Naive.Goodput, "ops/s/naive")
		b.ReportMetric(float64(res.Smart.Latency.P99)/1e6, "p99ms/smart")
		b.ReportMetric(float64(res.Naive.Latency.P99)/1e6, "p99ms/naive")
		b.ReportMetric(float64(res.Naive.Silent+res.Naive.Unresolved), "lost/naive")
	}
}
