package harness

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// chaosSeed mirrors the reconfig chaos harness: deterministic default,
// overridable with CHAOS_SEED for reproduction.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := def
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("seed %d (rerun with CHAOS_SEED=%d)", seed, seed)
	return seed
}

// TestMegaload is the CI-sized C1 run: a few thousand open-loop sessions
// through a reconfiguration storm, both arms. The smart arm's accounting
// contract is checked exactly — every op ends acked or cleanly rejected,
// never silently dropped or left dangling.
func TestMegaload(t *testing.T) {
	tun := shortTuning()
	tun.SubmitQueue = 256
	sessions, rate, dur := 5000, 1000.0, 2*time.Second
	res, err := RunC1Megaload(tun, sessions, rate, dur)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())

	total := int64(rate * dur.Seconds())
	if got := res.Smart.Acked + res.Smart.Rejected + res.Smart.Silent + res.Smart.Unresolved; got != total {
		t.Fatalf("smart arm lost ops: %d accounted, %d offered", got, total)
	}
	// Zero silent drops: the smart arm may shed, but every unserved submit
	// was answered (SubmitBusy or redirect) and every op has an outcome.
	if res.Smart.Silent != 0 {
		t.Fatalf("smart arm had %d silent drops", res.Smart.Silent)
	}
	if res.Smart.Unresolved != 0 {
		t.Fatalf("smart arm left %d ops unresolved after the drain window", res.Smart.Unresolved)
	}
	if res.Smart.Acked == 0 {
		t.Fatal("smart arm acked nothing")
	}
	if res.Smart.Reconfigs == 0 {
		t.Fatal("the storm never reconfigured; the run proved nothing")
	}
	if res.Smart.Violations != 0 || res.Naive.Violations != 0 {
		t.Fatalf("violations: smart %d naive %d", res.Smart.Violations, res.Naive.Violations)
	}
	// The shared directory adopts each new configuration once per client
	// process; the naive arm never touches it.
	if res.Smart.Adopts == 0 {
		t.Fatal("directory never adopted a configuration")
	}
	if res.Naive.Adopts != 0 {
		t.Fatalf("naive arm used the shared directory: %d adopts", res.Naive.Adopts)
	}
	// The naive ablation pays for ignoring config hints with extra attempts.
	if res.Naive.Redirects <= res.Smart.Redirects {
		t.Logf("warning: naive redirects %d not above smart %d in this short run",
			res.Naive.Redirects, res.Smart.Redirects)
	}
	out := res.Render()
	for _, want := range []string{"C1:", "smart", "naive", "goodput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestLinearizabilityMegaload reruns the megaload smart arm over random
// register ops with full history recording and checks the result against the
// sequential register model — the long-chaos "megaload + churn" entry.
// Short mode runs a small swarm; the nightly matrix runs the full size.
func TestLinearizabilityMegaload(t *testing.T) {
	seed := chaosSeed(t, 42)
	tun := shortTuning()
	tun.SubmitQueue = 256
	sessions, rate, dur := 10000, 2000.0, 5*time.Second
	if testing.Short() {
		sessions, rate, dur = 2000, 600.0, 2*time.Second
	}
	res, err := RunMegaLin(tun, seed, sessions, rate, dur)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if res.Unknown {
		t.Fatal("checker timed out")
	}
	if !res.Linearizable {
		t.Fatalf("linearizability violation (seed %d):\n%s", res.Seed, res.Counterexample)
	}
	if res.OkOps == 0 {
		t.Fatal("no acknowledged ops; the run proved nothing")
	}
	if res.Reconfigs == 0 {
		t.Fatal("no churn; the run proved nothing")
	}
	if res.Silent != 0 {
		t.Fatalf("smart arm had %d silent drops", res.Silent)
	}
}
