package harness

// K1: lagging-replica catch-up shootout. One member of a three-node composed
// deployment is cut off the network while the survivors decide `lagSlots`
// more slots over a preloaded state, then the link heals and the clock runs
// until the victim's applied slot reaches the tip the survivors settled at.
// The checkpoint arm closes the gap by fetching the survivors' newest
// within-configuration checkpoint (the log below its base is truncated, so
// slot-by-slot replay is not even possible); the NoCheckpoints ablation
// replays every missed slot through the engine's catch-up path. The same
// deployment then measures restart recovery: the victim is crash-restarted
// and timed until it re-reaches the tip — bounded log replay above the
// newest durable checkpoint vs full replay from the configuration's
// initial snapshot.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/statemachine"
	"repro/internal/types"
)

// K1Row is one arm of the catch-up shootout.
type K1Row struct {
	Checkpoints bool          // false = NoCheckpoints full-replay ablation
	LagSlots    int64         // decided-slot gap actually injected
	CatchupTook time.Duration // heal -> victim applied reaches the tip
	RestartTook time.Duration // crash-restart -> victim re-reaches the tip
	Published   int64         // checkpoints made durable, summed over nodes
	Fetches     int64         // checkpoint catch-up installs, summed over nodes
	Truncated   int64         // log slots released below checkpoint floors
	Retained    int64         // decided slots still held at run end, worst node
}

// K1Result is the shootout at one state size and lag depth.
type K1Result struct {
	StateBytes int
	LagTarget  int
	Rows       []K1Row
}

// RunK1Catchup runs both arms of the catch-up shootout: checkpoints on
// (fetch + truncated log) vs the NoCheckpoints ablation (full replay,
// unbounded log). Each arm uses its own fresh deployment.
func RunK1Catchup(tuning Tuning, stateBytes, lagSlots, clients int) (K1Result, error) {
	WarmHeap(tuning, stateBytes)
	res := K1Result{StateBytes: stateBytes, LagTarget: lagSlots}
	for _, ckpt := range []bool{true, false} {
		t := tuning
		t.NoCheckpoints = !ckpt
		row, err := runK1Arm(t, stateBytes, lagSlots, clients)
		if err != nil {
			return res, fmt.Errorf("k1 checkpoints=%v: %w", ckpt, err)
		}
		row.Checkpoints = ckpt
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runK1Arm(t Tuning, stateBytes, lagSlots, clients int) (K1Row, error) {
	var row K1Row
	members := nodeNames("n", 3)
	dep, err := newComposed(t, statemachine.NewKVMachine, members, nil)
	if err != nil {
		return row, err
	}
	defer dep.Close()
	if err := waitWarm(dep); err != nil {
		return row, err
	}
	if stateBytes > 0 {
		if _, err := preload(context.Background(), dep, stateBytes); err != nil {
			return row, err
		}
	}

	// Cut off a member that does not currently lead, so the survivors keep a
	// quorum and the leader keeps deciding while the victim falls behind.
	victim := members[len(members)-1]
	if dep.Leader() == victim {
		victim = members[0]
	}
	survivors := make([]types.NodeID, 0, len(members)-1)
	for _, id := range members {
		if id != victim {
			survivors = append(survivors, id)
		}
	}
	dep.net.Isolate(victim)
	_, lag0 := dep.Node(victim).AppliedSlot()

	target := lag0 + types.Slot(lagSlots)
	if err := k1Drive(dep, survivors, clients, target, 2*time.Minute); err != nil {
		return row, err
	}
	tip := k1Settle(dep, survivors, 15*time.Second)

	healAt := time.Now()
	dep.net.Restore(victim)
	if err := k1WaitApplied(dep, victim, tip, 2*time.Minute); err != nil {
		return row, fmt.Errorf("catch-up: %w", err)
	}
	row.CatchupTook = time.Since(healAt)
	row.LagSlots = int64(tip - lag0)

	// Collect counters before the restart phase: CrashRestart replaces the
	// victim's node object, zeroing its in-memory stats.
	for _, id := range members {
		st := dep.Node(id).Stats()
		row.Published += st.CheckpointsPublished
		row.Fetches += st.CatchupFetches
		row.Truncated += st.TruncatedSlots
		if st.RetainedSlots > row.Retained {
			row.Retained = st.RetainedSlots
		}
	}

	crashAt := time.Now()
	if err := dep.CrashRestart(victim); err != nil {
		return row, err
	}
	if err := k1WaitApplied(dep, victim, tip, 2*time.Minute); err != nil {
		return row, fmt.Errorf("restart recovery: %w", err)
	}
	row.RestartTook = time.Since(crashAt)
	return row, nil
}

// k1Drive runs closed-loop writers against the surviving members only (the
// victim is unreachable; routing through Deployment.Submit would waste half
// the client time on timeouts) until their applied slot reaches target.
func k1Drive(dep *composedDep, survivors []types.NodeID, clients int, target types.Slot, timeout time.Duration) error {
	if clients < 1 {
		clients = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := types.NodeID(fmt.Sprintf("k1w%d", i))
			key := fmt.Sprintf("lag%d", i)
			val := []byte("0123456789abcdef")
			seq := uint64(0)
			for ctx.Err() == nil {
				seq++
				op := statemachine.EncodePut(key, val)
				for ctx.Err() == nil {
					n := dep.Node(survivors[(int(seq)+i)%len(survivors)])
					attempt, done := context.WithTimeout(ctx, 500*time.Millisecond)
					_, err := n.Submit(attempt, client, seq, op)
					done()
					if err == nil {
						break
					}
					select {
					case <-ctx.Done():
					case <-time.After(2 * time.Millisecond):
					}
				}
			}
		}(i)
	}
	deadline := time.Now().Add(timeout)
	for k1Tip(dep, survivors) < target {
		if time.Now().After(deadline) {
			cancel()
			wg.Wait()
			return fmt.Errorf("k1: survivors reached slot %d of %d within %s", k1Tip(dep, survivors), target, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	return nil
}

// k1Tip is the highest applied slot over the given nodes.
func k1Tip(dep *composedDep, ids []types.NodeID) types.Slot {
	var tip types.Slot
	for _, id := range ids {
		if n := dep.Node(id); n != nil {
			if _, s := n.AppliedSlot(); s > tip {
				tip = s
			}
		}
	}
	return tip
}

// k1Settle waits (bounded) for every survivor to apply the same slot after
// load stops, so "caught up" is a fixed post — not a moving tip.
func k1Settle(dep *composedDep, ids []types.NodeID, timeout time.Duration) types.Slot {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		lo, hi := types.Slot(1<<62), types.Slot(0)
		for _, id := range ids {
			_, s := dep.Node(id).AppliedSlot()
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if lo == hi && hi > 0 {
			return hi
		}
		time.Sleep(2 * time.Millisecond)
	}
	return k1Tip(dep, ids)
}

// k1WaitApplied polls until the node's applied slot reaches at least target.
func k1WaitApplied(dep *composedDep, id types.NodeID, target types.Slot, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n := dep.Node(id); n != nil {
			if _, s := n.AppliedSlot(); s >= target {
				return nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	_, s := dep.Node(id).AppliedSlot()
	return fmt.Errorf("k1: %s stuck at slot %d of %d after %s", id, s, target, timeout)
}
