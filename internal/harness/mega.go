package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/statemachine"
	"repro/internal/stats"
	"repro/internal/types"
)

// MegaStats is one arm of the C1 megaload experiment: an open-loop session
// swarm driven through the real client library (RPC plane included) while the
// membership churns. Every submitted op ends in exactly one bucket — Acked,
// Rejected (budget exhausted, every attempt answered with a redirect or a
// shed: provably never executed), Silent (abandoned with at least one
// unanswered attempt: outcome unknown), or Unresolved (still in flight when
// the drain deadline passed). The smart arm's contract is Silent == 0, and it
// holds structurally: the smart client's budget bounds clean refusals only —
// a maybe-applied command is pursued under its sequence number until a
// definitive reply — so only the naive ablation, which gives up at its budget
// regardless, can lose track of an op without saying so.
type MegaStats struct {
	Label      string
	Acked      int64
	Rejected   int64
	Silent     int64
	Unresolved int64

	Attempts  int64 // RPC attempts across all sessions
	Redirects int64 // redirect replies followed
	Busy      int64 // SubmitBusy shed replies received

	Goodput float64       // acked ops/s over the offered-load window
	Latency stats.Summary // ack latency from *intended* start (CO-safe)
	Skew    stats.Summary // dispatch lag behind the intended schedule

	ShedSubmits     int64 // server-side submits bounced by admission control
	SubmitQueueHigh int64 // max proposal-queue high water over all nodes
	DroppedInbound  int64 // engine inbox overflows (silent message loss)
	Adopts          int64 // directory config adoptions (smart arm only)
	Reconfigs       int   // storm steps that committed
	ReconfigErrs    int   // storm steps that failed or conflicted
	Violations      int64
}

// C1Result pairs the smart arm (shared directory, jittered backoff, servers
// shedding past the admission bound) with the naive ablation (per-session
// config cache, fixed backoff, hints ignored, servers queueing unboundedly).
type C1Result struct {
	Sessions int
	Rate     float64
	Duration time.Duration
	Smart    MegaStats
	Naive    MegaStats
}

// megaCfg parameterizes one arm of the megaload driver.
type megaCfg struct {
	label      string
	naive      bool // naive clients AND NoAdmission servers (the C1 ablation)
	sessions   int
	rate       float64 // offered load, ops/s across all sessions
	dur        time.Duration
	stormEvery time.Duration // reconfiguration cadence (0 = no storm)
	drain      time.Duration // grace past the load window for in-flight ops
	budget     int           // per-op retry budget

	ops [][]byte          // optional op stream (default: small puts)
	rec *history.Recorder // optional shared history recorder (MEGA-LIN)

	dirs int // client "processes": Directories the sessions spread over (default 8)
}

// RunC1Megaload runs experiment C1: `sessions` open-loop client sessions
// offer `rate` ops/s through a reconfiguration storm, once with the smart
// client + admission control and once with the naive ablation.
func RunC1Megaload(tun Tuning, sessions int, rate float64, dur time.Duration) (C1Result, error) {
	if tun.SubmitQueue == 0 {
		tun.SubmitQueue = 512
	}
	res := C1Result{Sessions: sessions, Rate: rate, Duration: dur}
	base := megaCfg{
		sessions:   sessions,
		rate:       rate,
		dur:        dur,
		stormEvery: 400 * time.Millisecond,
		drain:      20 * time.Second,
		budget:     12,
	}
	smart := base
	smart.label = "smart"
	st, err := runMegaArm(tun, smart)
	if err != nil {
		return res, err
	}
	res.Smart = st
	naive := base
	naive.label = "naive"
	naive.naive = true
	nv, err := runMegaArm(tun, naive)
	if err != nil {
		return res, err
	}
	res.Naive = nv
	return res, nil
}

// runMegaArm drives one arm: a 5-node pool (3 members + 2 spares), a client
// endpoint on the same simulated network, S sessions multiplexed over one
// Directory, and a global open-loop op schedule — op k is *intended* at
// start + k/rate and charged from that instant no matter how late the
// dispatcher or the service ran (coordinated-omission-safe).
func runMegaArm(tun Tuning, cfg megaCfg) (MegaStats, error) {
	out := MegaStats{Label: cfg.label}
	if cfg.naive {
		tun.NoAdmission = true
	}
	pool := nodeNames("n", 5)
	initial := pool[:3]
	dep, err := newComposed(tun, statemachine.NewKVMachine, initial, pool[3:])
	if err != nil {
		return out, err
	}
	defer dep.Close()
	if err := waitWarm(dep); err != nil {
		return out, err
	}

	// One Directory models one client process: its sessions share one cached
	// config and one transport conn per server. Several of them spread the
	// swarm the way a real fleet of client hosts would — and keep the
	// simulated client NIC from becoming the experiment's bottleneck.
	nDirs := cfg.dirs
	if nDirs <= 0 {
		nDirs = 8
	}
	dirs := make([]*client.Directory, nDirs)
	for i := range dirs {
		dirs[i] = client.NewDirectory(dep.net.Endpoint(types.NodeID(fmt.Sprintf("mega-client%d", i))), initial)
		defer dirs[i].Close()
	}
	// The backoff ceiling matters under sustained overload: shed ops must
	// retreat to second-scale retries or the retry traffic itself melts the
	// service. The naive arm's fixed 5ms sleep (hints ignored) is exactly
	// that melt — part of what the ablation measures.
	copts := client.Options{
		AttemptTimeout: 2 * time.Second,
		Resend:         20 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
		RetryMax:       2 * time.Second,
		RetryBudget:    cfg.budget,
		Naive:          cfg.naive,
		Recorder:       cfg.rec,
	}
	sessions := make([]*client.Client, cfg.sessions)
	for i := range sessions {
		sessions[i] = dirs[i%nDirs].Session(types.NodeID(fmt.Sprintf("c%d", i)), copts)
	}
	// Per-session locks order each session's ops (sequence numbers must be
	// issued and completed in order); ops of distinct sessions are free.
	mus := make([]sync.Mutex, cfg.sessions)
	seqs := make([]uint64, cfg.sessions)

	total := int(cfg.rate * cfg.dur.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.rate)
	var lat, skew stats.LatencyRecorder
	var acked, rejected, silent, unresolved int64

	start := time.Now()
	drainDeadline := start.Add(cfg.dur + cfg.drain)

	// Reconfiguration storm: slide a 3-member window over the 5-node pool.
	stormStop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		step := 0
		for {
			select {
			case <-stormStop:
				return
			case <-time.After(cfg.stormEvery):
			}
			if cfg.stormEvery <= 0 {
				return
			}
			step++
			// Shift the member window by two per step: each reconfiguration
			// replaces two of three members, so the successor serves only
			// after a real state transfer — the wedge window admission
			// control exists to protect.
			members := []types.NodeID{
				pool[(2*step)%len(pool)],
				pool[(2*step+1)%len(pool)],
				pool[(2*step+2)%len(pool)],
			}
			rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := dep.Reconfigure(rctx, members); err != nil {
				out.ReconfigErrs++
			} else {
				out.Reconfigs++
			}
			cancel()
		}
	}()

	// Enough workers that the swarm's in-flight concurrency is bounded by
	// the service, not the harness: an open-loop swarm must be able to pile
	// up far past the server-side queue bound, or the worker pool itself
	// becomes a flow-control valve the naive ablation gets to hide behind.
	workers := cfg.sessions / 4
	if workers < 256 {
		workers = 256
	}
	if workers > 4096 {
		workers = 4096
	}
	if total < workers {
		workers = total
	}
	jobs := make(chan int, 1<<16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				intended := start.Add(time.Duration(k) * interval)
				skew.Record(time.Since(intended))
				s := k % cfg.sessions
				var op []byte
				if cfg.ops != nil {
					op = cfg.ops[k%len(cfg.ops)]
				} else {
					op = statemachine.EncodePut(fmt.Sprintf("k%d", k%512), []byte("v"))
				}
				mus[s].Lock()
				seqs[s]++
				seq := seqs[s]
				ctx, cancel := context.WithDeadline(context.Background(), drainDeadline)
				_, err := sessions[s].SubmitSeq(ctx, seq, op)
				cancel()
				mus[s].Unlock()
				if err == nil {
					atomic.AddInt64(&acked, 1)
					lat.Record(time.Since(intended))
					continue
				}
				var be *client.BudgetError
				switch {
				case errors.As(err, &be) && !be.Ambiguous:
					atomic.AddInt64(&rejected, 1)
				case errors.As(err, &be):
					atomic.AddInt64(&silent, 1)
				default:
					atomic.AddInt64(&unresolved, 1)
				}
			}
		}()
	}
	for k := 0; k < total; k++ {
		intended := start.Add(time.Duration(k) * interval)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		jobs <- k
	}
	close(jobs)
	// Load window over: stop churning so the drain settles, then wait out
	// the in-flight tail.
	close(stormStop)
	<-stormDone
	wg.Wait()

	out.Acked, out.Rejected = acked, rejected
	out.Silent, out.Unresolved = silent, unresolved
	out.Goodput = float64(acked) / cfg.dur.Seconds()
	out.Latency = lat.Summarize()
	out.Skew = skew.Summarize()
	for _, c := range sessions {
		st := c.Stats()
		out.Attempts += st.Attempts
		out.Redirects += st.Redirects
		out.Busy += st.Busy
	}
	for _, d := range dirs {
		out.Adopts += d.Stats().Adopts
	}
	for _, id := range pool {
		n := dep.Node(id)
		if n == nil {
			continue
		}
		st := n.Stats()
		out.ShedSubmits += st.ShedSubmits
		if st.SubmitQueueHigh > out.SubmitQueueHigh {
			out.SubmitQueueHigh = st.SubmitQueueHigh
		}
		out.DroppedInbound += st.DroppedInbound
	}
	out.Violations = dep.Violations()
	return out, nil
}

// Render formats the C1 comparison.
func (r C1Result) Render() string {
	row := func(m MegaStats) []string {
		return []string{
			m.Label,
			fmt.Sprintf("%d", m.Acked),
			fmt.Sprintf("%d", m.Rejected),
			fmt.Sprintf("%d", m.Silent),
			fmt.Sprintf("%d", m.Unresolved),
			fmtDur(m.Latency.P50),
			fmtDur(m.Latency.P99),
			fmtDur(m.Latency.P999),
			fmt.Sprintf("%.0f", m.Goodput),
		}
	}
	detail := func(m MegaStats) string {
		per := 0.0
		if n := m.Acked + m.Rejected + m.Silent + m.Unresolved; n > 0 {
			per = float64(m.Attempts) / float64(n)
		}
		return fmt.Sprintf(
			"  %s: %d attempts (%.1f/op), %d redirects, %d busy; directory adopts %d; dispatch skew p99 %s\n"+
				"  %s  servers shed %d (queue high %d), dropped inbound %d; reconfigs %d (+%d failed); violations %d\n",
			m.Label, m.Attempts, per, m.Redirects, m.Busy, m.Adopts, fmtDur(m.Skew.P99),
			strings.Repeat(" ", len(m.Label)), m.ShedSubmits, m.SubmitQueueHigh,
			m.DroppedInbound, m.Reconfigs, m.ReconfigErrs, m.Violations)
	}
	return fmt.Sprintf("C1: open-loop megaload through a reconfiguration storm (%d sessions, %.0f ops/s offered, %s)\n",
		r.Sessions, r.Rate, r.Duration) +
		renderTable(
			[]string{"arm", "acked", "rejected", "silent", "unresolved", "p50", "p99", "p999", "goodput"},
			[][]string{row(r.Smart), row(r.Naive)}) +
		detail(r.Smart) + detail(r.Naive)
}

// MegaLinResult is the outcome of the MEGA-LIN check: the megaload driver's
// smart arm run over random register ops with every session recording its
// history, checked for linearizability after the storm.
type MegaLinResult struct {
	Seed     int64
	Sessions int
	Duration time.Duration

	OkOps   int
	InfoOps int
	FailOps int

	Reconfigs    int
	Silent       int64
	Checked      int
	CheckParts   int
	CheckTime    time.Duration
	Linearizable bool
	Unknown      bool

	Counterexample string
}

// RunMegaLin reruns the megaload smart arm as a correctness check: the op
// stream is random register ops (seeded, precomputed), every session records
// into one shared history, and the result is checked against the sequential
// register model. This is the long-chaos "megaload + churn" entry.
func RunMegaLin(tun Tuning, seed int64, sessions int, rate float64, dur time.Duration) (MegaLinResult, error) {
	res := MegaLinResult{Seed: seed, Sessions: sessions, Duration: dur}
	if tun.SubmitQueue == 0 {
		tun.SubmitQueue = 512
	}
	rng := rand.New(rand.NewSource(seed))
	total := int(rate * dur.Seconds())
	if total < 1 {
		total = 1
	}
	ops := make([][]byte, total)
	for i := range ops {
		ops[i] = genRegisterOp(rng)
	}
	rec := history.New()
	arm, err := runMegaArm(tun, megaCfg{
		label:      "mega-lin",
		sessions:   sessions,
		rate:       rate,
		dur:        dur,
		stormEvery: 300 * time.Millisecond,
		drain:      20 * time.Second,
		budget:     12,
		ops:        ops,
		rec:        rec,
	})
	if err != nil {
		return res, err
	}
	rec.Drain()
	res.OkOps, res.InfoOps, res.FailOps = rec.Counts()
	res.Reconfigs = arm.Reconfigs
	res.Silent = arm.Silent
	if arm.Violations != 0 {
		return res, fmt.Errorf("harness: %d invariant violations under megaload", arm.Violations)
	}
	chk := lincheck.CheckHistory(lincheck.RegisterModel(), rec.Ops(), lincheck.Options{
		Timeout: 60 * time.Second,
	})
	res.Checked = chk.Ops
	res.CheckParts = chk.Partitions
	res.CheckTime = chk.Elapsed
	res.Linearizable = chk.Ok
	res.Unknown = chk.Unknown
	res.Counterexample = chk.Counterexample
	return res, nil
}

// Render formats the MEGA-LIN report.
func (r MegaLinResult) Render() string {
	verdict := "LINEARIZABLE"
	switch {
	case r.Unknown:
		verdict = "UNKNOWN (checker timeout)"
	case !r.Linearizable:
		verdict = "VIOLATION"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "MEGA-LIN: linearizability under megaload + churn (seed %d, %d sessions, %s)\n",
		r.Seed, r.Sessions, r.Duration)
	fmt.Fprintf(&b, "  history: %d ops (%d ok, %d ambiguous, %d failed); %d reconfigs; %d silent drops\n",
		r.OkOps+r.InfoOps+r.FailOps, r.OkOps, r.InfoOps, r.FailOps, r.Reconfigs, r.Silent)
	fmt.Fprintf(&b, "  checker: %d ops in %d partition(s) in %s -> %s\n",
		r.Checked, r.CheckParts, fmtDur(r.CheckTime), verdict)
	if r.Counterexample != "" {
		fmt.Fprintf(&b, "  counterexample:\n    %s\n",
			strings.ReplaceAll(strings.TrimRight(r.Counterexample, "\n"), "\n", "\n    "))
	}
	return b.String()
}
