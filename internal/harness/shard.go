package harness

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/reconfig"
	"repro/internal/router"
	"repro/internal/statemachine"
	"repro/internal/stats"
	"repro/internal/types"
)

// --- S1: multi-group sharded runtime scaling ------------------------------------------

// ShardRow is one group-count measurement of the sharded runtime: the same
// three processes, the same client count, the same durable WAL — only the
// number of RSM groups the keyspace is partitioned across changes.
type ShardRow struct {
	Groups     int
	Throughput float64 // closed-loop acked routed writes/s, all groups
	Latency    stats.Summary
	// SyncsPerOp is physical fsyncs per acknowledged op, summed over the
	// three shared WALs. Falling as groups rise is the shared-WAL coalescing
	// evidence: more groups feed the same group commit, so each fsync
	// absorbs more commands.
	SyncsPerOp float64
	// GroupCommitsPerOp is engine bursts ending in one WAL sync per acked
	// op, summed across groups.
	GroupCommitsPerOp float64
	// AppendsPerOp is WAL record appends per acked op (work that scales
	// with ops regardless of batching; a sanity baseline for SyncsPerOp).
	AppendsPerOp float64
	QueueHigh    int64 // max apply-queue high water across groups
	Dropped      int64 // inbound messages dropped, summed across groups
	PerGroup     []cluster.GroupStats
}

// ShardResult is the S1 sweep.
type ShardResult struct {
	Procs   int
	Clients int
	Cores   int
	Rows    []ShardRow
}

// RunShardScaling measures aggregate committed-write throughput of the
// multi-group runtime at each group count: three processes host G groups
// (n=3 each) over shared transport and one fsynced WAL per process, a
// hash-partitioned router spreads a write-only workload across every
// group, and the closed-loop client count stays fixed so rows are
// comparable. Groups are independent RSM instances, so on a multi-core
// host G event loops commit in parallel while their records coalesce into
// the same per-process fsync.
func RunShardScaling(tuning Tuning, groupCounts []int, dur time.Duration, clients int) (ShardResult, error) {
	res := ShardResult{Procs: 3, Clients: clients, Cores: runtime.GOMAXPROCS(0)}
	for _, g := range groupCounts {
		row, err := runShardCell(tuning, g, dur, clients)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runShardCell(tuning Tuning, nGroups int, dur time.Duration, clients int) (ShardRow, error) {
	runtime.GC()
	m := cluster.NewGroupManager(cluster.Config{
		Transport: tuning.Net,
		Node: reconfig.Options{
			Paxos:         tuning.paxosOpts(),
			RetryInterval: tuning.Retry,
			LingerOld:     500 * time.Millisecond,
			FetchTimeout:  150 * time.Millisecond,
		},
		Storage:    StorageWAL,
		SyncWrites: true,
	})
	defer m.Close()

	gids := make([]types.GroupID, nGroups)
	for i := range gids {
		gids[i] = types.GroupID(i + 1)
	}
	smap, err := router.SplitShards(gids)
	if err != nil {
		return ShardRow{}, err
	}
	procs := nodeNames("p", 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, gid := range gids {
		if err := m.CreateGroup(gid, procs, router.PartitionedFactory(smap.ShardsOf(gid), smap.Gen)); err != nil {
			return ShardRow{}, err
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			return ShardRow{}, fmt.Errorf("group %d never served: %w", gid, err)
		}
	}
	ctl := router.NewController(m, smap)
	rt := router.New(m, ctl)

	// Warm every group: one routed write must land in each before the
	// measured window, so leader election is not on the clock.
	if err := warmShards(ctx, rt, smap); err != nil {
		return ShardRow{}, err
	}

	// Snapshot WAL counters so the row measures only the loaded window.
	syncs0, appends0 := storeIO(m, procs)
	commits0 := groupCommits(m)

	trace := NewTrace()
	loadCtx, loadCancel := context.WithTimeout(context.Background(), dur)
	var wg sync.WaitGroup
	value := []byte(fmt.Sprintf("%0128d", 7))
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
			clientID := types.NodeID(fmt.Sprintf("s%d", i))
			seq := uint64(0)
			for loadCtx.Err() == nil {
				seq++
				key := fmt.Sprintf("key-%05d", rng.Intn(4096))
				op := statemachine.EncodePut(key, value)
				opStart := time.Now()
				for loadCtx.Err() == nil {
					attempt, cancel := context.WithTimeout(loadCtx, 2*time.Second)
					_, err := rt.Submit(attempt, clientID, seq, key, op)
					cancel()
					if err == nil {
						trace.Ack(time.Since(opStart))
						break
					}
					trace.Retry()
					select {
					case <-loadCtx.Done():
					case <-time.After(2 * time.Millisecond):
					}
				}
			}
		}(i)
	}
	wg.Wait()
	loadCancel()

	syncs1, appends1 := storeIO(m, procs)
	commits1 := groupCommits(m)
	row := ShardRow{
		Groups:     nGroups,
		Throughput: trace.Throughput(),
		Latency:    trace.LatencySummary(),
		PerGroup:   m.PerGroupStats(),
	}
	if acked := trace.Acked(); acked > 0 {
		row.SyncsPerOp = float64(syncs1-syncs0) / float64(acked)
		row.AppendsPerOp = float64(appends1-appends0) / float64(acked)
		row.GroupCommitsPerOp = float64(commits1-commits0) / float64(acked)
	}
	for _, gs := range row.PerGroup {
		if gs.ApplyQueueHighWater > row.QueueHigh {
			row.QueueHigh = gs.ApplyQueueHighWater
		}
		row.Dropped += gs.DroppedInbound
	}
	if v := m.TotalViolations(); v != 0 {
		return row, fmt.Errorf("harness: %d invariant violations at %d groups", v, nGroups)
	}
	return row, nil
}

// warmShards routes one write into every shard owner so each group elects a
// leader and applies at least once before measurement starts.
func warmShards(ctx context.Context, rt *router.Router, smap router.ShardMap) error {
	need := groupCount(smap)
	warmed := make(map[types.GroupID]bool)
	seq := uint64(0)
	for i := 0; len(warmed) < need && i < 100000; i++ {
		key := fmt.Sprintf("warm-%d", i)
		_, gid := smap.OwnerOf(key)
		if warmed[gid] {
			continue
		}
		seq++
		deadline := time.Now().Add(15 * time.Second)
		for {
			attempt, cancel := context.WithTimeout(ctx, time.Second)
			_, err := rt.Submit(attempt, "warmup", seq, key, statemachine.EncodePut(key, []byte("1")))
			cancel()
			if err == nil {
				warmed[gid] = true
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("harness: group %d never warmed: %w", gid, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if len(warmed) < need {
		return fmt.Errorf("harness: only %d of %d groups warmed", len(warmed), need)
	}
	return nil
}

func groupCount(smap router.ShardMap) int {
	seen := make(map[types.GroupID]bool)
	for _, g := range smap.Owner {
		seen[g] = true
	}
	return len(seen)
}

// storeIO sums the shared WALs' fsync and append counters across processes.
func storeIO(m *cluster.GroupManager, procs []types.NodeID) (syncs, appends int64) {
	for _, id := range procs {
		s, a, ok := m.StoreIO(id)
		if ok {
			syncs += s
			appends += a
		}
	}
	return syncs, appends
}

// groupCommits sums the per-group engine group-commit counters.
func groupCommits(m *cluster.GroupManager) int64 {
	var total int64
	for _, gs := range m.PerGroupStats() {
		total += gs.GroupCommits
	}
	return total
}

// Render formats the shard scaling sweep: the aggregate table, the speedup
// column against the single-group row, and per-group health lines.
func (r ShardResult) Render() string {
	var base float64
	if len(r.Rows) > 0 {
		base = r.Rows[0].Throughput
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		speedup := "-"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", row.Throughput/base)
		}
		coalesce := "-"
		if row.SyncsPerOp > 0 {
			coalesce = fmt.Sprintf("%.2f", row.GroupCommitsPerOp/row.SyncsPerOp)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Groups),
			fmt.Sprintf("%.0f", row.Throughput),
			speedup,
			fmtDur(row.Latency.P50),
			fmtDur(row.Latency.P99),
			fmt.Sprintf("%.3f", row.SyncsPerOp),
			fmt.Sprintf("%.3f", row.GroupCommitsPerOp),
			coalesce,
			fmt.Sprintf("%.2f", row.AppendsPerOp),
			fmt.Sprintf("%d", row.QueueHigh),
			fmt.Sprintf("%d", row.Dropped),
		})
	}
	out := fmt.Sprintf("S1: sharded runtime — groups x aggregate write throughput (%d procs, n=3/group, %d clients, WAL fsync, %d cores)\n",
		r.Procs, r.Clients, r.Cores) +
		"one router, hash-partitioned keyspace; gc/sync > 1 = cross-group fsync coalescing (group commits per physical fsync)\n" +
		renderTable([]string{"groups", "ops/s", "speedup", "p50", "p99", "syncs/op", "gcommit/op", "gc/sync", "appends/op", "q-high", "dropped"}, rows)
	for _, row := range r.Rows {
		out += fmt.Sprintf("per-group (G=%d):", row.Groups)
		for _, gs := range row.PerGroup {
			out += fmt.Sprintf(" g%d{applied=%d dropped=%d qhigh=%d gcommits=%d}",
				gs.Group, gs.Applied, gs.DroppedInbound, gs.ApplyQueueHighWater, gs.GroupCommits)
		}
		out += "\n"
	}
	return out
}
