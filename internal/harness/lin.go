package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/nemesis"
	"repro/internal/statemachine"
	"repro/internal/types"
)

// composedNemesis adapts the composed deployment to the nemesis fault
// surface. Only the composed system supports the full mix (crash-restart
// needs per-node reboot over the same store).
type composedNemesis struct{ d *composedDep }

func (c composedNemesis) Partition(sides ...[]types.NodeID) { c.d.net.Partition(sides...) }
func (c composedNemesis) Isolate(id types.NodeID)           { c.d.net.Isolate(id) }
func (c composedNemesis) Heal()                             { c.d.net.HealAll() }

func (c composedNemesis) CrashRestart(_ context.Context, id types.NodeID) error {
	return c.d.CrashRestart(id)
}

func (c composedNemesis) Reconfigure(ctx context.Context, members []types.NodeID) error {
	attempt, cancel := context.WithTimeout(ctx, 8*time.Second)
	defer cancel()
	return c.d.Reconfigure(attempt, members)
}

func (c composedNemesis) Leader() types.NodeID { return c.d.Leader() }

// LinResult is the outcome of the LIN experiment: how much history was
// gathered under which faults, and what the checker decided.
type LinResult struct {
	Seed     int64
	Duration time.Duration
	Clients  int

	OkOps   int
	InfoOps int
	FailOps int

	Faults nemesis.Stats

	FastReads int64 // reads served by the fast path during the run
	Fenced    int64 // fast-path reads refused by wedge fencing
	Dropped   int64 // engine inbox overflows (silent message loss)

	Checked        int // operations the checker actually saw (ok + info)
	CheckParts     int // independent partitions (per-key)
	CheckTime      time.Duration
	Linearizable   bool
	Unknown        bool
	Counterexample string
}

// RunLin is the linearizability chaos experiment: concurrent clients drive
// random register ops against the composed system while a deterministic
// nemesis schedule (derived from seed) injects partitions, isolations,
// crash-restarts, leader kills and reconfigurations; afterwards the recorded
// history is checked against the sequential register model.
func RunLin(tun Tuning, seed int64, dur time.Duration, clients int) (LinResult, error) {
	res := LinResult{Seed: seed, Duration: dur, Clients: clients}
	pool := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	initial, spares := pool[:3], pool[3:]
	dep, err := newComposed(tun, statemachine.NewKVMachine, initial, spares)
	if err != nil {
		return res, err
	}
	defer dep.Close()

	rec := history.New()
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1009 + int64(g)))
			clientID := types.NodeID(fmt.Sprintf("lc%d", g))
			seq := uint64(0)
			for time.Now().Before(deadline) {
				seq++
				op := genRegisterOp(rng)
				h := rec.Invoke(clientID, seq, op)
				sent := false
				for {
					if !time.Now().Before(deadline) {
						if !sent {
							rec.Fail(h) // never reached a node: certainly not executed
						}
						return // else leave pending; Drain marks it ambiguous
					}
					ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
					reply, err := dep.Submit(ctx, clientID, seq, op)
					cancel()
					if err == nil {
						rec.Ok(h, reply)
						break
					}
					if !errors.Is(err, errNotNow) {
						sent = true // the command reached a node; outcome ambiguous
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(g)
	}

	steps := int(dur / (300 * time.Millisecond))
	if steps < 3 {
		steps = 3
	}
	schedule := nemesis.Generate(seed, nemesis.Profile{Pool: pool, Steps: steps})
	nemCtx, nemCancel := context.WithDeadline(context.Background(), deadline)
	res.Faults = nemesis.Execute(nemCtx, composedNemesis{dep}, schedule)
	nemCancel()
	dep.net.HealAll()

	wg.Wait()
	rec.Drain()
	res.OkOps, res.InfoOps, res.FailOps = rec.Counts()
	res.FastReads, _, res.Fenced, res.Dropped = dep.ReadStats()

	chk := lincheck.CheckHistory(lincheck.RegisterModel(), rec.Ops(), lincheck.Options{
		Timeout: 30 * time.Second,
	})
	res.Checked = chk.Ops
	res.CheckParts = chk.Partitions
	res.CheckTime = chk.Elapsed
	res.Linearizable = chk.Ok
	res.Unknown = chk.Unknown
	res.Counterexample = chk.Counterexample
	return res, nil
}

// genRegisterOp draws one random KV op over a small key/value space, mixing
// blind writes, reads, appends, deletes and CAS.
func genRegisterOp(rng *rand.Rand) []byte {
	key := fmt.Sprintf("k%d", rng.Intn(8))
	val := func() []byte { return []byte(fmt.Sprintf("v%d", rng.Intn(6))) }
	switch rng.Intn(10) {
	case 0, 1, 2:
		return statemachine.EncodePut(key, val())
	case 3, 4, 5:
		return statemachine.EncodeGet(key)
	case 6:
		return statemachine.EncodeDelete(key)
	case 7, 8:
		return statemachine.EncodeAppend(key, []byte{byte('a' + rng.Intn(4))})
	default:
		return statemachine.EncodeCAS(key, val(), val())
	}
}

// Render formats the LIN experiment report.
func (r LinResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LIN: linearizability under chaos (composed, seed %d, %d clients, %s)\n",
		r.Seed, r.Clients, r.Duration)
	fmt.Fprintf(&b, "  history: %d ops (%d ok, %d ambiguous, %d failed)\n",
		r.OkOps+r.InfoOps+r.FailOps, r.OkOps, r.InfoOps, r.FailOps)
	fmt.Fprintf(&b, "  faults:  %s\n", r.Faults)
	fmt.Fprintf(&b, "  reads:   %d fast, %d fenced; dropped inbound msgs: %d\n",
		r.FastReads, r.Fenced, r.Dropped)
	verdict := "LINEARIZABLE"
	switch {
	case r.Unknown:
		verdict = "UNKNOWN (checker timeout)"
	case !r.Linearizable:
		verdict = "VIOLATION"
	}
	fmt.Fprintf(&b, "  checker: %d ops in %d partition(s) in %s -> %s\n",
		r.Checked, r.CheckParts, fmtDur(r.CheckTime), verdict)
	if r.Counterexample != "" {
		fmt.Fprintf(&b, "  counterexample:\n    %s\n",
			strings.ReplaceAll(strings.TrimRight(r.Counterexample, "\n"), "\n", "\n    "))
	}
	return b.String()
}
