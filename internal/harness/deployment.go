// Package harness runs the experiments defined in DESIGN.md/EXPERIMENTS.md:
// it deploys each of the three systems (the paper's composed reconfigurable
// SMR, the stop-the-world baseline, and the in-band α-window baseline)
// behind one uniform interface, drives closed-loop client load, injects
// reconfigurations and failures, and reports tables and time series.
//
// All measurements use in-process submits on the serving nodes so the three
// systems are charged identically (no client RPC plane in the way), and all
// replication traffic crosses the simulated network where it is counted.
package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/baseline/inband"
	"repro/internal/baseline/stw"
	"repro/internal/paxos"
	"repro/internal/reconfig"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// SystemKind names one of the three systems under test.
type SystemKind uint8

const (
	// Composed is the paper's contribution: chained static engines.
	Composed SystemKind = 1
	// StopTheWorld is the halt-copy-reboot baseline.
	StopTheWorld SystemKind = 2
	// Inband is the α-window single-log baseline.
	Inband SystemKind = 3
)

// String implements fmt.Stringer.
func (k SystemKind) String() string {
	switch k {
	case Composed:
		return "composed"
	case StopTheWorld:
		return "stop-the-world"
	case Inband:
		return "inband"
	default:
		return fmt.Sprintf("system(%d)", uint8(k))
	}
}

// Deployment is the uniform handle the experiments drive.
type Deployment interface {
	// Submit executes one command for the given client session, retrying
	// internally only across node choice (not across time): a transient
	// outage surfaces as an error so the caller's retry loop observes it.
	Submit(ctx context.Context, clientID types.NodeID, seq uint64, op []byte) ([]byte, error)
	// Reconfigure moves the service to the given member set.
	Reconfigure(ctx context.Context, members []types.NodeID) error
	// Members returns the current configuration's member set.
	Members() []types.NodeID
	// NetStats returns the transport accounting counters.
	NetStats() transport.Stats
	// ResetNetStats zeroes the transport accounting counters.
	ResetNetStats()
	// Violations returns the total invariant violations observed.
	Violations() int64
	// Close tears the deployment down.
	Close()
}

// Tuning holds the timing shared by every deployment in an experiment.
type Tuning struct {
	Net     transport.Options
	Tick    time.Duration
	Retry   time.Duration
	Alpha   int  // inband only
	SpecOff bool // composed only: disable speculative engine start
	// Mono restores the pre-chunking monolithic state transfer on the
	// composed system (serialize-under-lock wedge, single-shot snapshot
	// fetch) — the ablation baseline the chunked transfer is measured
	// against.
	Mono     bool
	MaxDepth int // paxos hard inflight cap (0 = default)
	Batch    int // paxos commands per slot (0 = default; A1 ablation)
	// Pipeline is the proposer's working window: how many slots a leader
	// keeps concurrently in flight (0 = paxos default; W1 sweep).
	Pipeline int
	// SerialApply restores the composed system's coupled decide/apply path
	// (every command executed under the node mutex) — the W1 ablation
	// baseline the sharded parallel apply is measured against.
	SerialApply bool

	// SubmitQueue bounds each composed node's pending proposal queue
	// (admission control; 0 = reconfig default).
	SubmitQueue int
	// NoAdmission disables the composed system's admission control — the
	// C1 ablation: overload silently queues instead of shedding.
	NoAdmission bool
	// SessionLimit bounds each composed node's session dedup table to an
	// LRU of this many sessions (0 = unbounded).
	SessionLimit int

	// CheckpointInterval overrides the composed system's
	// within-configuration checkpoint interval in slots (0 = reconfig
	// default).
	CheckpointInterval int
	// CatchupGapSlots overrides the decision gap beyond which a composed
	// node fetches a checkpoint instead of replaying the log (0 = reconfig
	// default).
	CatchupGapSlots int
	// NoCheckpoints disables the composed system's within-configuration
	// checkpoints, log truncation and checkpoint catch-up — the K1
	// ablation: a lagging member replays the full log slot by slot.
	NoCheckpoints bool

	// Reads selects the composed system's read-serving mode (log, read-index
	// or leases); 0 keeps the reconfig default (read-index).
	Reads reconfig.ReadMode
	// LeaseTicks overrides the lease term when Reads is ReadModeLease.
	LeaseTicks int

	// Storage selects each node's backend: StorageMem (default), StorageFile
	// or StorageWAL. On-disk backends make the durability experiments real:
	// acceptor state actually hits the filesystem.
	Storage string
	// StorageDir roots the on-disk backends (one subdirectory per node).
	// Empty means a fresh OS temp directory, removed when the deployment
	// closes.
	StorageDir string
	// SyncWrites makes on-disk backends fsync before acknowledging writes —
	// the real acceptor durability contract.
	SyncWrites bool
}

// Storage backend names accepted by Tuning.Storage and the CLI flags.
const (
	StorageMem  = "mem"
	StorageFile = "file"
	StorageWAL  = "wal"
)

// DefaultTuning is the experiment-wide timing preset: ~200µs one-way links
// with 100µs jitter and 1ms consensus ticks.
func DefaultTuning() Tuning {
	return Tuning{
		Net: transport.Options{
			BaseLatency: 200 * time.Microsecond,
			Jitter:      100 * time.Microsecond,
			Seed:        1,
		},
		Tick:  time.Millisecond,
		Retry: 10 * time.Millisecond,
		Alpha: 4,
	}
}

func (t Tuning) paxosOpts() paxos.Options {
	return paxos.Options{
		TickInterval:         t.Tick,
		HeartbeatEveryTicks:  2,
		ElectionTimeoutTicks: 10,
		ElectionJitterTicks:  10,
		MaxInflight:          t.MaxDepth,
		BatchSize:            t.Batch,
		Pipeline:             t.Pipeline,
	}
}

// NewDeployment builds a deployment of the given kind with `initial` as
// configuration 1 and `spares` started but idle.
func NewDeployment(kind SystemKind, tuning Tuning, factory statemachine.Factory, initial, spares []types.NodeID) (Deployment, error) {
	switch kind {
	case Composed:
		return newComposed(tuning, factory, initial, spares)
	case StopTheWorld:
		return newSTW(tuning, factory, initial, spares)
	case Inband:
		return newInband(tuning, factory, initial, spares)
	default:
		return nil, fmt.Errorf("harness: unknown system %d", kind)
	}
}

// errNotNow signals "this node can't serve right now; try another/again".
var errNotNow = errors.New("harness: node unavailable")

// storeProvisioner builds per-node stores for one deployment according to
// the tuning and owns whatever backs them (file handles, a temp directory).
// It is used single-threaded during construction and again at Close.
type storeProvisioner struct {
	tuning  Tuning
	root    string
	tempDir bool
	closers []func()
}

func newStoreProvisioner(t Tuning) *storeProvisioner {
	return &storeProvisioner{tuning: t}
}

// open builds the store for one node.
func (p *storeProvisioner) open(id types.NodeID) (storage.Store, error) {
	switch p.tuning.Storage {
	case "", StorageMem:
		return storage.NewMem(), nil
	case StorageFile:
		dir, err := p.nodeDir(id)
		if err != nil {
			return nil, err
		}
		s, err := storage.OpenFile(dir, storage.FileOptions{SyncWrites: p.tuning.SyncWrites})
		if err != nil {
			return nil, err
		}
		p.closers = append(p.closers, s.Close)
		return s, nil
	case StorageWAL:
		dir, err := p.nodeDir(id)
		if err != nil {
			return nil, err
		}
		s, err := storage.OpenWALStore(dir, storage.WALStoreOptions{SyncWrites: p.tuning.SyncWrites})
		if err != nil {
			return nil, err
		}
		p.closers = append(p.closers, func() { _ = s.Close() })
		return s, nil
	default:
		return nil, fmt.Errorf("harness: unknown storage backend %q", p.tuning.Storage)
	}
}

func (p *storeProvisioner) nodeDir(id types.NodeID) (string, error) {
	if p.root == "" {
		if p.tuning.StorageDir != "" {
			p.root = p.tuning.StorageDir
		} else {
			dir, err := os.MkdirTemp("", "rsm-store-*")
			if err != nil {
				return "", fmt.Errorf("harness: storage dir: %w", err)
			}
			p.root = dir
			p.tempDir = true
		}
	}
	return filepath.Join(p.root, string(id)), nil
}

// close releases every store opened and removes the temp root, if any.
func (p *storeProvisioner) close() {
	for _, c := range p.closers {
		c()
	}
	p.closers = nil
	if p.tempDir && p.root != "" {
		_ = os.RemoveAll(p.root)
	}
}

// --- composed -----------------------------------------------------------------

type composedDep struct {
	net     *transport.Network
	stores  *storeProvisioner
	factory statemachine.Factory
	opts    reconfig.Options
	nodes   map[types.NodeID]*reconfig.Node
	byStore map[types.NodeID]storage.Store // each node's store, for crash-restart
	mu      sync.Mutex
	order   []types.NodeID
	rr      int
	leader  types.NodeID // cached leader for SubmitToLeader
}

func newComposed(t Tuning, factory statemachine.Factory, initial, spares []types.NodeID) (*composedDep, error) {
	d := &composedDep{
		net:     transport.NewNetwork(t.Net),
		stores:  newStoreProvisioner(t),
		factory: factory,
		nodes:   make(map[types.NodeID]*reconfig.Node),
		byStore: make(map[types.NodeID]storage.Store),
		order:   types.CloneNodeIDs(initial),
	}
	cfg, err := types.NewConfig(1, initial)
	if err != nil {
		return nil, err
	}
	spec := reconfig.SpecOn
	if t.SpecOff {
		spec = reconfig.SpecOff
	}
	d.opts = reconfig.Options{
		Paxos:              t.paxosOpts(),
		RetryInterval:      t.Retry,
		LingerOld:          500 * time.Millisecond,
		FetchTimeout:       150 * time.Millisecond,
		StaleJumpTicks:     15,
		GossipTicks:        20,
		SpeculativeStart:   spec,
		MonolithicTransfer: t.Mono,
		Reads:              t.Reads,
		LeaseTicks:         t.LeaseTicks,
		SerialApply:        t.SerialApply,
		SubmitQueue:        t.SubmitQueue,
		NoAdmission:        t.NoAdmission,
		SessionLimit:       t.SessionLimit,
		CheckpointInterval: t.CheckpointInterval,
		CatchupGapSlots:    t.CatchupGapSlots,
		NoCheckpoints:      t.NoCheckpoints,
	}
	boot := func(id types.NodeID, member bool) error {
		st, err := d.stores.open(id)
		if err != nil {
			return err
		}
		d.byStore[id] = st
		n, err := reconfig.NewNode(reconfig.NodeConfig{
			Self:     id,
			Endpoint: d.net.Endpoint(id),
			Store:    st,
			Factory:  factory,
			Opts:     d.opts,
		})
		if err != nil {
			return err
		}
		if member {
			if err := n.Bootstrap(cfg); err != nil {
				return err
			}
		}
		if err := n.Start(); err != nil {
			return err
		}
		d.nodes[id] = n
		return nil
	}
	for _, id := range initial {
		if err := boot(id, true); err != nil {
			d.Close()
			return nil, err
		}
	}
	for _, id := range spares {
		if err := boot(id, false); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

func (d *composedDep) pick() *reconfig.Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Prefer serving nodes (dedup fast path, fast reads); fall back to a
	// member that is speculatively accepting — during a full member
	// replacement no successor member serves until the first install, but
	// under SpecOn all of them order commands and park the replies.
	var accepting *reconfig.Node
	for i := 0; i < len(d.order); i++ {
		d.rr++
		n := d.nodes[d.order[d.rr%len(d.order)]]
		if n == nil {
			continue
		}
		if n.Serving() {
			return n
		}
		if accepting == nil && n.Accepting() {
			accepting = n
		}
	}
	return accepting
}

func (d *composedDep) Submit(ctx context.Context, clientID types.NodeID, seq uint64, op []byte) ([]byte, error) {
	n := d.pick()
	if n == nil {
		d.refreshOrder()
		return nil, errNotNow
	}
	reply, err := n.Submit(ctx, clientID, seq, op)
	if errors.Is(err, reconfig.ErrNotServing) {
		d.refreshOrder()
	}
	return reply, err
}

// SubmitToLeader sends one command through the node currently believed to
// lead, falling back to round-robin when no leader is known. The read
// experiments use it so fast-path reads land on the replica that can serve
// them; everything else about the call matches Submit.
func (d *composedDep) SubmitToLeader(ctx context.Context, clientID types.NodeID, seq uint64, op []byte) ([]byte, error) {
	d.mu.Lock()
	n := d.nodes[d.leader]
	d.mu.Unlock()
	if n == nil || !n.Serving() {
		n = d.findLeader()
	}
	if n == nil {
		n = d.pick()
	}
	if n == nil {
		d.refreshOrder()
		return nil, errNotNow
	}
	reply, err := n.Submit(ctx, clientID, seq, op)
	if err != nil {
		d.mu.Lock()
		d.leader = ""
		d.mu.Unlock()
		if errors.Is(err, reconfig.ErrNotServing) {
			d.refreshOrder()
		}
	}
	return reply, err
}

// findLeader scans the serving nodes for one that believes it leads and
// caches it.
func (d *composedDep) findLeader() *reconfig.Node {
	d.mu.Lock()
	nodes := make([]*reconfig.Node, 0, len(d.nodes))
	for _, n := range d.nodes {
		nodes = append(nodes, n)
	}
	d.mu.Unlock()
	for _, n := range nodes {
		if n != nil && n.Serving() && n.LeaderHint() == n.Self() {
			d.mu.Lock()
			d.leader = n.Self()
			d.mu.Unlock()
			return n
		}
	}
	return nil
}

// ReadStats sums the read-path and inbox-drop counters over all nodes.
func (d *composedDep) ReadStats() (fast, fallback, fenced, dropped int64) {
	d.mu.Lock()
	nodes := make([]*reconfig.Node, 0, len(d.nodes))
	for _, n := range d.nodes {
		nodes = append(nodes, n)
	}
	d.mu.Unlock()
	for _, n := range nodes {
		if n == nil {
			continue
		}
		st := n.Stats()
		fast += st.FastReads
		fallback += st.ReadFallbacks
		fenced += st.ReadFenced
		dropped += st.DroppedInbound
	}
	return fast, fallback, fenced, dropped
}

// TransferStats aggregates the state-transfer counters over a deployment:
// how many chunks moved, how many failed CRC, and the worst time any node
// held its mutex capturing state at a wedge.
type TransferStats struct {
	SnapshotsFetched int64
	ChunksFetched    int64
	ChunksServed     int64
	ChunkCRCRejected int64
	MaxWedgeCapture  time.Duration // max over nodes of the last wedge's capture
	SpecDecides      int64         // decisions learned before the deciding node's snapshot installed
	SpecParked       int64         // decisions parked in apply queues at the moment of install
	NodeResubmits    int64         // server-side pending-command re-proposals
}

// TransferStats sums the chunked-transfer counters over all nodes.
func (d *composedDep) TransferStats() TransferStats {
	d.mu.Lock()
	nodes := make([]*reconfig.Node, 0, len(d.nodes))
	for _, n := range d.nodes {
		nodes = append(nodes, n)
	}
	d.mu.Unlock()
	var out TransferStats
	for _, n := range nodes {
		if n == nil {
			continue
		}
		st := n.Stats()
		out.SnapshotsFetched += st.SnapshotsFetched
		out.ChunksFetched += st.ChunksFetched
		out.ChunksServed += st.ChunksServed
		out.ChunkCRCRejected += st.ChunkCRCRejected
		if d := time.Duration(st.WedgeCaptureNS); d > out.MaxWedgeCapture {
			out.MaxWedgeCapture = d
		}
		out.SpecDecides += st.SpeculativeDecides
		out.SpecParked += st.SpeculativeParked
		out.NodeResubmits += st.Resubmits
	}
	return out
}

// FirstDecideIn returns the earliest moment any of the given nodes learned a
// decided slot of configuration id — the joiners' time-to-first-decide
// numerator for the R2 shootout. ok is false when none has decided yet.
func (d *composedDep) FirstDecideIn(members []types.NodeID, id types.ConfigID) (time.Time, bool) {
	var best time.Time
	found := false
	for _, m := range members {
		n := d.Node(m)
		if n == nil {
			continue
		}
		if t, ok := n.FirstDecide(id); ok && (!found || t.Before(best)) {
			best, found = t, true
		}
	}
	return best, found
}

// refreshOrder re-learns the serving member set from any node.
func (d *composedDep) refreshOrder() {
	d.mu.Lock()
	defer d.mu.Unlock()
	best := types.Config{}
	for _, n := range d.nodes {
		if cfg := n.CurrentConfig(); cfg.ID > best.ID {
			best = cfg
		}
	}
	if best.ID != 0 {
		d.order = types.CloneNodeIDs(best.Members)
	}
}

func (d *composedDep) Reconfigure(ctx context.Context, members []types.NodeID) error {
	for {
		n := d.pick()
		if n == nil {
			return fmt.Errorf("harness: no serving node to reconfigure through")
		}
		_, err := n.Reconfigure(ctx, members)
		if err == nil || errors.Is(err, reconfig.ErrConflict) {
			d.refreshOrder()
			return err
		}
		if errors.Is(err, reconfig.ErrNotServing) {
			d.refreshOrder()
			continue
		}
		return err
	}
}

func (d *composedDep) Members() []types.NodeID {
	d.refreshOrder()
	d.mu.Lock()
	defer d.mu.Unlock()
	return types.CloneNodeIDs(d.order)
}

func (d *composedDep) NetStats() transport.Stats { return d.net.Stats() }
func (d *composedDep) ResetNetStats()            { d.net.ResetStats() }

func (d *composedDep) Violations() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var v int64
	for _, n := range d.nodes {
		v += n.Stats().InvariantViolations
	}
	return v
}

func (d *composedDep) Close() {
	d.mu.Lock()
	nodes := make([]*reconfig.Node, 0, len(d.nodes))
	for _, n := range d.nodes {
		nodes = append(nodes, n)
	}
	d.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	d.net.Close()
	d.stores.close()
}

// Nodes exposes the composed deployment's node map for experiments that
// need crash injection (T3).
func (d *composedDep) Node(id types.NodeID) *reconfig.Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nodes[id]
}

// CrashRestart stops a node like a killed process and reboots it over the
// same store: durable state survives, volatile state is lost.
func (d *composedDep) CrashRestart(id types.NodeID) error {
	d.mu.Lock()
	n := d.nodes[id]
	st := d.byStore[id]
	d.mu.Unlock()
	if st == nil {
		return fmt.Errorf("harness: unknown node %s", id)
	}
	if n != nil {
		n.Stop()
	}
	ep := d.net.Endpoint(id)
	ep.Resume()
	n2, err := reconfig.NewNode(reconfig.NodeConfig{
		Self:     id,
		Endpoint: ep,
		Store:    st,
		Factory:  d.factory,
		Opts:     d.opts,
	})
	if err != nil {
		return err
	}
	if err := n2.Start(); err != nil {
		return err
	}
	d.mu.Lock()
	d.nodes[id] = n2
	d.mu.Unlock()
	return nil
}

// Leader reports the leader hint of the first serving node ("" if none).
func (d *composedDep) Leader() types.NodeID {
	d.mu.Lock()
	nodes := make([]*reconfig.Node, 0, len(d.nodes))
	for _, n := range d.nodes {
		nodes = append(nodes, n)
	}
	d.mu.Unlock()
	for _, n := range nodes {
		if n != nil && n.Serving() {
			if lead := n.LeaderHint(); lead != "" {
				return lead
			}
		}
	}
	return ""
}

// --- stop-the-world --------------------------------------------------------------

type stwDep struct {
	net    *transport.Network
	stores *storeProvisioner
	svcs   map[types.NodeID]*stw.Service
	mu     sync.Mutex
	cur    types.Config
	rr     int
}

func newSTW(t Tuning, factory statemachine.Factory, initial, spares []types.NodeID) (*stwDep, error) {
	d := &stwDep{
		net:    transport.NewNetwork(t.Net),
		stores: newStoreProvisioner(t),
		svcs:   make(map[types.NodeID]*stw.Service),
	}
	cfg, err := types.NewConfig(1, initial)
	if err != nil {
		return nil, err
	}
	d.cur = cfg
	for _, id := range append(append([]types.NodeID{}, initial...), spares...) {
		st, err := d.stores.open(id)
		if err != nil {
			d.Close()
			return nil, err
		}
		svc, err := stw.NewService(stw.Config{
			Self:          id,
			Endpoint:      d.net.Endpoint(id),
			Store:         st,
			Factory:       factory,
			Paxos:         t.paxosOpts(),
			RetryInterval: t.Retry,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.svcs[id] = svc
	}
	for _, id := range initial {
		if err := d.svcs[id].BootInitial(cfg); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

func (d *stwDep) pick() *stw.Service {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < d.cur.N(); i++ {
		d.rr++
		svc := d.svcs[d.cur.Members[d.rr%d.cur.N()]]
		if svc != nil && !svc.Halted() {
			return svc
		}
	}
	return nil
}

func (d *stwDep) Submit(ctx context.Context, clientID types.NodeID, seq uint64, op []byte) ([]byte, error) {
	svc := d.pick()
	if svc == nil {
		return nil, errNotNow
	}
	return svc.Submit(ctx, clientID, seq, op)
}

func (d *stwDep) Reconfigure(_ context.Context, members []types.NodeID) error {
	d.mu.Lock()
	old := d.cur
	next, err := types.NewConfig(old.ID+1, members)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()

	if _, err := stw.Reconfigure(d.svcs, old, next, uint64(next.ID)); err != nil {
		return err
	}
	d.mu.Lock()
	d.cur = next
	d.mu.Unlock()
	return nil
}

func (d *stwDep) Members() []types.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return types.CloneNodeIDs(d.cur.Members)
}

func (d *stwDep) NetStats() transport.Stats { return d.net.Stats() }
func (d *stwDep) ResetNetStats()            { d.net.ResetStats() }
func (d *stwDep) Violations() int64         { return 0 }

func (d *stwDep) Close() {
	for _, svc := range d.svcs {
		svc.Stop()
	}
	d.net.Close()
	d.stores.close()
}

// --- inband -------------------------------------------------------------------------

type inbandDep struct {
	net    *transport.Network
	stores *storeProvisioner
	svcs   map[types.NodeID]*inband.Service
	mu     sync.Mutex
	cur    []types.NodeID
	rr     int
}

func newInband(t Tuning, factory statemachine.Factory, initial, spares []types.NodeID) (*inbandDep, error) {
	d := &inbandDep{
		net:    transport.NewNetwork(t.Net),
		stores: newStoreProvisioner(t),
		svcs:   make(map[types.NodeID]*inband.Service),
		cur:    types.CloneNodeIDs(initial),
	}
	cfg, err := types.NewConfig(1, initial)
	if err != nil {
		return nil, err
	}
	for _, id := range append(append([]types.NodeID{}, initial...), spares...) {
		st, err := d.stores.open(id)
		if err != nil {
			d.Close()
			return nil, err
		}
		svc, err := inband.NewService(inband.ServiceConfig{
			Self:     id,
			Endpoint: d.net.Endpoint(id),
			Store:    st,
			Factory:  factory,
			Initial:  cfg,
			Opts: inband.Options{
				Alpha:                t.Alpha,
				TickInterval:         t.Tick,
				HeartbeatEveryTicks:  2,
				ElectionTimeoutTicks: 10,
				ElectionJitterTicks:  10,
			},
			RetryInterval: t.Retry,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.svcs[id] = svc
	}
	return d, nil
}

func (d *inbandDep) pick() *inband.Service {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.cur) == 0 {
		return nil
	}
	d.rr++
	return d.svcs[d.cur[d.rr%len(d.cur)]]
}

func (d *inbandDep) Submit(ctx context.Context, clientID types.NodeID, seq uint64, op []byte) ([]byte, error) {
	svc := d.pick()
	if svc == nil {
		return nil, errNotNow
	}
	return svc.Submit(ctx, clientID, seq, op)
}

func (d *inbandDep) Reconfigure(ctx context.Context, members []types.NodeID) error {
	svc := d.pick()
	if svc == nil {
		return fmt.Errorf("harness: no inband member to reconfigure through")
	}
	if _, err := svc.Reconfigure(ctx, members); err != nil {
		return err
	}
	d.mu.Lock()
	d.cur = types.SortNodeIDs(types.CloneNodeIDs(members))
	d.mu.Unlock()
	return nil
}

func (d *inbandDep) Members() []types.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return types.CloneNodeIDs(d.cur)
}

func (d *inbandDep) NetStats() transport.Stats { return d.net.Stats() }
func (d *inbandDep) ResetNetStats()            { d.net.ResetStats() }

func (d *inbandDep) Violations() int64 {
	var v int64
	for _, svc := range d.svcs {
		v += svc.Engine().Stats().InvariantViolations
	}
	return v
}

func (d *inbandDep) Close() {
	for _, svc := range d.svcs {
		svc.Stop()
	}
	d.net.Close()
	d.stores.close()
}
