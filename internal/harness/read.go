package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/reconfig"
	"repro/internal/statemachine"
	"repro/internal/stats"
	"repro/internal/types"
	"repro/internal/workload"
)

// --- R1: linearizable read scaling -------------------------------------------------

// ReadRow is one (mode, cluster size, read ratio) steady-state measurement
// of the composed system.
type ReadRow struct {
	Mode       reconfig.ReadMode
	N          int
	Ratio      float64
	Throughput float64 // acked ops/s
	Latency    stats.Summary
	FastReads  int64 // reads served without a log append
	Fallbacks  int64 // fast-path reads rerouted through the log
	Fenced     int64 // fast-path reads refused by wedge fencing
	Dropped    int64 // engine inbox overflows during the run
}

// ReadResult is the read-scaling sweep.
type ReadResult struct {
	Rows []ReadRow
}

// readModeName names a mode for tables and flags.
func readModeName(m reconfig.ReadMode) string {
	switch m {
	case reconfig.ReadModeLog:
		return "log"
	case reconfig.ReadModeIndex:
		return "read-index"
	case reconfig.ReadModeLease:
		return "lease"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// RunReadScaling measures the composed system's throughput as the workload
// shifts toward reads, for each read-serving mode and cluster size. All
// clients target the leader (as a leader-based SMR deployment would), so
// the log path pays full consensus per read while read-index pays one
// heartbeat round shared across concurrent reads and leases pay nothing.
func RunReadScaling(tuning Tuning, modes []reconfig.ReadMode, sizes []int, ratios []float64, dur time.Duration, clients int) (ReadResult, error) {
	var res ReadResult
	for _, mode := range modes {
		for _, n := range sizes {
			for _, ratio := range ratios {
				runtime.GC()
				t := tuning
				t.Reads = mode
				t.StorageDir = "" // fresh temp dir per run
				dep, err := newComposed(t, statemachine.NewKVMachine, nodeNames("n", n), nil)
				if err != nil {
					return res, err
				}
				if err := waitWarm(dep); err != nil {
					dep.Close()
					return res, err
				}
				trace := NewTrace()
				ctx, cancel := context.WithTimeout(context.Background(), dur)
				runLeaderLoad(ctx, dep, clients, workload.Profile{Keys: 1000, ReadRatio: ratio, Seed: 17}, trace)
				cancel()
				fast, fallback, fenced, dropped := dep.ReadStats()
				dep.Close()
				res.Rows = append(res.Rows, ReadRow{
					Mode:       mode,
					N:          n,
					Ratio:      ratio,
					Throughput: trace.Throughput(),
					Latency:    trace.LatencySummary(),
					FastReads:  fast,
					Fallbacks:  fallback,
					Fenced:     fenced,
					Dropped:    dropped,
				})
			}
		}
	}
	return res, nil
}

// runLeaderLoad is runLoad with leader-targeted submission: every worker
// sends to the replica currently believed to lead.
func runLeaderLoad(ctx context.Context, dep *composedDep, clients int, profile workload.Profile, trace *Trace) {
	var wg sync.WaitGroup
	base := workload.NewGenerator(profile)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := base.Split(i)
			clientID := types.NodeID(fmt.Sprintf("r%d", i))
			seq := uint64(0)
			for ctx.Err() == nil {
				seq++
				op := gen.Op()
				opStart := time.Now()
				for ctx.Err() == nil {
					attempt, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
					_, err := dep.SubmitToLeader(attempt, clientID, seq, op)
					cancel()
					if err == nil {
						trace.Ack(time.Since(opStart))
						break
					}
					trace.Retry()
					select {
					case <-ctx.Done():
					case <-time.After(2 * time.Millisecond):
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// Render formats the read-scaling sweep.
func (r ReadResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			readModeName(row.Mode),
			fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.2f", row.Ratio),
			fmt.Sprintf("%.0f", row.Throughput),
			fmtDur(row.Latency.P50),
			fmtDur(row.Latency.P99),
			fmt.Sprintf("%d", row.FastReads),
			fmt.Sprintf("%d", row.Fallbacks),
			fmt.Sprintf("%d", row.Fenced),
			fmt.Sprintf("%d", row.Dropped),
		})
	}
	return "R1: linearizable read scaling — serving mode x read ratio (composed)\n" +
		renderTable([]string{"mode", "n", "reads", "ops/s", "p50", "p99", "fast", "fallback", "fenced", "dropped"}, rows)
}
