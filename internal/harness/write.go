package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/statemachine"
	"repro/internal/stats"
	"repro/internal/types"
	"repro/internal/workload"
)

// --- open-loop load driving ---------------------------------------------------------

// OpenLoadResult is one open-loop (fixed arrival rate) measurement.
//
// Latency is measured from each operation's INTENDED start time — the instant
// the arrival schedule said it should have been issued — not from when the
// generator actually got around to sending it. A closed-loop driver that
// stalls behind a slow server silently stops sampling exactly when the system
// is at its worst (coordinated omission); anchoring at the intended start
// charges every queuing delay to the server, the way a real open-world
// arrival process would experience it.
type OpenLoadResult struct {
	Rate     float64 // requested arrival rate, ops/s
	Acked    int     // operations acknowledged
	Achieved float64 // acked ops/s over the run
	Latency  stats.Summary
	// Skew is actual-send minus intended-start per operation: how far behind
	// schedule the generator itself fell. Near-zero skew means the latency
	// column is a faithful open-loop measurement; large skew means the
	// generator saturated and even intended-start anchoring understates.
	Skew stats.Summary
}

// runOpenLoad drives `clients` workers at a combined fixed arrival rate until
// ctx is done. Each worker owns an interleaved slice of the schedule and
// issues its operations sequentially: when an op completes after its
// successor's intended start, the successor is sent immediately and the wait
// it already accrued is part of its measured latency.
func runOpenLoad(ctx context.Context, dep Deployment, rate float64, clients int, profile workload.Profile) OpenLoadResult {
	if clients < 1 {
		clients = 1
	}
	interval := time.Duration(float64(clients) / rate * float64(time.Second))
	lat := &stats.LatencyRecorder{}
	skew := &stats.LatencyRecorder{}
	base := workload.NewGenerator(profile)
	start := time.Now()
	var acked int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := base.Split(i)
			clientID := types.NodeID(fmt.Sprintf("ol%d", i))
			// Stagger workers across one interval so combined arrivals are
			// evenly spaced at the requested rate.
			intended := start.Add(time.Duration(int64(interval) * int64(i) / int64(clients)))
			seq := uint64(0)
			for ctx.Err() == nil {
				if wait := time.Until(intended); wait > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(wait):
					}
				}
				skew.Record(time.Since(intended))
				seq++
				op := gen.Op()
				for ctx.Err() == nil {
					attempt, cancel := context.WithTimeout(ctx, 2*time.Second)
					_, err := dep.Submit(attempt, clientID, seq, op)
					cancel()
					if err == nil {
						lat.Record(time.Since(intended))
						mu.Lock()
						acked++
						mu.Unlock()
						break
					}
					select {
					case <-ctx.Done():
					case <-time.After(2 * time.Millisecond):
					}
				}
				intended = intended.Add(interval)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	res := OpenLoadResult{
		Rate:    rate,
		Acked:   int(acked),
		Latency: lat.Summarize(),
		Skew:    skew.Summarize(),
	}
	if elapsed > 0 {
		res.Achieved = float64(res.Acked) / elapsed
	}
	return res
}

// --- W1: write-path pipelining and parallel apply ------------------------------------

// W1Row is one (pipeline depth, apply mode) measurement of the composed
// system under write-heavy load with durable (fsynced WAL) acceptors.
type W1Row struct {
	Pipeline    int
	SerialApply bool
	Throughput  float64 // closed-loop saturated acked ops/s
	Closed      stats.Summary
	Open        OpenLoadResult // fixed-rate run against the same deployment
	QueueHigh   int64          // apply-queue high watermark over the run
	Stalls      int64          // engine consumers blocked on a full apply queue
}

// W1Result is the write-path sweep.
type W1Result struct {
	N       int
	Clients int
	Rows    []W1Row
}

// RunW1WritePath measures committed-write throughput and latency across
// pipeline depths and the serial-apply ablation, at n=3 with the fsynced WAL
// backend. Each cell runs a closed-loop saturation phase (throughput) and
// then an open-loop fixed-rate phase (coordinated-omission-safe latency)
// against a fresh deployment. openRate <= 0 skips the open-loop phase — the
// benchmark configuration, which only needs the throughput column.
func RunW1WritePath(tuning Tuning, depths []int, dur time.Duration, clients int, openRate float64) (W1Result, error) {
	res := W1Result{N: 3, Clients: clients}
	profile := workload.Profile{Keys: 1000, ReadRatio: 0, Seed: 7}
	for _, depth := range depths {
		for _, serial := range []bool{true, false} {
			runtime.GC()
			t := tuning
			t.Storage = StorageWAL
			t.SyncWrites = true
			t.StorageDir = "" // fresh temp dir per cell
			t.Pipeline = depth
			t.SerialApply = serial
			dep, err := newComposed(t, statemachine.NewKVMachine, nodeNames("n", 3), nil)
			if err != nil {
				return res, err
			}
			if err := waitWarm(dep); err != nil {
				dep.Close()
				return res, err
			}
			trace := NewTrace()
			ctx, cancel := context.WithTimeout(context.Background(), dur)
			runLoad(ctx, dep, clients, profile, trace)
			cancel()

			var open OpenLoadResult
			if openRate > 0 {
				ctx, cancel = context.WithTimeout(context.Background(), dur)
				open = runOpenLoad(ctx, dep, openRate, clients, profile)
				cancel()
			}

			var queueHigh, stalls int64
			for _, id := range nodeNames("n", 3) {
				if n := dep.Node(id); n != nil {
					st := n.Stats()
					if st.ApplyQueueHighWater > queueHigh {
						queueHigh = st.ApplyQueueHighWater
					}
					stalls += st.ApplyStalls
				}
			}
			dep.Close()
			res.Rows = append(res.Rows, W1Row{
				Pipeline:    depth,
				SerialApply: serial,
				Throughput:  trace.Throughput(),
				Closed:      trace.LatencySummary(),
				Open:        open,
				QueueHigh:   queueHigh,
				Stalls:      stalls,
			})
		}
	}
	return res, nil
}

// Render formats the write-path sweep.
func (r W1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		mode := "parallel"
		if row.SerialApply {
			mode = "serial"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Pipeline),
			mode,
			fmt.Sprintf("%.0f", row.Throughput),
			fmtDur(row.Closed.P50),
			fmt.Sprintf("%.0f", row.Open.Achieved),
			fmtDur(row.Open.Latency.P50),
			fmtDur(row.Open.Latency.P99),
			fmtDur(row.Open.Latency.P999),
			fmtDur(row.Open.Skew.P99),
			fmt.Sprintf("%d", row.QueueHigh),
			fmt.Sprintf("%d", row.Stalls),
		})
	}
	return fmt.Sprintf("W1: write path — pipeline depth x apply mode (composed, n=%d, %d clients, WAL fsync)\n", r.N, r.Clients) +
		"closed-loop saturation + open-loop fixed rate (latency from intended start)\n" +
		renderTable([]string{"depth", "apply", "ops/s", "cl-p50", "ol-ops/s", "ol-p50", "ol-p99", "ol-p999", "skew-p99", "q-high", "stalls"}, rows)
}
