package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/types"
	"repro/internal/workload"
)

// shortTuning keeps smoke tests fast: sub-millisecond links, 1ms ticks.
func shortTuning() Tuning {
	t := DefaultTuning()
	t.Net.BaseLatency = 100 * time.Microsecond
	t.Net.Jitter = 50 * time.Microsecond
	return t
}

func TestDeploymentsServeAllKinds(t *testing.T) {
	for _, kind := range []SystemKind{Composed, StopTheWorld, Inband} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			dep, err := NewDeployment(kind, shortTuning(), statemachine.NewKVMachine,
				nodeNames("n", 3), []types.NodeID{"s1"})
			if err != nil {
				t.Fatal(err)
			}
			defer dep.Close()
			if err := waitWarm(dep); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := dep.Submit(ctx, "c", 1, statemachine.EncodePut("k", []byte("v"))); err != nil {
				t.Fatal(err)
			}
			// Member swap works on every system.
			if err := dep.Reconfigure(ctx, []types.NodeID{"n1", "n2", "s1"}); err != nil {
				t.Fatal(err)
			}
			members := dep.Members()
			found := false
			for _, m := range members {
				if m == "s1" {
					found = true
				}
			}
			if !found {
				t.Fatalf("members after swap: %v", members)
			}
			// State survived the swap.
			deadline := time.Now().Add(10 * time.Second)
			for {
				a, cancel2 := context.WithTimeout(ctx, time.Second)
				reply, err := dep.Submit(a, "c", 2, statemachine.EncodeGet("k"))
				cancel2()
				if err == nil {
					if string(statemachine.ReplyPayload(reply)) != "v" {
						t.Fatalf("state lost: %q", statemachine.ReplyPayload(reply))
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("never served after swap: %v", err)
				}
			}
			if v := dep.Violations(); v != 0 {
				t.Fatalf("violations: %d", v)
			}
		})
	}
}

func TestRunLoadProducesTrace(t *testing.T) {
	dep, err := NewDeployment(Composed, shortTuning(), statemachine.NewKVMachine, nodeNames("n", 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if err := waitWarm(dep); err != nil {
		t.Fatal(err)
	}
	trace := NewTrace()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	runLoad(ctx, dep, 2, workload.Profile{Keys: 10, ReadRatio: 0.5, Seed: 1}, trace)
	cancel()
	if trace.Acked() == 0 {
		t.Fatal("no acks recorded")
	}
	if trace.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	if len(trace.Series(10*time.Millisecond)) == 0 {
		t.Fatal("no series")
	}
	if s := trace.LatencySummary(); s.Count != trace.Acked() {
		t.Fatalf("latency count %d vs acked %d", s.Count, trace.Acked())
	}
}

func TestPreloadFillsState(t *testing.T) {
	dep, err := NewDeployment(Composed, shortTuning(), statemachine.NewKVMachine, nodeNames("n", 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if err := waitWarm(dep); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	keys, err := preload(ctx, dep, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if keys < 8 {
		t.Fatalf("keys %d", keys)
	}
	reply, err := dep.Submit(ctx, "check", 1, statemachine.EncodeSize())
	if err != nil {
		t.Fatal(err)
	}
	n, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
	if int(n) < keys {
		t.Fatalf("machine holds %d keys, preloaded %d", n, keys)
	}
}

func TestRunDisruptionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	for _, kind := range []SystemKind{Composed, StopTheWorld, Inband} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			res, err := RunDisruption(kind, shortTuning(), 1200*time.Millisecond, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Throughput <= 0 {
				t.Fatal("no throughput")
			}
			if res.ViolationsSum != 0 {
				t.Fatalf("violations %d", res.ViolationsSum)
			}
			if res.Gap <= 0 {
				t.Fatal("gap not measured")
			}
			if out := res.Render(); !strings.Contains(out, kind.String()) {
				t.Fatalf("render: %s", out)
			}
		})
	}
}

func TestRunT1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := RunT1StaticScaling(shortTuning(), []int{1, 3}, 500*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Throughput <= 0 {
		t.Fatalf("%+v", res)
	}
	if out := res.Render(); !strings.Contains(out, "replicas") {
		t.Fatal("render broken")
	}
}

func TestRunT3FailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := RunT3Failover(shortTuning(), 1500*time.Millisecond, 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashToServe <= 0 || res.Throughput <= 0 {
		t.Fatalf("%+v", res)
	}
	if out := res.Render(); !strings.Contains(out, "failover") {
		t.Fatal("render broken")
	}
}

func TestRunF4AlphaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := RunF4Alpha(shortTuning(), []int{1, 8}, 500*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// α=8 should beat α=1 under concurrent load.
	if res.Rows[1].Throughput <= res.Rows[0].Throughput {
		t.Logf("warning: alpha=8 (%f) not faster than alpha=1 (%f) in short run",
			res.Rows[1].Throughput, res.Rows[0].Throughput)
	}
	if out := res.Render(); !strings.Contains(out, "α=1") {
		t.Fatal("render broken")
	}
}

func TestSparklineAndTable(t *testing.T) {
	if s := sparkline(nil, 10); s != "(empty)" {
		t.Fatal(s)
	}
	if s := sparkline([]int64{0, 0}, 10); !strings.Contains(s, "_") {
		t.Fatal(s)
	}
	s := sparkline([]int64{1, 5, 9, 2}, 4)
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q", s)
	}
	tbl := renderTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(tbl, "333") || !strings.Contains(tbl, "--") {
		t.Fatalf("table:\n%s", tbl)
	}
}

func TestSystemKindString(t *testing.T) {
	if Composed.String() != "composed" || StopTheWorld.String() != "stop-the-world" || Inband.String() != "inband" {
		t.Fatal("kind strings")
	}
}

func TestRunF2FullReplacementSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := RunF2StateTransfer(shortTuning(), []int{16 << 10}, 1200*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three variants per size: chunked spec-on, chunked spec-off, mono.
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ReconfigTook <= 0 || row.Gap <= 0 {
			t.Fatalf("unmeasured row %+v", row)
		}
	}
	if out := res.Render(); !strings.Contains(out, "speculative") {
		t.Fatal("render broken")
	}
}

func TestRunT4MessageCostSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := RunT4MessageCost(shortTuning(), 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MsgsPerOp < 3 { // at minimum accept+accepted+decide on 3 nodes
			t.Fatalf("implausible msgs/op %f for %s", row.MsgsPerOp, row.System)
		}
		if row.ReconfigMsgs == 0 {
			t.Fatalf("no reconfig traffic counted for %s", row.System)
		}
	}
	if out := res.Render(); !strings.Contains(out, "reconf-msgs") {
		t.Fatal("render broken")
	}
}

func TestRunF3ElasticSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := RunF3Elastic(shortTuning(), 250*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked == 0 || len(res.Marks) != 4 {
		t.Fatalf("acked %d marks %d", res.Acked, len(res.Marks))
	}
	if len(res.Chain) != 5 || res.Chain[len(res.Chain)-1] != "3" {
		t.Fatalf("chain %v", res.Chain)
	}
}

func TestRunDisruptionMedianSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := RunDisruptionMedian(Composed, shortTuning(), 900*time.Millisecond, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap <= 0 || res.Throughput <= 0 {
		t.Fatalf("%+v", res)
	}
}

func TestRunLinSmoke(t *testing.T) {
	res, err := RunLin(shortTuning(), 7, 1200*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unknown {
		t.Fatal("checker timed out on a smoke-sized history")
	}
	if !res.Linearizable {
		t.Fatalf("linearizability violation (seed %d):\n%s", res.Seed, res.Counterexample)
	}
	if res.OkOps == 0 {
		t.Fatal("no acknowledged ops; the run proved nothing")
	}
	if res.Faults.Total() == 0 {
		t.Fatal("no faults injected")
	}
	out := res.Render()
	for _, want := range []string{"LIN:", "seed 7", "LINEARIZABLE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRunK1CatchupSmoke runs both arms of the catch-up shootout at a small
// lag and checks the mechanisms actually engaged: the checkpoint arm must
// have fetched a checkpoint and truncated log slots, the ablation must have
// replayed (no fetches) with the full log retained.
func TestRunK1CatchupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tun := shortTuning()
	tun.CheckpointInterval = 300
	tun.CatchupGapSlots = 600
	res, err := RunK1Catchup(tun, 64<<10, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 arms, got %+v", res.Rows)
	}
	ckpt, abl := res.Rows[0], res.Rows[1]
	if !ckpt.Checkpoints || abl.Checkpoints {
		t.Fatalf("arm order: %+v", res.Rows)
	}
	if ckpt.Published == 0 || ckpt.Fetches == 0 || ckpt.Truncated == 0 {
		t.Fatalf("checkpoint arm never engaged: %+v", ckpt)
	}
	if ckpt.Retained >= abl.Retained {
		t.Fatalf("truncation did not bound the log: checkpoint retained %d >= ablation %d",
			ckpt.Retained, abl.Retained)
	}
	if abl.Fetches != 0 || abl.Published != 0 || abl.Truncated != 0 {
		t.Fatalf("ablation arm used checkpoints: %+v", abl)
	}
	out := res.Render()
	for _, want := range []string{"K1:", "checkpoints", "no-checkpoints"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
