package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/stats"
)

// renderTable lays out rows with aligned columns.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// sparkline renders a series as a compact unicode bar chart.
func sparkline(series []int64, width int) string {
	if len(series) == 0 {
		return "(empty)"
	}
	// Downsample to width buckets by summing.
	if width <= 0 {
		width = 60
	}
	buckets := make([]int64, width)
	for i, v := range series {
		buckets[i*width/len(series)] += v
	}
	if len(series) < width {
		buckets = buckets[:len(series)]
	}
	var max int64
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat("_", len(buckets))
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range buckets {
		idx := int(v * int64(len(levels)-1) / max)
		b.WriteRune(levels[idx])
	}
	return b.String()
}

func fmtDur(d time.Duration) string { return d.Round(100 * time.Microsecond).String() }

func fmtLat(s stats.Summary) string {
	return fmt.Sprintf("p50=%s p99=%s", fmtDur(s.P50), fmtDur(s.P99))
}

// Render formats the T1 table.
func (r T1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.0f", row.Throughput),
			fmtDur(row.Latency.P50),
			fmtDur(row.Latency.P99),
		})
	}
	return "T1: static Multi-Paxos substrate scaling\n" +
		renderTable([]string{"replicas", "ops/s", "p50", "p99"}, rows)
}

// Render formats the durable-backend comparison table.
func (r T1DurableResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		mode := "fsync"
		if row.Backend == StorageMem {
			mode = "none"
		}
		rows = append(rows, []string{
			row.Backend,
			mode,
			fmt.Sprintf("%.0f", row.Throughput),
			fmtDur(row.Latency.P50),
			fmtDur(row.Latency.P99),
		})
	}
	return fmt.Sprintf("T1d: durable acceptor persistence by storage backend (n=%d)\n", r.N) +
		renderTable([]string{"backend", "sync", "ops/s", "p50", "p99"}, rows)
}

// sysLabel names one disruption run's system, marking the composed
// monolithic-transfer ablation.
func sysLabel(r DisruptionResult) string {
	if r.Mono {
		return r.System.String() + "/mono"
	}
	return r.System.String()
}

// Render formats one disruption run as a figure-with-caption block.
func (r DisruptionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: member swap at bin %d (bin=%s)\n", sysLabel(r), r.MarkBin, r.Bin)
	fmt.Fprintf(&b, "  throughput series: %s\n", sparkline(r.Series, 72))
	fmt.Fprintf(&b, "  reconfig took %s; longest commit gap %s; retries %d\n",
		fmtDur(r.ReconfigTook), fmtDur(r.Gap), r.Retries)
	fmt.Fprintf(&b, "  latency steady [%s]  during reconfig [%s]\n", fmtLat(r.SteadyLat), fmtLat(r.DisruptLat))
	if r.StateKeys > 0 {
		fmt.Fprintf(&b, "  preloaded state: ~%d bytes (%d keys)\n", r.ApproxStateB, r.StateKeys)
	}
	if t := r.Transfer; t.ChunksFetched > 0 || t.MaxWedgeCapture > 0 {
		fmt.Fprintf(&b, "  transfer: %d chunks fetched (%d crc-rejected), wedge capture %s\n",
			t.ChunksFetched, t.ChunkCRCRejected, fmtDur(t.MaxWedgeCapture))
	}
	return b.String()
}

// RenderDisruptionTable formats several disruption runs as the T2 table.
func RenderDisruptionTable(results []DisruptionResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			sysLabel(r),
			fmt.Sprintf("%d", r.ApproxStateB),
			fmtDur(r.ReconfigTook),
			fmtDur(r.Gap),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Transfer.ChunksFetched),
			fmtDur(r.Transfer.MaxWedgeCapture),
		})
	}
	return "T2: reconfiguration disruption (member swap under load)\n" +
		renderTable([]string{"system", "state(B)", "reconfig", "max-gap", "ops/s", "retries", "chunks", "wedge-cap"}, rows)
}

// RenderLatencyTable formats disruption runs as the T5 latency table.
func RenderLatencyTable(results []DisruptionResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.System.String(),
			fmtDur(r.SteadyLat.P50), fmtDur(r.SteadyLat.P95), fmtDur(r.SteadyLat.P99),
			fmtDur(r.DisruptLat.P50), fmtDur(r.DisruptLat.P95), fmtDur(r.DisruptLat.P99),
		})
	}
	return "T5: client latency, steady state vs reconfiguration epoch\n" +
		renderTable([]string{"system", "st-p50", "st-p95", "st-p99", "rc-p50", "rc-p95", "rc-p99"}, rows)
}

// Render formats the F2 sweep.
func (r F2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		spec := "on"
		if !row.Speculative {
			spec = "off"
		}
		xfer := "chunked"
		if row.Mono {
			xfer = "mono"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.StateBytes),
			spec,
			xfer,
			fmtDur(row.ReconfigTook),
			fmtDur(row.Gap),
		})
	}
	return "F2: composed reconfiguration latency vs state size (speculation + transfer ablations)\n" +
		renderTable([]string{"state(B)", "speculative", "transfer", "reconfig", "max-gap"}, rows)
}

// Render formats the R2 shootout.
func (r R2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		variant := row.System.String()
		if row.System == Composed {
			if row.Speculative {
				variant += "/spec"
			} else {
				variant += "/wait"
			}
		}
		scenario := "swap"
		if row.FullReplace {
			scenario = "full-replace"
		}
		ttfd := "n/a"
		if row.TTFDKnown {
			ttfd = fmtDur(row.TTFD)
		}
		rows = append(rows, []string{
			variant,
			scenario,
			ttfd,
			fmtDur(row.ReconfigTook),
			fmtDur(row.Gap),
			fmt.Sprintf("%.0f%%", row.DipDepth*100),
			fmtDur(row.DipDur),
			fmt.Sprintf("%d", row.Retries),
			fmt.Sprintf("%d", row.SpecDecides),
			fmt.Sprintf("%.0f", row.Throughput),
		})
	}
	return fmt.Sprintf("R2: reconfiguration-latency shootout at %dB state (median of 3; inband row is a single swap — it cannot full-replace)\n", r.StateBytes) +
		renderTable([]string{"variant", "scenario", "ttfd", "reconfig", "max-gap", "dip", "dip-dur", "retries", "spec-dec", "ops/s"}, rows)
}

// Render formats the K1 catch-up shootout.
func (r K1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		variant := "checkpoints"
		if !row.Checkpoints {
			variant = "no-checkpoints"
		}
		rows = append(rows, []string{
			variant,
			fmt.Sprintf("%d", row.LagSlots),
			fmtDur(row.CatchupTook),
			fmtDur(row.RestartTook),
			fmt.Sprintf("%d", row.Published),
			fmt.Sprintf("%d", row.Fetches),
			fmt.Sprintf("%d", row.Truncated),
			fmt.Sprintf("%d", row.Retained),
		})
	}
	return fmt.Sprintf("K1: lagging-replica catch-up at %dB state, %d-slot lag (checkpoint fetch vs full replay)\n",
		r.StateBytes, r.LagTarget) +
		renderTable([]string{"variant", "lag", "catchup", "restart", "ckpts", "fetches", "trunc-slots", "retained"}, rows)
}

// Render formats the T3 failover measurement.
func (r T3Result) Render() string {
	return fmt.Sprintf(
		"T3: failover (crash -> detect %s -> replace)\n  reconfig took %s; crash-to-restored %s; longest gap %s; ops/s %.0f\n",
		fmtDur(r.DetectDelay), fmtDur(r.ReconfigTook), fmtDur(r.CrashToServe), fmtDur(r.GapAfterCrash), r.Throughput)
}

// Render formats the F3 elastic timeline.
func (r F3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F3: elastic chain %s under load (%d acks, bin=%s)\n",
		strings.Join(r.Chain, "→"), r.Acked, r.Bin)
	fmt.Fprintf(&b, "  %s\n", sparkline(r.Series, 72))
	for _, m := range r.Marks {
		fmt.Fprintf(&b, "  mark %-6s at +%s\n", m.Label, m.At.Sub(r.Start).Round(time.Millisecond))
	}
	return b.String()
}

// Render formats the T4 cost table.
func (r T4Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.System.String(),
			fmt.Sprintf("%d", row.Ops),
			fmt.Sprintf("%.1f", row.MsgsPerOp),
			fmt.Sprintf("%.0f", row.BytesPerOp),
			fmt.Sprintf("%d", row.ReconfigMsgs),
			fmt.Sprintf("%d", row.ReconfigByte),
		})
	}
	return "T4: protocol cost (per committed op; one member-swap reconfiguration)\n" +
		renderTable([]string{"system", "ops", "msgs/op", "bytes/op", "reconf-msgs", "reconf-bytes"}, rows)
}

// Render formats the F4 α sweep.
func (r F4Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		label := fmt.Sprintf("α=%d", row.Alpha)
		if row.Alpha == 0 {
			label = "composed(ref)"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.0f", row.Throughput),
			fmt.Sprintf("%d", row.Stalls),
		})
	}
	return "F4: in-band pipeline cap — throughput vs α (composed reference has no cap)\n" +
		renderTable([]string{"window", "ops/s", "stalls"}, rows)
}

// RenderCrossover formats composed-vs-inband disruption per state size (F5).
func RenderCrossover(results []DisruptionResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.ApproxStateB),
			sysLabel(r),
			fmtDur(r.Gap),
			fmtDur(r.ReconfigTook),
		})
	}
	return "F5: disruption vs state size — composed vs in-band (crossover)\n" +
		renderTable([]string{"state(B)", "system", "max-gap", "reconfig"}, rows)
}

// Render formats the A1 batching ablation.
func (r A1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.BatchSize),
			fmt.Sprintf("%.0f", row.Throughput),
			fmt.Sprintf("%.1f", row.MsgsPerOp),
			fmtDur(row.Latency.P50),
			fmtDur(row.Latency.P99),
		})
	}
	return "A1 (ablation): commands-per-slot batching on the static substrate\n" +
		renderTable([]string{"batch", "ops/s", "msgs/op", "p50", "p99"}, rows)
}
