package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/statemachine"
	"repro/internal/stats"
	"repro/internal/types"
	"repro/internal/workload"
)

// Trace records acknowledged operations with completion timestamps and
// latencies, the raw material for every throughput/latency/downtime figure.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	acks    []time.Time
	lats    []time.Duration
	marks   []stats.Mark
	retries int64
}

// NewTrace starts a trace at now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// Ack records one acknowledged operation.
func (t *Trace) Ack(lat time.Duration) {
	now := time.Now()
	t.mu.Lock()
	t.acks = append(t.acks, now)
	t.lats = append(t.lats, lat)
	t.mu.Unlock()
}

// Retry counts one failed attempt (timeout/redirect) before success.
func (t *Trace) Retry() {
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

// Mark labels the current instant.
func (t *Trace) Mark(label string) {
	now := time.Now()
	t.mu.Lock()
	t.marks = append(t.marks, stats.Mark{At: now, Label: label})
	t.mu.Unlock()
}

// Acked returns the number of acknowledged operations.
func (t *Trace) Acked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.acks)
}

// Retries returns the number of failed attempts.
func (t *Trace) Retries() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retries
}

// Marks returns the labeled instants.
func (t *Trace) Marks() []stats.Mark {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]stats.Mark, len(t.marks))
	copy(out, t.marks)
	return out
}

// Throughput returns acked ops per second over the trace's whole life.
func (t *Trace) Throughput() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.acks) == 0 {
		return 0
	}
	dur := t.acks[len(t.acks)-1].Sub(t.start).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(len(t.acks)) / dur
}

// Series bins ack counts into windows of the given width.
func (t *Trace) Series(bin time.Duration) []int64 {
	t.mu.Lock()
	acks := make([]time.Time, len(t.acks))
	copy(acks, t.acks)
	start := t.start
	t.mu.Unlock()
	if len(acks) == 0 {
		return nil
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i].Before(acks[j]) })
	n := int(acks[len(acks)-1].Sub(start)/bin) + 1
	out := make([]int64, n)
	for _, a := range acks {
		idx := int(a.Sub(start) / bin)
		if idx >= 0 && idx < n {
			out[idx]++
		}
	}
	return out
}

// GapAround returns the longest ack gap in [at-w, at+w]. The window is
// clamped to the observed ack range: time after the last ack of the whole
// trace carries no information (the load has ended) and is not counted.
func (t *Trace) GapAround(at time.Time, w time.Duration) time.Duration {
	t.mu.Lock()
	acks := make([]time.Time, len(t.acks))
	copy(acks, t.acks)
	t.mu.Unlock()
	lo, hi := at.Add(-w), at.Add(w)
	if len(acks) > 0 {
		last := acks[0]
		for _, a := range acks {
			if a.After(last) {
				last = a
			}
		}
		if hi.After(last) {
			hi = last
		}
		if t.start.After(lo) {
			lo = t.start
		}
		if !hi.After(lo) {
			return 0
		}
	}
	var in []time.Time
	for _, a := range acks {
		if !a.Before(lo) && !a.After(hi) {
			in = append(in, a)
		}
	}
	if len(in) == 0 {
		return 2 * w
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Before(in[j]) })
	longest := in[0].Sub(lo)
	for i := 1; i < len(in); i++ {
		if g := in[i].Sub(in[i-1]); g > longest {
			longest = g
		}
	}
	if tail := hi.Sub(in[len(in)-1]); tail > longest {
		longest = tail
	}
	return longest
}

// LatencyWindow summarizes latencies of acks completed in [lo, hi].
func (t *Trace) LatencyWindow(lo, hi time.Time) stats.Summary {
	t.mu.Lock()
	var samples []time.Duration
	for i, a := range t.acks {
		if !a.Before(lo) && !a.After(hi) {
			samples = append(samples, t.lats[i])
		}
	}
	t.mu.Unlock()
	return stats.Summarize(samples)
}

// LatencySummary summarizes all latencies.
func (t *Trace) LatencySummary() stats.Summary {
	t.mu.Lock()
	samples := make([]time.Duration, len(t.lats))
	copy(samples, t.lats)
	t.mu.Unlock()
	return stats.Summarize(samples)
}

// --- load driving ----------------------------------------------------------------

// runLoad drives `clients` closed-loop workers against dep until ctx is
// done, recording into trace. Each worker retries its current sequence
// number until acknowledged (at-most-once is preserved by the session layer).
func runLoad(ctx context.Context, dep Deployment, clients int, profile workload.Profile, trace *Trace) {
	var wg sync.WaitGroup
	base := workload.NewGenerator(profile)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := base.Split(i)
			clientID := types.NodeID(fmt.Sprintf("w%d", i))
			seq := uint64(0)
			for ctx.Err() == nil {
				seq++
				op := gen.Op()
				opStart := time.Now()
				for ctx.Err() == nil {
					attempt, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
					_, err := dep.Submit(attempt, clientID, seq, op)
					cancel()
					if err == nil {
						trace.Ack(time.Since(opStart))
						break
					}
					trace.Retry()
					select {
					case <-ctx.Done():
					case <-time.After(2 * time.Millisecond):
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// preload fills the KV machine with ~bytes of state using large values so
// the fill itself stays fast; it returns the number of keys written.
func preload(ctx context.Context, dep Deployment, bytes int) (int, error) {
	const valueSize = 8192
	keys := bytes / valueSize
	if keys < 1 {
		keys = 1
	}
	ops := workload.PreloadOps(keys, valueSize)
	for i, op := range ops {
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			a, cancel := context.WithTimeout(ctx, time.Second)
			_, err = dep.Submit(a, "preloader", uint64(i+1), op)
			cancel()
			if err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err != nil {
			return keys, fmt.Errorf("preload op %d: %w", i, err)
		}
	}
	return keys, nil
}

// waitWarm blocks until the deployment acknowledges a probe command,
// i.e. a leader exists and the pipeline works.
func waitWarm(dep Deployment) error {
	deadline := time.Now().Add(15 * time.Second)
	seq := uint64(0)
	for time.Now().Before(deadline) {
		seq++
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := dep.Submit(ctx, "warmup", seq, statemachine.EncodePut("warm", []byte("1")))
		cancel()
		if err == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("harness: deployment never warmed up")
}

// nodeNames generates n1..nN.
func nodeNames(prefix string, n int) []types.NodeID {
	out := make([]types.NodeID, n)
	for i := range out {
		out[i] = types.NodeID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

// --- T1: static substrate scaling ------------------------------------------------

// T1Row is one cluster size's steady-state measurement.
type T1Row struct {
	N          int
	Throughput float64 // acked ops/s
	Latency    stats.Summary
}

// T1Result is the static-Paxos scaling table.
type T1Result struct {
	Rows []T1Row
}

// RunT1StaticScaling measures the static engine (via the stop-the-world
// service, which is exactly "static Paxos + sessions" when never
// reconfigured) at several cluster sizes.
func RunT1StaticScaling(tuning Tuning, sizes []int, dur time.Duration, clients int) (T1Result, error) {
	var res T1Result
	for _, n := range sizes {
		runtime.GC()
		dep, err := NewDeployment(StopTheWorld, tuning, statemachine.NewKVMachine, nodeNames("n", n), nil)
		if err != nil {
			return res, err
		}
		if err := waitWarm(dep); err != nil {
			dep.Close()
			return res, err
		}
		trace := NewTrace()
		ctx, cancel := context.WithTimeout(context.Background(), dur)
		runLoad(ctx, dep, clients, workload.Profile{Keys: 1000, ReadRatio: 0.5, Seed: 42}, trace)
		cancel()
		dep.Close()
		res.Rows = append(res.Rows, T1Row{N: n, Throughput: trace.Throughput(), Latency: trace.LatencySummary()})
	}
	return res, nil
}

// --- T1d: durable-backend comparison ----------------------------------------------

// T1DurableRow is one storage backend's steady-state measurement.
type T1DurableRow struct {
	Backend    string
	Throughput float64 // acked ops/s
	Latency    stats.Summary
}

// T1DurableResult compares storage backends with acceptor persistence
// actually hitting the filesystem.
type T1DurableResult struct {
	N    int
	Rows []T1DurableRow
}

// RunT1Durable measures the static engine at one cluster size across storage
// backends. On-disk backends run with SyncWrites so every accept pays for
// durability before replying — this is where the WAL's group commit separates
// from file-per-key persistence.
func RunT1Durable(tuning Tuning, backends []string, n int, dur time.Duration, clients int) (T1DurableResult, error) {
	res := T1DurableResult{N: n}
	for _, backend := range backends {
		runtime.GC()
		tb := tuning
		tb.Storage = backend
		tb.StorageDir = "" // fresh temp dir per backend run
		tb.SyncWrites = backend != StorageMem
		dep, err := NewDeployment(StopTheWorld, tb, statemachine.NewKVMachine, nodeNames("n", n), nil)
		if err != nil {
			return res, err
		}
		if err := waitWarm(dep); err != nil {
			dep.Close()
			return res, err
		}
		trace := NewTrace()
		ctx, cancel := context.WithTimeout(context.Background(), dur)
		runLoad(ctx, dep, clients, workload.Profile{Keys: 1000, ReadRatio: 0.5, Seed: 42}, trace)
		cancel()
		dep.Close()
		res.Rows = append(res.Rows, T1DurableRow{Backend: backend, Throughput: trace.Throughput(), Latency: trace.LatencySummary()})
	}
	return res, nil
}

// --- F1/T2/T5: reconfiguration disruption ------------------------------------------

// DisruptionResult measures one system's behaviour around a member swap.
type DisruptionResult struct {
	System        SystemKind
	Series        []int64 // acked ops per bin
	Bin           time.Duration
	MarkBin       int           // bin index where the reconfiguration was issued
	ReconfigTook  time.Duration // duration of the Reconfigure call
	Gap           time.Duration // longest ack gap around the reconfiguration
	SteadyLat     stats.Summary // latency before the reconfiguration
	DisruptLat    stats.Summary // latency around the reconfiguration
	Throughput    float64
	Retries       int64
	StateKeys     int
	ApproxStateB  int
	ViolationsSum int64
	Mono          bool          // composed only: monolithic-transfer ablation
	Transfer      TransferStats // composed only: chunk counters + wedge capture
	// TTFD is the time from issuing the reconfiguration to the first moment
	// any brand-new member learned a decided slot of the successor
	// configuration — the headline R2 metric. Composed only; TTFDKnown is
	// false for baselines (no per-config engine to observe) and when the
	// swap added no new members.
	TTFD      time.Duration
	TTFDKnown bool
}

// RunDisruption runs one system through: warm-up, optional preload, steady
// load, a member swap (n3 → s1) at mid-run, more steady load.
func RunDisruption(kind SystemKind, tuning Tuning, dur time.Duration, clients, stateBytes int) (DisruptionResult, error) {
	return RunDisruptionTo(kind, tuning, dur, clients, stateBytes,
		[]types.NodeID{"s1"}, []types.NodeID{"n1", "n2", "s1"})
}

// WarmHeap runs one throwaway disruption at the given state size and
// discards the result. The first multi-megabyte scenario in a process pays a
// one-time heap-growth/page-zeroing stall (hundreds of milliseconds at 8MB,
// and it persists under GOGC=off, so it is not collector pacing) that would
// otherwise land on whichever variant happens to run first in a sweep.
// Both transfer paths are warmed: the monolithic path's contiguous
// state-size buffer needs its own first-touch pass.
func WarmHeap(tuning Tuning, stateBytes int) {
	if stateBytes < 1<<20 {
		return
	}
	for _, mono := range []bool{false, true} {
		t := tuning
		t.Mono = mono
		_, _ = RunDisruption(Composed, t, 500*time.Millisecond, 2, stateBytes)
	}
}

// RunDisruptionMedian runs the disruption scenario three times and returns
// the run with the median commit gap, damping single-run scheduler and GC
// noise in the headline downtime numbers.
func RunDisruptionMedian(kind SystemKind, tuning Tuning, dur time.Duration, clients, stateBytes int) (DisruptionResult, error) {
	runs := make([]DisruptionResult, 0, 3)
	for i := 0; i < 3; i++ {
		r, err := RunDisruption(kind, tuning, dur, clients, stateBytes)
		if err != nil {
			return DisruptionResult{}, err
		}
		runs = append(runs, r)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Gap < runs[j].Gap })
	return runs[1], nil
}

// RunDisruptionTo is the general form: spares to start, and the target
// member set for the mid-run reconfiguration.
func RunDisruptionTo(kind SystemKind, tuning Tuning, dur time.Duration, clients, stateBytes int, spares, target []types.NodeID) (DisruptionResult, error) {
	runtime.GC() // level the heap between experiment runs
	initial := nodeNames("n", 3)
	dep, err := NewDeployment(kind, tuning, statemachine.NewKVMachine, initial, spares)
	if err != nil {
		return DisruptionResult{}, err
	}
	defer dep.Close()
	if err := waitWarm(dep); err != nil {
		return DisruptionResult{}, err
	}
	keys := 0
	if stateBytes > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		keys, err = preload(ctx, dep, stateBytes)
		cancel()
		if err != nil {
			return DisruptionResult{}, err
		}
		runtime.GC() // the preload burst leaves a large dead heap behind
	}

	trace := NewTrace()
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runLoad(ctx, dep, clients, workload.Profile{Keys: 500, ReadRatio: 0.5, Seed: 7}, trace)
	}()

	time.Sleep(dur / 2)
	trace.Mark("reconfig")
	recStart := time.Now()
	rerr := dep.Reconfigure(context.Background(), target)
	recTook := time.Since(recStart)
	trace.Mark("reconfig-done")
	wg.Wait()
	cancel()
	if rerr != nil {
		return DisruptionResult{}, fmt.Errorf("reconfigure: %w", rerr)
	}

	const bin = 10 * time.Millisecond
	marks := trace.Marks()
	markAt := marks[0].At
	res := DisruptionResult{
		System:        kind,
		Series:        trace.Series(bin),
		Bin:           bin,
		MarkBin:       int(markAt.Sub(trace.start) / bin),
		ReconfigTook:  recTook,
		Gap:           trace.GapAround(markAt.Add(recTook/2), recTook/2+time.Second),
		SteadyLat:     trace.LatencyWindow(trace.start, markAt.Add(-100*time.Millisecond)),
		DisruptLat:    trace.LatencyWindow(markAt.Add(-100*time.Millisecond), markAt.Add(recTook+time.Second)),
		Throughput:    trace.Throughput(),
		Retries:       trace.Retries(),
		StateKeys:     keys,
		ApproxStateB:  stateBytes,
		ViolationsSum: dep.Violations(),
		Mono:          tuning.Mono,
	}
	if cd, ok := dep.(*composedDep); ok {
		res.Transfer = cd.TransferStats()
		// Time-to-first-decide in the successor configuration, measured at
		// the brand-new members. The decision-routing timestamp is recorded
		// identically under SpecOn and SpecOff, so the comparison is fair:
		// without speculation a joiner's engine only exists after install,
		// which is exactly the latency the metric is meant to expose.
		var joiners []types.NodeID
		known := map[types.NodeID]bool{}
		for _, id := range initial {
			known[id] = true
		}
		newID := types.ConfigID(0)
		for _, id := range target {
			if !known[id] {
				joiners = append(joiners, id)
				if n := cd.Node(id); n != nil {
					if cfg := n.CurrentConfig(); cfg.ID > newID {
						newID = cfg.ID
					}
				}
			}
		}
		if len(joiners) > 0 && newID > 0 {
			if at, ok := cd.FirstDecideIn(joiners, newID); ok {
				res.TTFD = at.Sub(recStart)
				res.TTFDKnown = true
			}
		}
	}
	return res, nil
}

// --- F2: state transfer cost (composed, speculation ablation) ------------------------

// F2Row is one (state size, speculation, transfer-mode) measurement of the
// composed system.
type F2Row struct {
	StateBytes   int
	Speculative  bool
	Mono         bool // monolithic-transfer ablation (chunked is the default)
	ReconfigTook time.Duration
	Gap          time.Duration
}

// F2Result is the state-transfer sweep.
type F2Result struct {
	Rows []F2Row
}

// RunF2StateTransfer sweeps snapshot size for the composed system with and
// without speculative successor start, plus a monolithic-transfer ablation
// row per size. The reconfiguration is a FULL replacement — every successor
// member is brand new — so no replica holds the state locally and the
// transfer truly gates execution; this is the scenario where speculation
// (ordering while the snapshot streams) pays and where chunked transfer
// separates from single-shot fetch.
func RunF2StateTransfer(tuning Tuning, sizes []int, dur time.Duration, clients int) (F2Result, error) {
	var res F2Result
	spares := []types.NodeID{"s1", "s2", "s3"}
	variants := []struct{ spec, mono bool }{
		{spec: true, mono: false},
		{spec: false, mono: false},
		{spec: true, mono: true},
	}
	for _, size := range sizes {
		for _, v := range variants {
			t := tuning
			t.SpecOff = !v.spec
			t.Mono = v.mono
			r, err := RunDisruptionTo(Composed, t, dur, clients, size, spares, spares)
			if err != nil {
				return res, fmt.Errorf("size %d spec %v mono %v: %w", size, v.spec, v.mono, err)
			}
			res.Rows = append(res.Rows, F2Row{
				StateBytes:   size,
				Speculative:  v.spec,
				Mono:         v.mono,
				ReconfigTook: r.ReconfigTook,
				Gap:          r.Gap,
			})
		}
	}
	return res, nil
}

// --- R2: reconfig-latency shootout (speculative vs wait-for-transfer vs inband) -----

// R2Row is one variant of the reconfiguration-latency shootout.
type R2Row struct {
	System       SystemKind
	Speculative  bool // composed only
	FullReplace  bool // every successor member is brand new
	TTFD         time.Duration
	TTFDKnown    bool
	ReconfigTook time.Duration
	Gap          time.Duration
	DipDepth     float64       // fraction of steady throughput lost at the trough
	DipDur       time.Duration // contiguous window below half the steady rate
	Retries      int64         // client-side re-submissions over the run
	Resubmits    int64         // composed only: server-side pending re-proposals
	SpecDecides  int64         // composed only: decisions learned before install
	Throughput   float64
}

// R2Result is the shootout at one state size.
type R2Result struct {
	StateBytes int
	Rows       []R2Row
}

// dipStats characterizes the throughput dip after the reconfiguration mark:
// depth is the fraction of steady-state throughput lost at the deepest bin,
// dur is the length of the first contiguous window at or after the mark whose
// rate stays below half the steady rate. The final bin is excluded (it is
// truncated by the run deadline).
func dipStats(series []int64, bin time.Duration, markBin int) (depth float64, dur time.Duration) {
	if markBin <= 0 || markBin >= len(series) {
		return 0, 0
	}
	var sum int64
	for _, v := range series[:markBin] {
		sum += v
	}
	steady := float64(sum) / float64(markBin)
	if steady <= 0 {
		return 0, 0
	}
	tail := series[markBin:]
	if len(tail) > 1 {
		tail = tail[:len(tail)-1]
	}
	trough := tail[0]
	for _, v := range tail {
		if v < trough {
			trough = v
		}
	}
	depth = 1 - float64(trough)/steady
	if depth < 0 {
		depth = 0
	}
	half := steady / 2
	i := 0
	for i < len(tail) && float64(tail[i]) >= half {
		i++
	}
	j := i
	for j < len(tail) && float64(tail[j]) < half {
		j++
	}
	return depth, time.Duration(j-i) * bin
}

// RunR2ReconfigShootout is the flagship head-to-head reconfiguration-latency
// experiment: composed with speculative start, composed with the
// wait-for-transfer ablation (Options.SpeculativeStart = SpecOff), and the
// in-band baseline, at one preloaded state size. The composed variants run a
// FULL member replacement (every successor member brand new), the scenario
// where nothing can execute in c+1 until a joiner holds the state — so
// time-to-first-decide isolates exactly what speculation buys. The in-band
// baseline cannot replace its whole member set (new members catch up by
// replaying the shared log from surviving members; no out-of-band snapshot
// path exists), so its row is the T2-style single swap n3 → s1 — a strictly
// easier scenario, noted in the rendered table.
//
// Each variant reports the median-of-3 run (by TTFD where measurable, else by
// commit gap), damping scheduler noise in the headline numbers.
func RunR2ReconfigShootout(tuning Tuning, stateBytes int, dur time.Duration, clients int) (R2Result, error) {
	WarmHeap(tuning, stateBytes)
	res := R2Result{StateBytes: stateBytes}
	fullSpares := []types.NodeID{"s1", "s2", "s3"}
	swapSpares := []types.NodeID{"s1"}
	swapTarget := []types.NodeID{"n1", "n2", "s1"}
	variants := []struct {
		kind SystemKind
		spec bool
		full bool
	}{
		{Composed, true, true},
		{Composed, false, true},
		{Inband, false, false},
	}
	for _, v := range variants {
		t := tuning
		t.SpecOff = v.kind == Composed && !v.spec
		spares, target := fullSpares, fullSpares
		if !v.full {
			spares, target = swapSpares, swapTarget
		}
		runs := make([]DisruptionResult, 0, 3)
		for i := 0; i < 3; i++ {
			r, err := RunDisruptionTo(v.kind, t, dur, clients, stateBytes, spares, target)
			if err != nil {
				return res, fmt.Errorf("r2 %s spec=%v: %w", v.kind, v.spec, err)
			}
			runs = append(runs, r)
		}
		sort.Slice(runs, func(i, j int) bool {
			// TTFD-known runs sort first (among themselves by TTFD), unknown
			// runs last by gap; mixing the two keys directly would not be a
			// strict weak ordering and sort.Slice could return any order.
			if runs[i].TTFDKnown != runs[j].TTFDKnown {
				return runs[i].TTFDKnown
			}
			if runs[i].TTFDKnown {
				return runs[i].TTFD < runs[j].TTFD
			}
			return runs[i].Gap < runs[j].Gap
		})
		r := runs[1]
		depth, ddur := dipStats(r.Series, r.Bin, r.MarkBin)
		res.Rows = append(res.Rows, R2Row{
			System:       v.kind,
			Speculative:  v.spec,
			FullReplace:  v.full,
			TTFD:         r.TTFD,
			TTFDKnown:    r.TTFDKnown,
			ReconfigTook: r.ReconfigTook,
			Gap:          r.Gap,
			DipDepth:     depth,
			DipDur:       ddur,
			Retries:      r.Retries,
			Resubmits:    r.Transfer.NodeResubmits,
			SpecDecides:  r.Transfer.SpecDecides,
			Throughput:   r.Throughput,
		})
	}
	return res, nil
}

// --- T3: failover -----------------------------------------------------------------

// T3Result measures replacing a crashed replica.
type T3Result struct {
	DetectDelay   time.Duration // injected monitoring delay
	ReconfigTook  time.Duration
	CrashToServe  time.Duration // crash -> first ack after replacement done
	GapAfterCrash time.Duration // longest ack gap around the crash+repair
	Throughput    float64
}

// RunT3Failover crashes a member mid-run, waits a monitoring delay, then
// replaces it with a spare through reconfiguration.
func RunT3Failover(tuning Tuning, dur time.Duration, clients int, detectDelay time.Duration) (T3Result, error) {
	dep, err := newComposed(tuning, statemachine.NewKVMachine, nodeNames("n", 3), []types.NodeID{"s1"})
	if err != nil {
		return T3Result{}, err
	}
	defer dep.Close()
	if err := waitWarm(dep); err != nil {
		return T3Result{}, err
	}

	trace := NewTrace()
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runLoad(ctx, dep, clients, workload.Profile{Keys: 500, ReadRatio: 0.5, Seed: 9}, trace)
	}()

	time.Sleep(dur / 2)
	trace.Mark("crash")
	crashAt := time.Now()
	dep.net.Isolate("n3") // hard crash of n3

	time.Sleep(detectDelay)
	recStart := time.Now()
	rerr := dep.Reconfigure(context.Background(), []types.NodeID{"n1", "n2", "s1"})
	recTook := time.Since(recStart)
	trace.Mark("replaced")
	firstAfter := time.Now()
	wg.Wait()
	cancel()
	if rerr != nil {
		return T3Result{}, fmt.Errorf("replace: %w", rerr)
	}
	return T3Result{
		DetectDelay:   detectDelay,
		ReconfigTook:  recTook,
		CrashToServe:  firstAfter.Sub(crashAt),
		GapAfterCrash: trace.GapAround(crashAt.Add(detectDelay), detectDelay+recTook+time.Second),
		Throughput:    trace.Throughput(),
	}, nil
}

// --- F3: elastic chain -------------------------------------------------------------

// F3Result is the elastic scale-out/in timeline.
type F3Result struct {
	Series []int64
	Bin    time.Duration
	Marks  []stats.Mark
	Start  time.Time
	Acked  int
	Chain  []string // configuration sizes traversed
}

// RunF3Elastic grows 3→5→7 and shrinks back 7→5→3 under load.
func RunF3Elastic(tuning Tuning, phase time.Duration, clients int) (F3Result, error) {
	all := nodeNames("n", 7)
	dep, err := NewDeployment(Composed, tuning, statemachine.NewKVMachine, all[:3], all[3:])
	if err != nil {
		return F3Result{}, err
	}
	defer dep.Close()
	if err := waitWarm(dep); err != nil {
		return F3Result{}, err
	}

	steps := [][]types.NodeID{all[:5], all[:7], all[:5], all[:3]}
	total := phase * time.Duration(len(steps)+1)
	trace := NewTrace()
	ctx, cancel := context.WithTimeout(context.Background(), total)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runLoad(ctx, dep, clients, workload.Profile{Keys: 500, ReadRatio: 0.5, Dist: workload.Zipf, Seed: 3}, trace)
	}()

	chain := []string{"3"}
	for _, members := range steps {
		time.Sleep(phase)
		trace.Mark(fmt.Sprintf("->%d", len(members)))
		if err := dep.Reconfigure(context.Background(), members); err != nil {
			cancel()
			wg.Wait()
			return F3Result{}, err
		}
		chain = append(chain, fmt.Sprintf("%d", len(members)))
	}
	wg.Wait()
	cancel()

	const bin = 20 * time.Millisecond
	return F3Result{
		Series: trace.Series(bin),
		Bin:    bin,
		Marks:  trace.Marks(),
		Start:  trace.start,
		Acked:  trace.Acked(),
		Chain:  chain,
	}, nil
}

// --- T4: message cost ------------------------------------------------------------

// T4Row is one system's protocol cost accounting.
type T4Row struct {
	System       SystemKind
	Ops          int
	MsgsPerOp    float64
	BytesPerOp   float64
	ReconfigMsgs int64
	ReconfigByte int64
}

// T4Result is the cost table.
type T4Result struct {
	Rows []T4Row
}

// RunT4MessageCost measures messages/bytes per committed op at steady state
// and the total message cost of one member-swap reconfiguration (including
// any state transfer), per system.
func RunT4MessageCost(tuning Tuning, ops, clients int) (T4Result, error) {
	var res T4Result
	for _, kind := range []SystemKind{Composed, StopTheWorld, Inband} {
		dep, err := NewDeployment(kind, tuning, statemachine.NewKVMachine, nodeNames("n", 3), []types.NodeID{"s1"})
		if err != nil {
			return res, err
		}
		if err := waitWarm(dep); err != nil {
			dep.Close()
			return res, err
		}

		dep.ResetNetStats()
		done := 0
		seq := uint64(0)
		for done < ops {
			seq++
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, err := dep.Submit(ctx, "coster", seq, statemachine.EncodePut(fmt.Sprintf("k%d", seq), []byte("v")))
			cancel()
			if err == nil {
				done++
			}
		}
		st := dep.NetStats()
		row := T4Row{
			System:     kind,
			Ops:        done,
			MsgsPerOp:  float64(st.MessagesSent) / float64(done),
			BytesPerOp: float64(st.BytesSent) / float64(done),
		}

		dep.ResetNetStats()
		if err := dep.Reconfigure(context.Background(), []types.NodeID{"n1", "n2", "s1"}); err != nil {
			dep.Close()
			return res, err
		}
		// Give announces/fetches a moment to finish, then snapshot.
		time.Sleep(300 * time.Millisecond)
		rst := dep.NetStats()
		row.ReconfigMsgs = rst.MessagesSent
		row.ReconfigByte = rst.BytesSent
		dep.Close()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// --- F4: α-window pipeline penalty ---------------------------------------------------

// F4Row is one α's throughput.
type F4Row struct {
	Alpha      int // 0 = composed reference (unbounded pipeline)
	Throughput float64
	Stalls     int64
}

// F4Result is the α sweep.
type F4Result struct {
	Rows []F4Row
}

// RunF4Alpha sweeps the in-band window and adds the composed system (whose
// pipeline is not capped by reconfiguration ability) as the reference.
func RunF4Alpha(tuning Tuning, alphas []int, dur time.Duration, clients int) (F4Result, error) {
	var res F4Result
	run := func(kind SystemKind, alpha int) (float64, int64, error) {
		t := tuning
		t.Alpha = alpha
		dep, err := NewDeployment(kind, t, statemachine.NewKVMachine, nodeNames("n", 3), nil)
		if err != nil {
			return 0, 0, err
		}
		defer dep.Close()
		if err := waitWarm(dep); err != nil {
			return 0, 0, err
		}
		trace := NewTrace()
		ctx, cancel := context.WithTimeout(context.Background(), dur)
		runLoad(ctx, dep, clients, workload.Profile{Keys: 1000, ReadRatio: 0, Seed: 5}, trace)
		cancel()
		var stalls int64
		if ib, ok := dep.(*inbandDep); ok {
			for _, svc := range ib.svcs {
				stalls += svc.Engine().Stats().WindowStalls
			}
		}
		return trace.Throughput(), stalls, nil
	}
	for _, a := range alphas {
		thr, stalls, err := run(Inband, a)
		if err != nil {
			return res, fmt.Errorf("alpha %d: %w", a, err)
		}
		res.Rows = append(res.Rows, F4Row{Alpha: a, Throughput: thr, Stalls: stalls})
	}
	thr, _, err := run(Composed, 4)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, F4Row{Alpha: 0, Throughput: thr})
	return res, nil
}

// --- A1 (ablation): command batching in the static engine -----------------------

// A1Row is one batch size's steady-state measurement.
type A1Row struct {
	BatchSize  int
	Throughput float64
	MsgsPerOp  float64
	Latency    stats.Summary
}

// A1Result is the batching ablation sweep.
type A1Result struct {
	Rows []A1Row
}

// RunA1Batching sweeps the leader's commands-per-slot packing on the static
// substrate under concurrent load.
func RunA1Batching(tuning Tuning, batchSizes []int, dur time.Duration, clients int) (A1Result, error) {
	var res A1Result
	for _, b := range batchSizes {
		runtime.GC()
		t := tuning
		t.Batch = b
		dep, err := NewDeployment(StopTheWorld, t, statemachine.NewKVMachine, nodeNames("n", 3), nil)
		if err != nil {
			return res, err
		}
		if err := waitWarm(dep); err != nil {
			dep.Close()
			return res, err
		}
		dep.ResetNetStats()
		trace := NewTrace()
		ctx, cancel := context.WithTimeout(context.Background(), dur)
		runLoad(ctx, dep, clients, workload.Profile{Keys: 1000, ReadRatio: 0, Seed: 13}, trace)
		cancel()
		st := dep.NetStats()
		dep.Close()
		row := A1Row{BatchSize: b, Throughput: trace.Throughput(), Latency: trace.LatencySummary()}
		if n := trace.Acked(); n > 0 {
			row.MsgsPerOp = float64(st.MessagesSent) / float64(n)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
