package reconfig

import (
	"math/rand"
	"time"
)

// BackoffDelay computes the sleep before retry number attempt (1-based):
// exponential doubling from base, capped at max, with ±25% jitter drawn from
// rng so retry storms from nodes that failed together decorrelate. A nil rng
// yields the deterministic midpoint (used by the schedule-pinning test).
func BackoffDelay(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if max > 0 && d >= max {
			d = max
			break
		}
	}
	if max > 0 && d > max {
		d = max
	}
	if rng != nil {
		if q := int64(d) / 4; q > 0 {
			d += time.Duration(rng.Int63n(2*q+1) - q)
		}
	}
	return d
}

// SeedFor derives a stable per-node rng seed (FNV-1a over the node ID) so
// jitter differs across nodes but a node's schedule is reproducible.
func SeedFor(id string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int64(h & (1<<62 - 1))
}
