package reconfig

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

// chaosSeed returns the seed for a randomized chaos/linearizability run: the
// CHAOS_SEED environment variable overrides the built-in default, so any CI
// failure replays locally byte-for-byte. The chosen seed is always logged.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := def
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("seed %d (rerun with CHAOS_SEED=%d)", seed, seed)
	return seed
}

// TestChaosReconfiguration drives the composed system through randomized
// reconfigurations, node crashes/restarts and transient isolations while
// bank-transfer clients run continuously, then verifies the paper's safety
// properties end to end:
//
//	P2 — the configuration chain is a single path, identical on all nodes;
//	P4 — the bank total is conserved (no command lost or double-applied);
//	and zero protocol invariant violations anywhere.
func TestChaosReconfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in -short mode")
	}
	seed := chaosSeed(t, 77)
	w := newWorld(t, transport.Options{
		BaseLatency: 100 * time.Microsecond,
		Jitter:      200 * time.Microsecond,
		LossRate:    0.02,
		Seed:        seed,
	})
	pool := []types.NodeID{"n1", "n2", "n3", "n4", "n5", "n6", "n7"}
	w.bootstrap(statemachine.NewBankMachine, pool[0], pool[1], pool[2])
	w.waitServing(pool[0], pool[1], pool[2])
	for _, id := range pool[3:] {
		n := w.startNode(id, statemachine.NewBankMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}

	const initialTotal = 3000
	w.submit("n1", "admin", 1, statemachine.EncodeOpen("a", 1000))
	w.submit("n1", "admin", 2, statemachine.EncodeOpen("b", 1000))
	w.submit("n1", "admin", 3, statemachine.EncodeOpen("c", 1000))

	// Continuous transfer traffic: each client retries its current seq
	// (possibly via different nodes) until acknowledged, like a real SDK.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	accounts := []string{"a", "b", "c"}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g) + 100))
			client := types.NodeID(fmt.Sprintf("chaos-t%d", g))
			seq := uint64(1)
			op := statemachine.EncodeTransfer(accounts[g%3], accounts[(g+1)%3], 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				via := pool[rng.Intn(len(pool))]
				w.mu.Lock()
				node := w.nodes[via]
				w.mu.Unlock()
				if node == nil {
					continue // crashed right now
				}
				ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
				_, err := node.Submit(ctx, client, seq, op)
				cancel()
				if err == nil {
					seq++
					op = statemachine.EncodeTransfer(accounts[rng.Intn(3)], accounts[rng.Intn(3)], 1)
				}
			}
		}(g)
	}

	// reconfigureViaAny proposes through whichever node currently serves.
	reconfigureViaAny := func(members []types.NodeID) bool {
		for _, id := range pool {
			w.mu.Lock()
			node := w.nodes[id]
			w.mu.Unlock()
			if node == nil || !node.Serving() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
			_, err := node.Reconfigure(ctx, members)
			cancel()
			if err == nil {
				return true
			}
		}
		return false
	}

	rng := rand.New(rand.NewSource(seed + 4242))
	alive := make(map[types.NodeID]bool, len(pool))
	for _, id := range pool {
		alive[id] = true
	}
	reconfigs := 0
	for round := 0; round < 10; round++ {
		switch rng.Intn(3) {
		case 0: // reconfigure to a random subset of alive nodes
			var candidates []types.NodeID
			for _, id := range pool {
				if alive[id] {
					candidates = append(candidates, id)
				}
			}
			rng.Shuffle(len(candidates), func(i, j int) {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			})
			size := 3 + 2*rng.Intn(2) // 3 or 5
			if size > len(candidates) {
				size = len(candidates)
			}
			if reconfigureViaAny(candidates[:size]) {
				reconfigs++
			}
		case 1: // crash one node briefly, then restart it
			id := pool[rng.Intn(len(pool))]
			w.mu.Lock()
			node := w.nodes[id]
			w.mu.Unlock()
			if node == nil {
				break
			}
			node.Stop()
			w.mu.Lock()
			delete(w.nodes, id)
			w.mu.Unlock()
			alive[id] = false
			time.Sleep(50 * time.Millisecond)
			n := w.startNode(id, statemachine.NewBankMachine)
			if err := n.Start(); err != nil {
				t.Fatal(err)
			}
			alive[id] = true
		default: // transient isolation
			id := pool[rng.Intn(len(pool))]
			w.net.Isolate(id)
			time.Sleep(50 * time.Millisecond)
			w.net.Restore(id)
		}
		time.Sleep(60 * time.Millisecond)
	}
	if reconfigs == 0 {
		t.Log("warning: chaos run performed no successful reconfigurations")
	}

	// Quiesce: heal everything and let the system converge.
	w.net.HealAll()
	close(stop)
	wg.Wait()

	// Find the newest configuration and verify its members serve.
	var latest types.Config
	w.mu.Lock()
	for _, n := range w.nodes {
		if cfg := n.CurrentConfig(); cfg.ID > latest.ID {
			latest = cfg
		}
	}
	w.mu.Unlock()
	if latest.ID == 0 {
		t.Fatal("no configuration known anywhere")
	}

	// P4: conservation. Audit through any serving member of the newest
	// configuration.
	var total uint64
	audited := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !audited {
		for _, id := range latest.Members {
			w.mu.Lock()
			node := w.nodes[id]
			w.mu.Unlock()
			if node == nil {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			reply, err := node.Submit(ctx, "auditor", 1, statemachine.EncodeTotal())
			cancel()
			if err == nil {
				v, derr := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
				if derr == nil {
					total = v
					audited = true
					break
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !audited {
		t.Fatalf("could not audit the final configuration %s", latest)
	}
	if total != initialTotal {
		t.Fatalf("conservation violated after chaos: total %d != %d", total, initialTotal)
	}

	// P2: chains are consistent across all nodes (no forks).
	type chainView struct {
		id    types.NodeID
		chain []ChainRecord
	}
	var views []chainView
	w.mu.Lock()
	for id, n := range w.nodes {
		views = append(views, chainView{id: id, chain: n.ChainRecords()})
	}
	w.mu.Unlock()
	byFrom := make(map[types.ConfigID]ChainRecord)
	for _, v := range views {
		for _, rec := range v.chain {
			if prev, ok := byFrom[rec.From]; ok {
				if !prev.Equal(rec) {
					t.Fatalf("chain fork at cfg%d: %s sees %+v, another node saw %+v",
						rec.From, v.id, rec, prev)
				}
			} else {
				byFrom[rec.From] = rec
			}
		}
	}
	// The chain must be a contiguous path 1..latest-1.
	for id := types.ConfigID(1); id < latest.ID; id++ {
		if _, ok := byFrom[id]; !ok {
			t.Fatalf("chain hole: no record for cfg%d (latest %d)", id, latest.ID)
		}
	}

	w.checkNoViolations()
	t.Logf("chaos survived: %d reconfigurations, final %s, total conserved at %d",
		reconfigs, latest, total)
}
