package reconfig

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// Targeted tests for speculative successor start (paper §1): a joiner that
// learns it is a member of c+1 starts that configuration's engine immediately
// and votes/accepts/decides while the snapshot is still streaming. Decided
// slots park in the engine's buffer and drain only after the install; replies
// never fire before the apply point passes the snapshot's base index.
//
// The transfer is held "in flight" here by corrupting every served chunk:
// the per-chunk CRC rejects each copy, so the fetch keeps retrying without
// ever installing — and without blocking any RPC goroutine, so the cluster
// keeps deciding around the stalled joiner.

// corruptAllChunks returns a chunk hook that flips a byte of every served
// chunk, so the joiner's CRC check rejects every copy until the hook is
// removed.
func corruptAllChunks() func(types.ConfigID, int, []byte) []byte {
	return func(id types.ConfigID, idx int, data []byte) []byte {
		bad := append([]byte(nil), data...)
		if len(bad) == 0 {
			return []byte{0xff}
		}
		bad[0] ^= 0xff
		return bad
	}
}

// waitSpeculative polls until the node has learned at least one decided slot
// for a configuration whose snapshot it has not installed, and returns the
// stats sample that proved it (SnapshotsFetched is still zero in the same
// sample, so the decide unambiguously preceded the install).
func waitSpeculative(t *testing.T, n *Node) NodeStats {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := n.Stats()
		if st.SnapshotsFetched > 0 {
			t.Fatalf("snapshot installed before any speculative decide was observed: %+v", st)
		}
		if st.SpeculativeDecides > 0 {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("joiner never decided a slot while its transfer was in flight")
	return NodeStats{}
}

// TestSpeculativeDecidesDuringStalledTransfer is the acceptance check for
// speculative start: with every source serving corrupt chunks the joiner's
// transfer cannot complete, yet the joiner must decide slots of the new
// configuration (it is a voting member from the moment it learns of c+1).
// Once the sources behave, the parked decisions drain after the install and
// the joiner serves with correct state.
func TestSpeculativeDecidesDuringStalledTransfer(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 23})
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	seedState(t, w, "n1", 64, 1024)

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), corruptAllChunks())
	}
	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}

	// Load decided by the survivors while the joiner's transfer spins: the
	// joiner learns each decision speculatively and parks it.
	for i := 0; i < 8; i++ {
		w.submit("n1", "spec-writer", uint64(i+1), statemachine.EncodePut("spec-key", []byte("during-transfer")))
	}
	mid := waitSpeculative(t, spare)
	if mid.ChunkCRCRejected == 0 && mid.ChunksFetched == 0 {
		t.Fatalf("no transfer activity while speculating: %+v", mid)
	}

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), nil)
	}
	w.waitServing("n4")

	st := spare.Stats()
	if st.SpeculativeDecides == 0 {
		t.Fatal("SpeculativeDecides reset after install")
	}
	if st.SpeculativeParked == 0 {
		t.Fatal("no decisions were parked at install time; the speculative buffer never held the in-flight load")
	}
	if st.SnapshotsFetched != 1 {
		t.Fatalf("snapshot installs = %d, want 1", st.SnapshotsFetched)
	}
	// The parked writes must be visible through the joiner.
	reply := w.submit("n4", "spec-reader", 1, statemachine.EncodeGet("spec-key"))
	if got := string(statemachine.ReplyPayload(reply)); got != "during-transfer" {
		t.Fatalf("read via joiner = %q, want %q", got, "during-transfer")
	}
	if _, ok := spare.FirstDecide(2); !ok {
		t.Fatal("joiner recorded no first-decide timestamp for the new configuration")
	}
	w.checkNoViolations()
}

// TestSpeculativeJoinerCrashRecoversDecisions crashes the joiner mid-transfer
// after it has decided slots speculatively. The decisions are durable in the
// engine's acceptor/decided records, so the restarted joiner must redeliver
// them (parking them again), finish the transfer, and end with exactly-once
// state — the counter total must equal the sum of acknowledged adds.
func TestSpeculativeJoinerCrashRecoversDecisions(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 29})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	var want uint64
	for i := 0; i < 4; i++ {
		w.submit("n1", "pre", uint64(i+1), statemachine.EncodeAdd(3))
		want += 3
	}

	hook := corruptAllChunks()
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), hook)
	}
	spare := w.startNode("n4", statemachine.NewCounterMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		w.submit("n1", "mid", uint64(i+1), statemachine.EncodeAdd(5))
		want += 5
	}
	waitSpeculative(t, spare)

	// Kill the joiner with decisions parked and the transfer incomplete. The
	// sources keep corrupting, so the restarted joiner is back in the
	// speculative phase — and must re-learn its pre-crash decisions from its
	// own durable records (or the engine's redelivery), not lose them.
	restarted := w.crashRestart("n4", statemachine.NewCounterMachine)
	waitSpeculative(t, restarted)

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), nil)
	}
	w.waitServing("n4")

	// Exactly-once across crash + speculative redelivery + install: the
	// total reflects every acknowledged add exactly once — a decision applied
	// both from the snapshot and from the parked buffer would overshoot.
	reply := w.submit("n4", "post", 1, statemachine.EncodeCounterGet())
	got, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
	if got != want {
		t.Fatalf("counter via recovered joiner = %d, want %d", got, want)
	}
	w.submit("n4", "post", 2, statemachine.EncodeAdd(1))
	reply = w.submit("n4", "post", 3, statemachine.EncodeCounterGet())
	if got, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply)); got != want+1 {
		t.Fatalf("counter after post-install add = %d, want %d", got, want+1)
	}
	w.checkNoViolations()
}

// TestSpeculativeDecidesWhileSourceDead kills the joiner's only genuine
// transfer source mid-stream. The cluster must keep committing — the quorum
// of the new configuration includes the still-uninitialized joiner's votes —
// and once the remaining members serve honest chunks the transfer resumes
// and the joiner installs.
func TestSpeculativeDecidesWhileSourceDead(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 31})
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	seedState(t, w, "n1", 512, 4096)

	// n2/n3 poison everything; n1 serves honestly for a partial transfer,
	// then holds replies hostage (and is then paused — a dead source).
	for _, id := range []types.NodeID{"n2", "n3"} {
		setChunkHook(w.node(id), corruptAllChunks())
	}
	const serveLimit = 8
	served := 0
	var mu sync.Mutex
	stalled := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	setChunkHook(w.node("n1"), func(id types.ConfigID, idx int, data []byte) []byte {
		mu.Lock()
		served++
		hit := served == serveLimit
		over := served > serveLimit
		mu.Unlock()
		if hit {
			close(stalled)
		}
		if hit || over {
			<-block
		}
		return data
	})

	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stalled:
	case <-time.After(15 * time.Second):
		t.Fatal("transfer never reached the serve limit")
	}
	w.net.Endpoint("n1").Pause()

	// {n2, n3, n4} is a quorum of the 4-member configuration only because
	// the uninitialized joiner votes: these submissions committing is itself
	// the speculative-start property under a dead source.
	for i := 0; i < 6; i++ {
		w.submit("n2", "orphan", uint64(i+1), statemachine.EncodePut("orphan-key", []byte("decided-sourceless")))
	}
	waitSpeculative(t, spare)

	for _, id := range []types.NodeID{"n2", "n3"} {
		setChunkHook(w.node(id), nil)
	}
	w.waitServing("n4")

	checkKey(t, w, "n4", 1, "key-0000", 4096)
	checkKey(t, w, "n4", 2, "key-0511", 4096)
	reply := w.submit("n4", "checker", 3, statemachine.EncodeGet("orphan-key"))
	if got := string(statemachine.ReplyPayload(reply)); got != "decided-sourceless" {
		t.Fatalf("read via joiner = %q, want %q", got, "decided-sourceless")
	}
	w.checkNoViolations()
}

// TestSpeculativeReadsFencedUntilInstall pins the PR 3 interaction: a node in
// its speculative phase (engine deciding, snapshot not installed) must never
// answer a read — and a wedge arriving during that phase must keep it fenced.
// Every read attempt through the joiner has to redirect; its fast-read
// counter must stay zero throughout.
func TestSpeculativeReadsFencedUntilInstall(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 37})
	w.opts.Reads = ReadModeIndex
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "writer", 1, statemachine.EncodePut("fence-key", []byte("v1")))

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), corruptAllChunks())
	}
	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	w.submit("n1", "writer", 2, statemachine.EncodePut("fence-key", []byte("v2")))
	waitSpeculative(t, spare)

	tryRead := func(seq uint64) {
		t.Helper()
		rctx, rcancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer rcancel()
		reply, err := spare.Submit(rctx, "fenced-reader", seq, statemachine.EncodeGet("fence-key"))
		if err == nil {
			t.Fatalf("read served by a speculative-phase node: %q", statemachine.ReplyPayload(reply))
		}
		if !errors.Is(err, ErrNotServing) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("unexpected read error: %v", err)
		}
	}
	tryRead(1)

	// Wedge c+1 while the joiner is still speculating on it: the successor
	// configuration excludes the joiner, so it must stay fenced forever
	// rather than serve c+1 state it never installed.
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3"}); err != nil {
		t.Fatal(err)
	}
	w.submit("n1", "writer", 3, statemachine.EncodePut("fence-key", []byte("v3")))
	tryRead(2)

	if fast := spare.Stats().FastReads; fast != 0 {
		t.Fatalf("speculative-phase node served %d fast reads", fast)
	}
	// The surviving members moved on and serve the latest value.
	reply := w.submit("n1", "reader", 1, statemachine.EncodeGet("fence-key"))
	if got := string(statemachine.ReplyPayload(reply)); got != "v3" {
		t.Fatalf("read via survivor = %q, want %q", got, "v3")
	}
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), nil)
	}
	w.checkNoViolations()
}

// TestInstallHonorsSnapshotBaseIndex hand-installs a snapshot whose manifest
// carries a non-zero base index — a snapshot taken *after* the configuration
// decided slots 1..Base — and asserts the install semantics: the apply cursor
// starts at Base, the decisions parked during the transfer (all ≤ Base, all
// folded into the snapshot) are discarded as stale instead of re-applied, and
// post-install commands apply from Base+1 with exactly-once totals.
func TestInstallHonorsSnapshotBaseIndex(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 41})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), corruptAllChunks())
	}
	spare := w.startNode("n4", statemachine.NewCounterMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 5; i++ {
		w.submit("n1", "base-writer", uint64(i+1), statemachine.EncodeAdd(7))
		want += 7
	}
	waitSpeculative(t, spare)

	// Quiesce, then capture a snapshot of a survivor's machine together with
	// its apply cursor: that pair is exactly a Base>0 snapshot.
	var base types.Slot
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, s1 := w.node("n1").AppliedSlot()
		time.Sleep(50 * time.Millisecond)
		id2, s2 := w.node("n1").AppliedSlot()
		if id2 == 2 && s1 == s2 && s2 > 0 {
			base = s2
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor never quiesced (cfg %d, slot %d)", id2, s2)
		}
	}
	fork := w.node("n1").Machine().ForkSnapshot()
	chunks := make([][]byte, fork.NumChunks())
	m := storage.ChunkManifest{Format: fork.Format(), Base: base, CRCs: make([]uint32, fork.NumChunks())}
	for i := range chunks {
		chunks[i] = fork.Chunk(i)
		m.CRCs[i] = storage.ChunkCRC(chunks[i])
	}
	spare.installChunks(2, m, chunks)
	w.waitServing("n4")

	if id, at := spare.AppliedSlot(); id != 2 || at < base {
		t.Fatalf("apply cursor after install = (cfg %d, slot %d), want cfg 2 at >= %d", id, at, base)
	}
	if st := spare.Stats(); st.SpeculativeParked == 0 {
		t.Fatal("nothing was parked at install; the base-skip path was never exercised")
	}
	// Every parked decision is ≤ Base and already folded into the snapshot:
	// re-applying any of them would overshoot the total.
	reply := w.submit("n4", "base-reader", 1, statemachine.EncodeCounterGet())
	got, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
	if got != want {
		t.Fatalf("counter via joiner = %d, want %d (parked decisions re-applied past the base index?)", got, want)
	}
	w.submit("n4", "base-reader", 2, statemachine.EncodeAdd(2))
	reply = w.submit("n4", "base-reader", 3, statemachine.EncodeCounterGet())
	if got, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply)); got != want+2 {
		t.Fatalf("counter after post-install add = %d, want %d", got, want+2)
	}
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), nil)
	}
	w.checkNoViolations()
}

// TestSpeculativeAcceptFullReplacement covers the client-facing half of
// speculative start: in a FULL member replacement no successor member can
// install until the transfer completes, yet under SpecOn every one of them
// accepts submissions — the command is ordered by the speculative engine
// while the snapshot streams, and the reply stays parked until the install.
// Without speculative accept nothing can even be proposed in c+1 until the
// first install, which is exactly the availability window the paper's
// optimization closes.
func TestSpeculativeAcceptFullReplacement(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 37})
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	seedState(t, w, "n1", 64, 1024)

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), corruptAllChunks())
	}
	joiners := []types.NodeID{"n4", "n5", "n6"}
	for _, id := range joiners {
		n := w.startNode(id, statemachine.NewKVMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, joiners); err != nil {
		t.Fatal(err)
	}

	// Wait until every joiner has learned it is a member of c+1 (the
	// announce is asynchronous); only then does its submit gate park rather
	// than redirect.
	learned := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, id := range joiners {
			if w.node(id).CurrentConfig().ID != 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(learned) {
			t.Fatal("joiners never learned the successor configuration")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Submit straight to an uninitialized joiner. The call must not redirect:
	// it parks until the install, so it is still in flight when the joiner's
	// speculative decide is observed below.
	done := make(chan error, 1)
	go func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_, err := w.node("n4").Submit(sctx, "full-writer", 1, statemachine.EncodePut("full-key", []byte("before-install")))
		done <- err
	}()

	waitSpeculative(t, w.node("n4"))
	select {
	case err := <-done:
		t.Fatalf("reply fired while the snapshot was still in flight (err=%v)", err)
	default:
	}

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), nil)
	}
	w.waitServing(joiners...)
	if err := <-done; err != nil {
		t.Fatalf("parked submission failed after install: %v", err)
	}
	reply := w.submit("n5", "full-reader", 1, statemachine.EncodeGet("full-key"))
	if got := string(statemachine.ReplyPayload(reply)); got != "before-install" {
		t.Fatalf("read via joiner = %q, want %q", got, "before-install")
	}
	w.checkNoViolations()
}

// TestSpecOffUninitializedRedirects pins the ablation's client contract: with
// SpeculativeStart = SpecOff an uninitialized member must redirect, not park.
func TestSpecOffUninitializedRedirects(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 41})
	w.opts.SpeculativeStart = SpecOff
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	seedState(t, w, "n1", 64, 1024)

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), corruptAllChunks())
	}
	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	_, err := spare.Submit(sctx, "off-writer", 1, statemachine.EncodePut("k", []byte("v")))
	scancel()
	if !errors.Is(err, ErrNotServing) {
		t.Fatalf("submit to uninitialized SpecOff member: err = %v, want ErrNotServing redirect", err)
	}
	if st := spare.Stats(); st.SpeculativeDecides != 0 {
		t.Fatalf("SpecOff joiner decided speculatively: %+v", st)
	}

	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), nil)
	}
	w.waitServing("n4")
	w.checkNoViolations()
}
