package reconfig

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/paxos"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// world hosts a set of reconfig nodes over one simulated network.
type world struct {
	t    *testing.T
	net  *transport.Network
	opts Options
	// newStore builds a node's backing store (default in-memory). Worlds
	// on durable backends set it to open a per-node directory so a
	// crash-restart recovers from the same StorageDir.
	newStore func(id types.NodeID) storage.Store
	mu       sync.Mutex
	nodes    map[types.NodeID]*Node
	stores   map[types.NodeID]storage.Store
}

func fastNodeOpts() Options {
	return Options{
		Paxos: paxos.Options{
			TickInterval:         time.Millisecond,
			HeartbeatEveryTicks:  2,
			ElectionTimeoutTicks: 10,
			ElectionJitterTicks:  10,
		},
		RetryInterval:  10 * time.Millisecond,
		LingerOld:      300 * time.Millisecond,
		FetchTimeout:   100 * time.Millisecond,
		StaleJumpTicks: 15,
	}
}

func newWorld(t *testing.T, netOpts transport.Options) *world {
	w := &world{
		t:      t,
		net:    transport.NewNetwork(netOpts),
		opts:   fastNodeOpts(),
		nodes:  make(map[types.NodeID]*Node),
		stores: make(map[types.NodeID]storage.Store),
	}
	t.Cleanup(w.close)
	return w
}

func (w *world) close() {
	w.mu.Lock()
	nodes := make([]*Node, 0, len(w.nodes))
	for _, n := range w.nodes {
		nodes = append(nodes, n)
	}
	stores := make([]storage.Store, 0, len(w.stores))
	for _, st := range w.stores {
		stores = append(stores, st)
	}
	w.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	w.net.Close()
	for _, st := range stores {
		if c, ok := st.(io.Closer); ok {
			c.Close()
		}
	}
}

// startNode creates and starts a node (reusing any prior store: restart).
func (w *world) startNode(id types.NodeID, factory statemachine.Factory) *Node {
	w.t.Helper()
	w.mu.Lock()
	st, ok := w.stores[id]
	if !ok {
		if w.newStore != nil {
			st = w.newStore(id)
		} else {
			st = storage.NewMem()
		}
		w.stores[id] = st
	}
	w.mu.Unlock()
	n, err := NewNode(NodeConfig{
		Self:     id,
		Endpoint: w.net.Endpoint(id),
		Store:    st,
		Factory:  factory,
		Opts:     w.opts,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.mu.Lock()
	w.nodes[id] = n
	w.mu.Unlock()
	return n
}

// bootstrap creates, bootstraps and starts the initial members.
func (w *world) bootstrap(factory statemachine.Factory, members ...types.NodeID) types.Config {
	w.t.Helper()
	cfg := types.MustConfig(1, members...)
	for _, id := range members {
		n := w.startNode(id, factory)
		if err := n.Bootstrap(cfg); err != nil {
			w.t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			w.t.Fatal(err)
		}
	}
	return cfg
}

func (w *world) node(id types.NodeID) *Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nodes[id]
}

// stopNode crashes a node process (store survives for restart).
func (w *world) stopNode(id types.NodeID) {
	w.t.Helper()
	n := w.node(id)
	n.Stop()
	w.net.Endpoint(id).Resume() // clear pause flag if any
}

// dropStore closes and forgets a node's store so the next startNode reopens
// it from its backing directory — the process-crash path for durable
// backends (a MemStore must NOT be dropped: its state would vanish).
func (w *world) dropStore(id types.NodeID) {
	w.mu.Lock()
	st := w.stores[id]
	delete(w.stores, id)
	w.mu.Unlock()
	if c, ok := st.(io.Closer); ok {
		if err := c.Close(); err != nil {
			w.t.Errorf("closing store %s: %v", id, err)
		}
	}
}

func (w *world) waitServing(ids ...types.NodeID) {
	w.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for _, id := range ids {
		if err := w.node(id).WaitServing(ctx); err != nil {
			w.t.Fatalf("node %s never served: %v", id, err)
		}
	}
}

// submit runs one command via the given node with retries on transient
// redirects (the node may be mid-transition).
func (w *world) submit(via, client types.NodeID, seq uint64, op []byte) []byte {
	w.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		reply, err := w.node(via).Submit(ctx, client, seq, op)
		cancel()
		if err == nil {
			return reply
		}
		time.Sleep(10 * time.Millisecond)
	}
	w.t.Fatalf("submit via %s (%s#%d) never succeeded", via, client, seq)
	return nil
}

func counterValue(t *testing.T, reply []byte) uint64 {
	t.Helper()
	if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
		t.Fatalf("bad reply status %v", statemachine.ReplyStatus(reply))
	}
	v, err := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func (w *world) checkNoViolations() {
	w.t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, n := range w.nodes {
		if v := n.Stats().InvariantViolations; v != 0 {
			w.t.Errorf("node %s: %d invariant violations", id, v)
		}
	}
}

func TestBasicSubmitAndDedup(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")

	if v := counterValue(t, w.submit("n1", "c1", 1, statemachine.EncodeAdd(5))); v != 5 {
		t.Fatalf("add reply %d", v)
	}
	// Exact retry of the same (client, seq) must return the cached reply
	// and not re-apply.
	if v := counterValue(t, w.submit("n2", "c1", 1, statemachine.EncodeAdd(5))); v != 5 {
		t.Fatalf("dedup reply %d", v)
	}
	if v := counterValue(t, w.submit("n3", "c1", 2, statemachine.EncodeCounterGet())); v != 5 {
		t.Fatalf("counter = %d, dedup failed", v)
	}
	w.checkNoViolations()
}

func TestSubmitViaFollower(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	for seq := uint64(1); seq <= 6; seq++ {
		via := []types.NodeID{"n1", "n2", "n3"}[seq%3]
		w.submit(via, "c1", seq, statemachine.EncodeAdd(1))
	}
	if v := counterValue(t, w.submit("n1", "c1", 7, statemachine.EncodeCounterGet())); v != 6 {
		t.Fatalf("counter = %d", v)
	}
	w.checkNoViolations()
}

func TestReconfigureGrow(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "c1", 1, statemachine.EncodeAdd(10))

	// Two spares join as members of configuration 2.
	for _, id := range []types.NodeID{"n4", "n5"} {
		n := w.startNode(id, statemachine.NewCounterMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cfg, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4", "n5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID != 2 || cfg.N() != 5 {
		t.Fatalf("new config %s", cfg)
	}
	w.waitServing("n1", "n2", "n3", "n4", "n5")

	// State carried over: new members answer with the transferred value.
	if v := counterValue(t, w.submit("n4", "c1", 2, statemachine.EncodeCounterGet())); v != 10 {
		t.Fatalf("transferred counter = %d", v)
	}
	w.submit("n5", "c1", 3, statemachine.EncodeAdd(1))
	if v := counterValue(t, w.submit("n1", "c1", 4, statemachine.EncodeCounterGet())); v != 11 {
		t.Fatalf("post-grow counter = %d", v)
	}
	w.checkNoViolations()
}

func TestReconfigureFullReplacement(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "c1", 1, statemachine.EncodeAdd(42))

	for _, id := range []types.NodeID{"m1", "m2", "m3"} {
		n := w.startNode(id, statemachine.NewCounterMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cfg, err := w.node("n2").Reconfigure(ctx, []types.NodeID{"m1", "m2", "m3"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID != 2 {
		t.Fatalf("config %s", cfg)
	}
	w.waitServing("m1", "m2", "m3")
	if v := counterValue(t, w.submit("m1", "c1", 2, statemachine.EncodeCounterGet())); v != 42 {
		t.Fatalf("state lost in replacement: %d", v)
	}

	// Retired nodes redirect.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if _, err := w.node("n1").Submit(ctx2, "c1", 3, statemachine.EncodeCounterGet()); !errors.Is(err, ErrNotServing) {
		// n1 may need a moment to learn it was retired
		deadline := time.Now().Add(5 * time.Second)
		ok := false
		for time.Now().Before(deadline) {
			ctx3, cancel3 := context.WithTimeout(context.Background(), 300*time.Millisecond)
			_, err = w.node("n1").Submit(ctx3, "c1", 3, statemachine.EncodeCounterGet())
			cancel3()
			if errors.Is(err, ErrNotServing) {
				ok = true
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if !ok {
			t.Fatalf("retired node kept serving: err=%v", err)
		}
	}
	w.checkNoViolations()
}

func TestChainedReconfigurations(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")

	members := [][]types.NodeID{
		{"n1", "n2", "n3", "n4"},
		{"n1", "n2", "n3", "n4", "n5"},
		{"n2", "n3", "n4", "n5"},
	}
	for _, id := range []types.NodeID{"n4", "n5"} {
		n := w.startNode(id, statemachine.NewCounterMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	seq := uint64(1)
	for round, m := range members {
		w.submit("n2", "c1", seq, statemachine.EncodeAdd(1))
		seq++
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		cfg, err := w.node("n2").Reconfigure(ctx, m)
		cancel()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if cfg.ID != types.ConfigID(round+2) {
			t.Fatalf("round %d: config %s", round, cfg)
		}
	}
	w.waitServing("n2", "n3", "n4", "n5")
	if v := counterValue(t, w.submit("n4", "c1", seq, statemachine.EncodeCounterGet())); v != 3 {
		t.Fatalf("counter after chain = %d", v)
	}

	// P2: the chain is a path with consecutive IDs.
	recs := w.node("n2").ChainRecords()
	if len(recs) != 3 {
		t.Fatalf("chain records: %+v", recs)
	}
	for i, rec := range recs {
		if rec.From != types.ConfigID(i+1) || rec.To.ID != types.ConfigID(i+2) {
			t.Fatalf("chain not linear at %d: %+v", i, rec)
		}
	}
	w.checkNoViolations()
}

// TestNoAcknowledgedWriteLost is invariant P3: everything acknowledged
// before and during reconfigurations is present afterwards.
func TestNoAcknowledgedWriteLost(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Jitter: 200 * time.Microsecond, Seed: 5})
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	for _, id := range []types.NodeID{"n4", "n5"} {
		n := w.startNode(id, statemachine.NewKVMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}

	// Writer goroutine hammers while we reconfigure twice.
	stop := make(chan struct{})
	var acked []string
	var wmu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(1)
		vias := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("k%d", seq)
			via := vias[int(seq)%len(vias)]
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, err := w.node(via).Submit(ctx, "writer", seq, statemachine.EncodePut(key, []byte("v")))
			cancel()
			if err == nil {
				wmu.Lock()
				acked = append(acked, key)
				wmu.Unlock()
				seq++
			}
			// On error: retry the same seq (possibly via another node).
		}
	}()

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4", "n5"}); err != nil {
		t.Fatal(err)
	}
	cancel()
	time.Sleep(100 * time.Millisecond)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	if _, err := w.node("n4").Reconfigure(ctx2, []types.NodeID{"n2", "n3", "n4", "n5"}); err != nil {
		t.Fatal(err)
	}
	cancel2()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	wmu.Lock()
	keys := append([]string(nil), acked...)
	wmu.Unlock()
	if len(keys) == 0 {
		t.Fatal("no acknowledged writes; test proved nothing")
	}
	// Every acknowledged key must be readable afterwards.
	probe := uint64(1)
	for _, key := range keys {
		reply := w.submit("n4", "reader", probe, statemachine.EncodeGet(key))
		probe++
		if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
			t.Fatalf("acknowledged key %s lost (status %v)", key, statemachine.ReplyStatus(reply))
		}
	}
	w.checkNoViolations()
}

// TestBankConservationAcrossReconfig is invariant P4: re-submission across
// the wedge never double-applies.
func TestBankConservationAcrossReconfig(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Jitter: 300 * time.Microsecond, Seed: 11})
	w.bootstrap(statemachine.NewBankMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "admin", 1, statemachine.EncodeOpen("a", 1000))
	w.submit("n1", "admin", 2, statemachine.EncodeOpen("b", 1000))

	for _, id := range []types.NodeID{"n4", "n5"} {
		n := w.startNode(id, statemachine.NewBankMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := types.NodeID(fmt.Sprintf("t%d", g))
			seq := uint64(1)
			vias := []types.NodeID{"n1", "n2", "n3"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				via := vias[int(seq)%len(vias)]
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				_, err := w.node(via).Submit(ctx, client, seq, statemachine.EncodeTransfer("a", "b", 1))
				cancel()
				if err == nil {
					seq++
				}
			}
		}(g)
	}

	time.Sleep(80 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4", "n5"}); err != nil {
		t.Fatal(err)
	}
	cancel()
	time.Sleep(80 * time.Millisecond)
	close(stop)
	wg.Wait()

	reply := w.submit("n4", "auditor", 1, statemachine.EncodeTotal())
	total, err := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
	if err != nil {
		t.Fatal(err)
	}
	if total != 2000 {
		t.Fatalf("conservation violated: total = %d", total)
	}
	w.checkNoViolations()
}

func TestCrashedMemberRestartsAndServes(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "c1", 1, statemachine.EncodeAdd(7))

	w.stopNode("n3")
	w.submit("n1", "c1", 2, statemachine.EncodeAdd(3)) // progress with 2/3

	// Restart n3 from its surviving store.
	n3 := w.startNode("n3", statemachine.NewCounterMachine)
	if err := n3.Start(); err != nil {
		t.Fatal(err)
	}
	w.waitServing("n3")
	// n3 must converge to the full state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := counterValue(t, w.submit("n3", "c1", 3, statemachine.EncodeCounterGet()))
		if v == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted node stuck at %d", v)
		}
		time.Sleep(20 * time.Millisecond)
	}
	w.checkNoViolations()
}

func TestFailoverReplaceCrashedNode(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "c1", 1, statemachine.EncodeAdd(5))

	spare := w.startNode("n4", statemachine.NewCounterMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}

	// n3 dies; replace it via reconfiguration from a survivor.
	w.net.Isolate("n3")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	cfg, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n4"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.IsMember("n4") || cfg.IsMember("n3") {
		t.Fatalf("replacement config %s", cfg)
	}
	w.waitServing("n4")
	if v := counterValue(t, w.submit("n4", "c1", 2, statemachine.EncodeCounterGet())); v != 5 {
		t.Fatalf("state after failover = %d", v)
	}
	w.checkNoViolations()
}

// TestStaleMemberJumpsViaAnnounce: a member partitioned through a
// reconfiguration whose old quorum then disappears must reach the new
// configuration via the announce + state-transfer path.
func TestStaleMemberJumpsViaAnnounce(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "c1", 1, statemachine.EncodeAdd(9))

	// n3 misses the reconfiguration entirely.
	w.net.Isolate("n3")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3"}); err != nil {
		t.Fatal(err)
	}

	// Let the old engine's linger expire so catch-up through config 1 is
	// impossible, then heal. n3 must jump via announce/locate + fetch.
	time.Sleep(500 * time.Millisecond)
	w.net.Restore("n3")

	w.waitServing("n3")
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := counterValue(t, w.submit("n3", "c1", 2, statemachine.EncodeCounterGet()))
		if v == 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale member stuck at %d", v)
		}
		time.Sleep(20 * time.Millisecond)
	}
	w.checkNoViolations()
}

func TestConcurrentReconfigureOneWinner(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	for _, id := range []types.NodeID{"n4", "n5"} {
		n := w.startNode(id, statemachine.NewCounterMachine)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}

	type result struct {
		cfg types.Config
		err error
	}
	results := make(chan result, 2)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		cfg, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"})
		results <- result{cfg, err}
	}()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		cfg, err := w.node("n2").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n5"})
		results <- result{cfg, err}
	}()
	r1, r2 := <-results, <-results

	okCount := 0
	for _, r := range []result{r1, r2} {
		switch {
		case r.err == nil:
			okCount++
		case errors.Is(r.err, ErrConflict):
		default:
			t.Fatalf("unexpected error: %v", r.err)
		}
	}
	// Both may propose the same winning config only if identical; here the
	// member sets differ, so exactly one must win... unless both failed to
	// ErrConflict is impossible (someone's command was decided).
	if okCount == 0 {
		t.Fatal("no reconfiguration won")
	}
	// n3 was not a Reconfigure caller; give it a moment to apply the wedge.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cfg2 := w.node("n3").CurrentConfig(); cfg2.ID == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n3 stuck at %s", w.node("n3").CurrentConfig())
		}
		time.Sleep(10 * time.Millisecond)
	}
	w.checkNoViolations()
}

func TestDisableSpeculationStillReconfigures(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.opts.SpeculativeStart = SpecOff
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "c1", 1, statemachine.EncodeAdd(4))

	n4 := w.startNode("n4", statemachine.NewCounterMachine)
	if err := n4.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	w.waitServing("n4")
	if v := counterValue(t, w.submit("n4", "c1", 2, statemachine.EncodeCounterGet())); v != 4 {
		t.Fatalf("counter = %d", v)
	}
	w.checkNoViolations()
}

func TestSpareNodeIdlesUntilAdded(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.bootstrap(statemachine.NewCounterMachine, "n1")
	w.waitServing("n1")

	spare := w.startNode("s1", statemachine.NewCounterMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	if spare.Serving() {
		t.Fatal("spare claims to be serving")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if _, err := spare.Submit(ctx, "c", 1, statemachine.EncodeCounterGet()); !errors.Is(err, ErrNotServing) {
		t.Fatalf("spare accepted a submit: %v", err)
	}
	cancel()

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := w.node("n1").Reconfigure(ctx2, []types.NodeID{"n1", "s1"}); err != nil {
		t.Fatal(err)
	}
	w.waitServing("s1")
	w.checkNoViolations()
}

func TestBootstrapValidation(t *testing.T) {
	w := newWorld(t, transport.Options{})
	n := w.startNode("x1", statemachine.NewCounterMachine)
	if err := n.Bootstrap(types.Config{ID: 2, Members: []types.NodeID{"x1"}}); err == nil {
		t.Fatal("bootstrap with ID 2 accepted")
	}
	cfg := types.MustConfig(1, "x1")
	if err := n.Bootstrap(cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Bootstrap(cfg); err != nil {
		t.Fatalf("idempotent bootstrap failed: %v", err)
	}
	other := types.MustConfig(1, "x1", "x2")
	if err := n.Bootstrap(other); err == nil {
		t.Fatal("conflicting bootstrap accepted")
	}
}

func TestReconfigureValidation(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.bootstrap(statemachine.NewCounterMachine, "n1")
	w.waitServing("n1")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, nil); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"a", "a"}); err == nil {
		t.Fatal("duplicate members accepted")
	}
}

func TestNodeStopIdempotentAndStopsSubmit(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.bootstrap(statemachine.NewCounterMachine, "n1")
	w.waitServing("n1")
	n := w.node("n1")
	n.Stop()
	n.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := n.Submit(ctx, "c", 1, statemachine.EncodeCounterGet()); err == nil {
		t.Fatal("submit after stop succeeded")
	}
}

func TestChainRecordCodec(t *testing.T) {
	rec := ChainRecord{From: 3, WedgeSlot: 99, To: types.MustConfig(4, "a", "b", "c")}
	got, err := decodeChainRecord(encodeChainRecord(rec))
	if err != nil || !got.Equal(rec) {
		t.Fatalf("%+v %v", got, err)
	}
	if _, err := decodeChainRecord(encodeChainRecord(rec)[:3]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestSubmitReplyCodec(t *testing.T) {
	m := submitReply{
		Status: SubmitRedirect,
		Reply:  []byte("payload"),
		Config: types.MustConfig(7, "x", "y"),
		Leader: "x",
	}
	got, err := decodeSubmitReply(encodeSubmitReply(m))
	if err != nil || got.Status != m.Status || string(got.Reply) != "payload" || !got.Config.Equal(m.Config) || got.Leader != "x" {
		t.Fatalf("%+v %v", got, err)
	}
}

// TestBatchingThroughReconfiguration: with engine batching on, commands and
// a reconfiguration interleave inside batches; the apply layer must unpack
// correctly and preserve exactly-once semantics across the wedge.
func TestBatchingThroughReconfiguration(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.opts.Paxos.BatchSize = 8
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	n4 := w.startNode("n4", statemachine.NewCounterMachine)
	if err := n4.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var acked uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, err := w.node("n1").Submit(ctx, "batcher", seq, statemachine.EncodeAdd(1))
			cancel()
			if err == nil {
				acked = seq
				seq++
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n2").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	final := acked
	if final == 0 {
		t.Fatal("nothing acknowledged")
	}
	v := counterValue(t, w.submit("n4", "checker", 1, statemachine.EncodeCounterGet()))
	if v != final {
		t.Fatalf("counter %d != acked %d (batch lost or double-applied)", v, final)
	}
	w.checkNoViolations()
}

// contextWithTimeout is a tiny alias keeping test call sites compact.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// TestNodeOnFileBackedStorage runs a full crash/restart cycle with the
// node's state on real files: promises, log, chain and snapshots must all
// survive the process.
func TestNodeOnFileBackedStorage(t *testing.T) {
	net := transport.NewNetwork(transport.Options{BaseLatency: 100 * time.Microsecond})
	t.Cleanup(net.Close)
	dir := t.TempDir()
	opts := fastNodeOpts()

	open := func() *Node {
		st, err := storage.OpenFile(dir, storage.FileOptions{SyncWrites: false})
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(NodeConfig{
			Self:     "n1",
			Endpoint: net.Endpoint("n1"),
			Store:    st,
			Factory:  statemachine.NewCounterMachine,
			Opts:     opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	n := open()
	if err := n.Bootstrap(types.MustConfig(1, "n1")); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTimeout(15 * time.Second)
	defer cancel()
	if err := n.WaitServing(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Submit(ctx, "c", 1, statemachine.EncodeAdd(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Reconfigure(ctx, []types.NodeID{"n1"}); err != nil {
		t.Fatal(err)
	}
	n.Stop()

	// Restart from disk: config chain at cfg2, counter at 7.
	n2 := open()
	t.Cleanup(n2.Stop)
	if err := n2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n2.WaitServing(ctx); err != nil {
		t.Fatal(err)
	}
	if got := n2.CurrentConfig().ID; got != 2 {
		t.Fatalf("restart config %d", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		reply, err := n2.Submit(ctx, "c", 2, statemachine.EncodeCounterGet())
		if err == nil {
			v, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
			if v == 7 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("file-backed restart state %d", v)
			}
		} else if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n2.Stats().InvariantViolations != 0 {
		t.Fatal("violations on file-backed node")
	}
}
