package reconfig

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/nemesis"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// This file is the end-to-end linearizability suite: concurrent clients
// drive a 5-node cluster through a deterministic nemesis schedule while a
// history recorder captures every operation (including ambiguous timeouts);
// afterwards the lincheck WGL checker decides the history against the
// machine's sequential model. Any failure prints the seed for byte-for-byte
// replay (CHAOS_SEED overrides it).

// crashRestart stops a node like a killed process and restarts it over the
// same store. Worlds with a newStore factory (durable backends) close and
// reopen the store from its directory — a true recovery; in-memory worlds
// keep the store object, modeling a crash with surviving durable state.
func (w *world) crashRestart(id types.NodeID, factory statemachine.Factory) *Node {
	w.t.Helper()
	if n := w.node(id); n != nil {
		n.Stop()
		w.mu.Lock()
		delete(w.nodes, id)
		w.mu.Unlock()
		w.net.Endpoint(id).Resume()
	}
	if w.newStore != nil {
		w.dropStore(id)
	}
	n := w.startNode(id, factory)
	if err := n.Start(); err != nil {
		w.t.Fatal(err)
	}
	return n
}

// linCluster adapts a test world to the nemesis.Cluster fault surface.
type linCluster struct {
	w       *world
	pool    []types.NodeID
	factory statemachine.Factory
}

func (c *linCluster) Partition(sides ...[]types.NodeID) { c.w.net.Partition(sides...) }
func (c *linCluster) Isolate(id types.NodeID)           { c.w.net.Isolate(id) }
func (c *linCluster) Heal()                             { c.w.net.HealAll() }

func (c *linCluster) CrashRestart(ctx context.Context, id types.NodeID) error {
	c.w.crashRestart(id, c.factory)
	return nil
}

func (c *linCluster) Reconfigure(ctx context.Context, members []types.NodeID) error {
	var lastErr error = ErrNotServing
	for _, id := range c.pool {
		node := c.w.node(id)
		if node == nil || !node.Serving() {
			continue
		}
		attempt, cancel := context.WithTimeout(ctx, 8*time.Second)
		_, err := node.Reconfigure(attempt, members)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

func (c *linCluster) Leader() types.NodeID {
	for _, id := range c.pool {
		node := c.w.node(id)
		if node == nil || !node.Serving() {
			continue
		}
		if lead := node.LeaderHint(); lead != "" {
			return lead
		}
	}
	return ""
}

// linWorkload pairs a machine with its sequential model and an op generator.
type linWorkload struct {
	name    string
	factory statemachine.Factory
	model   func() lincheck.Model
	setup   [][]byte // admin ops applied before load starts
	genOp   func(rng *rand.Rand) []byte
}

func kvWorkload() linWorkload {
	vals := make([][]byte, 6)
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	return linWorkload{
		name:    "kv",
		factory: statemachine.NewKVMachine,
		model:   lincheck.RegisterModel,
		genOp: func(rng *rand.Rand) []byte {
			key := fmt.Sprintf("k%d", rng.Intn(8))
			switch rng.Intn(10) {
			case 0, 1, 2:
				return statemachine.EncodePut(key, vals[rng.Intn(len(vals))])
			case 3, 4, 5:
				return statemachine.EncodeGet(key)
			case 6:
				return statemachine.EncodeDelete(key)
			case 7, 8:
				return statemachine.EncodeAppend(key, []byte{byte('a' + rng.Intn(4))})
			default:
				return statemachine.EncodeCAS(key, vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
			}
		},
	}
}

// kvReadHeavyWorkload is the fast-path stressor: ~90% of generated ops are
// Gets, so under ReadModeIndex/ReadModeLease nearly all load rides the
// read-only path while the remaining writes keep the register model moving.
// Linearizability violations here are exactly the stale-read bugs the wedge
// fence and read-index confirmation exist to prevent.
func kvReadHeavyWorkload() linWorkload {
	vals := make([][]byte, 6)
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	return linWorkload{
		name:    "kv-read-heavy",
		factory: statemachine.NewKVMachine,
		model:   lincheck.RegisterModel,
		genOp: func(rng *rand.Rand) []byte {
			key := fmt.Sprintf("k%d", rng.Intn(8))
			if rng.Intn(10) != 0 {
				return statemachine.EncodeGet(key)
			}
			switch rng.Intn(3) {
			case 0:
				return statemachine.EncodePut(key, vals[rng.Intn(len(vals))])
			case 1:
				return statemachine.EncodeAppend(key, []byte{byte('a' + rng.Intn(4))})
			default:
				return statemachine.EncodeDelete(key)
			}
		},
	}
}

// kvWriteHeavyWorkload is the parallel-apply stressor: ~90% of generated ops
// mutate state (Put/Append/Delete/CAS across a keyspace wide enough to land
// on many shards), so decided batches are dense with commutative single-key
// writes — exactly what the sharded apply stage fans out to workers. The
// remaining Gets keep read-after-write ordering observable, so an apply
// stage that released a client reply before its shard worker finished, or
// advanced the read cursor past a half-applied batch, shows up as a
// linearizability counterexample.
func kvWriteHeavyWorkload() linWorkload {
	vals := make([][]byte, 6)
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	return linWorkload{
		name:    "kv-write-heavy",
		factory: statemachine.NewKVMachine,
		model:   lincheck.RegisterModel,
		genOp: func(rng *rand.Rand) []byte {
			key := fmt.Sprintf("k%d", rng.Intn(64))
			if rng.Intn(10) == 0 {
				return statemachine.EncodeGet(key)
			}
			switch rng.Intn(4) {
			case 0:
				return statemachine.EncodePut(key, vals[rng.Intn(len(vals))])
			case 1:
				return statemachine.EncodeAppend(key, []byte{byte('a' + rng.Intn(4))})
			case 2:
				return statemachine.EncodeDelete(key)
			default:
				return statemachine.EncodeCAS(key, vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
			}
		},
	}
}

// bankWriteHeavyWorkload skews the bank toward transfers and deposits.
// Transfers are cross-shard barriers in the sharded apply stage, so decided
// batches alternate between parallel per-account groups and serialization
// points; the Total reads assert conservation across them.
func bankWriteHeavyWorkload() linWorkload {
	accounts := []string{"a", "b", "c"}
	return linWorkload{
		name:    "bank-write-heavy",
		factory: statemachine.NewBankMachine,
		model:   lincheck.BankModel,
		setup: [][]byte{
			statemachine.EncodeOpen("a", 100),
			statemachine.EncodeOpen("b", 100),
			statemachine.EncodeOpen("c", 100),
		},
		genOp: func(rng *rand.Rand) []byte {
			switch rng.Intn(10) {
			case 0:
				return statemachine.EncodeBalance(accounts[rng.Intn(3)])
			case 1:
				return statemachine.EncodeTotal()
			case 2, 3, 4:
				return statemachine.EncodeDeposit(accounts[rng.Intn(3)], uint64(1+rng.Intn(3)))
			default:
				return statemachine.EncodeTransfer(accounts[rng.Intn(3)], accounts[rng.Intn(3)], uint64(1+rng.Intn(4)))
			}
		},
	}
}

func counterWorkload() linWorkload {
	return linWorkload{
		name:    "counter",
		factory: statemachine.NewCounterMachine,
		model:   lincheck.CounterModel,
		genOp: func(rng *rand.Rand) []byte {
			switch rng.Intn(4) {
			case 0:
				return statemachine.EncodeCounterGet()
			default:
				return statemachine.EncodeAdd(uint64(1 + rng.Intn(3)))
			}
		},
	}
}

func bankWorkload() linWorkload {
	accounts := []string{"a", "b", "c"}
	return linWorkload{
		name:    "bank",
		factory: statemachine.NewBankMachine,
		model:   lincheck.BankModel,
		setup: [][]byte{
			statemachine.EncodeOpen("a", 100),
			statemachine.EncodeOpen("b", 100),
			statemachine.EncodeOpen("c", 100),
		},
		genOp: func(rng *rand.Rand) []byte {
			switch rng.Intn(6) {
			case 0:
				return statemachine.EncodeBalance(accounts[rng.Intn(3)])
			case 1:
				return statemachine.EncodeTotal()
			case 2:
				return statemachine.EncodeDeposit(accounts[rng.Intn(3)], uint64(1+rng.Intn(3)))
			default:
				return statemachine.EncodeTransfer(accounts[rng.Intn(3)], accounts[rng.Intn(3)], uint64(1+rng.Intn(4)))
			}
		},
	}
}

// linRun parameterizes one workload × nemesis × seed cell.
type linRun struct {
	workload     linWorkload
	kinds        []nemesis.Kind
	seed         int64
	clients      int
	steps        int // nemesis schedule length
	minOk        int // keep loading until this many acked ops (0 = schedule only)
	minReconfigs int // drive extra reconfigurations until this count
	useWAL       bool
	checkBudget  time.Duration
	reads        ReadMode // 0 keeps the node default (ReadModeIndex)
	leaseTicks   int      // lease term override when reads is ReadModeLease
	serialApply  bool     // ablation: coupled decide/apply path instead of the parallel stage
	spec         SpecMode // 0 keeps the node default (SpecOn); SpecOff pins the wait-for-transfer ablation
	ckptInterval int      // checkpoint producer interval override (0 keeps the 4096 default)
	ckptMargin   int      // retained-slot margin below the quorum checkpoint base
	catchupGap   int      // decision gap that triggers checkpoint catch-up
}

func runLin(t *testing.T, run linRun) {
	seed := chaosSeed(t, run.seed)
	w := newWorld(t, transport.Options{
		BaseLatency: 100 * time.Microsecond,
		Jitter:      200 * time.Microsecond,
		LossRate:    0.01,
		Seed:        seed,
	})
	if run.reads != 0 {
		w.opts.Reads = run.reads
		w.opts.LeaseTicks = run.leaseTicks
	}
	if run.serialApply {
		w.opts.SerialApply = true
	}
	if run.spec != SpecDefault {
		w.opts.SpeculativeStart = run.spec
	}
	if run.ckptInterval != 0 {
		w.opts.CheckpointInterval = run.ckptInterval
		w.opts.CheckpointMargin = run.ckptMargin
		w.opts.CatchupGapSlots = run.catchupGap
	}
	if run.useWAL {
		dir := t.TempDir()
		w.newStore = func(id types.NodeID) storage.Store {
			st, err := storage.OpenWALStore(filepath.Join(dir, string(id)), storage.WALStoreOptions{})
			if err != nil {
				t.Fatalf("open wal store for %s: %v", id, err)
			}
			return st
		}
	}
	pool := []types.NodeID{"n1", "n2", "n3", "n4", "n5"}
	w.bootstrap(run.workload.factory, pool[0], pool[1], pool[2])
	w.waitServing(pool[0], pool[1], pool[2])
	for _, id := range pool[3:] {
		n := w.startNode(id, run.workload.factory)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Setup ops go through the recorder too: the checker starts from the
	// model's empty initial state, so account creation must be part of the
	// history it linearizes.
	rec := history.New()
	for i, op := range run.workload.setup {
		h := rec.Invoke("admin", uint64(i+1), op)
		rec.Ok(h, w.submit("n1", "admin", uint64(i+1), op))
	}

	// Clients: each retries its current (client, seq) until acknowledged —
	// the recorder keeps the whole retry span as one pending operation, so
	// an op applied during a timeout window is still checkable.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < run.clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*997 + int64(g)))
			client := types.NodeID(fmt.Sprintf("lc%d", g))
			seq := uint64(1)
			op := run.workload.genOp(rng)
			h := rec.Invoke(client, seq, op)
			for {
				select {
				case <-stop:
					return
				default:
				}
				node := w.node(pool[rng.Intn(len(pool))])
				if node == nil || !node.Serving() {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				reply, err := node.Submit(ctx, client, seq, op)
				cancel()
				if err != nil {
					continue // retry same seq; at-most-once makes this safe
				}
				rec.Ok(h, reply)
				seq++
				op = run.workload.genOp(rng)
				h = rec.Invoke(client, seq, op)
			}
		}(g)
	}

	cluster := &linCluster{w: w, pool: pool, factory: run.workload.factory}
	schedule := nemesis.Generate(seed, nemesis.Profile{
		Pool:  pool,
		Steps: run.steps,
		Kinds: run.kinds,
	})
	for _, step := range schedule {
		t.Logf("nemesis: %s", step)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	stats := nemesis.Execute(ctx, cluster, schedule)

	// Guarantee the reconfiguration floor regardless of what the random
	// schedule drew.
	rotations := [][]types.NodeID{pool[:3], pool[:5], pool[1:5], pool[:4]}
	for i := 0; stats.Reconfigs < run.minReconfigs && i < 20; i++ {
		if err := cluster.Reconfigure(ctx, rotations[i%len(rotations)]); err == nil {
			stats.Reconfigs++
		} else {
			t.Logf("floor reconfigure attempt %d: %v", i, err)
			time.Sleep(100 * time.Millisecond)
		}
	}
	if stats.Reconfigs < run.minReconfigs {
		for _, id := range pool {
			node := w.node(id)
			if node == nil {
				t.Logf("node %s: crashed/stopped", id)
				continue
			}
			node.mu.Lock()
			var engs []string
			for eid, run := range node.engines {
				es := run.eng.Stats()
				ldr, isLdr := run.eng.Leader()
				engs = append(engs, fmt.Sprintf("cfg%d:{buffered=%d leader=%s(%v) decided=%d props=%d elections=%d stepdowns=%d dropped=%d}",
					eid, len(run.buffered), ldr, isLdr, es.Decided, es.Proposals, es.Elections, es.StepDowns, es.DroppedInbound))
			}
			t.Logf("node %s: curID=%d init=%v applied=%d epoch=%d pending=%d waiters=%d applyCh=%d engines=%v stats={applied:%d viol:%d stale:%d wedges:%d resub:%d}",
				id, node.curID, node.initialized, node.appliedSlot, node.epoch,
				len(node.pending), len(node.readWaiters), len(node.applyCh), engs,
				node.stats.applied, node.stats.violations, node.stats.staleJumps,
				node.stats.wedges, node.stats.resubmits)
			node.mu.Unlock()
		}
		t.Fatalf("only %d reconfigurations (need %d); seed %d", stats.Reconfigs, run.minReconfigs, seed)
	}

	// Keep the load running until the op floor is met.
	if run.minOk > 0 {
		floor := time.Now().Add(60 * time.Second)
		for {
			ok, _, _ := rec.Counts()
			if ok >= run.minOk || time.Now().After(floor) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	w.net.HealAll()
	close(stop)
	wg.Wait()
	rec.Drain()

	ops := rec.Ops()
	okN, infoN, failN := rec.Counts()
	t.Logf("history: %d ops (%d ok, %d info, %d fail); faults: %s", len(ops), okN, infoN, failN, stats)
	if run.minOk > 0 && okN < run.minOk {
		t.Fatalf("only %d acknowledged ops (wanted >= %d); seed %d", okN, run.minOk, seed)
	}
	budget := run.checkBudget
	if budget == 0 {
		budget = 25 * time.Second
	}
	res := lincheck.CheckHistory(run.workload.model(), ops, lincheck.Options{Timeout: budget})
	t.Logf("lincheck: %d ops in %d partition(s) checked in %s", res.Ops, res.Partitions, res.Elapsed)
	if res.Unknown {
		t.Fatalf("checker exceeded its %s budget (seed %d)", budget, seed)
	}
	if !res.Ok {
		t.Fatalf("history is NOT linearizable (seed %d):\n%s", seed, res.Counterexample)
	}
	if run.ckptInterval != 0 {
		// The cell only means something if the compaction machinery actually
		// ran under the fault schedule: with a tiny interval and hundreds of
		// acknowledged ops, the surviving nodes must have published
		// checkpoints and released engine log behind them. (Crash-restarted
		// nodes restart their in-memory counters, so this sums whatever the
		// current incarnations saw — still nonzero under continuous load.)
		var published, fetches, truncated int64
		for _, id := range pool {
			if n := w.node(id); n != nil {
				s := n.Stats()
				published += s.CheckpointsPublished
				fetches += s.CatchupFetches
				truncated += s.TruncatedSlots
			}
		}
		t.Logf("checkpoints: published=%d catchup-fetches=%d truncated-slots=%d", published, fetches, truncated)
		if published == 0 {
			t.Fatalf("checkpoint churn cell ran with zero checkpoints published; seed %d", seed)
		}
		if truncated == 0 {
			t.Fatalf("checkpoint churn cell released no log slots; seed %d", seed)
		}
	}
	w.checkNoViolations()
}

func TestLinearizabilityKVUnderPartitions(t *testing.T) {
	runLin(t, linRun{
		workload: kvWorkload(),
		kinds:    []nemesis.Kind{nemesis.KindPartition, nemesis.KindIsolate},
		seed:     101,
		clients:  4,
		steps:    6,
	})
}

func TestLinearizabilityCounterUnderCrashes(t *testing.T) {
	runLin(t, linRun{
		workload: counterWorkload(),
		kinds:    []nemesis.Kind{nemesis.KindCrashRestart, nemesis.KindLeaderKill},
		seed:     202,
		clients:  3,
		steps:    5,
	})
}

func TestLinearizabilityBankUnderReconfigChurn(t *testing.T) {
	runLin(t, linRun{
		workload:     bankWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindPartition},
		seed:         303,
		clients:      3,
		steps:        6,
		minReconfigs: 1,
	})
}

func TestLinearizabilityWALCrashRestart(t *testing.T) {
	runLin(t, linRun{
		workload: counterWorkload(),
		kinds:    []nemesis.Kind{nemesis.KindCrashRestart, nemesis.KindReconfigure},
		seed:     404,
		clients:  3,
		steps:    5,
		useWAL:   true,
	})
}

// TestLinearizabilityReadHeavyIndex drives the read-index fast path hard:
// 90% Gets against a cluster whose leader is repeatedly killed and whose
// links partition. Every fast read must still be linearizable — a read
// answered by a deposed leader that skipped its confirmation round would
// show up as a stale-read counterexample.
func TestLinearizabilityReadHeavyIndex(t *testing.T) {
	runLin(t, linRun{
		workload: kvReadHeavyWorkload(),
		kinds:    []nemesis.Kind{nemesis.KindLeaderKill, nemesis.KindPartition},
		seed:     606,
		clients:  4,
		steps:    6,
		reads:    ReadModeIndex,
	})
}

// TestLinearizabilityReadHeavyIndexReconfig crosses the fast path with
// reconfiguration churn: wedge fencing must cut over reads to the successor
// configuration with no stale window.
func TestLinearizabilityReadHeavyIndexReconfig(t *testing.T) {
	runLin(t, linRun{
		workload:     kvReadHeavyWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindPartition},
		seed:         707,
		clients:      4,
		steps:        6,
		minReconfigs: 1,
		reads:        ReadModeIndex,
	})
}

// TestLinearizabilityReadHeavyLease runs the same read-heavy load on the
// lease tier — the leader answers reads with no per-read message round — and
// mixes leader kills with reconfigurations, the two events that depose a
// lease holder. The default lease term (half the election timeout, minus the
// clock-skew margin) keeps every lease inside the prepare-suppression window,
// so loss-induced elections cannot outrun a valid lease; reconfigurations are
// covered by wedge fencing. TestWedgeFencesLeaseReads covers the deliberately
// long-lease corner.
func TestLinearizabilityReadHeavyLease(t *testing.T) {
	runLin(t, linRun{
		workload:     kvReadHeavyWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindLeaderKill, nemesis.KindReconfigure},
		seed:         808,
		clients:      4,
		steps:        6,
		minReconfigs: 1,
		reads:        ReadModeLease,
	})
}

// TestLinearizabilityWriteHeavyParallelApply is the parallel-apply
// correctness run: a 90%-write KV load across 64 keys (many shards) while the
// nemesis churns reconfigurations and crash-restarts nodes. Parallel apply is
// on (the default); every reply released before a shard worker finished, and
// every decided batch surviving a wedge half-applied, would be a
// counterexample here.
func TestLinearizabilityWriteHeavyParallelApply(t *testing.T) {
	runLin(t, linRun{
		workload:     kvWriteHeavyWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindCrashRestart},
		seed:         909,
		clients:      4,
		steps:        6,
		minReconfigs: 1,
	})
}

// TestLinearizabilityWriteHeavyBankParallelApply runs the transfer-skewed
// bank under the same churn: transfers are cross-shard barriers, so this is
// the case where the apply stage must drain all shard workers before the
// barrier op and before every wedge snapshot — conservation violations or
// stale Totals would fail the check.
func TestLinearizabilityWriteHeavyBankParallelApply(t *testing.T) {
	runLin(t, linRun{
		workload:     bankWriteHeavyWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindCrashRestart},
		seed:         1010,
		clients:      4,
		steps:        6,
		minReconfigs: 1,
	})
}

// TestLinearizabilityWriteHeavySerialAblation pins the same write-heavy load
// to the SerialApply ablation path, keeping the coupled decide/apply code
// honest while it exists as the W1 baseline.
func TestLinearizabilityWriteHeavySerialAblation(t *testing.T) {
	runLin(t, linRun{
		workload:    kvWriteHeavyWorkload(),
		kinds:       []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindPartition},
		seed:        1111,
		clients:     4,
		steps:       6,
		serialApply: true,
	})
}

// TestLinearizabilitySpeculativeReconfig is the speculative-start chaos run:
// reconfiguration churn plus crash-restarts with SpeculativeStart pinned on,
// so every joiner decides slots of the successor configuration while its
// snapshot is still streaming (and crash-restarted joiners replay those
// decisions from their durable records). Any decision applied before the
// install, any reply released before the apply point passed the snapshot's
// base index, or any double-apply after a crashed speculative phase is a
// linearizability counterexample here.
func TestLinearizabilitySpeculativeReconfig(t *testing.T) {
	runLin(t, linRun{
		workload:     kvWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindCrashRestart},
		seed:         1212,
		clients:      4,
		steps:        6,
		minReconfigs: 2,
		spec:         SpecOn,
	})
}

// TestLinearizabilitySpeculativeReconfigBank runs the same speculative-start
// churn over the bank machine: transfers are cross-shard barriers and Totals
// assert conservation, so a joiner whose speculative decisions interleave
// wrongly with its snapshot install breaks conservation visibly.
func TestLinearizabilitySpeculativeReconfigBank(t *testing.T) {
	runLin(t, linRun{
		workload:     bankWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindCrashRestart, nemesis.KindPartition},
		seed:         1313,
		clients:      4,
		steps:        6,
		minReconfigs: 2,
		spec:         SpecOn,
	})
}

// TestLinearizabilityCheckpointChurn crosses log compaction with the fault
// schedule: a ~30-slot checkpoint interval keeps the producer, quorum-gated
// truncation and checkpoint catch-up all firing continuously while the
// nemesis reconfigures, crash-restarts and isolates nodes. An isolated or
// rebooted member that heals behind the survivors' truncation floor can only
// recover through a checkpoint install — a double-applied prefix after the
// install, a lost op inside the released log span, or a reply served from a
// half-installed snapshot is a linearizability counterexample here.
func TestLinearizabilityCheckpointChurn(t *testing.T) {
	runLin(t, linRun{
		workload:     kvWorkload(),
		kinds:        []nemesis.Kind{nemesis.KindReconfigure, nemesis.KindCrashRestart, nemesis.KindIsolate},
		seed:         1414,
		clients:      4,
		steps:        6,
		minReconfigs: 1,
		ckptInterval: 30,
		ckptMargin:   5,
		catchupGap:   50,
	})
}

// TestLinearizabilityLarge is the acceptance run: a 5-node cluster under the
// full fault mix — partitions, crash-restarts and at least three
// reconfigurations — producing a 10k+-op KV history that must check in
// seconds. The race detector multiplies per-op cost, so the floor scales
// down under -race.
func TestLinearizabilityLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large linearizability run in -short mode")
	}
	minOk := 10000
	if raceEnabled {
		minOk = 2500
	}
	runLin(t, linRun{
		workload:     kvWorkload(),
		kinds:        nemesis.AllKinds,
		seed:         505,
		clients:      6,
		steps:        12,
		minOk:        minOk,
		minReconfigs: 3,
		checkBudget:  25 * time.Second,
	})
}
