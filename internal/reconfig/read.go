package reconfig

import (
	"repro/internal/smr"
	"repro/internal/types"
)

// This file is the composition half of the linearizable read fast path.
// The engine half (internal/paxos/read.go) confirms leadership and yields a
// read index; this half decides whether the node may answer at all.
//
// The correctness core is fencing: a read is served under the configuration
// it was classified in (readCfg), and it must be refused the moment that
// configuration is wedged — whether the wedge arrived as the node's own
// reconfig decision, as an announce from a peer, or as a gossip-repaired
// chain record. A wedged configuration's state becomes the successor's
// initial state, and the successor may execute writes the old leader never
// sees; answering reads from the old configuration after that point would
// serve stale data as if it were current. The engine cannot know any of
// this (it is a black box that never learns about membership change), so
// the node re-checks the fence under its own lock every time a read is
// about to be answered.

// staleReadTicks is how many housekeeping ticks a parked fast-path read may
// wait for the apply cursor to reach its index before it is rerouted
// through the log (which makes progress through leader forwarding even when
// this replica is stuck).
const staleReadTicks = 10

// readWaiter is one fast-path read whose index is confirmed but whose slot
// has not been applied locally yet.
type readWaiter struct {
	cfg     types.ConfigID
	index   types.Slot
	cmd     types.Command
	respond func([]byte)
	ticks   int
}

// tryFastReadLocked classifies cmd and, when it is a read-only op eligible
// for the fast path, hands it to the current engine's ReadIndex. It returns
// true when the read was taken over by the fast path (respond will be
// called later); false when the caller must use the log path. Caller holds
// n.mu; the lock is dropped and re-acquired around the ReadIndex call, so
// the caller must re-validate serving state when false is returned.
func (n *Node) tryFastReadLocked(cmd types.Command, respond func([]byte)) bool {
	if n.opts.Reads == ReadModeLog || !n.machine.ReadOnly(cmd.Data) {
		return false
	}
	readCfg := n.curID
	if n.readFencedLocked(readCfg) {
		// Already wedged: refuse rather than serve; the redirect points the
		// client at the successor.
		n.reads.Fenced.Add(1)
		respond(n.redirectReplyLocked())
		return true
	}
	run, ok := n.engines[readCfg]
	if !ok {
		return false
	}
	eng := run.eng
	// ReadIndex must run outside n.mu: its callback (and its shutdown
	// drain) re-acquires the node lock.
	n.mu.Unlock()
	err := eng.ReadIndex(func(index types.Slot, rerr error) {
		n.completeRead(readCfg, cmd, respond, index, rerr)
	})
	n.mu.Lock()
	if err != nil {
		return false // queue full or engine stopped: use the log path
	}
	return true
}

// completeRead finishes one fast-path read once the engine has confirmed a
// read index (or refused). It runs on the engine's event loop goroutine and
// must not block beyond taking n.mu.
func (n *Node) completeRead(readCfg types.ConfigID, cmd types.Command, respond func([]byte), index types.Slot, err error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	if err != nil {
		// The engine would not confirm leadership (follower, deposed, or
		// stopped). Fall back to the log path, which is correct from any
		// node: the proposal is forwarded to whoever leads now.
		n.reads.Fallback.Add(1)
		n.fallbackReadLocked(cmd, respond)
		n.mu.Unlock()
		return
	}
	if n.readFencedLocked(readCfg) {
		n.reads.Fenced.Add(1)
		resp := n.redirectReplyLocked()
		n.mu.Unlock()
		respond(resp)
		return
	}
	if n.appliedSlot >= index {
		resp := n.serveReadLocked(cmd)
		n.mu.Unlock()
		respond(resp)
		return
	}
	// Confirmed but not yet applied locally: park until the apply loop
	// reaches the index (or a wedge fences the configuration).
	n.readWaiters = append(n.readWaiters, &readWaiter{
		cfg: readCfg, index: index, cmd: cmd, respond: respond,
	})
	n.mu.Unlock()
}

// readFencedLocked reports whether fast-path reads classified under readCfg
// must be refused. The first clause is structural (the node moved on or has
// no valid state); the second is the wedge fence proper: any known chain
// record for readCfg means the configuration's log is sealed and its state
// has been handed to a successor, even if this node's own engine has not
// delivered the wedge yet.
func (n *Node) readFencedLocked(readCfg types.ConfigID) bool {
	if n.curID != readCfg || !n.initialized {
		return true
	}
	if n.opts.DisableReadFence {
		return false
	}
	_, wedged := n.chain[readCfg]
	return wedged
}

// serveReadLocked answers a read from local state and builds the reply.
// execMu (shared) orders the read after any off-mutex apply segment in
// flight: by the time the apply cursor covers the read's index the commit
// ran under n.mu, so state at least that fresh — and never a half-applied
// batch — is what the read observes.
func (n *Node) serveReadLocked(cmd types.Command) []byte {
	n.execMu.RLock()
	reply := n.machine.ApplyRead(cmd.Data)
	n.execMu.RUnlock()
	n.reads.Fast.Add(1)
	return encodeSubmitReply(submitReply{
		Status: SubmitApplied,
		Reply:  reply,
		Config: n.configs[n.curID],
		Leader: n.leaderHintLocked(),
	})
}

// redirectReplyLocked builds the redirect reply for a fenced read.
func (n *Node) redirectReplyLocked() []byte {
	return encodeSubmitReply(submitReply{
		Status: SubmitRedirect,
		Config: n.configs[n.curID],
		Leader: n.leaderHintLocked(),
	})
}

// fallbackReadLocked reroutes a failed fast-path read through the log. If
// this node cannot serve at all it redirects instead.
func (n *Node) fallbackReadLocked(cmd types.Command, respond func([]byte)) {
	if !n.initialized || !n.configs[n.curID].IsMember(n.self) {
		respond(n.redirectReplyLocked())
		return
	}
	n.enqueueSubmitLocked(cmd, respond)
}

// serveReadyReadsLocked sweeps the parked read waiters: serve the ones
// whose index has been applied, fence the ones whose configuration wedged,
// keep the rest. Called after every apply batch, after snapshot install,
// and on every configuration transition.
func (n *Node) serveReadyReadsLocked() {
	if len(n.readWaiters) == 0 {
		return
	}
	keep := n.readWaiters[:0]
	for _, w := range n.readWaiters {
		switch {
		case n.readFencedLocked(w.cfg):
			n.reads.Fenced.Add(1)
			w.respond(n.redirectReplyLocked())
		case n.appliedSlot >= w.index:
			w.respond(n.serveReadLocked(w.cmd))
		default:
			keep = append(keep, w)
		}
	}
	n.readWaiters = keep
}

// ageReadWaitersLocked is the housekeeping sweep: a read stuck beyond
// staleReadTicks (leadership confirmed but the apply cursor is not
// advancing, e.g. the leader lost its quorum right after the probe) is
// rerouted through the log so it shares the write path's retry machinery.
func (n *Node) ageReadWaitersLocked() {
	if len(n.readWaiters) == 0 {
		return
	}
	keep := n.readWaiters[:0]
	for _, w := range n.readWaiters {
		w.ticks++
		if w.ticks > staleReadTicks {
			n.reads.Fallback.Add(1)
			n.fallbackReadLocked(w.cmd, w.respond)
			continue
		}
		keep = append(keep, w)
	}
	n.readWaiters = keep
}

// ReadIndexer returns the current configuration's engine as a ReadIndexer
// when available (test access).
func (n *Node) ReadIndexer() (smr.ReadIndexer, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	run, ok := n.engines[n.curID]
	if !ok {
		return nil, false
	}
	return run.eng, true
}
