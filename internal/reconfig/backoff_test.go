package reconfig

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffSchedule pins the deterministic (nil-rng) schedule: doubling
// from base, capped at max. A change to the retry cadence must be deliberate
// enough to edit this table.
func TestBackoffSchedule(t *testing.T) {
	base := 10 * time.Millisecond
	max := 400 * time.Millisecond
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 1
		20 * time.Millisecond,  // attempt 2
		40 * time.Millisecond,  // attempt 3
		80 * time.Millisecond,  // attempt 4
		160 * time.Millisecond, // attempt 5
		320 * time.Millisecond, // attempt 6
		400 * time.Millisecond, // attempt 7 (capped)
		400 * time.Millisecond, // attempt 8 (stays capped)
	}
	for i, w := range want {
		if got := BackoffDelay(i+1, base, max, nil); got != w {
			t.Errorf("attempt %d: got %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffDegenerateInputs(t *testing.T) {
	if got := BackoffDelay(0, 10*time.Millisecond, 0, nil); got != 10*time.Millisecond {
		t.Errorf("attempt 0 clamps to 1: got %v", got)
	}
	if got := BackoffDelay(3, 0, 0, nil); got != 4*time.Millisecond {
		t.Errorf("zero base defaults to 1ms: got %v", got)
	}
	// No max: pure doubling.
	if got := BackoffDelay(10, time.Millisecond, 0, nil); got != 512*time.Millisecond {
		t.Errorf("uncapped attempt 10: got %v", got)
	}
}

// TestBackoffJitterBounds checks every jittered delay stays within ±25% of
// the deterministic midpoint, and that the jitter actually spreads values.
func TestBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(SeedFor("jitter-test")))
	base := 10 * time.Millisecond
	max := 400 * time.Millisecond
	seen := map[time.Duration]bool{}
	for attempt := 1; attempt <= 8; attempt++ {
		mid := BackoffDelay(attempt, base, max, nil)
		lo, hi := mid-mid/4, mid+mid/4
		for i := 0; i < 200; i++ {
			d := BackoffDelay(attempt, base, max, rng)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: %v outside [%v, %v]", attempt, d, lo, hi)
			}
			seen[d] = true
		}
	}
	if len(seen) < 50 {
		t.Fatalf("jitter too clustered: only %d distinct delays", len(seen))
	}
}

// TestSeedForStable pins the per-node seed derivation: distinct nodes get
// distinct seeds, the same node always the same seed, and seeds are
// non-negative (rand.NewSource accepts any int64 but keep them canonical).
func TestSeedForStable(t *testing.T) {
	a1, a2, b := SeedFor("n1"), SeedFor("n1"), SeedFor("n2")
	if a1 != a2 {
		t.Fatalf("SeedFor not stable: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Fatalf("SeedFor collides for n1/n2: %d", a1)
	}
	if a1 < 0 || b < 0 {
		t.Fatalf("SeedFor produced negative seed: %d %d", a1, b)
	}
}
