package reconfig

import (
	"repro/internal/types"
)

// applyLoop is the node's single execution thread: it serializes decisions
// from all engines into the global command sequence.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case td := <-n.applyCh:
			n.mu.Lock()
			n.routeDecisionLocked(td)
			n.pumpLocked()
			n.mu.Unlock()
		}
	}
}

// routeDecisionLocked buffers or discards one decision according to which
// configuration it belongs to.
func (n *Node) routeDecisionLocked(td taggedDecision) {
	if td.id < n.curID {
		// The old engine decided something after its wedge slot. Per the
		// composition rule it is NOT applied there; if we have a client
		// waiting on it, the housekeeping loop re-proposes it in the
		// current configuration (dedup makes that idempotent).
		return
	}
	run, ok := n.engines[td.id]
	if !ok {
		return
	}
	run.buffered = append(run.buffered, td.dec)
}

// pumpLocked applies every ready decision and then serves any fast-path
// reads whose index the apply cursor just reached (or whose configuration
// the pumped decisions just wedged).
func (n *Node) pumpLocked() {
	n.pumpDecisionsLocked()
	n.serveReadyReadsLocked()
}

// pumpDecisionsLocked applies every ready decision of the current
// configuration, following wedges across engines until no more progress is
// possible.
func (n *Node) pumpDecisionsLocked() {
	for {
		if !n.initialized {
			return
		}
		run, ok := n.engines[n.curID]
		if !ok || len(run.buffered) == 0 {
			return
		}
		dec := run.buffered[0]
		run.buffered = run.buffered[1:]
		if dec.Slot != n.appliedSlot+1 {
			if dec.Slot <= n.appliedSlot {
				continue // stale redelivery; already executed
			}
			// The engine contract is gap-free in-order delivery, so
			// this is unreachable; count it rather than crash.
			n.stats.violations++
			continue
		}
		n.applyOneLocked(dec.Slot, dec.Cmd)
	}
}

// applyOneLocked executes one decided slot of the current configuration.
// It may perform a wedge transition.
func (n *Node) applyOneLocked(slot types.Slot, cmd types.Command) {
	n.appliedSlot = slot
	n.applyCommandLocked(slot, cmd)
}

// applyCommandLocked executes one command (possibly a batch member) at slot.
func (n *Node) applyCommandLocked(slot types.Slot, cmd types.Command) {
	if cmd.Kind == types.CmdReconfig {
		n.applyReconfigLocked(slot, cmd)
		return
	}
	if cmd.Kind == types.CmdBatch {
		subs, err := types.DecodeBatch(cmd.Data)
		if err != nil {
			n.stats.violations++ // a leader produced a corrupt batch
			return
		}
		for _, sub := range subs {
			before := n.curID
			n.applyCommandLocked(slot, sub)
			if n.curID != before {
				// A reconfiguration inside the batch wedged this
				// configuration; the remaining batch members are
				// post-wedge and follow the re-submission rule.
				return
			}
		}
		return
	}
	reply, dup := n.machine.ApplyCommand(cmd)
	n.stats.applied++
	if dup {
		n.stats.duplicates++
	}
	if cmd.Client == "" {
		return
	}
	key := pendKey{client: cmd.Client, seq: cmd.Seq}
	if p, ok := n.pending[key]; ok {
		delete(n.pending, key)
		n.respondApplied(p, reply)
	}
}

// respondApplied answers every RPC waiter attached to a pending command.
func (n *Node) respondApplied(p *pendingCmd, reply []byte) {
	if len(p.responders) == 0 {
		return
	}
	resp := encodeSubmitReply(submitReply{
		Status: SubmitApplied,
		Reply:  reply,
		Config: n.configs[n.curID],
		Leader: n.leaderHintLocked(),
	})
	for _, respond := range p.responders {
		respond(resp)
	}
}

func (n *Node) leaderHintLocked() types.NodeID {
	if run, ok := n.engines[n.curID]; ok {
		hint, _ := run.eng.Leader()
		return hint
	}
	return ""
}

// applyReconfigLocked performs the wedge transition: configuration curID is
// wedged at slot, its state becomes the successor's initial state, and the
// successor engine takes over.
func (n *Node) applyReconfigLocked(slot types.Slot, cmd types.Command) {
	newCfg, err := types.DecodeConfig(cmd.Data)
	if err != nil || newCfg.ID != n.curID+1 {
		// Deterministically invalid (stale ID from a racing proposer or
		// corrupt): every replica treats it as a no-op.
		return
	}
	rec := ChainRecord{
		From:        n.curID,
		FromMembers: n.configs[n.curID].Members,
		WedgeSlot:   slot,
		To:          newCfg,
	}
	if prev, ok := n.chain[rec.From]; ok {
		if !prev.Equal(rec) {
			// Two different successors for one configuration would be
			// a chain fork — agreement inside the engine forbids it.
			n.stats.violations++
			return
		}
	} else {
		n.chain[rec.From] = rec
		if err := n.store.Set(chainKey(rec.From), encodeChainRecord(rec)); err != nil {
			n.stats.violations++
		}
	}
	n.configs[newCfg.ID] = newCfg
	n.stats.wedges++

	// The machine state at the wedge IS the successor's initial state.
	// Capture it as a copy-on-write fork (O(shards) under n.mu) and let a
	// background goroutine serialize, serve and persist it in chunks; the
	// monolithic ablation serializes synchronously here instead.
	n.captureSnapshotLocked(newCfg.ID)

	// Let the old engine linger for laggards, then stop it.
	if run, ok := n.engines[rec.From]; ok {
		n.scheduleEngineStop(run)
	}

	n.curID = newCfg.ID
	n.appliedSlot = 0

	// Tell the successor's members (the new ones cannot discover the
	// configuration through their own logs).
	n.announceLocked(rec)

	if newCfg.IsMember(n.self) {
		// We hold the state already: activate immediately; the engine
		// starts speculatively regardless of the snapshot (it is local).
		if err := n.ensureEngineLocked(newCfg.ID); err != nil {
			n.stats.violations++
		}
		// initialized stays true: machine == initial state of newCfg.
		n.resubmitPendingLocked(true)
	} else {
		// We are retired. Redirect every waiting client to the new
		// configuration and stop executing.
		n.initialized = false
		n.redirectAllPendingLocked()
	}
	n.notifyTransitionLocked()
}

// announceLocked broadcasts the chain record to the successor's members.
// Best-effort: the housekeeping loop and discovery RPCs cover losses.
func (n *Node) announceLocked(rec ChainRecord) {
	body := encodeAnnounce(announceMsg{Record: rec})
	for _, m := range rec.To.Members {
		if m == n.self {
			continue
		}
		n.sendAnnounce(m, body)
	}
}

// resubmitPendingLocked re-proposes pending commands into the current
// configuration's engine. Session dedup makes duplicates harmless. Each
// command backs off exponentially (with jitter) across housekeeping ticks so
// a stalled configuration is not hammered every tick; force resets the
// backoff and re-proposes everything immediately — used on configuration
// transitions, where the fresh engine deserves an instant try.
func (n *Node) resubmitPendingLocked(force bool) {
	run, ok := n.engines[n.curID]
	if !ok {
		return
	}
	for key, p := range n.pending {
		if force {
			p.backoff = 0
		} else if n.tick < p.nextRetry {
			continue
		}
		p.tries++
		if p.tries > n.opts.PendingMaxRetries {
			delete(n.pending, key)
			continue
		}
		n.stats.resubmits++
		_ = run.eng.Propose(p.cmd) // best effort; a later tick retries
		step := int64(1) << p.backoff
		if p.backoff < 4 { // cap at 16 ticks between re-proposals
			p.backoff++
		}
		p.nextRetry = n.tick + step + n.rng.Int63n(step+1)
	}
}

// redirectAllPendingLocked answers every waiting client with a redirect to
// the current configuration.
func (n *Node) redirectAllPendingLocked() {
	resp := encodeSubmitReply(submitReply{
		Status: SubmitRedirect,
		Config: n.configs[n.curID],
		Leader: "",
	})
	for key, p := range n.pending {
		for _, respond := range p.responders {
			respond(resp)
		}
		delete(n.pending, key)
	}
}
