package reconfig

import (
	"time"

	"repro/internal/statemachine"
	"repro/internal/types"
)

// applyLoop is the node's single execution thread: it serializes decisions
// from all engines into the global command sequence. Two operating modes:
//
//   - SerialApply (the ablation / pre-pipelining path): every decision
//     executes under n.mu, one command at a time, via pumpLocked.
//   - Default (decoupled): the loop collects a run of ready decisions under
//     n.mu, releases the mutex, executes them — in parallel across shards
//     when the machine supports it — and reacquires n.mu only to commit:
//     advance the apply cursor, answer waiting clients, serve parked reads.
//     Proposals, reads and housekeeping no longer contend with execution.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case td := <-n.applyCh:
			n.mu.Lock()
			n.routeDecisionLocked(td)
			n.mu.Unlock()
			n.pump()
		case <-n.pumpCh:
			n.pump()
		}
	}
}

// maxApplyUnits bounds how many commands one pump round executes before
// recommitting, so a deep decision backlog cannot hold execMu (and block
// fast-path reads) unboundedly.
const maxApplyUnits = 1024

// applyUnit is one flattened command: batches are exploded into their
// members, all carrying the batch's slot.
type applyUnit struct {
	slot types.Slot
	cmd  types.Command
}

// pump drains ready decisions until no more progress is possible.
func (n *Node) pump() {
	for n.pumpRound() {
	}
}

// pumpRound routes queued decisions and applies up to maxApplyUnits ready
// commands. It reports whether it made progress (the caller loops while it
// does).
func (n *Node) pumpRound() bool {
	n.mu.Lock()
	n.drainApplyChLocked()
	if n.opts.SerialApply {
		n.pumpLocked()
		n.mu.Unlock()
		return false // pumpLocked drains everything ready in one call
	}
	units := n.collectReadyLocked(maxApplyUnits)
	if len(units) == 0 {
		n.serveReadyReadsLocked()
		n.mu.Unlock()
		return false
	}
	epoch := n.epoch
	machine := n.machine
	n.mu.Unlock()

	// Execute segment by segment: a maximal run of ordinary commands is one
	// machine batch executed off-mutex; each reconfiguration executes alone
	// under the mutex. ApplyBatch joins all shard workers before returning,
	// so by construction every preceding mutation is complete before a
	// wedge forks the snapshot (the wedge-drain rule).
	i := 0
	for i < len(units) {
		if units[i].cmd.Kind == types.CmdReconfig {
			lastOfSlot := i+1 >= len(units) || units[i+1].slot != units[i].slot
			ok, wedged := n.applyReconfigUnit(units[i], lastOfSlot, &epoch)
			if !ok || wedged {
				// Epoch raced (results obsolete) or this configuration
				// wedged: the remaining units are post-wedge and follow
				// the re-submission rule, exactly like the buffered
				// decisions pumpLocked abandons at a wedge.
				return true
			}
			i++
			continue
		}
		j := i + 1
		for j < len(units) && units[j].cmd.Kind != types.CmdReconfig {
			j++
		}
		// Commit cursor: the last slot all of whose units are in this
		// segment. A reconfiguration in the same slot (mid-batch wedge)
		// means the slot is only partially executed here.
		commit := units[j-1].slot
		if j < len(units) && units[j].slot == units[j-1].slot {
			commit = units[j-1].slot - 1
		}
		if !n.applySegment(machine, units[i:j], commit, epoch) {
			return true // epoch raced; results discarded
		}
		i = j
	}
	return true
}

// drainApplyChLocked greedily routes every queued decision without blocking.
func (n *Node) drainApplyChLocked() {
	for {
		select {
		case td := <-n.applyCh:
			n.routeDecisionLocked(td)
		default:
			return
		}
	}
}

// collectReadyLocked pops the contiguous run of ready decisions of the
// current configuration and flattens batches into applyUnits. Mirrors
// pumpDecisionsLocked's cursor discipline: stale redeliveries are skipped,
// slot gaps are invariant violations (the engine contract is gap-free
// in-order delivery).
func (n *Node) collectReadyLocked(max int) []applyUnit {
	if !n.initialized {
		return nil
	}
	run, ok := n.engines[n.curID]
	if !ok {
		return nil
	}
	var units []applyUnit
	cursor := n.appliedSlot
	for len(units) < max && len(run.buffered) > 0 {
		dec := run.buffered[0]
		if dec.Slot != cursor+1 && dec.Slot > cursor && run.droppedBelow > cursor {
			// The missing slots were dropped by the bounded buffer and this
			// engine will not redeliver them; leave the decision parked and
			// let checkpoint catch-up jump the cursor past the gap.
			break
		}
		run.buffered = run.buffered[1:]
		if dec.Slot != cursor+1 {
			if dec.Slot <= cursor {
				continue // stale redelivery; already executed
			}
			n.stats.violations++
			continue
		}
		cursor = dec.Slot
		if dec.Cmd.Kind == types.CmdBatch {
			subs, err := types.DecodeBatch(dec.Cmd.Data)
			if err != nil {
				// A leader produced a corrupt batch; consume the slot so
				// the cursor still advances (as the serial path does).
				n.stats.violations++
				units = append(units, applyUnit{slot: dec.Slot, cmd: types.Command{Kind: types.CmdNoop}})
				continue
			}
			for _, sub := range subs {
				units = append(units, applyUnit{slot: dec.Slot, cmd: sub})
			}
			continue
		}
		units = append(units, applyUnit{slot: dec.Slot, cmd: dec.Cmd})
	}
	return units
}

// applyReconfigUnit executes one reconfiguration command under the mutex.
// ok=false means the epoch raced and nothing was done; wedged reports
// whether the configuration actually transitioned (in which case the caller
// must discard the rest of its collected units). On a deterministically
// invalid reconfiguration (a no-op) the epoch is unchanged and the caller
// continues; the apply cursor only advances when this is the slot's final
// unit, so a parked read can never be served against a half-applied slot.
func (n *Node) applyReconfigUnit(u applyUnit, lastOfSlot bool, epoch *int64) (ok, wedged bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.epoch != *epoch {
		return false, false
	}
	before := n.curID
	if lastOfSlot {
		n.appliedSlot = u.slot
	}
	n.applyReconfigLocked(u.slot, u.cmd)
	*epoch = n.epoch
	n.serveReadyReadsLocked()
	return true, n.curID != before || !n.initialized
}

// applySegment executes a run of ordinary commands against the machine with
// the node mutex released, then reacquires it to commit. If the epoch moved
// while executing, the machine the segment mutated was already abandoned
// (snapshot install or configuration jump replaced it) and the results are
// discarded: nothing is committed, no client is answered; re-submission and
// session dedup re-derive the replies. Returns whether the commit happened.
func (n *Node) applySegment(machine *statemachine.Sessioned, seg []applyUnit, commit types.Slot, epoch int64) bool {
	cmds := make([]types.Command, len(seg))
	for k := range seg {
		cmds[k] = seg[k].cmd
	}
	n.execMu.Lock()
	replies, dups := machine.ApplyBatch(cmds, true)
	n.execMu.Unlock()

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.epoch != epoch {
		return false
	}
	if commit > n.appliedSlot {
		n.appliedSlot = commit
	}
	for k := range seg {
		cmd := seg[k].cmd
		n.stats.applied++
		if dups[k] {
			n.stats.duplicates++
		}
		if cmd.Client == "" {
			continue
		}
		key := pendKey{client: cmd.Client, seq: cmd.Seq}
		if p, pok := n.pending[key]; pok {
			delete(n.pending, key)
			n.respondApplied(p, replies[k])
		}
	}
	n.serveReadyReadsLocked()
	return true
}

// routeDecisionLocked buffers or discards one decision according to which
// configuration it belongs to.
func (n *Node) routeDecisionLocked(td taggedDecision) {
	if td.id < n.curID {
		// The old engine decided something after its wedge slot. Per the
		// composition rule it is NOT applied there; if we have a client
		// waiting on it, the housekeeping loop re-proposes it in the
		// current configuration (dedup makes that idempotent).
		return
	}
	run, ok := n.engines[td.id]
	if !ok {
		return
	}
	if _, seen := n.firstDecide[td.id]; !seen {
		n.firstDecide[td.id] = time.Now()
	}
	if td.id > n.curID || !n.initialized {
		// Decided before this node's state caught up to the configuration:
		// either a future config's engine running speculatively, or the
		// current config's engine deciding while the snapshot is still in
		// flight. The decision parks here until the install.
		n.stats.specDecides++
	}
	run.buffered = append(run.buffered, td.dec)
	if lim := n.opts.DecisionBuffer; lim > 0 && len(run.buffered) > lim {
		// Bounded parking: drop the oldest parked decision rather than let
		// a long install window grow the buffer without limit. The dropped
		// slots cannot come back from this buffer (engine delivery is
		// once-only), so the marker reroutes the resulting cursor gap to
		// checkpoint catch-up instead of counting it as a violation.
		//
		// The bound applies only to decisions the node cannot yet apply —
		// a future configuration's engine, or the current one before its
		// snapshot installs or behind an existing drop gap. An initialized
		// node's contiguous backlog is working set the apply stage is
		// actively draining: dropping its head would cut an unfillable gap
		// right in front of the cursor (a permanent wedge under the
		// NoCheckpoints ablation — restart recovery redelivers the whole
		// retained log in one burst — and a spurious refetch otherwise).
		// Its size needs no bound here: it is capped by what the engines
		// retain, which truncation keeps near interval+margin.
		if td.id > n.curID || !n.initialized || run.droppedBelow > n.appliedSlot {
			if d := run.buffered[0]; d.Slot > run.droppedBelow {
				run.droppedBelow = d.Slot
			}
			run.buffered = run.buffered[1:]
			n.stats.bufferDrops++
		}
	}
	if d := int64(len(run.buffered)); d > n.stats.bufferHigh {
		n.stats.bufferHigh = d
	}
}

// pumpLocked applies every ready decision and then serves any fast-path
// reads whose index the apply cursor just reached (or whose configuration
// the pumped decisions just wedged).
func (n *Node) pumpLocked() {
	n.pumpDecisionsLocked()
	n.serveReadyReadsLocked()
}

// pumpDecisionsLocked applies every ready decision of the current
// configuration, following wedges across engines until no more progress is
// possible.
func (n *Node) pumpDecisionsLocked() {
	for {
		if !n.initialized {
			return
		}
		run, ok := n.engines[n.curID]
		if !ok || len(run.buffered) == 0 {
			return
		}
		dec := run.buffered[0]
		if dec.Slot != n.appliedSlot+1 && dec.Slot > n.appliedSlot && run.droppedBelow > n.appliedSlot {
			// Gap left by the bounded buffer's drops: parked until
			// checkpoint catch-up jumps the cursor (see routeDecisionLocked).
			return
		}
		run.buffered = run.buffered[1:]
		if dec.Slot != n.appliedSlot+1 {
			if dec.Slot <= n.appliedSlot {
				continue // stale redelivery; already executed
			}
			// The engine contract is gap-free in-order delivery, so
			// this is unreachable; count it rather than crash.
			n.stats.violations++
			continue
		}
		n.applyOneLocked(dec.Slot, dec.Cmd)
	}
}

// applyOneLocked executes one decided slot of the current configuration.
// It may perform a wedge transition.
func (n *Node) applyOneLocked(slot types.Slot, cmd types.Command) {
	n.appliedSlot = slot
	n.applyCommandLocked(slot, cmd)
}

// applyCommandLocked executes one command (possibly a batch member) at slot.
func (n *Node) applyCommandLocked(slot types.Slot, cmd types.Command) {
	if cmd.Kind == types.CmdReconfig {
		n.applyReconfigLocked(slot, cmd)
		return
	}
	if cmd.Kind == types.CmdBatch {
		subs, err := types.DecodeBatch(cmd.Data)
		if err != nil {
			n.stats.violations++ // a leader produced a corrupt batch
			return
		}
		for _, sub := range subs {
			before := n.curID
			n.applyCommandLocked(slot, sub)
			if n.curID != before {
				// A reconfiguration inside the batch wedged this
				// configuration; the remaining batch members are
				// post-wedge and follow the re-submission rule.
				return
			}
		}
		return
	}
	reply, dup := n.machine.ApplyCommand(cmd)
	n.stats.applied++
	if dup {
		n.stats.duplicates++
	}
	if cmd.Client == "" {
		return
	}
	key := pendKey{client: cmd.Client, seq: cmd.Seq}
	if p, ok := n.pending[key]; ok {
		delete(n.pending, key)
		n.respondApplied(p, reply)
	}
}

// respondApplied answers every RPC waiter attached to a pending command.
func (n *Node) respondApplied(p *pendingCmd, reply []byte) {
	if len(p.responders) == 0 {
		return
	}
	resp := encodeSubmitReply(submitReply{
		Status: SubmitApplied,
		Reply:  reply,
		Config: n.configs[n.curID],
		Leader: n.leaderHintLocked(),
	})
	for _, respond := range p.responders {
		respond(resp)
	}
}

func (n *Node) leaderHintLocked() types.NodeID {
	if run, ok := n.engines[n.curID]; ok {
		hint, _ := run.eng.Leader()
		return hint
	}
	return ""
}

// applyReconfigLocked performs the wedge transition: configuration curID is
// wedged at slot, its state becomes the successor's initial state, and the
// successor engine takes over.
func (n *Node) applyReconfigLocked(slot types.Slot, cmd types.Command) {
	newCfg, err := types.DecodeConfig(cmd.Data)
	if err != nil || newCfg.ID != n.curID+1 {
		// Deterministically invalid (stale ID from a racing proposer or
		// corrupt): every replica treats it as a no-op.
		return
	}
	rec := ChainRecord{
		From:        n.curID,
		FromMembers: n.configs[n.curID].Members,
		WedgeSlot:   slot,
		To:          newCfg,
	}
	if prev, ok := n.chain[rec.From]; ok {
		if !prev.Equal(rec) {
			// Two different successors for one configuration would be
			// a chain fork — agreement inside the engine forbids it.
			n.stats.violations++
			return
		}
	} else {
		n.chain[rec.From] = rec
		if err := n.store.Set(chainKey(rec.From), encodeChainRecord(rec)); err != nil {
			n.stats.violations++
		}
	}
	n.configs[newCfg.ID] = newCfg
	n.stats.wedges++

	// The machine state at the wedge IS the successor's initial state.
	// Capture it as a copy-on-write fork (O(shards) under n.mu) and let a
	// background goroutine serialize, serve and persist it in chunks; the
	// monolithic ablation serializes synchronously here instead.
	n.captureSnapshotLocked(newCfg.ID)

	// Let the old engine linger for laggards, then stop it.
	if run, ok := n.engines[rec.From]; ok {
		n.scheduleEngineStop(run)
	}

	n.curID = newCfg.ID
	n.appliedSlot = 0

	// Tell the successor's members (the new ones cannot discover the
	// configuration through their own logs).
	n.announceLocked(rec)

	if newCfg.IsMember(n.self) {
		// We hold the state already: activate immediately; the engine
		// starts speculatively regardless of the snapshot (it is local).
		if err := n.ensureEngineLocked(newCfg.ID); err != nil {
			n.stats.violations++
		}
		// initialized stays true: machine == initial state of newCfg.
		n.resubmitPendingLocked(true)
	} else {
		// We are retired. Redirect every waiting client to the new
		// configuration and stop executing.
		n.initialized = false
		n.redirectAllPendingLocked()
	}
	n.notifyTransitionLocked()
}

// announceLocked broadcasts the chain record to the successor's members.
// Best-effort: the housekeeping loop and discovery RPCs cover losses.
func (n *Node) announceLocked(rec ChainRecord) {
	body := encodeAnnounce(announceMsg{Record: rec})
	for _, m := range rec.To.Members {
		if m == n.self {
			continue
		}
		n.sendAnnounce(m, body)
	}
}

// resubmitPendingLocked re-proposes pending commands into the current
// configuration's engine. Session dedup makes duplicates harmless. Each
// command backs off exponentially (with jitter) across housekeeping ticks so
// a stalled configuration is not hammered every tick; force resets the
// backoff and re-proposes everything immediately — used on configuration
// transitions, where the fresh engine deserves an instant try.
func (n *Node) resubmitPendingLocked(force bool) {
	run, ok := n.engines[n.curID]
	if !ok {
		return
	}
	for key, p := range n.pending {
		if force {
			p.backoff = 0
		} else if n.tick < p.nextRetry {
			continue
		}
		p.tries++
		if p.tries > n.opts.PendingMaxRetries {
			delete(n.pending, key)
			continue
		}
		n.stats.resubmits++
		_ = run.eng.Propose(p.cmd) // best effort; a later tick retries
		step := int64(1) << p.backoff
		if p.backoff < 4 { // cap at 16 ticks between re-proposals
			p.backoff++
		}
		p.nextRetry = n.tick + step + n.rng.Int63n(step+1)
	}
}

// redirectAllPendingLocked answers every waiting client with a redirect to
// the current configuration.
func (n *Node) redirectAllPendingLocked() {
	resp := encodeSubmitReply(submitReply{
		Status: SubmitRedirect,
		Config: n.configs[n.curID],
		Leader: "",
	})
	for key, p := range n.pending {
		for _, respond := range p.responders {
			respond(resp)
		}
		delete(n.pending, key)
	}
}
