package reconfig

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/types"
)

// State transfer, chunked and resumable.
//
// Serving side: at the wedge, the node forks a copy-on-write snapshot under
// n.mu (O(shards), not O(state)) and registers an empty serving entry; a
// background goroutine serializes the fork into chunks, computes the CRC
// manifest, publishes it in the in-memory registry (so joiners can fetch
// before persistence finishes), streams the chunks into the store chunk by
// chunk, and finally drops the in-memory copy — after which requests are
// served straight from the store.
//
// Fetching side: a joiner pulls the manifest from any source, persists it,
// then pulls missing chunks concurrently from rotating sources, verifying
// each against the manifest CRC and persisting it immediately. A chunk that
// fails its CRC is discarded (and the next source tried) without poisoning
// anything already installed. After a crash, or when the serving node dies
// mid-transfer, the fetch resumes from whatever chunks the store already
// holds. Rounds that make no progress back off exponentially with jitter.

// fetchWorkers is the number of concurrent chunk-range downloads per fetch
// round.
const fetchWorkers = 4

// rangeBudget bounds the payload of one chunk-range reply (and of the chunks
// piggybacked on a manifest reply). Round trips, not bytes, dominate transfer
// latency on a loaded control plane, so replies are packed up to this budget;
// a single chunk larger than the budget is still returned alone.
const rangeBudget = 256 << 10

// staleManifestRounds is how many consecutive fruitless fetch rounds a joiner
// tolerates before discarding its manifest and re-pulling it — the recovery
// for sources that replaced the snapshot with a newer checkpoint mid-fetch.
const staleManifestRounds = 3

// publishSnapshot pacing. Every member of the wedged configuration publishes
// concurrently, so an unpaced serialize burns members × state bytes of CPU at
// the exact moment the successor engine is electing and re-proposing — at 8MB
// that burst alone tripled the client-visible commit gap. publishSnapshot
// therefore pauses after each publishPaceBytes of serialized chunks, breaking
// the burst into slices small enough not to starve the commit path. Pacing is
// per byte, not per chunk: a small snapshot (32 near-empty shard chunks) must
// become ready in microseconds, and time.Sleep granularity can be tens of
// milliseconds on a loaded host, so per-chunk sleeps would delay readiness by
// chunks × granularity. The only cost is that the manifest becomes ready
// later, which delays the joiner (off the commit path, covered by speculative
// start), not the surviving members.
const publishPaceBytes = 1 << 20

// publishPause is the pause between publishPaceBytes slices. Nominal 2ms; the
// effective floor is the scheduler's sleep granularity.
const publishPause = 2 * time.Millisecond

// snapServing is the in-memory half of the snapshot registry: it exists from
// the wedge until the chunks are persisted, bridging the window where
// joiners ask for a snapshot the store does not hold yet.
type snapServing struct {
	ready    bool // manifest+chunks are populated
	manifest storage.ChunkManifest
	chunks   [][]byte
}

func snapPrefix(id types.ConfigID) string { return fmt.Sprintf("rc/snap/%020d", uint64(id)) }

// captureSnapshotLocked captures the machine state that becomes config id's
// initial state and arranges for it to be served and persisted. Caller holds
// n.mu; only the capture itself (COW fork, or the full serialize in the
// monolithic ablation) runs under the lock, and its duration is recorded in
// WedgeCaptureNS.
func (n *Node) captureSnapshotLocked(id types.ConfigID) {
	start := time.Now()
	if n.opts.MonolithicTransfer {
		// Ablation: the pre-chunking behavior — serialize and persist the
		// whole state synchronously under the node mutex.
		snap := n.machine.Snapshot()
		m := storage.ChunkManifest{
			Format: statemachine.SnapshotFormatMono,
			CRCs:   []uint32{storage.ChunkCRC(snap)},
		}
		if err := storage.WriteChunked(n.store, snapPrefix(id), m, func(int) []byte { return snap }); err != nil {
			n.stats.violations++
		}
		n.stats.wedgeCaptureNS = time.Since(start).Nanoseconds()
		return
	}
	src := n.machine.ForkSnapshot()
	n.stats.wedgeCaptureNS = time.Since(start).Nanoseconds()
	n.serving[id] = &snapServing{}
	n.wg.Add(1)
	go n.publishSnapshot(id, src)
}

// publishSnapshot serializes a forked snapshot off the critical path: chunks
// and manifest go into the in-memory registry first (serveable immediately),
// then into the store, then the in-memory copy is dropped.
func (n *Node) publishSnapshot(id types.ConfigID, src statemachine.SnapshotSource) {
	defer n.wg.Done()
	num := src.NumChunks()
	chunks := make([][]byte, num)
	m := storage.ChunkManifest{Format: src.Format(), CRCs: make([]uint32, num)}
	sincePause := 0
	for i := 0; i < num; i++ {
		chunks[i] = src.Chunk(i)
		m.CRCs[i] = storage.ChunkCRC(chunks[i])
		sincePause += len(chunks[i])
		if sincePause >= publishPaceBytes {
			sincePause = 0
			time.Sleep(publishPause)
		}
	}
	n.mu.Lock()
	if s, ok := n.serving[id]; ok {
		s.manifest = m
		s.chunks = chunks
		s.ready = true
	}
	n.mu.Unlock()
	err := storage.WriteChunked(n.store, snapPrefix(id), m, func(i int) []byte { return chunks[i] })
	n.mu.Lock()
	if err != nil {
		n.stats.violations++
	} else {
		delete(n.serving, id) // persisted; serve from the store from now on
	}
	n.mu.Unlock()
}

// captureToStore persists a snapshot fork directly (bootstrap path: no
// concurrent mutators, no serving window to bridge).
func captureToStore(store storage.Store, prefix string, src statemachine.SnapshotSource) error {
	num := src.NumChunks()
	m := storage.ChunkManifest{Format: src.Format(), CRCs: make([]uint32, num)}
	for i := 0; i < num; i++ {
		m.CRCs[i] = storage.ChunkCRC(src.Chunk(i))
	}
	return storage.WriteChunked(store, prefix, m, func(i int) []byte { return src.Chunk(i) })
}

// snapManifest answers a manifest request from the registry or the store.
func (n *Node) snapManifest(id types.ConfigID) (storage.ChunkManifest, bool) {
	n.mu.Lock()
	if s, ok := n.serving[id]; ok && s.ready {
		m := s.manifest
		n.stats.snapshotsServed++
		n.mu.Unlock()
		return m, true
	}
	n.mu.Unlock()
	m, ok, err := storage.ReadChunkManifest(n.store, snapPrefix(id))
	if err != nil || !ok {
		return storage.ChunkManifest{}, false
	}
	n.mu.Lock()
	n.stats.snapshotsServed++
	n.mu.Unlock()
	return m, true
}

// snapChunkOne answers one chunk request from the registry or the store. A
// partially fetched joiner serves the chunks it already verified, so a
// snapshot can be pulled from any mix of current and previous members.
func (n *Node) snapChunkOne(id types.ConfigID, idx int) ([]byte, bool) {
	if idx < 0 {
		return nil, false
	}
	n.mu.Lock()
	var data []byte
	found := false
	if s, ok := n.serving[id]; ok && s.ready && idx < len(s.chunks) {
		data, found = s.chunks[idx], true
	}
	hook := n.testChunkHook
	n.mu.Unlock()
	if !found {
		raw, ok, err := n.store.Get(storage.ChunkKey(snapPrefix(id), idx))
		if err != nil || !ok {
			return nil, false
		}
		data = raw
	}
	if hook != nil {
		data = hook(id, idx, data)
	}
	n.mu.Lock()
	n.stats.chunksServed++
	n.mu.Unlock()
	return data, true
}

// snapChunkRange gathers up to count consecutive chunks starting at first,
// stopping at the first chunk this node lacks or when the reply would exceed
// rangeBudget (the first chunk is always included, however large).
func (n *Node) snapChunkRange(id types.ConfigID, first, count int) [][]byte {
	if first < 0 || count <= 0 {
		return nil
	}
	var out [][]byte
	total := 0
	for i := first; i < first+count; i++ {
		data, ok := n.snapChunkOne(id, i)
		if !ok {
			break
		}
		if len(out) > 0 && total+len(data) > rangeBudget {
			break
		}
		out = append(out, data)
		total += len(data)
	}
	return out
}

// buildMachine constructs a fresh sessioned machine from a complete chunk
// set (any format).
func (n *Node) buildMachine(m storage.ChunkManifest, chunks [][]byte) (*statemachine.Sessioned, error) {
	fresh := statemachine.NewSessioned(n.factory())
	fresh.SetSessionLimit(n.opts.SessionLimit)
	if m.Format == statemachine.SnapshotFormatMono {
		if len(chunks) != 1 {
			return nil, fmt.Errorf("%w: monolithic snapshot with %d chunks", types.ErrCodec, len(chunks))
		}
		if err := fresh.Restore(chunks[0]); err != nil {
			return nil, err
		}
		return fresh, nil
	}
	if m.Format != fresh.ChunkFormat() {
		return nil, fmt.Errorf("%w: snapshot format %d, machine expects %d", types.ErrCodec, m.Format, fresh.ChunkFormat())
	}
	for i, c := range chunks {
		if err := fresh.RestoreChunk(i, c); err != nil {
			return nil, err
		}
	}
	if err := fresh.FinishRestore(len(chunks)); err != nil {
		return nil, err
	}
	return fresh, nil
}

// fetchAborted reports whether the fetch of id's snapshot is moot.
func (n *Node) fetchAborted(id types.ConfigID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped || n.curID != id || n.initialized
}

// runFetch is the joiner's long-lived transfer goroutine: it owns n.fetching
// for its lifetime and keeps trying — resuming from persisted chunks, backing
// off with jitter on fruitless rounds — until the snapshot is installed or
// the node moves on.
func (n *Node) runFetch(id types.ConfigID) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		n.fetching = false
		n.mu.Unlock()
	}()

	prefix := snapPrefix(id)
	rng := rand.New(rand.NewSource(SeedFor(string(n.self)) ^ int64(id)))

	// Resume: adopt whatever a previous attempt (possibly before a crash)
	// already persisted. Corrupt or missing chunks come back nil.
	var (
		manifest storage.ChunkManifest
		chunks   [][]byte
		have     bool
	)
	if m, cs, _, err := storage.ReadChunked(n.store, prefix); err == nil && m.Chunks() > 0 {
		manifest, chunks, have = m, cs, true
	}

	abort := func() bool { return n.fetchAborted(id) }
	attempt := 0
	for {
		if abort() {
			return
		}
		n.mu.Lock()
		sources := n.fetchSourcesLocked(id)
		n.mu.Unlock()

		progress := false
		if !have {
			if m, lead, ok := n.fetchManifest(id, sources, rng); ok {
				manifest = m
				have = true
				progress = true
				if err := storage.WriteChunkManifest(n.store, prefix, m); err != nil {
					n.countViolation()
				}
				// Re-adopt persisted chunks that verify against this
				// manifest (resume after a crash, or after a manifest
				// refresh whose content mostly survived), then the chunks
				// piggybacked on the reply; for a small snapshot that is
				// the whole transfer in one round trip.
				if _, cs, _, err := storage.ReadChunked(n.store, prefix); err == nil && len(cs) == m.Chunks() {
					chunks = cs
				} else {
					chunks = make([][]byte, m.Chunks())
				}
				for i, data := range lead {
					if i < len(chunks) && chunks[i] == nil {
						n.acceptChunk(prefix, manifest, chunks, nil, i, data)
					}
				}
			}
		}
		if have {
			if n.fetchMissingChunks(id, prefix, manifest, chunks, sources, abort) {
				progress = true
			}
			missing := 0
			for _, c := range chunks {
				if c == nil {
					missing++
				}
			}
			if missing == 0 {
				n.installChunks(id, manifest, chunks)
				return
			}
		}

		if progress {
			attempt = 0
			continue
		}
		attempt++
		if have && attempt%staleManifestRounds == 0 {
			// Nothing useful for several rounds while holding a manifest:
			// the sources may have replaced the snapshot with a newer
			// checkpoint (their chunks no longer match our CRCs). Drop the
			// manifest and re-pull it; chunks already persisted that still
			// verify are re-adopted above.
			have = false
		}
		n.mu.Lock()
		n.stats.chunkRetries++
		n.mu.Unlock()
		delay := BackoffDelay(attempt, n.opts.RetryInterval, 4*n.opts.FetchTimeout, rng)
		select {
		case <-time.After(delay):
		case <-n.stopCh:
			return
		}
	}
}

// acceptChunk CRC-verifies one fetched chunk; on success it records it in
// chunks (under resMu when given) and persists it immediately — which is what
// makes the transfer resumable and the joiner itself a source. An empty
// prefix skips persistence: the initialized catch-up path (checkpoint.go)
// fetches in memory only, because writing chunks under the manifest the store
// still holds would corrupt the blob it describes. Returns whether the chunk
// was accepted.
func (n *Node) acceptChunk(prefix string, m storage.ChunkManifest, chunks [][]byte, resMu *sync.Mutex, idx int, data []byte) bool {
	if storage.ChunkCRC(data) != m.CRCs[idx] {
		// Corrupt on the wire or a poisoned source: reject this chunk
		// alone; nothing already verified is touched.
		n.mu.Lock()
		n.stats.chunkCRCRejected++
		n.mu.Unlock()
		return false
	}
	if resMu != nil {
		resMu.Lock()
	}
	chunks[idx] = data
	if resMu != nil {
		resMu.Unlock()
	}
	if prefix != "" {
		if err := n.store.Set(storage.ChunkKey(prefix, idx), data); err != nil {
			n.countViolation()
		}
	}
	n.mu.Lock()
	n.stats.chunksFetched++
	n.mu.Unlock()
	return true
}

// fetchManifest asks sources (in random order) for the snapshot manifest.
// The reply also piggybacks the snapshot's leading chunks (within
// rangeBudget), which the caller adopts after per-chunk CRC verification.
func (n *Node) fetchManifest(id types.ConfigID, sources []types.NodeID, rng *rand.Rand) (storage.ChunkManifest, [][]byte, bool) {
	order := rng.Perm(len(sources))
	for _, i := range order {
		ctx, cancel := context.WithTimeout(n.baseCtx, n.opts.FetchTimeout)
		resp, err := n.peer.Call(ctx, sources[i], encodeSnapMeta(snapMetaReq{Config: id}), 0)
		cancel()
		if err != nil {
			continue
		}
		mr, err := decodeSnapMetaReply(resp)
		if err != nil || !mr.Found {
			continue
		}
		return storage.ChunkManifest{Format: mr.Format, Base: mr.Base, CRCs: mr.CRCs}, mr.Chunks, true
	}
	return storage.ChunkManifest{}, nil, false
}

// chunkSpan is a contiguous run of missing chunk indexes assigned to one
// fetch worker.
type chunkSpan struct {
	first, count int
}

// missingSpans groups the nil entries of chunks into contiguous spans, each
// capped so the work splits across at least fetchWorkers workers.
func missingSpans(chunks [][]byte) []chunkSpan {
	var missing []int
	for i, c := range chunks {
		if c == nil {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	spanCap := (len(missing) + fetchWorkers - 1) / fetchWorkers
	var spans []chunkSpan
	cur := chunkSpan{first: missing[0], count: 1}
	for _, idx := range missing[1:] {
		if idx == cur.first+cur.count && cur.count < spanCap {
			cur.count++
			continue
		}
		spans = append(spans, cur)
		cur = chunkSpan{first: idx, count: 1}
	}
	return append(spans, cur)
}

// fetchMissingChunks pulls every nil entry of chunks concurrently, one
// contiguous span per request. Each worker starts at a different source and
// rotates through the rest when a source yields nothing useful, so the load
// spreads and a dead or corrupt source only costs the spans it was tried
// for. Returns whether any chunk was fetched.
func (n *Node) fetchMissingChunks(id types.ConfigID, prefix string, m storage.ChunkManifest, chunks [][]byte, sources []types.NodeID, abort func() bool) bool {
	if len(sources) == 0 {
		return false
	}
	spans := missingSpans(chunks)
	if len(spans) == 0 {
		return false
	}
	workers := fetchWorkers
	if workers > len(spans) {
		workers = len(spans)
	}
	spanCh := make(chan chunkSpan)
	var wg sync.WaitGroup
	var resMu sync.Mutex
	progress := false
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sp := range spanCh {
				if n.fetchSpan(id, prefix, m, chunks, &resMu, sp, sources, w, abort) {
					resMu.Lock()
					progress = true
					resMu.Unlock()
				}
			}
		}(w)
	}
	for _, sp := range spans {
		if abort() {
			break
		}
		spanCh <- sp
	}
	close(spanCh)
	wg.Wait()
	return progress
}

// fetchSpan pulls one contiguous span of chunks, advancing through it in
// range requests and rotating sources whenever one yields nothing usable. A
// CRC-rejected chunk in the middle of a range leaves a hole that a later
// round retries (against a rotated source) without re-fetching its verified
// neighbors.
func (n *Node) fetchSpan(id types.ConfigID, prefix string, m storage.ChunkManifest, chunks [][]byte, resMu *sync.Mutex, sp chunkSpan, sources []types.NodeID, w int, abort func() bool) bool {
	progress := false
	idx := sp.first
	end := sp.first + sp.count
	for idx < end {
		if abort() {
			return progress
		}
		advanced := false
		for s := 0; s < len(sources); s++ {
			src := sources[(w+s)%len(sources)]
			got := n.fetchChunkRange(id, idx, end-idx, src)
			if len(got) == 0 {
				continue
			}
			accepted := 0
			for i, data := range got {
				if idx+i >= end {
					break
				}
				if n.acceptChunk(prefix, m, chunks, resMu, idx+i, data) {
					accepted++
				}
			}
			if accepted > 0 {
				// Move past the whole returned range; rejected chunks in it
				// stay nil and are retried in a later round.
				idx += len(got)
				progress = true
				advanced = true
				break
			}
		}
		if !advanced {
			return progress // no source helped here; back off and retry later
		}
	}
	return progress
}

func (n *Node) fetchChunkRange(id types.ConfigID, first, count int, src types.NodeID) [][]byte {
	ctx, cancel := context.WithTimeout(n.baseCtx, n.opts.FetchTimeout)
	defer cancel()
	resp, err := n.peer.Call(ctx, src, encodeSnapChunk(snapChunkReq{Config: id, First: first, Count: count}), 0)
	if err != nil {
		return nil
	}
	cr, err := decodeSnapChunkReply(resp)
	if err != nil || len(cr.Chunks) > count {
		return nil
	}
	return cr.Chunks
}

// installChunks adopts a complete, verified chunk set as the initial state of
// config id. The O(state) machine build happens outside n.mu; the swap is
// re-validated under the lock.
func (n *Node) installChunks(id types.ConfigID, m storage.ChunkManifest, chunks [][]byte) {
	fresh, err := n.buildMachine(m, chunks)
	n.mu.Lock()
	defer n.mu.Unlock()
	if err != nil {
		n.stats.violations++
		return
	}
	if n.curID != id || n.initialized || n.stopped {
		return
	}
	n.machine = fresh
	n.initialized = true
	// The snapshot folds in every slot up to its base index: start applying
	// at Base, so the stale-skip in the pump (dec.Slot <= appliedSlot)
	// discards redelivered decisions the snapshot already covers and no
	// client reply fires for a slot before the apply point passes Base.
	// Wedge-captured snapshots have Base 0 — the successor log is fresh.
	n.appliedSlot = m.Base
	n.stats.snapshotsFetched++
	if run, ok := n.engines[id]; ok {
		// Decisions the speculative engine decided during the transfer are
		// parked in run.buffered; the pump nudge below drains them now.
		n.stats.specParked += int64(len(run.buffered))
	}
	if err := n.ensureEngineLocked(id); err != nil {
		n.stats.violations++
	}
	n.resubmitPendingLocked(true)
	n.notifyTransitionLocked()
	// Nudge the apply loop: decisions buffered while uninitialized are now
	// ready. Only the apply loop runs the mutex-dropping pump, so this
	// fetch goroutine must not pump inline.
	select {
	case n.pumpCh <- struct{}{}:
	default:
	}
}

func (n *Node) countViolation() {
	n.mu.Lock()
	n.stats.violations++
	n.mu.Unlock()
}
