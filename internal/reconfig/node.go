package reconfig

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/paxos"
	"repro/internal/rpc"
	"repro/internal/smr"
	"repro/internal/statemachine"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options tunes the composition layer. The zero value is normalized to the
// defaults below.
type Options struct {
	// Paxos configures every static engine this node runs.
	Paxos paxos.Options
	// RetryInterval is the period of the node's housekeeping loop:
	// re-proposing pending commands, retrying snapshot fetches, checking
	// for stale configurations. Default 20ms.
	RetryInterval time.Duration
	// LingerOld is how long a wedged engine keeps running after its
	// successor activates, so lagging members can still catch up and
	// learn the wedge from it. Default 1s.
	LingerOld time.Duration
	// FetchTimeout bounds one snapshot-fetch RPC attempt. Default 250ms.
	FetchTimeout time.Duration
	// StaleJumpTicks is how many housekeeping ticks a node waits for its
	// own engine to deliver an already-announced wedge before jumping
	// directly to the successor via state transfer. Default 25.
	StaleJumpTicks int
	// GossipTicks is how many housekeeping ticks pass between chain
	// anti-entropy exchanges with a random known peer, the repair path
	// for lost announces. Default 25.
	GossipTicks int
	// PendingMaxRetries drops a pending command after this many
	// re-proposals (an abandoned client). Default 2000.
	PendingMaxRetries int
	// SpeculativeStart controls whether a successor engine boots while the
	// snapshot is still in flight (the paper's §1 speculative start: the
	// joiner votes, accepts and decides c+1 slots during transfer; decided
	// entries park in the apply queue and drain after install, with client
	// replies gated until the apply point passes the snapshot's base
	// index). SpecDefault normalizes to SpecOn; SpecOff delays the engine
	// until the initial state is installed — the wait-for-transfer
	// ablation for experiments F2/F5/R2.
	SpeculativeStart SpecMode
	// Reads selects how read-only client ops are served. Default
	// ReadModeIndex (leader read-index fast path with log fallback).
	Reads ReadMode
	// LeaseTicks overrides the engine lease term when Reads is
	// ReadModeLease; 0 keeps the engine default. See paxos.Options.
	LeaseTicks int
	// DisableReadFence turns off the wedge fencing of fast-path reads.
	// UNSAFE — a wedged configuration's leader will keep serving reads
	// from pre-wedge state. Exists only so tests and the ablation can
	// demonstrate that the fence is load-bearing.
	DisableReadFence bool
	// MonolithicTransfer restores the pre-chunking state transfer for
	// comparison experiments: the wedge serializes and persists the whole
	// machine synchronously under the node mutex, and joiners pull the
	// snapshot as a single chunk. The paper's design keeps it false.
	MonolithicTransfer bool
	// SerialApply restores the pre-pipelining apply stage: every decision
	// executes one command at a time under the node mutex, coupled to
	// proposals, reads and housekeeping. Ablation switch for the write-path
	// experiments (W1); the design keeps it false, which decouples apply
	// from the mutex and fans decided batches out to per-shard workers on
	// machines that support it.
	SerialApply bool
	// ApplyQueue bounds the decision queue between the engines and the
	// apply stage. When the apply stage cannot drain it, engine consumers
	// block (decisions are never dropped) and the node counts an apply
	// stall — visible in NodeStats and via a rate-limited warning. Default
	// 8192.
	ApplyQueue int
	// SubmitQueue bounds how many distinct client commands may be pending
	// (admitted but not yet applied) on this node at once — the admission
	// control bound. A new command that would exceed it is shed with an
	// explicit SubmitBusy{RetryAfter} reply instead of silently joining an
	// unbounded queue. Retries of already-admitted commands only attach a
	// waiter and always pass, and nothing but client submissions is ever
	// shed — reconfigurations, chain/announce exchanges and state transfer
	// use their own op codes and bypass the bound entirely (prioritized
	// admission). Default 4096.
	SubmitQueue int
	// NoAdmission disables the submit-queue bound: every command is
	// admitted and overload surfaces only as growing queues and silent
	// inbound drops — the pre-admission-control behavior. Ablation switch
	// for experiment C1.
	NoAdmission bool
	// SessionLimit bounds the machine's client-session dedup table: beyond
	// it, the least-recently-writing session is evicted. An evicted
	// client's retry of an old command is rejected (stale, nil reply)
	// rather than double-applied; a genuinely new session always starts at
	// seq 1 and is admitted. 0 (default) keeps the table unbounded.
	SessionLimit int
	// CheckpointInterval is how many applied slots pass between
	// within-configuration checkpoints: once the applied cursor is this far
	// past the newest durable checkpoint base, the housekeeping tick forks
	// and publishes a new one (see checkpoint.go). Bounds retained engine
	// log state to roughly interval + margin slots. Default 4096.
	CheckpointInterval int
	// CheckpointMargin is how many recent slots stay in the engine log
	// below the quorum-durable checkpoint base, so a briefly lagging member
	// catches up through ordinary slot redelivery instead of a state
	// transfer. Default 512.
	CheckpointMargin int
	// CatchupGapSlots is the decision gap (engine contiguous decided
	// frontier minus applied cursor, one O(1) Progress read) beyond which a
	// member fetches the newest checkpoint instead of replaying every slot.
	// Default 8192.
	CatchupGapSlots int
	// DecisionBuffer bounds the per-engine parked-decision buffer (decisions
	// decided before this node's state is ready to apply them). Past the
	// bound the oldest parked decision is dropped and the gap is repaired by
	// checkpoint catch-up rather than unbounded memory growth. Default
	// 16384.
	DecisionBuffer int
	// NoCheckpoints disables the within-configuration checkpoint producer,
	// log truncation and checkpoint catch-up: a lagging member replays the
	// full log slot by slot — the pre-checkpoint behavior. Ablation switch
	// for experiment K1.
	NoCheckpoints bool
}

// SpecMode selects the successor engine start policy. The zero value is
// normalized to SpecOn so speculation stays the default through a zero
// Options.
type SpecMode uint8

const (
	// SpecDefault is the zero value; withDefaults turns it into SpecOn.
	SpecDefault SpecMode = 0
	// SpecOn starts a successor engine the moment this node learns it is a
	// member of the new configuration, before its snapshot is installed.
	SpecOn SpecMode = 1
	// SpecOff waits for the snapshot install before starting the engine —
	// the wait-for-transfer ablation.
	SpecOff SpecMode = 2
)

// ReadMode selects the serving strategy for read-only ops. Values start at 1
// so the zero value can be normalized to the default.
type ReadMode uint8

const (
	// ReadModeLog proposes every read through the log like a write — the
	// baseline: always safe, always slow.
	ReadModeLog ReadMode = 1
	// ReadModeIndex serves reads via the leader read-index protocol: one
	// quorum heartbeat round (shared by all reads awaiting it) confirms
	// leadership, then the read is answered from local state at or past
	// the confirmed index. No log append, no disk write.
	ReadModeIndex ReadMode = 2
	// ReadModeLease additionally lets the leader answer reads with no
	// network round while it holds a quorum-granted, time-bounded lease.
	// Relies on bounded clock-rate skew; off by default.
	ReadModeLease ReadMode = 3
)

func (o Options) withDefaults() Options {
	if o.RetryInterval <= 0 {
		o.RetryInterval = 20 * time.Millisecond
	}
	if o.LingerOld <= 0 {
		o.LingerOld = time.Second
	}
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 250 * time.Millisecond
	}
	if o.StaleJumpTicks <= 0 {
		o.StaleJumpTicks = 25
	}
	if o.GossipTicks <= 0 {
		o.GossipTicks = 25
	}
	if o.PendingMaxRetries <= 0 {
		o.PendingMaxRetries = 2000
	}
	if o.ApplyQueue <= 0 {
		o.ApplyQueue = 8192
	}
	if o.SubmitQueue <= 0 {
		o.SubmitQueue = 4096
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 4096
	}
	if o.CheckpointMargin <= 0 {
		o.CheckpointMargin = 512
	}
	if o.CatchupGapSlots <= 0 {
		o.CatchupGapSlots = 8192
	}
	if o.DecisionBuffer <= 0 {
		o.DecisionBuffer = 16384
	}
	if o.Reads == 0 {
		o.Reads = ReadModeIndex
	}
	if o.SpeculativeStart == SpecDefault {
		o.SpeculativeStart = SpecOn
	}
	if o.Reads == ReadModeLease {
		// Every engine this node runs grants leases; the node's wedge
		// fencing is what keeps them safe across reconfigurations.
		o.Paxos.EnableLeaseReads = true
		if o.LeaseTicks > 0 {
			o.Paxos.LeaseTicks = o.LeaseTicks
		}
	}
	return o
}

// NodeConfig wires a Node to its substrate.
type NodeConfig struct {
	Self     types.NodeID
	Endpoint *transport.Endpoint
	Store    storage.Store
	Factory  statemachine.Factory
	Opts     Options
}

// Errors returned by Node operations.
var (
	// ErrNotServing means this node is not an initialized member of the
	// current configuration; consult another node.
	ErrNotServing = errors.New("reconfig: node is not serving the current configuration")
	// ErrConflict means a concurrent reconfiguration won; the caller's
	// proposal was not adopted.
	ErrConflict = errors.New("reconfig: a concurrent reconfiguration was chosen instead")
	// ErrBusy means the node shed the command under admission control
	// (submit queue full); back off and retry, here or at another member.
	ErrBusy = errors.New("reconfig: submit queue full")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("reconfig: node stopped")
	// ErrNotBootstrapped means Start found no initial configuration.
	ErrNotBootstrapped = errors.New("reconfig: store holds no initial configuration (call Bootstrap)")
)

type pendKey struct {
	client types.NodeID
	seq    uint64
}

type pendingCmd struct {
	cmd        types.Command
	responders []func(resp []byte)
	tries      int
	// Exponential re-proposal backoff: skip housekeeping re-proposals
	// until tick nextRetry; backoff is the current exponent. Reset on
	// configuration transitions so a fresh engine is tried immediately.
	nextRetry int64
	backoff   uint8
}

type engineRun struct {
	id       types.ConfigID
	cfg      types.Config
	eng      *paxos.Replica
	buffered []smr.Decision // decisions held until this config activates
	// droppedBelow is the highest parked decision slot the bounded buffer
	// dropped (Options.DecisionBuffer): slots at or below it can no longer
	// come from this buffer, so a cursor gap under the marker means "wait
	// for checkpoint catch-up", not an engine-contract violation.
	droppedBelow types.Slot
	done         chan struct{} // consumer goroutine exit
}

type taggedDecision struct {
	id  types.ConfigID
	dec smr.Decision
}

// NodeStats is a snapshot of the node's counters.
type NodeStats struct {
	Applied              int64 // commands applied to the machine (incl. dups)
	Duplicates           int64 // commands recognized as duplicates
	Wedges               int64 // reconfigurations executed through own log
	StaleJumps           int64 // transitions adopted via announce + transfer
	SnapshotsServed      int64 // snapshot manifests served to joiners
	SnapshotsFetched     int64 // snapshots fully fetched and installed
	ChunksServed         int64 // snapshot chunks served to joiners
	ChunksFetched        int64 // snapshot chunks fetched and CRC-verified
	ChunkRetries         int64 // fruitless fetch rounds (waited out with backoff)
	ChunkCRCRejected     int64 // fetched chunks discarded on CRC mismatch
	WedgeCaptureNS       int64 // time n.mu was held capturing state at the last wedge
	Resubmits            int64 // pending command re-proposals
	InvariantViolations  int64
	FastReads            int64 // reads served via the fast path (no log append)
	ReadFallbacks        int64 // fast-path reads that fell back to the log
	ReadFenced           int64 // fast-path reads refused by wedge fencing
	DroppedInbound       int64 // engine inbox overflows, summed over engines
	ApplyQueueDepth      int64 // decisions queued for the apply stage right now
	ApplyQueueHighWater  int64 // max observed apply queue depth
	ApplyStalls          int64 // engine consumers blocked on a full apply queue
	GroupCommits         int64 // engine bursts ending in a group-commit Sync, summed
	SpeculativeDecides   int64 // decisions learned for a configuration before its snapshot installed
	SpeculativeParked    int64 // decisions already parked for the new config when its snapshot installed
	ShedSubmits          int64 // client commands shed with SubmitBusy (admission control)
	SubmitQueueDepth     int64 // distinct client commands pending right now
	SubmitQueueHigh      int64 // max observed pending-command count
	CheckpointsPublished int64 // within-configuration checkpoints made durable
	CheckpointBase       int64 // newest durable checkpoint base of the current config
	TruncatedSlots       int64 // engine log slots released below checkpoint floors, summed
	RetainedSlots        int64 // decided slots currently held by the engines, summed
	CatchupFetches       int64 // checkpoints fetched and installed to close a decision gap
	DecisionBufferHigh   int64 // max observed parked-decision buffer length, any engine
	DecisionBufferDrops  int64 // parked decisions dropped by the bounded buffer
}

// Node is one process's reconfigurable-SMR runtime: it hosts the static
// engines of the configurations this node belongs to, applies the global
// command sequence to the local state machine, executes reconfigurations and
// serves the control plane (client submits, discovery, state transfer).
type Node struct {
	self    types.NodeID
	ep      *transport.Endpoint
	store   storage.Store
	factory statemachine.Factory
	opts    Options
	peer    *rpc.Peer

	mu sync.Mutex
	// execMu guards the machine's *content* during command execution. The
	// apply stage takes it exclusively — without mu — while it executes a
	// decided segment, so proposals and housekeeping proceed under mu
	// meanwhile; paths that read machine state under mu (submit dedup,
	// fast-path reads) additionally take it shared so they never observe a
	// half-applied batch. Lock order: mu before execMu; the apply stage
	// never acquires mu while holding execMu.
	execMu      sync.RWMutex
	machine     *statemachine.Sessioned
	initConfig  types.Config
	configs     map[types.ConfigID]types.Config
	chain       map[types.ConfigID]ChainRecord
	curID       types.ConfigID
	initialized bool // machine state is valid for curID; applying allowed
	appliedSlot types.Slot
	// epoch counts configuration transitions and snapshot installs. The
	// apply stage records it before releasing mu to execute a segment and
	// re-checks it before committing the results: a changed epoch means the
	// machine it mutated was abandoned (replaced by a snapshot install or a
	// configuration jump), so the results are discarded — re-submission
	// plus session dedup re-derives them.
	epoch       int64
	engines     map[types.ConfigID]*engineRun
	pending     map[pendKey]*pendingCmd
	readWaiters []*readWaiter   // fast-path reads awaiting their index
	cfgWaiters  []chan struct{} // signaled (closed) on every transition
	fetching    bool
	serving     map[types.ConfigID]*snapServing // snapshots being published
	// firstDecide records when this node learned its first decision of each
	// configuration, speculative or not — the R2 shootout's
	// time-to-first-decide numerator. Recorded at the same point for both
	// SpecOn and SpecOff (decision routing), so the comparison is fair.
	firstDecide map[types.ConfigID]time.Time
	tick        int64      // housekeeping tick counter
	rng         *rand.Rand // jitter source, guarded by mu
	staleTicks  int
	gossipLeft  int
	gossipSeq   int
	stopped     bool

	// Within-configuration checkpoint state (checkpoint.go), guarded by mu.
	// ckptCfg names the configuration the bases below belong to; a
	// transition resets them (ckptTrackLocked).
	ckptCfg           types.ConfigID
	ckptSelfBase      types.Slot                  // newest locally durable checkpoint base
	ckptPeerBase      map[types.NodeID]types.Slot // newest base each peer announced/acked
	ckptPublishing    bool                        // a publishCheckpoint goroutine is running
	ckptFetching      bool                        // a runCheckpointCatchup goroutine is running
	ckptAnnounceLeft  int                         // ticks until the next periodic re-announce
	ckptNextFetchTick int64                       // cooldown after a fruitless catch-up probe

	// testChunkHook, when set by a test (same package), intercepts every
	// chunk this node serves: returning modified bytes simulates wire
	// corruption. Guarded by mu.
	testChunkHook func(id types.ConfigID, idx int, data []byte) []byte

	applyCh chan taggedDecision
	// pumpCh nudges the apply loop to re-run its pump without a new
	// decision arriving (e.g. after a snapshot install unblocks buffered
	// decisions). Capacity 1; sends are non-blocking.
	pumpCh     chan struct{}
	stopCh     chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc

	applyStalls    atomic.Int64
	applyHighWater atomic.Int64
	lastStallWarn  atomic.Int64
	lastShedWarn   atomic.Int64

	stats struct {
		applied, duplicates, wedges, staleJumps int64
		snapshotsServed, snapshotsFetched       int64
		chunksServed, chunksFetched             int64
		chunkRetries, chunkCRCRejected          int64
		wedgeCaptureNS                          int64
		resubmits, violations                   int64
		specDecides, specParked                 int64
		shedSubmits, submitHighWater            int64
		checkpointsPublished, catchupFetches    int64
		bufferHigh, bufferDrops                 int64
	}
	reads stats.ReadPathCounters
}

// NewNode constructs a Node. Call Bootstrap (first boot of an initial
// member) and then Start.
func NewNode(nc NodeConfig) (*Node, error) {
	if nc.Self == "" || nc.Endpoint == nil || nc.Store == nil || nc.Factory == nil {
		return nil, fmt.Errorf("reconfig: incomplete NodeConfig")
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := nc.Opts.withDefaults()
	n := &Node{
		self:        nc.Self,
		ep:          nc.Endpoint,
		store:       nc.Store,
		factory:     nc.Factory,
		opts:        opts,
		configs:     make(map[types.ConfigID]types.Config),
		chain:       make(map[types.ConfigID]ChainRecord),
		engines:     make(map[types.ConfigID]*engineRun),
		pending:     make(map[pendKey]*pendingCmd),
		serving:     make(map[types.ConfigID]*snapServing),
		firstDecide: make(map[types.ConfigID]time.Time),
		rng:         rand.New(rand.NewSource(SeedFor(string(nc.Self)))),
		applyCh:     make(chan taggedDecision, opts.ApplyQueue),
		pumpCh:      make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
		baseCtx:     ctx,
		baseCancel:  cancel,
	}
	return n, nil
}

// Bootstrap persists the initial configuration and the empty initial
// snapshot. Every member of the initial configuration must call it exactly
// once before its first Start; it is idempotent for the same configuration.
func (n *Node) Bootstrap(initial types.Config) error {
	if _, err := types.NewConfig(initial.ID, initial.Members); err != nil {
		return err
	}
	if initial.ID != 1 {
		return fmt.Errorf("%w: initial configuration must have ID 1, got %d", types.ErrBadConfig, initial.ID)
	}
	if raw, ok, err := n.store.Get("rc/init"); err != nil {
		return err
	} else if ok {
		prev, err := types.DecodeConfig(raw)
		if err != nil {
			return fmt.Errorf("existing init record: %w", err)
		}
		if !prev.Equal(initial) {
			return fmt.Errorf("%w: store already bootstrapped with %s", types.ErrBadConfig, prev)
		}
		return nil
	}
	if err := n.store.Set("rc/init", types.EncodeConfig(initial)); err != nil {
		return err
	}
	empty := statemachine.NewSessioned(n.factory())
	return captureToStore(n.store, snapPrefix(initial.ID), empty.ForkSnapshot())
}

func chainKey(id types.ConfigID) string {
	return fmt.Sprintf("rc/chain/%020d", uint64(id))
}

// Start recovers persistent state and launches the node's loops.
func (n *Node) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}

	// A node may start with an empty store: it is a spare, idle until an
	// announce makes it a member of some configuration.
	raw, ok, err := n.store.Get("rc/init")
	if err != nil {
		return err
	}
	if ok {
		init, err := types.DecodeConfig(raw)
		if err != nil {
			return fmt.Errorf("init record: %w", err)
		}
		n.initConfig = init
		n.configs[init.ID] = init
		n.curID = init.ID
	}

	// Recover the configuration chain. The newest known configuration is
	// the largest successor on the chain (the chain is a path).
	kvs, err := n.store.Scan("rc/chain/")
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		rec, err := decodeChainRecord(kv.Value)
		if err != nil {
			return fmt.Errorf("chain record %s: %w", kv.Key, err)
		}
		n.chain[rec.From] = rec
		n.configs[rec.To.ID] = rec.To
		if rec.To.ID > n.curID {
			n.curID = rec.To.ID
		}
	}

	// Recover the machine from the current configuration's newest snapshot
	// (the initial one, or the latest within-configuration checkpoint that
	// replaced it); the engine's redelivered log replays the rest. A
	// partial chunk set (crashed mid-transfer) leaves the node
	// uninitialized and the housekeeping loop resumes the fetch from the
	// persisted chunks.
	n.machine = statemachine.NewSessioned(n.factory())
	n.machine.SetSessionLimit(n.opts.SessionLimit)
	if m, chunks, complete, err := storage.ReadChunked(n.store, snapPrefix(n.curID)); err != nil {
		// A corrupt manifest must not brick the node. If this is the
		// bootstrap configuration and the engine log is intact from slot 1
		// (no truncation recorded), the empty machine plus full log replay
		// reproduces the state — the bootstrap snapshot is empty anyway.
		// Otherwise replay cannot start at 1: stay uninitialized and
		// refetch the newest checkpoint from peers.
		log.Printf("reconfig: %s snapshot of cfg %d unreadable (%v); falling back", n.self, n.curID, err)
		floor, ferr := paxos.TruncatedFloor(n.store, uint64(n.curID))
		if ferr == nil && floor == 0 && n.initConfig.ID != 0 && n.curID == n.initConfig.ID {
			n.initialized = true
			n.appliedSlot = 0
		} else {
			n.initialized = false
		}
	} else if complete && m.Chunks() > 0 {
		if fresh, err := n.buildMachine(m, chunks); err != nil {
			// CRC-clean chunks that do not decode: treat like a corrupt
			// manifest — stay uninitialized and refetch from peers.
			log.Printf("reconfig: %s snapshot of cfg %d undecodable (%v); refetching", n.self, n.curID, err)
			n.initialized = false
		} else {
			n.machine = fresh
			n.initialized = true
			// Resume applying where the snapshot's content ends (Base 0
			// for wedge-captured snapshots, the checkpoint base
			// otherwise); the engine redelivers the rest.
			n.appliedSlot = m.Base
			n.ckptCfg = n.curID
			n.ckptSelfBase = m.Base
			n.ckptPeerBase = make(map[types.NodeID]types.Slot)
		}
	} else {
		// No snapshot, or crashed before the transfer finished; the
		// housekeeping loop (re-)fetches the missing chunks.
		n.initialized = false
	}

	// Start the engine even when the snapshot is not yet installed: the
	// paxos substrate needs no application state to vote, accept or decide
	// (speculative start); its accepted/decided records are durable in
	// their own right, so slots decided before a crash mid-transfer are
	// redelivered here and park until the install.
	cur := n.configs[n.curID]
	if cur.IsMember(n.self) && (n.initialized || n.speculationOn()) {
		if err := n.ensureEngineLocked(n.curID); err != nil {
			return err
		}
	}

	n.peer = rpc.NewPeer(n.ep, ControlStream, n.handleRPC)
	n.wg.Add(2)
	go n.applyLoop()
	go n.housekeeping()
	return nil
}

// Stop terminates the node: engines, loops and the control plane. Idempotent.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	engines := make([]*engineRun, 0, len(n.engines))
	for _, run := range n.engines {
		engines = append(engines, run)
	}
	peer := n.peer
	n.mu.Unlock()

	n.stopOnce.Do(func() { close(n.stopCh) })
	n.baseCancel()
	for _, run := range engines {
		run.eng.Stop()
		<-run.done
	}
	n.wg.Wait()
	if peer != nil {
		peer.Close()
	}
}

// speculationOn reports whether successor engines may start before their
// snapshot installs (Options.SpeculativeStart, default on).
func (n *Node) speculationOn() bool { return n.opts.SpeculativeStart != SpecOff }

// ensureEngineLocked creates and starts the engine for configuration id if
// this node is a member and it is not already running. Caller holds mu.
func (n *Node) ensureEngineLocked(id types.ConfigID) error {
	if n.stopped {
		return nil // shutting down; a new engine would never be reaped
	}
	if _, ok := n.engines[id]; ok {
		return nil
	}
	cfg, ok := n.configs[id]
	if !ok {
		return fmt.Errorf("reconfig: unknown configuration %d", id)
	}
	if !cfg.IsMember(n.self) {
		return nil
	}
	eng, err := paxos.New(cfg, n.self, n.ep, n.store, uint64(id), n.opts.Paxos)
	if err != nil {
		return err
	}
	run := &engineRun{id: id, cfg: cfg, eng: eng, done: make(chan struct{})}
	if err := eng.Start(); err != nil {
		return err
	}
	n.engines[id] = run
	n.wg.Add(1)
	go n.consumeEngine(run)
	return nil
}

// consumeEngine forwards one engine's decisions into the shared apply queue.
// A full queue means the apply stage is the bottleneck: the consumer blocks
// (decisions are never dropped — the engine contract is gap-free delivery)
// and the stall is counted and warned about, mirroring the engine's own
// DroppedInbound visibility.
func (n *Node) consumeEngine(run *engineRun) {
	defer n.wg.Done()
	defer close(run.done)
	for d := range run.eng.Decisions() {
		td := taggedDecision{id: run.id, dec: d}
		select {
		case n.applyCh <- td:
		default:
			n.applyStalls.Add(1)
			n.warnApplyStall()
			select {
			case n.applyCh <- td:
			case <-n.stopCh:
				return
			}
		}
		n.noteApplyDepth()
	}
}

// noteApplyDepth tracks the apply queue's high-water mark.
func (n *Node) noteApplyDepth() {
	depth := int64(len(n.applyCh))
	for {
		hw := n.applyHighWater.Load()
		if depth <= hw || n.applyHighWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// warnApplyStall logs at most once per second that the apply queue is full.
func (n *Node) warnApplyStall() {
	now := time.Now().UnixNano()
	last := n.lastStallWarn.Load()
	if now-last < int64(time.Second) {
		return
	}
	if n.lastStallWarn.CompareAndSwap(last, now) {
		log.Printf("reconfig: %s apply queue full (cap %d, %d stalls so far); the apply stage is the bottleneck",
			n.self, cap(n.applyCh), n.applyStalls.Load())
	}
}

// warnShed logs at most once per second that admission control is shedding
// client commands. Caller holds mu (the shed counter lives under it); the
// rate gate is atomic so the common suppressed path stays cheap.
func (n *Node) warnShed() {
	now := time.Now().UnixNano()
	last := n.lastShedWarn.Load()
	if now-last < int64(time.Second) {
		return
	}
	if n.lastShedWarn.CompareAndSwap(last, now) {
		log.Printf("reconfig: %s shedding client submits (queue cap %d, %d shed so far); clients are told SubmitBusy",
			n.self, n.opts.SubmitQueue, n.stats.shedSubmits)
	}
}

// scheduleEngineStop stops an old engine after the linger period, keeping it
// available for laggards' catch-up meanwhile.
func (n *Node) scheduleEngineStop(run *engineRun) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		select {
		case <-time.After(n.opts.LingerOld):
		case <-n.stopCh:
		}
		run.eng.Stop()
	}()
}

// --- public inspection -------------------------------------------------------

// Self returns this node's ID.
func (n *Node) Self() types.NodeID { return n.self }

// CurrentConfig returns the latest configuration this node knows.
func (n *Node) CurrentConfig() types.Config {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.configs[n.curID].Clone()
}

// Serving reports whether this node is an initialized member of the current
// configuration (i.e. can execute client commands).
func (n *Node) Serving() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.initialized && n.configs[n.curID].IsMember(n.self)
}

// Accepting reports whether this node can take client submissions: serving,
// or an uninitialized member of the current configuration whose speculative
// engine can already order commands (the reply stays parked until the
// snapshot installs). Smart clients use this during a full member
// replacement, when no successor member is serving yet but all of them can
// decide.
func (n *Node) Accepting() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped || !n.configs[n.curID].IsMember(n.self) {
		return false
	}
	return n.initialized || n.speculationOn()
}

// LeaderHint returns this node's best guess at the current configuration's
// leader ("" when unknown). Used for leader-targeted fault injection and
// client steering; it is a hint, not a guarantee.
func (n *Node) LeaderHint() types.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderHintLocked()
}

// AppliedSlot returns the last applied slot within the current configuration.
func (n *Node) AppliedSlot() (types.ConfigID, types.Slot) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.curID, n.appliedSlot
}

// ChainRecords returns the known chain records ordered by From.
func (n *Node) ChainRecords() []ChainRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ChainRecord, 0, len(n.chain))
	start := types.ConfigID(0)
	for from := range n.chain {
		if start == 0 || from < start {
			start = from
		}
	}
	for id := start; id != 0; {
		rec, ok := n.chain[id]
		if !ok {
			break
		}
		out = append(out, rec)
		id = rec.To.ID
	}
	return out
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	var dropped, groupCommits, truncated, retained int64
	for _, run := range n.engines {
		es := run.eng.Stats()
		dropped += es.DroppedInbound
		groupCommits += es.GroupCommits
		truncated += es.TruncatedSlots
		retained += es.RetainedSlots
	}
	fast, fallback, fenced := n.reads.Snapshot()
	var ckptBase int64
	if n.ckptCfg == n.curID {
		ckptBase = int64(n.ckptSelfBase)
	}
	return NodeStats{
		Applied:              n.stats.applied,
		Duplicates:           n.stats.duplicates,
		Wedges:               n.stats.wedges,
		StaleJumps:           n.stats.staleJumps,
		SnapshotsServed:      n.stats.snapshotsServed,
		SnapshotsFetched:     n.stats.snapshotsFetched,
		ChunksServed:         n.stats.chunksServed,
		ChunksFetched:        n.stats.chunksFetched,
		ChunkRetries:         n.stats.chunkRetries,
		ChunkCRCRejected:     n.stats.chunkCRCRejected,
		WedgeCaptureNS:       n.stats.wedgeCaptureNS,
		Resubmits:            n.stats.resubmits,
		InvariantViolations:  n.stats.violations,
		FastReads:            fast,
		ReadFallbacks:        fallback,
		ReadFenced:           fenced,
		DroppedInbound:       dropped,
		ApplyQueueDepth:      int64(len(n.applyCh)),
		ApplyQueueHighWater:  n.applyHighWater.Load(),
		ApplyStalls:          n.applyStalls.Load(),
		GroupCommits:         groupCommits,
		SpeculativeDecides:   n.stats.specDecides,
		SpeculativeParked:    n.stats.specParked,
		ShedSubmits:          n.stats.shedSubmits,
		SubmitQueueDepth:     int64(len(n.pending)),
		SubmitQueueHigh:      n.stats.submitHighWater,
		CheckpointsPublished: n.stats.checkpointsPublished,
		CheckpointBase:       ckptBase,
		TruncatedSlots:       truncated,
		RetainedSlots:        retained,
		CatchupFetches:       n.stats.catchupFetches,
		DecisionBufferHigh:   n.stats.bufferHigh,
		DecisionBufferDrops:  n.stats.bufferDrops,
	}
}

// FirstDecide returns when this node learned its first decided slot of
// configuration id (speculative or not), and whether it has yet. The R2
// shootout subtracts the reconfigure start from it to get the joiner's
// time-to-first-decide in c+1.
func (n *Node) FirstDecide(id types.ConfigID) (time.Time, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t, ok := n.firstDecide[id]
	return t, ok
}

// Machine returns the node's sessioned machine for test inspection. Callers
// must not mutate it concurrently with a running node.
func (n *Node) Machine() *statemachine.Sessioned {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.machine
}

// notifyTransitionLocked wakes everyone waiting for a configuration change
// and advances the epoch that invalidates in-flight off-mutex apply work.
func (n *Node) notifyTransitionLocked() {
	n.epoch++
	for _, ch := range n.cfgWaiters {
		close(ch)
	}
	n.cfgWaiters = nil
	n.staleTicks = 0
}

// transitionWaiterLocked returns a channel closed at the next transition.
func (n *Node) transitionWaiterLocked() chan struct{} {
	ch := make(chan struct{})
	n.cfgWaiters = append(n.cfgWaiters, ch)
	return ch
}
