package reconfig

import (
	"time"

	"repro/internal/types"
)

// Public wire API for external clients of the control plane (the client
// library and tools). These wrap the internal codecs so the wire format has
// exactly one definition.

// SubmitResult is the decoded outcome of a submit RPC.
type SubmitResult struct {
	Status SubmitStatus
	Reply  []byte
	Config types.Config // current configuration hint
	Leader types.NodeID // leader hint (may be empty)
	// RetryAfter is the server's backoff hint on SubmitBusy (zero
	// otherwise): how long the shedding node expects to stay overloaded.
	RetryAfter time.Duration
}

// LocateResult is the decoded outcome of a locate RPC.
type LocateResult struct {
	Config types.Config
	Wedged bool
	Leader types.NodeID
}

// ReconfigResult is the decoded outcome of an admin reconfigure RPC.
type ReconfigResult struct {
	OK     bool
	Detail string
	Config types.Config
}

// ChainResult is the decoded outcome of a chain query.
type ChainResult struct {
	Initial types.Config
	Records []ChainRecord
}

// EncodeSubmitRequest encodes a client command submission.
func EncodeSubmitRequest(cmd types.Command) []byte {
	return encodeSubmit(submitReq{Cmd: cmd})
}

// EncodeSubmitResult encodes a submit reply; the inverse of
// DecodeSubmitResult (used by servers and by test doubles of the control
// plane).
func EncodeSubmitResult(res SubmitResult) []byte {
	return encodeSubmitReply(submitReply{
		Status:     res.Status,
		Reply:      res.Reply,
		Config:     res.Config,
		Leader:     res.Leader,
		RetryAfter: res.RetryAfter,
	})
}

// DecodeSubmitResult decodes a submit reply.
func DecodeSubmitResult(buf []byte) (SubmitResult, error) {
	m, err := decodeSubmitReply(buf)
	if err != nil {
		return SubmitResult{}, err
	}
	return SubmitResult{Status: m.Status, Reply: m.Reply, Config: m.Config, Leader: m.Leader, RetryAfter: m.RetryAfter}, nil
}

// EncodeLocateRequest encodes a configuration-discovery request.
func EncodeLocateRequest() []byte { return encodeLocate() }

// DecodeLocateResult decodes a locate reply.
func DecodeLocateResult(buf []byte) (LocateResult, error) {
	m, err := decodeLocateReply(buf)
	if err != nil {
		return LocateResult{}, err
	}
	return LocateResult{Config: m.Config, Wedged: m.Wedged, Leader: m.Leader}, nil
}

// EncodeReconfigRequest encodes an admin membership-change request.
func EncodeReconfigRequest(members []types.NodeID) []byte {
	return encodeReconfigReq(reconfigReq{Members: members})
}

// DecodeReconfigResult decodes an admin reconfigure reply.
func DecodeReconfigResult(buf []byte) (ReconfigResult, error) {
	m, err := decodeReconfigReply(buf)
	if err != nil {
		return ReconfigResult{}, err
	}
	return ReconfigResult{OK: m.OK, Detail: m.Detail, Config: m.Config}, nil
}

// EncodeChainRequest encodes a chain dump request.
func EncodeChainRequest() []byte { return encodeChainQuery() }

// DecodeChainResult decodes a chain dump reply.
func DecodeChainResult(buf []byte) (ChainResult, error) {
	m, err := decodeChainReply(buf)
	if err != nil {
		return ChainResult{}, err
	}
	return ChainResult{Initial: m.Initial, Records: m.Records}, nil
}
