package reconfig

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

// These tests target the correctness core of the read fast path: wedging a
// configuration must invalidate its read path immediately, even when the
// deposed leader holds a lease whose term is deliberately far longer than any
// election or reconfiguration. The fence-enabled case must refuse the read;
// the DisableReadFence companion proves the fence is load-bearing by showing
// that without it the same read IS answered — from stale state.

// engineLeaseReads reports how many reads the node's current engine answered
// under a lease, i.e. with no confirmation round.
func engineLeaseReads(n *Node) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if run, ok := n.engines[n.curID]; ok {
		return run.eng.Stats().LeaseReads
	}
	return 0
}

// findLeaderNode waits until some serving node believes itself leader.
func findLeaderNode(t *testing.T, w *world, ids ...types.NodeID) *Node {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, id := range ids {
			n := w.node(id)
			if n != nil && n.Serving() && n.LeaderHint() == id {
				return n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no leader emerged")
	return nil
}

func TestWedgeFencesLeaseReads(t *testing.T) {
	testWedgeFence(t, false)
}

func TestWedgeFenceDisabledServesStaleRead(t *testing.T) {
	testWedgeFence(t, true)
}

func testWedgeFence(t *testing.T, disableFence bool) {
	w := newWorld(t, transport.Options{
		BaseLatency: 100 * time.Microsecond,
		Jitter:      100 * time.Microsecond,
		Seed:        7,
	})
	w.opts.Reads = ReadModeLease
	// A pathologically long lease (an hour of ticks) and a node that never
	// jumps forward on staleness: expiry can never rescue correctness here,
	// only the wedge fence can.
	w.opts.LeaseTicks = 3_600_000
	w.opts.StaleJumpTicks = 1 << 30
	w.opts.DisableReadFence = disableFence
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}

	w.submit("n1", "wr", 1, statemachine.EncodePut("k", []byte("old")))
	leader := findLeaderNode(t, w, "n1", "n2", "n3")

	// Pump reads at the leader until one is answered under the lease, so we
	// know the zero-round tier is live before the wedge.
	read := statemachine.EncodeGet("k")
	var preWedgeReply []byte
	seq := uint64(1)
	deadline := time.Now().Add(15 * time.Second)
	for engineLeaseReads(leader) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no read was ever served under the lease")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		reply, err := leader.Submit(ctx, "rd", seq, read)
		cancel()
		seq++
		if err == nil {
			preWedgeReply = reply
		}
	}
	if preWedgeReply == nil {
		t.Fatal("lease read produced no reply")
	}

	// Partition the leader away. Its lease stays "valid" for the next hour;
	// nothing it can observe on its own would stop it serving reads.
	w.net.Isolate(leader.Self())
	var survivors []types.NodeID
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		if id != leader.Self() {
			survivors = append(survivors, id)
		}
	}

	// The survivors (a quorum of config 1) reconfigure the old leader out.
	members := append(append([]types.NodeID{}, survivors...), "n4")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var rerr error = ErrNotServing
	for time.Now().Before(deadline.Add(15 * time.Second)) {
		attempt, acancel := context.WithTimeout(ctx, 8*time.Second)
		_, rerr = w.node(survivors[0]).Reconfigure(attempt, members)
		acancel()
		if rerr == nil {
			break
		}
	}
	if rerr != nil {
		t.Fatalf("survivors could not reconfigure: %v", rerr)
	}

	// The successor configuration moves on and overwrites the key, making
	// any answer from the deposed leader's machine observably stale.
	w.submit(survivors[0], "wr", 2, statemachine.EncodePut("k", []byte("new")))

	// Hand the isolated leader the wedge evidence directly — the chain
	// record for its own configuration. Because it is still executing config
	// 1, handleAnnounce does not advance curID; the record alone must fence.
	var rec ChainRecord
	for _, r := range w.node(survivors[0]).ChainRecords() {
		if r.From == 1 {
			rec = r
		}
	}
	if rec.From != 1 {
		t.Fatal("no chain record for config 1 on the survivors")
	}
	leader.handleAnnounce(rec)

	rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer rcancel()
	reply, err := leader.Submit(rctx, "rd", seq, read)
	if disableFence {
		// UNSAFE mode: the lease is valid, the engine still believes it
		// leads, and with the fence off nothing blocks the read — it is
		// served from pre-wedge state even though config 2 has moved on.
		if err != nil {
			t.Fatalf("fence disabled: stale lease read was refused: %v", err)
		}
		if !bytes.Equal(reply, preWedgeReply) {
			t.Fatalf("fence disabled: reply %q, want the stale pre-wedge value %q", reply, preWedgeReply)
		}
		return
	}
	if !errors.Is(err, ErrNotServing) {
		t.Fatalf("wedged leader answered a fast read: reply %q err %v (want ErrNotServing)", reply, err)
	}
	if fenced := leader.Stats().ReadFenced; fenced == 0 {
		t.Fatal("refused read was not counted as fenced")
	}
}
