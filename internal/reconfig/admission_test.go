package reconfig

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

// fillPending parks k submits on a node that cannot make progress (no
// quorum), so its proposal queue holds exactly k commands. Returns a cancel
// that releases the waiters.
func fillPending(t *testing.T, n *Node, k int) (release func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = n.Submit(ctx, types.NodeID(rune('a'+i))+"-filler", 1, statemachine.EncodeAdd(1))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats().SubmitQueueDepth < int64(k) {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d, want %d", n.Stats().SubmitQueueDepth, k)
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// quorumlessNode bootstraps {n1,n2,n3}, then stops n2 and n3: n1 keeps
// serving (accepting submits into its pending queue) but nothing commits, so
// admitted commands pend indefinitely — a deterministic way to fill the
// queue to its cap.
func quorumlessNode(t *testing.T, w *world) *Node {
	t.Helper()
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.stopNode("n2")
	w.stopNode("n3")
	return w.node("n1")
}

func TestAdmissionShedsPastBound(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.opts.SubmitQueue = 4
	n1 := quorumlessNode(t, w)
	release := fillPending(t, n1, 4)
	defer release()

	// A new command past the bound is shed immediately with ErrBusy — not
	// silently dropped, not parked.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := n1.Submit(ctx, "fresh", 1, statemachine.EncodeAdd(1))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("past-bound submit: err = %v, want ErrBusy", err)
	}
	st := n1.Stats()
	if st.ShedSubmits == 0 {
		t.Fatal("shed not counted")
	}
	if st.SubmitQueueDepth != 4 || st.SubmitQueueHigh != 4 {
		t.Fatalf("queue stats: depth=%d high=%d, want 4/4", st.SubmitQueueDepth, st.SubmitQueueHigh)
	}
}

// A retry of an already-admitted command is never shed: it attaches another
// waiter to the existing pending entry instead of consuming queue space.
func TestAdmissionAdmitsRetryOfPendingCommand(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.opts.SubmitQueue = 2
	n1 := quorumlessNode(t, w)
	release := fillPending(t, n1, 2)
	defer release()

	// Same session+seq as a parked filler: must park (ctx timeout), not
	// bounce with ErrBusy.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := n1.Submit(ctx, "a-filler", 1, statemachine.EncodeAdd(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retry of admitted command: err = %v, want deadline exceeded", err)
	}
	if got := n1.Stats().SubmitQueueDepth; got != 2 {
		t.Fatalf("retry consumed queue space: depth %d", got)
	}
}

func TestNoAdmissionDisablesBound(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.opts.SubmitQueue = 2
	w.opts.NoAdmission = true
	n1 := quorumlessNode(t, w)
	release := fillPending(t, n1, 6) // three times the bound, all admitted
	defer release()
	if st := n1.Stats(); st.ShedSubmits != 0 || st.SubmitQueueDepth != 6 {
		t.Fatalf("ablation shed traffic: %+v", st)
	}
}

// The shed reply travels the wire as SubmitBusy with a non-zero RetryAfter
// hint — the contract the smart client's backoff floor relies on.
func TestShedReplyCarriesRetryAfterOnWire(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.opts.SubmitQueue = 1
	n1 := quorumlessNode(t, w)
	release := fillPending(t, n1, 1)
	defer release()

	peer := rpc.NewPeer(w.net.Endpoint("probe"), ControlStream, nil)
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cmd := types.Command{Kind: types.CmdApp, Client: "probe", Seq: 1, Data: statemachine.EncodeAdd(1)}
	resp, err := peer.Call(ctx, "n1", EncodeSubmitRequest(cmd), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeSubmitResult(resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != SubmitBusy {
		t.Fatalf("status %v, want SubmitBusy", res.Status)
	}
	if res.RetryAfter <= 0 {
		t.Fatalf("RetryAfter hint missing: %v", res.RetryAfter)
	}
	if res.Config.ID == 0 {
		t.Fatal("shed reply lost the config hint")
	}
}

// Control-plane traffic is never queued behind client load: with the submit
// queue at its cap, locate and chain queries still answer (their op codes
// bypass the admission gate entirely).
func TestAdmissionDoesNotGateControlPlane(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.opts.SubmitQueue = 1
	n1 := quorumlessNode(t, w)
	release := fillPending(t, n1, 1)
	defer release()

	peer := rpc.NewPeer(w.net.Endpoint("probe"), ControlStream, nil)
	defer peer.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := peer.Call(ctx, "n1", EncodeLocateRequest(), 0)
	if err != nil {
		t.Fatalf("locate gated by admission control: %v", err)
	}
	if res, err := DecodeLocateResult(resp); err != nil || res.Config.ID == 0 {
		t.Fatalf("locate reply broken: %v %v", res, err)
	}
	resp, err = peer.Call(ctx, "n1", EncodeChainRequest(), 0)
	if err != nil {
		t.Fatalf("chain query gated by admission control: %v", err)
	}
	if _, err := DecodeChainResult(resp); err != nil {
		t.Fatal(err)
	}
	_ = n1
}
