package reconfig

import (
	"context"
	"fmt"
	"time"

	"repro/internal/types"
)

// handleRPC dispatches control-plane requests. It runs on a per-request
// goroutine spawned by the rpc peer, so blocking is allowed.
func (n *Node) handleRPC(from types.NodeID, req []byte, respond func([]byte)) {
	if len(req) == 0 {
		return
	}
	switch req[0] {
	case opSubmit:
		cmd, err := types.DecodeCommand(req[1:])
		if err != nil {
			return
		}
		n.handleSubmit(cmd, respond)
	case opLocate:
		n.mu.Lock()
		reply := locateReply{
			Config: n.configs[n.curID],
			Wedged: func() bool { _, ok := n.chain[n.curID]; return ok }(),
			Leader: n.leaderHintLocked(),
		}
		n.mu.Unlock()
		respond(encodeLocateReply(reply))
	case opSnapMeta:
		r := types.NewReader(req[1:])
		id := types.ConfigID(r.Uvarint())
		if r.Err() != nil {
			return
		}
		m, ok := n.snapManifest(id)
		reply := snapMetaReply{Found: ok, Format: m.Format, Base: m.Base, CRCs: m.CRCs}
		if ok {
			// Piggyback the leading chunks: on a loaded control plane every
			// round trip pays a full dispatch-queue traversal, so a small
			// snapshot should transfer in the manifest round trip itself.
			reply.Chunks = n.snapChunkRange(id, 0, m.Chunks())
		}
		respond(encodeSnapMetaReply(reply))
	case opSnapChunk:
		r := types.NewReader(req[1:])
		id := types.ConfigID(r.Uvarint())
		first := int(r.Uvarint())
		count := int(r.Uvarint())
		if r.Err() != nil {
			return
		}
		respond(encodeSnapChunkReply(snapChunkReply{Chunks: n.snapChunkRange(id, first, count)}))
	case opAnnounce:
		rec, err := decodeChainRecord(req[1:])
		if err != nil {
			return
		}
		n.handleAnnounce(rec)
		respond(encodeAnnounceAck())
	case opReconfig:
		r := types.NewReader(req[1:])
		members := r.NodeIDs()
		if r.Err() != nil {
			return
		}
		ctx, cancel := context.WithTimeout(n.baseCtx, 30*time.Second)
		defer cancel()
		cfg, err := n.Reconfigure(ctx, members)
		reply := reconfigReply{OK: err == nil, Config: cfg}
		if err != nil {
			reply.Detail = err.Error()
		}
		respond(encodeReconfigReply(reply))
	case opChain:
		recs := n.ChainRecords()
		n.mu.Lock()
		init := n.initConfig
		n.mu.Unlock()
		respond(encodeChainReply(chainReply{Initial: init, Records: recs}))
	case opCkptAnnounce:
		m, err := decodeCkptAnnounce(req)
		if err != nil {
			return
		}
		n.handleCkptAnnounce(from, m, respond)
	}
}

// handleSubmit services one client command: dedup fast path, or register a
// pending waiter and propose into the current engine.
func (n *Node) handleSubmit(cmd types.Command, respond func([]byte)) {
	if cmd.Kind != types.CmdApp || cmd.Client == "" || cmd.Seq == 0 {
		return // malformed; client library never sends this
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return
	}
	cur := n.configs[n.curID]
	if !cur.IsMember(n.self) {
		respond(encodeSubmitReply(submitReply{
			Status: SubmitRedirect,
			Config: cur,
			Leader: n.leaderHintLocked(),
		}))
		return
	}
	if !n.initialized {
		if !n.speculationOn() {
			respond(encodeSubmitReply(submitReply{
				Status: SubmitRedirect,
				Config: cur,
				Leader: n.leaderHintLocked(),
			}))
			return
		}
		// Speculative accept: this member's snapshot is still in flight, but
		// its engine can already order commands (speculative start). Propose
		// now and leave the reply parked: the decision buffers until the
		// install, the post-install apply answers the waiter, and session
		// dedup squashes commands the snapshot already contains. Without this
		// a full member replacement has no one to propose to until the first
		// install completes — exactly the window speculation exists to close.
		// The dedup and fast-read checks below need machine state we do not
		// have yet; both remain correct at apply time.
		if !n.admitSubmitLocked(cmd) {
			respond(n.busyReplyLocked())
			return
		}
		n.enqueueSubmitLocked(cmd, respond)
		return
	}
	// Duplicate of an already-executed command: answer from the session
	// table without touching the log. execMu (shared) keeps the session
	// lookup from racing an off-mutex apply segment.
	n.execMu.RLock()
	isDup := cmd.Seq <= n.machine.LastSeq(cmd.Client)
	var dupReply []byte
	if isDup {
		dupReply, _ = n.machine.ApplyCommand(cmd) // dedup path: no mutation
	}
	n.execMu.RUnlock()
	if isDup {
		respond(encodeSubmitReply(submitReply{
			Status: SubmitApplied,
			Reply:  dupReply,
			Config: cur,
			Leader: n.leaderHintLocked(),
		}))
		return
	}
	// Read-only fast path: serve linearizable reads without a log append.
	// tryFastReadLocked may drop and re-acquire n.mu around the engine
	// call, so the serving state is re-validated below when it declines.
	if n.tryFastReadLocked(cmd, respond) {
		return
	}
	if n.stopped {
		return
	}
	if !n.initialized || !n.configs[n.curID].IsMember(n.self) {
		respond(n.redirectReplyLocked())
		return
	}
	if !n.admitSubmitLocked(cmd) {
		respond(n.busyReplyLocked())
		return
	}
	n.enqueueSubmitLocked(cmd, respond)
}

// admitSubmitLocked decides whether a client command may join the pending
// proposal queue — the admission control gate. A retry of an already-admitted
// command always passes (it only attaches another waiter); past the bound,
// new commands are shed. Only opSubmit traffic ever reaches this gate:
// reconfigurations, chain records, announces and state transfer have their
// own op codes, so control-plane progress is never queued behind client load.
func (n *Node) admitSubmitLocked(cmd types.Command) bool {
	if _, ok := n.pending[pendKey{client: cmd.Client, seq: cmd.Seq}]; ok {
		return true
	}
	if n.opts.NoAdmission || len(n.pending) < n.opts.SubmitQueue {
		return true
	}
	n.stats.shedSubmits++
	n.warnShed()
	return false
}

// busyReplyLocked builds the SubmitBusy shed reply. RetryAfter is the
// housekeeping interval: by then the node has re-proposed its backlog at
// least once, so the queue has had a real chance to drain.
func (n *Node) busyReplyLocked() []byte {
	return encodeSubmitReply(submitReply{
		Status:     SubmitBusy,
		Config:     n.configs[n.curID],
		Leader:     n.leaderHintLocked(),
		RetryAfter: n.opts.RetryInterval,
	})
}

// enqueueSubmitLocked registers a pending waiter for cmd and proposes it
// into the current engine — the ordinary log path for writes and for reads
// that could not use the fast path.
func (n *Node) enqueueSubmitLocked(cmd types.Command, respond func([]byte)) {
	key := pendKey{client: cmd.Client, seq: cmd.Seq}
	p, ok := n.pending[key]
	if !ok {
		p = &pendingCmd{cmd: cmd}
		n.pending[key] = p
		if depth := int64(len(n.pending)); depth > n.stats.submitHighWater {
			n.stats.submitHighWater = depth
		}
	}
	p.responders = append(p.responders, respond)
	if run, ok := n.engines[n.curID]; ok {
		_ = run.eng.Propose(cmd) // housekeeping re-proposes on loss
	}
}

// handleAnnounce integrates a chain record learned from a peer: persist it,
// speculatively start the successor engine if we belong to it, and — when we
// are not actively executing an older configuration — advance directly.
func (n *Node) handleAnnounce(rec ChainRecord) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return
	}
	if prev, ok := n.chain[rec.From]; ok {
		if !prev.Equal(rec) {
			n.stats.violations++ // chain fork: impossible under agreement
		}
	} else {
		n.chain[rec.From] = rec
		if err := n.store.Set(chainKey(rec.From), encodeChainRecord(rec)); err != nil {
			n.stats.violations++
		}
	}
	n.configs[rec.To.ID] = rec.To

	// Speculative start (the paper's availability optimization): join the
	// successor's engine before the state arrives so ordering can begin.
	if rec.To.IsMember(n.self) && n.speculationOn() {
		if err := n.ensureEngineLocked(rec.To.ID); err != nil {
			n.stats.violations++
		}
	}

	if rec.To.ID > n.curID {
		executing := n.initialized && n.configs[n.curID].IsMember(n.self)
		if !executing {
			// Spare or retired node: adopt the newest configuration
			// directly; the housekeeping loop fetches its state if we
			// are a member.
			n.advanceToLocked(rec.To.ID)
		}
		// Otherwise our own log delivers the wedge; the stale-jump
		// fallback covers a dead predecessor quorum.
	}

	// The new chain record may have fenced parked fast-path reads.
	n.serveReadyReadsLocked()
}

// advanceToLocked moves the node's execution cursor to configuration id
// without local state (a fetch must follow if we are a member).
func (n *Node) advanceToLocked(id types.ConfigID) {
	if run, ok := n.engines[n.curID]; ok && n.curID < id {
		n.scheduleEngineStop(run)
	}
	n.curID = id
	n.appliedSlot = 0
	n.initialized = false
	cfg := n.configs[id]
	if cfg.IsMember(n.self) {
		if n.speculationOn() {
			if err := n.ensureEngineLocked(id); err != nil {
				n.stats.violations++
			}
		}
		// Start pulling the initial state right away rather than waiting for
		// the next housekeeping tick — joining latency is downtime.
		n.maybeStartFetchLocked()
	} else {
		n.redirectAllPendingLocked()
	}
	n.serveReadyReadsLocked()
	n.notifyTransitionLocked()
}

// maybeStartFetchLocked launches the (long-lived, resumable) transfer
// goroutine if this node needs the current configuration's initial state and
// is not already fetching. Caller holds n.mu.
func (n *Node) maybeStartFetchLocked() {
	if n.initialized || n.fetching || n.stopped || n.curID == 0 {
		return
	}
	if !n.configs[n.curID].IsMember(n.self) {
		return
	}
	n.fetching = true
	n.wg.Add(1)
	go n.runFetch(n.curID)
}

// housekeeping drives retries: pending re-proposals, snapshot fetches, and
// the stale-jump fallback.
func (n *Node) housekeeping() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.opts.RetryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			n.houseTick()
		}
	}
}

func (n *Node) houseTick() {
	n.mu.Lock()
	n.tick++
	cur := n.configs[n.curID]
	member := cur.IsMember(n.self)

	if n.initialized && member {
		n.resubmitPendingLocked(false)
	}
	n.ageReadWaitersLocked()

	// Stale jump: a successor of our current configuration is known, but
	// our own engine has not delivered the wedge (e.g. the old quorum is
	// gone). After a grace period, transfer state instead of waiting.
	if rec, ok := n.chain[n.curID]; ok && n.initialized {
		n.staleTicks++
		if n.staleTicks > n.opts.StaleJumpTicks {
			n.stats.staleJumps++
			n.advanceToLocked(rec.To.ID)
			cur = n.configs[n.curID]
			member = cur.IsMember(n.self)
		}
	} else if n.initialized {
		n.staleTicks = 0
	}

	// Retry path for the transfer goroutine: the transition paths launch it
	// immediately, but a fetch that aborted (e.g. the configuration moved on
	// mid-transfer) is relaunched here.
	n.maybeStartFetchLocked()

	// Within-configuration checkpoints: publish one when the applied cursor
	// is an interval past the last, and fetch one when this member's
	// decision gap says replaying the log would be slower (or impossible —
	// peers truncated it).
	n.maybeCheckpointLocked()
	n.maybeCatchupLocked()

	// Periodic checkpoint-base re-announce: repairs lost announces and
	// keeps feeding peer bases into the truncation computation.
	var ckptBody []byte
	var ckptTo []types.NodeID
	n.ckptAnnounceLeft--
	if n.ckptAnnounceLeft <= 0 {
		n.ckptAnnounceLeft = ckptAnnounceTicks
		if !n.opts.NoCheckpoints && n.initialized && member &&
			n.ckptCfg == n.curID && n.ckptSelfBase > 0 {
			ckptBody = encodeCkptAnnounce(ckptMsg{Config: n.curID, Base: n.ckptSelfBase})
			ckptTo = append([]types.NodeID(nil), cur.Members...)
		}
		n.maybeTruncateLocked()
	}

	// Anti-entropy: periodically trade chain knowledge with a random known
	// peer. This is the repair path for lost announces — a member that
	// missed a reconfiguration learns about the successor here. The
	// exchange is symmetric: we push our newest record (so blank spares,
	// which know nobody and cannot pull, still get reached) and pull the
	// peer's chain.
	var gossipTo types.NodeID
	var gossipPush []byte
	n.gossipLeft--
	if n.gossipLeft <= 0 {
		n.gossipLeft = n.opts.GossipTicks
		gossipTo = n.gossipPeerLocked()
		if rec, ok := n.chain[n.curID-1]; ok && gossipTo != "" {
			gossipPush = encodeAnnounce(announceMsg{Record: rec})
		}
	}
	n.mu.Unlock()

	if gossipTo != "" {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.gossipChain(gossipTo, gossipPush)
		}()
	}
	if ckptBody != nil {
		n.broadcastCkpt(ckptTo, ckptBody)
	}
}

// gossipPeerLocked picks a peer from all configurations this node knows.
func (n *Node) gossipPeerLocked() types.NodeID {
	seen := map[types.NodeID]bool{n.self: true}
	var peers []types.NodeID
	for _, cfg := range n.configs {
		for _, m := range cfg.Members {
			if !seen[m] {
				seen[m] = true
				peers = append(peers, m)
			}
		}
	}
	if len(peers) == 0 {
		return ""
	}
	// Round-robin so every peer is covered within len(peers) rounds.
	types.SortNodeIDs(peers)
	n.gossipSeq++
	return peers[n.gossipSeq%len(peers)]
}

// gossipChain pushes our newest record to a peer and pulls its chain,
// merging anything new.
func (n *Node) gossipChain(to types.NodeID, push []byte) {
	if push != nil {
		pctx, pcancel := context.WithTimeout(n.baseCtx, n.opts.FetchTimeout)
		_, _ = n.peer.Call(pctx, to, push, 0)
		pcancel()
	}
	ctx, cancel := context.WithTimeout(n.baseCtx, n.opts.FetchTimeout)
	defer cancel()
	resp, err := n.peer.Call(ctx, to, encodeChainQuery(), 0)
	if err != nil {
		return
	}
	cr, err := decodeChainReply(resp)
	if err != nil {
		return
	}
	if cr.Initial.ID != 0 {
		n.mu.Lock()
		if _, ok := n.configs[cr.Initial.ID]; !ok {
			n.configs[cr.Initial.ID] = cr.Initial
		}
		n.mu.Unlock()
	}
	for _, rec := range cr.Records {
		n.handleAnnounce(rec)
	}
}

// fetchSourcesLocked lists peers likely to hold the initial snapshot of id:
// the predecessor configuration's members (they computed it at the wedge)
// and the configuration's own members (they may have installed it already).
func (n *Node) fetchSourcesLocked(id types.ConfigID) []types.NodeID {
	seen := map[types.NodeID]bool{n.self: true}
	var out []types.NodeID
	add := func(ids []types.NodeID) {
		for _, m := range ids {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	for from, rec := range n.chain {
		if rec.To.ID == id {
			add(rec.FromMembers)
			add(n.configs[from].Members)
		}
	}
	add(n.configs[id].Members)
	return out
}

// sendAnnounce fires one best-effort announce RPC without blocking the
// caller; losses are repaired by discovery and the stale-jump path.
func (n *Node) sendAnnounce(to types.NodeID, body []byte) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ctx, cancel := context.WithTimeout(n.baseCtx, 500*time.Millisecond)
		defer cancel()
		_, _ = n.peer.Call(ctx, to, body, 0)
	}()
}

// Submit executes one client command through this node and waits for the
// result. It is the in-process equivalent of the client library's RPC.
func (n *Node) Submit(ctx context.Context, client types.NodeID, seq uint64, op []byte) ([]byte, error) {
	cmd := types.Command{Kind: types.CmdApp, Client: client, Seq: seq, Data: op}
	ch := make(chan []byte, 1)
	n.handleSubmit(cmd, func(resp []byte) {
		select {
		case ch <- resp:
		default:
		}
	})
	select {
	case resp := <-ch:
		sr, err := decodeSubmitReply(resp)
		if err != nil {
			return nil, err
		}
		switch sr.Status {
		case SubmitApplied:
			return sr.Reply, nil
		case SubmitRedirect:
			return nil, fmt.Errorf("%w: current is %s", ErrNotServing, sr.Config)
		case SubmitBusy:
			return nil, fmt.Errorf("%w: retry after %s", ErrBusy, sr.RetryAfter)
		default:
			return nil, fmt.Errorf("reconfig: unknown submit status %d", sr.Status)
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.stopCh:
		return nil, ErrStopped
	}
}

// Reconfigure proposes replacing the current configuration's member set and
// waits until the configuration chain advances past the proposal. On success
// it returns the new configuration; if a racing reconfiguration won the same
// chain position it returns that winner and ErrConflict.
func (n *Node) Reconfigure(ctx context.Context, members []types.NodeID) (types.Config, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return types.Config{}, ErrStopped
	}
	origID := n.curID
	cur := n.configs[origID]
	if !n.initialized || !cur.IsMember(n.self) {
		n.mu.Unlock()
		return types.Config{}, ErrNotServing
	}
	newCfg, err := types.NewConfig(origID+1, members)
	if err != nil {
		n.mu.Unlock()
		return types.Config{}, err
	}
	cmd := types.ReconfigCommand(newCfg)
	n.mu.Unlock()

	ticker := time.NewTicker(n.opts.RetryInterval * 2)
	defer ticker.Stop()
	for {
		n.mu.Lock()
		if n.curID > origID {
			won := n.configs[newCfg.ID]
			n.mu.Unlock()
			if won.Equal(newCfg) {
				return newCfg, nil
			}
			return won, ErrConflict
		}
		waiter := n.transitionWaiterLocked()
		run := n.engines[origID]
		n.mu.Unlock()

		if run != nil {
			_ = run.eng.Propose(cmd)
		}
		select {
		case <-waiter:
		case <-ticker.C:
		case <-ctx.Done():
			return types.Config{}, ctx.Err()
		case <-n.stopCh:
			return types.Config{}, ErrStopped
		}
	}
}

// WaitServing blocks until the node is an initialized member of the current
// configuration, or ctx expires.
func (n *Node) WaitServing(ctx context.Context) error {
	for {
		n.mu.Lock()
		if n.initialized && n.configs[n.curID].IsMember(n.self) {
			n.mu.Unlock()
			return nil
		}
		waiter := n.transitionWaiterLocked()
		n.mu.Unlock()
		select {
		case <-waiter:
		case <-time.After(n.opts.RetryInterval):
		case <-ctx.Done():
			return ctx.Err()
		case <-n.stopCh:
			return ErrStopped
		}
	}
}
