package reconfig

// Within-configuration checkpoints: the mid-log snapshot producer, the
// quorum-gated log-truncation driver, and the lagging-replica catch-up path.
//
// A configuration that lives long enough accumulates an unbounded paxos log
// and forces a restarted or lagging member to replay it slot by slot. The
// producer periodically forks a copy-on-write snapshot of the machine at
// applied slot S (O(shards) under the node mutex, like the wedge capture) and
// publishes it under the configuration's existing rc/snap/<id> chunked
// namespace with Base=S — the SAME namespace a joiner fetches its initial
// state from, so the whole resumable multi-source transfer protocol, the
// manifest/chunk RPCs and the crash-resume logic are reused verbatim; the
// newest checkpoint simply replaces the configuration's initial snapshot in
// place (commit-ordered: chunks, sync, manifest, sync — a torn write leaves
// the predecessor intact).
//
// Truncation is gated on quorum durability: members exchange their newest
// durable checkpoint base via opCkptAnnounce/opCkptAck (the ack carries the
// receiver's own base, so one exchange teaches both sides), and each member
// truncates its engine below min(quorum-th largest base, own base) − margin.
// The self clamp keeps restart recovery self-contained (the local snapshot
// covers everything the local log no longer holds); the quorum clamp keeps
// the checkpoint fetchable — a laggard must find the state somewhere after
// the log stops serving it. Slots at or below any member's base were applied
// there, hence globally chosen, which is what makes the engine-level
// truncation floor safe to exchange in promises (see paxos/protocol.go).
//
// Catch-up: a member that detects a decision gap larger than
// CatchupGapSlots — or whose engine reports CheckpointNeeded because a peer
// redirected it below its truncation floor, or whose bounded decision buffer
// dropped parked decisions — fetches the newest checkpoint manifest from its
// peers, pulls the chunks in memory, swaps the machine under an epoch bump,
// and tells its engine to SkipTo(Base) instead of replaying every slot.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/types"
)

// ckptAnnounceTicks is how many housekeeping ticks pass between periodic
// re-announces of this member's newest durable checkpoint base (the repair
// path for lost announce RPCs, and how a healed member learns it may
// truncate).
const ckptAnnounceTicks = 10

// ckptFetchCooldownTicks spaces out fruitless catch-up probes: when no peer
// served a checkpoint newer than our applied slot, wait this many ticks
// before asking again.
const ckptFetchCooldownTicks = 5

// --- wire messages ----------------------------------------------------------

// ckptMsg is both the announce and the ack payload: "my newest durable
// checkpoint of Config has base Base". Base 0 means none yet.
type ckptMsg struct {
	Config types.ConfigID
	Base   types.Slot
}

func encodeCkptAnnounce(m ckptMsg) []byte {
	w := types.NewWriter(20)
	w.Byte(opCkptAnnounce)
	w.Uvarint(uint64(m.Config))
	w.Uvarint(uint64(m.Base))
	return w.Bytes()
}

func decodeCkptAnnounce(buf []byte) (ckptMsg, error) {
	if len(buf) == 0 || buf[0] != opCkptAnnounce {
		return ckptMsg{}, fmt.Errorf("%w: not a ckpt announce", types.ErrCodec)
	}
	return decodeCkptBody(buf[1:], "ckpt announce")
}

func encodeCkptAck(m ckptMsg) []byte {
	w := types.NewWriter(20)
	w.Byte(opCkptAck)
	w.Uvarint(uint64(m.Config))
	w.Uvarint(uint64(m.Base))
	return w.Bytes()
}

func decodeCkptAck(buf []byte) (ckptMsg, error) {
	if len(buf) == 0 || buf[0] != opCkptAck {
		return ckptMsg{}, fmt.Errorf("%w: not a ckpt ack", types.ErrCodec)
	}
	return decodeCkptBody(buf[1:], "ckpt ack")
}

func decodeCkptBody(body []byte, what string) (ckptMsg, error) {
	r := types.NewReader(body)
	m := ckptMsg{Config: types.ConfigID(r.Uvarint()), Base: types.Slot(r.Uvarint())}
	if err := r.Err(); err != nil {
		return ckptMsg{}, fmt.Errorf("%s: %w", what, err)
	}
	if r.Remaining() != 0 {
		return ckptMsg{}, fmt.Errorf("%w: trailing bytes in %s", types.ErrCodec, what)
	}
	return m, nil
}

// --- base tracking ----------------------------------------------------------

// ckptTrackLocked resets the checkpoint-base bookkeeping when the
// configuration has moved on; bases never carry across configurations (the
// successor's log starts fresh). Caller holds mu.
func (n *Node) ckptTrackLocked() {
	if n.ckptCfg == n.curID {
		return
	}
	n.ckptCfg = n.curID
	n.ckptSelfBase = 0
	n.ckptPeerBase = make(map[types.NodeID]types.Slot)
}

// noteCkptPeer records a peer's announced/acked checkpoint base and
// re-evaluates truncation.
func (n *Node) noteCkptPeer(from types.NodeID, id types.ConfigID, base types.Slot) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped || id != n.curID || base == 0 {
		return
	}
	n.ckptTrackLocked()
	if base > n.ckptPeerBase[from] {
		n.ckptPeerBase[from] = base
	}
	n.maybeTruncateLocked()
}

// handleCkptAnnounce integrates a peer's checkpoint announce and replies with
// our own newest base, making the exchange symmetric.
func (n *Node) handleCkptAnnounce(from types.NodeID, m ckptMsg, respond func([]byte)) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	ack := ckptMsg{Config: n.curID}
	if m.Config == n.curID {
		n.ckptTrackLocked()
		if m.Base > n.ckptPeerBase[from] {
			n.ckptPeerBase[from] = m.Base
		}
		ack.Base = n.ckptSelfBase
		n.maybeTruncateLocked()
	}
	n.mu.Unlock()
	respond(encodeCkptAck(ack))
}

// broadcastCkpt sends one announce to each recipient and folds the acked
// bases back in. Best-effort; the periodic re-announce covers losses.
func (n *Node) broadcastCkpt(members []types.NodeID, body []byte) {
	for _, m := range members {
		if m == n.self {
			continue
		}
		to := m
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx, cancel := context.WithTimeout(n.baseCtx, 500*time.Millisecond)
			defer cancel()
			resp, err := n.peer.Call(ctx, to, body, 0)
			if err != nil {
				return
			}
			if ack, err := decodeCkptAck(resp); err == nil {
				n.noteCkptPeer(to, ack.Config, ack.Base)
			}
		}()
	}
}

// --- producer ---------------------------------------------------------------

// maybeCheckpointLocked starts a checkpoint publication when the applied
// cursor has advanced CheckpointInterval slots past the newest durable
// checkpoint. Caller holds mu (the housekeeping tick).
func (n *Node) maybeCheckpointLocked() {
	if n.opts.NoCheckpoints || n.stopped || !n.initialized || n.ckptPublishing {
		return
	}
	if !n.configs[n.curID].IsMember(n.self) {
		return
	}
	n.ckptTrackLocked()
	if n.appliedSlot < n.ckptSelfBase+types.Slot(n.opts.CheckpointInterval) {
		return
	}
	// Fork under mu + execMu (shared): ApplyBatch holds execMu exclusively,
	// so the fork never observes a half-applied batch. The machine may
	// already contain a batch whose commit (the appliedSlot advance) is
	// still waiting on mu; Base then under-claims by one batch, and
	// replaying those commands over the checkpoint is idempotent through
	// session dedup.
	n.execMu.RLock()
	src := n.machine.ForkSnapshot()
	n.execMu.RUnlock()
	n.ckptPublishing = true
	n.wg.Add(1)
	go n.publishCheckpoint(n.curID, n.appliedSlot, src)
}

// publishCheckpoint serializes a forked checkpoint off the critical path
// (paced like publishSnapshot), persists it commit-ordered over the
// configuration's snapshot namespace, and announces the new base.
func (n *Node) publishCheckpoint(id types.ConfigID, base types.Slot, src statemachine.SnapshotSource) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		n.ckptPublishing = false
		n.mu.Unlock()
	}()
	num := src.NumChunks()
	chunks := make([][]byte, num)
	m := storage.ChunkManifest{Format: src.Format(), Base: base, CRCs: make([]uint32, num)}
	sincePause := 0
	for i := 0; i < num; i++ {
		chunks[i] = src.Chunk(i)
		m.CRCs[i] = storage.ChunkCRC(chunks[i])
		sincePause += len(chunks[i])
		if sincePause >= publishPaceBytes {
			sincePause = 0
			time.Sleep(publishPause)
			if n.ckptAborted(id) {
				return
			}
		}
	}
	if n.ckptAborted(id) {
		return
	}
	if err := storage.WriteChunkedCommit(n.store, snapPrefix(id), m, func(i int) []byte { return chunks[i] }); err != nil {
		n.countViolation()
		return
	}
	n.mu.Lock()
	if n.stopped || n.curID != id {
		n.mu.Unlock()
		return
	}
	n.ckptTrackLocked()
	if base > n.ckptSelfBase {
		n.ckptSelfBase = base
	}
	n.stats.checkpointsPublished++
	body := encodeCkptAnnounce(ckptMsg{Config: id, Base: n.ckptSelfBase})
	members := append([]types.NodeID(nil), n.configs[id].Members...)
	n.maybeTruncateLocked()
	n.mu.Unlock()
	n.broadcastCkpt(members, body)
}

// ckptAborted reports whether a checkpoint publication for id is moot.
func (n *Node) ckptAborted(id types.ConfigID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped || n.curID != id
}

// --- truncation -------------------------------------------------------------

// maybeTruncateLocked releases engine log state below
// min(quorum-th largest checkpoint base, own base) − margin. The self clamp
// keeps restart recovery self-contained; the quorum clamp keeps truncated
// slots fetchable as checkpoints by laggards; the margin keeps a small tail
// of recent slots serveable through the ordinary engine catch-up, so a
// briefly lagging member never pays a full state transfer. Caller holds mu.
func (n *Node) maybeTruncateLocked() {
	if n.opts.NoCheckpoints || n.stopped {
		return
	}
	cfg := n.configs[n.curID]
	run, ok := n.engines[n.curID]
	if !ok || !cfg.IsMember(n.self) {
		return
	}
	n.ckptTrackLocked()
	if n.ckptSelfBase == 0 {
		return
	}
	bases := make([]types.Slot, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		if m == n.self {
			bases = append(bases, n.ckptSelfBase)
		} else {
			bases = append(bases, n.ckptPeerBase[m]) // zero when unknown
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] > bases[j] })
	quorumBase := bases[len(cfg.Members)/2] // quorum-th largest
	floor := quorumBase
	if n.ckptSelfBase < floor {
		floor = n.ckptSelfBase
	}
	margin := types.Slot(n.opts.CheckpointMargin)
	if floor <= margin {
		return
	}
	run.eng.TruncateBelow(floor - margin)
}

// --- catch-up ---------------------------------------------------------------

// maybeCatchupLocked launches a checkpoint catch-up when the engine's
// contiguous decided frontier (one O(1) Progress read, not a slot-by-slot
// probe) is more than CatchupGapSlots ahead of the applied cursor, when a
// peer redirected the engine below its truncation floor, or when the bounded
// decision buffer dropped parked decisions. Caller holds mu.
func (n *Node) maybeCatchupLocked() {
	if n.opts.NoCheckpoints || n.stopped || n.ckptFetching || !n.initialized {
		return
	}
	if n.tick < n.ckptNextFetchTick {
		return
	}
	if !n.configs[n.curID].IsMember(n.self) {
		return
	}
	run, ok := n.engines[n.curID]
	if !ok {
		return
	}
	p := run.eng.Progress()
	var gap types.Slot
	if p.MaxDecidedSeen > n.appliedSlot {
		gap = p.MaxDecidedSeen - n.appliedSlot
	}
	dropped := run.droppedBelow > n.appliedSlot
	if !p.CheckpointNeeded && !dropped && gap < types.Slot(n.opts.CatchupGapSlots) {
		return
	}
	n.ckptFetching = true
	n.wg.Add(1)
	go n.runCheckpointCatchup(n.curID, n.appliedSlot)
}

// catchupAborted reports whether an in-flight checkpoint catch-up is moot.
func (n *Node) catchupAborted(id types.ConfigID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped || n.curID != id || !n.initialized
}

// runCheckpointCatchup fetches the newest checkpoint of id from peers and
// installs it over the running machine. Unlike the joiner's runFetch, the
// node is initialized and serving throughout: chunks are pulled into memory
// only (persisting them incrementally would corrupt the on-disk blob the old
// manifest still describes), the machine swap is epoch-checked, and the
// checkpoint is persisted commit-ordered after the install.
func (n *Node) runCheckpointCatchup(id types.ConfigID, curApplied types.Slot) {
	defer n.wg.Done()
	fruitless := true
	defer func() {
		n.mu.Lock()
		n.ckptFetching = false
		if fruitless {
			n.ckptNextFetchTick = n.tick + ckptFetchCooldownTicks
		}
		n.mu.Unlock()
	}()

	rng := rand.New(rand.NewSource(SeedFor(string(n.self)) ^ (int64(id) << 17) ^ 0x5ca1ab1e))
	n.mu.Lock()
	sources := n.fetchSourcesLocked(id)
	n.mu.Unlock()

	m, lead, ok := n.fetchManifest(id, sources, rng)
	if !ok || m.Base <= curApplied {
		return // no peer holds anything newer than what we applied
	}
	chunks := make([][]byte, m.Chunks())
	for i, data := range lead {
		if i < len(chunks) {
			n.acceptChunk("", m, chunks, nil, i, data)
		}
	}
	abort := func() bool { return n.catchupAborted(id) }
	for attempt := 0; ; {
		if abort() {
			return
		}
		missing := 0
		for _, c := range chunks {
			if c == nil {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if n.fetchMissingChunks(id, "", m, chunks, sources, abort) {
			attempt = 0
			continue
		}
		attempt++
		if attempt > 4 {
			return // sources dried up mid-fetch; a later tick retries
		}
		n.mu.Lock()
		n.stats.chunkRetries++
		n.mu.Unlock()
		delay := BackoffDelay(attempt, n.opts.RetryInterval, 4*n.opts.FetchTimeout, rng)
		select {
		case <-time.After(delay):
		case <-n.stopCh:
			return
		}
		n.mu.Lock()
		sources = n.fetchSourcesLocked(id)
		n.mu.Unlock()
	}
	fruitless = !n.installCheckpoint(id, m, chunks)
}

// installCheckpoint swaps a fully fetched checkpoint in as the machine state
// and jumps the engine's delivery cursor to its base. The O(state) machine
// build runs off-mutex; the swap is re-validated under the lock and bumps the
// epoch so any in-flight off-mutex apply segment against the old machine is
// discarded at its commit check. Reports whether the install happened.
func (n *Node) installCheckpoint(id types.ConfigID, m storage.ChunkManifest, chunks [][]byte) bool {
	fresh, err := n.buildMachine(m, chunks)
	n.mu.Lock()
	if err != nil {
		n.stats.violations++
		n.mu.Unlock()
		return false
	}
	if n.stopped || n.curID != id || !n.initialized || m.Base <= n.appliedSlot {
		n.mu.Unlock()
		return false
	}
	n.machine = fresh
	n.appliedSlot = m.Base
	n.stats.catchupFetches++
	if run, ok := n.engines[id]; ok {
		// Parked decisions at or below Base are folded into the checkpoint;
		// the cursor stale-skip drains them. The engine releases its own
		// records below Base and resumes contiguous delivery above it.
		if run.droppedBelow <= m.Base {
			run.droppedBelow = 0
		}
		run.eng.SkipTo(m.Base)
	}
	n.notifyTransitionLocked()
	n.resubmitPendingLocked(true)
	n.mu.Unlock()

	// Persist what we installed (commit-ordered over the old blob) so a
	// restart recovers from Base instead of a state it no longer has the
	// log for; only then adopt it as our announced durable base.
	if err := storage.WriteChunkedCommit(n.store, snapPrefix(id), m, func(i int) []byte { return chunks[i] }); err != nil {
		n.countViolation()
		return true
	}
	n.mu.Lock()
	if !n.stopped && n.curID == id {
		n.ckptTrackLocked()
		if m.Base > n.ckptSelfBase {
			n.ckptSelfBase = m.Base
		}
	}
	n.mu.Unlock()
	// Nudge the apply loop: buffered decisions above Base may be ready.
	select {
	case n.pumpCh <- struct{}{}:
	default:
	}
	return true
}
