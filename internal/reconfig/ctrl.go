// Package reconfig implements the paper's contribution: a fully
// reconfigurable state machine replication service composed from a chain of
// static, non-reconfigurable SMR engines (internal/paxos), used strictly as
// black boxes.
//
// Each configuration C_i runs its own engine. A reconfiguration is an
// ordinary command in C_i's log; deciding it wedges C_i at that slot,
// determines the unique successor C_{i+1}, and transfers the application
// state (machine + client sessions) at the wedge point into C_{i+1}'s fresh
// engine. Commands decided after the wedge slot in the old engine are not
// applied there — pending proposers re-submit them to the successor, and
// session deduplication makes that re-submission idempotent.
//
// The successor engine starts speculatively: members begin participating in
// leader election and ordering while the snapshot is still being fetched;
// execution (and client replies) waits for the state to be installed.
package reconfig

import (
	"fmt"
	"time"

	"repro/internal/types"
)

// Control stream: all reconfig control-plane RPCs share transport stream 0;
// engine instances use stream = their configuration ID (always >= 1).
const ControlStream uint64 = 0

// Control op codes (first byte of every RPC body). Values start at 1.
const (
	opSubmit      uint8 = 1
	opSubmitReply uint8 = 2
	opLocate      uint8 = 3
	opLocateReply uint8 = 4
	// 5 and 6 were the retired monolithic snapshot transfer (opXfer /
	// opXferReply); the codes stay reserved so mixed-version traffic is
	// recognizably stale instead of misparsed.
	opAnnounce       uint8 = 7
	opAnnounceAck    uint8 = 8
	opReconfig       uint8 = 9
	opReconfReply    uint8 = 10
	opChain          uint8 = 11
	opChainReply     uint8 = 12
	opSnapMeta       uint8 = 13
	opSnapMetaReply  uint8 = 14
	opSnapChunk      uint8 = 15
	opSnapChunkReply uint8 = 16
	// Within-configuration checkpoints (mid-log snapshots): a member that
	// made checkpoint base S durable announces it; the ack carries the
	// receiver's own base, so one exchange teaches both sides. Codecs live
	// in checkpoint.go.
	opCkptAnnounce uint8 = 17
	opCkptAck      uint8 = 18
)

// SubmitStatus describes the outcome of a submit RPC.
type SubmitStatus uint8

const (
	// SubmitApplied means the command executed; Reply carries the result.
	SubmitApplied SubmitStatus = 1
	// SubmitRedirect means this node is not serving the current
	// configuration; Config/Leader hint where to go.
	SubmitRedirect SubmitStatus = 2
	// SubmitBusy means the node shed the command under admission control:
	// its proposal queue is full. The reply's RetryAfter hints how long to
	// back off before retrying (here or at another member).
	SubmitBusy SubmitStatus = 3
)

// String implements fmt.Stringer.
func (s SubmitStatus) String() string {
	switch s {
	case SubmitApplied:
		return "applied"
	case SubmitRedirect:
		return "redirect"
	case SubmitBusy:
		return "busy"
	default:
		return fmt.Sprintf("submit-status(%d)", uint8(s))
	}
}

// ChainRecord links configuration From to its unique successor: the engine
// of From decided the reconfiguration at WedgeSlot, and To is the successor
// configuration. The set of chain records forms the configuration chain.
type ChainRecord struct {
	From        types.ConfigID
	FromMembers []types.NodeID // members of From: where the snapshot lives
	WedgeSlot   types.Slot
	To          types.Config
}

// Equal reports deep equality of chain records.
func (c ChainRecord) Equal(o ChainRecord) bool {
	if c.From != o.From || c.WedgeSlot != o.WedgeSlot || !c.To.Equal(o.To) {
		return false
	}
	if len(c.FromMembers) != len(o.FromMembers) {
		return false
	}
	for i := range c.FromMembers {
		if c.FromMembers[i] != o.FromMembers[i] {
			return false
		}
	}
	return true
}

func (c ChainRecord) encode(w *types.Writer) {
	w.Uvarint(uint64(c.From))
	w.NodeIDs(c.FromMembers)
	w.Uvarint(uint64(c.WedgeSlot))
	c.To.Encode(w)
}

func decodeChainRecordFrom(r *types.Reader) ChainRecord {
	return ChainRecord{
		From:        types.ConfigID(r.Uvarint()),
		FromMembers: r.NodeIDs(),
		WedgeSlot:   types.Slot(r.Uvarint()),
		To:          types.DecodeConfigFrom(r),
	}
}

func encodeChainRecord(c ChainRecord) []byte {
	w := types.NewWriter(32 + 12*len(c.To.Members))
	c.encode(w)
	return w.Bytes()
}

func decodeChainRecord(buf []byte) (ChainRecord, error) {
	r := types.NewReader(buf)
	c := decodeChainRecordFrom(r)
	if err := r.Err(); err != nil {
		return ChainRecord{}, fmt.Errorf("chain record: %w", err)
	}
	if _, err := types.NewConfig(c.To.ID, c.To.Members); err != nil {
		return ChainRecord{}, fmt.Errorf("chain record: %w", err)
	}
	return c, nil
}

// --- submit -----------------------------------------------------------------

type submitReq struct {
	Cmd types.Command
}

func encodeSubmit(m submitReq) []byte {
	w := types.NewWriter(4 + m.Cmd.EncodedSize())
	w.Byte(opSubmit)
	m.Cmd.Encode(w)
	return w.Bytes()
}

type submitReply struct {
	Status SubmitStatus
	Reply  []byte
	Config types.Config // current config hint (always set)
	Leader types.NodeID // leader hint, may be empty
	// RetryAfter is the server's backoff hint on SubmitBusy: how long the
	// shedding node expects its queue to take to drain. Zero otherwise.
	RetryAfter time.Duration
}

func encodeSubmitReply(m submitReply) []byte {
	w := types.NewWriter(36 + len(m.Reply) + 12*len(m.Config.Members))
	w.Byte(opSubmitReply)
	w.Byte(byte(m.Status))
	w.BytesField(m.Reply)
	m.Config.Encode(w)
	w.NodeID(m.Leader)
	w.Uvarint(uint64(m.RetryAfter / time.Microsecond))
	return w.Bytes()
}

func decodeSubmitReply(buf []byte) (submitReply, error) {
	if len(buf) == 0 || buf[0] != opSubmitReply {
		return submitReply{}, fmt.Errorf("%w: not a submit reply", types.ErrCodec)
	}
	r := types.NewReader(buf[1:])
	m := submitReply{
		Status: SubmitStatus(r.Byte()),
		Reply:  r.BytesField(),
		Config: types.DecodeConfigFrom(r),
		Leader: r.NodeID(),
	}
	m.RetryAfter = time.Duration(r.Uvarint()) * time.Microsecond
	if err := r.Err(); err != nil {
		return submitReply{}, fmt.Errorf("submit reply: %w", err)
	}
	return m, nil
}

// --- locate -----------------------------------------------------------------

func encodeLocate() []byte { return []byte{opLocate} }

type locateReply struct {
	Config types.Config
	Wedged bool // the returned config already has a decided successor
	Leader types.NodeID
}

func encodeLocateReply(m locateReply) []byte {
	w := types.NewWriter(24 + 12*len(m.Config.Members))
	w.Byte(opLocateReply)
	m.Config.Encode(w)
	w.Bool(m.Wedged)
	w.NodeID(m.Leader)
	return w.Bytes()
}

func decodeLocateReply(buf []byte) (locateReply, error) {
	if len(buf) == 0 || buf[0] != opLocateReply {
		return locateReply{}, fmt.Errorf("%w: not a locate reply", types.ErrCodec)
	}
	r := types.NewReader(buf[1:])
	m := locateReply{
		Config: types.DecodeConfigFrom(r),
		Wedged: r.Bool(),
		Leader: r.NodeID(),
	}
	if err := r.Err(); err != nil {
		return locateReply{}, fmt.Errorf("locate reply: %w", err)
	}
	return m, nil
}

// --- state transfer ----------------------------------------------------------
//
// A snapshot moves as a manifest (format byte + per-chunk CRC32-C list)
// followed by range-requested chunks. The manifest is the unit of agreement:
// every member of the wedged configuration computes a byte-identical chunk
// sequence, so a joiner can verify chunks pulled from any mix of sources
// against one manifest and resume after a crash from whatever chunks it
// already persisted. Because control-plane dispatch is serialized per
// endpoint, round trips — not bytes — dominate transfer latency under load;
// both replies therefore carry as many chunks as fit in a byte budget: the
// manifest reply piggybacks the leading chunks (one round trip fetches a
// small snapshot outright) and a chunk request names a contiguous range.

type snapMetaReq struct {
	Config types.ConfigID // requesting the initial snapshot OF this config
}

func encodeSnapMeta(m snapMetaReq) []byte {
	w := types.NewWriter(12)
	w.Byte(opSnapMeta)
	w.Uvarint(uint64(m.Config))
	return w.Bytes()
}

type snapMetaReply struct {
	Found  bool
	Format byte       // statemachine.SnapshotFormat*
	Base   types.Slot // log position the snapshot folds in; installer skips slots ≤ Base
	CRCs   []uint32   // CRC32-C per chunk; len is the chunk count
	Chunks [][]byte   // leading chunks 0..len-1, within the range byte budget
}

func encodeSnapMetaReply(m snapMetaReply) []byte {
	sz := 18 + 5*len(m.CRCs)
	for _, c := range m.Chunks {
		sz += 8 + len(c)
	}
	w := types.NewWriter(sz)
	w.Byte(opSnapMetaReply)
	w.Bool(m.Found)
	w.Byte(m.Format)
	w.Uvarint(uint64(m.Base))
	w.Uvarint(uint64(len(m.CRCs)))
	for _, c := range m.CRCs {
		w.Uvarint(uint64(c))
	}
	w.Uvarint(uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		w.BytesField(c)
	}
	return w.Bytes()
}

func decodeSnapMetaReply(buf []byte) (snapMetaReply, error) {
	if len(buf) == 0 || buf[0] != opSnapMetaReply {
		return snapMetaReply{}, fmt.Errorf("%w: not a snap-meta reply", types.ErrCodec)
	}
	r := types.NewReader(buf[1:])
	m := snapMetaReply{
		Found:  r.Bool(),
		Format: r.Byte(),
		Base:   types.Slot(r.Uvarint()),
	}
	cnt := r.Uvarint()
	if r.Err() == nil && cnt > uint64(r.Remaining()) {
		return snapMetaReply{}, fmt.Errorf("%w: snap-meta chunk count", types.ErrCodec)
	}
	m.CRCs = make([]uint32, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		m.CRCs = append(m.CRCs, uint32(r.Uvarint()))
	}
	nc := r.Uvarint()
	if r.Err() == nil && (nc > uint64(len(m.CRCs)) || nc > uint64(r.Remaining())) {
		return snapMetaReply{}, fmt.Errorf("%w: snap-meta piggyback count", types.ErrCodec)
	}
	for i := uint64(0); i < nc && r.Err() == nil; i++ {
		m.Chunks = append(m.Chunks, r.BytesField())
	}
	if err := r.Err(); err != nil {
		return snapMetaReply{}, fmt.Errorf("snap-meta reply: %w", err)
	}
	if r.Remaining() != 0 {
		return snapMetaReply{}, fmt.Errorf("%w: trailing bytes in snap-meta reply", types.ErrCodec)
	}
	return m, nil
}

type snapChunkReq struct {
	Config types.ConfigID
	First  int // first chunk index wanted
	Count  int // how many consecutive chunks (the reply may return fewer)
}

func encodeSnapChunk(m snapChunkReq) []byte {
	w := types.NewWriter(20)
	w.Byte(opSnapChunk)
	w.Uvarint(uint64(m.Config))
	w.Uvarint(uint64(m.First))
	w.Uvarint(uint64(m.Count))
	return w.Bytes()
}

// snapChunkReply carries consecutive chunks starting at the requested First;
// empty means the source has nothing there.
type snapChunkReply struct {
	Chunks [][]byte
}

func encodeSnapChunkReply(m snapChunkReply) []byte {
	sz := 8
	for _, c := range m.Chunks {
		sz += 8 + len(c)
	}
	w := types.NewWriter(sz)
	w.Byte(opSnapChunkReply)
	w.Uvarint(uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		w.BytesField(c)
	}
	return w.Bytes()
}

func decodeSnapChunkReply(buf []byte) (snapChunkReply, error) {
	if len(buf) == 0 || buf[0] != opSnapChunkReply {
		return snapChunkReply{}, fmt.Errorf("%w: not a snap-chunk reply", types.ErrCodec)
	}
	r := types.NewReader(buf[1:])
	var m snapChunkReply
	cnt := r.Uvarint()
	if r.Err() == nil && cnt > uint64(r.Remaining()) {
		return snapChunkReply{}, fmt.Errorf("%w: snap-chunk count", types.ErrCodec)
	}
	for i := uint64(0); i < cnt && r.Err() == nil; i++ {
		m.Chunks = append(m.Chunks, r.BytesField())
	}
	if err := r.Err(); err != nil {
		return snapChunkReply{}, fmt.Errorf("snap-chunk reply: %w", err)
	}
	if r.Remaining() != 0 {
		return snapChunkReply{}, fmt.Errorf("%w: trailing bytes in snap-chunk reply", types.ErrCodec)
	}
	return m, nil
}

// --- announce -----------------------------------------------------------------

type announceMsg struct {
	Record ChainRecord
}

func encodeAnnounce(m announceMsg) []byte {
	w := types.NewWriter(40 + 12*len(m.Record.To.Members))
	w.Byte(opAnnounce)
	m.Record.encode(w)
	return w.Bytes()
}

func encodeAnnounceAck() []byte { return []byte{opAnnounceAck} }

// --- admin reconfigure ----------------------------------------------------------

type reconfigReq struct {
	Members []types.NodeID
}

func encodeReconfigReq(m reconfigReq) []byte {
	w := types.NewWriter(8 + 12*len(m.Members))
	w.Byte(opReconfig)
	w.NodeIDs(m.Members)
	return w.Bytes()
}

type reconfigReply struct {
	OK     bool
	Detail string
	Config types.Config // resulting (or current) configuration
}

func encodeReconfigReply(m reconfigReply) []byte {
	w := types.NewWriter(24 + len(m.Detail) + 12*len(m.Config.Members))
	w.Byte(opReconfReply)
	w.Bool(m.OK)
	w.String(m.Detail)
	m.Config.Encode(w)
	return w.Bytes()
}

func decodeReconfigReply(buf []byte) (reconfigReply, error) {
	if len(buf) == 0 || buf[0] != opReconfReply {
		return reconfigReply{}, fmt.Errorf("%w: not a reconfig reply", types.ErrCodec)
	}
	r := types.NewReader(buf[1:])
	m := reconfigReply{
		OK:     r.Bool(),
		Detail: r.String(),
		Config: types.DecodeConfigFrom(r),
	}
	if err := r.Err(); err != nil {
		return reconfigReply{}, fmt.Errorf("reconfig reply: %w", err)
	}
	return m, nil
}

// --- chain dump -------------------------------------------------------------------

func encodeChainQuery() []byte { return []byte{opChain} }

type chainReply struct {
	Initial types.Config
	Records []ChainRecord
}

func encodeChainReply(m chainReply) []byte {
	w := types.NewWriter(64)
	w.Byte(opChainReply)
	m.Initial.Encode(w)
	w.Uvarint(uint64(len(m.Records)))
	for _, rec := range m.Records {
		rec.encode(w)
	}
	return w.Bytes()
}

func decodeChainReply(buf []byte) (chainReply, error) {
	if len(buf) == 0 || buf[0] != opChainReply {
		return chainReply{}, fmt.Errorf("%w: not a chain reply", types.ErrCodec)
	}
	r := types.NewReader(buf[1:])
	m := chainReply{Initial: types.DecodeConfigFrom(r)}
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()) {
		return chainReply{}, fmt.Errorf("%w: chain record count", types.ErrCodec)
	}
	m.Records = make([]ChainRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Records = append(m.Records, decodeChainRecordFrom(r))
	}
	if err := r.Err(); err != nil {
		return chainReply{}, fmt.Errorf("chain reply: %w", err)
	}
	return m, nil
}
