package reconfig

import (
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

// spareNode builds and starts a stand-alone node with an empty store.
func spareNode(t *testing.T, w *world, id types.NodeID) *Node {
	t.Helper()
	n := w.startNode(id, statemachine.NewCounterMachine)
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	return n
}

func rec(from types.ConfigID, fromMembers []types.NodeID, wedge types.Slot, to types.Config) ChainRecord {
	return ChainRecord{From: from, FromMembers: fromMembers, WedgeSlot: wedge, To: to}
}

func TestAnnounceIdempotent(t *testing.T) {
	w := newWorld(t, transport.Options{})
	n := spareNode(t, w, "x1")
	r := rec(1, []types.NodeID{"a", "b"}, 5, types.MustConfig(2, "a", "x1"))
	n.handleAnnounce(r)
	n.handleAnnounce(r)
	n.handleAnnounce(r)
	if got := n.Stats().InvariantViolations; got != 0 {
		t.Fatalf("idempotent announce counted as violation: %d", got)
	}
	recs := n.ChainRecords()
	if len(recs) != 1 || !recs[0].Equal(r) {
		t.Fatalf("chain: %+v", recs)
	}
	if n.CurrentConfig().ID != 2 {
		t.Fatalf("spare did not adopt: %v", n.CurrentConfig())
	}
}

func TestAnnounceForkDetected(t *testing.T) {
	w := newWorld(t, transport.Options{})
	n := spareNode(t, w, "x1")
	n.handleAnnounce(rec(1, []types.NodeID{"a"}, 5, types.MustConfig(2, "a", "b")))
	// A conflicting successor for the same From is a fork — impossible
	// under agreement, so it must be counted, not adopted.
	n.handleAnnounce(rec(1, []types.NodeID{"a"}, 6, types.MustConfig(2, "a", "c")))
	if got := n.Stats().InvariantViolations; got == 0 {
		t.Fatal("fork not detected")
	}
	recs := n.ChainRecords()
	if len(recs) != 1 || !recs[0].To.IsMember("b") {
		t.Fatalf("original record replaced: %+v", recs)
	}
}

func TestAnnounceOldConfigIgnoredForCursor(t *testing.T) {
	w := newWorld(t, transport.Options{})
	n := spareNode(t, w, "x1")
	n.handleAnnounce(rec(2, []types.NodeID{"a"}, 9, types.MustConfig(3, "a", "x1")))
	if n.CurrentConfig().ID != 3 {
		t.Fatalf("cursor %v", n.CurrentConfig())
	}
	// A record for an OLDER part of the chain fills in history but must
	// not move the cursor backwards.
	n.handleAnnounce(rec(1, []types.NodeID{"z"}, 2, types.MustConfig(2, "a", "z")))
	if n.CurrentConfig().ID != 3 {
		t.Fatalf("cursor moved backwards: %v", n.CurrentConfig())
	}
	if len(n.ChainRecords()) != 2 {
		t.Fatalf("chain: %+v", n.ChainRecords())
	}
}

func TestAnnouncePersistsAcrossRestart(t *testing.T) {
	w := newWorld(t, transport.Options{})
	n := spareNode(t, w, "x1")
	r := rec(1, []types.NodeID{"a"}, 5, types.MustConfig(2, "a", "x1"))
	n.handleAnnounce(r)
	n.Stop()

	n2 := w.startNode("x1", statemachine.NewCounterMachine)
	if err := n2.Start(); err != nil {
		t.Fatal(err)
	}
	if n2.CurrentConfig().ID != 2 {
		t.Fatalf("restart lost announced config: %v", n2.CurrentConfig())
	}
	recs := n2.ChainRecords()
	if len(recs) != 1 || !recs[0].Equal(r) {
		t.Fatalf("restart lost chain record: %+v", recs)
	}
}

// TestGossipRepairsLostAnnounce: even with every announce dropped (the
// spare is isolated during the reconfiguration), gossip alone must
// eventually deliver the chain to a joining member.
func TestGossipRepairsLostAnnounce(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond})
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	w.submit("n1", "c", 1, statemachine.EncodeAdd(3))

	spare := spareNode(t, w, "n4")
	w.net.Isolate("n4") // all announces to n4 will be lost

	ctx, cancel := contextWithTimeout(10 * time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if spare.Serving() {
		t.Fatal("isolated spare is serving")
	}
	w.net.Restore("n4")

	// Gossip must now pull the chain and trigger the join.
	w.waitServing("n4")
	if v := counterValue(t, w.submit("n4", "c", 2, statemachine.EncodeCounterGet())); v != 3 {
		t.Fatalf("joined state %d", v)
	}
	w.checkNoViolations()
}
