package reconfig

import (
	"testing"

	"repro/internal/types"
)

// Fuzz targets for the control-plane wire codecs (wire.go / ctrl.go):
// arbitrary bytes from the network must never panic a node and must either
// fail cleanly or decode to a value that re-encodes consistently. `go test`
// runs the seed corpus; `go test -fuzz=FuzzDecodeSubmitResult
// ./internal/reconfig` explores further.

func FuzzDecodeSubmitResult(f *testing.F) {
	f.Add(EncodeSubmitResult(SubmitResult{
		Status: SubmitApplied,
		Reply:  []byte("reply"),
		Config: types.MustConfig(3, "a", "b", "c"),
		Leader: "a",
	}))
	f.Add(EncodeSubmitResult(SubmitResult{Status: SubmitRedirect}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeSubmitResult(data)
		if err != nil {
			return
		}
		again, err := DecodeSubmitResult(EncodeSubmitResult(res))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Status != res.Status || string(again.Reply) != string(res.Reply) ||
			!again.Config.Equal(res.Config) || again.Leader != res.Leader {
			t.Fatalf("round trip changed: %+v -> %+v", res, again)
		}
	})
}

func FuzzDecodeLocateResult(f *testing.F) {
	f.Add(encodeLocateReply(locateReply{
		Config: types.MustConfig(2, "x", "y"),
		Wedged: true,
		Leader: "y",
	}))
	f.Add([]byte{})
	f.Add([]byte{byte(opLocateReply)})
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeLocateResult(data)
		if err != nil {
			return
		}
		again, err := decodeLocateReply(encodeLocateReply(locateReply{
			Config: res.Config, Wedged: res.Wedged, Leader: res.Leader,
		}))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !again.Config.Equal(res.Config) || again.Wedged != res.Wedged || again.Leader != res.Leader {
			t.Fatalf("round trip changed: %+v -> %+v", res, again)
		}
	})
}

func FuzzDecodeReconfigResult(f *testing.F) {
	f.Add(encodeReconfigReply(reconfigReply{
		OK:     true,
		Config: types.MustConfig(4, "a", "b", "c", "d"),
	}))
	f.Add(encodeReconfigReply(reconfigReply{Detail: "not serving"}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeReconfigResult(data)
		if err != nil {
			return
		}
		again, err := decodeReconfigReply(encodeReconfigReply(reconfigReply{
			OK: res.OK, Detail: res.Detail, Config: res.Config,
		}))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.OK != res.OK || again.Detail != res.Detail || !again.Config.Equal(res.Config) {
			t.Fatalf("round trip changed: %+v -> %+v", res, again)
		}
	})
}

func FuzzDecodeChainResult(f *testing.F) {
	f.Add(encodeChainReply(chainReply{
		Initial: types.MustConfig(1, "a"),
		Records: []ChainRecord{
			{From: 1, WedgeSlot: 12, To: types.MustConfig(2, "a", "b")},
			{From: 2, WedgeSlot: 99, To: types.MustConfig(3, "b", "c")},
		},
	}))
	f.Add([]byte{})
	f.Add([]byte{byte(opChainReply), 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeChainResult(data)
		if err != nil {
			return
		}
		again, err := decodeChainReply(encodeChainReply(chainReply{
			Initial: res.Initial, Records: res.Records,
		}))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Records) != len(res.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(res.Records), len(again.Records))
		}
		for i := range again.Records {
			if !again.Records[i].Equal(res.Records[i]) {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}

func FuzzDecodeChainRecord(f *testing.F) {
	f.Add(encodeChainRecord(ChainRecord{From: 7, WedgeSlot: 42, To: types.MustConfig(8, "p", "q", "r")}))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeChainRecord(data)
		if err != nil {
			return
		}
		again, err := decodeChainRecord(encodeChainRecord(rec))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !again.Equal(rec) {
			t.Fatalf("round trip changed: %+v -> %+v", rec, again)
		}
	})
}

func FuzzDecodeSnapMetaReply(f *testing.F) {
	f.Add(encodeSnapMetaReply(snapMetaReply{
		Found:  true,
		Format: 1,
		CRCs:   []uint32{0xdeadbeef, 0, 42},
		Chunks: [][]byte{[]byte("c0"), []byte("c1")},
	}))
	f.Add(encodeSnapMetaReply(snapMetaReply{}))
	// Non-zero base index (speculative start: the installer sets its apply
	// cursor to Base, so a codec that drops or shifts it is a correctness
	// bug, not just a wire bug).
	f.Add(encodeSnapMetaReply(snapMetaReply{
		Found:  true,
		Format: 2,
		Base:   types.Slot(1 << 33),
		CRCs:   []uint32{7},
	}))
	f.Add(encodeSnapMetaReply(snapMetaReply{Found: true, Base: 1}))
	f.Add([]byte{})
	f.Add([]byte{byte(opSnapMetaReply), 0x01, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeSnapMetaReply(data)
		if err != nil {
			return
		}
		again, err := decodeSnapMetaReply(encodeSnapMetaReply(rep))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Found != rep.Found || again.Format != rep.Format || again.Base != rep.Base ||
			len(again.CRCs) != len(rep.CRCs) || len(again.Chunks) != len(rep.Chunks) {
			t.Fatalf("round trip changed: %+v -> %+v", rep, again)
		}
		for i := range rep.CRCs {
			if again.CRCs[i] != rep.CRCs[i] {
				t.Fatalf("round trip changed CRC %d", i)
			}
		}
		for i := range rep.Chunks {
			if string(again.Chunks[i]) != string(rep.Chunks[i]) {
				t.Fatalf("round trip changed chunk %d", i)
			}
		}
	})
}

func FuzzDecodeCkptAnnounce(f *testing.F) {
	f.Add(encodeCkptAnnounce(ckptMsg{Config: 3, Base: 4096}))
	// Base 0 means "no checkpoint yet" — a codec that turns it into anything
	// else would convince peers a checkpoint is quorum-durable when it isn't.
	f.Add(encodeCkptAnnounce(ckptMsg{Config: 1}))
	f.Add(encodeCkptAnnounce(ckptMsg{Config: 1 << 40, Base: types.Slot(1 << 50)}))
	f.Add([]byte{})
	f.Add([]byte{byte(opCkptAnnounce)})
	f.Add([]byte{byte(opCkptAnnounce), 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeCkptAnnounce(data)
		if err != nil {
			return
		}
		again, err := decodeCkptAnnounce(encodeCkptAnnounce(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != m {
			t.Fatalf("round trip changed: %+v -> %+v", m, again)
		}
	})
}

func FuzzDecodeCkptAck(f *testing.F) {
	f.Add(encodeCkptAck(ckptMsg{Config: 2, Base: 30}))
	f.Add(encodeCkptAck(ckptMsg{}))
	// An ack must never decode as an announce and vice versa: the quorum-base
	// computation treats them asymmetrically (acks feed the truncation floor).
	f.Add(encodeCkptAnnounce(ckptMsg{Config: 9, Base: 9}))
	f.Add([]byte{})
	f.Add([]byte{byte(opCkptAck), 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeCkptAck(data)
		if err != nil {
			return
		}
		again, err := decodeCkptAck(encodeCkptAck(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != m {
			t.Fatalf("round trip changed: %+v -> %+v", m, again)
		}
	})
}

func FuzzDecodeSnapChunkReply(f *testing.F) {
	f.Add(encodeSnapChunkReply(snapChunkReply{Chunks: [][]byte{[]byte("chunk-bytes"), nil, []byte("x")}}))
	f.Add(encodeSnapChunkReply(snapChunkReply{}))
	f.Add([]byte{})
	f.Add([]byte{byte(opSnapChunkReply), 0x01, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeSnapChunkReply(data)
		if err != nil {
			return
		}
		again, err := decodeSnapChunkReply(encodeSnapChunkReply(rep))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Chunks) != len(rep.Chunks) {
			t.Fatalf("round trip changed: %+v -> %+v", rep, again)
		}
		for i := range rep.Chunks {
			if string(again.Chunks[i]) != string(rep.Chunks[i]) {
				t.Fatalf("round trip changed chunk %d", i)
			}
		}
	})
}
