//go:build race

package reconfig

// raceEnabled lets heavyweight chaos tests scale their op targets down when
// the race detector multiplies per-op cost.
const raceEnabled = true
