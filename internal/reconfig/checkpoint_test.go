package reconfig

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// ckptOpts tightens the checkpoint knobs so short tests cross every
// threshold: a checkpoint every 30 applied slots, 5 slots of margin, and a
// catch-up fetch once a member is 50 slots behind.
func ckptOpts(o Options) Options {
	o.CheckpointInterval = 30
	o.CheckpointMargin = 5
	o.CatchupGapSlots = 50
	return o
}

// driveAdds submits count increments of 1 through via, all under one client
// session starting at seq+1, and returns the last sequence used.
func (w *world) driveAdds(via, client types.NodeID, seq uint64, count int) uint64 {
	w.t.Helper()
	for i := 0; i < count; i++ {
		seq++
		w.submit(via, client, seq, statemachine.EncodeAdd(1))
	}
	return seq
}

// waitStat polls until probe returns true.
func (w *world) waitStat(probe func() bool, what string, timeout time.Duration) {
	w.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if probe() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.t.Fatalf("timed out waiting for %s", what)
}

// TestCheckpointProducerPublishesAndTruncates: under steady load every member
// periodically forks and publishes a checkpoint, the quorum exchange drives
// the truncation floor forward, and the engines' retained log stays bounded
// by the interval instead of growing with history.
func TestCheckpointProducerPublishesAndTruncates(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.opts = ckptOpts(w.opts)
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1")

	// Two waves of load with a wait between them: pacing coalesces the
	// publishes within one burst, so a second checkpoint (with an advanced
	// base) proves the producer is periodic, not once-only.
	members := []types.NodeID{"n1", "n2", "n3"}
	const ops = 200
	seq := w.driveAdds("n1", "c1", 0, ops/2)
	w.waitStat(func() bool {
		for _, id := range members {
			if w.node(id).Stats().CheckpointsPublished < 1 {
				return false
			}
		}
		return true
	}, "first checkpoint wave", 15*time.Second)
	firstBase := w.node("n1").Stats().CheckpointBase
	w.driveAdds("n1", "c1", seq, ops/2)
	w.waitStat(func() bool {
		for _, id := range members {
			st := w.node(id).Stats()
			if st.CheckpointsPublished < 2 || st.TruncatedSlots == 0 || st.CheckpointBase <= firstBase {
				return false
			}
		}
		return true
	}, "every member to re-checkpoint past the first base and truncate", 15*time.Second)

	for _, id := range members {
		st := w.node(id).Stats()
		if st.CheckpointBase == 0 {
			t.Errorf("%s: no durable checkpoint base", id)
		}
		// The retained log is bounded by interval + margin plus whatever was
		// applied since the last floor advance — far below total history.
		if st.RetainedSlots > int64(2*w.opts.CheckpointInterval+w.opts.CheckpointMargin) {
			t.Errorf("%s: retains %d slots, interval is %d", id, st.RetainedSlots, w.opts.CheckpointInterval)
		}
		// The durable blob under the config's snapshot prefix must now be the
		// checkpoint, not the empty bootstrap snapshot.
		m, _, complete, err := storage.ReadChunked(w.stores[id], snapPrefix(1))
		if err != nil || !complete {
			t.Errorf("%s: checkpoint blob unreadable (complete=%v err=%v)", id, complete, err)
		} else if m.Base == 0 {
			t.Errorf("%s: snapshot prefix still holds the base-0 bootstrap snapshot", id)
		}
	}

	// The state is intact: one more add observes all prior increments.
	if v := counterValue(t, w.submit("n2", "c1", ops+1, statemachine.EncodeAdd(1))); v != ops+1 {
		t.Fatalf("counter=%d, want %d", v, ops+1)
	}
	w.checkNoViolations()
}

// TestCheckpointCatchupClosesGap: a member cut off while the others decide
// far past it (and truncate the slots it is missing) recovers by fetching
// the newest checkpoint — not by log replay, which truncation made
// impossible — and converges to the correct state.
func TestCheckpointCatchupClosesGap(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.opts = ckptOpts(w.opts)
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1")

	w.net.Isolate("n3")
	const ops = 250
	w.driveAdds("n1", "c1", 0, ops)

	// Survivors must have truncated past n3's position before the heal, so
	// the only way back is the checkpoint.
	w.waitStat(func() bool {
		for _, id := range []types.NodeID{"n1", "n2"} {
			if w.node(id).Stats().TruncatedSlots == 0 {
				return false
			}
		}
		return true
	}, "survivors to truncate", 15*time.Second)
	_, tip := w.node("n1").AppliedSlot()
	_, lag := w.node("n3").AppliedSlot()
	if lag >= tip {
		t.Fatalf("victim applied %d, survivors %d; no gap to close", lag, tip)
	}

	w.net.Restore("n3")
	w.waitStat(func() bool {
		_, s := w.node("n3").AppliedSlot()
		return s >= tip
	}, "victim to catch up", 20*time.Second)
	if f := w.node("n3").Stats().CatchupFetches; f == 0 {
		t.Fatal("victim caught up without a checkpoint fetch; the ablation path ran instead")
	}

	// The caught-up member serves with the exact state: its counter reflects
	// every increment once.
	if v := counterValue(t, w.submit("n3", "c1", ops+1, statemachine.EncodeAdd(1))); v != ops+1 {
		t.Fatalf("counter=%d after catch-up, want %d", v, ops+1)
	}
	w.checkNoViolations()
}

// TestTornCheckpointManifestFallsBackToReplay: a member whose durable
// checkpoint manifest is corrupted on disk must not brick on restart. Its
// log was never truncated (margin larger than history), so recovery falls
// back to the empty machine plus full log replay and reproduces the state.
func TestTornCheckpointManifestFallsBackToReplay(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.opts = ckptOpts(w.opts)
	w.opts.CheckpointMargin = 100000 // floor - margin <= 0: no truncation ever
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1")

	const ops = 100
	w.driveAdds("n1", "c1", 0, ops)
	w.waitStat(func() bool {
		return w.node("n3").Stats().CheckpointsPublished > 0
	}, "victim to publish a checkpoint", 15*time.Second)
	_, tip := w.node("n1").AppliedSlot()

	w.stopNode("n3")
	// Torn write: the manifest bytes are garbage.
	if err := w.stores["n3"].Set(storage.ManifestKey(snapPrefix(1)), []byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	n3 := w.startNode("n3", statemachine.NewCounterMachine)
	if err := n3.Start(); err != nil {
		t.Fatal(err)
	}
	w.waitStat(func() bool {
		_, s := n3.AppliedSlot()
		return s >= tip
	}, "restarted victim to replay the log", 20*time.Second)
	if v := counterValue(t, w.submit("n3", "c1", ops+1, statemachine.EncodeAdd(1))); v != ops+1 {
		t.Fatalf("counter=%d after torn-manifest replay, want %d", v, ops+1)
	}
	w.checkNoViolations()
}

// TestTornManifestAfterTruncationRefetches: same torn manifest, but the
// member's own log HAS been truncated — replay from slot 1 is impossible, so
// the node must come up uninitialized and refetch the newest checkpoint from
// its peers before serving again.
func TestTornManifestAfterTruncationRefetches(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.opts = ckptOpts(w.opts)
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1")

	const ops = 200
	w.driveAdds("n1", "c1", 0, ops)
	w.waitStat(func() bool {
		return w.node("n3").Stats().TruncatedSlots > 0
	}, "victim to truncate its own log", 15*time.Second)
	_, tip := w.node("n1").AppliedSlot()

	w.stopNode("n3")
	if err := w.stores["n3"].Set(storage.ManifestKey(snapPrefix(1)), []byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	n3 := w.startNode("n3", statemachine.NewCounterMachine)
	if err := n3.Start(); err != nil {
		t.Fatal(err)
	}
	w.waitStat(func() bool {
		_, s := n3.AppliedSlot()
		return s >= tip
	}, "restarted victim to refetch a checkpoint", 20*time.Second)
	if n3.Stats().SnapshotsFetched == 0 && n3.Stats().CatchupFetches == 0 {
		t.Fatal("victim recovered without fetching; truncated-log replay should be impossible")
	}
	if v := counterValue(t, w.submit("n3", "c1", ops+1, statemachine.EncodeAdd(1))); v != ops+1 {
		t.Fatalf("counter=%d after refetch, want %d", v, ops+1)
	}
	w.checkNoViolations()
}

// TestNoCheckpointsAblationNeverTruncates: with NoCheckpoints set, the
// producer, truncation and catch-up paths all stay cold and the full log is
// retained — the K1 ablation contract.
func TestNoCheckpointsAblationNeverTruncates(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.opts = ckptOpts(w.opts)
	w.opts.NoCheckpoints = true
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1")

	const ops = 120
	w.driveAdds("n1", "c1", 0, ops)
	// Give housekeeping ample ticks to (wrongly) trigger anything.
	time.Sleep(200 * time.Millisecond)
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		st := w.node(id).Stats()
		if st.CheckpointsPublished != 0 || st.TruncatedSlots != 0 || st.CatchupFetches != 0 {
			t.Errorf("%s: checkpoint machinery ran under NoCheckpoints: %+v", id, st)
		}
		if st.RetainedSlots < int64(ops) {
			t.Errorf("%s: retains only %d slots; ablation must keep the full log", id, st.RetainedSlots)
		}
	}
	w.checkNoViolations()
}

// TestRestartReplayFloodSurvivesSmallBuffer pins the restart-recovery flood
// against the bounded decision buffer: at startup the engine redelivers its
// whole retained log in one burst, far faster than the apply stage drains
// it. The buffer must treat that contiguous backlog as working set, not as
// parked decisions — dropping its head cuts an unfillable gap right in
// front of the apply cursor (delivery is once-only), which with catch-up
// disabled (NoCheckpoints) is a permanent wedge. Regression for a K1
// failure: the full-replay arm's victim recovered 51k decisions, dropped
// everything past the 16384-slot cap, and stalled forever.
func TestRestartReplayFloodSurvivesSmallBuffer(t *testing.T) {
	w := newWorld(t, transport.Options{})
	w.opts = ckptOpts(w.opts)
	w.opts.NoCheckpoints = true
	w.opts.DecisionBuffer = 32 // far below the replayed log length
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	w.waitServing("n1")

	const ops = 500
	w.driveAdds("n1", "c1", 0, ops)
	w.waitStat(func() bool {
		_, a := w.node("n3").AppliedSlot()
		_, lead := w.node("n1").AppliedSlot()
		return a >= lead && a > 0
	}, "n3 to apply everything", 15*time.Second)
	_, tip := w.node("n3").AppliedSlot()

	w.stopNode("n3")
	n3 := w.startNode("n3", statemachine.NewCounterMachine)
	if err := n3.Start(); err != nil {
		t.Fatal(err)
	}
	w.waitStat(func() bool {
		_, a := n3.AppliedSlot()
		return a >= tip
	}, "restart replay to re-apply the full log", 20*time.Second)
	if drops := n3.Stats().DecisionBufferDrops; drops != 0 {
		t.Errorf("restart replay dropped %d contiguous backlog decisions", drops)
	}
	// The replayed state is exact: one Get answered by n3's own machine.
	reply := w.submit("n3", "probe", 1, statemachine.EncodeCounterGet())
	if got := counterValue(t, reply); got != ops {
		t.Errorf("counter after restart replay = %d, want %d", got, ops)
	}
	w.checkNoViolations()
}

// TestDecisionBufferBoundedUnderSpeculativeTransfer: a joiner that orders
// decisions speculatively while its snapshot transfer drags must not buffer
// them without bound. While the node cannot apply (parked decisions), the
// buffer stays within the configured cap; once initialized, the only burst
// beyond the cap is the contiguous catch-up tail, itself bounded by what the
// engines retain under truncation. Whether or not drops occurred the joiner
// converges to the correct state — dropped slots are re-covered by a
// checkpoint fetch.
func TestDecisionBufferBoundedUnderSpeculativeTransfer(t *testing.T) {
	w := newWorld(t, transport.Options{
		BaseLatency: 200 * time.Microsecond,
		Jitter:      100 * time.Microsecond,
		Seed:        7,
	})
	w.opts = ckptOpts(w.opts)
	w.opts.DecisionBuffer = 24
	w.bootstrap(statemachine.NewCounterMachine, "n1", "n2", "n3")
	s1 := w.startNode("s1", statemachine.NewCounterMachine)
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	w.waitServing("n1")

	// Preload enough state that s1's snapshot transfer is not instant.
	const big = 1 << 20
	w.submit("n1", "pre", 1, statemachine.EncodeAdd(1))
	_ = big

	// Background load keeps deciding while the membership changes under it.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var sent uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := w.node("n1").Submit(ctx, "bg", seq, statemachine.EncodeAdd(1))
			cancel()
			if err != nil {
				seq-- // retry the same sequence; dedup makes it safe
				time.Sleep(2 * time.Millisecond)
				continue
			}
			sent = seq
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "s1"}); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()
	w.waitServing("s1")

	// Let the new configuration decide a while, then stop and converge.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	total := sent + 1 // background adds + the preload add

	w.waitStat(func() bool {
		c1, a1 := w.node("n1").AppliedSlot()
		cs, as := s1.AppliedSlot()
		return c1 == cs && as >= a1
	}, "joiner to converge with the leader", 20*time.Second)

	// Cap, plus the post-install contiguous replay tail (exempt from drops;
	// bounded by the retained engine log under truncation), plus slack.
	lim := int64(w.opts.DecisionBuffer + 2*w.opts.CheckpointInterval + w.opts.CheckpointMargin + w.opts.CatchupGapSlots)
	for _, id := range []types.NodeID{"n1", "n2", "n3", "s1"} {
		st := w.node(id).Stats()
		if st.DecisionBufferHigh > lim {
			t.Errorf("%s: decision buffer high-water %d exceeds bound %d", id, st.DecisionBufferHigh, lim)
		}
	}
	// The converged joiner holds the exact state: every background add
	// applied exactly once.
	if v := counterValue(t, w.submit("s1", "chk", 1, statemachine.EncodeCounterGet())); v != total {
		t.Fatalf("counter=%d on joiner, want %d", v, total)
	}
	w.checkNoViolations()
}
