package reconfig

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

// Fault-tolerance tests for chunked state transfer: a joiner must survive a
// poisoned source (per-chunk CRC) and the death of its only serving source
// mid-transfer (resume from persisted chunks against other members).

// setChunkHook installs a served-chunk interceptor on a node.
func setChunkHook(n *Node, hook func(id types.ConfigID, idx int, data []byte) []byte) {
	n.mu.Lock()
	n.testChunkHook = hook
	n.mu.Unlock()
}

// seedState writes enough KV data that the snapshot spans several range
// round trips (valueBytes per key, keys spread across all shards).
func seedState(t *testing.T, w *world, via types.NodeID, keys, valueBytes int) {
	t.Helper()
	val := bytes.Repeat([]byte("v"), valueBytes)
	for i := 0; i < keys; i++ {
		w.submit(via, "seeder", uint64(i+1), statemachine.EncodePut(fmt.Sprintf("key-%04d", i), val))
	}
}

func checkKey(t *testing.T, w *world, via types.NodeID, seq uint64, key string, wantLen int) {
	t.Helper()
	reply := w.submit(via, "checker", seq, statemachine.EncodeGet(key))
	if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
		t.Fatalf("get %s via %s: status %v", key, via, statemachine.ReplyStatus(reply))
	}
	if got := len(statemachine.ReplyPayload(reply)); got != wantLen {
		t.Fatalf("get %s via %s: %d bytes, want %d", key, via, got, wantLen)
	}
}

// TestTransferRejectsCorruptChunk poisons the first wire copy of one chunk:
// every source corrupts chunk 3 exactly once (shared across nodes), so the
// joiner is guaranteed to see at least one corrupt copy no matter which
// source it picks first. The per-chunk CRC must discard exactly that copy —
// the retry fetches a clean one and the install must be byte-correct.
func TestTransferRejectsCorruptChunk(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 11})
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	seedState(t, w, "n1", 64, 1024)

	var poisonOnce sync.Once
	corrupt := func(id types.ConfigID, idx int, data []byte) []byte {
		if idx != 3 {
			return data
		}
		out := data
		poisonOnce.Do(func() {
			bad := append([]byte(nil), data...)
			if len(bad) == 0 {
				bad = []byte{0xff}
			} else {
				bad[0] ^= 0xff
			}
			out = bad
		})
		return out
	}
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), corrupt)
	}

	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	w.waitServing("n4")

	st := w.node("n4").Stats()
	if st.ChunkCRCRejected == 0 {
		t.Fatal("corrupt chunk was never rejected: the CRC check did not run")
	}
	if st.SnapshotsFetched != 1 {
		t.Fatalf("snapshot installs = %d, want 1", st.SnapshotsFetched)
	}
	// The rejected copy must not have poisoned the install.
	checkKey(t, w, "n4", 1, "key-0000", 1024)
	checkKey(t, w, "n4", 2, "key-0063", 1024)
	w.checkNoViolations()
}

// TestTransferResumesAfterSourceDies isolates a joiner so exactly one member
// can serve it, kills that member once a partial transfer is through, then
// heals the network: the joiner must finish from the surviving members,
// fetching only the chunks it does not already hold.
func TestTransferResumesAfterSourceDies(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 13})
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	// ~2MB of state: the snapshot spans many rangeBudget-sized round trips.
	seedState(t, w, "n1", 512, 4096)

	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	// n4 can only talk to n1.
	w.net.BlockLink("n4", "n2")
	w.net.BlockLink("n4", "n3")

	// n1 stops serving chunks (replies never sent) after ~a third of the
	// snapshot is through, and signals the test.
	const serveLimit = 12
	served := 0
	var mu sync.Mutex
	stalled := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	setChunkHook(w.node("n1"), func(id types.ConfigID, idx int, data []byte) []byte {
		mu.Lock()
		served++
		hit := served == serveLimit
		over := served > serveLimit
		mu.Unlock()
		if hit {
			close(stalled)
		}
		if hit || over {
			<-block // hold the reply hostage: n1 has effectively died
		}
		return data
	})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stalled:
	case <-time.After(15 * time.Second):
		t.Fatal("transfer never reached the serve limit")
	}
	// Kill the only source, then let the joiner reach the survivors.
	w.net.Endpoint("n1").Pause()
	w.net.UnblockLink("n4", "n2")
	w.net.UnblockLink("n4", "n3")
	w.waitServing("n4")

	st := w.node("n4").Stats()
	total := 1 + 32 // session chunk + KV shards
	if st.SnapshotsFetched != 1 {
		t.Fatalf("snapshot installs = %d, want 1", st.SnapshotsFetched)
	}
	if st.ChunksFetched != int64(total) {
		t.Fatalf("chunks fetched = %d, want exactly %d (each chunk once)", st.ChunksFetched, total)
	}
	// The survivors must have served only the remainder — the joiner resumed
	// rather than restarting the transfer.
	fromSurvivors := w.node("n2").Stats().ChunksServed + w.node("n3").Stats().ChunksServed
	if fromSurvivors >= int64(total) {
		t.Fatalf("survivors served %d chunks; a resumed transfer needs fewer than %d", fromSurvivors, total)
	}
	checkKey(t, w, "n4", 1, "key-0000", 4096)
	checkKey(t, w, "n4", 2, "key-0511", 4096)
	w.checkNoViolations()
}

// TestTransferResumesAcrossJoinerCrash crashes the *joiner* mid-transfer:
// after restart it must adopt the chunks it already persisted and fetch only
// the rest.
func TestTransferResumesAcrossJoinerCrash(t *testing.T) {
	w := newWorld(t, transport.Options{BaseLatency: 100 * time.Microsecond, Seed: 17})
	w.bootstrap(statemachine.NewKVMachine, "n1", "n2", "n3")
	w.waitServing("n1", "n2", "n3")
	seedState(t, w, "n1", 512, 4096)

	spare := w.startNode("n4", statemachine.NewKVMachine)
	if err := spare.Start(); err != nil {
		t.Fatal(err)
	}
	// Every member stalls after collectively serving a partial snapshot, so
	// the crash below is guaranteed to interrupt an incomplete transfer.
	const serveLimit = 12
	served := 0
	var mu sync.Mutex
	stalled := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	hook := func(id types.ConfigID, idx int, data []byte) []byte {
		mu.Lock()
		served++
		hit := served == serveLimit
		over := served > serveLimit
		mu.Unlock()
		if hit {
			close(stalled)
		}
		if hit || over {
			<-block
		}
		return data
	}
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), hook)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := w.node("n1").Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stalled:
	case <-time.After(15 * time.Second):
		t.Fatal("transfer never reached the serve limit")
	}

	before := w.node("n4").Stats().ChunksFetched
	if before == 0 {
		t.Fatal("joiner persisted nothing before the crash; test proves nothing")
	}
	restarted := w.crashRestart("n4", statemachine.NewKVMachine)
	for _, id := range []types.NodeID{"n1", "n2", "n3"} {
		setChunkHook(w.node(id), nil) // sources behave again
	}
	w.waitServing("n4")

	total := int64(1 + 32)
	after := restarted.Stats().ChunksFetched
	if after >= total {
		t.Fatalf("restarted joiner fetched %d chunks; resuming from its store needs fewer than %d", after, total)
	}
	checkKey(t, w, "n4", 1, "key-0000", 4096)
	checkKey(t, w, "n4", 2, "key-0511", 4096)
	w.checkNoViolations()
}
