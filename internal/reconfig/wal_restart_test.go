package reconfig

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// TestWALCrashRestartNoLossNoDoubleApply runs counter increments against a
// 3-node cluster whose acceptors persist through the wal backend, SIGKILLs
// replicas mid-instance (stop the node, close the store handle, reopen over
// the same StorageDir) — including the current leader — and then asserts the
// exact-count invariant: the counter equals the number of acknowledged
// increments on every member. A lost decided command would leave the counter
// low; a double-applied one (e.g. a replayed WAL entry re-executing a
// session) would leave it high.
func TestWALCrashRestartNoLossNoDoubleApply(t *testing.T) {
	seed := chaosSeed(t, 808)
	w := newWorld(t, transport.Options{
		BaseLatency: 100 * time.Microsecond,
		Jitter:      200 * time.Microsecond,
		Seed:        seed,
	})
	dir := t.TempDir()
	w.newStore = func(id types.NodeID) storage.Store {
		st, err := storage.OpenWALStore(filepath.Join(dir, string(id)), storage.WALStoreOptions{SyncWrites: true})
		if err != nil {
			t.Fatalf("open wal store for %s: %v", id, err)
		}
		return st
	}
	members := []types.NodeID{"n1", "n2", "n3"}
	w.bootstrap(statemachine.NewCounterMachine, members...)
	w.waitServing(members...)

	// One loader client; each Add(1) is retried under the same seq until
	// acknowledged, so the acknowledged seq counts applied increments.
	op := statemachine.EncodeAdd(1)
	stop := make(chan struct{})
	var mu sync.Mutex
	var inflight, ackedThrough uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			inflight = seq
			mu.Unlock()
			via := members[int(seq)%len(members)]
			node := w.node(via)
			if node == nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			_, err := node.Submit(ctx, "wal-loader", seq, op)
			cancel()
			if err == nil {
				mu.Lock()
				ackedThrough = seq
				mu.Unlock()
				seq++
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	// Kill a follower, then whoever leads, then another replica — each
	// restart recovers from its own WAL directory.
	victims := []types.NodeID{"n2", "", "n3"}
	for _, v := range victims {
		if v == "" {
			cluster := &linCluster{w: w, pool: members, factory: statemachine.NewCounterMachine}
			if v = cluster.Leader(); v == "" {
				v = "n1"
			}
		}
		w.crashRestart(v, statemachine.NewCounterMachine)
		w.waitServing(v)
		time.Sleep(150 * time.Millisecond)
	}

	close(stop)
	wg.Wait()

	// Drive the possibly-in-flight last increment to completion (dedup
	// makes the retry exact-once), so the expected count is unambiguous.
	mu.Lock()
	pending, acked := inflight, ackedThrough
	mu.Unlock()
	if pending > acked {
		w.submit("n1", "wal-loader", pending, op)
		acked = pending
	}
	if acked == 0 {
		t.Fatal("no increments acknowledged; test proved nothing")
	}

	// Every member must converge to exactly `acked`. Each probe uses a
	// fresh seq — a reused seq would be answered from the session cache.
	probe := uint64(1)
	for _, id := range members {
		deadline := time.Now().Add(10 * time.Second)
		for {
			v := counterValue(t, w.submit(id, "wal-check", probe, statemachine.EncodeCounterGet()))
			probe++
			if v == acked {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s: counter %d != acked %d (lost or double-applied)", id, v, acked)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	t.Logf("wal crash-restart survived: %d increments, 3 kills, counter exact on all members", acked)
	w.checkNoViolations()
}
