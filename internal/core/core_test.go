package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// TestCoreFacade exercises the contribution through its canonical import
// path: boot a single-node service via core aliases, write, reconfigure.
func TestCoreFacade(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()

	mk := func(id types.NodeID) *core.Node {
		n, err := core.NewNode(core.NodeConfig{
			Self:     id,
			Endpoint: net.Endpoint(id),
			Store:    storage.NewMem(),
			Factory:  statemachine.NewCounterMachine,
			Opts: core.Options{
				RetryInterval: 10 * time.Millisecond,
				LingerOld:     200 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1 := mk("n1")
	defer n1.Stop()
	if err := n1.Bootstrap(types.MustConfig(1, "n1")); err != nil {
		t.Fatal(err)
	}
	if err := n1.Start(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := n1.WaitServing(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Submit(ctx, "c", 1, statemachine.EncodeAdd(2)); err != nil {
		t.Fatal(err)
	}

	n2 := mk("n2")
	defer n2.Stop()
	if err := n2.Start(); err != nil {
		t.Fatal(err)
	}
	cfg, err := n1.Reconfigure(ctx, []types.NodeID{"n1", "n2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID != 2 {
		t.Fatalf("cfg %v", cfg)
	}
	if err := n2.WaitServing(ctx); err != nil {
		t.Fatal(err)
	}
	reply, err := n2.Submit(ctx, "c", 2, statemachine.EncodeCounterGet())
	if err != nil {
		t.Fatal(err)
	}
	v, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(reply))
	if v != 2 {
		t.Fatalf("value %d", v)
	}

	// Error aliases resolve to the implementation's values.
	if core.ErrNotServing == nil || core.ErrConflict == nil || core.ErrStopped == nil || core.ErrNotBootstrapped == nil {
		t.Fatal("error aliases nil")
	}
	if core.SubmitApplied.String() != "applied" {
		t.Fatal("status alias broken")
	}
}
