// Package core is the façade for the paper's primary contribution — the
// reconfigurable state machine replication layer composed from static,
// non-reconfigurable consensus engines. The implementation lives in
// internal/reconfig; this package re-exports its public surface under the
// repository layout's canonical name so that readers can start here.
//
// Layering:
//
//	client  ──RPC──▶  core/reconfig.Node  ──drives──▶  paxos.Replica (one per configuration)
//	                        │                              │
//	                   statemachine.Sessioned          transport + storage
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// evaluation.
package core

import (
	"repro/internal/reconfig"
)

// Node is the reconfigurable SMR runtime for one process.
type Node = reconfig.Node

// NodeConfig wires a Node to its substrate.
type NodeConfig = reconfig.NodeConfig

// Options tunes the composition layer.
type Options = reconfig.Options

// NodeStats is a snapshot of a node's counters.
type NodeStats = reconfig.NodeStats

// ChainRecord links a configuration to its unique successor.
type ChainRecord = reconfig.ChainRecord

// SubmitStatus describes the outcome of a submit RPC.
type SubmitStatus = reconfig.SubmitStatus

// Submit statuses.
const (
	SubmitApplied  = reconfig.SubmitApplied
	SubmitRedirect = reconfig.SubmitRedirect
	SubmitBusy     = reconfig.SubmitBusy
)

// ControlStream is the transport stream of the control plane.
const ControlStream = reconfig.ControlStream

// Errors re-exported from the implementation package.
var (
	ErrNotServing      = reconfig.ErrNotServing
	ErrConflict        = reconfig.ErrConflict
	ErrStopped         = reconfig.ErrStopped
	ErrNotBootstrapped = reconfig.ErrNotBootstrapped
)

// NewNode constructs a Node; see reconfig.NewNode.
func NewNode(nc NodeConfig) (*Node, error) { return reconfig.NewNode(nc) }
