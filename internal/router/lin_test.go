package router_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/router"
	"repro/internal/statemachine"
	"repro/internal/types"
)

// chaosSeed mirrors the reconfig chaos harness: deterministic default,
// overridable with CHAOS_SEED for reproduction.
func chaosSeed(t *testing.T, def int64) int64 {
	t.Helper()
	seed := def
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("seed %d (rerun with CHAOS_SEED=%d)", seed, seed)
	return seed
}

// TestLinearizabilityShardedReconfig is the multi-shard chaos case: routed
// KV clients run against four groups while a nemesis concurrently
// reconfigures two shards' groups at a time onto randomly drawn member sets
// (migration-via-reconfiguration, the primary path — state and sessions
// travel with each group via chunked snapshot transfer). The full routed
// history must stay linearizable per key.
func TestLinearizabilityShardedReconfig(t *testing.T) {
	seed := chaosSeed(t, 404)
	rounds := 6
	if testing.Short() {
		rounds = 3
	}

	m := cluster.NewGroupManager(cluster.Config{
		Node:    cluster.FastOptions(),
		Factory: statemachine.NewKVMachine,
	})
	defer m.Close()

	gids := []types.GroupID{1, 2, 3, 4}
	smap, err := router.SplitShards(gids)
	if err != nil {
		t.Fatal(err)
	}
	home := []types.NodeID{"p1", "p2", "p3"}
	pool := []types.NodeID{"p1", "p2", "p3", "q1", "q2", "q3"}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	for _, gid := range gids {
		if err := m.CreateGroup(gid, home, router.PartitionedFactory(smap.ShardsOf(gid), smap.Gen)); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			t.Fatal(err)
		}
	}
	ctl := router.NewController(m, smap)
	rt := router.New(m, ctl)

	// Routed clients: each keeps one (client, seq) pending until acknowledged;
	// the recorder spans the retries so ops applied during timeout windows
	// stay checkable. Keys are few so the register model sees real contention.
	vals := make([][]byte, 6)
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	genOp := func(rng *rand.Rand) (string, []byte) {
		key := fmt.Sprintf("k%d", rng.Intn(8))
		switch rng.Intn(10) {
		case 0, 1, 2:
			return key, statemachine.EncodePut(key, vals[rng.Intn(len(vals))])
		case 3, 4, 5:
			return key, statemachine.EncodeGet(key)
		case 6:
			return key, statemachine.EncodeDelete(key)
		case 7, 8:
			return key, statemachine.EncodeAppend(key, []byte{byte('a' + rng.Intn(4))})
		default:
			return key, statemachine.EncodeCAS(key, vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
		}
	}
	rec := history.New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const clients = 4
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*997 + int64(g)))
			client := types.NodeID(fmt.Sprintf("rc%d", g))
			seq := uint64(1)
			key, op := genOp(rng)
			h := rec.Invoke(client, seq, op)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sctx, scancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				reply, err := rt.Submit(sctx, client, seq, key, op)
				scancel()
				if err != nil {
					continue // same seq; session dedup makes the retry safe
				}
				rec.Ok(h, reply)
				seq++
				key, op = genOp(rng)
				h = rec.Invoke(client, seq, op)
			}
		}(g)
	}

	// Nemesis: each round draws two distinct groups and reconfigures them
	// CONCURRENTLY onto random 3-of-6 member sets. Both shards' keyspaces are
	// in flight at once — the case where a cross-group ordering bug in the
	// shared transport/WAL would surface.
	nemRng := rand.New(rand.NewSource(seed * 31))
	drawMembers := func() []types.NodeID {
		perm := nemRng.Perm(len(pool))
		out := make([]types.NodeID, 3)
		for i := range out {
			out[i] = pool[perm[i]]
		}
		return out
	}
	moved := 0
	for round := 0; round < rounds; round++ {
		i := nemRng.Intn(len(gids))
		j := (i + 1 + nemRng.Intn(len(gids)-1)) % len(gids)
		ga, gb := gids[i], gids[j]
		ma, mb := drawMembers(), drawMembers()
		t.Logf("nemesis round %d: move group %d -> %v || group %d -> %v", round, ga, ma, gb, mb)
		var nwg sync.WaitGroup
		var mu sync.Mutex
		for _, mv := range []struct {
			gid     types.GroupID
			members []types.NodeID
		}{{ga, ma}, {gb, mb}} {
			nwg.Add(1)
			go func(gid types.GroupID, members []types.NodeID) {
				defer nwg.Done()
				rctx, rcancel := context.WithTimeout(ctx, 20*time.Second)
				defer rcancel()
				if err := ctl.MoveGroup(rctx, gid, members); err != nil {
					t.Logf("round %d: move group %d: %v", round, gid, err)
					return
				}
				mu.Lock()
				moved++
				mu.Unlock()
			}(mv.gid, mv.members)
		}
		nwg.Wait()
	}
	if moved < rounds {
		t.Fatalf("only %d successful concurrent moves over %d rounds; seed %d", moved, rounds, seed)
	}

	// Keep the load going until enough ops acknowledged for a meaningful check.
	minOk := 150 * clients
	floor := time.Now().Add(45 * time.Second)
	for {
		ok, _, _ := rec.Counts()
		if ok >= minOk || time.Now().After(floor) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	rec.Drain()

	ops := rec.Ops()
	okN, infoN, failN := rec.Counts()
	t.Logf("history: %d ops (%d ok, %d info, %d fail); %d group moves", len(ops), okN, infoN, failN, moved)
	if okN < minOk {
		t.Fatalf("only %d acknowledged ops (wanted >= %d); seed %d", okN, minOk, seed)
	}
	res := lincheck.CheckHistory(lincheck.RegisterModel(), ops, lincheck.Options{Timeout: 25 * time.Second})
	t.Logf("lincheck: %d ops in %d partition(s) checked in %s", res.Ops, res.Partitions, res.Elapsed)
	if res.Unknown {
		t.Fatalf("checker exceeded its budget (seed %d)", seed)
	}
	if !res.Ok {
		t.Fatalf("history is NOT linearizable (seed %d):\n%s", seed, res.Counterexample)
	}
	if m.TotalViolations() != 0 {
		t.Fatalf("invariant violations (seed %d)", seed)
	}
}
