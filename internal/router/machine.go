// Package router implements keyspace scale-out over the multi-group runtime:
// a hash-partitioned KV router with a generation-stamped shard map, a
// partition-aware replicated machine that rejects misrouted operations with a
// client-visible redirect, and a controller that migrates shards between
// groups.
//
// The design follows the FRAPPE platform shape the source paper's composition
// protocol was built for: many small replicated services (here: one RSM group
// per set of keyspace partitions) hosted per process over shared transport
// and a shared WAL. Two migration mechanisms exist:
//
//   - Moving a shard's *replicas* is just reconfiguring that shard's group
//     onto new nodes (Controller.MoveGroup): the paper's reconfiguration
//     protocol does all the work, state travels via chunked snapshot
//     transfer, and client sessions move with it. This is the primary,
//     chaos-tested path.
//
//   - Moving a shard *between groups* (Controller.MigrateShard) re-balances
//     ownership: a fenced Drop on the old owner extracts the partition's
//     keys, an Adopt on the new owner installs them, and the shard map's
//     generation advances. Session tables are per group and do not travel
//     on this path, so a client retrying an un-acked write across a
//     concurrent cross-group migration may double-apply — a documented
//     limitation; use MoveGroup where that matters.
package router

import (
	"fmt"
	"sort"

	"repro/internal/statemachine"
	"repro/internal/types"
)

// NumShards is the number of hash partitions the router splits the keyspace
// into — identical to the machines' internal shard count so one router shard
// is exactly one KVStore shard (and one snapshot chunk).
const NumShards = statemachine.NumKeyShards

// Router machine opcodes. They live above the KV opcode range so a routed
// machine can never confuse them with inner operations.
const (
	// OpRouted wraps an inner KV op with the shard and map generation the
	// client routed under: |0x20|shard|gen|inner...|.
	OpRouted byte = 0x20
	// OpAdopt installs one shard's extracted data into this group and marks
	// the shard owned: |0x21|shard|gen|count|(key,value)*|.
	OpAdopt byte = 0x21
	// OpDrop removes one shard from this group; the reply carries the
	// extracted data so the migration can hand it to the new owner:
	// |0x22|shard|gen|.
	OpDrop byte = 0x22
)

// PartitionedKV is the replicated machine each group runs under the router:
// a KVStore plus a shard-ownership table. Every routed operation is checked
// against ownership before it touches data; a miss returns StatusMoved with
// the shard and the generation at which this group last saw it leave, so
// clients know to refresh their map.
//
// PartitionedKV deliberately does NOT implement ShardedApplier even though
// its inner KVStore does: every routed op reads the ownership table, so
// parallel apply across kv shards would race Adopt/Drop ownership writes.
// Cross-group parallelism (N groups, N event loops) is where the multi-group
// runtime gets its speedup; within a group, applies stay serial.
type PartitionedKV struct {
	kv    *statemachine.KVStore
	owned map[int]uint64 // shard -> generation it was adopted at
	moved map[int]uint64 // shard -> generation it was dropped at
}

var (
	_ statemachine.Machine            = (*PartitionedKV)(nil)
	_ statemachine.ReadOnlyDetector   = (*PartitionedKV)(nil)
	_ statemachine.ChunkedSnapshotter = (*PartitionedKV)(nil)
)

// NewPartitionedKV returns a machine owning the given shards as of gen.
// Initial ownership is part of the deterministic construction (every replica
// of a group builds the same machine), exactly like a bootstrap config.
func NewPartitionedKV(shards []int, gen uint64) *PartitionedKV {
	m := &PartitionedKV{
		kv:    statemachine.NewKVStore(),
		owned: make(map[int]uint64, len(shards)),
		moved: make(map[int]uint64),
	}
	for _, s := range shards {
		m.owned[s] = gen
	}
	return m
}

// PartitionedFactory returns a Factory producing machines that own shards at
// gen — one factory per group, closed over that group's initial assignment.
func PartitionedFactory(shards []int, gen uint64) statemachine.Factory {
	owned := append([]int(nil), shards...)
	return func() statemachine.Machine { return NewPartitionedKV(owned, gen) }
}

// Pair is one key/value pair in a shard extraction or adoption.
type Pair struct {
	Key   string
	Value []byte
}

// EncodeRouted wraps an inner KV op for shard under map generation gen.
func EncodeRouted(shard int, gen uint64, inner []byte) []byte {
	w := types.NewWriter(12 + len(inner))
	w.Byte(OpRouted)
	w.Uvarint(uint64(shard))
	w.Uvarint(gen)
	w.BytesField(inner)
	return w.Bytes()
}

// EncodeAdopt encodes an adopt op installing data (sorted key/value pairs).
func EncodeAdopt(shard int, gen uint64, pairs []Pair) []byte {
	w := types.NewWriter(16)
	w.Byte(OpAdopt)
	w.Uvarint(uint64(shard))
	w.Uvarint(gen)
	w.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		w.String(p.Key)
		w.BytesField(p.Value)
	}
	return w.Bytes()
}

// EncodeDrop encodes a drop op fencing shard at gen.
func EncodeDrop(shard int, gen uint64) []byte {
	w := types.NewWriter(12)
	w.Byte(OpDrop)
	w.Uvarint(uint64(shard))
	w.Uvarint(gen)
	return w.Bytes()
}

// MovedReply decodes a StatusMoved reply into the shard and the generation
// the serving group last associated with it (0 if it never owned the shard).
func MovedReply(reply []byte) (shard int, gen uint64, ok bool) {
	if statemachine.ReplyStatus(reply) != statemachine.StatusMoved {
		return 0, 0, false
	}
	r := types.NewReader(statemachine.ReplyPayload(reply))
	s := r.Uvarint()
	g := r.Uvarint()
	if r.Err() != nil {
		return 0, 0, false
	}
	return int(s), g, true
}

// DropReply decodes a successful OpDrop reply into the extracted pairs.
func DropReply(reply []byte) ([]Pair, error) {
	if st := statemachine.ReplyStatus(reply); st != statemachine.StatusOK {
		return nil, fmt.Errorf("router: drop reply status %v", st)
	}
	r := types.NewReader(statemachine.ReplyPayload(reply))
	n := r.Uvarint()
	pairs := make([]Pair, 0, n)
	for i := uint64(0); i < n; i++ {
		k := r.String()
		v := r.BytesField()
		if r.Err() != nil {
			break
		}
		pairs = append(pairs, Pair{Key: k, Value: v})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}

func movedReply(shard int, gen uint64) []byte {
	w := types.NewWriter(12)
	w.Byte(byte(statemachine.StatusMoved))
	w.Uvarint(uint64(shard))
	w.Uvarint(gen)
	return w.Bytes()
}

func badOp() []byte { return []byte{byte(statemachine.StatusBadOp)} }

// ReadOnly implements ReadOnlyDetector: a routed op is read-only iff its
// inner op is (the ownership check reads but never writes), so routed gets
// still ride the linearizable read fast path. Adopt/Drop always mutate.
func (m *PartitionedKV) ReadOnly(op []byte) bool {
	if len(op) < 1 || op[0] != OpRouted {
		return false
	}
	r := types.NewReader(op[1:])
	r.Uvarint() // shard
	r.Uvarint() // gen
	inner := r.BytesField()
	if r.Err() != nil {
		return false
	}
	return m.kv.ReadOnly(inner)
}

// Apply implements Machine. Only router opcodes are accepted: unrouted KV
// ops would bypass the ownership check and silently serve keys this group no
// longer owns, so they are rejected outright.
func (m *PartitionedKV) Apply(op []byte) []byte {
	if len(op) == 0 {
		return badOp()
	}
	switch op[0] {
	case OpRouted:
		r := types.NewReader(op[1:])
		shard := int(r.Uvarint())
		r.Uvarint() // client's map generation; informational
		inner := r.BytesField()
		if r.Err() != nil || shard < 0 || shard >= NumShards {
			return badOp()
		}
		if _, ok := m.owned[shard]; !ok {
			return movedReply(shard, m.moved[shard])
		}
		return m.kv.Apply(inner)
	case OpAdopt:
		r := types.NewReader(op[1:])
		shard := int(r.Uvarint())
		gen := r.Uvarint()
		n := r.Uvarint()
		if r.Err() != nil || shard < 0 || shard >= NumShards {
			return badOp()
		}
		if cur, ok := m.owned[shard]; ok && cur >= gen {
			return okStatus() // duplicate adopt; already current
		}
		for i := uint64(0); i < n; i++ {
			k := r.String()
			v := r.BytesField()
			if r.Err() != nil {
				return badOp()
			}
			if statemachine.KeyShard(k) != shard {
				return badOp()
			}
			m.kv.Apply(statemachine.EncodePut(k, v))
		}
		m.owned[shard] = gen
		delete(m.moved, shard)
		return okStatus()
	case OpDrop:
		r := types.NewReader(op[1:])
		shard := int(r.Uvarint())
		gen := r.Uvarint()
		if r.Err() != nil || shard < 0 || shard >= NumShards {
			return badOp()
		}
		if _, ok := m.owned[shard]; !ok {
			// Already dropped (migration retry); the extracted data was in
			// the first drop's reply, which session dedup re-serves. A fresh
			// (client,seq) landing here gets an empty extraction.
			return m.encodeExtract(nil)
		}
		pairs := m.extractShard(shard)
		delete(m.owned, shard)
		if gen > m.moved[shard] {
			m.moved[shard] = gen
		}
		return m.encodeExtract(pairs)
	default:
		return badOp()
	}
}

// extractShard removes and returns shard's pairs, sorted by key so the reply
// is deterministic across replicas.
func (m *PartitionedKV) extractShard(shard int) []Pair {
	var pairs []Pair
	m.kv.Range(func(k string, v []byte) bool {
		if statemachine.KeyShard(k) == shard {
			pairs = append(pairs, Pair{Key: k, Value: v})
		}
		return true
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	for _, p := range pairs {
		m.kv.Apply(statemachine.EncodeDelete(p.Key))
	}
	return pairs
}

func (m *PartitionedKV) encodeExtract(pairs []Pair) []byte {
	w := types.NewWriter(16)
	w.Byte(byte(statemachine.StatusOK))
	w.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		w.String(p.Key)
		w.BytesField(p.Value)
	}
	return w.Bytes()
}

func okStatus() []byte { return []byte{byte(statemachine.StatusOK)} }

// OwnedShards returns the owned shard indices, ascending (test/report use).
func (m *PartitionedKV) OwnedShards() []int {
	out := make([]int, 0, len(m.owned))
	for s := range m.owned {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// KV exposes the inner store for test inspection.
func (m *PartitionedKV) KV() *statemachine.KVStore { return m.kv }

// encodeOwnership serializes the ownership tables (sorted, deterministic).
func (m *PartitionedKV) encodeOwnership() []byte {
	w := types.NewWriter(16 + 4*(len(m.owned)+len(m.moved)))
	writeTable := func(t map[int]uint64) {
		keys := make([]int, 0, len(t))
		for s := range t {
			keys = append(keys, s)
		}
		sort.Ints(keys)
		w.Uvarint(uint64(len(keys)))
		for _, s := range keys {
			w.Uvarint(uint64(s))
			w.Uvarint(t[s])
		}
	}
	writeTable(m.owned)
	writeTable(m.moved)
	return w.Bytes()
}

func (m *PartitionedKV) decodeOwnership(data []byte) error {
	r := types.NewReader(data)
	readTable := func() map[int]uint64 {
		n := r.Uvarint()
		t := make(map[int]uint64, n)
		for i := uint64(0); i < n; i++ {
			s := r.Uvarint()
			g := r.Uvarint()
			t[int(s)] = g
		}
		return t
	}
	owned := readTable()
	moved := readTable()
	if err := r.Err(); err != nil {
		return fmt.Errorf("router: ownership chunk: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in ownership chunk", types.ErrCodec)
	}
	m.owned = owned
	m.moved = moved
	return nil
}

// Snapshot implements Machine: ownership tables followed by the inner store.
func (m *PartitionedKV) Snapshot() []byte {
	own := m.encodeOwnership()
	inner := m.kv.Snapshot()
	w := types.NewWriter(8 + len(own) + len(inner))
	w.BytesField(own)
	w.BytesField(inner)
	return w.Bytes()
}

// Restore implements Machine.
func (m *PartitionedKV) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	own := r.BytesField()
	inner := r.BytesField()
	if err := r.Err(); err != nil {
		return fmt.Errorf("router: snapshot: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in router snapshot", types.ErrCodec)
	}
	if err := m.decodeOwnership(own); err != nil {
		return err
	}
	return m.kv.Restore(inner)
}

// partitionedFork is the chunked snapshot: chunk 0 is the ownership tables,
// chunks 1..NumShards are the inner KVStore's COW shard chunks. The chunk
// count is fixed, so the mapping stays positional and Sessioned's wrapper
// (which prepends its own session chunk) composes cleanly on top.
type partitionedFork struct {
	ownership []byte
	inner     statemachine.SnapshotSource
}

// ForkSnapshot implements ChunkedSnapshotter. O(shards + ownership).
func (m *PartitionedKV) ForkSnapshot() statemachine.SnapshotSource {
	return &partitionedFork{ownership: m.encodeOwnership(), inner: m.kv.ForkSnapshot()}
}

func (f *partitionedFork) Format() byte   { return statemachine.SnapshotFormatShards }
func (f *partitionedFork) NumChunks() int { return 1 + f.inner.NumChunks() }
func (f *partitionedFork) Chunk(i int) []byte {
	if i == 0 {
		return f.ownership
	}
	return f.inner.Chunk(i - 1)
}

// RestoreChunk implements ChunkedSnapshotter.
func (m *PartitionedKV) RestoreChunk(index int, data []byte) error {
	if index == 0 {
		return m.decodeOwnership(data)
	}
	return m.kv.RestoreChunk(index-1, data)
}

// FinishRestore implements ChunkedSnapshotter.
func (m *PartitionedKV) FinishRestore(total int) error {
	if total != 1+NumShards {
		return fmt.Errorf("%w: partitioned snapshot has %d chunks, want %d", types.ErrCodec, total, 1+NumShards)
	}
	return m.kv.FinishRestore(total - 1)
}
