package router

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/statemachine"
	"repro/internal/types"
)

// genDir publishes a settable shard map.
type genDir struct {
	mu sync.Mutex
	m  ShardMap
}

func (d *genDir) Map() ShardMap {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m
}

func (d *genDir) set(m ShardMap) {
	d.mu.Lock()
	d.m = m
	d.mu.Unlock()
}

// genGroups answers Moved until the routed op carries the current
// generation, then acks — the wire behavior of a group that dropped a shard.
type genGroups struct {
	want    atomic.Uint64
	submits atomic.Int64
}

func (g *genGroups) Submit(ctx context.Context, gid types.GroupID, client types.NodeID, seq uint64, op []byte) ([]byte, error) {
	g.submits.Add(1)
	r := types.NewReader(op[1:]) // skip OpRouted
	shard := int(r.Uvarint())
	gen := r.Uvarint()
	if gen < g.want.Load() {
		return movedReply(shard, g.want.Load()), nil
	}
	return []byte{byte(statemachine.StatusOK)}, nil
}

func (g *genGroups) ReconfigureGroup(ctx context.Context, gid types.GroupID, members []types.NodeID) (types.Config, error) {
	return types.Config{}, nil
}

// Concurrent submits all hitting the same stale map must adopt the newer map
// exactly once; every refresh past the first finds the cache already fresh.
func TestRouterAdoptsNewMapExactlyOnce(t *testing.T) {
	m1, err := SplitShards([]types.GroupID{1})
	if err != nil {
		t.Fatal(err)
	}
	dir := &genDir{m: m1}
	groups := &genGroups{}
	rt := New(groups, dir)

	// Publish generation 2; the router still caches generation 1.
	m2 := m1
	m2.Gen = 2
	dir.set(m2)
	groups.want.Store(2)

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rt.Submit(context.Background(), "c", uint64(i+1), "k", statemachine.EncodeGet("k")); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := rt.Stats()
	if st.Adopts != 1 {
		t.Fatalf("adopted %d times, want exactly once (refreshes %d)", st.Adopts, st.Refreshes)
	}
	if st.Refreshes < 1 {
		t.Fatal("no refreshes counted")
	}
	if rt.map_().Gen != 2 {
		t.Fatalf("cached gen %d, want 2", rt.map_().Gen)
	}
}

// A dropped (wedged) shard never serves from the stale cache entry: the
// submit retries until the directory publishes the successor, and the ack
// only ever comes from the post-refresh generation.
func TestRouterStaleEntryNeverServes(t *testing.T) {
	m1, err := SplitShards([]types.GroupID{1})
	if err != nil {
		t.Fatal(err)
	}
	dir := &genDir{m: m1}
	groups := &genGroups{}
	rt := New(groups, dir)

	// The owner fenced the shard at generation 3, but the directory has
	// not published it yet: the router must wait out the handoff (Moved →
	// refresh → same gen → pause) rather than serve stale.
	groups.want.Store(3)
	done := make(chan error, 1)
	go func() {
		_, err := rt.Submit(context.Background(), "c", 1, "k", statemachine.EncodeGet("k"))
		done <- err
	}()
	// Publish the successor; the in-flight submit's next refresh adopts it.
	m3 := m1
	m3.Gen = 3
	dir.set(m3)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Adopts != 1 {
		t.Fatalf("adopts %d, want 1", st.Adopts)
	}
	if rt.map_().Gen != 3 {
		t.Fatalf("cached gen %d, want 3", rt.map_().Gen)
	}
}
