package router_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/router"
	"repro/internal/statemachine"
	"repro/internal/types"
)

// shardedWorld is a full sharded runtime: nGroups groups over three shared
// processes, a controller publishing the balanced map, and a router.
type shardedWorld struct {
	m    *cluster.GroupManager
	ctl  *router.Controller
	rt   *router.Router
	gids []types.GroupID
}

func newShardedWorld(t *testing.T, nGroups int) *shardedWorld {
	t.Helper()
	m := cluster.NewGroupManager(cluster.Config{
		Node:    cluster.FastOptions(),
		Factory: statemachine.NewKVMachine,
	})
	t.Cleanup(m.Close)
	gids := make([]types.GroupID, nGroups)
	for i := range gids {
		gids[i] = types.GroupID(i + 1)
	}
	smap, err := router.SplitShards(gids)
	if err != nil {
		t.Fatal(err)
	}
	procs := []types.NodeID{"p1", "p2", "p3"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, gid := range gids {
		if err := m.CreateGroup(gid, procs, router.PartitionedFactory(smap.ShardsOf(gid), smap.Gen)); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			t.Fatal(err)
		}
	}
	ctl := router.NewController(m, smap)
	return &shardedWorld{m: m, ctl: ctl, rt: router.New(m, ctl), gids: gids}
}

func (w *shardedWorld) submit(t *testing.T, ctx context.Context, client types.NodeID, seq uint64, key string, inner []byte) []byte {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		reply, err := w.rt.Submit(ctx, client, seq, key, inner)
		if err == nil {
			return reply
		}
		if time.Now().After(deadline) {
			t.Fatalf("routed submit %q: %v", key, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRouterEndToEnd(t *testing.T) {
	w := newShardedWorld(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const n = 40
	seq := uint64(0)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		seq++
		reply := w.submit(t, ctx, "c", seq, k, statemachine.EncodePut(k, []byte("v-"+k)))
		if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
			t.Fatalf("put %s: %v", k, statemachine.ReplyStatus(reply))
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		seq++
		reply := w.submit(t, ctx, "c", seq, k, statemachine.EncodeGet(k))
		if got := string(statemachine.ReplyPayload(reply)); got != "v-"+k {
			t.Fatalf("get %s = %q", k, got)
		}
	}
	// Both groups actually applied work (the split sends keys to each).
	for _, gid := range w.gids {
		if gs := w.m.GroupStats(gid); gs.Applied == 0 {
			t.Fatalf("group %d applied nothing", gid)
		}
	}
	if w.m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
}

// TestRouterFollowsMigrateShard: a router whose cached map predates a shard
// migration sees StatusMoved, refreshes from the directory, and lands on the
// new owner — with the migrated data intact.
func TestRouterFollowsMigrateShard(t *testing.T) {
	w := newShardedWorld(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Find a key and its shard currently owned by group 1.
	smap := w.ctl.Map()
	var key string
	var shard int
	for i := 0; ; i++ {
		key = fmt.Sprintf("mig-%d", i)
		var gid types.GroupID
		shard, gid = smap.OwnerOf(key)
		if gid == 1 {
			break
		}
	}
	w.submit(t, ctx, "c", 1, key, statemachine.EncodePut(key, []byte("precious")))

	// A second router caches the pre-migration map now.
	stale := router.New(w.m, w.ctl)

	if err := w.ctl.MigrateShard(ctx, shard, 2); err != nil {
		t.Fatal(err)
	}
	if got := w.ctl.Map().Owner[shard]; got != 2 {
		t.Fatalf("map still names group %d", got)
	}
	if w.ctl.Map().Gen <= smap.Gen {
		t.Fatal("generation did not advance")
	}

	// The stale router redirects its way to the data.
	reply, err := stale.Submit(ctx, "c", 2, key, statemachine.EncodeGet(key))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(statemachine.ReplyPayload(reply)); got != "precious" {
		t.Fatalf("migrated read = %q", got)
	}
	// Writes keep flowing to the new owner too.
	reply, err = stale.Submit(ctx, "c", 3, key, statemachine.EncodePut(key, []byte("updated")))
	if err != nil || statemachine.ReplyStatus(reply) != statemachine.StatusOK {
		t.Fatalf("post-migration put: %v %v", statemachine.ReplyStatus(reply), err)
	}
	// MigrateShard to the current owner is a no-op.
	gen := w.ctl.Map().Gen
	if err := w.ctl.MigrateShard(ctx, shard, 2); err != nil {
		t.Fatal(err)
	}
	if w.ctl.Map().Gen != gen {
		t.Fatal("no-op migration bumped the generation")
	}
	if w.m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
}

// TestControllerMoveGroup: moving a group's replicas via reconfiguration
// keeps the shard map unchanged (no redirects) and the data served.
func TestControllerMoveGroup(t *testing.T) {
	w := newShardedWorld(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	smap := w.ctl.Map()
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("mv-%d", i)
		if _, gid := smap.OwnerOf(key); gid == 1 {
			break
		}
	}
	w.submit(t, ctx, "c", 1, key, statemachine.EncodePut(key, []byte("carried")))

	if err := w.ctl.MoveGroup(ctx, 1, []types.NodeID{"q1", "q2", "q3"}); err != nil {
		t.Fatal(err)
	}
	if w.ctl.Map().Gen != smap.Gen {
		t.Fatal("MoveGroup changed the shard map")
	}
	reply := w.submit(t, ctx, "c", 2, key, statemachine.EncodeGet(key))
	if got := string(statemachine.ReplyPayload(reply)); got != "carried" {
		t.Fatalf("moved group reads %q", got)
	}
	members := w.m.GroupMembers(1)
	for _, id := range members {
		if id != "q1" && id != "q2" && id != "q3" {
			t.Fatalf("group 1 member %s not in target set", id)
		}
	}
	if w.m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
}

// TestMigrateShardDropsSessionDedup pins MigrateShard's documented
// limitation (see the MigrateShard godoc and DESIGN.md §"Multi-group
// runtime") as an executable spec: client session tables do NOT travel with
// a shard across groups, so a client retry of an un-acked write that lands
// after the migration re-applies instead of being deduplicated.
//
// The body asserts the session-SAFE behavior — the retry must be absorbed —
// which MigrateShard deliberately does not provide; run un-skipped it fails
// with "zz" where "z" is asserted. It stays skipped until cross-group
// session export ships (the drop payload would need to carry the shard's
// session entries); whoever builds that should un-skip this test and watch
// it pass. Until then MoveGroup is the session-safe migration path.
func TestMigrateShardDropsSessionDedup(t *testing.T) {
	t.Skip("failing by design: MigrateShard does not carry session dedup across groups (DESIGN.md §Multi-group runtime); un-skip when session export ships")

	w := newShardedWorld(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	smap := w.ctl.Map()
	var key string
	var shard int
	for i := 0; ; i++ {
		key = fmt.Sprintf("dedup-%d", i)
		var gid types.GroupID
		shard, gid = smap.OwnerOf(key)
		if gid == 1 {
			break
		}
	}
	// The write is acknowledged by the old owner, which records (client,
	// seq) in its session table — a table the migration leaves behind.
	w.submit(t, ctx, "retrier", 1, key, statemachine.EncodeAppend(key, []byte("z")))

	if err := w.ctl.MigrateShard(ctx, shard, 2); err != nil {
		t.Fatal(err)
	}

	// The client never saw the ack and retries the same (client, seq)
	// against the new owner. Session-safe behavior: the retry is absorbed
	// and the append happens exactly once.
	w.submit(t, ctx, "retrier", 1, key, statemachine.EncodeAppend(key, []byte("z")))
	reply := w.submit(t, ctx, "reader", 1, key, statemachine.EncodeGet(key))
	if got := string(statemachine.ReplyPayload(reply)); got != "z" {
		t.Fatalf("retry across MigrateShard re-applied: key = %q, want %q", got, "z")
	}
	if w.m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
}
