package router

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/statemachine"
	"repro/internal/types"
)

// keysForShard returns n distinct keys hashing to shard.
func keysForShard(t *testing.T, shard, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if statemachine.KeyShard(k) == shard {
			out = append(out, k)
		}
		if i > 1_000_000 {
			t.Fatalf("no %d keys found for shard %d", n, shard)
		}
	}
	return out
}

func TestPartitionedKVRoutedOwnership(t *testing.T) {
	m := NewPartitionedKV([]int{3}, 1)
	k := keysForShard(t, 3, 1)[0]

	reply := m.Apply(EncodeRouted(3, 1, statemachine.EncodePut(k, []byte("v"))))
	if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
		t.Fatalf("owned routed put: %v", statemachine.ReplyStatus(reply))
	}
	reply = m.Apply(EncodeRouted(3, 1, statemachine.EncodeGet(k)))
	if string(statemachine.ReplyPayload(reply)) != "v" {
		t.Fatalf("owned routed get: %q", statemachine.ReplyPayload(reply))
	}

	// A shard this group never owned answers Moved with gen 0.
	other := (3 + 1) % NumShards
	ko := keysForShard(t, other, 1)[0]
	reply = m.Apply(EncodeRouted(other, 1, statemachine.EncodeGet(ko)))
	shard, gen, ok := MovedReply(reply)
	if !ok || shard != other || gen != 0 {
		t.Fatalf("unowned routed op: shard=%d gen=%d ok=%v", shard, gen, ok)
	}

	// Unrouted (raw KV) ops bypass the ownership check and must be rejected.
	if st := statemachine.ReplyStatus(m.Apply(statemachine.EncodePut(k, []byte("x")))); st != statemachine.StatusBadOp {
		t.Fatalf("raw KV op status %v, want BadOp", st)
	}
}

func TestPartitionedKVDropAdopt(t *testing.T) {
	src := NewPartitionedKV([]int{5}, 1)
	dst := NewPartitionedKV(nil, 1)
	keys := keysForShard(t, 5, 4)
	for _, k := range keys {
		if st := statemachine.ReplyStatus(src.Apply(EncodeRouted(5, 1, statemachine.EncodePut(k, []byte("v-"+k))))); st != statemachine.StatusOK {
			t.Fatalf("seed put %s: %v", k, st)
		}
	}

	dropReply := src.Apply(EncodeDrop(5, 2))
	pairs, err := DropReply(dropReply)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(keys) {
		t.Fatalf("extracted %d pairs, want %d", len(pairs), len(keys))
	}
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key }) {
		t.Fatal("extraction not sorted")
	}
	// The old owner now redirects with the drop generation.
	reply := src.Apply(EncodeRouted(5, 1, statemachine.EncodeGet(keys[0])))
	if shard, gen, ok := MovedReply(reply); !ok || shard != 5 || gen != 2 {
		t.Fatalf("post-drop route: shard=%d gen=%d ok=%v", shard, gen, ok)
	}
	// Its store no longer holds the shard's keys.
	if len(src.KV().Snapshot()) != len(NewPartitionedKV(nil, 1).KV().Snapshot()) {
		t.Fatal("drop left data behind")
	}
	// A second drop (fresh seq reaching the machine) extracts nothing.
	pairs2, err := DropReply(src.Apply(EncodeDrop(5, 2)))
	if err != nil || len(pairs2) != 0 {
		t.Fatalf("re-drop: %v pairs=%d", err, len(pairs2))
	}

	// Adopt installs the extraction on the new owner.
	if st := statemachine.ReplyStatus(dst.Apply(EncodeAdopt(5, 2, pairs))); st != statemachine.StatusOK {
		t.Fatalf("adopt: %v", st)
	}
	for _, k := range keys {
		reply := dst.Apply(EncodeRouted(5, 2, statemachine.EncodeGet(k)))
		if !bytes.Equal(statemachine.ReplyPayload(reply), []byte("v-"+k)) {
			t.Fatalf("adopted key %s = %q", k, statemachine.ReplyPayload(reply))
		}
	}
	if got := dst.OwnedShards(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("dst owns %v", got)
	}
	// Duplicate adopt at the same gen is a no-op OK.
	if st := statemachine.ReplyStatus(dst.Apply(EncodeAdopt(5, 2, nil))); st != statemachine.StatusOK {
		t.Fatalf("duplicate adopt: %v", st)
	}
	// An adopt whose pairs hash elsewhere is rejected deterministically.
	wrong := keysForShard(t, (5+1)%NumShards, 1)[0]
	if st := statemachine.ReplyStatus(dst.Apply(EncodeAdopt(7, 3, []Pair{{Key: wrong, Value: []byte("x")}}))); st != statemachine.StatusBadOp {
		t.Fatalf("mishashed adopt: %v", st)
	}
}

func TestPartitionedKVReadOnly(t *testing.T) {
	m := NewPartitionedKV([]int{0}, 1)
	if !m.ReadOnly(EncodeRouted(0, 1, statemachine.EncodeGet("k"))) {
		t.Fatal("routed get not read-only")
	}
	if m.ReadOnly(EncodeRouted(0, 1, statemachine.EncodePut("k", nil))) {
		t.Fatal("routed put claimed read-only")
	}
	if m.ReadOnly(EncodeDrop(0, 2)) || m.ReadOnly(EncodeAdopt(0, 2, nil)) {
		t.Fatal("migration op claimed read-only")
	}
}

// TestPartitionedKVSnapshotRoundTrip covers both the monolithic and the
// chunked snapshot paths, including ownership tables.
func TestPartitionedKVSnapshotRoundTrip(t *testing.T) {
	m := NewPartitionedKV([]int{1, 2}, 3)
	for _, shard := range []int{1, 2} {
		for _, k := range keysForShard(t, shard, 3) {
			m.Apply(EncodeRouted(shard, 3, statemachine.EncodePut(k, []byte("v-"+k))))
		}
	}
	m.Apply(EncodeDrop(2, 4)) // leave a moved-table entry behind

	check := func(got *PartitionedKV, how string) {
		t.Helper()
		if shards := got.OwnedShards(); len(shards) != 1 || shards[0] != 1 {
			t.Fatalf("%s: owned %v", how, shards)
		}
		for _, k := range keysForShard(t, 1, 3) {
			reply := got.Apply(EncodeRouted(1, 3, statemachine.EncodeGet(k)))
			if !bytes.Equal(statemachine.ReplyPayload(reply), []byte("v-"+k)) {
				t.Fatalf("%s: key %s = %q", how, k, statemachine.ReplyPayload(reply))
			}
		}
		// The moved generation survives, so redirects stay correct.
		reply := got.Apply(EncodeRouted(2, 3, statemachine.EncodeGet(keysForShard(t, 2, 1)[0])))
		if shard, gen, ok := MovedReply(reply); !ok || shard != 2 || gen != 4 {
			t.Fatalf("%s: moved table lost: shard=%d gen=%d ok=%v", how, shard, gen, ok)
		}
	}

	mono := NewPartitionedKV(nil, 0)
	if err := mono.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	check(mono, "monolithic")

	fork := m.ForkSnapshot()
	if fork.Format() != statemachine.SnapshotFormatShards {
		t.Fatalf("fork format %d", fork.Format())
	}
	if fork.NumChunks() != 1+NumShards {
		t.Fatalf("fork chunks %d, want %d", fork.NumChunks(), 1+NumShards)
	}
	chunked := NewPartitionedKV(nil, 0)
	// Deliver out of order to exercise any-order restore.
	for i := fork.NumChunks() - 1; i >= 0; i-- {
		if err := chunked.RestoreChunk(i, fork.Chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := chunked.FinishRestore(fork.NumChunks()); err != nil {
		t.Fatal(err)
	}
	check(chunked, "chunked")

	// Forks are COW: mutations after the fork do not leak into chunks.
	k := keysForShard(t, 1, 1)[0]
	m.Apply(EncodeRouted(1, 3, statemachine.EncodePut(k, []byte("post-fork"))))
	late := NewPartitionedKV(nil, 0)
	for i := 0; i < fork.NumChunks(); i++ {
		if err := late.RestoreChunk(i, fork.Chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := late.FinishRestore(fork.NumChunks()); err != nil {
		t.Fatal(err)
	}
	reply := late.Apply(EncodeRouted(1, 3, statemachine.EncodeGet(k)))
	if !bytes.Equal(statemachine.ReplyPayload(reply), []byte("v-"+k)) {
		t.Fatalf("fork leaked post-fork write: %q", statemachine.ReplyPayload(reply))
	}
}

func TestSplitShards(t *testing.T) {
	m, err := SplitShards([]types.GroupID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 1 {
		t.Fatalf("initial gen %d", m.Gen)
	}
	counts := map[types.GroupID]int{}
	for _, g := range m.Owner {
		counts[g]++
	}
	for gid, n := range counts {
		if n < NumShards/3-1 || n > NumShards/3+1 {
			t.Fatalf("group %d owns %d shards (unbalanced)", gid, n)
		}
	}
	for gid := types.GroupID(1); gid <= 3; gid++ {
		if len(m.ShardsOf(gid)) != counts[gid] {
			t.Fatalf("ShardsOf(%d) mismatch", gid)
		}
	}
	if _, err := SplitShards(nil); err == nil {
		t.Fatal("empty split accepted")
	}
}
