package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/statemachine"
	"repro/internal/types"
)

// ShardMap is one generation of the keyspace partition assignment: shard i
// (of NumShards) is served by Owner[i]. Maps are immutable once published;
// every change produces a successor with a larger Gen, so a client holding a
// stale map can always tell (and a Moved redirect tells it to refresh).
type ShardMap struct {
	Gen   uint64
	Owner [NumShards]types.GroupID
}

// OwnerOf returns the group serving key under this map.
func (m ShardMap) OwnerOf(key string) (shard int, gid types.GroupID) {
	shard = statemachine.KeyShard(key)
	return shard, m.Owner[shard]
}

// ShardsOf returns the shards assigned to gid, ascending.
func (m ShardMap) ShardsOf(gid types.GroupID) []int {
	var out []int
	for s, g := range m.Owner {
		if g == gid {
			out = append(out, s)
		}
	}
	return out
}

// SplitShards deals NumShards round-robin across the given groups — the
// initial balanced assignment.
func SplitShards(groups []types.GroupID) (ShardMap, error) {
	if len(groups) == 0 {
		return ShardMap{}, fmt.Errorf("router: no groups to assign shards to")
	}
	m := ShardMap{Gen: 1}
	for s := 0; s < NumShards; s++ {
		m.Owner[s] = groups[s%len(groups)]
	}
	return m, nil
}

// Groups is the slice of the multi-group runtime the router needs. It is a
// structural interface so the cluster layer never imports the router:
// *cluster.GroupManager satisfies it.
type Groups interface {
	// Submit executes one command on group gid with session (client, seq).
	Submit(ctx context.Context, gid types.GroupID, client types.NodeID, seq uint64, op []byte) ([]byte, error)
	// ReconfigureGroup moves group gid onto the given member set.
	ReconfigureGroup(ctx context.Context, gid types.GroupID, members []types.NodeID) (types.Config, error)
}

// Directory publishes the authoritative shard map. Controller implements it.
type Directory interface {
	// Map returns the current shard map snapshot.
	Map() ShardMap
}

// ErrUnrouted reports that a submit exhausted its redirect budget without
// finding the shard's owner — the map churned faster than the client chased.
var ErrUnrouted = errors.New("router: shard ownership unresolved after redirects")

// Router is the client-side routing layer: it stamps every operation with
// the shard and map generation it routed under, follows StatusMoved
// redirects by refreshing its map from the directory, and retries against
// the new owner. Safe for concurrent use.
type Router struct {
	groups Groups
	dir    Directory

	mu     sync.Mutex
	cached ShardMap
	stats  RouterStats
}

// RouterStats counts the router's cache activity: how often redirects force
// a directory read, and how many of those reads actually advanced the cached
// generation. Adopts increments exactly once per generation no matter how
// many submits race to report the same stale map.
type RouterStats struct {
	Refreshes int64 // directory reads triggered by redirects
	Adopts    int64 // refreshes that adopted a strictly newer map
}

// New creates a router over the given runtime and directory.
func New(groups Groups, dir Directory) *Router {
	return &Router{groups: groups, dir: dir, cached: dir.Map()}
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// map_ returns the cached shard map without touching the directory — the
// common case; redirects are what invalidate it.
func (r *Router) map_() ShardMap {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cached
}

func (r *Router) refresh(staleGen uint64) ShardMap {
	m := r.dir.Map()
	r.mu.Lock()
	r.stats.Refreshes++
	if m.Gen > r.cached.Gen {
		r.cached = m
		r.stats.Adopts++
	}
	cur := r.cached
	r.mu.Unlock()
	_ = staleGen
	return cur
}

// Submit routes one KV operation on key for session (client, seq): wraps it
// for the owning group per the cached map, follows Moved redirects (with a
// map refresh per redirect), and returns the inner machine's reply.
//
// A note on retries across migrations: (client, seq) dedup tables are per
// group. A redirect means the op was NOT applied (the ownership check fires
// before the inner machine is touched), so chasing the shard to another
// group with the same seq is safe. The unsafe case — an op applied but
// un-acked on a group whose shard then migrated away cross-group before the
// caller retried — cannot be detected here and is documented on MigrateShard.
func (r *Router) Submit(ctx context.Context, client types.NodeID, seq uint64, key string, inner []byte) ([]byte, error) {
	m := r.map_()
	const maxRedirects = 8
	for attempt := 0; ; attempt++ {
		shard, gid := m.OwnerOf(key)
		reply, err := r.groups.Submit(ctx, gid, client, seq, EncodeRouted(shard, m.Gen, inner))
		if err != nil {
			return nil, err
		}
		if statemachine.ReplyStatus(reply) != statemachine.StatusMoved {
			return reply, nil
		}
		if attempt >= maxRedirects {
			return nil, fmt.Errorf("%w (shard %d)", ErrUnrouted, shard)
		}
		next := r.refresh(m.Gen)
		if next.Gen == m.Gen {
			// Same map but the owner says Moved: a migration is mid-flight
			// (dropped by the old owner, not yet adopted / published). Wait
			// out the handoff rather than spinning on the same stale answer.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			next = r.refresh(m.Gen)
		}
		m = next
	}
}

// Controller owns the authoritative shard map and drives migrations. It is
// the control plane of the router layer: data-plane clients (Router) only
// read the map it publishes.
type Controller struct {
	groups Groups

	mu  sync.Mutex
	cur ShardMap
	seq uint64 // controller's own session sequence, for adopt/drop commands
	id  types.NodeID
}

var _ Directory = (*Controller)(nil)

// NewController creates a controller publishing the given initial map.
// The groups named by the map must already exist and own their assigned
// shards (bootstrap them with PartitionedFactory over ShardsOf).
func NewController(groups Groups, initial ShardMap) *Controller {
	return &Controller{groups: groups, cur: initial, id: "shard-controller"}
}

// Map implements Directory.
func (c *Controller) Map() ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// MoveGroup migrates every shard of group gid onto a new replica set by
// reconfiguring the group — the primary migration path: the composition
// protocol moves the state (sessions included) via chunked snapshot
// transfer, and the shard map does not change at all, so clients never even
// see a redirect.
func (c *Controller) MoveGroup(ctx context.Context, gid types.GroupID, members []types.NodeID) error {
	_, err := c.groups.ReconfigureGroup(ctx, gid, members)
	return err
}

// MigrateShard rebalances one shard from its current owner to group `to`:
// fence-and-extract on the old owner (Drop), install on the new owner
// (Adopt), then publish the successor map. In the window between Drop and
// the client's map refresh, routed ops on the shard answer StatusMoved —
// the client-visible redirect.
//
// Limitation (documented): client session tables do not travel with the
// shard, so a client retrying a write it never saw acknowledged, across
// exactly this migration, may apply it twice. Use MoveGroup when that
// matters; MigrateShard is for rebalancing under healthy clients. See
// DESIGN.md §"Multi-group runtime", MigrateShard bullet, for the full
// analysis and the session-export fix this would need;
// TestMigrateShardDropsSessionDedup pins the failure mode executably.
func (c *Controller) MigrateShard(ctx context.Context, shard int, to types.GroupID) error {
	if shard < 0 || shard >= NumShards {
		return fmt.Errorf("router: shard %d out of range", shard)
	}
	c.mu.Lock()
	from := c.cur.Owner[shard]
	nextGen := c.cur.Gen + 1
	if from == to {
		c.mu.Unlock()
		return nil
	}
	c.seq++
	dropSeq := c.seq
	c.seq++
	adoptSeq := c.seq
	c.mu.Unlock()

	// Drop is idempotent under (controller, dropSeq): a retry re-serves the
	// cached extraction reply instead of extracting twice (by then empty).
	dropReply, err := c.groups.Submit(ctx, from, c.id, dropSeq, EncodeDrop(shard, nextGen))
	if err != nil {
		return fmt.Errorf("router: drop shard %d from group %d: %w", shard, from, err)
	}
	pairs, err := DropReply(dropReply)
	if err != nil {
		return fmt.Errorf("router: drop shard %d from group %d: %w", shard, from, err)
	}
	if _, err := c.groups.Submit(ctx, to, c.id, adoptSeq, EncodeAdopt(shard, nextGen, pairs)); err != nil {
		return fmt.Errorf("router: adopt shard %d into group %d: %w", shard, to, err)
	}

	c.mu.Lock()
	next := c.cur
	next.Owner[shard] = to
	if nextGen > next.Gen {
		next.Gen = nextGen
	} else {
		next.Gen++
	}
	c.cur = next
	c.mu.Unlock()
	return nil
}
