package rpc

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

func TestCallResponse(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	srv := NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {
		respond(append([]byte("echo:"), req...))
	})
	defer srv.Close()
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, "srv", []byte("hi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp %q", resp)
	}
}

func TestDeferredResponse(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	srv := NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {
		go func() {
			time.Sleep(20 * time.Millisecond)
			respond([]byte("late"))
		}()
	})
	defer srv.Close()
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, "srv", nil, 0)
	if err != nil || string(resp) != "late" {
		t.Fatalf("%q %v", resp, err)
	}
}

func TestContextTimeout(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {
		// never respond
	})
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := cli.Call(ctx, "srv", nil, 0)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
}

func TestRetransmitSurvivesLoss(t *testing.T) {
	// 60% loss: without retransmission this call would almost surely fail;
	// with it, it should eventually complete.
	net := transport.NewNetwork(transport.Options{LossRate: 0.6, Seed: 3})
	defer net.Close()
	var served atomic.Int64
	srv := NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {
		served.Add(1)
		respond([]byte("ok"))
	})
	defer srv.Close()
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, "srv", []byte("r"), 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ok" {
		t.Fatalf("resp %q", resp)
	}
}

func TestResponseAfterFirstIgnored(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	srv := NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {
		respond([]byte("one"))
		respond([]byte("two")) // must be swallowed by sync.Once
	})
	defer srv.Close()
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, "srv", nil, 0)
	if err != nil || string(resp) != "one" {
		t.Fatalf("%q %v", resp, err)
	}
}

func TestCallOnClosedPeer(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	NewPeer(net.Endpoint("srv"), 0, nil)
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	cli.Close()
	if _, err := cli.Call(context.Background(), "srv", nil, 0); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
	cli.Close() // idempotent
}

func TestClosePeerFailsPendingCalls(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {})
	cli := NewPeer(net.Endpoint("cli"), 0, nil)

	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), "srv", nil, 0)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cli.Close()
	select {
	case err := <-errCh:
		if err != ErrClosed {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call not released by Close")
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := transport.NewNetwork(transport.Options{Jitter: 300 * time.Microsecond})
	defer net.Close()
	srv := NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {
		respond(req) // echo
	})
	defer srv.Close()
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	defer cli.Close()

	const calls = 50
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func(i int) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			resp, err := cli.Call(ctx, "srv", []byte{byte(i)}, 0)
			if err == nil && (len(resp) != 1 || resp[0] != byte(i)) {
				err = ErrClosed
			}
			errs <- err
		}(i)
	}
	for i := 0; i < calls; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerSideIdempotencyUnderRetransmit(t *testing.T) {
	// The contract is at-least-once delivery of requests; handlers must be
	// idempotent. Verify a handler sees retransmissions as separate
	// requests (so the layer above must dedup, which sessions do).
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	var served atomic.Int64
	block := make(chan struct{})
	srv := NewPeer(net.Endpoint("srv"), 0, func(from types.NodeID, req []byte, respond func([]byte)) {
		if served.Add(1) >= 3 {
			respond([]byte("done"))
			return
		}
		<-block // swallow the first two
	})
	defer srv.Close()
	defer close(block)
	cli := NewPeer(net.Endpoint("cli"), 0, nil)
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := cli.Call(ctx, "srv", nil, 5*time.Millisecond)
	if err != nil || string(resp) != "done" {
		t.Fatalf("%q %v", resp, err)
	}
	if served.Load() < 3 {
		t.Fatalf("served %d", served.Load())
	}
}
