// Package rpc layers a minimal request/response protocol over the transport:
// request IDs, response matching, retransmission and context cancellation.
// The control plane of the reconfigurable SMR (client submits, configuration
// discovery, state transfer) runs on it.
//
// A Peer is both client and server on one (endpoint, stream) pair. Handlers
// may respond asynchronously — a submit RPC is answered only when the command
// has been applied — by retaining the respond callback.
package rpc

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// Message kinds used on the wire, visible in transport accounting.
const (
	// KindRequest tags RPC requests.
	KindRequest uint8 = 32
	// KindResponse tags RPC responses.
	KindResponse uint8 = 33
)

// ErrClosed is returned by calls on a closed peer.
var ErrClosed = errors.New("rpc: peer closed")

// Handler serves one inbound request. respond may be called at most once,
// from any goroutine, now or later; extra calls are ignored.
type Handler func(from types.NodeID, req []byte, respond func(resp []byte))

// Peer is an RPC endpoint (client and server) bound to a transport stream.
type Peer struct {
	ep     *transport.Endpoint
	stream uint64

	mu      sync.Mutex
	nextID  uint64
	waiters map[uint64]chan []byte
	handler Handler
	closed  bool
}

// NewPeer binds a peer to ep on the given stream. handler may be nil for a
// client-only peer.
func NewPeer(ep *transport.Endpoint, stream uint64, handler Handler) *Peer {
	p := &Peer{
		ep:      ep,
		stream:  stream,
		waiters: make(map[uint64]chan []byte),
		handler: handler,
	}
	ep.Handle(stream, p.onMessage)
	return p
}

// Close detaches the peer from the transport and fails pending calls.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	waiters := p.waiters
	p.waiters = make(map[uint64]chan []byte)
	p.mu.Unlock()
	p.ep.Handle(p.stream, nil)
	for _, ch := range waiters {
		close(ch)
	}
}

func (p *Peer) onMessage(from types.NodeID, _ uint64, kind uint8, payload []byte) {
	r := types.NewReader(payload)
	id := r.Uvarint()
	body := r.BytesField()
	if r.Err() != nil {
		return
	}
	switch kind {
	case KindRequest:
		p.mu.Lock()
		h := p.handler
		closed := p.closed
		p.mu.Unlock()
		if h == nil || closed {
			return
		}
		var once sync.Once
		respond := func(resp []byte) {
			once.Do(func() {
				w := types.NewWriter(16 + len(resp))
				w.Uvarint(id)
				w.BytesField(resp)
				_ = p.ep.Send(from, p.stream, KindResponse, w.Bytes())
			})
		}
		// Handlers may block (e.g. waiting for a command to commit), so
		// they run off the transport's dispatch goroutine.
		go h(from, body, respond)
	case KindResponse:
		p.mu.Lock()
		ch, ok := p.waiters[id]
		if ok {
			delete(p.waiters, id)
		}
		p.mu.Unlock()
		if ok {
			ch <- body // buffered; never blocks
		}
	}
}

// Call sends req to the peer at `to` and waits for the response. The request
// is retransmitted every resend interval (0 disables) until the context is
// done. Handlers must therefore be idempotent.
func (p *Peer) Call(ctx context.Context, to types.NodeID, req []byte, resend time.Duration) ([]byte, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.nextID++
	id := p.nextID
	ch := make(chan []byte, 1)
	p.waiters[id] = ch
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		delete(p.waiters, id)
		p.mu.Unlock()
	}()

	w := types.NewWriter(16 + len(req))
	w.Uvarint(id)
	w.BytesField(req)
	wire := w.Bytes()
	if err := p.ep.Send(to, p.stream, KindRequest, wire); err != nil {
		return nil, err
	}

	var resendC <-chan time.Time
	if resend > 0 {
		t := time.NewTicker(resend)
		defer t.Stop()
		resendC = t.C
	}
	for {
		select {
		case resp, ok := <-ch:
			if !ok {
				return nil, ErrClosed
			}
			return resp, nil
		case <-resendC:
			if err := p.ep.Send(to, p.stream, KindRequest, wire); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
