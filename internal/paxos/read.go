package paxos

import (
	"time"

	"repro/internal/smr"
	"repro/internal/types"
)

// This file implements the linearizable read fast path: read-index rounds
// (one heartbeat-style quorum round confirms leadership, shared by every
// read that arrived while the round was pending) and optional leader leases
// (a quorum of heartbeat acks grants a time bound during which the leader
// answers reads with no network round at all).
//
// Safety of the read index: the index returned for a read is
//
//	max(electionFloor, deliverNext-1, maxDecidedSeen)
//
// where electionFloor is nextSlot-1 captured at becomeLeader. Any command
// chosen before this leader's election was accepted by a quorum that
// intersects the promise quorum, so it appears in some promise and is below
// electionFloor; any command this leader chose afterwards is learned locally
// at the moment of decision and so is covered by deliverNext/maxDecidedSeen.
// The probe round then establishes that no higher ballot had been promised
// by a quorum member at ack time: a fully elected newer leader must have
// finished its election after those acks, so its writes began after the
// read was invoked and need not be visible to it.

// readRequest is one fast-path read awaiting a leadership confirmation.
type readRequest struct {
	done func(index types.Slot, err error)
}

// probeRound is one in-flight read-index confirmation round. Reads that
// arrive while a round is outstanding queue for the next round; a round's
// index is fixed at dispatch, which is at or after every joined read's
// invocation, so it covers all commands chosen before any of them started.
type probeRound struct {
	seq     uint64
	index   types.Slot
	acks    map[types.NodeID]bool
	waiters []func(index types.Slot, err error)
	age     int
}

var _ smr.ReadIndexer = (*Replica)(nil)

// ReadIndex implements smr.ReadIndexer. The callback fires exactly once,
// possibly synchronously; it runs on the engine's event loop goroutine and
// must not block.
func (r *Replica) ReadIndex(done func(index types.Slot, err error)) error {
	if !r.started.Load() {
		return smr.ErrStopped
	}
	select {
	case <-r.stopCh:
		return smr.ErrStopped
	default:
	}
	select {
	case r.readCh <- readRequest{done: done}:
	default:
		return ErrBusy
	}
	// The loop may have exited between the stop check and the send, leaving
	// the request stranded in readCh. Every buffered request is pulled from
	// the channel exactly once — by the loop, by the loop's shutdown drain,
	// or here — so each done still runs exactly once.
	select {
	case <-r.loopDone:
		r.failBufferedReads()
	default:
	}
	return nil
}

// failBufferedReads drains readCh and fails whatever it pulls. Only called
// once the event loop is guaranteed not to be consuming the channel.
func (r *Replica) failBufferedReads() {
	for {
		select {
		case req := <-r.readCh:
			req.done(0, smr.ErrStopped)
		default:
			return
		}
	}
}

// finishReads fails every read the loop still owes an answer. It runs as the
// loop goroutine's last deferred call, after loopDone is closed, so that any
// ReadIndex racing with shutdown either sees loopDone closed (and drains the
// channel itself) or enqueued before this drain.
func (r *Replica) finishReads() {
	r.failReadWaiters(smr.ErrStopped)
	r.failBufferedReads()
}

// failReadWaiters aborts the in-flight probe round and the queued next
// round. Called on step-down, on election (defensively) and at shutdown.
func (r *Replica) failReadWaiters(err error) {
	if pr := r.curProbe; pr != nil {
		r.curProbe = nil
		for _, done := range pr.waiters {
			done(0, err)
		}
	}
	for _, done := range r.nextReads {
		done(0, err)
	}
	r.nextReads = nil
}

// readIndexNow computes the slot every command chosen before "now" is at or
// below. See the file comment for the safety argument.
func (r *Replica) readIndexNow() types.Slot {
	idx := r.electionFloor
	if d := r.deliverNext - 1; d > idx {
		idx = d
	}
	if r.maxDecidedSeen > idx {
		idx = r.maxDecidedSeen
	}
	return idx
}

// handleRead is the loop-side entry for one fast-path read.
func (r *Replica) handleRead(req readRequest) {
	if r.role != roleLeader {
		req.done(0, smr.ErrNotLeader)
		return
	}
	if r.opts.EnableLeaseReads && time.Now().Before(r.leaseUntil) {
		r.stats.leaseReads.Add(1)
		req.done(r.readIndexNow(), nil)
		return
	}
	r.nextReads = append(r.nextReads, req.done)
	if r.curProbe == nil {
		r.dispatchProbe()
	}
}

// dispatchProbe starts a confirmation round for all queued reads.
func (r *Replica) dispatchProbe() {
	if len(r.nextReads) == 0 || r.role != roleLeader {
		return
	}
	r.probeSeq++
	pr := &probeRound{
		seq:     r.probeSeq,
		index:   r.readIndexNow(),
		acks:    map[types.NodeID]bool{r.self: true},
		waiters: r.nextReads,
	}
	r.nextReads = nil
	r.curProbe = pr
	r.broadcast(KindReadProbe, encodeReadProbe(readProbeMsg{Ballot: r.ballot, Seq: pr.seq}))
	r.maybeFinishProbe() // a single-member configuration is its own quorum
}

func (r *Replica) maybeFinishProbe() {
	pr := r.curProbe
	if pr == nil || len(pr.acks) < r.cfg.Quorum() {
		return
	}
	r.curProbe = nil
	r.stats.readRounds.Add(1)
	for _, done := range pr.waiters {
		done(pr.index, nil)
	}
	r.dispatchProbe() // serve reads that queued during the round
}

// onReadProbe is the acceptor side of a confirmation round: ack OK iff we
// are not bound to a ballot above the probe's.
func (r *Replica) onReadProbe(from types.NodeID, msg readProbeMsg) {
	if r.maxBallotSeen.Less(msg.Ballot) {
		r.maxBallotSeen = msg.Ballot
	}
	if (r.role == roleLeader || r.role == roleCandidate) && r.ballot.Less(msg.Ballot) {
		r.stepDown()
	}
	ok := !msg.Ballot.Less(r.promised)
	r.send(from, KindReadProbeAck, encodeReadProbeAck(readProbeAckMsg{
		Ballot: msg.Ballot, Seq: msg.Seq, OK: ok, Promised: r.promised,
	}))
}

func (r *Replica) onReadProbeAck(from types.NodeID, msg readProbeAckMsg) {
	if r.role != roleLeader || !msg.Ballot.Equal(r.ballot) {
		return
	}
	if !msg.OK {
		if r.maxBallotSeen.Less(msg.Promised) {
			r.maxBallotSeen = msg.Promised
		}
		r.stepDown() // fails all read waiters
		return
	}
	pr := r.curProbe
	if pr == nil || msg.Seq != pr.seq {
		return
	}
	pr.acks[from] = true
	r.maybeFinishProbe()
}

// --- leases ------------------------------------------------------------------

// leaseDuration is the granted lease term minus a conservative 25% margin
// for clock-rate skew between leader and followers.
func (r *Replica) leaseDuration() time.Duration {
	d := time.Duration(r.opts.LeaseTicks) * r.opts.TickInterval
	return d - d/4
}

// noteHeartbeatSent records an ack-requesting heartbeat so a later quorum of
// acks can renew the lease from its send time.
func (r *Replica) noteHeartbeatSent(seq uint64) {
	r.hbSent[seq] = time.Now()
	r.hbAcks[seq] = map[types.NodeID]bool{r.self: true}
	for s := range r.hbSent {
		if s+8 <= seq { // prune rounds that never reached quorum
			delete(r.hbSent, s)
			delete(r.hbAcks, s)
		}
	}
	r.maybeRenewLease(seq)
}

func (r *Replica) onHeartbeatAck(from types.NodeID, msg heartbeatAckMsg) {
	if r.role != roleLeader || !msg.Ballot.Equal(r.ballot) {
		return
	}
	acks, ok := r.hbAcks[msg.Seq]
	if !ok {
		return
	}
	acks[from] = true
	r.maybeRenewLease(msg.Seq)
}

// maybeRenewLease extends the lease from the send time of a quorum-acked
// heartbeat. Renewal is anchored to the send time, not the ack time, so the
// lease never outlives what the quorum actually vouched for.
func (r *Replica) maybeRenewLease(seq uint64) {
	acks := r.hbAcks[seq]
	if acks == nil || len(acks) < r.cfg.Quorum() {
		return
	}
	sent, ok := r.hbSent[seq]
	if !ok {
		return
	}
	if until := sent.Add(r.leaseDuration()); until.After(r.leaseUntil) {
		r.leaseUntil = until
	}
	delete(r.hbSent, seq)
	delete(r.hbAcks, seq)
}

// clearLease drops all lease state; called on step-down and on election so
// no lease survives a change of term.
func (r *Replica) clearLease() {
	r.leaseUntil = time.Time{}
	r.hbSent = make(map[uint64]time.Time)
	r.hbAcks = make(map[uint64]map[types.NodeID]bool)
}

// suppressPrepare reports whether an acceptor in lease mode should ignore a
// prepare. While leases are enabled, promising to a would-be leader that is
// not the current one, inside the current leader's liveness window, could
// elect a new leader while the old one still answers reads locally. The
// window is the election timeout since the last heartbeat — the same bound
// after which this node would itself compete — so suppression never blocks
// an election the failure detector justifies.
func (r *Replica) suppressPrepare(msg prepareMsg) bool {
	if !r.opts.EnableLeaseReads {
		return false
	}
	hint, _ := r.leaderHint.Load().(types.NodeID)
	if hint == "" || hint == msg.Ballot.Leader || hint == r.self {
		return false
	}
	return r.ticksSinceHB < r.opts.ElectionTimeoutTicks
}
