package paxos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/smr"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// testCluster wires n replicas of one static engine over a simulated network
// and collects every node's delivered decision sequence.
type testCluster struct {
	t      *testing.T
	net    *transport.Network
	cfg    types.Config
	reps   map[types.NodeID]*Replica
	stores map[types.NodeID]*storage.MemStore

	mu        sync.Mutex
	delivered map[types.NodeID][]smr.Decision
	collected sync.WaitGroup
}

func fastOpts(seed int64) Options {
	return Options{
		TickInterval:         time.Millisecond,
		HeartbeatEveryTicks:  2,
		ElectionTimeoutTicks: 10,
		ElectionJitterTicks:  10,
		Seed:                 seed,
		// Engine-level tests observe raw decisions, one per proposed
		// command; batching tests override this explicitly.
		BatchSize: 1,
	}
}

func newTestCluster(t *testing.T, n int, netOpts transport.Options) *testCluster {
	t.Helper()
	members := make([]types.NodeID, n)
	for i := range members {
		members[i] = types.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cfg := types.MustConfig(1, members...)
	tc := &testCluster{
		t:         t,
		net:       transport.NewNetwork(netOpts),
		cfg:       cfg,
		reps:      make(map[types.NodeID]*Replica, n),
		stores:    make(map[types.NodeID]*storage.MemStore, n),
		delivered: make(map[types.NodeID][]smr.Decision, n),
	}
	for _, id := range members {
		tc.stores[id] = storage.NewMem()
		tc.startReplica(id)
	}
	t.Cleanup(tc.close)
	return tc
}

// startReplica builds and starts the replica for id from its (possibly
// pre-existing) store, and begins collecting its decisions.
func (tc *testCluster) startReplica(id types.NodeID) {
	rep, err := New(tc.cfg, id, tc.net.Endpoint(id), tc.stores[id], uint64(tc.cfg.ID), fastOpts(int64(len(id))))
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.mu.Lock()
	tc.reps[id] = rep
	tc.delivered[id] = nil
	tc.mu.Unlock()
	if err := rep.Start(); err != nil {
		tc.t.Fatal(err)
	}
	tc.collected.Add(1)
	go func() {
		defer tc.collected.Done()
		for d := range rep.Decisions() {
			tc.mu.Lock()
			tc.delivered[id] = append(tc.delivered[id], d)
			tc.mu.Unlock()
		}
	}()
}

func (tc *testCluster) close() {
	tc.mu.Lock()
	reps := make([]*Replica, 0, len(tc.reps))
	for _, r := range tc.reps {
		reps = append(reps, r)
	}
	tc.mu.Unlock()
	for _, r := range reps {
		r.Stop()
	}
	tc.collected.Wait()
	tc.net.Close()
}

func (tc *testCluster) deliveredAt(id types.NodeID) []smr.Decision {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]smr.Decision, len(tc.delivered[id]))
	copy(out, tc.delivered[id])
	return out
}

// appDelivered returns only the app commands delivered at id, in order.
func (tc *testCluster) appDelivered(id types.NodeID) []types.Command {
	var out []types.Command
	for _, d := range tc.deliveredAt(id) {
		if d.Cmd.Kind == types.CmdApp {
			out = append(out, d.Cmd)
		}
	}
	return out
}

func (tc *testCluster) waitUntil(cond func() bool, what string, timeout time.Duration) {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tc.t.Fatalf("timed out waiting for %s", what)
}

// waitForLeader blocks until some live replica believes it is leader.
func (tc *testCluster) waitForLeader(timeout time.Duration) types.NodeID {
	tc.t.Helper()
	var leader types.NodeID
	tc.waitUntil(func() bool {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		for id, r := range tc.reps {
			if _, am := r.Leader(); am {
				leader = id
				return true
			}
		}
		return false
	}, "leader election", timeout)
	return leader
}

// proposeVia submits via a specific replica, retrying while the queue is busy.
func (tc *testCluster) proposeVia(id types.NodeID, cmd types.Command) {
	tc.t.Helper()
	tc.mu.Lock()
	rep := tc.reps[id]
	tc.mu.Unlock()
	for i := 0; i < 100; i++ {
		err := rep.Propose(cmd)
		if err == nil {
			return
		}
		if err == smr.ErrStopped {
			tc.t.Fatalf("propose on stopped replica %s", id)
		}
		time.Sleep(time.Millisecond)
	}
	tc.t.Fatalf("propose via %s kept failing", id)
}

func appCmd(client types.NodeID, seq uint64) types.Command {
	return types.Command{Kind: types.CmdApp, Client: client, Seq: seq, Data: []byte(fmt.Sprintf("op-%s-%d", client, seq))}
}

// checkAgreement asserts that all nodes' delivered sequences are consistent
// prefixes of one another (P1), and no invariant violations were counted.
func (tc *testCluster) checkAgreement() {
	tc.t.Helper()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var ref []smr.Decision
	var refID types.NodeID
	for id, seq := range tc.delivered {
		if len(seq) > len(ref) {
			ref = seq
			refID = id
		}
	}
	for id, seq := range tc.delivered {
		for i, d := range seq {
			if d.Slot != types.Slot(i+1) {
				tc.t.Fatalf("%s: decision %d has slot %d (gap or disorder)", id, i, d.Slot)
			}
			if !d.Cmd.Equal(ref[i].Cmd) {
				tc.t.Fatalf("agreement violated at slot %d: %s=%v %s=%v", d.Slot, id, d.Cmd, refID, ref[i].Cmd)
			}
		}
	}
	for id, r := range tc.reps {
		if v := r.Stats().InvariantViolations; v != 0 {
			tc.t.Fatalf("%s: %d invariant violations", id, v)
		}
	}
}

func TestSingleNodeDecides(t *testing.T) {
	tc := newTestCluster(t, 1, transport.Options{})
	tc.waitForLeader(2 * time.Second)
	for i := 1; i <= 10; i++ {
		tc.proposeVia("n1", appCmd("c1", uint64(i)))
	}
	tc.waitUntil(func() bool { return len(tc.appDelivered("n1")) == 10 }, "10 decisions", 3*time.Second)
	app := tc.appDelivered("n1")
	for i, cmd := range app {
		if cmd.Seq != uint64(i+1) {
			t.Fatalf("order violated: %v at %d", cmd, i)
		}
	}
	tc.checkAgreement()
}

func TestThreeNodeAgreementAllProposers(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{BaseLatency: 200 * time.Microsecond, Jitter: 200 * time.Microsecond, Seed: 1})
	tc.waitForLeader(2 * time.Second)
	const per = 20
	for i := 1; i <= per; i++ {
		for _, n := range []types.NodeID{"n1", "n2", "n3"} {
			tc.proposeVia(n, appCmd(types.NodeID("c-"+string(n)), uint64(i)))
		}
	}
	want := 3 * per
	tc.waitUntil(func() bool {
		for _, n := range []types.NodeID{"n1", "n2", "n3"} {
			if len(tc.appDelivered(n)) < want {
				return false
			}
		}
		return true
	}, "all decisions everywhere", 10*time.Second)
	tc.checkAgreement()
}

func TestFollowerForwardsToLeader(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{BaseLatency: 100 * time.Microsecond})
	leader := tc.waitForLeader(2 * time.Second)
	var follower types.NodeID
	for _, n := range tc.cfg.Members {
		if n != leader {
			follower = n
			break
		}
	}
	tc.proposeVia(follower, appCmd("c9", 1))
	tc.waitUntil(func() bool { return len(tc.appDelivered(leader)) == 1 }, "forwarded decision", 5*time.Second)
	tc.checkAgreement()
}

func TestLeaderFailover(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{BaseLatency: 100 * time.Microsecond})
	leader := tc.waitForLeader(2 * time.Second)
	tc.proposeVia(leader, appCmd("c1", 1))
	tc.waitUntil(func() bool { return len(tc.appDelivered(leader)) == 1 }, "first decision", 5*time.Second)

	// Crash the leader (drop all its traffic both ways).
	tc.net.Isolate(leader)
	var survivor types.NodeID
	tc.waitUntil(func() bool {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		for id, r := range tc.reps {
			if id == leader {
				continue
			}
			if _, am := r.Leader(); am {
				survivor = id
				return true
			}
		}
		return false
	}, "new leader after failover", 5*time.Second)

	tc.proposeVia(survivor, appCmd("c1", 2))
	tc.waitUntil(func() bool { return len(tc.appDelivered(survivor)) >= 2 }, "post-failover decision", 5*time.Second)
	tc.checkAgreement()
}

func TestProgressUnderMessageLoss(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{
		BaseLatency: 100 * time.Microsecond,
		Jitter:      300 * time.Microsecond,
		LossRate:    0.10,
		Seed:        7,
	})
	tc.waitForLeader(5 * time.Second)
	const total = 30
	for i := 1; i <= total; i++ {
		tc.proposeVia("n1", appCmd("c1", uint64(i)))
	}
	// Retransmission must push everything through despite 10% loss. The
	// proposer queue is lossless once accepted by the leader; commands
	// dropped before reaching the leader are re-forwarded by pending.
	tc.waitUntil(func() bool { return len(tc.appDelivered("n1")) >= total }, "all under loss", 20*time.Second)
	tc.checkAgreement()
}

func TestMinorityPartitionStalls(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{BaseLatency: 100 * time.Microsecond})
	leader := tc.waitForLeader(2 * time.Second)

	// Cut the leader off from both followers: it is now a minority.
	others := tc.cfg.Others(leader)
	tc.net.Partition([]types.NodeID{leader}, others)

	tc.proposeVia(leader, appCmd("c1", 1))
	time.Sleep(100 * time.Millisecond)
	if got := len(tc.appDelivered(leader)); got != 0 {
		t.Fatalf("minority decided %d commands", got)
	}

	// Heal; the command must eventually commit (it was queued/pending).
	tc.net.HealAll()
	tc.waitUntil(func() bool {
		for _, n := range tc.cfg.Members {
			if len(tc.appDelivered(n)) >= 1 {
				return true
			}
		}
		return false
	}, "post-heal decision", 10*time.Second)
	tc.checkAgreement()
}

func TestLaggardCatchesUp(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{BaseLatency: 100 * time.Microsecond})
	leader := tc.waitForLeader(2 * time.Second)
	var laggard types.NodeID
	for _, n := range tc.cfg.Members {
		if n != leader {
			laggard = n
			break
		}
	}
	tc.net.Isolate(laggard)
	const total = 25
	for i := 1; i <= total; i++ {
		tc.proposeVia(leader, appCmd("c1", uint64(i)))
	}
	tc.waitUntil(func() bool { return len(tc.appDelivered(leader)) >= total }, "decisions at leader", 10*time.Second)
	if got := len(tc.appDelivered(laggard)); got != 0 {
		t.Fatalf("isolated node received %d decisions", got)
	}
	tc.net.Restore(laggard)
	tc.waitUntil(func() bool { return len(tc.appDelivered(laggard)) >= total }, "laggard catch-up", 10*time.Second)
	tc.checkAgreement()
}

func TestCrashRecoveryKeepsPromisesAndLog(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{BaseLatency: 100 * time.Microsecond})
	leader := tc.waitForLeader(2 * time.Second)
	const total = 10
	for i := 1; i <= total; i++ {
		tc.proposeVia(leader, appCmd("c1", uint64(i)))
	}
	tc.waitUntil(func() bool {
		for _, n := range tc.cfg.Members {
			if len(tc.appDelivered(n)) < total {
				return false
			}
		}
		return true
	}, "decisions everywhere", 10*time.Second)

	// Pick a follower, stop it, restart from the same store.
	var victim types.NodeID
	for _, n := range tc.cfg.Members {
		if n != leader {
			victim = n
			break
		}
	}
	tc.mu.Lock()
	old := tc.reps[victim]
	tc.mu.Unlock()
	old.Stop()

	tc.startReplica(victim) // re-reads the persisted log

	// The restarted replica must redeliver its full decided prefix.
	tc.waitUntil(func() bool { return len(tc.appDelivered(victim)) >= total }, "redelivery after restart", 10*time.Second)
	app := tc.appDelivered(victim)
	for i := 0; i < total; i++ {
		if app[i].Seq != uint64(i+1) {
			t.Fatalf("redelivered order wrong at %d: %v", i, app[i])
		}
	}
	tc.checkAgreement()
}

func TestProposeOnNonMemberRejected(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(1, "n1", "n2", "n3")
	_, err := New(cfg, "outsider", net.Endpoint("outsider"), storage.NewMem(), 1, Options{})
	if err == nil {
		t.Fatal("constructing on a non-member must fail")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(1, "n1")
	r, err := New(cfg, "n1", net.Endpoint("n1"), storage.NewMem(), 1, fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(); err == nil {
		t.Fatal("second Start must fail")
	}
}

func TestProposeAfterStop(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(1, "n1")
	r, err := New(cfg, "n1", net.Endpoint("n1"), storage.NewMem(), 1, fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if err := r.Propose(types.NoopCommand()); err != smr.ErrStopped {
		t.Fatalf("got %v, want ErrStopped", err)
	}
	// Decisions channel must be closed.
	if _, ok := <-r.Decisions(); ok {
		t.Fatal("decision channel still open after Stop")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(1, "n1")
	r, _ := New(cfg, "n1", net.Endpoint("n1"), storage.NewMem(), 1, fastOpts(0))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	r.Stop()
}

// TestChaosAgreement drives a 5-node cluster through random leader crashes,
// partitions and 5% message loss, then heals and verifies P1.
func TestChaosAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in -short mode")
	}
	tc := newTestCluster(t, 5, transport.Options{
		BaseLatency: 100 * time.Microsecond,
		Jitter:      400 * time.Microsecond,
		LossRate:    0.05,
		Seed:        99,
	})
	tc.waitForLeader(5 * time.Second)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // chaos injector
		defer wg.Done()
		victims := tc.cfg.Members
		i := 0
		for {
			select {
			case <-done:
				return
			case <-time.After(40 * time.Millisecond):
			}
			v := victims[i%len(victims)]
			i++
			tc.net.Isolate(v)
			select {
			case <-done:
				tc.net.Restore(v)
				return
			case <-time.After(30 * time.Millisecond):
			}
			tc.net.Restore(v)
		}
	}()

	const total = 60
	for i := 1; i <= total; i++ {
		n := tc.cfg.Members[i%len(tc.cfg.Members)]
		tc.mu.Lock()
		rep := tc.reps[n]
		tc.mu.Unlock()
		_ = rep.Propose(appCmd("chaos", uint64(i))) // best effort; loss is fine
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	tc.net.HealAll()

	// After healing, everyone must converge to identical prefixes; we
	// don't require all proposals to have survived (clients would retry),
	// only agreement and progress.
	tc.waitUntil(func() bool { return len(tc.appDelivered("n1")) > 0 }, "some progress", 10*time.Second)
	// Give catch-up a moment to equalize, then check consistency.
	time.Sleep(300 * time.Millisecond)
	tc.checkAgreement()
}

func TestStatsCounters(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{})
	leader := tc.waitForLeader(2 * time.Second)
	tc.proposeVia(leader, appCmd("c", 1))
	tc.waitUntil(func() bool { return len(tc.appDelivered(leader)) == 1 }, "decision", 5*time.Second)
	tc.mu.Lock()
	st := tc.reps[leader].Stats()
	tc.mu.Unlock()
	if st.Proposals < 1 || st.Decided < 1 || st.Elections < 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestBatchingPacksManyCommandsPerSlot verifies the A1 optimization: with
// BatchSize 16, a burst of commands consumes far fewer slots.
func TestBatchingPacksManyCommandsPerSlot(t *testing.T) {
	net := transport.NewNetwork(transport.Options{BaseLatency: 200 * time.Microsecond})
	defer net.Close()
	cfg := types.MustConfig(1, "n1", "n2", "n3")
	opts := fastOpts(0)
	opts.BatchSize = 16
	reps := make(map[types.NodeID]*Replica, 3)
	for _, id := range cfg.Members {
		r, err := New(cfg, id, net.Endpoint(id), storage.NewMem(), 1, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		reps[id] = r
	}

	// Collect from n1, unpacking batches.
	var mu sync.Mutex
	var apps int
	var maxSlot types.Slot
	done := make(chan struct{})
	go func() {
		defer close(done)
		for d := range reps["n1"].Decisions() {
			mu.Lock()
			if d.Slot > maxSlot {
				maxSlot = d.Slot
			}
			switch d.Cmd.Kind {
			case types.CmdApp:
				apps++
			case types.CmdBatch:
				subs, err := types.DecodeBatch(d.Cmd.Data)
				if err != nil {
					t.Errorf("corrupt batch: %v", err)
				}
				for _, sub := range subs {
					if sub.Kind == types.CmdApp {
						apps++
					}
				}
			}
			mu.Unlock()
		}
	}()

	// Wait for a leader, then burst 100 commands at it.
	var leader *Replica
	deadline := time.Now().Add(5 * time.Second)
	for leader == nil && time.Now().Before(deadline) {
		for _, r := range reps {
			if _, am := r.Leader(); am {
				leader = r
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader")
	}
	const total = 100
	for i := 1; i <= total; i++ {
		for {
			if err := leader.Propose(appCmd("c1", uint64(i))); err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got, slots := apps, maxSlot
		mu.Unlock()
		if got >= total {
			if slots >= total {
				t.Fatalf("batching ineffective: %d commands used %d slots", got, slots)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d delivered", got, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProgressWithSlowStorage charges every stable write a real latency
// (models fsync) and checks the engine still commits correctly — just more
// slowly.
func TestProgressWithSlowStorage(t *testing.T) {
	net := transport.NewNetwork(transport.Options{BaseLatency: 100 * time.Microsecond})
	defer net.Close()
	cfg := types.MustConfig(1, "n1", "n2", "n3")
	reps := make([]*Replica, 0, 3)
	var mu sync.Mutex
	counts := map[types.NodeID]int{}
	for _, id := range cfg.Members {
		st := storage.NewMemWithOptions(storage.MemOptions{AutoSync: true, WriteLatency: 200 * time.Microsecond})
		r, err := New(cfg, id, net.Endpoint(id), st, 1, fastOpts(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		reps = append(reps, r)
		id := id
		go func(r *Replica) {
			for d := range r.Decisions() {
				if d.Cmd.Kind == types.CmdApp {
					mu.Lock()
					counts[id]++
					mu.Unlock()
				}
			}
		}(r)
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 1; i <= 10; i++ {
		for {
			if err := reps[0].Propose(appCmd("c", uint64(i))); err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	for {
		mu.Lock()
		done := counts["n1"] >= 10 && counts["n2"] >= 10 && counts["n3"] >= 10
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("slow-storage cluster stuck: %v", counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, r := range reps {
		if r.Stats().InvariantViolations != 0 {
			t.Fatal("violations with slow storage")
		}
	}
}
