package paxos

import (
	"repro/internal/smr"
	"repro/internal/storage"
	"repro/internal/types"
)

// --- persistence -----------------------------------------------------------

func (r *Replica) persistPromised() {
	w := types.NewWriter(16)
	w.Ballot(r.promised)
	// Stable storage failures are unrecoverable for an acceptor; surface
	// them as invariant violations so tests and the harness notice.
	if err := r.setDurable(r.prefix+"promised", w.Bytes()); err != nil {
		r.stats.violations.Add(1)
	}
}

func (r *Replica) persistAccepted(e acceptedEntry) {
	w := types.NewWriter(24 + e.Cmd.EncodedSize())
	w.Uvarint(uint64(e.Slot))
	w.Ballot(e.Ballot)
	e.Cmd.Encode(w)
	if err := r.setDurable(storage.SlotKey(r.prefix+"acc/", uint64(e.Slot)), w.Bytes()); err != nil {
		r.stats.violations.Add(1)
	}
}

func (r *Replica) persistDecided(slot types.Slot, cmd types.Command) {
	w := types.NewWriter(8 + cmd.EncodedSize())
	w.Uvarint(uint64(slot))
	cmd.Encode(w)
	if err := r.setDurable(storage.SlotKey(r.prefix+"dec/", uint64(slot)), w.Bytes()); err != nil {
		r.stats.violations.Add(1)
	}
}

// --- message dispatch ------------------------------------------------------

func (r *Replica) handleMessage(m inboundMsg) {
	switch m.kind {
	case KindPrepare:
		msg, err := decodePrepare(m.payload)
		if err == nil {
			r.onPrepare(m.from, msg)
		}
	case KindPromise:
		msg, err := decodePromise(m.payload)
		if err == nil {
			r.onPromise(m.from, msg)
		}
	case KindAccept:
		msg, err := decodeAccept(m.payload)
		if err == nil {
			r.onAccept(m.from, msg)
		}
	case KindAccepted:
		msg, err := decodeAccepted(m.payload)
		if err == nil {
			r.onAccepted(m.from, msg)
		}
	case KindDecide:
		msg, err := decodeDecide(m.payload)
		if err == nil {
			r.learn(msg.Slot, msg.Cmd)
		}
	case KindHeartbeat:
		msg, err := decodeHeartbeat(m.payload)
		if err == nil {
			r.onHeartbeat(m.from, msg)
		}
	case KindCatchupReq:
		msg, err := decodeCatchupReq(m.payload)
		if err == nil {
			r.onCatchupReq(m.from, msg)
		}
	case KindCatchupResp:
		msg, err := decodeCatchupResp(m.payload)
		if err == nil {
			for _, e := range msg.Entries {
				r.learn(e.Slot, e.Cmd)
			}
			// Appended progress fields: the responder's contiguous frontier
			// is a decided watermark, and a truncation floor at or above our
			// delivery cursor means the missing prefix is gone from the log —
			// only a checkpoint install (reconfig layer) can fill it.
			if msg.Frontier > r.maxDecidedSeen {
				r.maxDecidedSeen = msg.Frontier
			}
			if msg.TruncatedBelow >= r.deliverNext {
				if msg.TruncatedBelow > r.maxDecidedSeen {
					r.maxDecidedSeen = msg.TruncatedBelow
				}
				r.ckptNeeded.Store(true)
			}
		}
	case KindForward:
		msg, err := decodeForward(m.payload)
		if err == nil {
			for _, cmd := range msg.Cmds {
				r.handlePropose(cmd)
			}
		}
	case KindReadProbe:
		msg, err := decodeReadProbe(m.payload)
		if err == nil {
			r.onReadProbe(m.from, msg)
		}
	case KindReadProbeAck:
		msg, err := decodeReadProbeAck(m.payload)
		if err == nil {
			r.onReadProbeAck(m.from, msg)
		}
	case KindHeartbeatAck:
		msg, err := decodeHeartbeatAck(m.payload)
		if err == nil {
			r.onHeartbeatAck(m.from, msg)
		}
	}
}

func (r *Replica) send(to types.NodeID, kind uint8, payload []byte) {
	if to == r.self {
		return // local interactions are handled synchronously, never sent
	}
	if r.inBurst {
		r.outbox = append(r.outbox, deferredSend{to: to, kind: kind, payload: payload})
		return
	}
	_ = r.ep.Send(to, r.stream, kind, payload)
}

func (r *Replica) broadcast(kind uint8, payload []byte) {
	if r.inBurst {
		r.outbox = append(r.outbox, deferredSend{kind: kind, payload: payload})
		return
	}
	r.ep.Broadcast(r.cfg.Members, r.stream, kind, payload)
}

// setDurable writes acceptor/learner state. Inside a burst the write is
// staged and becomes durable at the burst's group-commit Sync — strictly
// before any message or decision from the burst is released (endBurst);
// outside a burst it is a plain synchronous durable write.
func (r *Replica) setDurable(key string, value []byte) error {
	if r.inBurst {
		r.burstDirty = true
		return r.bstore.SetBuffered(key, value)
	}
	return r.store.Set(key, value)
}

// --- acceptor role ---------------------------------------------------------

// acceptPrepare applies phase-1a to the local acceptor state and returns the
// promise to send back. Persisting happens before the reply leaves.
func (r *Replica) acceptPrepare(msg prepareMsg) promiseMsg {
	if msg.Ballot.Less(r.promised) {
		return promiseMsg{Ballot: msg.Ballot, OK: false, Promised: r.promised,
			Decided: r.deliverNext - 1, TruncatedBelow: r.truncatedBelow}
	}
	if r.promised.Less(msg.Ballot) {
		r.promised = msg.Ballot
		r.persistPromised()
	}
	out := promiseMsg{Ballot: msg.Ballot, OK: true, Promised: r.promised,
		Decided: r.deliverNext - 1, TruncatedBelow: r.truncatedBelow}
	for slot, e := range r.accepted {
		if slot >= msg.From {
			out.Accepted = append(out.Accepted, e)
		}
	}
	return out
}

func (r *Replica) onPrepare(from types.NodeID, msg prepareMsg) {
	if r.suppressPrepare(msg) {
		// Lease mode: no promise for a rival while the current leader is
		// inside its liveness window; the candidate retries and succeeds
		// once the window lapses.
		return
	}
	if r.maxBallotSeen.Less(msg.Ballot) {
		r.maxBallotSeen = msg.Ballot
	}
	pm := r.acceptPrepare(msg)
	if pm.OK && (r.role == roleLeader || r.role == roleCandidate) && r.ballot.Less(msg.Ballot) {
		r.stepDown()
	}
	r.send(from, KindPromise, encodePromise(pm))
}

// acceptAccept applies phase-2a locally and returns the vote.
func (r *Replica) acceptAccept(msg acceptMsg) acceptedMsg {
	if msg.Ballot.Less(r.promised) {
		return acceptedMsg{Ballot: msg.Ballot, Slot: msg.Slot, OK: false, Promised: r.promised}
	}
	if r.promised.Less(msg.Ballot) {
		r.promised = msg.Ballot
		r.persistPromised()
	}
	e := acceptedEntry{Slot: msg.Slot, Ballot: msg.Ballot, Cmd: msg.Cmd}
	r.accepted[msg.Slot] = e
	r.persistAccepted(e)
	if msg.Slot >= r.nextSlot {
		r.nextSlot = msg.Slot + 1
	}
	return acceptedMsg{Ballot: msg.Ballot, Slot: msg.Slot, OK: true, Promised: r.promised}
}

func (r *Replica) onAccept(from types.NodeID, msg acceptMsg) {
	if r.maxBallotSeen.Less(msg.Ballot) {
		r.maxBallotSeen = msg.Ballot
	}
	if (r.role == roleLeader || r.role == roleCandidate) && r.ballot.Less(msg.Ballot) {
		r.stepDown()
	}
	// Fast path for already-decided slots: tell the proposer directly.
	if cmd, ok := r.decided[msg.Slot]; ok {
		r.send(from, KindDecide, encodeDecide(decideMsg{Slot: msg.Slot, Cmd: cmd}))
		return
	}
	// Truncated slots were chosen, quorum-acknowledged by a checkpoint, and
	// released — the command bytes are gone, so neither the decided fast
	// path nor a fresh vote is possible. Voting would be outright unsafe: a
	// leader that missed the checkpoint could noop-fill a released slot and
	// this vote would help decide a second, different value for it. Answer
	// with a checkpoint redirect instead (never a silent miss).
	if msg.Slot <= r.truncatedBelow {
		r.send(from, KindCatchupResp, encodeCatchupResp(catchupRespMsg{
			Frontier:       r.deliverNext - 1,
			TruncatedBelow: r.truncatedBelow,
		}))
		return
	}
	am := r.acceptAccept(msg)
	r.send(from, KindAccepted, encodeAccepted(am))
}

// --- proposer / leader role --------------------------------------------------

func (r *Replica) startElection() {
	r.stats.elections.Add(1)
	r.role = roleCandidate
	r.amLeader.Store(false)
	base := r.maxBallotSeen
	if base.Less(r.promised) {
		base = r.promised
	}
	if base.Less(r.ballot) {
		base = r.ballot
	}
	r.ballot = base.Next(r.self)
	if r.maxBallotSeen.Less(r.ballot) {
		r.maxBallotSeen = r.ballot
	}
	r.promises = make(map[types.NodeID]promiseMsg, r.cfg.N())
	r.prepareAge = 0
	r.resetElectionDeadline()

	msg := prepareMsg{Ballot: r.ballot, From: r.deliverNext}
	// Promise to ourselves first (persisted), then solicit the others.
	self := r.acceptPrepare(msg)
	r.broadcast(KindPrepare, encodePrepare(msg))
	r.onPromise(r.self, self)
}

func (r *Replica) onPromise(from types.NodeID, msg promiseMsg) {
	if r.role != roleCandidate || !msg.Ballot.Equal(r.ballot) {
		return
	}
	if !msg.OK {
		if r.maxBallotSeen.Less(msg.Promised) {
			r.maxBallotSeen = msg.Promised
		}
		r.stepDown()
		return
	}
	if msg.Decided > r.maxDecidedSeen {
		r.maxDecidedSeen = msg.Decided
	}
	r.promises[from] = msg
	if len(r.promises) >= r.cfg.Quorum() {
		r.becomeLeader()
	}
}

func (r *Replica) becomeLeader() {
	r.role = roleLeader
	r.amLeader.Store(true)
	r.leaderHint.Store(r.self)
	r.inflight = make(map[types.Slot]*slotProgress)
	r.hbCountdown = 0

	// Adopt the highest-ballot accepted value per open slot from the
	// promise quorum; slots with no reported value get noops.
	from := r.deliverNext
	best := make(map[types.Slot]acceptedEntry)
	var maxSeen types.Slot
	for _, pm := range r.promises {
		for _, e := range pm.Accepted {
			if e.Slot < from {
				continue
			}
			if cur, ok := best[e.Slot]; !ok || cur.Ballot.Less(e.Ballot) {
				best[e.Slot] = e
			}
			if e.Slot > maxSeen {
				maxSeen = e.Slot
			}
		}
	}
	if r.nextSlot <= maxSeen {
		r.nextSlot = maxSeen + 1
	}
	if r.nextSlot < from {
		r.nextSlot = from
	}
	// Truncation floors reported by the promise quorum. Every slot at or
	// below a promiser's floor is globally chosen (floors rise only after a
	// quorum-acknowledged checkpoint), but its value may be unrecoverable
	// from this quorum: the promiser that accepted it has released the
	// bytes, and any accepted entry another promiser reports for it may be
	// a stale lower-ballot value that lost. Re-proposing anything at such a
	// slot — a noop or a reported value — risks deciding a second value, so
	// those slots are skipped entirely; the checkpoint covers them.
	maxFloor := r.truncatedBelow
	for _, pm := range r.promises {
		if pm.TruncatedBelow > maxFloor {
			maxFloor = pm.TruncatedBelow
		}
	}
	if maxFloor > r.maxDecidedSeen {
		r.maxDecidedSeen = maxFloor
	}
	if r.deliverNext <= maxFloor {
		// Our own delivery cursor is inside the released range: no log
		// replay can fill it, only a checkpoint install.
		r.ckptNeeded.Store(true)
	}
	// Read fast-path bookkeeping: every command chosen before this election
	// is below nextSlot now (promise-quorum intersection), so nextSlot-1 is
	// a floor for all read indexes this term. No lease or probe round from
	// an earlier term survives the transition.
	r.electionFloor = r.nextSlot - 1
	r.clearLease()
	r.failReadWaiters(smr.ErrNotLeader)

	for slot := from; slot < r.nextSlot; slot++ {
		if cmd, ok := r.decided[slot]; ok {
			// Already chosen: re-announce for the benefit of laggards.
			r.broadcast(KindDecide, encodeDecide(decideMsg{Slot: slot, Cmd: cmd}))
			continue
		}
		if slot <= maxFloor {
			continue // released after a checkpoint; never re-propose
		}
		if e, ok := best[slot]; ok {
			r.proposeAtSlot(slot, e.Cmd)
		} else {
			r.proposeAtSlot(slot, types.NoopCommand())
		}
	}
	r.drainPending()
}

// proposeNext assigns cmd the next free slot and runs phase 2 for it. The
// slot counter is advanced before the local accept so the acceptor-side
// bookkeeping in acceptAccept cannot double-advance it.
func (r *Replica) proposeNext(cmd types.Command) {
	slot := r.nextSlot
	r.nextSlot++
	r.proposeAtSlot(slot, cmd)
}

// proposeAtSlot runs phase 2 for cmd at slot under the current ballot.
func (r *Replica) proposeAtSlot(slot types.Slot, cmd types.Command) {
	sp := &slotProgress{cmd: cmd, acks: make(map[types.NodeID]bool, r.cfg.N())}
	r.inflight[slot] = sp
	msg := acceptMsg{Ballot: r.ballot, Slot: slot, Cmd: cmd}
	self := r.acceptAccept(msg) // local vote, persisted first
	r.broadcast(KindAccept, encodeAccept(msg))
	if self.OK {
		sp.acks[r.self] = true
		r.maybeDecide(slot, sp)
	}
}

func (r *Replica) onAccepted(from types.NodeID, msg acceptedMsg) {
	if r.role != roleLeader || !msg.Ballot.Equal(r.ballot) {
		return
	}
	if !msg.OK {
		if r.maxBallotSeen.Less(msg.Promised) {
			r.maxBallotSeen = msg.Promised
		}
		r.stepDown()
		return
	}
	sp, ok := r.inflight[msg.Slot]
	if !ok {
		return // already decided or cleaned up
	}
	sp.acks[from] = true
	r.maybeDecide(msg.Slot, sp)
}

func (r *Replica) maybeDecide(slot types.Slot, sp *slotProgress) {
	if len(sp.acks) < r.cfg.Quorum() {
		return
	}
	delete(r.inflight, slot)
	r.broadcast(KindDecide, encodeDecide(decideMsg{Slot: slot, Cmd: sp.cmd}))
	r.learn(slot, sp.cmd)
	r.drainPending()
}

func (r *Replica) stepDown() {
	if r.role == roleLeader || r.role == roleCandidate {
		r.stats.stepDowns.Add(1)
	}
	r.role = roleFollower
	r.amLeader.Store(false)
	// Re-queue inflight commands: a new leader may or may not choose
	// them; session dedup upstairs makes the re-submission harmless.
	for _, sp := range r.inflight {
		if !sp.cmd.IsNoop() && len(r.pending) < r.opts.PendingLimit {
			r.pending = append(r.pending, sp.cmd)
		}
	}
	r.inflight = make(map[types.Slot]*slotProgress)
	r.promises = make(map[types.NodeID]promiseMsg)
	// A deposed leader must answer no more fast-path reads: fail waiters
	// (callers fall back to the log) and drop any lease immediately.
	r.failReadWaiters(smr.ErrNotLeader)
	r.clearLease()
	r.resetElectionDeadline()
}

// --- learner role ------------------------------------------------------------

func (r *Replica) learn(slot types.Slot, cmd types.Command) {
	if slot <= r.truncatedBelow {
		// Already covered by an installed checkpoint and released; learning
		// it again would resurrect a record below the truncation floor.
		return
	}
	if sp, ok := r.inflight[slot]; ok {
		// The slot was chosen out of band — an old leader's decide
		// broadcast, a catch-up response, or an acceptor's already-decided
		// fast path in onAccept — so our own phase-2 round for it is moot.
		// The entry must be cleared here: nothing else removes it (the
		// acceptors keep answering KindDecide, never Accepted), and a few
		// such zombies would permanently fill the Pipeline window and wedge
		// the proposer. If a different value won the slot, re-queue ours;
		// session dedup upstairs makes the re-submission harmless.
		delete(r.inflight, slot)
		if !sp.cmd.Equal(cmd) && !sp.cmd.IsNoop() && len(r.pending) < r.opts.PendingLimit {
			r.pending = append(r.pending, sp.cmd)
		}
		defer r.drainPending()
	}
	if prev, ok := r.decided[slot]; ok {
		if !prev.Equal(cmd) {
			// Two different decisions for one slot: agreement broken.
			r.stats.violations.Add(1)
		}
		return
	}
	r.decided[slot] = cmd
	r.persistDecided(slot, cmd)
	r.stats.retained.Store(int64(len(r.decided)))
	if slot > r.maxDecidedSeen {
		r.maxDecidedSeen = slot
	}
	if slot >= r.nextSlot {
		r.nextSlot = slot + 1
	}
	r.deliverReady()
}

func (r *Replica) deliverReady() {
	for {
		cmd, ok := r.decided[r.deliverNext]
		if !ok {
			return
		}
		r.enqueueDecision(smr.Decision{Slot: r.deliverNext, Cmd: cmd})
		r.stats.decided.Add(1)
		r.deliverNext++
	}
}

func (r *Replica) onCatchupReq(from types.NodeID, msg catchupReqMsg) {
	// A request that starts at or below our truncation floor cannot be
	// served from the log — those slots were released after a checkpoint.
	// Serve what we still have above the floor and let the appended
	// TruncatedBelow field redirect the requester to the checkpoint.
	start := msg.From
	redirect := false
	if start <= r.truncatedBelow {
		redirect = true
		start = r.truncatedBelow + 1
	}
	to := msg.To
	if limit := start + types.Slot(r.opts.CatchupBatch) - 1; to > limit {
		to = limit
	}
	resp := catchupRespMsg{Frontier: r.deliverNext - 1, TruncatedBelow: r.truncatedBelow}
	for slot := start; slot <= to; slot++ {
		if cmd, ok := r.decided[slot]; ok {
			resp.Entries = append(resp.Entries, decideMsg{Slot: slot, Cmd: cmd})
		}
	}
	if len(resp.Entries) > 0 || redirect {
		r.send(from, KindCatchupResp, encodeCatchupResp(resp))
	}
}

// --- proposals ----------------------------------------------------------------

func (r *Replica) handlePropose(cmd types.Command) {
	r.stats.proposals.Add(1)
	if r.role == roleLeader && r.opts.BatchSize <= 1 && len(r.inflight) < r.opts.Pipeline {
		r.proposeNext(cmd)
		return
	}
	if len(r.pending) >= r.opts.PendingLimit {
		return // overload: drop; clients retry
	}
	r.pending = append(r.pending, cmd)
	if r.role == roleLeader {
		r.drainPending() // batching path: pack what is queued
		return
	}
	r.flushPendingToLeader()
}

// drainPending assigns queued proposals to slots while the pipeline window
// (Options.Pipeline, always <= MaxInflight) has room, packing up to
// BatchSize commands per slot. Keeping the working window narrower than the
// protocol's hard MaxInflight bound concentrates queued commands into fewer,
// fuller slots: each open slot costs a broadcast, a durable log record on
// every acceptor, and a decision delivery.
func (r *Replica) drainPending() {
	for r.role == roleLeader && len(r.pending) > 0 && len(r.inflight) < r.opts.Pipeline {
		k := r.opts.BatchSize
		if k > len(r.pending) {
			k = len(r.pending)
		}
		if k <= 1 {
			cmd := r.pending[0]
			r.pending = r.pending[1:]
			r.proposeNext(cmd)
			continue
		}
		batch := types.BatchCommand(r.pending[:k])
		r.pending = r.pending[k:]
		r.proposeNext(batch)
	}
}

// flushPendingToLeader forwards queued proposals when we are a follower that
// knows the leader.
func (r *Replica) flushPendingToLeader() {
	if r.role != roleFollower || len(r.pending) == 0 {
		return
	}
	hint, _ := r.leaderHint.Load().(types.NodeID)
	if hint == "" || hint == r.self {
		return
	}
	// One frame for the whole queue (chunked so a huge backlog cannot
	// produce an oversized frame); encodeForward copies, so the pending
	// buffer can be reused immediately.
	for pend := r.pending; len(pend) > 0; {
		k := len(pend)
		if k > maxForwardBatch {
			k = maxForwardBatch
		}
		r.send(hint, KindForward, encodeForward(forwardMsg{Cmds: pend[:k]}))
		pend = pend[k:]
	}
	r.pending = r.pending[:0]
}

// maxForwardBatch caps how many queued commands ride in one forward frame.
const maxForwardBatch = 128

// --- heartbeats & timers --------------------------------------------------------

func (r *Replica) onHeartbeat(from types.NodeID, msg heartbeatMsg) {
	if msg.Ballot.Less(r.maxBallotSeen) {
		// Stale leader; still use its decided watermark for catch-up.
		if msg.Decided > r.maxDecidedSeen {
			r.maxDecidedSeen = msg.Decided
		}
		return
	}
	r.maxBallotSeen = msg.Ballot
	if (r.role == roleLeader || r.role == roleCandidate) && r.ballot.Less(msg.Ballot) {
		r.stepDown()
	}
	r.leaderHint.Store(msg.Ballot.Leader)
	r.ticksSinceHB = 0
	if msg.Decided > r.maxDecidedSeen {
		r.maxDecidedSeen = msg.Decided
	}
	if msg.WantAck {
		r.send(from, KindHeartbeatAck, encodeHeartbeatAck(heartbeatAckMsg{Ballot: msg.Ballot, Seq: msg.Seq}))
	}
	r.flushPendingToLeader()
}

func (r *Replica) tick() {
	switch r.role {
	case roleLeader:
		r.hbCountdown--
		if r.hbCountdown <= 0 {
			r.hbCountdown = r.opts.HeartbeatEveryTicks
			hb := heartbeatMsg{Ballot: r.ballot, Decided: r.deliverNext - 1}
			if r.opts.EnableLeaseReads {
				r.hbSeq++
				hb.Seq = r.hbSeq
				hb.WantAck = true
				r.noteHeartbeatSent(hb.Seq)
			}
			r.broadcast(KindHeartbeat, encodeHeartbeat(hb))
		}
		if pr := r.curProbe; pr != nil {
			pr.age++
			if pr.age >= r.opts.ResendTicks {
				pr.age = 0
				r.broadcast(KindReadProbe, encodeReadProbe(readProbeMsg{Ballot: r.ballot, Seq: pr.seq}))
			}
		}
		for slot, sp := range r.inflight {
			sp.sinceTicks++
			if sp.sinceTicks >= r.opts.ResendTicks {
				sp.sinceTicks = 0
				r.broadcast(KindAccept, encodeAccept(acceptMsg{Ballot: r.ballot, Slot: slot, Cmd: sp.cmd}))
			}
		}
		r.drainPending()
	case roleCandidate:
		r.prepareAge++
		if r.prepareAge >= r.opts.ResendTicks {
			r.prepareAge = 0
			r.broadcast(KindPrepare, encodePrepare(prepareMsg{Ballot: r.ballot, From: r.deliverNext}))
		}
		r.ticksSinceHB++
		if r.ticksSinceHB >= r.electionDeadline {
			r.startElection() // new, higher ballot
		}
	default: // follower
		r.ticksSinceHB++
		if r.ticksSinceHB >= r.electionDeadline {
			r.startElection()
		}
		r.flushPendingToLeader()
	}

	// Catch-up: if we know of decided slots beyond our contiguous prefix,
	// ask a peer for the hole.
	r.catchupCooldown--
	if r.catchupCooldown <= 0 && r.maxDecidedSeen >= r.deliverNext {
		r.catchupCooldown = 2
		target := r.pickCatchupPeer()
		if target != "" {
			r.stats.catchups.Add(1)
			req := catchupReqMsg{From: r.deliverNext, To: r.maxDecidedSeen}
			r.send(target, KindCatchupReq, encodeCatchupReq(req))
		}
	}
}

func (r *Replica) pickCatchupPeer() types.NodeID {
	if hint, _ := r.leaderHint.Load().(types.NodeID); hint != "" && hint != r.self {
		return hint
	}
	others := r.cfg.Others(r.self)
	if len(others) == 0 {
		return ""
	}
	return others[r.rng.Intn(len(others))]
}
