package paxos

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/smr"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options tunes the engine's timing and pipeline. The zero value is
// normalized to the defaults below by New.
type Options struct {
	// TickInterval is the engine's timer granularity. Default 2ms.
	TickInterval time.Duration
	// HeartbeatEveryTicks is how often the leader beacons. Default 2.
	HeartbeatEveryTicks int
	// ElectionTimeoutTicks is the ticks without a heartbeat before a
	// follower competes for leadership. Default 10.
	ElectionTimeoutTicks int
	// ElectionJitterTicks adds uniform random ticks to the election
	// timeout to avoid dueling proposers. Default 10.
	ElectionJitterTicks int
	// ResendTicks is how long a candidate/leader waits before
	// retransmitting an unanswered prepare or accept. Default 5.
	ResendTicks int
	// MaxInflight caps the phase-2 pipeline depth. Default 64. This is the
	// hard protocol bound on concurrently open slots (it also sizes the
	// re-propose work after a leader change); the working pipeline window a
	// leader actually drives is the smaller Pipeline below.
	MaxInflight int
	// Pipeline is the number of slot windows a leader keeps concurrently
	// in flight when draining its proposal queue. Deeper pipelines overlap
	// more accept rounds but spread queued commands across more, emptier
	// slots — each slot costs a broadcast, a WAL record and a decision
	// delivery, so past a few windows the per-slot overhead wins. Default 4,
	// the winner of the BenchmarkPipelineDepth sweep on the durable WAL
	// backend; clamped to MaxInflight.
	Pipeline int
	// BatchSize is the maximum number of queued commands a leader packs
	// into one consensus slot. Default 16, the winner of the
	// BenchmarkBatchSizeDefault sweep on the durable WAL backend (batching
	// decides how many commands share one group-commit fsync); the A1
	// ablation sweeps it explicitly.
	BatchSize int
	// PendingLimit caps queued proposals awaiting a leader or a pipeline
	// slot; beyond it Propose returns ErrBusy. Default 4096.
	PendingLimit int
	// CatchupBatch is the max decided entries per catch-up response.
	// Default 512.
	CatchupBatch int
	// EnableLeaseReads turns on leader leases: ReadIndex answers without a
	// quorum round while a quorum-acked heartbeat lease is current, and
	// acceptors suppress promises to rival candidates inside the leader's
	// liveness window. Off by default; safety additionally assumes bounded
	// clock-rate skew (see LeaseTicks margin).
	EnableLeaseReads bool
	// LeaseTicks is the lease term granted by one quorum-acked heartbeat,
	// in ticks from its send time; a 25% margin is subtracted to absorb
	// clock-rate skew. Default ElectionTimeoutTicks/2. Terms longer than
	// the election timeout are unsafe at this layer and rely entirely on
	// the composition layer's wedge fencing.
	LeaseTicks int
	// Seed seeds the replica's private RNG (election jitter).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.TickInterval <= 0 {
		o.TickInterval = 2 * time.Millisecond
	}
	if o.HeartbeatEveryTicks <= 0 {
		o.HeartbeatEveryTicks = 2
	}
	if o.ElectionTimeoutTicks <= 0 {
		o.ElectionTimeoutTicks = 10
	}
	if o.ElectionJitterTicks <= 0 {
		o.ElectionJitterTicks = 10
	}
	if o.ResendTicks <= 0 {
		o.ResendTicks = 5
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 4
	}
	if o.Pipeline > o.MaxInflight {
		o.Pipeline = o.MaxInflight
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.PendingLimit <= 0 {
		o.PendingLimit = 4096
	}
	if o.CatchupBatch <= 0 {
		o.CatchupBatch = 512
	}
	if o.LeaseTicks <= 0 {
		o.LeaseTicks = o.ElectionTimeoutTicks / 2
		if o.LeaseTicks < 1 {
			o.LeaseTicks = 1
		}
	}
	return o
}

// ErrBusy is returned by Propose when the engine's proposal queue is full.
var ErrBusy = fmt.Errorf("paxos: proposal queue full")

type role uint8

const (
	roleFollower role = iota + 1
	roleCandidate
	roleLeader
)

type inboundMsg struct {
	from    types.NodeID
	kind    uint8
	payload []byte
}

type slotProgress struct {
	cmd        types.Command
	acks       map[types.NodeID]bool
	sinceTicks int
}

// deferredSend is an outbound message held in the burst outbox until the
// burst's staged writes are durable. An empty `to` means broadcast.
type deferredSend struct {
	to      types.NodeID
	kind    uint8
	payload []byte
}

// Stats are the engine's monotone counters, for experiments and tests.
type Stats struct {
	Decided             int64
	Proposals           int64
	Elections           int64
	StepDowns           int64
	CatchupRequests     int64
	InvariantViolations int64
	// DroppedInbound counts inbound protocol messages discarded because the
	// inbox was full. The protocol tolerates loss, but a nonzero value means
	// the event loop is saturated and peers are being ignored.
	DroppedInbound int64
	// ReadRounds counts completed read-index confirmation rounds; comparing
	// it against served reads shows the probe batching factor.
	ReadRounds int64
	// TruncatedSlots counts log slots released by TruncateBelow over the
	// replica's lifetime.
	TruncatedSlots int64
	// RetainedSlots is a gauge: decided log entries currently held in
	// memory (and on disk). With checkpoints on it stays bounded by the
	// checkpoint interval plus the truncation margin.
	RetainedSlots int64
	// LeaseReads counts reads answered locally under a valid leader lease.
	LeaseReads int64
	// GroupCommits counts event-loop bursts that ended in a group-commit
	// Sync; comparing it against Decided shows the fsync amortization the
	// pipeline achieves (see endBurst).
	GroupCommits int64
}

// Replica is one member's engine instance for a single, fixed configuration.
// It implements smr.Engine.
type Replica struct {
	self   types.NodeID
	cfg    types.Config
	ep     *transport.Endpoint
	stream uint64
	store  storage.Store
	opts   Options
	prefix string

	inMsg     chan inboundMsg
	proposeCh chan types.Command
	readCh    chan readRequest
	ctrlCh    chan func()
	stopCh    chan struct{}
	stopOnce  sync.Once
	loopDone  chan struct{}
	pumpDone  chan struct{}
	started   atomic.Bool

	// decision pump: the event loop appends under decMu; the pump drains
	// into decCh so slow consumers never stall the protocol.
	decCh     chan smr.Decision
	decMu     sync.Mutex
	decQueue  []smr.Decision
	decSignal chan struct{}

	// cross-goroutine views
	leaderHint atomic.Value // types.NodeID
	amLeader   atomic.Bool

	stats struct {
		decided, proposals, elections, stepDowns, catchups, violations atomic.Int64
		droppedInbound, readRounds, leaseReads, groupSyncs             atomic.Int64
		truncated, retained                                            atomic.Int64
	}
	lastDropWarn atomic.Int64 // unix nanos of the last overflow warning

	// Progress mirrors: atomic copies of the loop-owned frontier state so
	// the composition layer's housekeeping can probe "how far behind am I"
	// in O(1) without a message round or a channel hop (see Progress).
	progDelivered atomic.Int64
	progMaxSeen   atomic.Int64
	progTrunc     atomic.Int64
	ckptNeeded    atomic.Bool

	// --- state below is owned exclusively by the event loop goroutine ---
	rng      *rand.Rand
	promised types.Ballot
	accepted map[types.Slot]acceptedEntry
	decided  map[types.Slot]types.Command

	deliverNext    types.Slot // next slot to hand to the application
	maxDecidedSeen types.Slot // highest slot known decided anywhere
	truncatedBelow types.Slot // slots <= this are released (checkpointed)

	role          role
	ballot        types.Ballot // owned ballot while candidate/leader
	maxBallotSeen types.Ballot
	promises      map[types.NodeID]promiseMsg
	pending       []types.Command
	inflight      map[types.Slot]*slotProgress
	nextSlot      types.Slot

	ticksSinceHB     int
	electionDeadline int
	hbCountdown      int
	prepareAge       int
	catchupCooldown  int

	// group commit (loop-owned): when the store can stage writes
	// (storage.BufferedStore), each loop wakeup drains a burst of events
	// with persistence buffered and replies and decisions held back, then
	// makes the whole burst durable with one Sync before anything leaves
	// the replica (see endBurst). This is what lets Pipeline > 1 overlap
	// durable slots instead of serializing one fsync per accept.
	bstore        storage.BufferedStore
	inBurst       bool
	burstDirty    bool
	outbox        []deferredSend
	heldDecisions []smr.Decision

	// read fast path (see read.go)
	curProbe      *probeRound
	nextReads     []func(index types.Slot, err error)
	probeSeq      uint64
	electionFloor types.Slot
	leaseUntil    time.Time
	hbSeq         uint64
	hbSent        map[uint64]time.Time
	hbAcks        map[uint64]map[types.NodeID]bool
}

var _ smr.Engine = (*Replica)(nil)

// New constructs a replica of the static engine for cfg on node self.
// The stream number isolates this instance's traffic on the shared endpoint;
// storage keys are namespaced by it as well.
//
// Engine start is deliberately decoupled from application-state readiness:
// a replica needs nothing beyond its own promised/accepted/decided records
// to vote, accept and decide, so the composition layer boots a successor
// engine speculatively while the state snapshot is still streaming in. The
// engine's records are durable in their own right (and recovered here by
// recover()), which is what lets slots decided before a crash mid-transfer
// survive and be redelivered after restart.
func New(cfg types.Config, self types.NodeID, ep *transport.Endpoint, store storage.Store, stream uint64, opts Options) (*Replica, error) {
	if !cfg.IsMember(self) {
		return nil, fmt.Errorf("%w: %s not in %s", smr.ErrNotMember, self, cfg)
	}
	r := &Replica{
		self:      self,
		cfg:       cfg.Clone(),
		ep:        ep,
		stream:    stream,
		store:     store,
		opts:      opts.withDefaults(),
		prefix:    fmt.Sprintf("pxs/%d/", stream),
		inMsg:     make(chan inboundMsg, 8192),
		proposeCh: make(chan types.Command, 1024),
		readCh:    make(chan readRequest, 4096),
		ctrlCh:    make(chan func(), 16),
		stopCh:    make(chan struct{}),
		loopDone:  make(chan struct{}),
		pumpDone:  make(chan struct{}),
		decCh:     make(chan smr.Decision, 1024),
		decSignal: make(chan struct{}, 1),
		rng:       rand.New(rand.NewSource(opts.Seed ^ int64(stream) ^ hashNode(self))),
		accepted:  make(map[types.Slot]acceptedEntry),
		decided:   make(map[types.Slot]types.Command),
		promises:  make(map[types.NodeID]promiseMsg),
		inflight:  make(map[types.Slot]*slotProgress),
		hbSent:    make(map[uint64]time.Time),
		hbAcks:    make(map[uint64]map[types.NodeID]bool),
		role:      roleFollower,

		deliverNext: 1,
		nextSlot:    1,
	}
	r.leaderHint.Store(types.NodeID(""))
	if bs, ok := store.(storage.BufferedStore); ok {
		r.bstore = bs
	}
	if err := r.recover(); err != nil {
		return nil, fmt.Errorf("paxos recovery: %w", err)
	}
	return r, nil
}

// hashNode folds a node ID into an RNG seed component.
func hashNode(id types.NodeID) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(id); i++ {
		h ^= int64(id[i])
		h *= 1099511628211
	}
	return h
}

// recover reloads acceptor and learner state from stable storage, so a
// restarted process keeps its promises and redelivers its decided prefix.
func (r *Replica) recover() error {
	if raw, ok, err := r.store.Get(r.prefix + "promised"); err != nil {
		return err
	} else if ok {
		rd := types.NewReader(raw)
		r.promised = rd.Ballot()
		if err := rd.Err(); err != nil {
			return fmt.Errorf("promised record: %w", err)
		}
		r.maxBallotSeen = r.promised
	}
	if raw, ok, err := r.store.Get(r.prefix + "trunc"); err != nil {
		return err
	} else if ok {
		rd := types.NewReader(raw)
		r.truncatedBelow = types.Slot(rd.Uvarint())
		if err := rd.Err(); err != nil {
			return fmt.Errorf("truncation record: %w", err)
		}
		// Slots <= the floor were released after a durable checkpoint: the
		// application recovers them from the checkpoint, not the log. Any
		// acc/dec records below the floor that the deletes had not reached
		// before the crash are skipped during the scans below.
		r.deliverNext = r.truncatedBelow + 1
		r.nextSlot = r.truncatedBelow + 1
		r.maxDecidedSeen = r.truncatedBelow
	}
	accs, err := r.store.Scan(r.prefix + "acc/")
	if err != nil {
		return err
	}
	for _, kv := range accs {
		rd := types.NewReader(kv.Value)
		e := acceptedEntry{
			Slot:   types.Slot(rd.Uvarint()),
			Ballot: rd.Ballot(),
			Cmd:    types.DecodeCommandFrom(rd),
		}
		if err := rd.Err(); err != nil {
			return fmt.Errorf("accepted record %s: %w", kv.Key, err)
		}
		if e.Slot <= r.truncatedBelow {
			continue
		}
		r.accepted[e.Slot] = e
	}
	decs, err := r.store.Scan(r.prefix + "dec/")
	if err != nil {
		return err
	}
	for _, kv := range decs {
		rd := types.NewReader(kv.Value)
		d := decideMsg{Slot: types.Slot(rd.Uvarint()), Cmd: types.DecodeCommandFrom(rd)}
		if err := rd.Err(); err != nil {
			return fmt.Errorf("decided record %s: %w", kv.Key, err)
		}
		if d.Slot <= r.truncatedBelow {
			continue
		}
		r.decided[d.Slot] = d.Cmd
		if d.Slot > r.maxDecidedSeen {
			r.maxDecidedSeen = d.Slot
		}
	}
	if s := types.Slot(len(r.decided)); s > 0 {
		// nextSlot must clear everything we might know about.
		for slot := range r.decided {
			if slot >= r.nextSlot {
				r.nextSlot = slot + 1
			}
		}
	}
	for slot := range r.accepted {
		if slot >= r.nextSlot {
			r.nextSlot = slot + 1
		}
	}
	r.stats.retained.Store(int64(len(r.decided)))
	r.publishProgress()
	return nil
}

// Start implements smr.Engine.
func (r *Replica) Start() error {
	if r.started.Swap(true) {
		return fmt.Errorf("paxos: Start called twice")
	}
	r.ep.Handle(r.stream, func(from types.NodeID, _ uint64, kind uint8, payload []byte) {
		select {
		case r.inMsg <- inboundMsg{from: from, kind: kind, payload: payload}:
		case <-r.stopCh:
		default:
			// Inbox overflow: drop, like the network would — but count it,
			// and warn (rate-limited) because a saturated event loop is an
			// operational problem the protocol merely tolerates.
			r.warnDropped(r.stats.droppedInbound.Add(1))
		}
	})
	go r.pump()
	go r.loop()
	return nil
}

// Stop implements smr.Engine. It is idempotent; after it returns no further
// decisions are delivered and the decision channel is closed.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopCh)
		r.ep.Handle(r.stream, nil)
	})
	if r.started.Load() {
		<-r.loopDone
		<-r.pumpDone
	}
}

// Propose implements smr.Engine.
func (r *Replica) Propose(cmd types.Command) error {
	select {
	case <-r.stopCh:
		return smr.ErrStopped
	default:
	}
	select {
	case r.proposeCh <- cmd:
		return nil
	case <-r.stopCh:
		return smr.ErrStopped
	default:
		return ErrBusy
	}
}

// Decisions implements smr.Engine.
func (r *Replica) Decisions() <-chan smr.Decision { return r.decCh }

// Leader implements smr.Engine.
func (r *Replica) Leader() (types.NodeID, bool) {
	hint, _ := r.leaderHint.Load().(types.NodeID)
	return hint, r.amLeader.Load()
}

// Config returns the fixed configuration this engine serves.
func (r *Replica) Config() types.Config { return r.cfg.Clone() }

// Stats returns a snapshot of the engine's counters.
func (r *Replica) Stats() Stats {
	return Stats{
		Decided:             r.stats.decided.Load(),
		Proposals:           r.stats.proposals.Load(),
		Elections:           r.stats.elections.Load(),
		StepDowns:           r.stats.stepDowns.Load(),
		CatchupRequests:     r.stats.catchups.Load(),
		InvariantViolations: r.stats.violations.Load(),
		DroppedInbound:      r.stats.droppedInbound.Load(),
		ReadRounds:          r.stats.readRounds.Load(),
		LeaseReads:          r.stats.leaseReads.Load(),
		GroupCommits:        r.stats.groupSyncs.Load(),
		TruncatedSlots:      r.stats.truncated.Load(),
		RetainedSlots:       r.stats.retained.Load(),
	}
}

// warnDropped logs at most one inbox-overflow warning per second.
func (r *Replica) warnDropped(total int64) {
	now := time.Now().UnixNano()
	last := r.lastDropWarn.Load()
	if now-last < int64(time.Second) {
		return
	}
	if r.lastDropWarn.CompareAndSwap(last, now) {
		log.Printf("paxos: %s stream %d inbox overflow, dropping inbound messages (%d dropped so far)",
			r.self, r.stream, total)
	}
}

// pump moves queued decisions into the public channel so that a slow
// consumer never blocks the protocol loop.
func (r *Replica) pump() {
	defer close(r.pumpDone)
	defer close(r.decCh)
	for {
		r.decMu.Lock()
		batch := r.decQueue
		r.decQueue = nil
		r.decMu.Unlock()
		for _, d := range batch {
			select {
			case r.decCh <- d:
			case <-r.stopCh:
				return
			}
		}
		select {
		case <-r.decSignal:
		case <-r.stopCh:
			// Drain anything enqueued concurrently with stop; consumers
			// may still be reading until the channel closes.
			r.decMu.Lock()
			rest := r.decQueue
			r.decQueue = nil
			r.decMu.Unlock()
			for _, d := range rest {
				select {
				case r.decCh <- d:
				default:
					return
				}
			}
			return
		}
	}
}

func (r *Replica) enqueueDecision(d smr.Decision) {
	if r.inBurst {
		// Decisions must not reach the application before the burst's group
		// commit: the leader's own accept is part of the deciding quorum,
		// and it is only staged until endBurst syncs.
		r.heldDecisions = append(r.heldDecisions, d)
		return
	}
	r.decMu.Lock()
	r.decQueue = append(r.decQueue, d)
	r.decMu.Unlock()
	select {
	case r.decSignal <- struct{}{}:
	default:
	}
}

// loop is the single-threaded protocol engine; all Paxos state is owned here.
func (r *Replica) loop() {
	// LIFO: loopDone closes first, then finishReads drains, so a ReadIndex
	// racing with shutdown can detect the closed loop and self-drain (see
	// read.go) without ever losing a callback.
	defer r.finishReads()
	defer close(r.loopDone)
	ticker := time.NewTicker(r.opts.TickInterval)
	defer ticker.Stop()

	// The lexically smallest member starts an election on its first tick
	// so fresh configurations get a leader without waiting out a timeout;
	// everyone else uses the randomized timeout.
	if r.cfg.Members[0] == r.self {
		r.electionDeadline = 1
	} else {
		r.resetElectionDeadline()
	}

	// Redeliver the recovered decided prefix to the application.
	r.deliverReady()

	for {
		select {
		case <-r.stopCh:
			return
		case m := <-r.inMsg:
			r.beginBurst()
			r.handleMessage(m)
			r.drainBurst(burstBudget - 1)
			r.endBurst()
		case cmd := <-r.proposeCh:
			r.beginBurst()
			r.handlePropose(cmd)
			r.drainBurst(burstBudget - 1)
			r.endBurst()
		case req := <-r.readCh:
			r.beginBurst()
			r.handleRead(req)
			r.drainBurst(burstBudget - 1)
			r.endBurst()
		case fn := <-r.ctrlCh:
			r.beginBurst()
			fn()
			r.drainBurst(burstBudget - 1)
			r.endBurst()
		case <-ticker.C:
			r.beginBurst()
			r.tick()
			r.endBurst()
		}
		r.publishProgress()
	}
}

// burstBudget caps how many queued events one group-commit burst absorbs
// before it must sync and release its replies; it bounds both the latency
// a staged write can sit unfsynced and the outbox growth.
const burstBudget = 256

// beginBurst opens a group-commit burst when the store supports staged
// writes. With a plain store every write is individually durable and the
// loop behaves exactly as a classic one-event-at-a-time engine.
func (r *Replica) beginBurst() {
	if r.bstore != nil {
		r.inBurst = true
	}
}

// drainBurst greedily absorbs events that are already queued into the open
// burst, so their persistence shares the single group-commit fsync. It
// never blocks: the burst ends as soon as the backlog (or budget) runs out.
func (r *Replica) drainBurst(budget int) {
	if !r.inBurst {
		return
	}
	for budget > 0 {
		select {
		case m := <-r.inMsg:
			r.handleMessage(m)
		case cmd := <-r.proposeCh:
			r.handlePropose(cmd)
		case req := <-r.readCh:
			r.handleRead(req)
		default:
			return
		}
		budget--
	}
}

// endBurst is the group-commit barrier: one Sync makes every write staged
// during the burst durable, and only then do the burst's protocol messages
// and decisions leave the replica — promises and votes may not be sent, and
// decisions may not reach the application, before the state backing them is
// stable. If the sync fails nothing is released: unsynced state must not be
// externalized, and peers retransmit exactly as they would for lost
// messages. (In practice a failed sync here means the store was closed
// under a stopping replica.)
func (r *Replica) endBurst() {
	if !r.inBurst {
		return
	}
	r.inBurst = false
	if r.burstDirty {
		r.burstDirty = false
		if err := r.store.Sync(); err != nil {
			if err != storage.ErrStoreClosed {
				r.stats.violations.Add(1)
			}
			r.outbox = r.outbox[:0]
			r.heldDecisions = r.heldDecisions[:0]
			return
		}
		r.stats.groupSyncs.Add(1)
	}
	for _, m := range r.outbox {
		if m.to == "" {
			r.ep.Broadcast(r.cfg.Members, r.stream, m.kind, m.payload)
		} else {
			_ = r.ep.Send(m.to, r.stream, m.kind, m.payload)
		}
	}
	r.outbox = r.outbox[:0]
	for _, d := range r.heldDecisions {
		r.enqueueDecision(d)
	}
	r.heldDecisions = r.heldDecisions[:0]
}

func (r *Replica) resetElectionDeadline() {
	r.electionDeadline = r.opts.ElectionTimeoutTicks + r.rng.Intn(r.opts.ElectionJitterTicks+1)
	r.ticksSinceHB = 0
}

// --- log truncation & progress ---------------------------------------------

// Progress is an O(1), lock-free snapshot of the engine's log frontier. The
// composition layer's housekeeping reads it to decide in one probe whether
// this member is lagging far enough to fetch a checkpoint instead of walking
// the gap slot by slot.
type Progress struct {
	// Delivered is the highest contiguously decided slot handed to the
	// application.
	Delivered types.Slot
	// MaxDecidedSeen is the highest slot known to be decided anywhere
	// (from heartbeats, promises and catch-up responses), so
	// MaxDecidedSeen - Delivered is the decision gap.
	MaxDecidedSeen types.Slot
	// TruncatedBelow is the local truncation floor: slots <= it have been
	// released and cannot be served or re-voted.
	TruncatedBelow types.Slot
	// CheckpointNeeded reports that a peer redirected a catch-up request
	// below its truncation floor: the missing prefix no longer exists in
	// any reachable log and only a checkpoint install can fill it.
	CheckpointNeeded bool
}

// Progress returns the current frontier snapshot. Safe from any goroutine.
func (r *Replica) Progress() Progress {
	return Progress{
		Delivered:        types.Slot(r.progDelivered.Load()),
		MaxDecidedSeen:   types.Slot(r.progMaxSeen.Load()),
		TruncatedBelow:   types.Slot(r.progTrunc.Load()),
		CheckpointNeeded: r.ckptNeeded.Load(),
	}
}

// publishProgress refreshes the atomic mirrors from the loop-owned state.
// Called by the event loop after each wakeup (and once from recovery, before
// the loop starts).
func (r *Replica) publishProgress() {
	r.progDelivered.Store(int64(r.deliverNext - 1))
	r.progMaxSeen.Store(int64(r.maxDecidedSeen))
	r.progTrunc.Store(int64(r.truncatedBelow))
}

// post runs fn on the event-loop goroutine. It blocks until the control
// queue has room or the replica stops; fn never runs after Stop.
func (r *Replica) post(fn func()) {
	select {
	case r.ctrlCh <- fn:
	case <-r.stopCh:
	}
}

// TruncateBelow releases learner and acceptor state for all slots <= floor.
// The caller (the composition layer) must guarantee that a checkpoint
// covering those slots is durable and quorum-acknowledged first: after
// truncation this replica refuses phase-2 votes at released slots and
// answers catch-up requests for them with a checkpoint redirect instead of
// entries. The floor is clamped to the delivered prefix — undelivered slots
// are never truncated. Safe from any goroutine; applied asynchronously on
// the event loop.
func (r *Replica) TruncateBelow(floor types.Slot) {
	r.post(func() { r.truncateBelow(floor) })
}

// SkipTo installs a checkpoint's base index: the application has restored
// state covering every slot <= base, so delivery resumes at base+1 and the
// skipped slots are released exactly as TruncateBelow would. Used by a
// lagging member after a checkpoint fetch. Safe from any goroutine.
func (r *Replica) SkipTo(base types.Slot) {
	r.post(func() { r.skipTo(base) })
}

// truncateBelow is the loop-side release. Slots (truncatedBelow, floor] are
// dropped from the in-memory maps and their durable records deleted; the
// floor itself is persisted so recovery does not resurrect released slots.
func (r *Replica) truncateBelow(floor types.Slot) {
	if floor >= r.deliverNext {
		floor = r.deliverNext - 1
	}
	if floor <= r.truncatedBelow {
		return
	}
	prev := r.truncatedBelow
	for slot := prev + 1; slot <= floor; slot++ {
		if _, ok := r.decided[slot]; ok {
			delete(r.decided, slot)
			_ = r.store.Delete(storage.SlotKey(r.prefix+"dec/", uint64(slot)))
		}
		if _, ok := r.accepted[slot]; ok {
			delete(r.accepted, slot)
			_ = r.store.Delete(storage.SlotKey(r.prefix+"acc/", uint64(slot)))
		}
	}
	r.truncatedBelow = floor
	r.persistTruncated()
	r.stats.truncated.Add(int64(floor - prev))
	r.stats.retained.Store(int64(len(r.decided)))
	r.publishProgress()
}

// skipTo is the loop-side checkpoint install: jump the delivery cursor to
// base+1 and release everything at or below base.
func (r *Replica) skipTo(base types.Slot) {
	if base < r.deliverNext {
		// Already past the checkpoint; nothing to skip. Still clear the
		// checkpoint-needed latch: the fetch that triggered it completed.
		r.ckptNeeded.Store(false)
		return
	}
	prev := r.truncatedBelow
	for slot := prev + 1; slot <= base; slot++ {
		if _, ok := r.decided[slot]; ok {
			delete(r.decided, slot)
			_ = r.store.Delete(storage.SlotKey(r.prefix+"dec/", uint64(slot)))
		}
		if _, ok := r.accepted[slot]; ok {
			delete(r.accepted, slot)
			_ = r.store.Delete(storage.SlotKey(r.prefix+"acc/", uint64(slot)))
		}
	}
	r.deliverNext = base + 1
	if base > r.maxDecidedSeen {
		r.maxDecidedSeen = base
	}
	if r.nextSlot <= base {
		r.nextSlot = base + 1
	}
	r.truncatedBelow = base
	r.persistTruncated()
	r.stats.truncated.Add(int64(base - prev))
	r.stats.retained.Store(int64(len(r.decided)))
	r.ckptNeeded.Store(false)
	r.publishProgress()
	// Decisions above the base may already be decided and contiguous now.
	r.deliverReady()
}

func (r *Replica) persistTruncated() {
	w := types.NewWriter(8)
	w.Uvarint(uint64(r.truncatedBelow))
	if err := r.setDurable(r.prefix+"trunc", w.Bytes()); err != nil {
		r.stats.violations.Add(1)
	}
}

// TruncatedFloor reads the persisted truncation floor of a stream without
// instantiating a replica — a recovery-planning helper for the composition
// layer (a corrupt snapshot can only fall back to full log replay when the
// log still starts at slot 1).
func TruncatedFloor(store storage.Store, stream uint64) (types.Slot, error) {
	raw, ok, err := store.Get(fmt.Sprintf("pxs/%d/", stream) + "trunc")
	if err != nil || !ok {
		return 0, err
	}
	rd := types.NewReader(raw)
	floor := types.Slot(rd.Uvarint())
	if err := rd.Err(); err != nil {
		return 0, fmt.Errorf("truncation record: %w", err)
	}
	return floor, nil
}
