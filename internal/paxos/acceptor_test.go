package paxos

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// bareReplica builds an unstarted replica whose acceptor logic can be driven
// directly (the event loop is not running, so no concurrency).
func bareReplica(t *testing.T) (*Replica, *storage.MemStore) {
	t.Helper()
	net := transport.NewNetwork(transport.Options{})
	t.Cleanup(net.Close)
	st := storage.NewMem()
	r, err := New(types.MustConfig(1, "n1", "n2", "n3"), "n1", net.Endpoint("n1"), st, 1, fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	return r, st
}

func TestAcceptorPromiseMonotonic(t *testing.T) {
	r, _ := bareReplica(t)
	b1 := types.Ballot{Round: 1, Leader: "n1"}
	b2 := types.Ballot{Round: 2, Leader: "n2"}

	pm := r.acceptPrepare(prepareMsg{Ballot: b1, From: 1})
	if !pm.OK {
		t.Fatal("first prepare rejected")
	}
	pm = r.acceptPrepare(prepareMsg{Ballot: b2, From: 1})
	if !pm.OK {
		t.Fatal("higher prepare rejected")
	}
	// A lower prepare must now be rejected and name the blocker.
	pm = r.acceptPrepare(prepareMsg{Ballot: b1, From: 1})
	if pm.OK {
		t.Fatal("lower prepare accepted after higher promise")
	}
	if !pm.Promised.Equal(b2) {
		t.Fatalf("blocker %v, want %v", pm.Promised, b2)
	}
	// Re-promising the exact same ballot is idempotent (resends).
	pm = r.acceptPrepare(prepareMsg{Ballot: b2, From: 1})
	if !pm.OK {
		t.Fatal("same-ballot prepare rejected")
	}
}

func TestAcceptorRejectsAcceptBelowPromise(t *testing.T) {
	r, _ := bareReplica(t)
	high := types.Ballot{Round: 5, Leader: "n3"}
	low := types.Ballot{Round: 1, Leader: "n1"}
	r.acceptPrepare(prepareMsg{Ballot: high, From: 1})

	am := r.acceptAccept(acceptMsg{Ballot: low, Slot: 1, Cmd: types.NoopCommand()})
	if am.OK {
		t.Fatal("accept below promise succeeded")
	}
	if !am.Promised.Equal(high) {
		t.Fatalf("blocker %v", am.Promised)
	}
	am = r.acceptAccept(acceptMsg{Ballot: high, Slot: 1, Cmd: types.NoopCommand()})
	if !am.OK {
		t.Fatal("accept at promise rejected")
	}
}

func TestAcceptorAcceptRaisesPromise(t *testing.T) {
	r, _ := bareReplica(t)
	b := types.Ballot{Round: 3, Leader: "n2"}
	if am := r.acceptAccept(acceptMsg{Ballot: b, Slot: 4, Cmd: types.NoopCommand()}); !am.OK {
		t.Fatal("fresh accept rejected")
	}
	// The accept implies a promise: a lower prepare must now fail.
	if pm := r.acceptPrepare(prepareMsg{Ballot: types.Ballot{Round: 2, Leader: "n9"}, From: 1}); pm.OK {
		t.Fatal("prepare below accepted ballot succeeded")
	}
}

func TestAcceptorStatePersistsBeforeReply(t *testing.T) {
	r, st := bareReplica(t)
	b := types.Ballot{Round: 7, Leader: "n2"}
	r.acceptPrepare(prepareMsg{Ballot: b, From: 1})
	if _, ok, _ := st.Get("pxs/1/promised"); !ok {
		t.Fatal("promise not persisted")
	}
	cmd := types.Command{Kind: types.CmdApp, Client: "c", Seq: 1, Data: []byte("x")}
	r.acceptAccept(acceptMsg{Ballot: b, Slot: 3, Cmd: cmd})
	kvs, _ := st.Scan("pxs/1/acc/")
	if len(kvs) != 1 {
		t.Fatalf("accepted entries persisted: %d", len(kvs))
	}

	// A replica recovered from this store is bound by the same promise.
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	r2, err := New(types.MustConfig(1, "n1", "n2", "n3"), "n1", net.Endpoint("n1"), st, 1, fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if pm := r2.acceptPrepare(prepareMsg{Ballot: types.Ballot{Round: 6, Leader: "n9"}, From: 1}); pm.OK {
		t.Fatal("recovered acceptor forgot its promise")
	}
	pm := r2.acceptPrepare(prepareMsg{Ballot: types.Ballot{Round: 8, Leader: "n9"}, From: 1})
	if !pm.OK || len(pm.Accepted) != 1 || !pm.Accepted[0].Cmd.Equal(cmd) {
		t.Fatalf("recovered acceptor lost accepted entry: %+v", pm)
	}
}

func TestPromiseReturnsOnlyRequestedSuffix(t *testing.T) {
	r, _ := bareReplica(t)
	b := types.Ballot{Round: 1, Leader: "n1"}
	for slot := types.Slot(1); slot <= 10; slot++ {
		r.acceptAccept(acceptMsg{Ballot: b, Slot: slot, Cmd: types.NoopCommand()})
	}
	pm := r.acceptPrepare(prepareMsg{Ballot: types.Ballot{Round: 2, Leader: "n2"}, From: 7})
	if len(pm.Accepted) != 4 { // slots 7..10
		t.Fatalf("suffix length %d", len(pm.Accepted))
	}
	for _, e := range pm.Accepted {
		if e.Slot < 7 {
			t.Fatalf("entry below From: %d", e.Slot)
		}
	}
}

// TestAcceptorPropertyNeverRegresses drives random prepare/accept sequences
// and checks the fundamental acceptor invariant: the promised ballot never
// decreases, and a successful operation's ballot is >= every earlier
// successful operation's ballot.
func TestAcceptorPropertyNeverRegresses(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		r, _ := bareReplica(t)
		rng := rand.New(rand.NewSource(seed))
		prevPromised := types.Ballot{}
		for _, raw := range opsRaw {
			b := types.Ballot{Round: uint64(raw % 8), Leader: types.NodeID([]string{"n1", "n2", "n3"}[raw%3])}
			if rng.Intn(2) == 0 {
				pm := r.acceptPrepare(prepareMsg{Ballot: b, From: 1})
				if pm.OK && b.Less(prevPromised) {
					return false // accepted a regression
				}
			} else {
				am := r.acceptAccept(acceptMsg{Ballot: b, Slot: types.Slot(raw%16 + 1), Cmd: types.NoopCommand()})
				if am.OK && b.Less(prevPromised) {
					return false
				}
			}
			if r.promised.Less(prevPromised) {
				return false // promise regressed
			}
			prevPromised = r.promised
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TickInterval != 2*time.Millisecond || o.MaxInflight != 64 || o.BatchSize != 16 ||
		o.PendingLimit != 4096 || o.CatchupBatch != 512 {
		t.Fatalf("defaults: %+v", o)
	}
}
