package paxos

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestPrepareRoundTrip(t *testing.T) {
	m := prepareMsg{Ballot: types.Ballot{Round: 3, Leader: "n2"}, From: 17}
	got, err := decodePrepare(encodePrepare(m))
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("%v %v", got, err)
	}
}

func TestPromiseRoundTrip(t *testing.T) {
	m := promiseMsg{
		Ballot:   types.Ballot{Round: 3, Leader: "n2"},
		OK:       true,
		Promised: types.Ballot{Round: 3, Leader: "n2"},
		Accepted: []acceptedEntry{
			{Slot: 4, Ballot: types.Ballot{Round: 1, Leader: "n1"}, Cmd: types.Command{Kind: types.CmdApp, Client: "c", Seq: 9, Data: []byte("x")}},
			{Slot: 6, Ballot: types.Ballot{Round: 2, Leader: "n3"}, Cmd: types.NoopCommand()},
		},
		Decided: 3,
	}
	got, err := decodePromise(encodePromise(m))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Ballot.Equal(m.Ballot) || got.OK != m.OK || got.Decided != m.Decided || len(got.Accepted) != 2 {
		t.Fatalf("mismatch: %+v", got)
	}
	for i := range m.Accepted {
		if got.Accepted[i].Slot != m.Accepted[i].Slot ||
			!got.Accepted[i].Ballot.Equal(m.Accepted[i].Ballot) ||
			!got.Accepted[i].Cmd.Equal(m.Accepted[i].Cmd) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestPromiseRejectRoundTrip(t *testing.T) {
	m := promiseMsg{
		Ballot:   types.Ballot{Round: 1, Leader: "n1"},
		OK:       false,
		Promised: types.Ballot{Round: 5, Leader: "n9"},
	}
	got, err := decodePromise(encodePromise(m))
	if err != nil || got.OK || !got.Promised.Equal(m.Promised) {
		t.Fatalf("%+v %v", got, err)
	}
}

func TestAcceptAcceptedRoundTrip(t *testing.T) {
	a := acceptMsg{
		Ballot: types.Ballot{Round: 2, Leader: "n1"},
		Slot:   12,
		Cmd:    types.Command{Kind: types.CmdApp, Client: "c7", Seq: 2, Data: []byte("op")},
	}
	gotA, err := decodeAccept(encodeAccept(a))
	if err != nil || !gotA.Cmd.Equal(a.Cmd) || gotA.Slot != a.Slot || !gotA.Ballot.Equal(a.Ballot) {
		t.Fatalf("accept: %+v %v", gotA, err)
	}
	b := acceptedMsg{Ballot: a.Ballot, Slot: 12, OK: true, Promised: a.Ballot}
	gotB, err := decodeAccepted(encodeAccepted(b))
	if err != nil || !reflect.DeepEqual(gotB, b) {
		t.Fatalf("accepted: %+v %v", gotB, err)
	}
}

func TestDecideHeartbeatRoundTrip(t *testing.T) {
	d := decideMsg{Slot: 99, Cmd: types.Command{Kind: types.CmdApp, Client: "c", Seq: 1, Data: []byte("z")}}
	gotD, err := decodeDecide(encodeDecide(d))
	if err != nil || gotD.Slot != 99 || !gotD.Cmd.Equal(d.Cmd) {
		t.Fatalf("decide: %+v %v", gotD, err)
	}
	h := heartbeatMsg{Ballot: types.Ballot{Round: 4, Leader: "n3"}, Decided: 88}
	gotH, err := decodeHeartbeat(encodeHeartbeat(h))
	if err != nil || !reflect.DeepEqual(gotH, h) {
		t.Fatalf("heartbeat: %+v %v", gotH, err)
	}
}

func TestCatchupRoundTrip(t *testing.T) {
	req := catchupReqMsg{From: 3, To: 10}
	gotReq, err := decodeCatchupReq(encodeCatchupReq(req))
	if err != nil || gotReq != req {
		t.Fatalf("req: %+v %v", gotReq, err)
	}
	resp := catchupRespMsg{Entries: []decideMsg{
		{Slot: 3, Cmd: types.NoopCommand()},
		{Slot: 4, Cmd: types.Command{Kind: types.CmdApp, Client: "c", Seq: 5, Data: []byte("v")}},
	}}
	gotResp, err := decodeCatchupResp(encodeCatchupResp(resp))
	if err != nil || len(gotResp.Entries) != 2 || !gotResp.Entries[1].Cmd.Equal(resp.Entries[1].Cmd) {
		t.Fatalf("resp: %+v %v", gotResp, err)
	}
}

func TestForwardRoundTrip(t *testing.T) {
	m := forwardMsg{Cmds: []types.Command{
		{Kind: types.CmdApp, Client: "c1", Seq: 3, Data: []byte("op")},
		{Kind: types.CmdApp, Client: "c2", Seq: 9, Data: []byte("other")},
		types.NoopCommand(),
	}}
	got, err := decodeForward(encodeForward(m))
	if err != nil || len(got.Cmds) != len(m.Cmds) {
		t.Fatalf("%+v %v", got, err)
	}
	for i := range m.Cmds {
		if !got.Cmds[i].Equal(m.Cmds[i]) {
			t.Fatalf("cmd %d: %+v", i, got.Cmds[i])
		}
	}
	// Empty queue round-trips too.
	got, err = decodeForward(encodeForward(forwardMsg{}))
	if err != nil || len(got.Cmds) != 0 {
		t.Fatalf("empty: %+v %v", got, err)
	}
}

// TestForwardLegacyDecode ensures frames from peers running the old
// one-command-per-frame forward encoding still decode.
func TestForwardLegacyDecode(t *testing.T) {
	cmd := types.Command{Kind: types.CmdApp, Client: "c1", Seq: 3, Data: []byte("op")}
	legacy := types.EncodeCommand(cmd)
	got, err := decodeForward(legacy)
	if err != nil || len(got.Cmds) != 1 || !got.Cmds[0].Equal(cmd) {
		t.Fatalf("legacy decode: %+v %v", got, err)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	full := encodePromise(promiseMsg{
		Ballot: types.Ballot{Round: 1, Leader: "n1"}, OK: true,
		Promised: types.Ballot{Round: 1, Leader: "n1"},
		Accepted: []acceptedEntry{{Slot: 1, Ballot: types.Ballot{Round: 1, Leader: "n1"}, Cmd: types.NoopCommand()}},
		Decided:  0,
	})
	// The final byte is the appended TruncatedBelow field: a frame cut
	// exactly there is a valid legacy promise and must decode (optional-tail
	// compatibility); every shorter cut must be rejected.
	if m, err := decodePromise(full[:len(full)-1]); err != nil || m.TruncatedBelow != 0 {
		t.Fatalf("legacy promise boundary: %+v %v", m, err)
	}
	for i := 0; i < len(full)-1; i++ {
		if _, err := decodePromise(full[:i]); err == nil {
			t.Fatalf("promise truncated at %d accepted", i)
		}
	}
	acc := encodeAccept(acceptMsg{Ballot: types.Ballot{Round: 1, Leader: "n"}, Slot: 1, Cmd: types.NoopCommand()})
	for i := 0; i < len(acc); i++ {
		if _, err := decodeAccept(acc[:i]); err == nil {
			t.Fatalf("accept truncated at %d accepted", i)
		}
	}
}

func TestAcceptRoundTripProperty(t *testing.T) {
	f := func(round uint64, leader string, slot uint64, client string, seq uint64, data []byte) bool {
		m := acceptMsg{
			Ballot: types.Ballot{Round: round, Leader: types.NodeID(leader)},
			Slot:   types.Slot(slot),
			Cmd:    types.Command{Kind: types.CmdApp, Client: types.NodeID(client), Seq: seq, Data: data},
		}
		got, err := decodeAccept(encodeAccept(m))
		return err == nil && got.Slot == m.Slot && got.Ballot.Equal(m.Ballot) && got.Cmd.Equal(m.Cmd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
