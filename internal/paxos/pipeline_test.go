package paxos

import (
	"testing"

	"repro/internal/types"
)

// leaderReplica builds an unstarted replica promoted to leader so proposer
// logic can be driven directly (peers never answer, so every proposal stays
// inflight until the test resolves it).
func leaderReplica(t *testing.T) *Replica {
	t.Helper()
	r, _ := bareReplica(t)
	r.role = roleLeader
	r.ballot = types.Ballot{Round: 1, Leader: r.self}
	r.amLeader.Store(true)
	return r
}

func TestPipelineWindowGatesProposals(t *testing.T) {
	r := leaderReplica(t)
	for i := 0; i < r.opts.Pipeline; i++ {
		r.handlePropose(appCmd("c", uint64(i+1)))
	}
	if got := len(r.inflight); got != r.opts.Pipeline {
		t.Fatalf("inflight %d, want the full window %d", got, r.opts.Pipeline)
	}
	// The window is full: the next proposal must queue, not open a slot.
	r.handlePropose(appCmd("c", 100))
	if got := len(r.inflight); got != r.opts.Pipeline {
		t.Fatalf("inflight grew to %d past the Pipeline window %d", got, r.opts.Pipeline)
	}
	if got := len(r.pending); got != 1 {
		t.Fatalf("pending %d, want 1 queued command", got)
	}
}

// TestLearnClearsZombieInflight is the regression test for a proposer
// livelock: when an inflight slot is chosen out of band (an old leader's
// decide broadcast, a catch-up response, or onAccept's already-decided fast
// path), acceptors answer KindDecide — never Accepted — so maybeDecide can
// never clear the slot. learn() must remove such entries, or a handful of
// them permanently fills the Pipeline window and the leader stops proposing
// while client retries pile up forever.
func TestLearnClearsZombieInflight(t *testing.T) {
	r := leaderReplica(t)
	first := r.nextSlot
	for i := 0; i < r.opts.Pipeline; i++ {
		r.handlePropose(appCmd("c", uint64(i+1)))
	}
	queued := appCmd("c", 100)
	r.handlePropose(queued) // window full: queued behind the pipeline

	// Slot `first` was chosen elsewhere with the same value we proposed.
	r.learn(first, appCmd("c", 1))
	if _, ok := r.inflight[first]; ok {
		t.Fatal("decided slot still inflight after learn")
	}
	// Freeing the window slot must immediately promote the queued command.
	if got := len(r.pending); got != 0 {
		t.Fatalf("pending %d after window opened, want 0", got)
	}
	if got := len(r.inflight); got != r.opts.Pipeline {
		t.Fatalf("inflight %d after refill, want %d", got, r.opts.Pipeline)
	}

	// Slot first+1 was chosen elsewhere with a DIFFERENT value: our command
	// lost the slot and must be re-proposed (at a fresh slot), not dropped.
	lost := appCmd("c", 2)
	r.learn(first+1, types.Command{Kind: types.CmdApp, Client: "z", Seq: 7, Data: []byte("winner")})
	if _, ok := r.inflight[first+1]; ok {
		t.Fatal("out-of-band decided slot still inflight")
	}
	found := false
	for slot, sp := range r.inflight {
		if sp.cmd.Equal(lost) && slot > first+1 {
			found = true
		}
	}
	if !found && len(r.pending) == 0 {
		t.Fatal("command that lost its slot was dropped, not re-proposed")
	}

	// Learning a slot that is not inflight (follower path) stays harmless.
	r.learn(first+1000, types.NoopCommand())
	if got := len(r.inflight); got != r.opts.Pipeline {
		t.Fatalf("inflight %d after unrelated learn, want %d", got, r.opts.Pipeline)
	}
}
