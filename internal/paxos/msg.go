// Package paxos implements the static, non-reconfigurable Multi-Paxos SMR
// engine used as the paper's building block. One engine instance serves
// exactly one configuration for that configuration's whole lifetime: the
// member set is fixed at construction and there is deliberately no API to
// change it.
//
// The engine is a classic Multi-Paxos:
//
//   - a stable leader is elected by running phase 1 (Prepare/Promise) once
//     for all slots from its first unchosen slot onward;
//   - each command then takes one phase-2 round (Accept/Accepted) followed
//     by a Decide broadcast to learners;
//   - followers detect leader failure via heartbeats and run a randomized
//     backoff before competing, avoiding dueling-proposer livelock;
//   - learners deliver decisions in slot order with no gaps and fetch
//     missing entries from peers (catch-up) when they observe holes.
//
// Acceptor state (promise, accepted values) and decided entries are written
// to stable storage before replies are sent, so a crashed-and-restarted
// replica cannot renege on its promises.
package paxos

import (
	"fmt"

	"repro/internal/types"
)

// Message kinds on the wire (transport accounting groups by these).
const (
	// KindPrepare is phase-1a: a candidate leader solicits promises.
	KindPrepare uint8 = 1
	// KindPromise is phase-1b: an acceptor's promise plus its accepted
	// suffix.
	KindPromise uint8 = 2
	// KindAccept is phase-2a: the leader proposes a value for a slot.
	KindAccept uint8 = 3
	// KindAccepted is phase-2b: an acceptor's vote.
	KindAccepted uint8 = 4
	// KindDecide announces a chosen value to learners.
	KindDecide uint8 = 5
	// KindHeartbeat is the leader's liveness beacon.
	KindHeartbeat uint8 = 6
	// KindCatchupReq asks a peer for decided entries in a slot range.
	KindCatchupReq uint8 = 7
	// KindCatchupResp returns decided entries.
	KindCatchupResp uint8 = 8
	// KindForward relays a client proposal to the believed leader.
	KindForward uint8 = 9
	// KindReadProbe is the leader's read-index leadership confirmation:
	// "am I still your leader?" for a batch of pending reads.
	KindReadProbe uint8 = 10
	// KindReadProbeAck answers a read probe.
	KindReadProbeAck uint8 = 11
	// KindHeartbeatAck answers a heartbeat whose WantAck flag is set; a
	// quorum of acks for one heartbeat sequence number renews the leader's
	// read lease.
	KindHeartbeatAck uint8 = 12
)

// prepareMsg solicits promises for all slots >= From.
type prepareMsg struct {
	Ballot types.Ballot
	From   types.Slot
}

// acceptedEntry reports one accepted (slot, ballot, command) triple.
type acceptedEntry struct {
	Slot   types.Slot
	Ballot types.Ballot
	Cmd    types.Command
}

// promiseMsg answers a prepare. When OK, Accepted lists this acceptor's
// accepted entries at slots >= the prepare's From. When not OK, Promised
// carries the higher ballot that blocked the prepare.
type promiseMsg struct {
	Ballot   types.Ballot // the prepare's ballot being answered
	OK       bool
	Promised types.Ballot // on reject: the ballot we are bound to
	Accepted []acceptedEntry
	Decided  types.Slot // highest contiguously decided slot at this node
	// TruncatedBelow is this acceptor's log-truncation floor: slots <= it
	// were released after a quorum-acknowledged checkpoint, so the acceptor
	// can report no accepted entries for them even though they are chosen.
	// A new leader must never noop-fill an unreported slot at or below any
	// promiser's floor (see becomeLeader). Appended field; absent in legacy
	// frames, decoding as 0 (nothing truncated).
	TruncatedBelow types.Slot
}

// acceptMsg proposes Cmd at Slot under Ballot.
type acceptMsg struct {
	Ballot types.Ballot
	Slot   types.Slot
	Cmd    types.Command
}

// acceptedMsg answers an accept.
type acceptedMsg struct {
	Ballot   types.Ballot // the accept's ballot being answered
	Slot     types.Slot
	OK       bool
	Promised types.Ballot // on reject: the ballot we are bound to
}

// decideMsg announces the chosen command for Slot.
type decideMsg struct {
	Slot types.Slot
	Cmd  types.Command
}

// heartbeatMsg is broadcast by the leader. Decided lets followers detect
// that they are behind and trigger catch-up. Seq numbers the beacon and
// WantAck asks followers to reply with a KindHeartbeatAck so the leader can
// measure quorum contact (used to renew read leases).
type heartbeatMsg struct {
	Ballot  types.Ballot
	Decided types.Slot
	Seq     uint64
	WantAck bool
}

// readProbeMsg asks followers to confirm the sender is still their leader.
// Seq identifies the confirmation round; acks quote it back.
type readProbeMsg struct {
	Ballot types.Ballot
	Seq    uint64
}

// readProbeAckMsg answers a read probe. OK reports whether the acceptor is
// still bound to a ballot no higher than the probe's; on reject, Promised
// carries the blocking ballot.
type readProbeAckMsg struct {
	Ballot   types.Ballot
	Seq      uint64
	OK       bool
	Promised types.Ballot
}

// heartbeatAckMsg acknowledges heartbeat Seq from the leader at Ballot.
type heartbeatAckMsg struct {
	Ballot types.Ballot
	Seq    uint64
}

// catchupReqMsg requests decided entries in [From, To].
type catchupReqMsg struct {
	From types.Slot
	To   types.Slot
}

// catchupRespMsg carries decided entries. The appended Frontier and
// TruncatedBelow fields (absent in legacy frames, decoding as 0) make one
// response an O(1) progress probe: Frontier is the responder's contiguously
// decided prefix — the requester raises maxDecidedSeen from it instead of
// probing slot by slot — and a nonzero TruncatedBelow at or above the
// requested From is a redirect: the responder has released those slots after
// a checkpoint, so the requester must install a checkpoint rather than
// replay the log.
type catchupRespMsg struct {
	Entries        []decideMsg
	Frontier       types.Slot
	TruncatedBelow types.Slot
}

// forwardMsg relays queued proposals to the leader. A follower packs its
// whole pending queue into one frame instead of sending one frame per
// command.
type forwardMsg struct {
	Cmds []types.Command
}

func encodePrepare(m prepareMsg) []byte {
	w := types.NewWriter(24)
	w.Ballot(m.Ballot)
	w.Uvarint(uint64(m.From))
	return w.Bytes()
}

func decodePrepare(buf []byte) (prepareMsg, error) {
	r := types.NewReader(buf)
	m := prepareMsg{Ballot: r.Ballot(), From: types.Slot(r.Uvarint())}
	return m, wrapDecode("prepare", r)
}

func encodePromise(m promiseMsg) []byte {
	sz := 32
	for _, e := range m.Accepted {
		sz += 24 + e.Cmd.EncodedSize()
	}
	w := types.NewWriter(sz)
	w.Ballot(m.Ballot)
	w.Bool(m.OK)
	w.Ballot(m.Promised)
	w.Uvarint(uint64(len(m.Accepted)))
	for _, e := range m.Accepted {
		w.Uvarint(uint64(e.Slot))
		w.Ballot(e.Ballot)
		e.Cmd.Encode(w)
	}
	w.Uvarint(uint64(m.Decided))
	w.Uvarint(uint64(m.TruncatedBelow))
	return w.Bytes()
}

func decodePromise(buf []byte) (promiseMsg, error) {
	r := types.NewReader(buf)
	m := promiseMsg{Ballot: r.Ballot(), OK: r.Bool(), Promised: r.Ballot()}
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()) {
		return m, fmt.Errorf("%w: promise entry count %d", types.ErrCodec, n)
	}
	m.Accepted = make([]acceptedEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Accepted = append(m.Accepted, acceptedEntry{
			Slot:   types.Slot(r.Uvarint()),
			Ballot: r.Ballot(),
			Cmd:    types.DecodeCommandFrom(r),
		})
	}
	m.Decided = types.Slot(r.Uvarint())
	if r.Err() == nil && r.Remaining() > 0 {
		// Legacy frames end after Decided; TruncatedBelow is appended.
		m.TruncatedBelow = types.Slot(r.Uvarint())
	}
	return m, wrapDecode("promise", r)
}

func encodeAccept(m acceptMsg) []byte {
	w := types.NewWriter(24 + m.Cmd.EncodedSize())
	w.Ballot(m.Ballot)
	w.Uvarint(uint64(m.Slot))
	m.Cmd.Encode(w)
	return w.Bytes()
}

func decodeAccept(buf []byte) (acceptMsg, error) {
	r := types.NewReader(buf)
	m := acceptMsg{
		Ballot: r.Ballot(),
		Slot:   types.Slot(r.Uvarint()),
		Cmd:    types.DecodeCommandFrom(r),
	}
	return m, wrapDecode("accept", r)
}

func encodeAccepted(m acceptedMsg) []byte {
	w := types.NewWriter(32)
	w.Ballot(m.Ballot)
	w.Uvarint(uint64(m.Slot))
	w.Bool(m.OK)
	w.Ballot(m.Promised)
	return w.Bytes()
}

func decodeAccepted(buf []byte) (acceptedMsg, error) {
	r := types.NewReader(buf)
	m := acceptedMsg{
		Ballot:   r.Ballot(),
		Slot:     types.Slot(r.Uvarint()),
		OK:       r.Bool(),
		Promised: r.Ballot(),
	}
	return m, wrapDecode("accepted", r)
}

func encodeDecide(m decideMsg) []byte {
	w := types.NewWriter(8 + m.Cmd.EncodedSize())
	w.Uvarint(uint64(m.Slot))
	m.Cmd.Encode(w)
	return w.Bytes()
}

func decodeDecide(buf []byte) (decideMsg, error) {
	r := types.NewReader(buf)
	m := decideMsg{Slot: types.Slot(r.Uvarint()), Cmd: types.DecodeCommandFrom(r)}
	return m, wrapDecode("decide", r)
}

func encodeHeartbeat(m heartbeatMsg) []byte {
	w := types.NewWriter(32)
	w.Ballot(m.Ballot)
	w.Uvarint(uint64(m.Decided))
	w.Uvarint(m.Seq)
	w.Bool(m.WantAck)
	return w.Bytes()
}

func decodeHeartbeat(buf []byte) (heartbeatMsg, error) {
	r := types.NewReader(buf)
	m := heartbeatMsg{Ballot: r.Ballot(), Decided: types.Slot(r.Uvarint())}
	if r.Err() == nil && r.Remaining() > 0 {
		// Legacy frames end after Decided; Seq/WantAck are appended fields.
		m.Seq = r.Uvarint()
		m.WantAck = r.Bool()
	}
	return m, wrapDecode("heartbeat", r)
}

func encodeReadProbe(m readProbeMsg) []byte {
	w := types.NewWriter(24)
	w.Ballot(m.Ballot)
	w.Uvarint(m.Seq)
	return w.Bytes()
}

func decodeReadProbe(buf []byte) (readProbeMsg, error) {
	r := types.NewReader(buf)
	m := readProbeMsg{Ballot: r.Ballot(), Seq: r.Uvarint()}
	return m, wrapDecode("read-probe", r)
}

func encodeReadProbeAck(m readProbeAckMsg) []byte {
	w := types.NewWriter(40)
	w.Ballot(m.Ballot)
	w.Uvarint(m.Seq)
	w.Bool(m.OK)
	w.Ballot(m.Promised)
	return w.Bytes()
}

func decodeReadProbeAck(buf []byte) (readProbeAckMsg, error) {
	r := types.NewReader(buf)
	m := readProbeAckMsg{
		Ballot:   r.Ballot(),
		Seq:      r.Uvarint(),
		OK:       r.Bool(),
		Promised: r.Ballot(),
	}
	return m, wrapDecode("read-probe-ack", r)
}

func encodeHeartbeatAck(m heartbeatAckMsg) []byte {
	w := types.NewWriter(24)
	w.Ballot(m.Ballot)
	w.Uvarint(m.Seq)
	return w.Bytes()
}

func decodeHeartbeatAck(buf []byte) (heartbeatAckMsg, error) {
	r := types.NewReader(buf)
	m := heartbeatAckMsg{Ballot: r.Ballot(), Seq: r.Uvarint()}
	return m, wrapDecode("heartbeat-ack", r)
}

func encodeCatchupReq(m catchupReqMsg) []byte {
	w := types.NewWriter(16)
	w.Uvarint(uint64(m.From))
	w.Uvarint(uint64(m.To))
	return w.Bytes()
}

func decodeCatchupReq(buf []byte) (catchupReqMsg, error) {
	r := types.NewReader(buf)
	m := catchupReqMsg{From: types.Slot(r.Uvarint()), To: types.Slot(r.Uvarint())}
	return m, wrapDecode("catchup-req", r)
}

func encodeCatchupResp(m catchupRespMsg) []byte {
	sz := 24
	for _, e := range m.Entries {
		sz += 8 + e.Cmd.EncodedSize()
	}
	w := types.NewWriter(sz)
	w.Uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.Uvarint(uint64(e.Slot))
		e.Cmd.Encode(w)
	}
	w.Uvarint(uint64(m.Frontier))
	w.Uvarint(uint64(m.TruncatedBelow))
	return w.Bytes()
}

func decodeCatchupResp(buf []byte) (catchupRespMsg, error) {
	r := types.NewReader(buf)
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()) {
		return catchupRespMsg{}, fmt.Errorf("%w: catchup entry count %d", types.ErrCodec, n)
	}
	m := catchupRespMsg{Entries: make([]decideMsg, 0, n)}
	for i := uint64(0); i < n; i++ {
		m.Entries = append(m.Entries, decideMsg{
			Slot: types.Slot(r.Uvarint()),
			Cmd:  types.DecodeCommandFrom(r),
		})
	}
	if r.Err() == nil && r.Remaining() > 0 {
		// Legacy frames end after the entries; Frontier and TruncatedBelow
		// are appended fields.
		m.Frontier = types.Slot(r.Uvarint())
		m.TruncatedBelow = types.Slot(r.Uvarint())
	}
	return m, wrapDecode("catchup-resp", r)
}

// forwardBatchTag opens the multi-command forward encoding. The legacy
// format started directly with a command, whose first byte is its kind —
// and 0 is not a valid CommandKind — so the tag is unambiguous and old
// frames still decode via the fallback below.
const forwardBatchTag = 0

func encodeForward(m forwardMsg) []byte {
	sz := 8
	for _, c := range m.Cmds {
		sz += c.EncodedSize()
	}
	w := types.NewWriter(sz)
	w.Byte(forwardBatchTag)
	w.Uvarint(uint64(len(m.Cmds)))
	for _, c := range m.Cmds {
		c.Encode(w)
	}
	return w.Bytes()
}

func decodeForward(buf []byte) (forwardMsg, error) {
	if len(buf) > 0 && buf[0] == forwardBatchTag {
		r := types.NewReader(buf[1:])
		n := r.Uvarint()
		if r.Err() == nil && n > uint64(r.Remaining()) {
			return forwardMsg{}, fmt.Errorf("%w: forward command count %d", types.ErrCodec, n)
		}
		m := forwardMsg{Cmds: make([]types.Command, 0, n)}
		for i := uint64(0); i < n; i++ {
			m.Cmds = append(m.Cmds, types.DecodeCommandFrom(r))
		}
		return m, wrapDecode("forward", r)
	}
	// Legacy single-command frame from an older peer.
	r := types.NewReader(buf)
	m := forwardMsg{Cmds: []types.Command{types.DecodeCommandFrom(r)}}
	return m, wrapDecode("forward", r)
}

func wrapDecode(what string, r *types.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("paxos %s: %w", what, err)
	}
	return nil
}
