package paxos_test

import (
	"testing"
	"time"

	"repro/internal/paxos"
	"repro/internal/smr"
	"repro/internal/smr/smrtest"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// TestPaxosConformance runs the shared smr.Engine conformance suite against
// the static Paxos engine on the in-memory store.
func TestPaxosConformance(t *testing.T) {
	smrtest.Run(t, factoryWithStore(func(t *testing.T, id types.NodeID) storage.Store {
		return storage.NewMem()
	}))
}

// TestPaxosConformanceWAL runs the same suite with every replica persisting
// through the group-commit WAL store in synchronous mode, proving the WAL
// backend satisfies the acceptor durability contract end to end.
func TestPaxosConformanceWAL(t *testing.T) {
	smrtest.Run(t, factoryWithStore(func(t *testing.T, id types.NodeID) storage.Store {
		s, err := storage.OpenWALStore(t.TempDir(), storage.WALStoreOptions{SyncWrites: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}))
}

func factoryWithStore(newStore func(t *testing.T, id types.NodeID) storage.Store) func(*testing.T, []types.NodeID) smrtest.Cluster {
	return func(t *testing.T, members []types.NodeID) smrtest.Cluster {
		net := transport.NewNetwork(transport.Options{
			BaseLatency: 100 * time.Microsecond,
			Jitter:      100 * time.Microsecond,
			Seed:        2,
		})
		cfg := types.MustConfig(1, members...)
		engines := make(map[types.NodeID]smr.Engine, len(members))
		for _, id := range members {
			rep, err := paxos.New(cfg, id, net.Endpoint(id), newStore(t, id), 1, paxos.Options{
				TickInterval:         time.Millisecond,
				HeartbeatEveryTicks:  2,
				ElectionTimeoutTicks: 10,
				ElectionJitterTicks:  10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Start(); err != nil {
				t.Fatal(err)
			}
			engines[id] = rep
		}
		return smrtest.Cluster{
			Engines: engines,
			Network: net,
			Cleanup: func() {
				for _, e := range engines {
					e.Stop()
				}
				net.Close()
			},
		}
	}
}
