package paxos_test

import (
	"testing"
	"time"

	"repro/internal/paxos"
	"repro/internal/smr"
	"repro/internal/smr/smrtest"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// cleanNet is the benign network the baseline conformance runs use.
var cleanNet = transport.Options{
	BaseLatency: 100 * time.Microsecond,
	Jitter:      100 * time.Microsecond,
	Seed:        2,
}

// adversarialNet degrades every link: 3% loss, 2% duplication and heavy
// jitter. The conformance contract must hold unchanged — message loss may
// slow agreement down but must never break safety or dedup.
var adversarialNet = transport.Options{
	BaseLatency: 100 * time.Microsecond,
	Jitter:      500 * time.Microsecond,
	LossRate:    0.03,
	DupRate:     0.02,
	Seed:        2,
}

// TestPaxosConformance runs the shared smr.Engine conformance suite against
// the static Paxos engine on the in-memory store.
func TestPaxosConformance(t *testing.T) {
	smrtest.Run(t, factoryWithStore(cleanNet, func(t *testing.T, id types.NodeID) storage.Store {
		return storage.NewMem()
	}))
}

// TestPaxosConformanceWAL runs the same suite with every replica persisting
// through the group-commit WAL store in synchronous mode, proving the WAL
// backend satisfies the acceptor durability contract end to end.
func TestPaxosConformanceWAL(t *testing.T) {
	smrtest.Run(t, factoryWithStore(cleanNet, func(t *testing.T, id types.NodeID) storage.Store {
		s, err := storage.OpenWALStore(t.TempDir(), storage.WALStoreOptions{SyncWrites: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}))
}

// TestPaxosConformanceAdversarial reruns the suite over a lossy, jittery,
// duplicating network.
func TestPaxosConformanceAdversarial(t *testing.T) {
	smrtest.Run(t, factoryWithStore(adversarialNet, func(t *testing.T, id types.NodeID) storage.Store {
		return storage.NewMem()
	}))
}

func factoryWithStore(netOpts transport.Options, newStore func(t *testing.T, id types.NodeID) storage.Store) func(*testing.T, []types.NodeID) smrtest.Cluster {
	return func(t *testing.T, members []types.NodeID) smrtest.Cluster {
		net := transport.NewNetwork(netOpts)
		cfg := types.MustConfig(1, members...)
		engines := make(map[types.NodeID]smr.Engine, len(members))
		for _, id := range members {
			rep, err := paxos.New(cfg, id, net.Endpoint(id), newStore(t, id), 1, paxos.Options{
				TickInterval:         time.Millisecond,
				HeartbeatEveryTicks:  2,
				ElectionTimeoutTicks: 10,
				ElectionJitterTicks:  10,
				// The conformance suite observes raw decisions, one per
				// proposed command; batching would deliver CmdBatch
				// envelopes (unpacked only by the composition layers).
				BatchSize: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Start(); err != nil {
				t.Fatal(err)
			}
			engines[id] = rep
		}
		return smrtest.Cluster{
			Engines: engines,
			Network: net,
			Cleanup: func() {
				for _, e := range engines {
					e.Stop()
				}
				net.Close()
			},
		}
	}
}
