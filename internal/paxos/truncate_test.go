package paxos

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// TestTruncatedSlotRedirect is the end-to-end truncation contract: a member
// cut off while the survivors decide past it and truncate their logs cannot
// replay the released prefix — its catch-up requests come back as a
// checkpoint redirect (CheckpointNeeded latches, delivery stays parked) —
// and a SkipTo at the checkpoint base resumes delivery right above it.
func TestTruncatedSlotRedirect(t *testing.T) {
	tc := newTestCluster(t, 3, transport.Options{})
	lead := tc.waitForLeader(2 * time.Second)
	victim := types.NodeID("n3")
	if lead == victim {
		victim = "n1"
	}
	survivors := make([]types.NodeID, 0, 2)
	for id := range tc.reps {
		if id != victim {
			survivors = append(survivors, id)
		}
	}
	tc.net.Isolate(victim)

	const total = 20
	for i := 1; i <= total; i++ {
		tc.proposeVia(lead, appCmd("c", uint64(i)))
	}
	tc.waitUntil(func() bool {
		for _, id := range survivors {
			if len(tc.appDelivered(id)) < total {
				return false
			}
		}
		return true
	}, "survivors to decide", 10*time.Second)

	// The checkpoint story: state through slot 15 is durable elsewhere, so
	// the survivors release everything at or below it.
	const floor = types.Slot(15)
	for _, id := range survivors {
		tc.reps[id].TruncateBelow(floor)
	}
	tc.waitUntil(func() bool {
		for _, id := range survivors {
			if tc.reps[id].Progress().TruncatedBelow != floor {
				return false
			}
		}
		return true
	}, "survivors to truncate", 5*time.Second)
	for _, id := range survivors {
		st := tc.reps[id].Stats()
		if st.TruncatedSlots < int64(floor) {
			t.Fatalf("%s: truncated %d slots, want >= %d", id, st.TruncatedSlots, floor)
		}
		if st.RetainedSlots > int64(total)+5-int64(floor) {
			t.Fatalf("%s: still retains %d slots after truncating below %d", id, st.RetainedSlots, floor)
		}
	}

	// Heal. The victim's catch-up for slot 1 lands below every survivor's
	// floor: no log replay is possible, only the redirect.
	before := len(tc.appDelivered(victim))
	tc.net.Restore(victim)
	rep := tc.reps[victim]
	tc.waitUntil(func() bool {
		return rep.Progress().CheckpointNeeded
	}, "redirect to latch CheckpointNeeded", 10*time.Second)
	if got := len(tc.appDelivered(victim)); got != before {
		t.Fatalf("victim delivered %d commands across an unfillable gap", got-before)
	}
	if p := rep.Progress(); p.MaxDecidedSeen < types.Slot(total) {
		t.Fatalf("frontier probe: MaxDecidedSeen=%d, want >= %d", p.MaxDecidedSeen, total)
	}

	// "Install the checkpoint" and resume: delivery must restart at floor+1
	// and agree with the survivors above it.
	rep.SkipTo(floor)
	tc.waitUntil(func() bool {
		return rep.Progress().Delivered >= types.Slot(total)
	}, "victim to catch up above the checkpoint", 10*time.Second)
	if p := rep.Progress(); p.CheckpointNeeded {
		t.Fatal("CheckpointNeeded still latched after SkipTo")
	}
	ref := make(map[types.Slot]types.Command)
	for _, d := range tc.deliveredAt(survivors[0]) {
		ref[d.Slot] = d.Cmd
	}
	tail := tc.deliveredAt(victim)[before:]
	if len(tail) == 0 {
		t.Fatal("victim delivered nothing after SkipTo")
	}
	if tail[0].Slot != floor+1 {
		t.Fatalf("delivery resumed at slot %d, want %d", tail[0].Slot, floor+1)
	}
	for i, d := range tail {
		if d.Slot != floor+1+types.Slot(i) {
			t.Fatalf("gap or disorder after SkipTo: position %d has slot %d", i, d.Slot)
		}
		if want, ok := ref[d.Slot]; !ok || !d.Cmd.Equal(want) {
			t.Fatalf("slot %d disagrees with survivor: %v vs %v", d.Slot, d.Cmd, want)
		}
	}
}

// TestTruncationFloorSurvivesRestart: the floor is durable, recovery resumes
// delivery above it instead of resurrecting released slots, and the
// standalone TruncatedFloor helper reads it back without a replica.
func TestTruncationFloorSurvivesRestart(t *testing.T) {
	tc := newTestCluster(t, 1, transport.Options{})
	tc.waitForLeader(2 * time.Second)
	const total = 10
	for i := 1; i <= total; i++ {
		tc.proposeVia("n1", appCmd("c", uint64(i)))
	}
	tc.waitUntil(func() bool {
		return len(tc.appDelivered("n1")) >= total
	}, "decisions", 5*time.Second)

	const floor = types.Slot(5)
	tc.reps["n1"].TruncateBelow(floor)
	tc.waitUntil(func() bool {
		return tc.reps["n1"].Progress().TruncatedBelow == floor
	}, "truncation", 2*time.Second)
	tc.reps["n1"].Stop()

	got, err := TruncatedFloor(tc.stores["n1"], uint64(tc.cfg.ID))
	if err != nil {
		t.Fatal(err)
	}
	if got != floor {
		t.Fatalf("TruncatedFloor = %d, want %d", got, floor)
	}
	if other, err := TruncatedFloor(tc.stores["n1"], 999); err != nil || other != 0 {
		t.Fatalf("TruncatedFloor of unknown stream = %d, %v; want 0, nil", other, err)
	}

	// Reboot over the same store: the recovered replica redelivers only the
	// retained suffix.
	tc.startReplica("n1")
	tc.waitUntil(func() bool {
		p := tc.reps["n1"].Progress()
		return p.Delivered >= types.Slot(total) && p.TruncatedBelow == floor
	}, "recovery to the retained suffix", 5*time.Second)
	dels := tc.deliveredAt("n1")
	if len(dels) == 0 {
		t.Fatal("nothing redelivered after restart")
	}
	if dels[0].Slot != floor+1 {
		t.Fatalf("redelivery starts at slot %d, want %d", dels[0].Slot, floor+1)
	}
	for i, d := range dels {
		if d.Slot != floor+1+types.Slot(i) {
			t.Fatalf("redelivery gap at position %d: slot %d", i, d.Slot)
		}
	}
}

// TestTruncateBelowClampsToDelivered: the floor never outruns the delivered
// prefix — truncating "everything" releases only what was applied.
func TestTruncateBelowClampsToDelivered(t *testing.T) {
	tc := newTestCluster(t, 1, transport.Options{})
	tc.waitForLeader(2 * time.Second)
	for i := 1; i <= 4; i++ {
		tc.proposeVia("n1", appCmd("c", uint64(i)))
	}
	tc.waitUntil(func() bool {
		return len(tc.appDelivered("n1")) >= 4
	}, "decisions", 5*time.Second)
	delivered := tc.reps["n1"].Progress().Delivered

	tc.reps["n1"].TruncateBelow(1 << 40)
	tc.waitUntil(func() bool {
		return tc.reps["n1"].Progress().TruncatedBelow > 0
	}, "truncation", 2*time.Second)
	if got := tc.reps["n1"].Progress().TruncatedBelow; got > delivered {
		t.Fatalf("floor %d ran past the delivered prefix %d", got, delivered)
	}
}
