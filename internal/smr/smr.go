// Package smr defines the engine-neutral interface between a state machine
// replication engine (the "non-reconfigurable building block") and the layers
// above it: the composition layer (internal/reconfig), the baselines and the
// harness.
//
// The reconfigurable SMR of the paper treats the engine strictly as a black
// box: it proposes commands, consumes the gap-free, in-order decision stream,
// and stops the engine when the configuration is wedged. Nothing in this
// interface exposes or permits membership change — that is the point of the
// paper's construction.
package smr

import (
	"errors"

	"repro/internal/types"
)

// Decision is one decided log entry, delivered in slot order with no gaps.
type Decision struct {
	Slot types.Slot
	Cmd  types.Command
}

// Engine is a static SMR instance over a fixed member set.
//
// Lifecycle: New -> Start -> (Propose / Decisions) -> Stop. After Stop the
// decision channel is closed; Propose fails.
type Engine interface {
	// Start launches the engine's goroutines. It must be called once.
	Start() error
	// Stop terminates the engine and closes the decision stream. It is
	// idempotent and waits for the engine's goroutines to exit.
	Stop()
	// Propose submits a command for total ordering. Non-leaders forward
	// to the current leader; the command is decided at most once per
	// proposal but may be lost (callers retry on timeout). Propose never
	// blocks on consensus progress.
	Propose(cmd types.Command) error
	// Decisions returns the engine's in-order, gap-free decision stream.
	// The channel is closed by Stop.
	Decisions() <-chan Decision
	// Leader returns the engine's current leader hint (empty when
	// unknown) and whether this replica currently believes it is leader.
	Leader() (types.NodeID, bool)
}

// ReadIndexer is an optional engine capability: linearizable reads without
// log appends. ReadIndex asks the engine for a slot such that any command
// chosen before the read was invoked has slot <= index; the engine confirms
// it still holds leadership (one quorum round, or a valid lease) and then
// invokes done exactly once. On success err is nil and index is the slot the
// caller must have applied before answering the read locally. On failure
// (not leader, deposed mid-round, engine stopped) err is non-nil and the
// caller falls back to proposing the read through the log.
//
// done may be invoked synchronously from ReadIndex or later from the
// engine's event loop; implementations of done must not block.
type ReadIndexer interface {
	ReadIndex(done func(index types.Slot, err error)) error
}

// ErrStopped is returned by Propose after the engine has stopped (e.g. the
// configuration was wedged).
var ErrStopped = errors.New("smr: engine stopped")

// ErrNotLeader is returned through a ReadIndexer callback when the engine is
// not (or no longer) the leader and cannot serve a fast-path read.
var ErrNotLeader = errors.New("smr: not leader")

// ErrNotMember is returned when constructing an engine on a node outside the
// configuration.
var ErrNotMember = errors.New("smr: node is not a member of the configuration")
