// Package smrtest is a reusable conformance suite for smr.Engine
// implementations. Both engines in this repository — the static Paxos
// building block and the in-band α-window baseline — must satisfy the same
// observable contract: gap-free in-order decision delivery, agreement across
// replicas, progress from any proposer, and clean stop semantics. Their test
// packages invoke Run with a builder.
package smrtest

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/types"
)

// Cluster is one running engine group under test.
type Cluster struct {
	Engines map[types.NodeID]smr.Engine
	Network *transport.Network
	Cleanup func()
}

// Builder constructs a started engine per member over a fresh network.
type Builder func(t *testing.T, members []types.NodeID) Cluster

// Run executes the conformance suite against the builder.
func Run(t *testing.T, build Builder) {
	t.Run("SingleNodeOrdering", func(t *testing.T) { runSingleNodeOrdering(t, build) })
	t.Run("AgreementAcrossProposers", func(t *testing.T) { runAgreement(t, build) })
	t.Run("StopSemantics", func(t *testing.T) { runStopSemantics(t, build) })
	t.Run("ProgressAfterLeaderIsolation", func(t *testing.T) { runLeaderIsolation(t, build) })
}

type collector struct {
	mu  sync.Mutex
	seq map[types.NodeID][]smr.Decision
	wg  sync.WaitGroup
}

func collect(c *Cluster) *collector {
	col := &collector{seq: make(map[types.NodeID][]smr.Decision, len(c.Engines))}
	for id, eng := range c.Engines {
		id, eng := id, eng
		col.wg.Add(1)
		go func() {
			defer col.wg.Done()
			for d := range eng.Decisions() {
				col.mu.Lock()
				col.seq[id] = append(col.seq[id], d)
				col.mu.Unlock()
			}
		}()
	}
	return col
}

func (c *collector) appCount(id types.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.seq[id] {
		if d.Cmd.Kind == types.CmdApp {
			n++
		}
	}
	return n
}

// verify asserts gap-free slots and cross-node agreement on common prefixes.
func (c *collector) verify(t *testing.T) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var ref []smr.Decision
	for _, seq := range c.seq {
		if len(seq) > len(ref) {
			ref = seq
		}
	}
	for id, seq := range c.seq {
		for i, d := range seq {
			if d.Slot != types.Slot(i+1) {
				t.Fatalf("%s: slot %d at index %d (gap/disorder)", id, d.Slot, i)
			}
			if !d.Cmd.Equal(ref[i].Cmd) {
				t.Fatalf("%s: agreement violated at slot %d", id, d.Slot)
			}
		}
	}
}

// deadlineScale stretches the conformance deadlines on starved runners.
// The adversarial suites retransmit their way through 3% loss and heavy
// jitter; under the race detector's ~10x slowdown on a single-core runner
// the in-band engine has blown the flat 20s agreement deadline (CHANGES.md
// PR 5 "Known"). GOMAXPROCS is the signal available here for "every engine
// goroutine is time-slicing one core", so deadlines scale up when it is
// small instead of being tuned to the fastest machine that ever passed.
// The timeouts only bound how long a *stuck* run burns before failing —
// a healthy run returns as soon as the condition holds — so stretching
// them costs nothing on passes.
func deadlineScale() time.Duration {
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		return time.Duration(5 - procs) // 1 core → 4x, 2 → 3x, 3 → 2x
	}
	return 1
}

func waitFor(t *testing.T, cond func() bool, what string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout * deadlineScale())
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("conformance: timed out waiting for %s", what)
}

func proposeRetry(t *testing.T, eng smr.Engine, cmd types.Command) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if err := eng.Propose(cmd); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("conformance: propose kept failing")
}

func appCmd(client string, seq uint64) types.Command {
	return types.Command{Kind: types.CmdApp, Client: types.NodeID(client), Seq: seq,
		Data: []byte(fmt.Sprintf("%s/%d", client, seq))}
}

func runSingleNodeOrdering(t *testing.T, build Builder) {
	c := build(t, []types.NodeID{"n1"})
	defer c.Cleanup()
	col := collect(&c)
	for i := 1; i <= 15; i++ {
		proposeRetry(t, c.Engines["n1"], appCmd("c", uint64(i)))
	}
	waitFor(t, func() bool { return col.appCount("n1") >= 15 }, "15 decisions", 10*time.Second)
	col.verify(t)
}

func runAgreement(t *testing.T, build Builder) {
	members := []types.NodeID{"n1", "n2", "n3"}
	c := build(t, members)
	defer c.Cleanup()
	col := collect(&c)
	const per = 10
	for i := 1; i <= per; i++ {
		for _, m := range members {
			proposeRetry(t, c.Engines[m], appCmd("c-"+string(m), uint64(i)))
		}
	}
	waitFor(t, func() bool {
		for _, m := range members {
			if col.appCount(m) < 3*per {
				return false
			}
		}
		return true
	}, "all decisions everywhere", 20*time.Second)
	col.verify(t)
}

func runStopSemantics(t *testing.T, build Builder) {
	c := build(t, []types.NodeID{"n1"})
	eng := c.Engines["n1"]
	col := collect(&c)
	proposeRetry(t, eng, appCmd("c", 1))
	waitFor(t, func() bool { return col.appCount("n1") >= 1 }, "one decision", 10*time.Second)

	eng.Stop()
	eng.Stop() // idempotent
	if err := eng.Propose(appCmd("c", 2)); err != smr.ErrStopped {
		t.Fatalf("Propose after Stop: %v", err)
	}
	// The decision channel must close (the collector goroutine exits).
	done := make(chan struct{})
	go func() { col.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("decision channel not closed by Stop")
	}
	c.Cleanup()
}

func runLeaderIsolation(t *testing.T, build Builder) {
	members := []types.NodeID{"n1", "n2", "n3"}
	c := build(t, members)
	defer c.Cleanup()
	col := collect(&c)

	proposeRetry(t, c.Engines["n1"], appCmd("c", 1))
	waitFor(t, func() bool { return col.appCount("n1") >= 1 }, "initial decision", 10*time.Second)

	// Find the leader and cut it off.
	var leader types.NodeID
	waitFor(t, func() bool {
		for id, eng := range c.Engines {
			if _, am := eng.Leader(); am {
				leader = id
				return true
			}
		}
		return false
	}, "a leader", 10*time.Second)
	c.Network.Isolate(leader)

	var survivor types.NodeID
	for _, m := range members {
		if m != leader {
			survivor = m
			break
		}
	}
	// Keep proposing through a survivor until the new regime commits it.
	waitFor(t, func() bool {
		_ = c.Engines[survivor].Propose(appCmd("c", 2))
		return col.appCount(survivor) >= 2
	}, "post-isolation decision", 20*time.Second)
	col.verify(t)
}
