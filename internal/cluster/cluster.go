// Package cluster orchestrates a complete reconfigurable-SMR deployment over
// the simulated network: booting the initial configuration, adding spares,
// crashing/restarting/isolating nodes, opening client sessions, and driving
// reconfigurations. Tests, examples, the benchmark harness and the CLI tools
// all build on it.
package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/paxos"
	"repro/internal/reconfig"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// Config assembles a cluster.
type Config struct {
	// Transport configures the simulated network.
	Transport transport.Options
	// TCP routes all traffic over real loopback sockets instead of the
	// in-memory scheduler (latency options are then ignored).
	TCP bool
	// Node configures every reconfig node.
	Node reconfig.Options
	// Factory builds each node's state machine.
	Factory statemachine.Factory
	// Storage selects each node's backend: "mem" (default), "file"
	// (one file per key) or "wal" (segmented group-commit log).
	Storage string
	// StorageDir roots the on-disk backends, one subdirectory per node.
	// Empty means a fresh OS temp directory removed on Close.
	StorageDir string
	// SyncWrites makes on-disk backends fsync before acknowledging writes.
	SyncWrites bool
}

// FastOptions returns node timing suitable for tests and local experiments:
// 1ms consensus ticks and aggressive retry/linger intervals.
func FastOptions() reconfig.Options {
	return reconfig.Options{
		Paxos: paxos.Options{
			TickInterval:         time.Millisecond,
			HeartbeatEveryTicks:  2,
			ElectionTimeoutTicks: 10,
			ElectionJitterTicks:  10,
		},
		RetryInterval:  10 * time.Millisecond,
		LingerOld:      500 * time.Millisecond,
		FetchTimeout:   150 * time.Millisecond,
		StaleJumpTicks: 15,
		GossipTicks:    20,
	}
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config
	net *transport.Network

	mu         sync.Mutex
	nodes      map[types.NodeID]*reconfig.Node
	stores     map[types.NodeID]storage.Store
	tempDir    string // created when StorageDir was empty; removed on Close
	clients    []*client.Client
	nextClient int
	seeds      []types.NodeID
	closed     bool
}

// New creates an empty cluster (no nodes yet).
func New(cfg Config) *Cluster {
	if cfg.Factory == nil {
		cfg.Factory = statemachine.NewKVMachine
	}
	newNet := transport.NewNetwork
	if cfg.TCP {
		newNet = transport.NewTCPNetwork
	}
	return &Cluster{
		cfg:    cfg,
		net:    newNet(cfg.Transport),
		nodes:  make(map[types.NodeID]*reconfig.Node),
		stores: make(map[types.NodeID]storage.Store),
	}
}

// openStoreLocked builds one node's backend per the cluster config.
func (c *Cluster) openStoreLocked(id types.NodeID) (storage.Store, error) {
	switch c.cfg.Storage {
	case "", "mem":
		return storage.NewMem(), nil
	case "file":
		dir, err := c.storeDirLocked(id)
		if err != nil {
			return nil, err
		}
		return storage.OpenFile(dir, storage.FileOptions{SyncWrites: c.cfg.SyncWrites})
	case "wal":
		dir, err := c.storeDirLocked(id)
		if err != nil {
			return nil, err
		}
		return storage.OpenWALStore(dir, storage.WALStoreOptions{SyncWrites: c.cfg.SyncWrites})
	default:
		return nil, fmt.Errorf("cluster: unknown storage backend %q", c.cfg.Storage)
	}
}

func (c *Cluster) storeDirLocked(id types.NodeID) (string, error) {
	root := c.cfg.StorageDir
	if root == "" {
		if c.tempDir == "" {
			dir, err := os.MkdirTemp("", "rsmd-store-*")
			if err != nil {
				return "", fmt.Errorf("cluster: storage dir: %w", err)
			}
			c.tempDir = dir
		}
		root = c.tempDir
	}
	return filepath.Join(root, string(id)), nil
}

// Close stops every node and client and tears down the network.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nodes := make([]*reconfig.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	clients := c.clients
	stores := make([]storage.Store, 0, len(c.stores))
	for _, st := range c.stores {
		stores = append(stores, st)
	}
	tempDir := c.tempDir
	c.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	for _, n := range nodes {
		n.Stop()
	}
	c.net.Close()
	for _, st := range stores {
		switch s := st.(type) {
		case *storage.FileStore:
			s.Close()
		case *storage.WALStore:
			_ = s.Close()
		}
	}
	if tempDir != "" {
		_ = os.RemoveAll(tempDir)
	}
}

// Network exposes the underlying simulated network for fault injection and
// accounting.
func (c *Cluster) Network() *transport.Network { return c.net }

// newNodeLocked constructs (but does not bootstrap) a node, reusing any
// existing store so crash/restart cycles keep their disk.
func (c *Cluster) newNodeLocked(id types.NodeID) (*reconfig.Node, error) {
	st, ok := c.stores[id]
	if !ok {
		var err error
		if st, err = c.openStoreLocked(id); err != nil {
			return nil, err
		}
		c.stores[id] = st
	}
	n, err := reconfig.NewNode(reconfig.NodeConfig{
		Self:     id,
		Endpoint: c.net.Endpoint(id),
		Store:    st,
		Factory:  c.cfg.Factory,
		Opts:     c.cfg.Node,
	})
	if err != nil {
		return nil, err
	}
	c.nodes[id] = n
	return n, nil
}

// Bootstrap creates, bootstraps and starts the initial configuration.
func (c *Cluster) Bootstrap(members ...types.NodeID) (types.Config, error) {
	cfg, err := types.NewConfig(1, members)
	if err != nil {
		return types.Config{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return types.Config{}, reconfig.ErrStopped
	}
	c.seeds = cfg.Members
	for _, id := range cfg.Members {
		n, err := c.newNodeLocked(id)
		if err != nil {
			return types.Config{}, err
		}
		if err := n.Bootstrap(cfg); err != nil {
			return types.Config{}, err
		}
		if err := n.Start(); err != nil {
			return types.Config{}, err
		}
	}
	return cfg, nil
}

// AddSpare starts a node with an empty store; it idles until reconfigured in.
func (c *Cluster) AddSpare(id types.NodeID) (*reconfig.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, reconfig.ErrStopped
	}
	if _, ok := c.nodes[id]; ok {
		return nil, fmt.Errorf("cluster: node %s already exists", id)
	}
	n, err := c.newNodeLocked(id)
	if err != nil {
		return nil, err
	}
	if err := n.Start(); err != nil {
		return nil, err
	}
	return n, nil
}

// Node returns the running node for id (nil if crashed or unknown).
func (c *Cluster) Node(id types.NodeID) *reconfig.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Nodes returns the IDs of all running nodes, sorted.
func (c *Cluster) Nodes() []types.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]types.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	return types.SortNodeIDs(out)
}

// Crash stops a node's process. Its store survives for a later Restart.
func (c *Cluster) Crash(id types.NodeID) {
	c.mu.Lock()
	n := c.nodes[id]
	delete(c.nodes, id)
	c.mu.Unlock()
	if n != nil {
		n.Stop()
	}
}

// Restart boots a previously crashed node from its surviving store.
func (c *Cluster) Restart(id types.NodeID) (*reconfig.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, reconfig.ErrStopped
	}
	if _, ok := c.nodes[id]; ok {
		return nil, fmt.Errorf("cluster: node %s already running", id)
	}
	if _, ok := c.stores[id]; !ok {
		return nil, fmt.Errorf("cluster: node %s has no store to restart from", id)
	}
	n, err := c.newNodeLocked(id)
	if err != nil {
		return nil, err
	}
	if err := n.Start(); err != nil {
		return nil, err
	}
	return n, nil
}

// NewClient opens a client session with an auto-assigned ID.
func (c *Cluster) NewClient(opts client.Options) *client.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextClient++
	// The PID keeps session IDs distinct across process restarts over the
	// same storage dir: a fresh process's (client, seq) pairs must not alias
	// recovered session-table entries, or its first commands would be
	// deduplicated into another life's cached replies.
	id := types.NodeID(fmt.Sprintf("client-%d-%d", os.Getpid(), c.nextClient))
	cl := client.New(id, c.net.Endpoint(id), c.seeds, opts)
	c.clients = append(c.clients, cl)
	return cl
}

// Reconfigure drives a membership change through the given member node.
func (c *Cluster) Reconfigure(ctx context.Context, via types.NodeID, members []types.NodeID) (types.Config, error) {
	n := c.Node(via)
	if n == nil {
		return types.Config{}, fmt.Errorf("cluster: node %s is not running", via)
	}
	return n.Reconfigure(ctx, members)
}

// WaitServing blocks until every listed node serves the current config.
func (c *Cluster) WaitServing(ctx context.Context, ids ...types.NodeID) error {
	for _, id := range ids {
		n := c.Node(id)
		if n == nil {
			return fmt.Errorf("cluster: node %s is not running", id)
		}
		if err := n.WaitServing(ctx); err != nil {
			return fmt.Errorf("node %s: %w", id, err)
		}
	}
	return nil
}

// TotalViolations sums invariant violations across running nodes; tests and
// the harness assert it stays zero.
func (c *Cluster) TotalViolations() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, n := range c.nodes {
		total += n.Stats().InvariantViolations
	}
	return total
}
