package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/reconfig"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// GroupManager hosts N independent RSM groups — one reconfigurable chain
// each — multiplexed over shared per-process infrastructure. Every physical
// process owns exactly one transport endpoint and one physical store; each
// group replica on that process runs over a group view of the endpoint
// (transport.Endpoint.Group) and a prefixed view of the store
// (storage.WithPrefix), so:
//
//   - one TCP connection per process pair carries every group's traffic, and
//     a cross-group burst still coalesces into single socket writes;
//   - every group's records land in the *same* WAL, so the WAL's group
//     commit coalesces fsyncs across groups — more groups means fewer
//     fsyncs per operation, not more;
//   - recovery demultiplexes naturally by key prefix, and one checkpoint
//     compaction covers every group.
//
// Group 0 is reserved: it is the legacy ungrouped runtime (empty key prefix,
// ungrouped wire frames) and is not managed here.
type GroupManager struct {
	cfg Config
	net *transport.Network

	mu      sync.Mutex
	procs   map[types.NodeID]*managedProc
	groups  map[types.GroupID]*groupRun
	tempDir string
	closed  bool
}

// managedProc is one physical process: an endpoint plus one shared store.
type managedProc struct {
	id      types.NodeID
	store   storage.Store
	crashed bool
}

// groupRun is one group's set of replicas, keyed by hosting process.
type groupRun struct {
	id      types.GroupID
	factory statemachine.Factory
	nodes   map[types.NodeID]*reconfig.Node
	order   []types.NodeID // submit preference order (refreshed from config)
	rr      int
	leader  types.NodeID // cached leader hint for submit routing
}

// GroupStats aggregates one group's replica counters for per-group health
// reporting: the shard experiment needs to see which group is hot.
type GroupStats struct {
	Group               types.GroupID
	Applied             int64 // summed over replicas
	DroppedInbound      int64 // summed over replicas
	ApplyQueueHighWater int64 // max over replicas
	ApplyStalls         int64 // summed over replicas
	GroupCommits        int64 // summed over replicas
	InvariantViolations int64 // summed over replicas
	ShedSubmits         int64 // summed over replicas (admission control)
	SubmitQueueHigh     int64 // max over replicas (proposal queue high-water)

	CheckpointsPublished int64 // summed over replicas
	CatchupFetches       int64 // summed over replicas
	TruncatedSlots       int64 // summed over replicas (log slots released)
	RetainedSlots        int64 // max over replicas (decided slots still held)
	DecisionBufferHigh   int64 // max over replicas (parked-decision high-water)
}

// NewGroupManager creates an empty manager (no processes, no groups).
func NewGroupManager(cfg Config) *GroupManager {
	if cfg.Factory == nil {
		cfg.Factory = statemachine.NewKVMachine
	}
	newNet := transport.NewNetwork
	if cfg.TCP {
		newNet = transport.NewTCPNetwork
	}
	return &GroupManager{
		cfg:    cfg,
		net:    newNet(cfg.Transport),
		procs:  make(map[types.NodeID]*managedProc),
		groups: make(map[types.GroupID]*groupRun),
	}
}

// Network exposes the shared transport for fault injection and accounting.
func (m *GroupManager) Network() *transport.Network { return m.net }

// AddProcess registers a physical process: its endpoint and shared store are
// created eagerly so every group replica later placed here multiplexes over
// them. Idempotent for an already-registered process.
func (m *GroupManager) AddProcess(id types.NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return reconfig.ErrStopped
	}
	if _, ok := m.procs[id]; ok {
		return nil
	}
	st, err := m.openProcStoreLocked(id)
	if err != nil {
		return err
	}
	m.net.Endpoint(id)
	m.procs[id] = &managedProc{id: id, store: st}
	return nil
}

func (m *GroupManager) openProcStoreLocked(id types.NodeID) (storage.Store, error) {
	switch m.cfg.Storage {
	case "", "mem":
		return storage.NewMem(), nil
	case "file":
		dir, err := m.procDirLocked(id)
		if err != nil {
			return nil, err
		}
		return storage.OpenFile(dir, storage.FileOptions{SyncWrites: m.cfg.SyncWrites})
	case "wal":
		dir, err := m.procDirLocked(id)
		if err != nil {
			return nil, err
		}
		return storage.OpenWALStore(dir, storage.WALStoreOptions{SyncWrites: m.cfg.SyncWrites})
	default:
		return nil, fmt.Errorf("cluster: unknown storage backend %q", m.cfg.Storage)
	}
}

func (m *GroupManager) procDirLocked(id types.NodeID) (string, error) {
	root := m.cfg.StorageDir
	if root == "" {
		if m.tempDir == "" {
			dir, err := os.MkdirTemp("", "rsmd-groups-*")
			if err != nil {
				return "", fmt.Errorf("cluster: storage dir: %w", err)
			}
			m.tempDir = dir
		}
		root = m.tempDir
	}
	return filepath.Join(root, string(id)), nil
}

// newReplicaLocked builds one group replica on one process: a reconfig.Node
// over the process endpoint's group view and the shared store's group prefix.
func (m *GroupManager) newReplicaLocked(g *groupRun, proc *managedProc) (*reconfig.Node, error) {
	n, err := reconfig.NewNode(reconfig.NodeConfig{
		Self:     proc.id,
		Endpoint: m.net.Endpoint(proc.id).Group(uint64(g.id)),
		Store:    storage.WithPrefix(proc.store, storage.GroupPrefix(uint64(g.id))),
		Factory:  g.factory,
		Opts:     m.cfg.Node,
	})
	if err != nil {
		return nil, err
	}
	g.nodes[proc.id] = n
	return n, nil
}

// CreateGroup bootstraps and starts group gid with the given initial members
// (processes are auto-registered). factory nil uses the manager default.
func (m *GroupManager) CreateGroup(gid types.GroupID, members []types.NodeID, factory statemachine.Factory) error {
	if gid == 0 {
		return fmt.Errorf("cluster: group 0 is the reserved ungrouped runtime")
	}
	cfg, err := types.NewConfig(1, members)
	if err != nil {
		return err
	}
	for _, id := range cfg.Members {
		if err := m.AddProcess(id); err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return reconfig.ErrStopped
	}
	if _, ok := m.groups[gid]; ok {
		return fmt.Errorf("cluster: group %d already exists", gid)
	}
	if factory == nil {
		factory = m.cfg.Factory
	}
	g := &groupRun{
		id:      gid,
		factory: factory,
		nodes:   make(map[types.NodeID]*reconfig.Node),
		order:   types.CloneNodeIDs(cfg.Members),
	}
	for _, id := range cfg.Members {
		n, err := m.newReplicaLocked(g, m.procs[id])
		if err != nil {
			return err
		}
		if err := n.Bootstrap(cfg); err != nil {
			return err
		}
		if err := n.Start(); err != nil {
			return err
		}
	}
	m.groups[gid] = g
	return nil
}

// AddGroupReplica starts an idle (spare) replica of group gid on the given
// process; it serves once a reconfiguration makes it a member.
func (m *GroupManager) AddGroupReplica(gid types.GroupID, proc types.NodeID) (*reconfig.Node, error) {
	if err := m.AddProcess(proc); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, reconfig.ErrStopped
	}
	g, ok := m.groups[gid]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown group %d", gid)
	}
	if n, ok := g.nodes[proc]; ok {
		return n, nil
	}
	n, err := m.newReplicaLocked(g, m.procs[proc])
	if err != nil {
		return nil, err
	}
	if err := n.Start(); err != nil {
		delete(g.nodes, proc)
		return nil, err
	}
	return n, nil
}

// StopGroup stops every replica of gid and drops its endpoint views. The
// group's records stay in the shared stores; re-creating the same gid over
// the same directories would recover them.
func (m *GroupManager) StopGroup(gid types.GroupID) {
	m.mu.Lock()
	g := m.groups[gid]
	delete(m.groups, gid)
	var nodes []*reconfig.Node
	if g != nil {
		for _, n := range g.nodes {
			nodes = append(nodes, n)
		}
	}
	procs := make([]types.NodeID, 0, len(m.procs))
	for id := range m.procs {
		procs = append(procs, id)
	}
	m.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	for _, id := range procs {
		m.net.Endpoint(id).DropGroup(uint64(gid))
	}
}

// Groups returns the live group IDs, ascending.
func (m *GroupManager) Groups() []types.GroupID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]types.GroupID, 0, len(m.groups))
	for gid := range m.groups {
		out = append(out, gid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Processes returns the registered process IDs, sorted.
func (m *GroupManager) Processes() []types.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]types.NodeID, 0, len(m.procs))
	for id := range m.procs {
		out = append(out, id)
	}
	return types.SortNodeIDs(out)
}

// Node returns group gid's replica on the given process (nil if none).
func (m *GroupManager) Node(gid types.GroupID, proc types.NodeID) *reconfig.Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.groups[gid]; ok {
		return g.nodes[proc]
	}
	return nil
}

// GroupMembers returns the newest configuration's member set known for gid.
func (m *GroupManager) GroupMembers(gid types.GroupID) []types.NodeID {
	m.mu.Lock()
	g := m.groups[gid]
	m.mu.Unlock()
	if g == nil {
		return nil
	}
	m.refreshOrder(g)
	m.mu.Lock()
	defer m.mu.Unlock()
	return types.CloneNodeIDs(g.order)
}

// errNoReplica reports a group with no serving replica right now.
var errNoReplica = errors.New("cluster: no serving replica for group")

// pick returns a serving replica of g, preferring the cached leader. The
// submit hot path routes to the leader so commands do not pay an extra
// forwarding hop; on any miss it falls back to round-robin.
func (m *GroupManager) pick(g *groupRun) *reconfig.Node {
	m.mu.Lock()
	if n := g.nodes[g.leader]; n != nil && n.Serving() && n.LeaderHint() == g.leader {
		m.mu.Unlock()
		return n
	}
	g.leader = ""
	order := g.order
	nodes := make([]*reconfig.Node, 0, len(order))
	for _, id := range order {
		nodes = append(nodes, g.nodes[id])
	}
	m.mu.Unlock()
	// Prefer the replica that believes it leads.
	for _, n := range nodes {
		if n != nil && n.Serving() && n.LeaderHint() == n.Self() {
			m.mu.Lock()
			g.leader = n.Self()
			m.mu.Unlock()
			return n
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < len(order); i++ {
		g.rr++
		n := g.nodes[order[g.rr%len(order)]]
		if n != nil && n.Serving() {
			return n
		}
	}
	return nil
}

// refreshOrder re-learns g's member set from its replicas' newest config.
func (m *GroupManager) refreshOrder(g *groupRun) {
	m.mu.Lock()
	defer m.mu.Unlock()
	best := types.Config{}
	for _, n := range g.nodes {
		if cfg := n.CurrentConfig(); cfg.ID > best.ID {
			best = cfg
		}
	}
	if best.ID != 0 {
		g.order = types.CloneNodeIDs(best.Members)
	}
}

// Submit executes one command on group gid via an in-process submit on a
// serving replica, the same measurement path the single-group harness uses.
func (m *GroupManager) Submit(ctx context.Context, gid types.GroupID, client types.NodeID, seq uint64, op []byte) ([]byte, error) {
	m.mu.Lock()
	g := m.groups[gid]
	m.mu.Unlock()
	if g == nil {
		return nil, fmt.Errorf("cluster: unknown group %d", gid)
	}
	n := m.pick(g)
	if n == nil {
		m.refreshOrder(g)
		return nil, fmt.Errorf("%w %d", errNoReplica, gid)
	}
	reply, err := n.Submit(ctx, client, seq, op)
	if err != nil {
		m.mu.Lock()
		g.leader = ""
		m.mu.Unlock()
		if errors.Is(err, reconfig.ErrNotServing) {
			m.refreshOrder(g)
		}
	}
	return reply, err
}

// ReconfigureGroup moves group gid to the given member set. Target processes
// that do not yet host a replica get an idle one first (state arrives via
// chunked snapshot transfer), which is exactly how a shard migrates: the
// keyspace owned by the group follows its replicas to the new nodes.
func (m *GroupManager) ReconfigureGroup(ctx context.Context, gid types.GroupID, members []types.NodeID) (types.Config, error) {
	for _, id := range members {
		if _, err := m.AddGroupReplica(gid, id); err != nil {
			return types.Config{}, err
		}
	}
	m.mu.Lock()
	g := m.groups[gid]
	m.mu.Unlock()
	if g == nil {
		return types.Config{}, fmt.Errorf("cluster: unknown group %d", gid)
	}
	for {
		n := m.pick(g)
		if n == nil {
			return types.Config{}, fmt.Errorf("%w %d", errNoReplica, gid)
		}
		cfg, err := n.Reconfigure(ctx, members)
		if err == nil || errors.Is(err, reconfig.ErrConflict) {
			m.refreshOrder(g)
			return cfg, err
		}
		if errors.Is(err, reconfig.ErrNotServing) {
			m.refreshOrder(g)
			continue
		}
		return types.Config{}, err
	}
}

// WaitGroupServing blocks until some replica of gid serves its current
// configuration.
func (m *GroupManager) WaitGroupServing(ctx context.Context, gid types.GroupID) error {
	m.mu.Lock()
	g := m.groups[gid]
	m.mu.Unlock()
	if g == nil {
		return fmt.Errorf("cluster: unknown group %d", gid)
	}
	for {
		if n := m.pick(g); n != nil {
			return nil
		}
		m.refreshOrder(g)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// CrashProcess kills a physical process: every group replica it hosts stops
// and its endpoint drops inbound traffic. The shared store survives.
func (m *GroupManager) CrashProcess(id types.NodeID) {
	m.mu.Lock()
	p := m.procs[id]
	var nodes []*reconfig.Node
	for _, g := range m.groups {
		if n, ok := g.nodes[id]; ok {
			nodes = append(nodes, n)
			delete(g.nodes, id)
		}
		if g.leader == id {
			g.leader = ""
		}
	}
	if p != nil {
		p.crashed = true
	}
	m.mu.Unlock()
	if p == nil {
		return
	}
	m.net.Endpoint(id).Pause()
	for _, n := range nodes {
		n.Stop()
	}
}

// RestartProcess reboots a crashed process over its surviving shared store,
// recreating a replica for every group whose records the store holds (the
// group prefix is the recovery demultiplexer: any group with a bootstrap or
// chain record under its prefix gets its replica back).
func (m *GroupManager) RestartProcess(id types.NodeID) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return reconfig.ErrStopped
	}
	p := m.procs[id]
	if p == nil {
		m.mu.Unlock()
		return fmt.Errorf("cluster: process %s was never registered", id)
	}
	p.crashed = false
	type pendingBoot struct {
		g *groupRun
		n *reconfig.Node
	}
	var boots []pendingBoot
	var err error
	for _, g := range m.groups {
		if _, ok := g.nodes[id]; ok {
			continue
		}
		var n *reconfig.Node
		n, err = m.newReplicaLocked(g, p)
		if err != nil {
			break
		}
		boots = append(boots, pendingBoot{g: g, n: n})
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	m.net.Endpoint(id).Resume()
	for _, b := range boots {
		if startErr := b.n.Start(); startErr != nil {
			m.mu.Lock()
			delete(b.g.nodes, id)
			m.mu.Unlock()
			return startErr
		}
	}
	return nil
}

// GroupStats aggregates the replica counters for one group.
func (m *GroupManager) GroupStats(gid types.GroupID) GroupStats {
	m.mu.Lock()
	g := m.groups[gid]
	var nodes []*reconfig.Node
	if g != nil {
		for _, n := range g.nodes {
			nodes = append(nodes, n)
		}
	}
	m.mu.Unlock()
	out := GroupStats{Group: gid}
	for _, n := range nodes {
		st := n.Stats()
		out.Applied += st.Applied
		out.DroppedInbound += st.DroppedInbound
		out.ApplyStalls += st.ApplyStalls
		out.GroupCommits += st.GroupCommits
		out.InvariantViolations += st.InvariantViolations
		out.ShedSubmits += st.ShedSubmits
		if st.ApplyQueueHighWater > out.ApplyQueueHighWater {
			out.ApplyQueueHighWater = st.ApplyQueueHighWater
		}
		if st.SubmitQueueHigh > out.SubmitQueueHigh {
			out.SubmitQueueHigh = st.SubmitQueueHigh
		}
		out.CheckpointsPublished += st.CheckpointsPublished
		out.CatchupFetches += st.CatchupFetches
		out.TruncatedSlots += st.TruncatedSlots
		if st.RetainedSlots > out.RetainedSlots {
			out.RetainedSlots = st.RetainedSlots
		}
		if st.DecisionBufferHigh > out.DecisionBufferHigh {
			out.DecisionBufferHigh = st.DecisionBufferHigh
		}
	}
	return out
}

// PerGroupStats returns every live group's aggregated stats, ordered by ID.
func (m *GroupManager) PerGroupStats() []GroupStats {
	out := make([]GroupStats, 0)
	for _, gid := range m.Groups() {
		out = append(out, m.GroupStats(gid))
	}
	return out
}

// StoreIO reports the shared WAL's fsync and append counters for a process
// (ok=false for non-WAL backends). The shard experiment divides fsyncs by
// committed ops to show cross-group group commit working.
func (m *GroupManager) StoreIO(id types.NodeID) (syncs, appends int64, ok bool) {
	m.mu.Lock()
	p := m.procs[id]
	m.mu.Unlock()
	if p == nil {
		return 0, 0, false
	}
	ws, isWAL := p.store.(*storage.WALStore)
	if !isWAL {
		return 0, 0, false
	}
	return ws.Syncs(), ws.Appends(), true
}

// TotalViolations sums invariant violations over every group replica.
func (m *GroupManager) TotalViolations() int64 {
	var total int64
	for _, gs := range m.PerGroupStats() {
		total += gs.InvariantViolations
	}
	return total
}

// Close stops every replica, the network, and the shared stores.
func (m *GroupManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var nodes []*reconfig.Node
	for _, g := range m.groups {
		for _, n := range g.nodes {
			nodes = append(nodes, n)
		}
	}
	var stores []storage.Store
	for _, p := range m.procs {
		stores = append(stores, p.store)
	}
	tempDir := m.tempDir
	m.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	m.net.Close()
	for _, st := range stores {
		switch s := st.(type) {
		case *storage.FileStore:
			s.Close()
		case *storage.WALStore:
			_ = s.Close()
		}
	}
	if tempDir != "" {
		_ = os.RemoveAll(tempDir)
	}
}
