package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/statemachine"
	"repro/internal/types"
)

func groupManager(t *testing.T, cfg Config) *GroupManager {
	t.Helper()
	cfg.Node = FastOptions()
	if cfg.Factory == nil {
		cfg.Factory = statemachine.NewKVMachine
	}
	if !cfg.TCP {
		cfg.Transport.BaseLatency = 100 * time.Microsecond
	}
	m := NewGroupManager(cfg)
	t.Cleanup(m.Close)
	return m
}

func groupCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func mustSubmit(t *testing.T, ctx context.Context, m *GroupManager, gid types.GroupID, client types.NodeID, seq uint64, op []byte) []byte {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		reply, err := m.Submit(ctx, gid, client, seq, op)
		if err == nil {
			return reply
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit to group %d: %v", gid, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGroupManagerIsolatedKeyspaces: three groups on the same three
// processes hold independent keyspaces — the same key carries a different
// value per group, over one shared store and one endpoint per process.
func TestGroupManagerIsolatedKeyspaces(t *testing.T) {
	m := groupManager(t, Config{})
	ctx := groupCtx(t)
	procs := []types.NodeID{"p1", "p2", "p3"}
	for gid := types.GroupID(1); gid <= 3; gid++ {
		if err := m.CreateGroup(gid, procs, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Processes()); got != 3 {
		t.Fatalf("%d processes registered, want 3", got)
	}
	for gid := types.GroupID(1); gid <= 3; gid++ {
		val := fmt.Sprintf("group-%d", gid)
		reply := mustSubmit(t, ctx, m, gid, "c", 1, statemachine.EncodePut("shared-key", []byte(val)))
		if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
			t.Fatalf("group %d put: %v", gid, statemachine.ReplyStatus(reply))
		}
	}
	for gid := types.GroupID(1); gid <= 3; gid++ {
		reply := mustSubmit(t, ctx, m, gid, "c", 2, statemachine.EncodeGet("shared-key"))
		want := fmt.Sprintf("group-%d", gid)
		if got := string(statemachine.ReplyPayload(reply)); got != want {
			t.Fatalf("group %d reads %q, want %q (cross-group keyspace leak)", gid, got, want)
		}
	}
	if m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
	// Per-group stats see per-group applies.
	for _, gs := range m.PerGroupStats() {
		if gs.Applied == 0 {
			t.Fatalf("group %d reports zero applies: %+v", gs.Group, gs)
		}
	}
}

// TestGroupManagerSharedWALCrashRestart: two groups share each process's WAL;
// crashing and restarting a process recovers both groups' replicas from the
// shared log, and both keyspaces stay intact and disjoint.
func TestGroupManagerSharedWALCrashRestart(t *testing.T) {
	m := groupManager(t, Config{Storage: "wal", SyncWrites: true})
	ctx := groupCtx(t)
	procs := []types.NodeID{"p1", "p2", "p3"}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		if err := m.CreateGroup(gid, procs, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			t.Fatal(err)
		}
	}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		mustSubmit(t, ctx, m, gid, "c", 1, statemachine.EncodePut("k", []byte(fmt.Sprintf("pre-crash-%d", gid))))
	}

	m.CrashProcess("p2")
	// Both groups keep committing on the surviving majority.
	for gid := types.GroupID(1); gid <= 2; gid++ {
		mustSubmit(t, ctx, m, gid, "c", 2, statemachine.EncodePut("k2", []byte(fmt.Sprintf("during-crash-%d", gid))))
	}
	if err := m.RestartProcess("p2"); err != nil {
		t.Fatal(err)
	}
	// The restarted process hosts a replica of every group again.
	if m.Node(1, "p2") == nil || m.Node(2, "p2") == nil {
		t.Fatal("restart did not recreate replicas for both groups")
	}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		reply := mustSubmit(t, ctx, m, gid, "c", 3, statemachine.EncodeGet("k"))
		if got, want := string(statemachine.ReplyPayload(reply)), fmt.Sprintf("pre-crash-%d", gid); got != want {
			t.Fatalf("group %d k = %q, want %q", gid, got, want)
		}
		reply = mustSubmit(t, ctx, m, gid, "c", 4, statemachine.EncodeGet("k2"))
		if got, want := string(statemachine.ReplyPayload(reply)), fmt.Sprintf("during-crash-%d", gid); got != want {
			t.Fatalf("group %d k2 = %q, want %q", gid, got, want)
		}
	}
	if m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
	// The shared store really is one WAL per process: its sync counter moved.
	if syncs, appends, ok := m.StoreIO("p1"); !ok || syncs == 0 || appends == 0 {
		t.Fatalf("p1 store IO: syncs=%d appends=%d ok=%v", syncs, appends, ok)
	}
}

// TestGroupManagerReconfigureGroup migrates one group onto three fresh
// processes while another group stays put: state follows the replicas via
// snapshot transfer, the other group is untouched.
func TestGroupManagerReconfigureGroup(t *testing.T) {
	m := groupManager(t, Config{})
	ctx := groupCtx(t)
	old := []types.NodeID{"p1", "p2", "p3"}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		if err := m.CreateGroup(gid, old, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			t.Fatal(err)
		}
		mustSubmit(t, ctx, m, gid, "c", 1, statemachine.EncodePut("home", []byte(fmt.Sprintf("g%d", gid))))
	}

	next := []types.NodeID{"q1", "q2", "q3"}
	cfg, err := m.ReconfigureGroup(ctx, 1, next)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID < 2 {
		t.Fatalf("reconfigured config ID %d", cfg.ID)
	}
	if err := m.WaitGroupServing(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Group 1's state moved with it.
	reply := mustSubmit(t, ctx, m, 1, "c", 2, statemachine.EncodeGet("home"))
	if got := string(statemachine.ReplyPayload(reply)); got != "g1" {
		t.Fatalf("migrated group reads %q", got)
	}
	members := m.GroupMembers(1)
	if len(members) != 3 {
		t.Fatalf("group 1 members %v", members)
	}
	for _, id := range members {
		if id != "q1" && id != "q2" && id != "q3" {
			t.Fatalf("group 1 member %s not in target set", id)
		}
	}
	// Group 2 never moved and still serves.
	reply = mustSubmit(t, ctx, m, 2, "c", 2, statemachine.EncodeGet("home"))
	if got := string(statemachine.ReplyPayload(reply)); got != "g2" {
		t.Fatalf("stationary group reads %q", got)
	}
	if m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
}

// TestGroupManagerStopGroup: stopping one group leaves the others serving on
// the same processes.
func TestGroupManagerStopGroup(t *testing.T) {
	m := groupManager(t, Config{})
	ctx := groupCtx(t)
	procs := []types.NodeID{"p1", "p2", "p3"}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		if err := m.CreateGroup(gid, procs, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			t.Fatal(err)
		}
	}
	m.StopGroup(1)
	if _, err := m.Submit(ctx, 1, "c", 1, statemachine.EncodeGet("x")); err == nil {
		t.Fatal("stopped group accepted a submit")
	}
	mustSubmit(t, ctx, m, 2, "c", 1, statemachine.EncodePut("still", []byte("alive")))
	if got := m.Groups(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("live groups %v", got)
	}
}

// TestGroupManagerGroupZeroReserved: group 0 is the legacy ungrouped runtime
// and cannot be created here.
func TestGroupManagerGroupZeroReserved(t *testing.T) {
	m := groupManager(t, Config{})
	if err := m.CreateGroup(0, []types.NodeID{"p1", "p2", "p3"}, nil); err == nil {
		t.Fatal("group 0 creation accepted")
	}
}

// TestGroupManagerOverTCP runs two groups over the real TCP fabric — every
// group's traffic multiplexes one connection per process pair.
func TestGroupManagerOverTCP(t *testing.T) {
	m := groupManager(t, Config{TCP: true})
	ctx := groupCtx(t)
	procs := []types.NodeID{"p1", "p2", "p3"}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		if err := m.CreateGroup(gid, procs, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitGroupServing(ctx, gid); err != nil {
			t.Fatal(err)
		}
	}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		for seq := uint64(1); seq <= 20; seq++ {
			mustSubmit(t, ctx, m, gid, "c", seq, statemachine.EncodePut(fmt.Sprintf("k%d", seq), []byte("v")))
		}
	}
	for gid := types.GroupID(1); gid <= 2; gid++ {
		gs := m.GroupStats(gid)
		if gs.Applied == 0 {
			t.Fatalf("group %d applied nothing over TCP", gid)
		}
	}
	if m.TotalViolations() != 0 {
		t.Fatal("invariant violations")
	}
}
