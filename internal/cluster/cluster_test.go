package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/statemachine"
	"repro/internal/transport"
	"repro/internal/types"
)

func kvCluster(t *testing.T) *Cluster {
	t.Helper()
	c := New(Config{
		Transport: transport.Options{BaseLatency: 100 * time.Microsecond},
		Node:      FastOptions(),
		Factory:   statemachine.NewKVMachine,
	})
	t.Cleanup(c.Close)
	return c
}

func TestClusterBootstrapAndClient(t *testing.T) {
	c := kvCluster(t)
	if _, err := c.Bootstrap("n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}

	cl := c.NewClient(client.Options{})
	reply, err := cl.Submit(ctx, statemachine.EncodePut("k", []byte("v")))
	if err != nil {
		t.Fatal(err)
	}
	if statemachine.ReplyStatus(reply) != statemachine.StatusOK {
		t.Fatalf("put status %v", statemachine.ReplyStatus(reply))
	}
	reply, err = cl.Submit(ctx, statemachine.EncodeGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(statemachine.ReplyPayload(reply)) != "v" {
		t.Fatalf("get %q", statemachine.ReplyPayload(reply))
	}
	if cl.KnownConfig().ID != 1 {
		t.Fatalf("client cached config %v", cl.KnownConfig())
	}
	if c.TotalViolations() != 0 {
		t.Fatal("violations")
	}
}

func TestClientFollowsReconfiguration(t *testing.T) {
	c := kvCluster(t)
	if _, err := c.Bootstrap("n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{"m1", "m2", "m3"} {
		if _, err := c.AddSpare(id); err != nil {
			t.Fatal(err)
		}
	}

	cl := c.NewClient(client.Options{})
	if _, err := cl.Submit(ctx, statemachine.EncodePut("x", []byte("1"))); err != nil {
		t.Fatal(err)
	}

	// Full replacement: the client's cached config becomes useless and it
	// must discover the new one via redirects.
	if _, err := c.Reconfigure(ctx, "n1", []types.NodeID{"m1", "m2", "m3"}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitServing(ctx, "m1", "m2", "m3"); err != nil {
		t.Fatal(err)
	}
	reply, err := cl.Submit(ctx, statemachine.EncodeGet("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(statemachine.ReplyPayload(reply)) != "1" {
		t.Fatalf("get after replacement %q", statemachine.ReplyPayload(reply))
	}
	if cl.KnownConfig().ID != 2 {
		t.Fatalf("client did not follow: %v", cl.KnownConfig())
	}
	if cl.Stats().Redirects == 0 {
		t.Fatal("expected at least one redirect")
	}
	if c.TotalViolations() != 0 {
		t.Fatal("violations")
	}
}

func TestClientReconfigureAndChainRPC(t *testing.T) {
	c := kvCluster(t)
	if _, err := c.Bootstrap("n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddSpare("n4"); err != nil {
		t.Fatal(err)
	}

	cl := c.NewClient(client.Options{})
	cfg, err := cl.Reconfigure(ctx, []types.NodeID{"n1", "n2", "n3", "n4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID != 2 || !cfg.IsMember("n4") {
		t.Fatalf("reconfigure result %v", cfg)
	}

	chain, err := cl.Chain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Initial.ID != 1 || len(chain.Records) != 1 || chain.Records[0].To.ID != 2 {
		t.Fatalf("chain %+v", chain)
	}

	located, err := cl.Locate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if located.ID != 2 {
		t.Fatalf("locate %v", located)
	}
}

func TestCrashRestartCycle(t *testing.T) {
	c := kvCluster(t)
	if _, err := c.Bootstrap("n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(client.Options{})
	if _, err := cl.Submit(ctx, statemachine.EncodePut("a", []byte("1"))); err != nil {
		t.Fatal(err)
	}

	c.Crash("n2")
	if c.Node("n2") != nil {
		t.Fatal("crashed node still listed")
	}
	if _, err := cl.Submit(ctx, statemachine.EncodePut("b", []byte("2"))); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Restart("n2"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitServing(ctx, "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart("n2"); err == nil {
		t.Fatal("double restart allowed")
	}
	if _, err := c.AddSpare("n2"); err == nil {
		t.Fatal("AddSpare over existing node allowed")
	}
	if c.TotalViolations() != 0 {
		t.Fatal("violations")
	}
}

func TestClientSubmitSeqIdempotent(t *testing.T) {
	c := New(Config{
		Transport: transport.Options{BaseLatency: 100 * time.Microsecond},
		Node:      FastOptions(),
		Factory:   statemachine.NewCounterMachine,
	})
	t.Cleanup(c.Close)
	if _, err := c.Bootstrap("n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(client.Options{})
	r1, err := cl.SubmitSeq(ctx, 1, statemachine.EncodeAdd(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cl.SubmitSeq(ctx, 1, statemachine.EncodeAdd(5)) // same seq: no double apply
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(r1))
	v2, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(r2))
	if v1 != 5 || v2 != 5 {
		t.Fatalf("replies %d %d", v1, v2)
	}
	r3, err := cl.SubmitSeq(ctx, 2, statemachine.EncodeCounterGet())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := statemachine.DecodeUvarintReply(statemachine.ReplyPayload(r3)); v != 5 {
		t.Fatalf("counter %d", v)
	}
}

func TestClientClosedErrors(t *testing.T) {
	c := kvCluster(t)
	if _, err := c.Bootstrap("n1"); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(client.Options{})
	cl.Close()
	if _, err := cl.Submit(context.Background(), statemachine.EncodeGet("k")); err != client.ErrClosed {
		t.Fatalf("err %v", err)
	}
}

// TestFullStackOverTCP runs the complete reconfigurable service — consensus,
// control plane, state transfer, client RPC — over real loopback sockets.
func TestFullStackOverTCP(t *testing.T) {
	c := New(Config{
		TCP:     true,
		Node:    FastOptions(),
		Factory: statemachine.NewKVMachine,
	})
	t.Cleanup(c.Close)
	if _, err := c.Bootstrap("n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitServing(ctx, "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddSpare("n4"); err != nil {
		t.Fatal(err)
	}

	cl := c.NewClient(client.Options{})
	if _, err := cl.Submit(ctx, statemachine.EncodePut("tcp-key", []byte("tcp-value"))); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Reconfigure(ctx, []types.NodeID{"n1", "n2", "n4"}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitServing(ctx, "n4"); err != nil {
		t.Fatal(err)
	}
	reply, err := cl.Submit(ctx, statemachine.EncodeGet("tcp-key"))
	if err != nil {
		t.Fatal(err)
	}
	if string(statemachine.ReplyPayload(reply)) != "tcp-value" {
		t.Fatalf("state lost over tcp: %q", statemachine.ReplyPayload(reply))
	}
	if c.TotalViolations() != 0 {
		t.Fatal("violations over tcp")
	}
}
