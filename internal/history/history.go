// Package history records concurrent client operation histories — the raw
// material for linearizability checking. A Recorder captures, for every
// client operation, the invocation time, the completion time and the
// observed output, using a single monotonic clock so the real-time ordering
// between operations of different clients is meaningful.
//
// Outcomes follow the Jepsen convention:
//
//   - Ok:   the operation completed and its output was observed;
//   - Fail: the operation certainly did NOT execute (it never reached the
//     service); it is excluded from checking;
//   - Info: the outcome is ambiguous (a timeout after the command may have
//     been sent) — the operation may or may not have taken effect, at any
//     time after its invocation.
//
// Retries of the same (client, seq) pair are merged into a single logical
// operation: the session layer guarantees at-most-once execution, so an
// ambiguous attempt that is later retried and acknowledged is one operation
// spanning first invocation to final acknowledgment. Without this merge a
// checker would demand that a timed-out-then-retried increment applied
// twice.
package history

import (
	"sync"
	"time"

	"repro/internal/types"
)

// Outcome classifies how an operation ended. Values start at 1; the zero
// value means the operation is still pending.
type Outcome uint8

const (
	// OutcomePending means invoked with no outcome recorded yet.
	OutcomePending Outcome = 0
	// OutcomeOk means completed with an observed output.
	OutcomeOk Outcome = 1
	// OutcomeFail means the operation certainly never executed.
	OutcomeFail Outcome = 2
	// OutcomeInfo means the outcome is ambiguous (may have executed).
	OutcomeInfo Outcome = 3
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomePending:
		return "pending"
	case OutcomeOk:
		return "ok"
	case OutcomeFail:
		return "fail"
	case OutcomeInfo:
		return "info"
	default:
		return "outcome(?)"
	}
}

// Op is one recorded client operation.
type Op struct {
	Client  types.NodeID
	Seq     uint64
	Input   []byte // the encoded state-machine operation
	Output  []byte // the reply (OutcomeOk only)
	Call    int64  // ns since the recorder's epoch, monotonic
	Return  int64  // ns since epoch; 0 while pending
	Outcome Outcome
}

type opKey struct {
	client types.NodeID
	seq    uint64
}

// Recorder is a concurrent operation-history recorder. All methods are safe
// for concurrent use; Invoke/Ok/Fail/Info are O(1).
type Recorder struct {
	epoch time.Time

	mu   sync.Mutex
	ops  []Op
	open map[opKey]int // latest op index per (client, seq), for retry merging
	oks  int
	infs int
	fls  int
}

// New creates an empty recorder; its epoch is now.
func New() *Recorder {
	return &Recorder{epoch: time.Now(), open: make(map[opKey]int)}
}

func (r *Recorder) now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Invoke records the start of an operation and returns its handle. If the
// same (client, seq) was previously recorded with an ambiguous outcome, that
// operation is reopened (the retry is the same logical operation under
// at-most-once semantics) and its original invocation time is kept.
func (r *Recorder) Invoke(client types.NodeID, seq uint64, input []byte) int {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	key := opKey{client: client, seq: seq}
	if idx, ok := r.open[key]; ok {
		switch r.ops[idx].Outcome {
		case OutcomePending:
			return idx // concurrent double-invoke; treat as the same op
		case OutcomeInfo:
			r.infs--
			r.ops[idx].Outcome = OutcomePending
			r.ops[idx].Return = 0
			return idx
		}
	}
	r.ops = append(r.ops, Op{Client: client, Seq: seq, Input: input, Call: now})
	idx := len(r.ops) - 1
	r.open[key] = idx
	return idx
}

// Ok completes the operation with its observed output.
func (r *Recorder) Ok(h int, output []byte) { r.finish(h, OutcomeOk, output) }

// Fail completes the operation as certainly-not-executed.
func (r *Recorder) Fail(h int) { r.finish(h, OutcomeFail, nil) }

// Info completes the operation as ambiguous: it may or may not have
// executed, now or at any later time.
func (r *Recorder) Info(h int) { r.finish(h, OutcomeInfo, nil) }

func (r *Recorder) finish(h int, out Outcome, output []byte) {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if h < 0 || h >= len(r.ops) || r.ops[h].Outcome != OutcomePending {
		return // unknown handle or already finished; keep the first verdict
	}
	r.ops[h].Outcome = out
	r.ops[h].Return = now
	r.ops[h].Output = output
	switch out {
	case OutcomeOk:
		r.oks++
	case OutcomeInfo:
		r.infs++
	case OutcomeFail:
		r.fls++
	}
}

// Drain marks every still-pending operation as ambiguous. Call it after the
// load has stopped, before reading the history: a client stopped mid-flight
// leaves an operation that may still take effect.
func (r *Recorder) Drain() {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.ops {
		if r.ops[i].Outcome == OutcomePending {
			r.ops[i].Outcome = OutcomeInfo
			r.ops[i].Return = now
			r.infs++
		}
	}
}

// Ops returns a snapshot of all recorded operations in invocation order.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Counts returns (ok, info, fail) totals. Pending operations are in none of
// the three buckets.
func (r *Recorder) Counts() (ok, info, fail int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.oks, r.infs, r.fls
}
