package history

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func TestRecorderBasicLifecycle(t *testing.T) {
	r := New()
	h1 := r.Invoke("c1", 1, []byte("op1"))
	h2 := r.Invoke("c2", 1, []byte("op2"))
	h3 := r.Invoke("c1", 2, []byte("op3"))
	r.Ok(h1, []byte("reply1"))
	r.Fail(h2)
	r.Info(h3)

	ops := r.Ops()
	if len(ops) != 3 {
		t.Fatalf("want 3 ops, got %d", len(ops))
	}
	okN, infoN, failN := r.Counts()
	if okN != 1 || infoN != 1 || failN != 1 {
		t.Fatalf("counts ok=%d info=%d fail=%d", okN, infoN, failN)
	}
	if ops[0].Outcome != OutcomeOk || string(ops[0].Output) != "reply1" {
		t.Fatalf("op0: %+v", ops[0])
	}
	if ops[0].Return < ops[0].Call {
		t.Fatalf("completed op must have Return >= Call: %+v", ops[0])
	}
	if ops[1].Outcome != OutcomeFail {
		t.Fatalf("op1: %+v", ops[1])
	}
	if ops[2].Outcome != OutcomeInfo {
		t.Fatalf("op2: %+v", ops[2])
	}
}

// A retry of the same (client, seq) after an ambiguous outcome is the SAME
// logical op (session dedup applies it at most once), so Invoke must reopen
// the existing record — keeping the original call time — rather than append.
func TestRecorderMergesRetries(t *testing.T) {
	r := New()
	h := r.Invoke("c1", 7, []byte("op"))
	r.Info(h)
	h2 := r.Invoke("c1", 7, []byte("op"))
	if h2 != h {
		t.Fatalf("retry got new handle %d, want reopened %d", h2, h)
	}
	r.Ok(h2, []byte("done"))

	ops := r.Ops()
	if len(ops) != 1 {
		t.Fatalf("retries must merge into one op, got %d", len(ops))
	}
	if ops[0].Outcome != OutcomeOk {
		t.Fatalf("merged op: %+v", ops[0])
	}
	okN, infoN, _ := r.Counts()
	if okN != 1 || infoN != 0 {
		t.Fatalf("counts after merge: ok=%d info=%d", okN, infoN)
	}
}

func TestRecorderInvokeWhilePendingReturnsSameHandle(t *testing.T) {
	r := New()
	h := r.Invoke("c1", 1, []byte("op"))
	if again := r.Invoke("c1", 1, []byte("op")); again != h {
		t.Fatalf("pending re-invoke: got %d want %d", again, h)
	}
	if r.Len() != 1 {
		t.Fatalf("want 1 op, got %d", r.Len())
	}
}

func TestRecorderDrainMarksPendingAsInfo(t *testing.T) {
	r := New()
	h1 := r.Invoke("c1", 1, []byte("a"))
	r.Invoke("c2", 1, []byte("b")) // left pending
	r.Ok(h1, nil)
	r.Drain()
	okN, infoN, failN := r.Counts()
	if okN != 1 || infoN != 1 || failN != 0 {
		t.Fatalf("counts after drain: ok=%d info=%d fail=%d", okN, infoN, failN)
	}
	for _, op := range r.Ops() {
		if op.Outcome == OutcomePending {
			t.Fatalf("pending op survived Drain: %+v", op)
		}
	}
}

func TestRecorderDoubleFinishIgnored(t *testing.T) {
	r := New()
	h := r.Invoke("c1", 1, []byte("a"))
	r.Ok(h, []byte("x"))
	r.Fail(h) // late duplicate completion must not clobber the outcome
	r.Info(h)
	ops := r.Ops()
	if ops[0].Outcome != OutcomeOk || string(ops[0].Output) != "x" {
		t.Fatalf("outcome clobbered: %+v", ops[0])
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const clients, opsPer = 8, 200
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := types.NodeID(string(rune('a' + c)))
			for seq := uint64(1); seq <= opsPer; seq++ {
				h := r.Invoke(id, seq, []byte{byte(seq)})
				switch seq % 3 {
				case 0:
					r.Ok(h, []byte{1})
				case 1:
					r.Fail(h)
				default:
					r.Info(h)
				}
			}
		}(c)
	}
	wg.Wait()
	if r.Len() != clients*opsPer {
		t.Fatalf("want %d ops, got %d", clients*opsPer, r.Len())
	}
	okN, infoN, failN := r.Counts()
	if okN+infoN+failN != clients*opsPer {
		t.Fatalf("counts don't sum: %d+%d+%d", okN, infoN, failN)
	}
	// Timestamps must be monotone per the recorder's clock: every op's
	// Call is set before its Return.
	for _, op := range r.Ops() {
		if op.Outcome == OutcomeOk && op.Return < op.Call {
			t.Fatalf("non-monotonic op: %+v", op)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomePending: "pending",
		OutcomeOk:      "ok",
		OutcomeFail:    "fail",
		OutcomeInfo:    "info",
		Outcome(99):    "outcome(?)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}
