package transport

import (
	"bufio"
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/types"
)

func TestTCPBasicDelivery(t *testing.T) {
	n := NewTCPNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 7)

	if err := a.Send("b", 7, 3, []byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "tcp delivery")
	mu.Lock()
	if (*msgs)[0] != "over-tcp" {
		t.Fatalf("got %q", (*msgs)[0])
	}
	mu.Unlock()
	st := n.Stats()
	if st.MessagesSent != 1 || st.PerKind[3].Messages != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTCPOrderingPerSender(t *testing.T) {
	n := NewTCPNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)
	const total = 500
	for i := 0; i < total; i++ {
		if err := a.Send("b", 1, 0, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == total }, "all tcp messages")
	mu.Lock()
	defer mu.Unlock()
	// TCP preserves per-connection ordering.
	for i, m := range *msgs {
		if m[0] != byte(i) || m[1] != byte(i>>8) {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	n := NewTCPNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	var got atomic.Int64
	want := make([]byte, 4<<20) // a 4MB snapshot-sized frame
	for i := range want {
		want[i] = byte(i * 31)
	}
	b.Handle(1, func(from types.NodeID, s uint64, k uint8, p []byte) {
		if bytes.Equal(p, want) {
			got.Store(1)
		} else {
			got.Store(-1)
		}
	})
	if err := a.Send("b", 1, 0, want); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() != 0 }, "large frame")
	if got.Load() != 1 {
		t.Fatal("large frame corrupted")
	}
}

func TestTCPFaultInjectionStillApplies(t *testing.T) {
	n := NewTCPNetwork(Options{LossRate: 1.0})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	collect(b, 1)
	_ = a.Send("b", 1, 0, []byte("x"))
	waitFor(t, func() bool { return n.Stats().DroppedLoss == 1 }, "loss on tcp")

	n2 := NewTCPNetwork(Options{})
	defer n2.Close()
	c := n2.Endpoint("c")
	d := n2.Endpoint("d")
	mu, msgs := collect(d, 1)
	n2.Isolate("d")
	_ = c.Send("d", 1, 0, []byte("cut"))
	waitFor(t, func() bool { return n2.Stats().DroppedCut == 1 }, "cut on tcp")
	n2.Restore("d")
	_ = c.Send("d", 1, 0, []byte("ok"))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "post-restore tcp delivery")
}

func TestTCPBidirectionalConcurrent(t *testing.T) {
	n := NewTCPNetwork(Options{})
	defer n.Close()
	ids := []types.NodeID{"x", "y", "z"}
	var got atomic.Int64
	for _, id := range ids {
		ep := n.Endpoint(id)
		ep.Handle(1, func(types.NodeID, uint64, uint8, []byte) { got.Add(1) })
	}
	var wg sync.WaitGroup
	const per = 100
	for _, from := range ids {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := n.Endpoint(from)
			for i := 0; i < per; i++ {
				for _, to := range ids {
					if to != from {
						_ = ep.Send(to, 1, 0, []byte("m"))
					}
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return got.Load() == int64(len(ids)*(len(ids)-1)*per) }, "all cross traffic")
}

func TestTCPCloseIsClean(t *testing.T) {
	n := NewTCPNetwork(Options{})
	a := n.Endpoint("a")
	n.Endpoint("b")
	_ = a.Send("b", 1, 0, []byte("x"))
	n.Close()
	n.Close() // idempotent
	if err := a.Send("b", 1, 0, nil); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(from string, group, stream uint64, kind uint8, payload []byte) bool {
		if from == "" {
			from = "n" // node IDs are never empty; fromLen 0 is the group marker
		}
		if len(from) > 4096 {
			from = from[:4096]
		}
		frame := appendFrame(nil, types.NodeID(from), group, stream, kind, payload)
		gf, gg, gs, gk, gp, err := decodeFrame(bufio.NewReader(bytes.NewReader(frame)))
		return err == nil && gf == types.NodeID(from) && gg == group && gs == stream && gk == kind && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameGroupZeroIsLegacyLayout pins the wire compatibility contract:
// group 0 encodes byte-for-byte as the pre-group frame layout (no marker),
// and a legacy frame decodes as group 0.
func TestFrameGroupZeroIsLegacyLayout(t *testing.T) {
	payload := []byte("hello")
	legacy := func(from types.NodeID, stream uint64, kind uint8, payload []byte) []byte {
		var buf []byte
		buf = append(buf, byte(len(from)))
		buf = append(buf, from...)
		buf = append(buf, byte(stream))
		buf = append(buf, kind)
		buf = append(buf, byte(len(payload)))
		return append(buf, payload...)
	}
	got := appendFrame(nil, "n1", 0, 3, 2, payload)
	want := legacy("n1", 3, 2, payload)
	if !bytes.Equal(got, want) {
		t.Fatalf("group-0 frame %x differs from legacy layout %x", got, want)
	}
	gf, gg, gs, gk, gp, err := decodeFrame(bufio.NewReader(bytes.NewReader(want)))
	if err != nil || gf != "n1" || gg != 0 || gs != 3 || gk != 2 || !bytes.Equal(gp, payload) {
		t.Fatalf("legacy frame decoded as from=%q group=%d stream=%d kind=%d payload=%q err=%v", gf, gg, gs, gk, gp, err)
	}
	// A grouped frame carries its marker and survives the round trip.
	grouped := appendFrame(nil, "n1", 7, 3, 2, payload)
	if grouped[0] != 0 {
		t.Fatalf("grouped frame does not lead with marker varint 0: %x", grouped)
	}
	gf, gg, gs, gk, gp, err = decodeFrame(bufio.NewReader(bytes.NewReader(grouped)))
	if err != nil || gf != "n1" || gg != 7 || gs != 3 || gk != 2 || !bytes.Equal(gp, payload) {
		t.Fatalf("grouped frame decoded as from=%q group=%d stream=%d kind=%d payload=%q err=%v", gf, gg, gs, gk, gp, err)
	}
}

func TestFrameDecodeRejectsGarbage(t *testing.T) {
	for _, group := range []uint64{0, 9} {
		frame := appendFrame(nil, "n1", group, 3, 2, []byte("hello"))
		for i := 0; i < len(frame); i++ {
			if _, _, _, _, _, err := decodeFrame(bufio.NewReader(bytes.NewReader(frame[:i]))); err == nil {
				t.Fatalf("truncated frame (group %d) at %d accepted", group, i)
			}
		}
	}
	// Absurd payload length must be rejected, not allocated.
	bad := appendFrame(nil, "n1", 0, 1, 1, nil)
	bad = bad[:len(bad)-1] // strip the zero payload length
	bad = append(bad, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, _, _, _, err := decodeFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("absurd length accepted")
	}
}

func TestTCPRedialAfterPeerConnDrop(t *testing.T) {
	n := NewTCPNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)
	_ = a.Send("b", 1, 0, []byte("first"))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "first tcp delivery")

	// Force-close the cached outbound conn; the next send must redial
	// (the first attempt may be swallowed as loss, like a dropped packet).
	n.tcp.mu.Lock()
	oc := n.tcp.conns[connKey{from: "a", to: "b"}]
	n.tcp.mu.Unlock()
	if oc == nil {
		t.Fatal("no cached conn")
	}
	_ = oc.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = a.Send("b", 1, 0, []byte("second"))
		mu.Lock()
		done := len(*msgs) >= 2
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("redial never delivered")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPFrameSizeHistogram(t *testing.T) {
	n := NewTCPNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)
	const total = 50
	for i := 0; i < total; i++ {
		if err := a.Send("b", 1, 0, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == total }, "deliveries")
	h := n.FrameSizes()
	if h.Count() != total {
		t.Fatalf("histogram count %d, want %d", h.Count(), total)
	}
	// Every frame is 100B payload + small header: all land in [64,127].
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].Lo != 64 || bs[0].Hi != 127 || bs[0].Count != total {
		t.Fatalf("buckets %+v", bs)
	}
	if h.Max() < 100 || h.Sum() < 100*total {
		t.Fatalf("max %d sum %d", h.Max(), h.Sum())
	}
}
