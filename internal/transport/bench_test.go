package transport

import (
	"bytes"
	"testing"
)

// BenchmarkEncodeFrame measures producing one TCP wire frame the way
// transmit does (pooled scratch buffer + appendFrame) — the hottest
// allocation site of the TCP fabric.
//
//	go test ./internal/transport/ -bench EncodeFrame -benchmem
func BenchmarkEncodeFrame(b *testing.B) {
	payload := bytes.Repeat([]byte{0xcd}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bufp := framePool.Get().(*[]byte)
		frame := appendFrame((*bufp)[:0], "node-01", 0, 3, 32, payload)
		if len(frame) == 0 {
			b.Fatal("empty frame")
		}
		*bufp = frame[:0]
		framePool.Put(bufp)
	}
}
