package transport

import (
	"sync"
	"testing"

	"repro/internal/types"
)

// TestGroupViewDemux checks that derived group endpoints share one fabric
// while keeping independent stream->handler registries: a message sent from
// group g arrives only at the receiver's group-g view, on the same stream
// number other groups also use.
func TestGroupViewDemux(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")

	muRoot, rootMsgs := collect(b, 1)
	mu1, g1Msgs := collect(b.Group(1), 1)
	mu2, g2Msgs := collect(b.Group(2), 1)

	if err := a.Send("b", 1, 0, []byte("root")); err != nil {
		t.Fatal(err)
	}
	if err := a.Group(1).Send("b", 1, 0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := a.Group(2).Send("b", 1, 0, []byte("two")); err != nil {
		t.Fatal(err)
	}

	check := func(mu *sync.Mutex, msgs *[]string, want string) {
		waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "group delivery")
		mu.Lock()
		defer mu.Unlock()
		if (*msgs)[0] != want {
			t.Fatalf("got %q, want %q", (*msgs)[0], want)
		}
	}
	check(muRoot, rootMsgs, "root")
	check(mu1, g1Msgs, "one")
	check(mu2, g2Msgs, "two")
}

// TestGroupViewDemuxTCP is the same demux check over the real TCP fabric —
// all three groups multiplex one connection per node pair.
func TestGroupViewDemuxTCP(t *testing.T) {
	n := NewTCPNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")

	mu1, g1Msgs := collect(b.Group(1), 1)
	mu2, g2Msgs := collect(b.Group(2), 1)

	const per = 50
	for i := 0; i < per; i++ {
		if err := a.Group(1).Send("b", 1, 0, []byte("one")); err != nil {
			t.Fatal(err)
		}
		if err := a.Group(2).Send("b", 1, 0, []byte("two")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { mu1.Lock(); defer mu1.Unlock(); return len(*g1Msgs) == per }, "group 1 tcp deliveries")
	waitFor(t, func() bool { mu2.Lock(); defer mu2.Unlock(); return len(*g2Msgs) == per }, "group 2 tcp deliveries")
	mu1.Lock()
	for _, m := range *g1Msgs {
		if m != "one" {
			t.Fatalf("group 1 got %q", m)
		}
	}
	mu1.Unlock()
	mu2.Lock()
	for _, m := range *g2Msgs {
		if m != "two" {
			t.Fatalf("group 2 got %q", m)
		}
	}
	mu2.Unlock()
}

// TestGroupViewIdentity pins the view contract: Group(0) is the root
// endpoint itself, Group(g) is stable across calls, and views derived from
// views resolve against the root.
func TestGroupViewIdentity(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	if a.Group(0) != a {
		t.Fatal("Group(0) is not the root endpoint")
	}
	g3 := a.Group(3)
	if g3 == a || g3.GroupID() != 3 {
		t.Fatalf("Group(3) wrong identity: %p vs root %p, gid %d", g3, a, g3.GroupID())
	}
	if a.Group(3) != g3 {
		t.Fatal("Group(3) not stable across calls")
	}
	if g3.Group(5) != a.Group(5) {
		t.Fatal("view-of-view did not resolve against root")
	}
	if g3.Group(0) != a {
		t.Fatal("view's Group(0) is not the root")
	}
}

// TestGroupUndeliveredWithoutView: traffic for a group nobody registered is
// dropped as undeliverable, not misdelivered to the root handler.
func TestGroupUndeliveredWithoutView(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	muRoot, rootMsgs := collect(b, 1)

	if err := a.Group(9).Send("b", 1, 0, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", 1, 0, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { muRoot.Lock(); defer muRoot.Unlock(); return len(*rootMsgs) == 1 }, "root delivery")
	muRoot.Lock()
	defer muRoot.Unlock()
	if (*rootMsgs)[0] != "kept" {
		t.Fatalf("root received %q", (*rootMsgs)[0])
	}
}

// TestDropGroup: after DropGroup, a fresh Group call returns a new view with
// an empty handler registry.
func TestDropGroup(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b.Group(4), 1)

	if err := a.Group(4).Send("b", 1, 0, []byte("before")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "pre-drop delivery")

	b.DropGroup(4)
	if err := a.Group(4).Send("b", 1, 0, []byte("after")); err != nil {
		t.Fatal(err)
	}
	// The new view has no handler; nothing further arrives.
	if b.Group(4) == nil {
		t.Fatal("Group after DropGroup returned nil")
	}
	mu.Lock()
	got := len(*msgs)
	mu.Unlock()
	if got != 1 {
		t.Fatalf("message delivered to dropped group: %d", got)
	}
	var g types.NodeID = b.Group(4).ID()
	if g != "b" {
		t.Fatalf("recreated view has id %q", g)
	}
}
