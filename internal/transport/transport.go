// Package transport provides the message substrate the replication stack
// runs on: an in-memory simulated network with per-link latency, jitter,
// loss, duplication, pairwise partitions and node isolation.
//
// The simulator preserves the properties consensus protocols are sensitive
// to — asynchrony, reordering (via jitter), message loss, and partitions —
// while keeping runs laptop-scale and seed-reproducible. It also keeps
// per-message-kind counters so experiments can report message and byte
// complexity (experiment T4).
//
// Every process in the system (replica or client) owns an Endpoint. Messages
// are addressed (stream, kind, payload): stream demultiplexes independent
// protocol instances sharing one endpoint (e.g. one static Paxos engine per
// configuration), kind classifies the message for accounting.
package transport

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/types"
)

// Handler consumes an inbound message. Handlers run on the endpoint's single
// dispatch goroutine, so per-endpoint handling is serialized.
type Handler func(from types.NodeID, stream uint64, kind uint8, payload []byte)

// Options configures a Network. The zero value is usable: zero latency, no
// loss, seed 0.
type Options struct {
	// BaseLatency is the fixed one-way delivery delay applied to every
	// message.
	BaseLatency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per message,
	// which also induces reordering.
	Jitter time.Duration
	// LossRate is the probability in [0,1] that a message is silently
	// dropped.
	LossRate float64
	// DupRate is the probability in [0,1] that a message is delivered
	// twice (the duplicate gets independent latency).
	DupRate float64
	// Seed seeds the network's RNG for reproducible loss/jitter.
	Seed int64
	// InboxSize bounds each endpoint's inbound queue; messages beyond it
	// are dropped (and counted). Defaults to 4096.
	InboxSize int
	// LinkLatency, if non-nil, overrides BaseLatency per link.
	LinkLatency func(from, to types.NodeID) time.Duration
}

// Stats aggregates network-level accounting. Values are monotonically
// increasing for the life of the network.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	Delivered    int64
	DroppedLoss  int64 // dropped by the loss model
	DroppedCut   int64 // dropped by partition/isolation
	DroppedBusy  int64 // dropped because the inbox was full
	DroppedDown  int64 // dropped because the endpoint was paused or closed
	Duplicated   int64
	PerKind      map[uint8]KindStats
}

// KindStats counts traffic for one message kind.
type KindStats struct {
	Messages int64
	Bytes    int64
}

// ErrClosed is returned by operations on a closed network or endpoint.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownNode is returned when sending to an unregistered node.
var ErrUnknownNode = errors.New("transport: unknown node")

type delivery struct {
	at      time.Time
	seq     uint64 // tie-break for deterministic heap order
	from    types.NodeID
	to      types.NodeID
	group   uint64
	stream  uint64
	kind    uint8
	payload []byte
}

type deliveryHeap []*delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(*delivery)) }
func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return d
}

// Network is the simulated fabric connecting a set of endpoints.
type Network struct {
	opts Options

	mu       sync.Mutex
	rng      *rand.Rand
	eps      map[types.NodeID]*Endpoint
	queue    deliveryHeap
	seq      uint64
	blocked  map[[2]types.NodeID]bool // unordered pair, stored with lower id first
	isolated map[types.NodeID]bool
	stats    Stats
	closed   bool

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	// tcp, when non-nil, carries deliveries over real loopback sockets
	// instead of the in-memory scheduler (see NewTCPNetwork). The fault
	// model (loss, cuts, duplication) still applies before transmission.
	tcp *tcpFabric

	// frameSizes records the wire size of every frame the TCP fabric
	// transmits — the distribution shows how well batching is working.
	frameSizes stats.Histogram
}

// FrameSizes returns the histogram of transmitted frame sizes (TCP mode
// only; the in-memory scheduler does not frame messages).
func (n *Network) FrameSizes() *stats.Histogram { return &n.frameSizes }

// NewNetwork creates a network and starts its delivery scheduler.
func NewNetwork(opts Options) *Network {
	if opts.InboxSize <= 0 {
		opts.InboxSize = 4096
	}
	n := &Network{
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		eps:      make(map[types.NodeID]*Endpoint),
		blocked:  make(map[[2]types.NodeID]bool),
		isolated: make(map[types.NodeID]bool),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	n.stats.PerKind = make(map[uint8]KindStats)
	n.wg.Add(1)
	go n.run()
	return n
}

// Close stops the scheduler and all endpoint dispatchers. Pending messages
// are discarded. Close is idempotent.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.eps))
	for _, e := range n.eps {
		eps = append(eps, e)
	}
	tcp := n.tcp
	n.mu.Unlock()
	close(n.done)
	if tcp != nil {
		tcp.close()
	}
	for _, e := range eps {
		e.close()
	}
	n.wg.Wait()
}

// Endpoint registers (or returns the existing) endpoint for id.
func (n *Network) Endpoint(id types.NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.eps[id]; ok {
		return e
	}
	e := &Endpoint{
		id:    id,
		net:   n,
		inbox: make(chan *delivery, n.opts.InboxSize),
		quit:  make(chan struct{}),
	}
	n.eps[id] = e
	n.wg.Add(1)
	go e.dispatch(&n.wg)
	if n.tcp != nil {
		if err := n.tcp.listenFor(e); err != nil {
			// Listener failure leaves the endpoint unreachable; count
			// sends to it as down.
			n.stats.DroppedDown++
		}
	}
	return e
}

// Stats returns a snapshot of the accounting counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.stats
	out.PerKind = make(map[uint8]KindStats, len(n.stats.PerKind))
	for k, v := range n.stats.PerKind {
		out.PerKind[k] = v
	}
	return out
}

// ResetStats zeroes the accounting counters (partitions/isolation are kept).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{PerKind: make(map[uint8]KindStats)}
}

func pairKey(a, b types.NodeID) [2]types.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]types.NodeID{a, b}
}

// BlockLink cuts the bidirectional link between a and b.
func (n *Network) BlockLink(a, b types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[pairKey(a, b)] = true
}

// UnblockLink restores the link between a and b.
func (n *Network) UnblockLink(a, b types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, pairKey(a, b))
}

// Isolate cuts every link of id (messages to and from id are dropped).
func (n *Network) Isolate(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[id] = true
}

// Restore undoes Isolate for id.
func (n *Network) Restore(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.isolated, id)
}

// Partition blocks every link that crosses between two of the given sides.
// Links within a side are untouched.
func (n *Network) Partition(sides ...[]types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < len(sides); i++ {
		for j := i + 1; j < len(sides); j++ {
			for _, a := range sides[i] {
				for _, b := range sides[j] {
					n.blocked[pairKey(a, b)] = true
				}
			}
		}
	}
}

// HealAll removes all link blocks and isolations.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]types.NodeID]bool)
	n.isolated = make(map[types.NodeID]bool)
}

func (n *Network) cut(a, b types.NodeID) bool {
	return n.isolated[a] || n.isolated[b] || n.blocked[pairKey(a, b)]
}

// send is called by endpoints; it applies the fault model and enqueues
// deliveries.
func (n *Network) send(from, to types.NodeID, group, stream uint64, kind uint8, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, ok := n.eps[to]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}

	n.stats.MessagesSent++
	n.stats.BytesSent += int64(len(payload))
	ks := n.stats.PerKind[kind]
	ks.Messages++
	ks.Bytes += int64(len(payload))
	n.stats.PerKind[kind] = ks

	if n.cut(from, to) {
		n.stats.DroppedCut++
		return nil // silently dropped, like a real partition
	}
	if n.opts.LossRate > 0 && n.rng.Float64() < n.opts.LossRate {
		n.stats.DroppedLoss++
		return nil
	}
	copies := 1
	if n.opts.DupRate > 0 && n.rng.Float64() < n.opts.DupRate {
		copies = 2
		n.stats.Duplicated++
	}
	if n.tcp != nil {
		for i := 0; i < copies; i++ {
			n.tcp.transmit(from, to, group, stream, kind, payload)
		}
		return nil
	}
	now := time.Now()
	for i := 0; i < copies; i++ {
		lat := n.opts.BaseLatency
		if n.opts.LinkLatency != nil {
			lat = n.opts.LinkLatency(from, to)
		}
		if n.opts.Jitter > 0 {
			lat += time.Duration(n.rng.Int63n(int64(n.opts.Jitter)))
		}
		n.seq++
		heap.Push(&n.queue, &delivery{
			at:      now.Add(lat),
			seq:     n.seq,
			from:    from,
			to:      to,
			group:   group,
			stream:  stream,
			kind:    kind,
			payload: payload,
		})
	}
	select {
	case n.wake <- struct{}{}:
	default:
	}
	return nil
}

// run is the scheduler loop: it sleeps until the earliest delivery is due,
// then hands it to the destination endpoint's inbox.
func (n *Network) run() {
	defer n.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		var next *delivery
		var wait time.Duration
		now := time.Now()
		for n.queue.Len() > 0 {
			head := n.queue[0]
			if head.at.After(now) {
				wait = head.at.Sub(now)
				break
			}
			next = heap.Pop(&n.queue).(*delivery)
			break
		}
		var ep *Endpoint
		if next != nil {
			ep = n.eps[next.to]
		}
		n.mu.Unlock()

		if next != nil {
			if ep == nil {
				continue
			}
			if !ep.enqueue(next) {
				n.mu.Lock()
				n.stats.DroppedBusy++
				n.mu.Unlock()
			}
			continue
		}

		if wait <= 0 {
			wait = time.Hour
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-n.done:
			return
		case <-n.wake:
		case <-timer.C:
		}
	}
}

// deliverDirect injects an inbound delivery, bypassing the simulated
// scheduler (used by the TCP fabric, where the wire supplies the latency).
func (n *Network) deliverDirect(d *delivery) {
	n.mu.Lock()
	ep := n.eps[d.to]
	n.mu.Unlock()
	if ep == nil {
		return
	}
	if !ep.enqueue(d) {
		n.mu.Lock()
		n.stats.DroppedBusy++
		n.mu.Unlock()
	}
}

func (n *Network) recordDelivered(down bool) {
	n.mu.Lock()
	if down {
		n.stats.DroppedDown++
	} else {
		n.stats.Delivered++
	}
	n.mu.Unlock()
}

// Endpoint is one process's attachment to the network.
//
// An endpoint is either a root (one per registered node, owning the inbox and
// dispatch goroutine) or a group view derived from a root via Group. A group
// view shares the root's identity, socket, inbox and pause state but has its
// own stream→handler registry, so N independent protocol stacks (RSM groups)
// can multiplex over one process attachment without coordinating stream IDs.
type Endpoint struct {
	id  types.NodeID
	net *Network

	// root is nil on the root endpoint itself; group views point back so
	// Send/Pause/close consult the shared process state.
	root  *Endpoint
	group uint64

	mu       sync.Mutex
	handlers map[uint64]Handler // per stream
	catchAll Handler
	paused   bool
	closed   bool
	groups   map[uint64]*Endpoint // root only: derived group views

	inbox chan *delivery
	quit  chan struct{}
	once  sync.Once
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() types.NodeID { return e.id }

// GroupID returns the group this endpoint view is scoped to (0 for the root).
func (e *Endpoint) GroupID() uint64 { return e.group }

// Group returns the endpoint view scoped to group gid. Handlers registered on
// the view only see traffic sent by the matching view on a peer; all views of
// a node share the root's single socket/inbox so a burst across groups still
// coalesces into the same TCP writes. Group 0 is the root endpoint itself —
// ungrouped (legacy) traffic is literally group 0.
func (e *Endpoint) Group(gid uint64) *Endpoint {
	root := e.rootEndpoint()
	if gid == 0 {
		return root
	}
	root.mu.Lock()
	defer root.mu.Unlock()
	if root.groups == nil {
		root.groups = make(map[uint64]*Endpoint)
	}
	if g, ok := root.groups[gid]; ok {
		return g
	}
	g := &Endpoint{id: root.id, net: root.net, root: root, group: gid}
	root.groups[gid] = g
	return g
}

// DropGroup discards the view for gid and its handlers; subsequent traffic
// for that group is counted as undeliverable. No-op for group 0.
func (e *Endpoint) DropGroup(gid uint64) {
	if gid == 0 {
		return
	}
	root := e.rootEndpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	delete(root.groups, gid)
}

func (e *Endpoint) rootEndpoint() *Endpoint {
	if e.root != nil {
		return e.root
	}
	return e
}

// Handle registers h for messages on the given stream, replacing any
// previous handler. A nil h unregisters the stream.
func (e *Endpoint) Handle(stream uint64, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.handlers == nil {
		e.handlers = make(map[uint64]Handler)
	}
	if h == nil {
		delete(e.handlers, stream)
		return
	}
	e.handlers[stream] = h
}

// HandleAll registers a catch-all handler invoked for streams with no
// specific handler.
func (e *Endpoint) HandleAll(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchAll = h
}

// Pause makes the endpoint drop all inbound messages, modeling a crashed
// process that is still addressable. Pause state is process-wide: pausing any
// group view pauses the root and every other view.
func (e *Endpoint) Pause() {
	root := e.rootEndpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	root.paused = true
}

// Resume undoes Pause.
func (e *Endpoint) Resume() {
	root := e.rootEndpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	root.paused = false
}

// Paused reports whether the endpoint is currently dropping inbound traffic.
func (e *Endpoint) Paused() bool {
	root := e.rootEndpoint()
	root.mu.Lock()
	defer root.mu.Unlock()
	return root.paused
}

// Send transmits payload to the given node, addressed to the same group view
// on the receiving side. It never blocks on the receiver; delivery is
// asynchronous and may silently fail per the fault model.
func (e *Endpoint) Send(to types.NodeID, stream uint64, kind uint8, payload []byte) error {
	root := e.rootEndpoint()
	root.mu.Lock()
	if root.closed {
		root.mu.Unlock()
		return ErrClosed
	}
	paused := root.paused
	root.mu.Unlock()
	if paused {
		return nil // a crashed process sends nothing; drop silently
	}
	return root.net.send(root.id, to, e.group, stream, kind, payload)
}

// Broadcast sends payload to every node in targets (skipping self).
func (e *Endpoint) Broadcast(targets []types.NodeID, stream uint64, kind uint8, payload []byte) {
	for _, t := range targets {
		if t == e.id {
			continue
		}
		_ = e.Send(t, stream, kind, payload) // best-effort fan-out
	}
}

func (e *Endpoint) enqueue(d *delivery) bool {
	select {
	case e.inbox <- d:
		return true
	case <-e.quit:
		return true // closing; swallow
	default:
		return false
	}
}

func (e *Endpoint) dispatch(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case d := <-e.inbox:
			e.mu.Lock()
			target := e
			if d.group != 0 {
				target = e.groups[d.group] // nil if no such group view
			}
			paused := e.paused || e.closed
			var h Handler
			if target == e {
				h = e.handlers[d.stream]
				if h == nil {
					h = e.catchAll
				}
			}
			e.mu.Unlock()
			if target != nil && target != e {
				target.mu.Lock()
				h = target.handlers[d.stream]
				if h == nil {
					h = target.catchAll
				}
				target.mu.Unlock()
			}
			e.net.recordDelivered(paused || h == nil)
			if paused || h == nil {
				continue
			}
			h(d.from, d.stream, d.kind, d.payload)
		}
	}
}

func (e *Endpoint) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.once.Do(func() { close(e.quit) })
}
