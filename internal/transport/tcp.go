package transport

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"

	"repro/internal/types"
)

// NewTCPNetwork creates a Network whose deliveries travel over real loopback
// TCP sockets instead of the in-memory scheduler. Everything else is
// unchanged: the same Endpoint API, the same per-kind accounting, and the
// same fault injection (loss, duplication, partitions and isolation are
// applied before a frame reaches the wire; latency and reordering come from
// the real kernel network stack).
//
// All endpoints live in one process — the listener registry is in-memory —
// so this mode exercises real sockets, framing and kernel scheduling while
// staying self-contained. Latency options (BaseLatency/Jitter/LinkLatency)
// are ignored; the wire provides its own timing.
func NewTCPNetwork(opts Options) *Network {
	n := NewNetwork(opts)
	n.mu.Lock()
	n.tcp = newTCPFabric(n)
	n.mu.Unlock()
	return n
}

// maxFrame bounds one frame's payload (64 MiB), guarding the reader against
// corrupt length prefixes.
const maxFrame = 64 << 20

// tcpFabric carries frames between endpoints over loopback sockets.
type tcpFabric struct {
	net *Network

	mu        sync.Mutex
	addrs     map[types.NodeID]string
	listeners map[types.NodeID]net.Listener
	conns     map[connKey]*outConn
	accepted  []net.Conn
	closed    bool
	wg        sync.WaitGroup
}

type connKey struct {
	from, to types.NodeID
}

type outConn struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
}

func newTCPFabric(n *Network) *tcpFabric {
	return &tcpFabric{
		net:       n,
		addrs:     make(map[types.NodeID]string),
		listeners: make(map[types.NodeID]net.Listener),
		conns:     make(map[connKey]*outConn),
	}
}

// listenFor starts the accept loop for one endpoint.
func (f *tcpFabric) listenFor(e *Endpoint) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		_ = ln.Close()
		return ErrClosed
	}
	f.addrs[e.id] = ln.Addr().String()
	f.listeners[e.id] = ln
	f.mu.Unlock()

	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			f.mu.Lock()
			if f.closed {
				f.mu.Unlock()
				_ = conn.Close()
				return
			}
			f.accepted = append(f.accepted, conn)
			f.mu.Unlock()
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.readLoop(conn)
			}()
		}
	}()
	return nil
}

// transmit sends one frame to the destination, dialing on demand. Failures
// are silent — exactly like datagram loss; the protocols retransmit.
func (f *tcpFabric) transmit(from, to types.NodeID, stream uint64, kind uint8, payload []byte) {
	key := connKey{from: from, to: to}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	oc, ok := f.conns[key]
	if !ok {
		addr, haveAddr := f.addrs[to]
		if !haveAddr {
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		oc = &outConn{conn: conn, bw: bufio.NewWriter(conn)}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			_ = conn.Close()
			return
		}
		if existing, raced := f.conns[key]; raced {
			f.mu.Unlock()
			_ = conn.Close()
			oc = existing
		} else {
			f.conns[key] = oc
			f.mu.Unlock()
		}
	} else {
		f.mu.Unlock()
	}

	frame := encodeFrame(from, stream, kind, payload)
	oc.mu.Lock()
	_, err := oc.bw.Write(frame)
	if err == nil {
		err = oc.bw.Flush()
	}
	oc.mu.Unlock()
	if err != nil {
		// Broken pipe: drop the cached conn so the next send redials.
		f.mu.Lock()
		if f.conns[key] == oc {
			delete(f.conns, key)
		}
		f.mu.Unlock()
		_ = oc.conn.Close()
	}
}

// readLoop decodes frames from one accepted connection and injects them
// into the destination endpoint's inbox.
func (f *tcpFabric) readLoop(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	// The destination is the endpoint that owns the listener this conn was
	// accepted on; frames carry from/stream/kind/payload. We recover the
	// destination from the local address.
	local := conn.LocalAddr().String()
	var to types.NodeID
	f.mu.Lock()
	for id, addr := range f.addrs {
		if addr == local {
			to = id
			break
		}
	}
	f.mu.Unlock()
	if to == "" {
		return
	}
	for {
		from, stream, kind, payload, err := decodeFrame(br)
		if err != nil {
			return
		}
		f.net.deliverDirect(&delivery{
			from:    from,
			to:      to,
			stream:  stream,
			kind:    kind,
			payload: payload,
		})
	}
}

func (f *tcpFabric) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	listeners := f.listeners
	conns := f.conns
	accepted := f.accepted
	f.listeners = map[types.NodeID]net.Listener{}
	f.conns = map[connKey]*outConn{}
	f.accepted = nil
	f.mu.Unlock()
	for _, ln := range listeners {
		_ = ln.Close()
	}
	for _, oc := range conns {
		_ = oc.conn.Close()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	f.wg.Wait()
}

// Frame layout: fromLen|from|stream|kind|payloadLen|payload, all varints
// except kind (one byte).
func encodeFrame(from types.NodeID, stream uint64, kind uint8, payload []byte) []byte {
	buf := make([]byte, 0, len(from)+len(payload)+24)
	buf = binary.AppendUvarint(buf, uint64(len(from)))
	buf = append(buf, from...)
	buf = binary.AppendUvarint(buf, stream)
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return buf
}

func decodeFrame(br *bufio.Reader) (from types.NodeID, stream uint64, kind uint8, payload []byte, err error) {
	fromLen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, nil, err
	}
	if fromLen > 4096 {
		return "", 0, 0, nil, io.ErrUnexpectedEOF
	}
	fromBuf := make([]byte, fromLen)
	if _, err := io.ReadFull(br, fromBuf); err != nil {
		return "", 0, 0, nil, err
	}
	stream, err = binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, nil, err
	}
	kindByte, err := br.ReadByte()
	if err != nil {
		return "", 0, 0, nil, err
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, nil, err
	}
	if plen > maxFrame {
		return "", 0, 0, nil, io.ErrUnexpectedEOF
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return "", 0, 0, nil, err
	}
	return types.NodeID(fromBuf), stream, kindByte, payload, nil
}
