package transport

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"

	"repro/internal/types"
)

// NewTCPNetwork creates a Network whose deliveries travel over real loopback
// TCP sockets instead of the in-memory scheduler. Everything else is
// unchanged: the same Endpoint API, the same per-kind accounting, and the
// same fault injection (loss, duplication, partitions and isolation are
// applied before a frame reaches the wire; latency and reordering come from
// the real kernel network stack).
//
// All endpoints live in one process — the listener registry is in-memory —
// so this mode exercises real sockets, framing and kernel scheduling while
// staying self-contained. Latency options (BaseLatency/Jitter/LinkLatency)
// are ignored; the wire provides its own timing.
func NewTCPNetwork(opts Options) *Network {
	n := NewNetwork(opts)
	n.mu.Lock()
	n.tcp = newTCPFabric(n)
	n.mu.Unlock()
	return n
}

// maxFrame bounds one frame's payload (64 MiB), guarding the reader against
// corrupt length prefixes.
const maxFrame = 64 << 20

// tcpFabric carries frames between endpoints over loopback sockets.
type tcpFabric struct {
	net *Network

	mu        sync.Mutex
	addrs     map[types.NodeID]string
	listeners map[types.NodeID]net.Listener
	conns     map[connKey]*outConn
	accepted  []net.Conn
	closed    bool
	wg        sync.WaitGroup
}

type connKey struct {
	from, to types.NodeID
}

// outConn is one outbound connection. Frames are written into bw under mu
// and flushed by a dedicated flusher goroutine, so a burst of transmits
// (leader broadcast fan-out, a batch of forwards) reaches the kernel as one
// write instead of one syscall per frame. TCP_NODELAY is set explicitly:
// with our own coalescing in front, Nagle's algorithm would only add
// latency.
type outConn struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	err  error // sticky: the conn is dead, drop and redial

	notify chan struct{} // cap 1: kick the flusher
	quit   chan struct{}
	stop   sync.Once
}

// shutdown closes the connection and stops the flusher, exactly once.
func (oc *outConn) shutdown() {
	oc.stop.Do(func() {
		close(oc.quit)
		_ = oc.conn.Close()
	})
}

// flushLoop drains the bufio.Writer once per transmit burst: each notify
// wakes it, and every frame written while a flush is in flight rides the
// next one.
func (f *tcpFabric) flushLoop(key connKey, oc *outConn) {
	defer f.wg.Done()
	for {
		select {
		case <-oc.quit:
			return
		case <-oc.notify:
		}
		oc.mu.Lock()
		var err error
		if oc.err == nil {
			err = oc.bw.Flush()
			oc.err = err
		}
		oc.mu.Unlock()
		if err != nil {
			f.dropConn(key, oc)
			return
		}
	}
}

// dropConn forgets a dead connection so the next transmit redials. Failures
// stay silent — exactly like datagram loss; the protocols retransmit.
func (f *tcpFabric) dropConn(key connKey, oc *outConn) {
	f.mu.Lock()
	if f.conns[key] == oc {
		delete(f.conns, key)
	}
	f.mu.Unlock()
	oc.shutdown()
}

func newTCPFabric(n *Network) *tcpFabric {
	return &tcpFabric{
		net:       n,
		addrs:     make(map[types.NodeID]string),
		listeners: make(map[types.NodeID]net.Listener),
		conns:     make(map[connKey]*outConn),
	}
}

// listenFor starts the accept loop for one endpoint.
func (f *tcpFabric) listenFor(e *Endpoint) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		_ = ln.Close()
		return ErrClosed
	}
	f.addrs[e.id] = ln.Addr().String()
	f.listeners[e.id] = ln
	f.mu.Unlock()

	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			f.mu.Lock()
			if f.closed {
				f.mu.Unlock()
				_ = conn.Close()
				return
			}
			f.accepted = append(f.accepted, conn)
			f.mu.Unlock()
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				f.readLoop(conn)
			}()
		}
	}()
	return nil
}

// transmit queues one frame to the destination, dialing on demand. The frame
// lands in the connection's write buffer; the flusher goroutine pushes it to
// the kernel, coalescing bursts into one syscall. Failures are silent —
// exactly like datagram loss; the protocols retransmit.
func (f *tcpFabric) transmit(from, to types.NodeID, group, stream uint64, kind uint8, payload []byte) {
	key := connKey{from: from, to: to}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	oc, ok := f.conns[key]
	if !ok {
		addr, haveAddr := f.addrs[to]
		if !haveAddr {
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		if tc, isTCP := conn.(*net.TCPConn); isTCP {
			// We batch in userspace; Nagle would only delay the flushed
			// burst behind un-acked data.
			_ = tc.SetNoDelay(true)
		}
		oc = &outConn{
			conn:   conn,
			bw:     bufio.NewWriter(conn),
			notify: make(chan struct{}, 1),
			quit:   make(chan struct{}),
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			_ = conn.Close()
			return
		}
		if existing, raced := f.conns[key]; raced {
			f.mu.Unlock()
			_ = conn.Close()
			oc = existing
		} else {
			f.conns[key] = oc
			f.wg.Add(1)
			go f.flushLoop(key, oc)
			f.mu.Unlock()
		}
	} else {
		f.mu.Unlock()
	}

	bufp := framePool.Get().(*[]byte)
	frame := appendFrame((*bufp)[:0], from, group, stream, kind, payload)
	oc.mu.Lock()
	err := oc.err
	if err == nil {
		// bw.Write copies frame into the connection buffer (or the socket),
		// so the scratch buffer can be pooled as soon as it returns.
		_, err = oc.bw.Write(frame)
		oc.err = err
	}
	oc.mu.Unlock()
	size := int64(len(frame))
	*bufp = frame[:0]
	framePool.Put(bufp)
	if err != nil {
		f.dropConn(key, oc)
		return
	}
	f.net.frameSizes.Observe(size)
	select {
	case oc.notify <- struct{}{}:
	default: // flusher already kicked; it will see this frame too
	}
}

// readLoop decodes frames from one accepted connection and injects them
// into the destination endpoint's inbox.
func (f *tcpFabric) readLoop(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	// The destination is the endpoint that owns the listener this conn was
	// accepted on; frames carry from/stream/kind/payload. We recover the
	// destination from the local address.
	local := conn.LocalAddr().String()
	var to types.NodeID
	f.mu.Lock()
	for id, addr := range f.addrs {
		if addr == local {
			to = id
			break
		}
	}
	f.mu.Unlock()
	if to == "" {
		return
	}
	for {
		from, group, stream, kind, payload, err := decodeFrame(br)
		if err != nil {
			return
		}
		f.net.deliverDirect(&delivery{
			from:    from,
			to:      to,
			group:   group,
			stream:  stream,
			kind:    kind,
			payload: payload,
		})
	}
}

func (f *tcpFabric) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	listeners := f.listeners
	conns := f.conns
	accepted := f.accepted
	f.listeners = map[types.NodeID]net.Listener{}
	f.conns = map[connKey]*outConn{}
	f.accepted = nil
	f.mu.Unlock()
	for _, ln := range listeners {
		_ = ln.Close()
	}
	for _, oc := range conns {
		oc.shutdown()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	f.wg.Wait()
}

// framePool recycles frame-encode scratch buffers: transmit copies the frame
// into the connection's buffered writer before returning it to the pool, so
// steady-state sends allocate nothing.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// Frame layout (legacy, carries group 0):
//
//	fromLen|from|stream|kind|payloadLen|payload
//
// all varints except kind (one byte). Grouped frames prepend a marker:
//
//	0|group|fromLen|from|stream|kind|payloadLen|payload
//
// A leading varint 0 can never be a legacy frame's fromLen (node IDs are
// non-empty), so it unambiguously marks the grouped form. Group 0 always
// encodes as the legacy layout — old readers decode new group-0 traffic and
// new readers decode old frames as group 0, in both directions.
func appendFrame(buf []byte, from types.NodeID, group, stream uint64, kind uint8, payload []byte) []byte {
	if group != 0 {
		buf = append(buf, 0) // grouped-frame marker
		buf = binary.AppendUvarint(buf, group)
	}
	buf = binary.AppendUvarint(buf, uint64(len(from)))
	buf = append(buf, from...)
	buf = binary.AppendUvarint(buf, stream)
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return buf
}

func decodeFrame(br *bufio.Reader) (from types.NodeID, group, stream uint64, kind uint8, payload []byte, err error) {
	fromLen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, 0, nil, err
	}
	if fromLen == 0 {
		// Grouped-frame marker: a real fromLen is never 0.
		group, err = binary.ReadUvarint(br)
		if err != nil {
			return "", 0, 0, 0, nil, err
		}
		fromLen, err = binary.ReadUvarint(br)
		if err != nil {
			return "", 0, 0, 0, nil, err
		}
	}
	if fromLen == 0 || fromLen > 4096 {
		return "", 0, 0, 0, nil, io.ErrUnexpectedEOF
	}
	fromBuf := make([]byte, fromLen)
	if _, err := io.ReadFull(br, fromBuf); err != nil {
		return "", 0, 0, 0, nil, err
	}
	stream, err = binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, 0, nil, err
	}
	kindByte, err := br.ReadByte()
	if err != nil {
		return "", 0, 0, 0, nil, err
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, 0, nil, err
	}
	if plen > maxFrame {
		return "", 0, 0, 0, nil, io.ErrUnexpectedEOF
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return "", 0, 0, 0, nil, err
	}
	return types.NodeID(fromBuf), group, stream, kindByte, payload, nil
}
