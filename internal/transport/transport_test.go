package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// collect registers a handler that appends payload copies to a shared slice.
func collect(e *Endpoint, stream uint64) (*sync.Mutex, *[]string) {
	var mu sync.Mutex
	msgs := &[]string{}
	e.Handle(stream, func(from types.NodeID, s uint64, kind uint8, payload []byte) {
		mu.Lock()
		*msgs = append(*msgs, string(payload))
		mu.Unlock()
	})
	return &mu, msgs
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBasicDelivery(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)

	if err := a.Send("b", 1, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "delivery")
	mu.Lock()
	if (*msgs)[0] != "hello" {
		t.Fatalf("got %q", (*msgs)[0])
	}
	mu.Unlock()

	st := n.Stats()
	if st.MessagesSent != 1 || st.Delivered != 1 || st.BytesSent != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.PerKind[7].Messages != 1 || st.PerKind[7].Bytes != 5 {
		t.Fatalf("per-kind stats %+v", st.PerKind)
	}
}

func TestSendToUnknownNode(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	if err := a.Send("ghost", 1, 0, nil); err == nil {
		t.Fatal("expected ErrUnknownNode")
	}
}

func TestStreamDemux(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu1, s1 := collect(b, 1)
	mu2, s2 := collect(b, 2)

	_ = a.Send("b", 1, 0, []byte("one"))
	_ = a.Send("b", 2, 0, []byte("two"))
	waitFor(t, func() bool {
		mu1.Lock()
		n1 := len(*s1)
		mu1.Unlock()
		mu2.Lock()
		n2 := len(*s2)
		mu2.Unlock()
		return n1 == 1 && n2 == 1
	}, "both streams")
	mu1.Lock()
	defer mu1.Unlock()
	mu2.Lock()
	defer mu2.Unlock()
	if (*s1)[0] != "one" || (*s2)[0] != "two" {
		t.Fatalf("demux wrong: %v %v", *s1, *s2)
	}
}

func TestCatchAllHandler(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	var got atomic.Int64
	b.HandleAll(func(from types.NodeID, s uint64, kind uint8, payload []byte) {
		if s == 99 {
			got.Add(1)
		}
	})
	_ = a.Send("b", 99, 0, []byte("x"))
	waitFor(t, func() bool { return got.Load() == 1 }, "catch-all")
}

func TestLatencyOrdering(t *testing.T) {
	n := NewNetwork(Options{BaseLatency: 5 * time.Millisecond})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)

	start := time.Now()
	_ = a.Send("b", 1, 0, []byte("m1"))
	_ = a.Send("b", 1, 0, []byte("m2"))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 2 }, "two deliveries")
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delivered too fast: %v", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	// Without jitter, same-source same-dest messages preserve order.
	if (*msgs)[0] != "m1" || (*msgs)[1] != "m2" {
		t.Fatalf("order violated: %v", *msgs)
	}
}

func TestLossRateDropsEverything(t *testing.T) {
	n := NewNetwork(Options{LossRate: 1.0})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	collect(b, 1)
	for i := 0; i < 10; i++ {
		_ = a.Send("b", 1, 0, []byte("x"))
	}
	waitFor(t, func() bool { return n.Stats().DroppedLoss == 10 }, "loss accounting")
	if n.Stats().Delivered != 0 {
		t.Fatal("lossy network delivered a message")
	}
}

func TestDuplication(t *testing.T) {
	n := NewNetwork(Options{DupRate: 1.0})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)
	_ = a.Send("b", 1, 0, []byte("x"))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 2 }, "duplicate delivery")
	if n.Stats().Duplicated != 1 {
		t.Fatalf("dup stats: %+v", n.Stats())
	}
}

func TestIsolateAndRestore(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)

	n.Isolate("b")
	_ = a.Send("b", 1, 0, []byte("dropped"))
	waitFor(t, func() bool { return n.Stats().DroppedCut == 1 }, "cut accounting")

	n.Restore("b")
	_ = a.Send("b", 1, 0, []byte("arrives"))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "post-restore delivery")
	mu.Lock()
	defer mu.Unlock()
	if (*msgs)[0] != "arrives" {
		t.Fatalf("wrong message: %v", *msgs)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	ids := []types.NodeID{"a", "b", "c", "d"}
	eps := make(map[types.NodeID]*Endpoint, len(ids))
	var mu sync.Mutex
	recv := make(map[types.NodeID]int)
	for _, id := range ids {
		id := id
		eps[id] = n.Endpoint(id)
		eps[id].Handle(1, func(from types.NodeID, s uint64, k uint8, p []byte) {
			mu.Lock()
			recv[id]++
			mu.Unlock()
		})
	}
	n.Partition([]types.NodeID{"a", "b"}, []types.NodeID{"c", "d"})

	_ = eps["a"].Send("b", 1, 0, []byte("in-side"))  // should arrive
	_ = eps["a"].Send("c", 1, 0, []byte("cross"))    // blocked
	_ = eps["d"].Send("b", 1, 0, []byte("cross2"))   // blocked
	_ = eps["c"].Send("d", 1, 0, []byte("in-side2")) // should arrive

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return recv["b"] == 1 && recv["d"] == 1
	}, "in-side deliveries")
	if st := n.Stats(); st.DroppedCut != 2 {
		t.Fatalf("expected 2 cut drops, got %+v", st)
	}

	n.HealAll()
	_ = eps["a"].Send("c", 1, 0, []byte("now"))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return recv["c"] == 1 }, "post-heal delivery")
}

func TestBlockLinkIsBidirectionalAndReversible(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	muA, msgsA := collect(a, 1)
	muB, msgsB := collect(b, 1)

	n.BlockLink("a", "b")
	_ = a.Send("b", 1, 0, []byte("x"))
	_ = b.Send("a", 1, 0, []byte("y"))
	waitFor(t, func() bool { return n.Stats().DroppedCut == 2 }, "both directions cut")

	n.UnblockLink("b", "a") // reversed arg order must also work
	_ = a.Send("b", 1, 0, []byte("x2"))
	_ = b.Send("a", 1, 0, []byte("y2"))
	waitFor(t, func() bool {
		muA.Lock()
		na := len(*msgsA)
		muA.Unlock()
		muB.Lock()
		nb := len(*msgsB)
		muB.Unlock()
		return na == 1 && nb == 1
	}, "post-unblock delivery")
}

func TestPausedEndpointDropsInboundAndOutbound(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)

	b.Pause()
	_ = a.Send("b", 1, 0, []byte("to-crashed"))
	waitFor(t, func() bool { return n.Stats().DroppedDown == 1 }, "down drop")

	// A paused (crashed) endpoint also must not emit messages.
	a.Pause()
	if err := a.Send("b", 1, 0, []byte("from-crashed")); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().MessagesSent; got != 1 {
		t.Fatalf("crashed node sent a message: %d", got)
	}

	a.Resume()
	b.Resume()
	if !b.Paused() == false && b.Paused() {
		t.Fatal("resume did not clear paused")
	}
	_ = a.Send("b", 1, 0, []byte("alive"))
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == 1 }, "post-resume delivery")
}

func TestBroadcastSkipsSelf(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	ids := []types.NodeID{"a", "b", "c"}
	var count atomic.Int64
	for _, id := range ids {
		ep := n.Endpoint(id)
		ep.Handle(1, func(from types.NodeID, s uint64, k uint8, p []byte) { count.Add(1) })
	}
	n.Endpoint("a").Broadcast(ids, 1, 0, []byte("x"))
	waitFor(t, func() bool { return count.Load() == 2 }, "broadcast to others")
	time.Sleep(5 * time.Millisecond)
	if count.Load() != 2 {
		t.Fatalf("self-delivery happened: %d", count.Load())
	}
}

func TestJitterReordersButDelivers(t *testing.T) {
	n := NewNetwork(Options{Jitter: 2 * time.Millisecond, Seed: 42})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	mu, msgs := collect(b, 1)
	const total = 200
	for i := 0; i < total; i++ {
		_ = a.Send("b", 1, 0, []byte{byte(i)})
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(*msgs) == total }, "all delivered")
}

func TestCloseIsIdempotentAndStopsSends(t *testing.T) {
	n := NewNetwork(Options{})
	a := n.Endpoint("a")
	n.Endpoint("b")
	n.Close()
	n.Close()
	if err := a.Send("b", 1, 0, nil); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestEndpointReuse(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	e1 := n.Endpoint("a")
	e2 := n.Endpoint("a")
	if e1 != e2 {
		t.Fatal("Endpoint must return the registered instance")
	}
}

func TestResetStats(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	collect(b, 1)
	_ = a.Send("b", 1, 3, []byte("x"))
	waitFor(t, func() bool { return n.Stats().Delivered == 1 }, "delivery")
	n.ResetStats()
	st := n.Stats()
	if st.MessagesSent != 0 || len(st.PerKind) != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestHandlerReplaceAndRemove(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	var first, second atomic.Int64
	b.Handle(1, func(types.NodeID, uint64, uint8, []byte) { first.Add(1) })
	b.Handle(1, func(types.NodeID, uint64, uint8, []byte) { second.Add(1) })
	_ = a.Send("b", 1, 0, nil)
	waitFor(t, func() bool { return second.Load() == 1 }, "replaced handler")
	if first.Load() != 0 {
		t.Fatal("old handler still invoked")
	}
	b.Handle(1, nil)
	_ = a.Send("b", 1, 0, nil)
	waitFor(t, func() bool { return n.Stats().DroppedDown == 1 }, "unhandled counted as down")
}

func TestConcurrentSendersStress(t *testing.T) {
	n := NewNetwork(Options{Jitter: 100 * time.Microsecond})
	defer n.Close()
	const senders, per = 8, 100
	dst := n.Endpoint("dst")
	var got atomic.Int64
	dst.Handle(1, func(types.NodeID, uint64, uint8, []byte) { got.Add(1) })
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep := n.Endpoint(types.NodeID(string(rune('a' + s))))
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = e.Send("dst", 1, 0, []byte("m"))
			}
		}(ep)
	}
	wg.Wait()
	waitFor(t, func() bool { return got.Load() == senders*per }, "all stress messages")
}

func TestLinkLatencyOverride(t *testing.T) {
	slow := 20 * time.Millisecond
	n := NewNetwork(Options{
		LinkLatency: func(from, to types.NodeID) time.Duration {
			if from == "a" && to == "far" {
				return slow
			}
			return 0
		},
	})
	defer n.Close()
	a := n.Endpoint("a")
	var nearAt, farAt atomic.Int64
	n.Endpoint("near").Handle(1, func(types.NodeID, uint64, uint8, []byte) {
		nearAt.Store(time.Now().UnixNano())
	})
	n.Endpoint("far").Handle(1, func(types.NodeID, uint64, uint8, []byte) {
		farAt.Store(time.Now().UnixNano())
	})
	start := time.Now()
	_ = a.Send("far", 1, 0, nil)
	_ = a.Send("near", 1, 0, nil)
	waitFor(t, func() bool { return nearAt.Load() != 0 && farAt.Load() != 0 }, "both deliveries")
	if d := time.Unix(0, farAt.Load()).Sub(start); d < slow {
		t.Fatalf("far link too fast: %v", d)
	}
}
