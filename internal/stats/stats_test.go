package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	samples := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	s := Summarize(samples)
	if s.Count != 5 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max %v %v", s.Min, s.Max)
	}
	if s.Mean != 22*time.Millisecond {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.P50 != 3*time.Millisecond {
		t.Fatalf("p50 %v", s.P50)
	}
	if s.P99 != 100*time.Millisecond {
		t.Fatalf("p99 %v", s.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Max != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []int64) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			if v < 0 {
				v = -v
			}
			samples[i] = time.Duration(v % 1_000_000)
		}
		s := Summarize(samples)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r LatencyRecorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count %d", r.Count())
	}
	if s := r.Summarize(); s.Count != 800 {
		t.Fatalf("summary count %d", s.Count)
	}
}

func TestTimelineSeriesAndGap(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 5; i++ {
		tl.Record()
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // a gap
	tl.Record()
	tl.MarkNow("after-gap")

	if tl.Count() != 6 {
		t.Fatalf("count %d", tl.Count())
	}
	series := tl.Series(time.Millisecond)
	var total int64
	for _, b := range series {
		total += b
	}
	if total != 6 {
		t.Fatalf("series total %d (%v)", total, series)
	}
	if gap := tl.LongestGap(); gap < 15*time.Millisecond {
		t.Fatalf("longest gap %v", gap)
	}
	marks := tl.Marks()
	if len(marks) != 1 || marks[0].Label != "after-gap" {
		t.Fatalf("marks %+v", marks)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline()
	if tl.Series(time.Millisecond) != nil {
		t.Fatal("series of empty timeline")
	}
	if tl.LongestGap() != 0 {
		t.Fatal("gap of empty timeline")
	}
}

func TestGapAround(t *testing.T) {
	tl := NewTimeline()
	tl.Record()
	time.Sleep(10 * time.Millisecond)
	mark := time.Now()
	time.Sleep(10 * time.Millisecond)
	tl.Record()

	gap := tl.GapAround(mark, 50*time.Millisecond)
	if gap < 15*time.Millisecond {
		t.Fatalf("gap around %v", gap)
	}
	// A window entirely beyond the recorded data carries no information
	// and reports zero rather than phantom downtime.
	if g := tl.GapAround(mark.Add(10*time.Second), 5*time.Millisecond); g != 0 {
		t.Fatalf("beyond-data window gap %v", g)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter %d", c.Value())
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]time.Duration{time.Millisecond})
	if str := s.String(); str == "" {
		t.Fatal("empty string")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	if h.Count() != 9 || h.Max() != 1000 || h.Sum() != 1026 {
		t.Fatalf("count=%d max=%d sum=%d", h.Count(), h.Max(), h.Sum())
	}
	want := []HistogramBucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 2},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 4, Hi: 7, Count: 2},
		{Lo: 8, Hi: 15, Count: 1},
		{Lo: 512, Hi: 1023, Count: 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if h.Mean() < 100 || h.Mean() > 200 {
		t.Fatalf("mean %v", h.Mean())
	}
	if (&Histogram{}).String() != "empty" {
		t.Fatal("empty histogram string")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 100; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Fatalf("count %d", h.Count())
	}
}
