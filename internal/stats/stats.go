// Package stats provides the measurement primitives the experiments report:
// latency recorders with percentiles, event timelines binned over wall-clock
// time, and commit-gap (downtime) analysis.
package stats

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyRecorder accumulates duration samples; safe for concurrent use.
// The zero value is ready to use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Summary condenses a recorder's samples.
type Summary struct {
	Count            int
	Mean             time.Duration
	P50, P95, P99    time.Duration
	P999             time.Duration
	Min, Max         time.Duration
	TotalDurationSum time.Duration
}

// Summarize computes the distribution summary of the recorded samples.
func (r *LatencyRecorder) Summarize() Summary {
	r.mu.Lock()
	samples := make([]time.Duration, len(r.samples))
	copy(samples, r.samples)
	r.mu.Unlock()
	return Summarize(samples)
}

// Summarize computes the distribution summary of an arbitrary sample set.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	return Summary{
		Count:            len(sorted),
		Mean:             sum / time.Duration(len(sorted)),
		P50:              percentile(sorted, 0.50),
		P95:              percentile(sorted, 0.95),
		P99:              percentile(sorted, 0.99),
		P999:             percentile(sorted, 0.999),
		Min:              sorted[0],
		Max:              sorted[len(sorted)-1],
		TotalDurationSum: sum,
	}
}

// percentile returns the p-quantile (0 < p <= 1) of sorted samples using the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.P999.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Timeline records event timestamps and reports them as a binned series —
// the committed-operations-over-time figures. Safe for concurrent use.
type Timeline struct {
	mu     sync.Mutex
	start  time.Time
	events []time.Time
	marks  []Mark
}

// Mark labels an instant on a timeline (e.g. "reconfig issued").
type Mark struct {
	At    time.Time
	Label string
}

// NewTimeline starts a timeline at now.
func NewTimeline() *Timeline {
	return &Timeline{start: time.Now()}
}

// Start returns the timeline origin.
func (t *Timeline) Start() time.Time { return t.start }

// Record notes one event at the current instant.
func (t *Timeline) Record() {
	now := time.Now()
	t.mu.Lock()
	t.events = append(t.events, now)
	t.mu.Unlock()
}

// MarkNow labels the current instant.
func (t *Timeline) MarkNow(label string) {
	now := time.Now()
	t.mu.Lock()
	t.marks = append(t.marks, Mark{At: now, Label: label})
	t.mu.Unlock()
}

// Count returns the number of recorded events.
func (t *Timeline) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Marks returns the recorded labels with offsets from the origin.
func (t *Timeline) Marks() []Mark {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Mark, len(t.marks))
	copy(out, t.marks)
	return out
}

// Series bins the events into windows of the given width, from the timeline
// origin through the last event. Empty trailing bins are preserved up to the
// last event's bin.
func (t *Timeline) Series(bin time.Duration) []int64 {
	t.mu.Lock()
	events := make([]time.Time, len(t.events))
	copy(events, t.events)
	start := t.start
	t.mu.Unlock()
	if len(events) == 0 || bin <= 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Before(events[j]) })
	last := events[len(events)-1]
	n := int(last.Sub(start)/bin) + 1
	out := make([]int64, n)
	for _, e := range events {
		idx := int(e.Sub(start) / bin)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		out[idx]++
	}
	return out
}

// LongestGap returns the longest interval between consecutive events (the
// downtime measure), looking only at events after the timeline origin, and
// including the origin itself as a virtual first event.
func (t *Timeline) LongestGap() time.Duration {
	t.mu.Lock()
	events := make([]time.Time, len(t.events))
	copy(events, t.events)
	start := t.start
	t.mu.Unlock()
	if len(events) == 0 {
		return 0
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Before(events[j]) })
	longest := events[0].Sub(start)
	for i := 1; i < len(events); i++ {
		if gap := events[i].Sub(events[i-1]); gap > longest {
			longest = gap
		}
	}
	return longest
}

// GapAround returns the longest gap between consecutive events inside the
// window [at-w, at+w] — the disruption around a marked instant, excluding
// unrelated noise elsewhere in the run. The window is clamped to the
// observed event range: time after the last event of the whole timeline
// carries no information and is not counted.
func (t *Timeline) GapAround(at time.Time, w time.Duration) time.Duration {
	t.mu.Lock()
	events := make([]time.Time, len(t.events))
	copy(events, t.events)
	start := t.start
	t.mu.Unlock()
	lo, hi := at.Add(-w), at.Add(w)
	if len(events) > 0 {
		last := events[0]
		for _, e := range events {
			if e.After(last) {
				last = e
			}
		}
		if hi.After(last) {
			hi = last
		}
		if start.After(lo) {
			lo = start
		}
		if !hi.After(lo) {
			return 0
		}
	}
	var inWin []time.Time
	for _, e := range events {
		if !e.Before(lo) && !e.After(hi) {
			inWin = append(inWin, e)
		}
	}
	if len(inWin) == 0 {
		return 2 * w // nothing committed in the whole window
	}
	sort.Slice(inWin, func(i, j int) bool { return inWin[i].Before(inWin[j]) })
	longest := inWin[0].Sub(lo)
	for i := 1; i < len(inWin); i++ {
		if gap := inWin[i].Sub(inWin[i-1]); gap > longest {
			longest = gap
		}
	}
	if tail := hi.Sub(inWin[len(inWin)-1]); tail > longest {
		longest = tail
	}
	return longest
}

// Counter is a concurrency-safe monotone counter.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// ReadPathCounters aggregates the outcomes of the linearizable read fast
// path: reads served without a log append (hits), reads that fell back to
// the ordinary log path, and reads refused because their configuration was
// wedged by a reconfiguration (fenced).
type ReadPathCounters struct {
	Fast     Counter
	Fallback Counter
	Fenced   Counter
}

// Snapshot returns the three counts at once.
func (c *ReadPathCounters) Snapshot() (fast, fallback, fenced int64) {
	return c.Fast.Value(), c.Fallback.Value(), c.Fenced.Value()
}

// Histogram counts values in power-of-two buckets: bucket i holds values v
// with 2^(i-1) <= v < 2^i (bucket 0 holds v <= 0 and v == 1 lands in bucket
// 1). It is safe for concurrent use and cheap enough for per-message paths —
// the transport uses one to record frame sizes.
type Histogram struct {
	mu      sync.Mutex
	buckets [65]int64
	count   int64
	sum     int64
	max     int64
}

// HistogramBucket is one non-empty bucket of a Histogram snapshot.
type HistogramBucket struct {
	Lo, Hi int64 // value range [Lo, Hi]
	Count  int64
}

// Observe adds one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bitLen64(uint64(v))
	}
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observed value.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the average observed value, 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []HistogramBucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HistogramBucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		b := HistogramBucket{Count: c}
		if i > 0 {
			b.Lo = int64(1) << (i - 1)
			b.Hi = int64(1)<<i - 1
		}
		out = append(out, b)
	}
	return out
}

// String renders the non-empty buckets compactly, e.g. "[64,127]:12".
func (h *Histogram) String() string {
	bs := h.Buckets()
	if len(bs) == 0 {
		return "empty"
	}
	var sb []byte
	for i, b := range bs {
		if i > 0 {
			sb = append(sb, ' ')
		}
		sb = append(sb, fmt.Sprintf("[%d,%d]:%d", b.Lo, b.Hi, b.Count)...)
	}
	return string(sb)
}

// bitLen64 returns the minimum number of bits to represent v (0 for v==0).
func bitLen64(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
