package lincheck

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/statemachine"
	"repro/internal/types"
)

// The sequential models below restate the semantics of the machines in
// internal/statemachine as pure functions over small comparable states.
// Every machine is deterministic, so each model computes the single legal
// (reply, next state) pair for an input and compares the observed output
// against it; an ambiguous operation (no observed output) takes the same
// transition unconditionally.

func okBytes(payload []byte) []byte {
	out := make([]byte, 0, 1+len(payload))
	out = append(out, byte(statemachine.StatusOK))
	return append(out, payload...)
}

func statusBytes(s statemachine.Status) []byte { return []byte{byte(s)} }

func uvarintBytes(v uint64) []byte {
	w := types.NewWriter(types.UvarintLen(v))
	w.Uvarint(v)
	return w.Bytes()
}

func fnv64(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func fnv64s(s string) uint64 { return fnv64([]byte(s)) }

// deterministicStep adapts an apply(state, input) -> (expectedReply, next)
// spec into a Model.Step. A nil expected reply means the op is malformed or
// unsupported by the model.
func deterministicStep[S comparable](apply func(S, []byte) ([]byte, S)) func(any, []byte, []byte, bool) (bool, any) {
	return func(state any, input, output []byte, hasOutput bool) (bool, any) {
		s := state.(S)
		reply, next := apply(s, input)
		if reply == nil {
			return false, state
		}
		if hasOutput && !bytes.Equal(output, reply) {
			return false, state
		}
		return true, next
	}
}

// ---- register KV ----

// regState is the per-key state of the KV machine: present/absent plus the
// value. Comparable, so Equal is ==.
type regState struct {
	present bool
	val     string
}

// RegisterModel models internal/statemachine's KV machine as one register
// per key, with partition-by-key decomposition. Supported ops: Put, Get,
// Delete, Append, CAS (the cross-key Keys/Size queries are not
// partitionable and are rejected).
func RegisterModel() Model {
	return Model{
		Name:  "kv-register",
		Init:  func() any { return regState{} },
		Step:  deterministicStep(regApply),
		Equal: func(a, b any) bool { return a == b },
		Hash: func(s any) uint64 {
			rs := s.(regState)
			if !rs.present {
				return 0x9e3779b97f4a7c15
			}
			return fnv64s(rs.val)
		},
		Partition:  partitionByKey,
		DescribeOp: describeKVOp,
		DescribeState: func(s any) string {
			rs := s.(regState)
			if !rs.present {
				return "(absent)"
			}
			return fmt.Sprintf("%q", rs.val)
		},
	}
}

func regApply(s regState, input []byte) ([]byte, regState) {
	if len(input) == 0 {
		return nil, s
	}
	r := types.NewReader(input[1:])
	switch statemachine.KVOp(input[0]) {
	case statemachine.KVPut:
		_ = r.String() // key: partitioning already isolated it
		val := r.BytesField()
		if r.Err() != nil {
			return nil, s
		}
		return okBytes(nil), regState{present: true, val: string(val)}
	case statemachine.KVGet:
		_ = r.String() // key: partitioning already isolated it
		if r.Err() != nil {
			return nil, s
		}
		if !s.present {
			return statusBytes(statemachine.StatusNotFound), s
		}
		return okBytes([]byte(s.val)), s
	case statemachine.KVDelete:
		_ = r.String() // key: partitioning already isolated it
		if r.Err() != nil {
			return nil, s
		}
		return okBytes(nil), regState{}
	case statemachine.KVAppend:
		_ = r.String() // key: partitioning already isolated it
		suffix := r.BytesField()
		if r.Err() != nil {
			return nil, s
		}
		return okBytes(nil), regState{present: true, val: s.val + string(suffix)}
	case statemachine.KVCAS:
		_ = r.String() // key: partitioning already isolated it
		expect := r.BytesField()
		newVal := r.BytesField()
		if r.Err() != nil {
			return nil, s
		}
		if !s.present {
			return statusBytes(statemachine.StatusNotFound), s
		}
		if s.val != string(expect) {
			out := append(statusBytes(statemachine.StatusConflict), s.val...)
			return out, s
		}
		return okBytes(nil), regState{present: true, val: string(newVal)}
	default:
		return nil, s
	}
}

// kvOpKey extracts the key of a single-key KV op ("" for anything else).
func kvOpKey(input []byte) (string, bool) {
	if len(input) == 0 {
		return "", false
	}
	switch statemachine.KVOp(input[0]) {
	case statemachine.KVPut, statemachine.KVGet, statemachine.KVDelete,
		statemachine.KVAppend, statemachine.KVCAS:
		r := types.NewReader(input[1:])
		key := r.String()
		if r.Err() != nil {
			return "", false
		}
		return key, true
	default:
		return "", false
	}
}

func partitionByKey(ops []Operation) [][]Operation {
	groups := make(map[string][]Operation)
	for _, op := range ops {
		key, ok := kvOpKey(op.Input)
		if !ok {
			key = "\x00unpartitionable"
		}
		groups[key] = append(groups[key], op)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]Operation, 0, len(groups))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

func describeKVOp(input, output []byte, hasOutput bool) string {
	if len(input) == 0 {
		return "(empty op)"
	}
	r := types.NewReader(input[1:])
	var op string
	switch statemachine.KVOp(input[0]) {
	case statemachine.KVPut:
		op = fmt.Sprintf("put %s=%q", r.String(), r.BytesField())
	case statemachine.KVGet:
		op = fmt.Sprintf("get %s", r.String())
	case statemachine.KVDelete:
		op = fmt.Sprintf("del %s", r.String())
	case statemachine.KVAppend:
		op = fmt.Sprintf("append %s+=%q", r.String(), r.BytesField())
	case statemachine.KVCAS:
		op = fmt.Sprintf("cas %s %q->%q", r.String(), r.BytesField(), r.BytesField())
	default:
		op = fmt.Sprintf("kv-op(%d)", input[0])
	}
	return op + describeReply(output, hasOutput, func(p []byte) string { return fmt.Sprintf("%q", p) })
}

// ---- counter ----

// CounterModel models the counter machine: a single uint64 with add/get/set.
func CounterModel() Model {
	return Model{
		Name:          "counter",
		Init:          func() any { return uint64(0) },
		Step:          deterministicStep(counterApply),
		Equal:         func(a, b any) bool { return a == b },
		Hash:          func(s any) uint64 { return s.(uint64) * 0x9e3779b97f4a7c15 },
		DescribeOp:    describeCounterOp,
		DescribeState: func(s any) string { return fmt.Sprintf("%d", s.(uint64)) },
	}
}

func counterApply(s uint64, input []byte) ([]byte, uint64) {
	if len(input) == 0 {
		return nil, s
	}
	r := types.NewReader(input[1:])
	switch statemachine.CounterOp(input[0]) {
	case statemachine.CounterAdd:
		d := r.Uvarint()
		if r.Err() != nil {
			return nil, s
		}
		return okBytes(uvarintBytes(s + d)), s + d
	case statemachine.CounterGet:
		return okBytes(uvarintBytes(s)), s
	case statemachine.CounterSet:
		v := r.Uvarint()
		if r.Err() != nil {
			return nil, s
		}
		return okBytes(nil), v
	default:
		return nil, s
	}
}

func describeCounterOp(input, output []byte, hasOutput bool) string {
	if len(input) == 0 {
		return "(empty op)"
	}
	r := types.NewReader(input[1:])
	var op string
	switch statemachine.CounterOp(input[0]) {
	case statemachine.CounterAdd:
		op = fmt.Sprintf("add %d", r.Uvarint())
	case statemachine.CounterGet:
		op = "get"
	case statemachine.CounterSet:
		op = fmt.Sprintf("set %d", r.Uvarint())
	default:
		op = fmt.Sprintf("counter-op(%d)", input[0])
	}
	return op + describeReply(output, hasOutput, describeUvarint)
}

// ---- bank ----

// BankModel models the bank machine. The state is the canonical
// "acct=bal;..." encoding (sorted), which keeps it comparable. Transfers
// span accounts, so the bank history is checked as a single partition —
// fine at the concurrency widths the chaos workloads use.
func BankModel() Model {
	return Model{
		Name:       "bank",
		Init:       func() any { return "" },
		Step:       deterministicStep(bankApply),
		Equal:      func(a, b any) bool { return a == b },
		Hash:       func(s any) uint64 { return fnv64s(s.(string)) },
		DescribeOp: describeBankOp,
		DescribeState: func(s any) string {
			if s.(string) == "" {
				return "(no accounts)"
			}
			return s.(string)
		},
	}
}

func bankApply(s string, input []byte) ([]byte, string) {
	if len(input) == 0 {
		return nil, s
	}
	accounts := decodeBankState(s)
	r := types.NewReader(input[1:])
	switch statemachine.BankOp(input[0]) {
	case statemachine.BankOpen:
		acct := r.String()
		initial := r.Uvarint()
		if r.Err() != nil {
			return nil, s
		}
		if _, ok := accounts[acct]; ok {
			return statusBytes(statemachine.StatusConflict), s
		}
		accounts[acct] = initial
		return okBytes(nil), encodeBankState(accounts)
	case statemachine.BankDeposit:
		acct := r.String()
		amount := r.Uvarint()
		if r.Err() != nil {
			return nil, s
		}
		bal, ok := accounts[acct]
		if !ok {
			return statusBytes(statemachine.StatusNotFound), s
		}
		accounts[acct] = bal + amount
		return okBytes(uvarintBytes(bal + amount)), encodeBankState(accounts)
	case statemachine.BankTransfer:
		from := r.String()
		to := r.String()
		amount := r.Uvarint()
		if r.Err() != nil {
			return nil, s
		}
		fb, fok := accounts[from]
		_, tok := accounts[to]
		if !fok || !tok {
			return statusBytes(statemachine.StatusNotFound), s
		}
		if from == to {
			return okBytes(nil), s
		}
		if fb < amount {
			return statusBytes(statemachine.StatusConflict), s
		}
		accounts[from] = fb - amount
		accounts[to] += amount
		return okBytes(nil), encodeBankState(accounts)
	case statemachine.BankBalance:
		acct := r.String()
		if r.Err() != nil {
			return nil, s
		}
		bal, ok := accounts[acct]
		if !ok {
			return statusBytes(statemachine.StatusNotFound), s
		}
		return okBytes(uvarintBytes(bal)), s
	case statemachine.BankTotal:
		var total uint64
		for _, b := range accounts {
			total += b
		}
		return okBytes(uvarintBytes(total)), s
	default:
		return nil, s
	}
}

// encodeBankState renders accounts canonically: sorted "acct=bal" pairs
// joined by ";".
func encodeBankState(accounts map[string]uint64) string {
	names := make([]string, 0, len(accounts))
	for a := range accounts {
		names = append(names, a)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, a := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", a, accounts[a]))
	}
	return strings.Join(parts, ";")
}

func decodeBankState(s string) map[string]uint64 {
	accounts := make(map[string]uint64)
	if s == "" {
		return accounts
	}
	for _, part := range strings.Split(s, ";") {
		eq := strings.LastIndexByte(part, '=')
		if eq < 0 {
			continue
		}
		var bal uint64
		fmt.Sscanf(part[eq+1:], "%d", &bal)
		accounts[part[:eq]] = bal
	}
	return accounts
}

func describeBankOp(input, output []byte, hasOutput bool) string {
	if len(input) == 0 {
		return "(empty op)"
	}
	r := types.NewReader(input[1:])
	var op string
	switch statemachine.BankOp(input[0]) {
	case statemachine.BankOpen:
		op = fmt.Sprintf("open %s=%d", r.String(), r.Uvarint())
	case statemachine.BankDeposit:
		op = fmt.Sprintf("deposit %s+=%d", r.String(), r.Uvarint())
	case statemachine.BankTransfer:
		op = fmt.Sprintf("transfer %s->%s %d", r.String(), r.String(), r.Uvarint())
	case statemachine.BankBalance:
		op = fmt.Sprintf("balance %s", r.String())
	case statemachine.BankTotal:
		op = "total"
	default:
		op = fmt.Sprintf("bank-op(%d)", input[0])
	}
	return op + describeReply(output, hasOutput, describeUvarint)
}

// ---- shared describe helpers ----

func describeUvarint(payload []byte) string {
	r := types.NewReader(payload)
	v := r.Uvarint()
	if r.Err() != nil {
		return fmt.Sprintf("%x", payload)
	}
	return fmt.Sprintf("%d", v)
}

func describeReply(output []byte, hasOutput bool, payload func([]byte) string) string {
	if !hasOutput {
		return " -> ?"
	}
	st := statemachine.ReplyStatus(output)
	body := statemachine.ReplyPayload(output)
	if len(body) == 0 {
		return fmt.Sprintf(" -> %s", st)
	}
	return fmt.Sprintf(" -> %s %s", st, payload(body))
}
