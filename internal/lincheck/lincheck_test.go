package lincheck

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/statemachine"
)

func completed(client string, in, out []byte, call, ret int64) Operation {
	return Operation{Client: client, Input: in, Output: out, Call: call, Return: ret, HasOutput: true}
}

func ambiguous(client string, in []byte, call int64) Operation {
	return Operation{Client: client, Input: in, Call: call}
}

func ok(payload []byte) []byte {
	out := []byte{byte(statemachine.StatusOK)}
	return append(out, payload...)
}

func notFound() []byte { return []byte{byte(statemachine.StatusNotFound)} }

func conflict(cur []byte) []byte {
	out := []byte{byte(statemachine.StatusConflict)}
	return append(out, cur...)
}

func mustCheck(t *testing.T, m Model, ops []Operation) Result {
	t.Helper()
	res := Check(m, ops, Options{Timeout: 30 * time.Second})
	if res.Unknown {
		t.Fatal("checker timed out")
	}
	return res
}

func requireOk(t *testing.T, m Model, ops []Operation) {
	t.Helper()
	if res := mustCheck(t, m, ops); !res.Ok {
		t.Fatalf("valid history rejected:\n%s", res.Counterexample)
	}
}

func requireViolation(t *testing.T, m Model, ops []Operation) Result {
	t.Helper()
	res := mustCheck(t, m, ops)
	if res.Ok {
		t.Fatal("corrupted history accepted as linearizable")
	}
	if res.Counterexample == "" {
		t.Fatal("violation reported without a counterexample dump")
	}
	return res
}

func TestRegisterSequentialHistoryPasses(t *testing.T) {
	requireOk(t, RegisterModel(), []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 0, 1),
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("v1")), 2, 3),
		completed("c1", statemachine.EncodeCAS("k", []byte("v1"), []byte("v2")), ok(nil), 4, 5),
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("v2")), 6, 7),
		completed("c1", statemachine.EncodeDelete("k"), ok(nil), 8, 9),
		completed("c2", statemachine.EncodeGet("k"), notFound(), 10, 11),
		completed("c1", statemachine.EncodeAppend("k", []byte("ab")), ok(nil), 12, 13),
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("ab")), 14, 15),
	})
}

// Mutation 1 (from the issue): drop an applied write. The surviving read
// observes a value nothing ever wrote — must be rejected.
func TestMutationDroppedWriteRejected(t *testing.T) {
	good := []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 0, 1),
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("v1")), 2, 3),
	}
	requireOk(t, RegisterModel(), good)
	requireViolation(t, RegisterModel(), good[1:]) // the put vanished
}

// Mutation 2 (from the issue): reorder a read before its write — the read's
// window closes before the write's opens, so no linearization exists.
func TestMutationReorderedReadRejected(t *testing.T) {
	good := []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 0, 1),
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("v1")), 2, 3),
	}
	requireOk(t, RegisterModel(), good)
	mutated := []Operation{
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("v1")), 0, 1),
		completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 2, 3),
	}
	requireViolation(t, RegisterModel(), mutated)
}

// Mutation 3 (from the issue): duplicate a non-idempotent op. Two
// acknowledged add(5)s both returning 5 means one command applied twice
// under a single acknowledgment (or the dedup layer leaked) — rejected.
func TestMutationDuplicatedAddRejected(t *testing.T) {
	good := []Operation{
		completed("c1", statemachine.EncodeAdd(5), ok(uvarintBytes(5)), 0, 1),
		completed("c1", statemachine.EncodeAdd(5), ok(uvarintBytes(10)), 2, 3),
	}
	requireOk(t, CounterModel(), good)
	dup := []Operation{
		completed("c1", statemachine.EncodeAdd(5), ok(uvarintBytes(5)), 0, 1),
		completed("c1", statemachine.EncodeAdd(5), ok(uvarintBytes(5)), 2, 3),
	}
	requireViolation(t, CounterModel(), dup)
}

func TestStaleReadRejected(t *testing.T) {
	requireViolation(t, RegisterModel(), []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 0, 1),
		completed("c1", statemachine.EncodePut("k", []byte("v2")), ok(nil), 2, 3),
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("v1")), 4, 5),
	})
}

// Concurrent operations may linearize in either order.
func TestConcurrentWritesEitherOrder(t *testing.T) {
	base := []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 0, 10),
		completed("c2", statemachine.EncodePut("k", []byte("v2")), ok(nil), 0, 10),
	}
	for _, final := range []string{"v1", "v2"} {
		ops := append(append([]Operation(nil), base...),
			completed("c3", statemachine.EncodeGet("k"), ok([]byte(final)), 11, 12))
		requireOk(t, RegisterModel(), ops)
	}
	ops := append(append([]Operation(nil), base...),
		completed("c3", statemachine.EncodeGet("k"), ok([]byte("v3")), 11, 12))
	requireViolation(t, RegisterModel(), ops)
}

// An ambiguous (timed-out) write may or may not have taken effect; both
// subsequent observations are legal, but a third value is not.
func TestAmbiguousWriteEitherOutcome(t *testing.T) {
	for _, observed := range []string{"v1", "v2"} {
		requireOk(t, RegisterModel(), []Operation{
			completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 0, 1),
			ambiguous("c2", statemachine.EncodePut("k", []byte("v2")), 2),
			completed("c3", statemachine.EncodeGet("k"), ok([]byte(observed)), 10, 11),
		})
	}
	requireViolation(t, RegisterModel(), []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("v1")), ok(nil), 0, 1),
		ambiguous("c2", statemachine.EncodePut("k", []byte("v2")), 2),
		completed("c3", statemachine.EncodeGet("k"), ok([]byte("v3")), 10, 11),
	})
}

// An ambiguous op must not be REQUIRED to execute before its call time: a
// read completing before the ambiguous write was invoked cannot see it.
func TestAmbiguousOpCannotTimeTravel(t *testing.T) {
	requireViolation(t, RegisterModel(), []Operation{
		completed("c1", statemachine.EncodeGet("k"), ok([]byte("v9")), 0, 1),
		ambiguous("c2", statemachine.EncodePut("k", []byte("v9")), 5),
	})
}

func TestConcurrentCASOneWinner(t *testing.T) {
	setup := completed("c0", statemachine.EncodePut("k", []byte("a")), ok(nil), 0, 1)
	// Two CAS a->b racing: exactly one may succeed.
	requireOk(t, RegisterModel(), []Operation{
		setup,
		completed("c1", statemachine.EncodeCAS("k", []byte("a"), []byte("b")), ok(nil), 2, 10),
		completed("c2", statemachine.EncodeCAS("k", []byte("a"), []byte("b")), conflict([]byte("b")), 2, 10),
	})
	requireViolation(t, RegisterModel(), []Operation{
		setup,
		completed("c1", statemachine.EncodeCAS("k", []byte("a"), []byte("b")), ok(nil), 2, 10),
		completed("c2", statemachine.EncodeCAS("k", []byte("a"), []byte("b")), ok(nil), 2, 10),
	})
}

func TestBankSemantics(t *testing.T) {
	good := []Operation{
		completed("adm", statemachine.EncodeOpen("a", 10), ok(nil), 0, 1),
		completed("adm", statemachine.EncodeOpen("b", 0), ok(nil), 2, 3),
		completed("c1", statemachine.EncodeTransfer("a", "b", 5), ok(nil), 4, 5),
		completed("c2", statemachine.EncodeBalance("a"), ok(uvarintBytes(5)), 6, 7),
		completed("c2", statemachine.EncodeTotal(), ok(uvarintBytes(10)), 8, 9),
		completed("c1", statemachine.EncodeTransfer("a", "b", 100), conflict(nil), 10, 11),
		completed("adm", statemachine.EncodeOpen("a", 1), conflict(nil), 12, 13),
		completed("c2", statemachine.EncodeDeposit("z", 1), notFound(), 14, 15),
	}
	requireOk(t, BankModel(), good)

	// Mutation: the acknowledged transfer left no trace — balance stayed 10.
	bad := append([]Operation(nil), good...)
	bad[3] = completed("c2", statemachine.EncodeBalance("a"), ok(uvarintBytes(10)), 6, 7)
	requireViolation(t, BankModel(), bad)
}

func TestPartitionByKeyDecomposes(t *testing.T) {
	var ops []Operation
	ts := int64(0)
	for k := 0; k < 6; k++ {
		key := fmt.Sprintf("k%d", k)
		ops = append(ops,
			completed("c1", statemachine.EncodePut(key, []byte("x")), ok(nil), ts, ts+1),
			completed("c2", statemachine.EncodeGet(key), ok([]byte("x")), ts+2, ts+3),
		)
		ts += 4
	}
	res := mustCheck(t, RegisterModel(), ops)
	if !res.Ok {
		t.Fatalf("valid history rejected:\n%s", res.Counterexample)
	}
	if res.Partitions != 6 {
		t.Fatalf("expected 6 partitions, got %d", res.Partitions)
	}
}

func TestCounterexampleIsMinimized(t *testing.T) {
	// 40 irrelevant ops on other keys plus a 2-op violation; the dump must
	// shrink to (roughly) the violating pair.
	var ops []Operation
	ts := int64(0)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("pad%d", i)
		ops = append(ops,
			completed("c1", statemachine.EncodePut(key, []byte("x")), ok(nil), ts, ts+1),
			completed("c2", statemachine.EncodeGet(key), ok([]byte("x")), ts+2, ts+3),
		)
		ts += 4
	}
	// Violation on key kx: pad ops are in other partitions, but the kx
	// partition itself gets padding too so minimization has work to do.
	for i := 0; i < 10; i++ {
		ops = append(ops, completed("c1", statemachine.EncodePut("kx", []byte("ok")), ok(nil), ts, ts+1))
		ts += 2
	}
	ops = append(ops, completed("c2", statemachine.EncodeGet("kx"), ok([]byte("never-written")), ts, ts+1))
	res := requireViolation(t, RegisterModel(), ops)
	if !strings.Contains(res.Counterexample, "minimized from") {
		t.Fatalf("no minimization marker:\n%s", res.Counterexample)
	}
	// The minimized core of this violation is the single impossible read.
	if n := strings.Count(res.Counterexample, "\n"); n > 4 {
		t.Fatalf("counterexample not minimized (%d lines):\n%s", n, res.Counterexample)
	}
}

// TestMutationFuzz drives the checker with randomized valid histories (from
// an actual sequential execution with overlapping windows) and guaranteed
// violations (a read of a value that never existed). 100% of seeded bad
// histories must be flagged.
func TestMutationFuzz(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		machine := statemachine.NewKVStore()
		var ops []Operation
		ts := int64(0)
		clients := []string{"c1", "c2", "c3"}
		for i := 0; i < 120; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(4))
			var in []byte
			switch rng.Intn(4) {
			case 0:
				in = statemachine.EncodePut(key, []byte(fmt.Sprintf("v%d", rng.Intn(5))))
			case 1:
				in = statemachine.EncodeGet(key)
			case 2:
				in = statemachine.EncodeAppend(key, []byte{byte('a' + rng.Intn(3))})
			default:
				in = statemachine.EncodeCAS(key,
					[]byte(fmt.Sprintf("v%d", rng.Intn(5))), []byte(fmt.Sprintf("v%d", rng.Intn(5))))
			}
			out := machine.Apply(in)
			// Windows overlap (ret jitter) but preserve the apply order.
			ops = append(ops, completed(clients[rng.Intn(3)], in, out, ts, ts+1+int64(rng.Intn(3))))
			ts += 2
		}
		requireOk(t, RegisterModel(), ops)

		// Seeded bug: corrupt one read to a value nothing ever wrote.
		bad := append([]Operation(nil), ops...)
		idx := -1
		for i, op := range bad {
			if statemachine.KVOp(op.Input[0]) == statemachine.KVGet {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		bad[idx].Output = ok([]byte("value-that-never-existed"))
		requireViolation(t, RegisterModel(), bad)
	}
}

// TestCheckerThroughput10k: a 10k-op multi-key history must check in
// seconds, not minutes (the acceptance budget for the end-to-end run is
// 30s; the checker itself should be far under that).
func TestCheckerThroughput10k(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	machine := statemachine.NewKVStore()
	clients := make([]string, 6)
	for i := range clients {
		clients[i] = fmt.Sprintf("c%d", i)
	}
	var ops []Operation
	ts := int64(0)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(8))
		var in []byte
		switch rng.Intn(3) {
		case 0:
			in = statemachine.EncodePut(key, []byte(fmt.Sprintf("v%d", rng.Intn(6))))
		case 1:
			in = statemachine.EncodeGet(key)
		default:
			in = statemachine.EncodeAppend(key, []byte{byte('a' + rng.Intn(4))})
		}
		out := machine.Apply(in)
		ops = append(ops, completed(clients[rng.Intn(len(clients))], in, out, ts, ts+1+int64(rng.Intn(4))))
		ts += 2
	}
	res := Check(RegisterModel(), ops, Options{Timeout: 20 * time.Second})
	if res.Unknown {
		t.Fatalf("10k-op check exceeded 20s (took %s)", res.Elapsed)
	}
	if !res.Ok {
		t.Fatalf("valid 10k-op history rejected:\n%s", res.Counterexample)
	}
	t.Logf("checked %d ops in %d partitions in %s", res.Ops, res.Partitions, res.Elapsed)
}

func TestFromHistoryConversion(t *testing.T) {
	rec := history.New()
	h1 := rec.Invoke("c1", 1, statemachine.EncodeAdd(1))
	rec.Ok(h1, ok(uvarintBytes(1)))
	h2 := rec.Invoke("c1", 2, statemachine.EncodeAdd(1))
	rec.Info(h2)
	h3 := rec.Invoke("c2", 1, statemachine.EncodeCounterGet())
	rec.Fail(h3)
	ops := FromHistory(rec.Ops())
	if len(ops) != 2 {
		t.Fatalf("expected 2 checkable ops (fail dropped), got %d", len(ops))
	}
	if !ops[0].HasOutput || ops[1].HasOutput {
		t.Fatalf("outcome mapping wrong: %+v", ops)
	}
	res := CheckHistory(CounterModel(), rec.Ops(), Options{Timeout: 5 * time.Second})
	if !res.Ok {
		t.Fatalf("history rejected:\n%s", res.Counterexample)
	}
}

// Mutation 4 (speculative start): a joiner that applies a speculative
// decision — or serves a read — from its pre-install state. The Put is
// acknowledged before the reconfiguration and folded into the snapshot the
// joiner is still fetching; a joiner that answers the Get from its empty
// machine before the install produces a read of state that never existed
// at that point in time. The checker must reject it.
func TestMutationSpeculativePreInstallReadRejected(t *testing.T) {
	good := []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("pre")), ok(nil), 0, 1),
		completed("c2", statemachine.EncodeGet("k"), ok([]byte("pre")), 2, 3),
	}
	requireOk(t, RegisterModel(), good)
	mutated := []Operation{
		completed("c1", statemachine.EncodePut("k", []byte("pre")), ok(nil), 0, 1),
		// Served by the broken joiner from its not-yet-installed machine.
		completed("c2", statemachine.EncodeGet("k"), notFound(), 2, 3),
	}
	requireViolation(t, RegisterModel(), mutated)
}

// Mutation 5 (speculative start): a broken base-index skip. The snapshot the
// joiner installs already folds in add(5) (decided at a slot ≤ the snapshot's
// base index); a joiner that replays the parked decision on top of the
// install applies it twice, so the next add observes an inflated total. The
// checker must reject the resulting history.
func TestMutationSpeculativeDoubleApplyRejected(t *testing.T) {
	good := []Operation{
		completed("c1", statemachine.EncodeAdd(5), ok(uvarintBytes(5)), 0, 1),
		completed("c2", statemachine.EncodeAdd(2), ok(uvarintBytes(7)), 2, 3),
	}
	requireOk(t, CounterModel(), good)
	mutated := []Operation{
		completed("c1", statemachine.EncodeAdd(5), ok(uvarintBytes(5)), 0, 1),
		// 12 = 5 applied from the snapshot AND from the parked decision, +2.
		completed("c2", statemachine.EncodeAdd(2), ok(uvarintBytes(12)), 2, 3),
	}
	requireViolation(t, CounterModel(), mutated)
}
