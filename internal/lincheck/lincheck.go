// Package lincheck decides whether a concurrent operation history is
// linearizable with respect to a sequential model. The algorithm is the
// Wing–Gill search with Lowe's memoization (the same shape as porcupine): a
// depth-first enumeration of linearization points over a doubly-linked list
// of call/return events, pruned by a cache of (linearized-set, state)
// configurations already proven fruitless.
//
// Two refinements matter for histories recorded under faults:
//
//   - Ambiguous operations (history.OutcomeInfo) have no observed output and
//     no return bound. They MAY linearize — at any point after their call —
//     or may never have executed at all. The search therefore only requires
//     the completed operations to linearize; ambiguous ones are optional
//     interleavings whose effect (if chosen) follows the model's transition
//     for an unknown output.
//
//   - Models can declare a Partition function (e.g. per-key for a register
//     KV): each partition is checked independently, which turns the
//     exponential search into many small ones and lets 10k+-op histories
//     check in well under a second.
package lincheck

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/history"
)

// Operation is one client operation as seen by the checker.
type Operation struct {
	Client string
	Input  []byte
	Output []byte // valid only when HasOutput
	Call   int64  // invocation timestamp (any monotonic unit)
	Return int64  // completion timestamp; ignored when !HasOutput
	// HasOutput marks a completed operation: it must linearize within
	// [Call, Return] and its Output must match the model. Operations
	// without an output are ambiguous: they may linearize anywhere at or
	// after Call, or not at all.
	HasOutput bool
}

// Model is a sequential specification. States are opaque values; Step must
// treat its input state as immutable and return a fresh state on mutation.
type Model struct {
	Name string
	// Init returns the initial state.
	Init func() any
	// Step applies input to state. When hasOutput is true it returns
	// whether output is the legal result; when false (ambiguous op) it
	// applies the operation's deterministic effect and returns true.
	Step func(state any, input, output []byte, hasOutput bool) (bool, any)
	// Equal reports state equality; Hash must agree with it.
	Equal func(a, b any) bool
	Hash  func(state any) uint64
	// Partition optionally splits a history into independently-checkable
	// sub-histories (nil = single partition).
	Partition func(ops []Operation) [][]Operation
	// DescribeOp and DescribeState render counterexamples (optional).
	DescribeOp    func(input, output []byte, hasOutput bool) string
	DescribeState func(state any) string
}

// Options tunes a Check run.
type Options struct {
	// Timeout bounds the whole check; on expiry the result is Unknown.
	// Zero means no limit.
	Timeout time.Duration
	// MinimizeBudget bounds greedy counterexample shrinking (default 2s;
	// negative disables minimization).
	MinimizeBudget time.Duration
}

// Result is the verdict for one history.
type Result struct {
	Ok         bool // history is linearizable
	Unknown    bool // timed out before a verdict; Ok is meaningless
	Ops        int  // operations checked (completed + ambiguous)
	Completed  int  // operations with observed outputs
	Partitions int
	Elapsed    time.Duration
	// Counterexample holds a human-readable dump of a minimized failing
	// partition when Ok is false.
	Counterexample string
}

// Check decides linearizability of ops against m.
func Check(m Model, ops []Operation, opts Options) Result {
	start := time.Now()
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	parts := [][]Operation{ops}
	if m.Partition != nil {
		parts = m.Partition(ops)
	}
	res := Result{Ok: true, Partitions: len(parts)}
	for _, p := range parts {
		res.Ops += len(p)
		for _, op := range p {
			if op.HasOutput {
				res.Completed++
			}
		}
	}
	for _, p := range parts {
		ok, unknown := checkPartition(m, p, deadline)
		if unknown {
			res.Unknown = true
			res.Ok = false
			break
		}
		if !ok {
			res.Ok = false
			res.Counterexample = counterexample(m, p, opts, deadline)
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// CheckHistory converts a recorded history and checks it. Failed operations
// are dropped (they never executed); pending and ambiguous operations become
// output-less checker operations.
func CheckHistory(m Model, ops []history.Op, opts Options) Result {
	return Check(m, FromHistory(ops), opts)
}

// FromHistory converts recorder output to checker operations.
func FromHistory(ops []history.Op) []Operation {
	out := make([]Operation, 0, len(ops))
	for _, op := range ops {
		switch op.Outcome {
		case history.OutcomeOk:
			ret := op.Return
			if ret <= op.Call {
				ret = op.Call + 1
			}
			out = append(out, Operation{
				Client:    string(op.Client),
				Input:     op.Input,
				Output:    op.Output,
				Call:      op.Call,
				Return:    ret,
				HasOutput: true,
			})
		case history.OutcomePending, history.OutcomeInfo:
			out = append(out, Operation{
				Client: string(op.Client),
				Input:  op.Input,
				Call:   op.Call,
			})
		case history.OutcomeFail:
			// Certainly never executed; irrelevant to linearizability.
		}
	}
	return out
}

// event node in the doubly-linked search list. A completed operation
// contributes a call node and a return node; an ambiguous one only a call
// node (match == nil).
type node struct {
	op    int // index into the partition's op slice
	isRet bool
	match *node // call -> its return node (nil for ambiguous calls)
	prev  *node
	next  *node
}

func lift(call *node) {
	call.prev.next = call.next
	if call.next != nil {
		call.next.prev = call.prev
	}
	if ret := call.match; ret != nil {
		ret.prev.next = ret.next
		if ret.next != nil {
			ret.next.prev = ret.prev
		}
	}
}

func unlift(call *node) {
	if ret := call.match; ret != nil {
		ret.prev.next = ret
		if ret.next != nil {
			ret.next.prev = ret
		}
	}
	call.prev.next = call
	if call.next != nil {
		call.next.prev = call
	}
}

// buildList lays out call/return events in time order behind a sentinel
// head. Ties put calls before returns: overlapping-at-the-boundary ops are
// treated as concurrent, which can only make the checker more permissive —
// never a false rejection.
func buildList(ops []Operation) *node {
	type ev struct {
		t     int64
		isRet bool
		op    int
	}
	evs := make([]ev, 0, 2*len(ops))
	for i, op := range ops {
		evs = append(evs, ev{t: op.Call, op: i})
		if op.HasOutput {
			evs = append(evs, ev{t: op.Return, isRet: true, op: i})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return !evs[a].isRet && evs[b].isRet
	})
	head := &node{op: -1}
	prev := head
	calls := make(map[int]*node, len(ops))
	for _, e := range evs {
		n := &node{op: e.op, isRet: e.isRet, prev: prev}
		prev.next = n
		prev = n
		if e.isRet {
			calls[e.op].match = n
		} else {
			calls[e.op] = n
		}
	}
	return head
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equals(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, w := range b {
		h ^= w
		h *= 1099511628211
	}
	return h
}

type cacheEntry struct {
	lin   bitset
	state any
}

// checkPartition runs the WGL search over one partition. It returns
// (linearizable, timedOut).
func checkPartition(m Model, ops []Operation, deadline time.Time) (bool, bool) {
	completed := 0
	for _, op := range ops {
		if op.HasOutput {
			completed++
		}
	}
	if completed == 0 {
		return true, false // nothing observed, trivially fine
	}
	head := buildList(ops)
	state := m.Init()
	linearized := newBitset(len(ops))
	cache := make(map[uint64][]cacheEntry)
	type frame struct {
		call  *node
		state any
	}
	var stack []frame
	remaining := completed
	entry := head.next
	steps := 0
	for remaining > 0 {
		steps++
		if steps%4096 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return false, true
		}
		if entry != nil && !entry.isRet {
			op := ops[entry.op]
			ok, next := m.Step(state, op.Input, op.Output, op.HasOutput)
			if ok {
				linearized.set(entry.op)
				key := linearized.hash() ^ m.Hash(next)
				if cacheHit(cache[key], linearized, next, m) {
					linearized.clear(entry.op)
					entry = entry.next
					continue
				}
				cache[key] = append(cache[key], cacheEntry{lin: linearized.clone(), state: next})
				stack = append(stack, frame{call: entry, state: state})
				state = next
				if op.HasOutput {
					remaining--
				}
				lift(entry)
				entry = head.next
				continue
			}
			entry = entry.next
			continue
		}
		// A return node (some completed op could not linearize before its
		// own return) or the end of the list: backtrack.
		if len(stack) == 0 {
			return false, false
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = f.state
		linearized.clear(f.call.op)
		if ops[f.call.op].HasOutput {
			remaining++
		}
		unlift(f.call)
		entry = f.call.next
	}
	return true, false
}

func cacheHit(entries []cacheEntry, lin bitset, state any, m Model) bool {
	for _, e := range entries {
		if e.lin.equals(lin) && m.Equal(e.state, state) {
			return true
		}
	}
	return false
}

// counterexample produces a human-readable dump of a failing partition,
// greedily minimized: drop one op at a time, keep the removal whenever the
// remainder still fails, within the time budget.
func counterexample(m Model, ops []Operation, opts Options, deadline time.Time) string {
	budget := opts.MinimizeBudget
	if budget == 0 {
		budget = 2 * time.Second
	}
	minimized := ops
	if budget > 0 {
		stop := time.Now().Add(budget)
		if !deadline.IsZero() && deadline.Before(stop) {
			stop = deadline
		}
		cur := append([]Operation(nil), ops...)
		for i := 0; i < len(cur); {
			if time.Now().After(stop) {
				break
			}
			cand := append(append([]Operation(nil), cur[:i]...), cur[i+1:]...)
			if ok, unknown := checkPartition(m, cand, stop); !ok && !unknown {
				cur = cand // still fails without op i: keep it out
				continue
			}
			i++
		}
		minimized = cur
	}
	idx := make([]int, len(minimized))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return minimized[idx[a]].Call < minimized[idx[b]].Call })
	var b strings.Builder
	fmt.Fprintf(&b, "non-linearizable: %d op(s) (minimized from %d), model %s\n",
		len(minimized), len(ops), m.Name)
	const maxDump = 64
	for n, i := range idx {
		if n == maxDump {
			fmt.Fprintf(&b, "  ... %d more\n", len(idx)-maxDump)
			break
		}
		op := minimized[i]
		desc := fmt.Sprintf("in=%x out=%x", op.Input, op.Output)
		if m.DescribeOp != nil {
			desc = m.DescribeOp(op.Input, op.Output, op.HasOutput)
		}
		window := fmt.Sprintf("[%d, %d]", op.Call, op.Return)
		if !op.HasOutput {
			window = fmt.Sprintf("[%d, ?]", op.Call)
		}
		fmt.Fprintf(&b, "  %-8s %-40s %s\n", op.Client, desc, window)
	}
	return b.String()
}
