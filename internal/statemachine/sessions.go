package statemachine

import (
	"fmt"

	"repro/internal/types"
)

// Sessioned wraps a Machine with per-client-session deduplication, the
// mechanism that makes command re-submission across retries and
// reconfiguration boundaries idempotent (at-most-once execution).
//
// For every client it remembers the highest applied sequence number and the
// reply to that command. A command with seq equal to the remembered one
// returns the cached reply without re-applying; a smaller seq is stale and
// returns no reply. Session state is part of the snapshot, so deduplication
// survives state transfer to a successor configuration — the property the
// paper's composition depends on.
//
// The table may be bounded with SetSessionLimit, which evicts the session
// least recently written to. Eviction is deterministic across replicas:
// recency is defined by applied-command order (identical on every replica by
// agreement), never by local reads, and a bounded table snapshots its
// sessions in recency order so a restored replica reconstructs the identical
// eviction order.
type Sessioned struct {
	inner    Machine
	sessions map[types.NodeID]sessionState

	// Bounded-table state. The recency list is maintained regardless of
	// limit (O(1) per applied write) so the bound can be enabled at any
	// point; eviction only happens when limit > 0.
	limit            int
	lruHead, lruTail *lruNode
	lruIndex         map[types.NodeID]*lruNode

	// Transient chunked-restore state (see RestoreChunk/FinishRestore).
	restoredSessions bool
	restoreParts     map[int][]byte
}

var _ ChunkedSnapshotter = (*Sessioned)(nil)

type sessionState struct {
	lastSeq   uint64
	lastReply []byte
}

// lruNode is an intrusive list node ordering sessions by last applied write:
// head = least recently written (next eviction victim), tail = most recent.
type lruNode struct {
	client     types.NodeID
	prev, next *lruNode
}

// NewSessioned wraps inner with a fresh session table.
func NewSessioned(inner Machine) *Sessioned {
	return &Sessioned{
		inner:    inner,
		sessions: make(map[types.NodeID]sessionState),
		lruIndex: make(map[types.NodeID]*lruNode),
	}
}

// SetSessionLimit bounds the session table to at most n entries (0 =
// unbounded), evicting the least recently written session past the bound.
// Every replica of a machine must use the same limit: the limit changes both
// which sessions survive and the snapshot encoding order, so divergent
// limits would diverge replica state. An evicted client that retries is
// refused (treated as a stale duplicate) rather than risked a re-execution —
// see ApplyCommand.
func (s *Sessioned) SetSessionLimit(n int) {
	if n < 0 {
		n = 0
	}
	s.limit = n
	s.enforceLimit()
}

// SessionLimit returns the configured bound (0 = unbounded).
func (s *Sessioned) SessionLimit() int { return s.limit }

// noteWrite moves client to the most-recent end of the recency list,
// inserting it if absent. Called only for applied (non-duplicate) writes, so
// list order is a pure function of the replicated command sequence.
func (s *Sessioned) noteWrite(client types.NodeID) {
	n := s.lruIndex[client]
	if n == nil {
		n = &lruNode{client: client}
		s.lruIndex[client] = n
	} else {
		if n == s.lruTail {
			return
		}
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			s.lruHead = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
		n.prev, n.next = nil, nil
	}
	if s.lruTail == nil {
		s.lruHead, s.lruTail = n, n
	} else {
		n.prev = s.lruTail
		s.lruTail.next = n
		s.lruTail = n
	}
}

// enforceLimit evicts least-recently-written sessions until the table fits
// the bound. No-op when unbounded.
func (s *Sessioned) enforceLimit() {
	if s.limit <= 0 {
		return
	}
	for len(s.sessions) > s.limit && s.lruHead != nil {
		victim := s.lruHead
		s.lruHead = victim.next
		if s.lruHead != nil {
			s.lruHead.prev = nil
		} else {
			s.lruTail = nil
		}
		victim.next = nil
		delete(s.lruIndex, victim.client)
		delete(s.sessions, victim.client)
	}
}

// rebuildLRU resets the recency list to the given order (least recently
// written first), used after a snapshot restore.
func (s *Sessioned) rebuildLRU(order []types.NodeID) {
	s.lruIndex = make(map[types.NodeID]*lruNode, len(order))
	s.lruHead, s.lruTail = nil, nil
	for _, c := range order {
		s.noteWrite(c)
	}
}

// ApplyCommand applies cmd with deduplication. It returns the reply and
// whether the command was recognized as a duplicate (in which case the inner
// machine was not touched). System commands (empty Client) bypass dedup.
// Noop commands are ignored entirely.
//
// Under a session limit, a command with seq > 1 from a client the table does
// not know is refused as a stale duplicate rather than applied: the session
// was evicted, and without its lastSeq the command cannot be distinguished
// from an already-executed retry. Refusal is safe (at-most-once beats
// at-least-once here); genuinely new clients always start at seq 1 and are
// always admitted.
func (s *Sessioned) ApplyCommand(cmd types.Command) (reply []byte, duplicate bool) {
	if cmd.Kind == types.CmdNoop {
		return nil, false
	}
	if cmd.Client == "" {
		return s.inner.Apply(cmd.Data), false
	}
	sess, ok := s.sessions[cmd.Client]
	if ok && cmd.Seq <= sess.lastSeq {
		if cmd.Seq == sess.lastSeq {
			return sess.lastReply, true
		}
		return nil, true // stale retry; the reply is long gone
	}
	if !ok && s.limit > 0 && cmd.Seq > 1 {
		return nil, true // evicted session: refuse, never re-execute
	}
	reply = s.inner.Apply(cmd.Data)
	s.sessions[cmd.Client] = sessionState{lastSeq: cmd.Seq, lastReply: reply}
	s.noteWrite(cmd.Client)
	s.enforceLimit()
	return reply, false
}

// LastSeq returns the highest applied sequence number for client (0 if the
// session is unknown).
func (s *Sessioned) LastSeq(client types.NodeID) uint64 {
	return s.sessions[client].lastSeq
}

// ReadOnly reports whether op cannot change the inner machine's state,
// delegating to the inner machine's ReadOnlyDetector (false if absent).
func (s *Sessioned) ReadOnly(op []byte) bool {
	if d, ok := s.inner.(ReadOnlyDetector); ok {
		return d.ReadOnly(op)
	}
	return false
}

// ApplyRead executes a read-only op against the inner machine directly,
// bypassing the session table: fast-path reads are not logged, so they must
// not advance session state either (a retried read simply re-executes,
// which is harmless for an op that changes nothing). The caller is
// responsible for only passing ops for which ReadOnly is true.
func (s *Sessioned) ApplyRead(op []byte) []byte {
	return s.inner.Apply(op)
}

// Sessions returns the number of tracked client sessions.
func (s *Sessioned) Sessions() int { return len(s.sessions) }

// snapshotClients returns the clients in deterministic encode order. A
// bounded table encodes in recency order (least recently written first) so
// the restoring replica rebuilds the identical eviction order; an unbounded
// table keeps the historical sorted encoding, where order carries no state.
func (s *Sessioned) snapshotClients() []types.NodeID {
	clients := make([]types.NodeID, 0, len(s.sessions))
	if s.limit > 0 {
		for n := s.lruHead; n != nil; n = n.next {
			clients = append(clients, n.client)
		}
		return clients
	}
	for c := range s.sessions {
		clients = append(clients, c)
	}
	return types.SortNodeIDs(clients)
}

// Snapshot serializes the session table and the inner machine's state into a
// single deterministic blob.
func (s *Sessioned) Snapshot() []byte {
	clients := s.snapshotClients()
	inner := s.inner.Snapshot()
	w := types.NewWriter(16 + 32*len(clients) + len(inner))
	w.Uvarint(uint64(len(clients)))
	for _, c := range clients {
		sess := s.sessions[c]
		w.NodeID(c)
		w.Uvarint(sess.lastSeq)
		w.BytesField(sess.lastReply)
	}
	w.BytesField(inner)
	return w.Bytes()
}

// Restore replaces both the session table and the inner machine's state.
func (s *Sessioned) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("session snapshot header: %w", err)
	}
	sessions := make(map[types.NodeID]sessionState, n)
	order := make([]types.NodeID, 0, n)
	for i := uint64(0); i < n; i++ {
		c := r.NodeID()
		seq := r.Uvarint()
		rep := r.BytesField()
		if err := r.Err(); err != nil {
			return fmt.Errorf("session snapshot entry %d: %w", i, err)
		}
		sessions[c] = sessionState{lastSeq: seq, lastReply: rep}
		order = append(order, c)
	}
	inner := r.BytesField()
	if err := r.Err(); err != nil {
		return fmt.Errorf("session snapshot body: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in session snapshot", types.ErrCodec)
	}
	if err := s.inner.Restore(inner); err != nil {
		return fmt.Errorf("restore inner machine: %w", err)
	}
	s.sessions = sessions
	s.rebuildLRU(order)
	s.enforceLimit()
	return nil
}

// encodeSessions serializes the session table alone (in snapshotClients
// order), the payload of chunk 0 in a chunked Sessioned snapshot.
func (s *Sessioned) encodeSessions() []byte {
	clients := s.snapshotClients()
	w := types.NewWriter(8 + 32*len(clients))
	w.Uvarint(uint64(len(clients)))
	for _, c := range clients {
		sess := s.sessions[c]
		w.NodeID(c)
		w.Uvarint(sess.lastSeq)
		w.BytesField(sess.lastReply)
	}
	return w.Bytes()
}

func (s *Sessioned) decodeSessions(data []byte) error {
	r := types.NewReader(data)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("session chunk header: %w", err)
	}
	sessions := make(map[types.NodeID]sessionState, n)
	order := make([]types.NodeID, 0, n)
	for i := uint64(0); i < n; i++ {
		c := r.NodeID()
		seq := r.Uvarint()
		rep := r.BytesField()
		if err := r.Err(); err != nil {
			return fmt.Errorf("session chunk entry %d: %w", i, err)
		}
		sessions[c] = sessionState{lastSeq: seq, lastReply: rep}
		order = append(order, c)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in session chunk", types.ErrCodec)
	}
	s.sessions = sessions
	s.rebuildLRU(order)
	s.enforceLimit()
	return nil
}

// sessionedFork is a chunked snapshot of a Sessioned machine. Chunk 0 is the
// session table (serialized eagerly at fork time — O(clients), cheap).
// If the inner machine supports chunked snapshots, chunks 1..n are the inner
// fork's chunks 0..n-1 (SnapshotFormatShards). Otherwise the inner machine's
// monolithic Snapshot() is taken eagerly and chunks 1..n are consecutive
// BlobChunkSize ranges of it (SnapshotFormatBlob).
type sessionedFork struct {
	sessions []byte
	inner    SnapshotSource // nil in blob mode
	blob     []byte         // inner.Snapshot() in blob mode
}

// ChunkFormat reports the chunk layout a fork of this machine would use,
// letting a restorer validate a manifest before fetching chunks.
func (s *Sessioned) ChunkFormat() byte {
	if _, ok := s.inner.(ChunkedSnapshotter); ok {
		return SnapshotFormatShards
	}
	return SnapshotFormatBlob
}

// ForkSnapshot implements ChunkedSnapshotter. With a chunked inner machine
// this is O(shards + clients); with a monolithic inner machine the inner
// Snapshot() is still serialized eagerly (the fallback the capability exists
// to avoid, retained for machines that don't opt in).
func (s *Sessioned) ForkSnapshot() SnapshotSource {
	f := &sessionedFork{sessions: s.encodeSessions()}
	if cs, ok := s.inner.(ChunkedSnapshotter); ok {
		f.inner = cs.ForkSnapshot()
	} else {
		f.blob = s.inner.Snapshot()
	}
	return f
}

func (f *sessionedFork) Format() byte {
	if f.inner != nil {
		return SnapshotFormatShards
	}
	return SnapshotFormatBlob
}

func (f *sessionedFork) NumChunks() int {
	if f.inner != nil {
		return 1 + f.inner.NumChunks()
	}
	return 1 + (len(f.blob)+BlobChunkSize-1)/BlobChunkSize
}

func (f *sessionedFork) Chunk(i int) []byte {
	if i == 0 {
		return f.sessions
	}
	if f.inner != nil {
		return f.inner.Chunk(i - 1)
	}
	lo := (i - 1) * BlobChunkSize
	hi := lo + BlobChunkSize
	if hi > len(f.blob) {
		hi = len(f.blob)
	}
	return f.blob[lo:hi]
}

// RestoreChunk implements ChunkedSnapshotter. Chunk 0 replaces the session
// table; later chunks go to the inner machine (shard mode) or are buffered
// until FinishRestore reassembles the monolithic snapshot (blob mode).
func (s *Sessioned) RestoreChunk(index int, data []byte) error {
	if index < 0 {
		return fmt.Errorf("%w: negative session chunk index %d", types.ErrCodec, index)
	}
	if index == 0 {
		if err := s.decodeSessions(data); err != nil {
			return err
		}
		s.restoredSessions = true
		return nil
	}
	if cs, ok := s.inner.(ChunkedSnapshotter); ok {
		return cs.RestoreChunk(index-1, data)
	}
	if s.restoreParts == nil {
		s.restoreParts = make(map[int][]byte)
	}
	s.restoreParts[index] = data
	return nil
}

// FinishRestore implements ChunkedSnapshotter: validates that all total
// chunks arrived and, in blob mode, reassembles and restores the inner
// machine's monolithic snapshot.
func (s *Sessioned) FinishRestore(total int) error {
	if total < 1 {
		return fmt.Errorf("%w: sessioned snapshot needs at least 1 chunk, got %d", types.ErrCodec, total)
	}
	if !s.restoredSessions {
		return fmt.Errorf("%w: session chunk 0 missing from chunked restore", types.ErrCodec)
	}
	s.restoredSessions = false
	if cs, ok := s.inner.(ChunkedSnapshotter); ok {
		return cs.FinishRestore(total - 1)
	}
	size := 0
	for i := 1; i < total; i++ {
		part, ok := s.restoreParts[i]
		if !ok {
			return fmt.Errorf("%w: blob chunk %d missing from chunked restore", types.ErrCodec, i)
		}
		size += len(part)
	}
	blob := make([]byte, 0, size)
	for i := 1; i < total; i++ {
		blob = append(blob, s.restoreParts[i]...)
	}
	s.restoreParts = nil
	if err := s.inner.Restore(blob); err != nil {
		return fmt.Errorf("restore inner machine: %w", err)
	}
	return nil
}

// Inner returns the wrapped machine (read-only test access).
func (s *Sessioned) Inner() Machine { return s.inner }

// SessionClients returns the tracked client IDs in sorted order.
func (s *Sessioned) SessionClients() []types.NodeID {
	clients := make([]types.NodeID, 0, len(s.sessions))
	for c := range s.sessions {
		clients = append(clients, c)
	}
	return types.SortNodeIDs(clients)
}
