package statemachine

import (
	"fmt"

	"repro/internal/types"
)

// Sessioned wraps a Machine with per-client-session deduplication, the
// mechanism that makes command re-submission across retries and
// reconfiguration boundaries idempotent (at-most-once execution).
//
// For every client it remembers the highest applied sequence number and the
// reply to that command. A command with seq equal to the remembered one
// returns the cached reply without re-applying; a smaller seq is stale and
// returns no reply. Session state is part of the snapshot, so deduplication
// survives state transfer to a successor configuration — the property the
// paper's composition depends on.
type Sessioned struct {
	inner    Machine
	sessions map[types.NodeID]sessionState
}

type sessionState struct {
	lastSeq   uint64
	lastReply []byte
}

// NewSessioned wraps inner with a fresh session table.
func NewSessioned(inner Machine) *Sessioned {
	return &Sessioned{inner: inner, sessions: make(map[types.NodeID]sessionState)}
}

// ApplyCommand applies cmd with deduplication. It returns the reply and
// whether the command was recognized as a duplicate (in which case the inner
// machine was not touched). System commands (empty Client) bypass dedup.
// Noop commands are ignored entirely.
func (s *Sessioned) ApplyCommand(cmd types.Command) (reply []byte, duplicate bool) {
	if cmd.Kind == types.CmdNoop {
		return nil, false
	}
	if cmd.Client == "" {
		return s.inner.Apply(cmd.Data), false
	}
	sess, ok := s.sessions[cmd.Client]
	if ok && cmd.Seq <= sess.lastSeq {
		if cmd.Seq == sess.lastSeq {
			return sess.lastReply, true
		}
		return nil, true // stale retry; the reply is long gone
	}
	reply = s.inner.Apply(cmd.Data)
	s.sessions[cmd.Client] = sessionState{lastSeq: cmd.Seq, lastReply: reply}
	return reply, false
}

// LastSeq returns the highest applied sequence number for client (0 if the
// session is unknown).
func (s *Sessioned) LastSeq(client types.NodeID) uint64 {
	return s.sessions[client].lastSeq
}

// ReadOnly reports whether op cannot change the inner machine's state,
// delegating to the inner machine's ReadOnlyDetector (false if absent).
func (s *Sessioned) ReadOnly(op []byte) bool {
	if d, ok := s.inner.(ReadOnlyDetector); ok {
		return d.ReadOnly(op)
	}
	return false
}

// ApplyRead executes a read-only op against the inner machine directly,
// bypassing the session table: fast-path reads are not logged, so they must
// not advance session state either (a retried read simply re-executes,
// which is harmless for an op that changes nothing). The caller is
// responsible for only passing ops for which ReadOnly is true.
func (s *Sessioned) ApplyRead(op []byte) []byte {
	return s.inner.Apply(op)
}

// Sessions returns the number of tracked client sessions.
func (s *Sessioned) Sessions() int { return len(s.sessions) }

// Snapshot serializes the session table and the inner machine's state into a
// single deterministic blob.
func (s *Sessioned) Snapshot() []byte {
	clients := make([]types.NodeID, 0, len(s.sessions))
	for c := range s.sessions {
		clients = append(clients, c)
	}
	types.SortNodeIDs(clients)
	inner := s.inner.Snapshot()
	w := types.NewWriter(16 + 32*len(clients) + len(inner))
	w.Uvarint(uint64(len(clients)))
	for _, c := range clients {
		sess := s.sessions[c]
		w.NodeID(c)
		w.Uvarint(sess.lastSeq)
		w.BytesField(sess.lastReply)
	}
	w.BytesField(inner)
	return w.Bytes()
}

// Restore replaces both the session table and the inner machine's state.
func (s *Sessioned) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("session snapshot header: %w", err)
	}
	sessions := make(map[types.NodeID]sessionState, n)
	for i := uint64(0); i < n; i++ {
		c := r.NodeID()
		seq := r.Uvarint()
		rep := r.BytesField()
		if err := r.Err(); err != nil {
			return fmt.Errorf("session snapshot entry %d: %w", i, err)
		}
		sessions[c] = sessionState{lastSeq: seq, lastReply: rep}
	}
	inner := r.BytesField()
	if err := r.Err(); err != nil {
		return fmt.Errorf("session snapshot body: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in session snapshot", types.ErrCodec)
	}
	if err := s.inner.Restore(inner); err != nil {
		return fmt.Errorf("restore inner machine: %w", err)
	}
	s.sessions = sessions
	return nil
}

// Inner returns the wrapped machine (read-only test access).
func (s *Sessioned) Inner() Machine { return s.inner }

// SessionClients returns the tracked client IDs in sorted order.
func (s *Sessioned) SessionClients() []types.NodeID {
	clients := make([]types.NodeID, 0, len(s.sessions))
	for c := range s.sessions {
		clients = append(clients, c)
	}
	return types.SortNodeIDs(clients)
}
