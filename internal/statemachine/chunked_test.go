package statemachine

import (
	"bytes"
	"fmt"
	"testing"
)

// restoreAll feeds every chunk of src into dst (optionally shuffled by a
// fixed permutation) and finishes the restore.
func restoreAll(t *testing.T, dst ChunkedSnapshotter, src SnapshotSource, reverse bool) {
	t.Helper()
	n := src.NumChunks()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if reverse {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	for _, i := range order {
		if err := dst.RestoreChunk(i, src.Chunk(i)); err != nil {
			t.Fatalf("RestoreChunk(%d): %v", i, err)
		}
	}
	if err := dst.FinishRestore(n); err != nil {
		t.Fatalf("FinishRestore: %v", err)
	}
}

func TestKVChunkedForkRoundTrip(t *testing.T) {
	m := NewKVStore()
	for i := 0; i < 500; i++ {
		m.Apply(EncodePut(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("val-%d", i))))
	}
	want := m.Snapshot()

	fork := m.ForkSnapshot()
	if fork.Format() != SnapshotFormatShards {
		t.Fatalf("format = %d", fork.Format())
	}
	if fork.NumChunks() != numShards {
		t.Fatalf("chunks = %d, want %d", fork.NumChunks(), numShards)
	}

	m2 := NewKVStore()
	restoreAll(t, m2, fork, true) // out-of-order delivery
	if !bytes.Equal(m2.Snapshot(), want) {
		t.Fatal("chunked restore diverges from monolithic snapshot")
	}
	if m2.Len() != 500 {
		t.Fatalf("restored Len = %d", m2.Len())
	}
}

// TestKVForkIsolation proves the fork is copy-on-write: mutations applied
// after the fork must not leak into the fork's chunks.
func TestKVForkIsolation(t *testing.T) {
	m := NewKVStore()
	for i := 0; i < 200; i++ {
		m.Apply(EncodePut(fmt.Sprintf("key-%04d", i), []byte("old")))
	}
	want := m.Snapshot()
	fork := m.ForkSnapshot()

	// Mutate every key, delete some, add new ones — after the fork.
	for i := 0; i < 200; i++ {
		m.Apply(EncodePut(fmt.Sprintf("key-%04d", i), []byte("NEW")))
	}
	for i := 0; i < 50; i++ {
		m.Apply(EncodeDelete(fmt.Sprintf("key-%04d", i)))
	}
	m.Apply(EncodePut("extra", []byte("x")))

	m2 := NewKVStore()
	restoreAll(t, m2, fork, false)
	if !bytes.Equal(m2.Snapshot(), want) {
		t.Fatal("fork observed post-fork mutations")
	}
	// Live machine kept its new state.
	if rep := m.Apply(EncodeGet("key-0100")); !bytes.Equal(rep, okReply([]byte("NEW"))) {
		t.Fatalf("live machine lost post-fork write: %q", rep)
	}
	if m.Len() != 151 {
		t.Fatalf("live Len = %d, want 151", m.Len())
	}
}

// TestKVForkConcurrentApply races the checkpoint producer's usage of the
// fork: chunks are serialized from a background goroutine (as
// publishCheckpoint does, paced off the critical path) while the parent
// machine keeps applying. The copy-on-write contract says the fork's shard
// maps are frozen at fork time — under -race this catches any sharing
// between the fork's read path and the parent's clone-before-write path, and
// the final comparison catches value leaks either direction.
func TestKVForkConcurrentApply(t *testing.T) {
	m := NewKVStore()
	for i := 0; i < 400; i++ {
		m.Apply(EncodePut(fmt.Sprintf("key-%04d", i), []byte("old")))
	}
	want := m.Snapshot()
	fork := m.ForkSnapshot()

	done := make(chan [][]byte, 1)
	go func() {
		chunks := make([][]byte, fork.NumChunks())
		for i := range chunks {
			chunks[i] = fork.Chunk(i)
		}
		done <- chunks
	}()
	// Touch every shard after the fork: overwrites, deletes, inserts.
	for i := 0; i < 400; i++ {
		m.Apply(EncodePut(fmt.Sprintf("key-%04d", i), []byte("NEW")))
		if i%3 == 0 {
			m.Apply(EncodeDelete(fmt.Sprintf("key-%04d", i)))
		}
	}
	chunks := <-done

	m2 := NewKVStore()
	for i, c := range chunks {
		if err := m2.RestoreChunk(i, c); err != nil {
			t.Fatalf("RestoreChunk(%d): %v", i, err)
		}
	}
	if err := m2.FinishRestore(len(chunks)); err != nil {
		t.Fatalf("FinishRestore: %v", err)
	}
	if !bytes.Equal(m2.Snapshot(), want) {
		t.Fatal("concurrently serialized fork diverges from the state at fork time")
	}
	if rep := m.Apply(EncodeGet("key-0101")); !bytes.Equal(rep, okReply([]byte("NEW"))) {
		t.Fatalf("live machine lost a post-fork write: %q", rep)
	}
}

// TestKVForkDeterministic: two machines with equal state (built in different
// orders) produce byte-identical chunk sequences — required for multi-source
// fetch against a single CRC manifest.
func TestKVForkDeterministic(t *testing.T) {
	a, b := NewKVStore(), NewKVStore()
	for i := 0; i < 300; i++ {
		a.Apply(EncodePut(fmt.Sprintf("k%03d", i), []byte{byte(i)}))
	}
	for i := 299; i >= 0; i-- {
		b.Apply(EncodePut(fmt.Sprintf("k%03d", i), []byte{byte(i)}))
	}
	fa, fb := a.ForkSnapshot(), b.ForkSnapshot()
	for i := 0; i < fa.NumChunks(); i++ {
		if !bytes.Equal(fa.Chunk(i), fb.Chunk(i)) {
			t.Fatalf("chunk %d differs between equal-state replicas", i)
		}
	}
}

func TestKVRestoreChunkRejectsMisplacedKey(t *testing.T) {
	m := NewKVStore()
	m.Apply(EncodePut("somekey", []byte("v")))
	fork := m.ForkSnapshot()
	home := shardOf("somekey")
	wrong := (home + 1) % numShards
	if err := NewKVStore().RestoreChunk(wrong, fork.Chunk(home)); err == nil {
		t.Fatal("chunk installed into the wrong shard index")
	}
}

func TestBankChunkedForkRoundTrip(t *testing.T) {
	m := NewBank()
	for i := 0; i < 300; i++ {
		m.Apply(EncodeOpen(fmt.Sprintf("acct-%03d", i), uint64(i)))
	}
	want := m.Snapshot()
	fork := m.ForkSnapshot()

	// Post-fork mutations must not leak.
	m.Apply(EncodeTransfer("acct-001", "acct-002", 1))

	m2 := NewBank()
	restoreAll(t, m2, fork, true)
	if !bytes.Equal(m2.Snapshot(), want) {
		t.Fatal("bank chunked restore diverges")
	}
	if m2.Total() != m.Total() {
		t.Fatalf("conservation violated: %d vs %d", m2.Total(), m.Total())
	}
}

func TestSessionedChunkedShardMode(t *testing.T) {
	s := NewSessioned(NewKVStore())
	for i := 0; i < 100; i++ {
		s.ApplyCommand(appCmd("c1", uint64(i+1), EncodePut(fmt.Sprintf("k%d", i), []byte("v"))))
	}
	s.ApplyCommand(appCmd("c2", 7, EncodePut("other", []byte("w"))))
	want := s.Snapshot()

	if s.ChunkFormat() != SnapshotFormatShards {
		t.Fatalf("format = %d", s.ChunkFormat())
	}
	fork := s.ForkSnapshot()
	if fork.NumChunks() != 1+numShards {
		t.Fatalf("chunks = %d, want %d", fork.NumChunks(), 1+numShards)
	}

	s2 := NewSessioned(NewKVStore())
	restoreAll(t, s2, fork, true)
	if !bytes.Equal(s2.Snapshot(), want) {
		t.Fatal("sessioned chunked restore diverges from monolithic snapshot")
	}
	// Dedup state carried: replaying c2 seq 7 must hit the cache.
	if _, dup := s2.ApplyCommand(appCmd("c2", 7, EncodePut("other", []byte("DIFFERENT")))); !dup {
		t.Fatal("session table lost in chunked transfer")
	}
}

// TestSessionedChunkedBlobMode exercises the fallback for inner machines that
// do not implement ChunkedSnapshotter (Counter): the monolithic snapshot is
// split into ranges and reassembled by FinishRestore.
func TestSessionedChunkedBlobMode(t *testing.T) {
	s := NewSessioned(&Counter{})
	for i := 0; i < 10; i++ {
		s.ApplyCommand(appCmd("c1", uint64(i+1), EncodeAdd(3)))
	}
	want := s.Snapshot()

	if s.ChunkFormat() != SnapshotFormatBlob {
		t.Fatalf("format = %d", s.ChunkFormat())
	}
	fork := s.ForkSnapshot()
	if fork.Format() != SnapshotFormatBlob {
		t.Fatalf("fork format = %d", fork.Format())
	}

	s2 := NewSessioned(&Counter{})
	restoreAll(t, s2, fork, true)
	if !bytes.Equal(s2.Snapshot(), want) {
		t.Fatal("blob-mode chunked restore diverges")
	}
	if got := s2.Inner().(*Counter).Value(); got != 30 {
		t.Fatalf("counter = %d, want 30", got)
	}
}

func TestSessionedFinishRestoreRequiresSessionChunk(t *testing.T) {
	s := NewSessioned(NewKVStore())
	fork := s.ForkSnapshot()
	s2 := NewSessioned(NewKVStore())
	for i := 1; i < fork.NumChunks(); i++ {
		if err := s2.RestoreChunk(i, fork.Chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.FinishRestore(fork.NumChunks()); err == nil {
		t.Fatal("FinishRestore accepted a restore missing chunk 0")
	}
}

// BenchmarkForkVsSnapshot quantifies the wedge-time win: ForkSnapshot is
// O(shards) while Snapshot serializes the full state.
func BenchmarkForkVsSnapshot(b *testing.B) {
	m := NewKVStore()
	val := make([]byte, 1024)
	for i := 0; i < 8192; i++ { // ~8 MiB of state
		m.Apply(EncodePut(fmt.Sprintf("key-%06d", i), val))
	}
	b.Run("fork", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.ForkSnapshot()
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Snapshot()
		}
	})
}
