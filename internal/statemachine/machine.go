// Package statemachine defines the replicated application layer: the
// deterministic Machine interface every SMR engine drives, a client-session
// deduplication wrapper giving at-most-once semantics across retries and
// reconfigurations, and three concrete machines — a key/value store, a bank
// with a conservation invariant, and a counter — used by the examples, tests
// and experiments.
package statemachine

import "fmt"

// Machine is a deterministic state machine. Implementations must be fully
// deterministic: the same op sequence applied to the same initial state must
// produce identical replies and identical snapshots on every replica.
//
// Application-level failures (unknown key, malformed op, ...) are encoded in
// the reply — never as a Go error — so that a "failing" op is just as
// deterministic as a succeeding one.
type Machine interface {
	// Apply executes one operation and returns its reply.
	Apply(op []byte) []byte
	// Snapshot serializes the complete state deterministically.
	Snapshot() []byte
	// Restore replaces the state with a previously taken snapshot.
	// It returns an error only for corrupted input.
	Restore(snapshot []byte) error
}

// Factory creates a fresh, empty machine. Each configuration's replica set
// builds machines through a factory so crashed replicas restart clean and
// restore from snapshots.
type Factory func() Machine

// ReadOnlyDetector is an optional Machine capability: classifying ops that
// cannot change state. Only ops for which ReadOnly returns true may be
// served through the linearizable read fast path (no log append); a machine
// that does not implement it gets no fast path. ReadOnly must be
// conservative — when in doubt (malformed op, unknown opcode), report false
// and let the op take the log path, where a BadOp reply is harmless.
type ReadOnlyDetector interface {
	ReadOnly(op []byte) bool
}

// Status is the leading byte of every reply produced by the machines in
// this package. Values start at 1 so a zero byte is never a valid status.
type Status uint8

const (
	// StatusOK signals success; the rest of the reply is op-specific.
	StatusOK Status = 1
	// StatusNotFound signals a lookup miss.
	StatusNotFound Status = 2
	// StatusBadOp signals a malformed or unknown operation.
	StatusBadOp Status = 3
	// StatusConflict signals a failed precondition (CAS mismatch,
	// overdraft, duplicate account, ...).
	StatusConflict Status = 4
	// StatusMoved signals that the addressed data lives in a different
	// partition group: the keyspace shard this op targets is not (or no
	// longer) owned by the group that executed it. The reply body carries
	// routing metadata (shard + generation); clients refresh their shard
	// map and retry against the current owner.
	StatusMoved Status = 5
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusBadOp:
		return "bad-op"
	case StatusConflict:
		return "conflict"
	case StatusMoved:
		return "moved"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// ReplyStatus extracts the status byte of a reply (StatusBadOp for empty).
func ReplyStatus(reply []byte) Status {
	if len(reply) == 0 {
		return StatusBadOp
	}
	return Status(reply[0])
}

// ReplyPayload returns the reply body after the status byte.
func ReplyPayload(reply []byte) []byte {
	if len(reply) <= 1 {
		return nil
	}
	return reply[1:]
}

func statusReply(s Status) []byte { return []byte{byte(s)} }

func okReply(payload []byte) []byte {
	out := make([]byte, 0, 1+len(payload))
	out = append(out, byte(StatusOK))
	return append(out, payload...)
}
