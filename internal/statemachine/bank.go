package statemachine

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// BankOp enumerates the bank machine's operations. Values start at 1.
type BankOp uint8

const (
	// BankOpen creates an account with an initial balance. Reply: OK, or
	// Conflict if the account exists.
	BankOpen BankOp = 1
	// BankDeposit adds to an account. Reply: OK+new balance or NotFound.
	BankDeposit BankOp = 2
	// BankTransfer moves amount between accounts. Reply: OK, NotFound,
	// or Conflict on insufficient funds.
	BankTransfer BankOp = 3
	// BankBalance reads one balance. Reply: OK+uvarint or NotFound.
	BankBalance BankOp = 4
	// BankTotal sums all balances. Reply: OK+uvarint. Used to check the
	// conservation invariant (property P4).
	BankTotal BankOp = 5
)

// Bank is a deterministic account-ledger machine whose total balance is
// conserved by transfers, making double-application of a command across a
// reconfiguration boundary observable.
type Bank struct {
	accounts map[string]uint64
}

var _ Machine = (*Bank)(nil)

// NewBank returns an empty bank machine.
func NewBank() *Bank { return &Bank{accounts: make(map[string]uint64)} }

// NewBankMachine is a Factory for Bank.
func NewBankMachine() Machine { return NewBank() }

// EncodeOpen encodes an account-creation op.
func EncodeOpen(account string, initial uint64) []byte {
	w := types.NewWriter(2 + len(account) + 8)
	w.Byte(byte(BankOpen))
	w.String(account)
	w.Uvarint(initial)
	return w.Bytes()
}

// EncodeDeposit encodes a deposit op.
func EncodeDeposit(account string, amount uint64) []byte {
	w := types.NewWriter(2 + len(account) + 8)
	w.Byte(byte(BankDeposit))
	w.String(account)
	w.Uvarint(amount)
	return w.Bytes()
}

// EncodeTransfer encodes a transfer op.
func EncodeTransfer(from, to string, amount uint64) []byte {
	w := types.NewWriter(3 + len(from) + len(to) + 8)
	w.Byte(byte(BankTransfer))
	w.String(from)
	w.String(to)
	w.Uvarint(amount)
	return w.Bytes()
}

// EncodeBalance encodes a balance query.
func EncodeBalance(account string) []byte {
	w := types.NewWriter(2 + len(account))
	w.Byte(byte(BankBalance))
	w.String(account)
	return w.Bytes()
}

// EncodeTotal encodes a total-balance query.
func EncodeTotal() []byte { return []byte{byte(BankTotal)} }

// ReadOnly implements ReadOnlyDetector: balance and total queries never
// mutate the ledger.
func (m *Bank) ReadOnly(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	switch BankOp(op[0]) {
	case BankBalance, BankTotal:
		return true
	default:
		return false
	}
}

// Apply implements Machine.
func (m *Bank) Apply(op []byte) []byte {
	if len(op) == 0 {
		return statusReply(StatusBadOp)
	}
	r := types.NewReader(op[1:])
	switch BankOp(op[0]) {
	case BankOpen:
		acct := r.String()
		initial := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		if _, ok := m.accounts[acct]; ok {
			return statusReply(StatusConflict)
		}
		m.accounts[acct] = initial
		return okReply(nil)
	case BankDeposit:
		acct := r.String()
		amount := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		bal, ok := m.accounts[acct]
		if !ok {
			return statusReply(StatusNotFound)
		}
		m.accounts[acct] = bal + amount
		return okReply(uvarintBytes(bal + amount))
	case BankTransfer:
		from := r.String()
		to := r.String()
		amount := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		fb, fok := m.accounts[from]
		_, tok := m.accounts[to]
		if !fok || !tok {
			return statusReply(StatusNotFound)
		}
		if from == to {
			return okReply(nil) // self-transfer is a no-op
		}
		if fb < amount {
			return statusReply(StatusConflict)
		}
		m.accounts[from] = fb - amount
		m.accounts[to] += amount
		return okReply(nil)
	case BankBalance:
		acct := r.String()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		bal, ok := m.accounts[acct]
		if !ok {
			return statusReply(StatusNotFound)
		}
		return okReply(uvarintBytes(bal))
	case BankTotal:
		var total uint64
		for _, b := range m.accounts {
			total += b
		}
		return okReply(uvarintBytes(total))
	default:
		return statusReply(StatusBadOp)
	}
}

// Snapshot implements Machine (accounts in sorted order).
func (m *Bank) Snapshot() []byte {
	names := make([]string, 0, len(m.accounts))
	for a := range m.accounts {
		names = append(names, a)
	}
	sort.Strings(names)
	w := types.NewWriter(8 + 16*len(names))
	w.Uvarint(uint64(len(names)))
	for _, a := range names {
		w.String(a)
		w.Uvarint(m.accounts[a])
	}
	return w.Bytes()
}

// Restore implements Machine.
func (m *Bank) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("bank snapshot header: %w", err)
	}
	accounts := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		a := r.String()
		b := r.Uvarint()
		if err := r.Err(); err != nil {
			return fmt.Errorf("bank snapshot entry %d: %w", i, err)
		}
		accounts[a] = b
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in bank snapshot", types.ErrCodec, r.Remaining())
	}
	m.accounts = accounts
	return nil
}

// Total returns the sum of all balances (test helper, mirrors BankTotal).
func (m *Bank) Total() uint64 {
	var total uint64
	for _, b := range m.accounts {
		total += b
	}
	return total
}

// DecodeUvarintReply parses a reply payload holding a single uvarint.
func DecodeUvarintReply(payload []byte) (uint64, error) {
	r := types.NewReader(payload)
	v := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return v, nil
}

func uvarintBytes(v uint64) []byte {
	w := types.NewWriter(types.UvarintLen(v))
	w.Uvarint(v)
	return w.Bytes()
}
