package statemachine

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// BankOp enumerates the bank machine's operations. Values start at 1.
type BankOp uint8

const (
	// BankOpen creates an account with an initial balance. Reply: OK, or
	// Conflict if the account exists.
	BankOpen BankOp = 1
	// BankDeposit adds to an account. Reply: OK+new balance or NotFound.
	BankDeposit BankOp = 2
	// BankTransfer moves amount between accounts. Reply: OK, NotFound,
	// or Conflict on insufficient funds.
	BankTransfer BankOp = 3
	// BankBalance reads one balance. Reply: OK+uvarint or NotFound.
	BankBalance BankOp = 4
	// BankTotal sums all balances. Reply: OK+uvarint. Used to check the
	// conservation invariant (property P4).
	BankTotal BankOp = 5
)

// Bank is a deterministic account-ledger machine whose total balance is
// conserved by transfers, making double-application of a command across a
// reconfiguration boundary observable. Accounts are hashed across a fixed
// set of shards with copy-on-write snapshot forks, like KVStore.
type Bank struct {
	shards [numShards]map[string]uint64
	shared [numShards]bool
	// sizes[i] is the account count of shard i — per shard so BankOpen on
	// distinct shards never writes a common field under parallel apply.
	sizes [numShards]int
}

var (
	_ Machine            = (*Bank)(nil)
	_ ChunkedSnapshotter = (*Bank)(nil)
	_ ShardedApplier     = (*Bank)(nil)
)

// NewBank returns an empty bank machine.
func NewBank() *Bank {
	m := &Bank{}
	for i := range m.shards {
		m.shards[i] = make(map[string]uint64)
	}
	return m
}

// NewBankMachine is a Factory for Bank.
func NewBankMachine() Machine { return NewBank() }

// EncodeOpen encodes an account-creation op.
func EncodeOpen(account string, initial uint64) []byte {
	w := types.NewWriter(2 + len(account) + 8)
	w.Byte(byte(BankOpen))
	w.String(account)
	w.Uvarint(initial)
	return w.Bytes()
}

// EncodeDeposit encodes a deposit op.
func EncodeDeposit(account string, amount uint64) []byte {
	w := types.NewWriter(2 + len(account) + 8)
	w.Byte(byte(BankDeposit))
	w.String(account)
	w.Uvarint(amount)
	return w.Bytes()
}

// EncodeTransfer encodes a transfer op.
func EncodeTransfer(from, to string, amount uint64) []byte {
	w := types.NewWriter(3 + len(from) + len(to) + 8)
	w.Byte(byte(BankTransfer))
	w.String(from)
	w.String(to)
	w.Uvarint(amount)
	return w.Bytes()
}

// EncodeBalance encodes a balance query.
func EncodeBalance(account string) []byte {
	w := types.NewWriter(2 + len(account))
	w.Byte(byte(BankBalance))
	w.String(account)
	return w.Bytes()
}

// EncodeTotal encodes a total-balance query.
func EncodeTotal() []byte { return []byte{byte(BankTotal)} }

// ReadOnly implements ReadOnlyDetector: balance and total queries never
// mutate the ledger.
func (m *Bank) ReadOnly(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	switch BankOp(op[0]) {
	case BankBalance, BankTotal:
		return true
	default:
		return false
	}
}

func (m *Bank) get(acct string) (uint64, bool) {
	v, ok := m.shards[shardOf(acct)][acct]
	return v, ok
}

// mutable returns the shard holding acct, cloning it first if a snapshot
// fork may still reference it.
func (m *Bank) mutable(acct string) map[string]uint64 {
	i := shardOf(acct)
	if m.shared[i] {
		clone := make(map[string]uint64, len(m.shards[i]))
		for k, v := range m.shards[i] {
			clone[k] = v
		}
		m.shards[i] = clone
		m.shared[i] = false
	}
	return m.shards[i]
}

// Apply implements Machine.
func (m *Bank) Apply(op []byte) []byte {
	if len(op) == 0 {
		return statusReply(StatusBadOp)
	}
	r := types.NewReader(op[1:])
	switch BankOp(op[0]) {
	case BankOpen:
		acct := r.String()
		initial := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		if _, ok := m.get(acct); ok {
			return statusReply(StatusConflict)
		}
		m.mutable(acct)[acct] = initial
		m.sizes[shardOf(acct)]++
		return okReply(nil)
	case BankDeposit:
		acct := r.String()
		amount := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		bal, ok := m.get(acct)
		if !ok {
			return statusReply(StatusNotFound)
		}
		m.mutable(acct)[acct] = bal + amount
		return okReply(uvarintBytes(bal + amount))
	case BankTransfer:
		from := r.String()
		to := r.String()
		amount := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		fb, fok := m.get(from)
		_, tok := m.get(to)
		if !fok || !tok {
			return statusReply(StatusNotFound)
		}
		if from == to {
			return okReply(nil) // self-transfer is a no-op
		}
		if fb < amount {
			return statusReply(StatusConflict)
		}
		m.mutable(from)[from] = fb - amount
		m.mutable(to)[to] += amount
		return okReply(nil)
	case BankBalance:
		acct := r.String()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		bal, ok := m.get(acct)
		if !ok {
			return statusReply(StatusNotFound)
		}
		return okReply(uvarintBytes(bal))
	case BankTotal:
		return okReply(uvarintBytes(m.Total()))
	default:
		return statusReply(StatusBadOp)
	}
}

// Snapshot implements Machine (accounts in globally sorted order, matching
// the pre-sharding byte format).
func (m *Bank) Snapshot() []byte {
	n := 0
	for i := range m.sizes {
		n += m.sizes[i]
	}
	names := make([]string, 0, n)
	for i := range m.shards {
		for a := range m.shards[i] {
			names = append(names, a)
		}
	}
	sort.Strings(names)
	w := types.NewWriter(8 + 16*len(names))
	w.Uvarint(uint64(len(names)))
	for _, a := range names {
		w.String(a)
		w.Uvarint(m.shards[shardOf(a)][a])
	}
	return w.Bytes()
}

// Restore implements Machine.
func (m *Bank) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("bank snapshot header: %w", err)
	}
	var shards [numShards]map[string]uint64
	for i := range shards {
		shards[i] = make(map[string]uint64)
	}
	for i := uint64(0); i < n; i++ {
		a := r.String()
		b := r.Uvarint()
		if err := r.Err(); err != nil {
			return fmt.Errorf("bank snapshot entry %d: %w", i, err)
		}
		shards[shardOf(a)][a] = b
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in bank snapshot", types.ErrCodec, r.Remaining())
	}
	m.shards = shards
	m.shared = [numShards]bool{}
	for i := range shards {
		m.sizes[i] = len(shards[i])
	}
	return nil
}

// bankFork is a copy-on-write snapshot of a Bank (see kvFork).
type bankFork struct {
	shards [numShards]map[string]uint64
}

// ForkSnapshot implements ChunkedSnapshotter (O(numShards)).
func (m *Bank) ForkSnapshot() SnapshotSource {
	f := &bankFork{shards: m.shards}
	for i := range m.shared {
		m.shared[i] = true
	}
	return f
}

func (f *bankFork) Format() byte   { return SnapshotFormatShards }
func (f *bankFork) NumChunks() int { return numShards }

// Chunk serializes shard i: uvarint count, then sorted (account, balance).
func (f *bankFork) Chunk(i int) []byte {
	sh := f.shards[i]
	names := make([]string, 0, len(sh))
	for a := range sh {
		names = append(names, a)
	}
	sort.Strings(names)
	w := types.NewWriter(8 + 16*len(names))
	w.Uvarint(uint64(len(names)))
	for _, a := range names {
		w.String(a)
		w.Uvarint(sh[a])
	}
	return w.Bytes()
}

// RestoreChunk implements ChunkedSnapshotter.
func (m *Bank) RestoreChunk(index int, data []byte) error {
	if index < 0 || index >= numShards {
		return fmt.Errorf("%w: bank chunk index %d out of range", types.ErrCodec, index)
	}
	r := types.NewReader(data)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("bank chunk %d header: %w", index, err)
	}
	sh := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		a := r.String()
		b := r.Uvarint()
		if err := r.Err(); err != nil {
			return fmt.Errorf("bank chunk %d entry %d: %w", index, i, err)
		}
		if shardOf(a) != index {
			return fmt.Errorf("%w: account %q does not belong to bank shard %d", types.ErrCodec, a, index)
		}
		sh[a] = b
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in bank chunk %d", types.ErrCodec, index)
	}
	m.shards[index] = sh
	m.shared[index] = false
	m.sizes[index] = len(sh)
	return nil
}

// FinishRestore implements ChunkedSnapshotter.
func (m *Bank) FinishRestore(total int) error {
	if total != numShards {
		return fmt.Errorf("%w: bank chunked snapshot has %d chunks, want %d", types.ErrCodec, total, numShards)
	}
	return nil
}

// OpShard implements ShardedApplier. Single-account ops report their
// account's shard. BankTransfer touches two accounts and BankTotal scans
// every shard, so both are barriers (as is anything malformed or unknown) —
// the conservation invariant depends on a transfer never interleaving with
// ops on either endpoint's shard.
func (m *Bank) OpShard(op []byte) (int, bool) {
	if len(op) == 0 {
		return 0, false
	}
	switch BankOp(op[0]) {
	case BankOpen, BankDeposit, BankBalance:
		r := types.NewReader(op[1:])
		acct := r.String()
		if r.Err() != nil {
			return 0, false
		}
		return shardOf(acct), true
	default:
		return 0, false
	}
}

// NumShards implements ShardedApplier.
func (m *Bank) NumShards() int { return numShards }

// Total returns the sum of all balances (test helper, mirrors BankTotal).
func (m *Bank) Total() uint64 {
	var total uint64
	for i := range m.shards {
		for _, b := range m.shards[i] {
			total += b
		}
	}
	return total
}

// DecodeUvarintReply parses a reply payload holding a single uvarint.
func DecodeUvarintReply(payload []byte) (uint64, error) {
	r := types.NewReader(payload)
	v := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return v, nil
}

func uvarintBytes(v uint64) []byte {
	w := types.NewWriter(types.UvarintLen(v))
	w.Uvarint(v)
	return w.Bytes()
}

// balance is a test helper returning an account's balance (0 if absent).
func (m *Bank) balance(acct string) uint64 {
	v, _ := m.get(acct)
	return v
}
