package statemachine

import (
	"fmt"

	"repro/internal/types"
)

// CounterOp enumerates the counter machine's operations. Values start at 1.
type CounterOp uint8

const (
	// CounterAdd adds a delta. Reply: OK+uvarint new value.
	CounterAdd CounterOp = 1
	// CounterGet reads the value. Reply: OK+uvarint.
	CounterGet CounterOp = 2
	// CounterSet overwrites the value. Reply: OK.
	CounterSet CounterOp = 3
)

// Counter is the simplest useful machine: a single uint64 register with
// add/get/set. Its zero value is ready to use.
type Counter struct {
	value uint64
}

var _ Machine = (*Counter)(nil)

// NewCounterMachine is a Factory for Counter.
func NewCounterMachine() Machine { return &Counter{} }

// EncodeAdd encodes an add op.
func EncodeAdd(delta uint64) []byte {
	w := types.NewWriter(1 + types.UvarintLen(delta))
	w.Byte(byte(CounterAdd))
	w.Uvarint(delta)
	return w.Bytes()
}

// EncodeCounterGet encodes a get op.
func EncodeCounterGet() []byte { return []byte{byte(CounterGet)} }

// EncodeCounterSet encodes a set op.
func EncodeCounterSet(v uint64) []byte {
	w := types.NewWriter(1 + types.UvarintLen(v))
	w.Byte(byte(CounterSet))
	w.Uvarint(v)
	return w.Bytes()
}

// ReadOnly implements ReadOnlyDetector.
func (m *Counter) ReadOnly(op []byte) bool {
	return len(op) > 0 && CounterOp(op[0]) == CounterGet
}

// Apply implements Machine.
func (m *Counter) Apply(op []byte) []byte {
	if len(op) == 0 {
		return statusReply(StatusBadOp)
	}
	r := types.NewReader(op[1:])
	switch CounterOp(op[0]) {
	case CounterAdd:
		d := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		m.value += d
		return okReply(uvarintBytes(m.value))
	case CounterGet:
		return okReply(uvarintBytes(m.value))
	case CounterSet:
		v := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		m.value = v
		return okReply(nil)
	default:
		return statusReply(StatusBadOp)
	}
}

// Snapshot implements Machine.
func (m *Counter) Snapshot() []byte { return uvarintBytes(m.value) }

// Restore implements Machine.
func (m *Counter) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	v := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("counter snapshot: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in counter snapshot", types.ErrCodec)
	}
	m.value = v
	return nil
}

// Value returns the current value (test helper).
func (m *Counter) Value() uint64 { return m.value }
