package statemachine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKVPutGetDelete(t *testing.T) {
	m := NewKVStore()
	if st := ReplyStatus(m.Apply(EncodeGet("k"))); st != StatusNotFound {
		t.Fatalf("get on empty: %v", st)
	}
	if st := ReplyStatus(m.Apply(EncodePut("k", []byte("v1")))); st != StatusOK {
		t.Fatalf("put: %v", st)
	}
	rep := m.Apply(EncodeGet("k"))
	if ReplyStatus(rep) != StatusOK || string(ReplyPayload(rep)) != "v1" {
		t.Fatalf("get: %v %q", ReplyStatus(rep), ReplyPayload(rep))
	}
	if st := ReplyStatus(m.Apply(EncodeDelete("k"))); st != StatusOK {
		t.Fatalf("delete: %v", st)
	}
	if st := ReplyStatus(m.Apply(EncodeGet("k"))); st != StatusNotFound {
		t.Fatalf("get after delete: %v", st)
	}
	// Deleting an absent key is still OK (idempotent).
	if st := ReplyStatus(m.Apply(EncodeDelete("nope"))); st != StatusOK {
		t.Fatalf("delete absent: %v", st)
	}
}

func TestKVAppend(t *testing.T) {
	m := NewKVStore()
	m.Apply(EncodeAppend("k", []byte("ab")))
	m.Apply(EncodeAppend("k", []byte("cd")))
	rep := m.Apply(EncodeGet("k"))
	if string(ReplyPayload(rep)) != "abcd" {
		t.Fatalf("append result %q", ReplyPayload(rep))
	}
}

func TestKVCAS(t *testing.T) {
	m := NewKVStore()
	if st := ReplyStatus(m.Apply(EncodeCAS("k", []byte("x"), []byte("y")))); st != StatusNotFound {
		t.Fatalf("cas absent: %v", st)
	}
	m.Apply(EncodePut("k", []byte("a")))
	rep := m.Apply(EncodeCAS("k", []byte("wrong"), []byte("b")))
	if ReplyStatus(rep) != StatusConflict || string(ReplyPayload(rep)) != "a" {
		t.Fatalf("cas mismatch: %v %q", ReplyStatus(rep), ReplyPayload(rep))
	}
	if st := ReplyStatus(m.Apply(EncodeCAS("k", []byte("a"), []byte("b")))); st != StatusOK {
		t.Fatalf("cas: %v", st)
	}
	if string(ReplyPayload(m.Apply(EncodeGet("k")))) != "b" {
		t.Fatal("cas did not swap")
	}
}

func TestKVKeysPrefixAndLimit(t *testing.T) {
	m := NewKVStore()
	for _, k := range []string{"a/1", "a/3", "a/2", "b/1"} {
		m.Apply(EncodePut(k, nil))
	}
	rep := m.Apply(EncodeKeys("a/", 0))
	keys, err := DecodeKeysReply(ReplyPayload(rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "a/1" || keys[2] != "a/3" {
		t.Fatalf("keys: %v", keys)
	}
	rep = m.Apply(EncodeKeys("a/", 2))
	keys, _ = DecodeKeysReply(ReplyPayload(rep))
	if len(keys) != 2 {
		t.Fatalf("limited keys: %v", keys)
	}
}

func TestKVSize(t *testing.T) {
	m := NewKVStore()
	m.Apply(EncodePut("a", nil))
	m.Apply(EncodePut("b", nil))
	n, err := DecodeUvarintReply(ReplyPayload(m.Apply(EncodeSize())))
	if err != nil || n != 2 {
		t.Fatalf("size: %d %v", n, err)
	}
}

func TestKVBadOps(t *testing.T) {
	m := NewKVStore()
	for _, op := range [][]byte{nil, {}, {99}, {byte(KVPut)}, {byte(KVGet), 0xff}} {
		if st := ReplyStatus(m.Apply(op)); st != StatusBadOp {
			t.Errorf("op %v: %v", op, st)
		}
	}
}

func TestKVSnapshotRoundTrip(t *testing.T) {
	m := NewKVStore()
	for i := 0; i < 100; i++ {
		m.Apply(EncodePut(fmt.Sprintf("k%03d", i), []byte{byte(i), byte(i >> 1)}))
	}
	snap := m.Snapshot()
	m2 := NewKVStore()
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m2.Snapshot(), snap) {
		t.Fatal("restored snapshot differs")
	}
	if m2.Len() != 100 {
		t.Fatalf("restored len %d", m2.Len())
	}
}

// TestKVSnapshotDeterministic checks the P5 precondition: two machines fed
// the same ops in the same order produce byte-identical snapshots.
func TestKVSnapshotDeterministic(t *testing.T) {
	ops := make([][]byte, 0, 300)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%d", rng.Intn(50))
		switch rng.Intn(4) {
		case 0:
			ops = append(ops, EncodePut(k, []byte{byte(rng.Intn(256))}))
		case 1:
			ops = append(ops, EncodeDelete(k))
		case 2:
			ops = append(ops, EncodeAppend(k, []byte("x")))
		default:
			ops = append(ops, EncodeGet(k))
		}
	}
	m1, m2 := NewKVStore(), NewKVStore()
	for _, op := range ops {
		r1, r2 := m1.Apply(op), m2.Apply(op)
		if !bytes.Equal(r1, r2) {
			t.Fatal("replies diverged")
		}
	}
	if !bytes.Equal(m1.Snapshot(), m2.Snapshot()) {
		t.Fatal("snapshots diverged")
	}
}

// TestKVRestoreEquivalenceProperty is invariant P5: Restore(Snapshot(m))
// is observationally equal to m.
func TestKVRestoreEquivalenceProperty(t *testing.T) {
	f := func(keys []string, vals [][]byte, probe string) bool {
		m := NewKVStore()
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			m.Apply(EncodePut(k, v))
		}
		m2 := NewKVStore()
		if err := m2.Restore(m.Snapshot()); err != nil {
			return false
		}
		for _, k := range append(keys, probe) {
			if !bytes.Equal(m.Apply(EncodeGet(k)), m2.Apply(EncodeGet(k))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKVRestoreRejectsCorruption(t *testing.T) {
	m := NewKVStore()
	m.Apply(EncodePut("k", []byte("v")))
	snap := m.Snapshot()
	for _, bad := range [][]byte{
		snap[:len(snap)-1],       // truncated
		append(snap, 0x00),       // trailing garbage
		{0xff, 0xff, 0xff, 0xff}, // absurd count
	} {
		m2 := NewKVStore()
		if err := m2.Restore(bad); err == nil {
			t.Errorf("corrupted snapshot %v accepted", bad[:min(8, len(bad))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
