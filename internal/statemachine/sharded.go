package statemachine

import (
	"runtime"
	"sync"

	"repro/internal/types"
)

// ShardedApplier is an optional Machine capability: classifying ops by the
// state shard they are confined to. Ops confined to distinct shards commute
// — applying them in any interleaving yields the same state and the same
// replies — so an apply stage may execute a decided batch with one worker
// per shard and still be indistinguishable from serial application in
// decided order. Like ReadOnly, OpShard must be conservative: when in doubt
// (malformed op, unknown opcode, an op that scans or touches more than one
// shard), report ok=false and the op becomes a barrier that runs alone,
// after everything before it in the batch and before everything after it.
type ShardedApplier interface {
	// OpShard returns the shard op is confined to. ok=false marks a
	// barrier op.
	OpShard(op []byte) (shard int, ok bool)
	// NumShards is the fixed shard count OpShard indexes into.
	NumShards() int
}

// Parallel-apply thresholds: below parallelApplyMinOps the goroutine
// handoff costs more than the work, and parallelApplyMaxWorkers bounds the
// per-batch fan-out regardless of shard count.
const (
	parallelApplyMinOps     = 16
	parallelApplyMaxWorkers = 8
)

// ApplyBatch applies a decided run of commands and returns the reply and
// duplicate flag for each, exactly as if ApplyCommand had been called on
// each command in order. With parallel set and an inner machine that
// implements ShardedApplier, non-barrier commands are executed by per-shard
// workers; ApplyBatch returns only after every worker has joined, so the
// caller may treat its return as the point where all state mutations are
// visible (the wedge-drain rule relies on this). Otherwise — parallel
// false, no capability, or a batch too small to be worth the fan-out — it
// degenerates to the serial loop.
//
// Equivalence argument: session deduplication is decided in a serial
// pre-pass that tracks, per client, the sequence number the session table
// would hold at each position of a serial execution; only commands that a
// serial execution would apply are handed to workers. Same-client commands
// land on the decided-order suffix of the pre-pass (a client's seq is
// strictly increasing across its applied commands), same-key commands land
// in the same shard queue (queues preserve decided order), and cross-shard
// commands are barriers. The session table itself is updated in a serial
// post-pass in decided order.
func (s *Sessioned) ApplyBatch(cmds []types.Command, parallel bool) (replies [][]byte, dups []bool) {
	replies = make([][]byte, len(cmds))
	dups = make([]bool, len(cmds))
	sharder, _ := s.inner.(ShardedApplier)
	if !parallel || sharder == nil || len(cmds) < parallelApplyMinOps {
		for i, cmd := range cmds {
			replies[i], dups[i] = s.ApplyCommand(cmd)
		}
		return replies, dups
	}

	// Serial pre-pass: decide, in decided order, which commands a serial
	// execution would apply, and advance the session table (seq, recency,
	// eviction) exactly as that serial execution would — command by
	// command, so the LRU's mid-batch evictions and refusals cannot depend
	// on where batch boundaries fall (replicas batch independently).
	// Replies land in the post-pass; until then a rewritten session
	// carries its previous lastReply, which nothing reads (an in-batch dup
	// links through dupOf instead).
	eff := make(map[types.NodeID]int) // client -> last in-batch writer index
	exec := make([]int, 0, len(cmds))
	shards := make([]int, len(cmds))
	barrier := make([]bool, len(cmds))
	dupOf := make(map[int]int)
	for i, cmd := range cmds {
		if cmd.Kind == types.CmdNoop {
			continue
		}
		if cmd.Client != "" {
			sess, exists := s.sessions[cmd.Client]
			if exists && cmd.Seq <= sess.lastSeq {
				dups[i] = true
				if cmd.Seq == sess.lastSeq {
					if j, ok := eff[cmd.Client]; ok {
						dupOf[i] = j
					} else {
						replies[i] = sess.lastReply
					}
				}
				continue // stale retry: nil reply, like ApplyCommand
			}
			if !exists && s.limit > 0 && cmd.Seq > 1 {
				// Evicted session under the LRU bound: refuse rather
				// than risk re-execution (ApplyCommand's rule).
				dups[i] = true
				continue
			}
			s.sessions[cmd.Client] = sessionState{lastSeq: cmd.Seq, lastReply: sess.lastReply}
			s.noteWrite(cmd.Client)
			s.enforceLimit()
			eff[cmd.Client] = i
		}
		shards[i], barrier[i] = opShardChecked(sharder, cmds[i].Data)
		barrier[i] = !barrier[i]
		exec = append(exec, i)
	}

	// Execute: runs of non-barrier commands fan out to per-shard workers;
	// each barrier drains the current run and executes alone.
	group := make([]int, 0, len(exec))
	for _, i := range exec {
		if barrier[i] {
			s.runShardGroup(cmds, replies, shards, group)
			group = group[:0]
			replies[i] = s.inner.Apply(cmds[i].Data)
			continue
		}
		group = append(group, i)
	}
	s.runShardGroup(cmds, replies, shards, group)

	// Serial post-pass: fill in each surviving session's reply (the
	// pre-pass already advanced seq/recency and ran evictions), then link
	// duplicate replies to the command that produced them.
	for _, i := range exec {
		c := cmds[i].Client
		if c == "" || eff[c] != i {
			continue // not this client's final in-batch write
		}
		if sess, ok := s.sessions[c]; ok && sess.lastSeq == cmds[i].Seq {
			sess.lastReply = replies[i]
			s.sessions[c] = sess
		}
	}
	for i, j := range dupOf {
		replies[i] = replies[j]
	}
	return replies, dups
}

// opShardChecked guards against a sharder whose shard index is out of its
// declared range — such an op is treated as a barrier rather than indexing
// a foreign worker queue.
func opShardChecked(sharder ShardedApplier, op []byte) (int, bool) {
	sh, ok := sharder.OpShard(op)
	if !ok || sh < 0 || sh >= sharder.NumShards() {
		return 0, false
	}
	return sh, true
}

// runShardGroup executes a run of shard-confined commands, one worker per
// set of shards, writing each reply to its own slot. Commands on the same
// shard stay in decided order (one queue per shard, queues are processed
// front to back); commands on distinct shards commute, so interleaving is
// free. Returns only after all workers join.
func (s *Sessioned) runShardGroup(cmds []types.Command, replies [][]byte, shards []int, group []int) {
	if len(group) == 0 {
		return
	}
	queues := make(map[int][]int, parallelApplyMaxWorkers)
	order := make([]int, 0, parallelApplyMaxWorkers)
	for _, i := range group {
		sh := shards[i]
		if _, ok := queues[sh]; !ok {
			order = append(order, sh)
		}
		queues[sh] = append(queues[sh], i)
	}
	workers := len(order)
	if workers > parallelApplyMaxWorkers {
		workers = parallelApplyMaxWorkers
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	if workers <= 1 {
		for _, i := range group {
			replies[i] = s.inner.Apply(cmds[i].Data)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for q := w; q < len(order); q += workers {
				for _, i := range queues[order[q]] {
					replies[i] = s.inner.Apply(cmds[i].Data)
				}
			}
		}(w)
	}
	wg.Wait()
}
