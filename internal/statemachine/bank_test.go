package statemachine

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func openAccount(t *testing.T, m *Bank, name string, initial uint64) {
	t.Helper()
	if st := ReplyStatus(m.Apply(EncodeOpen(name, initial))); st != StatusOK {
		t.Fatalf("open %s: %v", name, st)
	}
}

func balance(t *testing.T, m *Bank, name string) uint64 {
	t.Helper()
	rep := m.Apply(EncodeBalance(name))
	if ReplyStatus(rep) != StatusOK {
		t.Fatalf("balance %s: %v", name, ReplyStatus(rep))
	}
	v, err := DecodeUvarintReply(ReplyPayload(rep))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBankOpenDepositTransfer(t *testing.T) {
	m := NewBank()
	openAccount(t, m, "alice", 100)
	openAccount(t, m, "bob", 50)

	if st := ReplyStatus(m.Apply(EncodeOpen("alice", 1))); st != StatusConflict {
		t.Fatalf("duplicate open: %v", st)
	}
	if st := ReplyStatus(m.Apply(EncodeDeposit("ghost", 5))); st != StatusNotFound {
		t.Fatalf("deposit to ghost: %v", st)
	}
	if st := ReplyStatus(m.Apply(EncodeTransfer("alice", "bob", 30))); st != StatusOK {
		t.Fatalf("transfer: %v", st)
	}
	if b := balance(t, m, "alice"); b != 70 {
		t.Fatalf("alice = %d", b)
	}
	if b := balance(t, m, "bob"); b != 80 {
		t.Fatalf("bob = %d", b)
	}
	if st := ReplyStatus(m.Apply(EncodeTransfer("alice", "bob", 1000))); st != StatusConflict {
		t.Fatalf("overdraft: %v", st)
	}
	if st := ReplyStatus(m.Apply(EncodeTransfer("alice", "ghost", 1))); st != StatusNotFound {
		t.Fatalf("transfer to ghost: %v", st)
	}
}

func TestBankSelfTransferNoop(t *testing.T) {
	m := NewBank()
	openAccount(t, m, "a", 10)
	if st := ReplyStatus(m.Apply(EncodeTransfer("a", "a", 5))); st != StatusOK {
		t.Fatalf("self transfer: %v", st)
	}
	if b := balance(t, m, "a"); b != 10 {
		t.Fatalf("self transfer changed balance: %d", b)
	}
}

// TestBankConservationProperty is the core of invariant P4: arbitrary
// transfer sequences conserve the total.
func TestBankConservationProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewBank()
		const nAcct = 5
		var want uint64
		for i := 0; i < nAcct; i++ {
			amt := uint64(rng.Intn(1000))
			m.Apply(EncodeOpen("a"+strconv.Itoa(i), amt))
			want += amt
		}
		for i := 0; i < int(nOps); i++ {
			from := "a" + strconv.Itoa(rng.Intn(nAcct))
			to := "a" + strconv.Itoa(rng.Intn(nAcct))
			m.Apply(EncodeTransfer(from, to, uint64(rng.Intn(500))))
		}
		return m.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBankTotalOp(t *testing.T) {
	m := NewBank()
	openAccount(t, m, "a", 7)
	openAccount(t, m, "b", 8)
	total, err := DecodeUvarintReply(ReplyPayload(m.Apply(EncodeTotal())))
	if err != nil || total != 15 {
		t.Fatalf("total: %d %v", total, err)
	}
}

func TestBankSnapshotRoundTrip(t *testing.T) {
	m := NewBank()
	openAccount(t, m, "x", 1)
	openAccount(t, m, "y", 2)
	m.Apply(EncodeDeposit("x", 10))
	snap := m.Snapshot()

	m2 := NewBank()
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m2.Total() != m.Total() {
		t.Fatalf("totals differ: %d vs %d", m2.Total(), m.Total())
	}
	if !bytes.Equal(m2.Snapshot(), snap) {
		t.Fatal("snapshot not stable under round trip")
	}
}

func TestBankRestoreRejectsCorruption(t *testing.T) {
	m := NewBank()
	openAccount(t, m, "x", 1)
	snap := m.Snapshot()
	m2 := NewBank()
	if err := m2.Restore(snap[:len(snap)-1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := m2.Restore(append(bytes.Clone(snap), 9)); err == nil {
		t.Fatal("padded snapshot accepted")
	}
}

func TestBankBadOps(t *testing.T) {
	m := NewBank()
	for _, op := range [][]byte{nil, {0}, {77}, {byte(BankOpen)}} {
		if st := ReplyStatus(m.Apply(op)); st != StatusBadOp {
			t.Errorf("op %v: %v", op, st)
		}
	}
}
