package statemachine

import (
	"testing"
)

// FuzzKVApply: arbitrary op bytes must never panic the machine and must
// leave it in a state that still snapshots/restores cleanly.
func FuzzKVApply(f *testing.F) {
	f.Add(EncodePut("k", []byte("v")))
	f.Add(EncodeGet("k"))
	f.Add(EncodeCAS("k", []byte("a"), []byte("b")))
	f.Add(EncodeKeys("pre", 10))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, op []byte) {
		m := NewKVStore()
		m.Apply(EncodePut("seed", []byte("1")))
		reply := m.Apply(op)
		if len(reply) == 0 {
			t.Fatal("empty reply")
		}
		if st := ReplyStatus(reply); !(st == StatusOK || st == StatusNotFound || st == StatusBadOp || st == StatusConflict) {
			t.Fatalf("unknown status %v", st)
		}
		m2 := NewKVStore()
		if err := m2.Restore(m.Snapshot()); err != nil {
			t.Fatalf("post-op snapshot broken: %v", err)
		}
	})
}

// FuzzBankApply mirrors FuzzKVApply for the bank machine, additionally
// checking that no op can mint or destroy money except the documented ones.
func FuzzBankApply(f *testing.F) {
	f.Add(EncodeTransfer("a", "b", 5))
	f.Add(EncodeBalance("a"))
	f.Add(EncodeTotal())
	f.Add([]byte{0x03})
	f.Fuzz(func(t *testing.T, op []byte) {
		m := NewBank()
		m.Apply(EncodeOpen("a", 100))
		m.Apply(EncodeOpen("b", 100))
		before := m.Total()
		reply := m.Apply(op)
		if len(reply) == 0 {
			t.Fatal("empty reply")
		}
		after := m.Total()
		// Only Open and Deposit may change the total; both require a
		// valid op of that kind.
		if after != before {
			if len(op) == 0 || (BankOp(op[0]) != BankOpen && BankOp(op[0]) != BankDeposit) {
				t.Fatalf("op %v changed total %d -> %d", op, before, after)
			}
		}
	})
}

// FuzzSessionedRestore: arbitrary snapshot bytes must never panic Restore.
func FuzzSessionedRestore(f *testing.F) {
	s := NewSessioned(NewKVStore())
	s.ApplyCommand(appCmd("c", 1, EncodePut("k", []byte("v"))))
	f.Add(s.Snapshot())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, snap []byte) {
		s2 := NewSessioned(NewKVStore())
		if err := s2.Restore(snap); err != nil {
			return
		}
		// A restore that succeeded must produce a working machine.
		if reply, _ := s2.ApplyCommand(appCmd("probe", 1, EncodeGet("k"))); len(reply) == 0 {
			t.Fatal("restored machine dead")
		}
	})
}
