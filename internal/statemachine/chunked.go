package statemachine

// Chunk formats. A chunked snapshot's manifest carries the format byte so a
// restorer can reject a snapshot produced by an incompatible machine before
// feeding it any chunks.
const (
	// SnapshotFormatShards: chunk i holds shard i of a sharded machine,
	// serialized with keys in sorted order. Chunk count equals the (fixed)
	// shard count, so the mapping chunk->shard is positional and chunks are
	// byte-identical across replicas holding equal state.
	SnapshotFormatShards byte = 1
	// SnapshotFormatBlob: chunk 0 is wrapper metadata (the session table for
	// Sessioned) and chunks 1..n-1 are consecutive fixed-size byte ranges of
	// the inner machine's monolithic Snapshot(). Used as the fallback when
	// the inner machine does not implement ChunkedSnapshotter.
	SnapshotFormatBlob byte = 2
	// SnapshotFormatMono: a single chunk holding the full monolithic
	// Snapshot(). Produced only by the reconfig layer's monolithic-transfer
	// ablation mode and restored via Restore, never via RestoreChunk.
	SnapshotFormatMono byte = 3
)

// BlobChunkSize is the range size used by SnapshotFormatBlob fallback chunking.
const BlobChunkSize = 64 << 10

// SnapshotSource is an immutable, cheaply captured snapshot that can be
// serialized chunk by chunk after the capture returns. Implementations are
// copy-on-write forks: capturing one is O(shards), not O(state), and the
// owning machine may keep mutating concurrently. Chunk may be called from a
// single goroutine at a time (not necessarily the capturing one); chunks are
// deterministic, so two replicas with equal state produce byte-identical
// chunk sequences.
type SnapshotSource interface {
	// Format is the SnapshotFormat* constant describing the chunk layout.
	Format() byte
	// NumChunks is the fixed number of chunks in this snapshot.
	NumChunks() int
	// Chunk serializes chunk i (0 <= i < NumChunks).
	Chunk(i int) []byte
}

// ChunkedSnapshotter is an optional Machine capability: machines that
// implement it can fork a snapshot in O(1)/O(shards) time and restore from
// chunks delivered in any order. Machines that do not implement it fall back
// to the monolithic Snapshot/Restore pair (wrapped in SnapshotFormatBlob
// framing by Sessioned).
type ChunkedSnapshotter interface {
	// ForkSnapshot captures the current state as a copy-on-write fork.
	// The caller may serialize it concurrently with further Apply calls.
	ForkSnapshot() SnapshotSource
	// RestoreChunk installs one chunk of a snapshot being restored. Chunks
	// may arrive in any order; each index is delivered at most once.
	RestoreChunk(index int, data []byte) error
	// FinishRestore completes a chunked restore after all total chunks have
	// been delivered via RestoreChunk, validating completeness.
	FinishRestore(total int) error
}

// numShards is the fixed shard count used by the sharded machines (KVStore,
// Bank). It bounds both the COW fork cost at wedge time and the chunk count
// of a chunked snapshot. Fixed so that chunk i always maps to shard i and the
// assignment of keys to chunks is identical on every replica.
const numShards = 32

// shardOf deterministically maps a key to a shard (FNV-1a, mod numShards).
func shardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % numShards)
}

// NumKeyShards is the fixed hash-partition count exported for layers that
// partition the keyspace the same way the machines do (the KV router assigns
// these partitions to RSM groups). Equal to the machines' shard count so a
// router partition is exactly one KVStore shard / snapshot chunk.
const NumKeyShards = numShards

// KeyShard is the exported key→shard hash (identical to the one KVStore uses
// internally), so routing layers agree with the machine about which partition
// a key belongs to.
func KeyShard(key string) int { return shardOf(key) }
