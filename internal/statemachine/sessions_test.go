package statemachine

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func appCmd(client types.NodeID, seq uint64, op []byte) types.Command {
	return types.Command{Kind: types.CmdApp, Client: client, Seq: seq, Data: op}
}

func TestSessionedDedupExactRetry(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	r1, dup := s.ApplyCommand(appCmd("c1", 1, EncodeAdd(5)))
	if dup {
		t.Fatal("first apply marked duplicate")
	}
	r2, dup := s.ApplyCommand(appCmd("c1", 1, EncodeAdd(5)))
	if !dup {
		t.Fatal("retry not marked duplicate")
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("cached reply differs")
	}
	v, _ := DecodeUvarintReply(ReplyPayload(r2))
	if v != 5 {
		t.Fatalf("counter applied twice: %d", v)
	}
}

func TestSessionedStaleSeq(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	s.ApplyCommand(appCmd("c1", 1, EncodeAdd(1)))
	s.ApplyCommand(appCmd("c1", 2, EncodeAdd(1)))
	rep, dup := s.ApplyCommand(appCmd("c1", 1, EncodeAdd(1)))
	if !dup || rep != nil {
		t.Fatalf("stale retry: dup=%v rep=%v", dup, rep)
	}
	if got := s.LastSeq("c1"); got != 2 {
		t.Fatalf("LastSeq = %d", got)
	}
}

func TestSessionedIndependentClients(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	s.ApplyCommand(appCmd("c1", 1, EncodeAdd(1)))
	_, dup := s.ApplyCommand(appCmd("c2", 1, EncodeAdd(1)))
	if dup {
		t.Fatal("different client's seq collided")
	}
	if s.Sessions() != 2 {
		t.Fatalf("sessions = %d", s.Sessions())
	}
}

func TestSessionedSystemCommandsBypassDedup(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	s.ApplyCommand(types.Command{Kind: types.CmdApp, Data: EncodeAdd(1)})
	s.ApplyCommand(types.Command{Kind: types.CmdApp, Data: EncodeAdd(1)})
	rep, _ := s.ApplyCommand(appCmd("c", 1, EncodeCounterGet()))
	v, _ := DecodeUvarintReply(ReplyPayload(rep))
	if v != 2 {
		t.Fatalf("system commands deduped: %d", v)
	}
	if s.Sessions() != 1 {
		t.Fatalf("system commands created sessions: %d", s.Sessions())
	}
}

func TestSessionedNoopIgnored(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	rep, dup := s.ApplyCommand(types.NoopCommand())
	if rep != nil || dup {
		t.Fatal("noop produced effects")
	}
}

func TestSessionedSeqGapAllowed(t *testing.T) {
	// Clients may skip sequence numbers (e.g. a command abandoned after a
	// failed configuration); the session table tracks the max.
	s := NewSessioned(NewCounterMachine())
	s.ApplyCommand(appCmd("c1", 1, EncodeAdd(1)))
	_, dup := s.ApplyCommand(appCmd("c1", 5, EncodeAdd(1)))
	if dup {
		t.Fatal("gap treated as duplicate")
	}
	if s.LastSeq("c1") != 5 {
		t.Fatalf("LastSeq = %d", s.LastSeq("c1"))
	}
}

// TestSessionedSnapshotCarriesDedup is the heart of P4: dedup state moves
// with the snapshot, so a command replayed after a state transfer is
// recognized as a duplicate by the new configuration.
func TestSessionedSnapshotCarriesDedup(t *testing.T) {
	s := NewSessioned(NewBank())
	s.ApplyCommand(appCmd("c1", 1, EncodeOpen("a", 100)))
	s.ApplyCommand(appCmd("c1", 2, EncodeOpen("b", 0)))
	transfer := appCmd("c1", 3, EncodeTransfer("a", "b", 40))
	firstReply, _ := s.ApplyCommand(transfer)

	snap := s.Snapshot()
	s2 := NewSessioned(NewBank())
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}

	// Replay the transfer in the "new configuration".
	rep, dup := s2.ApplyCommand(transfer)
	if !dup {
		t.Fatal("replayed command applied twice after transfer")
	}
	if !bytes.Equal(rep, firstReply) {
		t.Fatal("cached reply lost in snapshot")
	}
	bank := s2.Inner().(*Bank)
	if bank.Total() != 100 {
		t.Fatalf("conservation violated: %d", bank.Total())
	}
	if b := bank.balance("b"); b != 40 {
		t.Fatalf("b = %d, transfer double-applied or lost", b)
	}
}

func TestSessionedSnapshotDeterministic(t *testing.T) {
	build := func() *Sessioned {
		s := NewSessioned(NewKVStore())
		s.ApplyCommand(appCmd("c2", 1, EncodePut("x", []byte("1"))))
		s.ApplyCommand(appCmd("c1", 1, EncodePut("y", []byte("2"))))
		s.ApplyCommand(appCmd("c3", 1, EncodeGet("x")))
		return s
	}
	if !bytes.Equal(build().Snapshot(), build().Snapshot()) {
		t.Fatal("snapshot not deterministic")
	}
}

func TestSessionedRestoreRejectsCorruption(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	s.ApplyCommand(appCmd("c1", 1, EncodeAdd(1)))
	snap := s.Snapshot()
	s2 := NewSessioned(NewCounterMachine())
	if err := s2.Restore(snap[:len(snap)-1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := s2.Restore(append(bytes.Clone(snap), 1)); err == nil {
		t.Fatal("padded snapshot accepted")
	}
}

func TestSessionedClientsListing(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	s.ApplyCommand(appCmd("b", 1, EncodeAdd(1)))
	s.ApplyCommand(appCmd("a", 1, EncodeAdd(1)))
	got := s.SessionClients()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("clients: %v", got)
	}
}

// TestSessionedRoundTripProperty: restoring a snapshot preserves both the
// machine state and the session table for arbitrary histories (P5 for the
// wrapper).
func TestSessionedRoundTripProperty(t *testing.T) {
	f := func(seqs []uint64, deltas []uint64) bool {
		s := NewSessioned(NewCounterMachine())
		for i, seq := range seqs {
			var d uint64
			if i < len(deltas) {
				d = deltas[i] % 1000
			}
			s.ApplyCommand(appCmd("c", seq%16, EncodeAdd(d)))
		}
		s2 := NewSessioned(NewCounterMachine())
		if err := s2.Restore(s.Snapshot()); err != nil {
			return false
		}
		return bytes.Equal(s.Snapshot(), s2.Snapshot()) && s.LastSeq("c") == s2.LastSeq("c")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterMachine(t *testing.T) {
	m := &Counter{}
	if v, _ := DecodeUvarintReply(ReplyPayload(m.Apply(EncodeAdd(3)))); v != 3 {
		t.Fatalf("add: %d", v)
	}
	m.Apply(EncodeCounterSet(100))
	if v, _ := DecodeUvarintReply(ReplyPayload(m.Apply(EncodeCounterGet()))); v != 100 {
		t.Fatalf("get: %d", v)
	}
	if st := ReplyStatus(m.Apply([]byte{42})); st != StatusBadOp {
		t.Fatalf("bad op: %v", st)
	}
	m2 := &Counter{}
	if err := m2.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if m2.Value() != 100 {
		t.Fatalf("restored %d", m2.Value())
	}
	if err := m2.Restore([]byte{0xff}); err == nil {
		t.Fatal("bad snapshot accepted")
	}
	if err := m2.Restore(append(m.Snapshot(), 0)); err == nil {
		t.Fatal("padded snapshot accepted")
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOK: "ok", StatusNotFound: "not-found", StatusBadOp: "bad-op", StatusConflict: "conflict",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
	if ReplyStatus(nil) != StatusBadOp {
		t.Error("empty reply status")
	}
	if ReplyPayload([]byte{1}) != nil {
		t.Error("payload of bare status")
	}
}
