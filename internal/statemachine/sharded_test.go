package statemachine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// randomBatch draws a decided batch with the hazards parallel apply must
// survive: same-key contention, duplicate and stale retries, noops, system
// commands, and barrier ops (KVKeys/KVSize or bank transfers/totals).
func randomKVBatch(rng *rand.Rand, seqs map[types.NodeID]uint64, n int) []types.Command {
	cmds := make([]types.Command, 0, n)
	for i := 0; i < n; i++ {
		client := types.NodeID(fmt.Sprintf("c%d", rng.Intn(4)))
		key := fmt.Sprintf("k%d", rng.Intn(6))
		var op []byte
		switch rng.Intn(12) {
		case 0:
			op = EncodeGet(key)
		case 1:
			op = EncodeDelete(key)
		case 2:
			op = EncodeAppend(key, []byte{byte('a' + rng.Intn(4))})
		case 3:
			op = EncodeCAS(key, []byte("v1"), []byte("v2"))
		case 4:
			op = EncodeKeys("k", 10) // barrier
		case 5:
			op = EncodeSize() // barrier
		default:
			op = EncodePut(key, []byte(fmt.Sprintf("v%d", rng.Intn(4))))
		}
		switch rng.Intn(10) {
		case 0: // duplicate of the client's last applied command
			cmds = append(cmds, types.Command{Kind: types.CmdApp, Client: client, Seq: seqs[client], Data: op})
		case 1: // stale retry
			if seqs[client] > 1 {
				cmds = append(cmds, types.Command{Kind: types.CmdApp, Client: client, Seq: seqs[client] - 1, Data: op})
				continue
			}
			fallthrough
		case 2: // noop
			cmds = append(cmds, types.Command{Kind: types.CmdNoop})
		case 3: // system command, no session
			cmds = append(cmds, types.Command{Kind: types.CmdApp, Data: op})
		default:
			seqs[client]++
			cmds = append(cmds, types.Command{Kind: types.CmdApp, Client: client, Seq: seqs[client], Data: op})
		}
	}
	return cmds
}

func randomBankBatch(rng *rand.Rand, seqs map[types.NodeID]uint64, n int) []types.Command {
	accts := []string{"a", "b", "c", "d", "e"}
	cmds := make([]types.Command, 0, n)
	for i := 0; i < n; i++ {
		client := types.NodeID(fmt.Sprintf("c%d", rng.Intn(4)))
		var op []byte
		switch rng.Intn(8) {
		case 0:
			op = EncodeOpen(accts[rng.Intn(len(accts))], uint64(rng.Intn(50)))
		case 1:
			op = EncodeBalance(accts[rng.Intn(len(accts))])
		case 2, 3:
			op = EncodeTotal() // barrier
		default:
			op = EncodeTransfer(accts[rng.Intn(len(accts))], accts[rng.Intn(len(accts))], uint64(rng.Intn(10))) // barrier
		}
		seqs[client]++
		cmds = append(cmds, types.Command{Kind: types.CmdApp, Client: client, Seq: seqs[client], Data: op})
	}
	return cmds
}

// TestApplyBatchMatchesSerial checks the load-bearing property of parallel
// apply: for any decided batch, ApplyBatch(parallel) produces byte-identical
// replies, duplicate flags and end state to the one-command-at-a-time path.
func TestApplyBatchMatchesSerial(t *testing.T) {
	type gen func(*rand.Rand, map[types.NodeID]uint64, int) []types.Command
	cases := []struct {
		name    string
		factory Factory
		batch   gen
	}{
		{"kv", NewKVMachine, randomKVBatch},
		{"bank", NewBankMachine, randomBankBatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				serial := NewSessioned(tc.factory())
				par := NewSessioned(tc.factory())
				rng := rand.New(rand.NewSource(seed))
				seqs := make(map[types.NodeID]uint64)
				for round := 0; round < 8; round++ {
					// Replay the same batch into both machines. Sizes
					// straddle parallelApplyMinOps so both the fan-out and
					// the small-batch serial shortcut are exercised.
					batch := tc.batch(rng, seqs, 4+rng.Intn(120))
					wantReplies := make([][]byte, len(batch))
					wantDups := make([]bool, len(batch))
					for i, cmd := range batch {
						wantReplies[i], wantDups[i] = serial.ApplyCommand(cmd)
					}
					gotReplies, gotDups := par.ApplyBatch(batch, true)
					for i := range batch {
						if gotDups[i] != wantDups[i] {
							t.Fatalf("seed %d round %d cmd %d: dup=%v want %v", seed, round, i, gotDups[i], wantDups[i])
						}
						if !bytes.Equal(gotReplies[i], wantReplies[i]) {
							t.Fatalf("seed %d round %d cmd %d: reply %x want %x", seed, round, i, gotReplies[i], wantReplies[i])
						}
					}
					if !bytes.Equal(par.Snapshot(), serial.Snapshot()) {
						t.Fatalf("seed %d round %d: snapshots diverge after batch", seed, round)
					}
				}
			}
		})
	}
}

// TestApplyBatchSerialFlag checks the ablation knob: parallel=false must use
// the exact serial path even on a sharded machine.
func TestApplyBatchSerialFlag(t *testing.T) {
	serial := NewSessioned(NewKVStore())
	batched := NewSessioned(NewKVStore())
	rng := rand.New(rand.NewSource(42))
	seqs := make(map[types.NodeID]uint64)
	batch := randomKVBatch(rng, seqs, 64)
	for _, cmd := range batch {
		serial.ApplyCommand(cmd)
	}
	batched.ApplyBatch(batch, false)
	if !bytes.Equal(serial.Snapshot(), batched.Snapshot()) {
		t.Fatal("serial-flag ApplyBatch diverged from ApplyCommand loop")
	}
}

// TestApplyBatchDuringFork checks that parallel apply respects copy-on-write
// forks: a snapshot forked before the batch must be unaffected by the
// batch's mutations even while shard workers clone shards concurrently.
func TestApplyBatchDuringFork(t *testing.T) {
	s := NewSessioned(NewKVStore())
	for i := 0; i < 40; i++ {
		s.ApplyCommand(types.Command{Kind: types.CmdApp, Client: "c0", Seq: uint64(i + 1),
			Data: EncodePut(fmt.Sprintf("k%d", i), []byte("before"))})
	}
	before := s.Snapshot()
	fork := s.ForkSnapshot()
	rng := rand.New(rand.NewSource(7))
	seqs := map[types.NodeID]uint64{"c0": 40}
	s.ApplyBatch(randomKVBatch(rng, seqs, 200), true)
	restored := NewSessioned(NewKVStore())
	for i := 0; i < fork.NumChunks(); i++ {
		if err := restored.RestoreChunk(i, fork.Chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.FinishRestore(fork.NumChunks()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.Snapshot(), before) {
		t.Fatal("fork captured before the batch observed the batch's writes")
	}
}

func TestOpShardBarriers(t *testing.T) {
	kv := NewKVStore()
	if _, ok := kv.OpShard(EncodeKeys("k", 1)); ok {
		t.Fatal("KVKeys must be a barrier")
	}
	if _, ok := kv.OpShard(EncodeSize()); ok {
		t.Fatal("KVSize must be a barrier")
	}
	if _, ok := kv.OpShard(nil); ok {
		t.Fatal("empty op must be a barrier")
	}
	if sh, ok := kv.OpShard(EncodePut("k1", []byte("v"))); !ok || sh != shardOf("k1") {
		t.Fatalf("KVPut shard = %d,%v want %d,true", sh, ok, shardOf("k1"))
	}
	b := NewBank()
	if _, ok := b.OpShard(EncodeTransfer("a", "b", 1)); ok {
		t.Fatal("BankTransfer must be a barrier")
	}
	if _, ok := b.OpShard(EncodeTotal()); ok {
		t.Fatal("BankTotal must be a barrier")
	}
	if sh, ok := b.OpShard(EncodeDeposit("a", 1)); !ok || sh != shardOf("a") {
		t.Fatalf("BankDeposit shard = %d,%v want %d,true", sh, ok, shardOf("a"))
	}
}
