package statemachine

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// KVOp enumerates the key/value machine's operations. Values start at 1.
type KVOp uint8

const (
	// KVPut sets key=value. Reply: OK.
	KVPut KVOp = 1
	// KVGet reads a key. Reply: OK+value or NotFound.
	KVGet KVOp = 2
	// KVDelete removes a key. Reply: OK (even if absent).
	KVDelete KVOp = 3
	// KVAppend appends bytes to a key's value (creating it). Reply: OK.
	KVAppend KVOp = 4
	// KVCAS sets key=new iff current value equals expect. Reply: OK or
	// Conflict+current (NotFound if the key is absent).
	KVCAS KVOp = 5
	// KVKeys lists up to limit keys with a prefix. Reply: OK+list.
	KVKeys KVOp = 6
	// KVSize reports the number of keys. Reply: OK+uvarint.
	KVSize KVOp = 7
)

// KVStore is a deterministic in-memory key/value machine.
// The zero value is not usable; construct with NewKVStore.
type KVStore struct {
	data map[string][]byte
}

var _ Machine = (*KVStore)(nil)

// NewKVStore returns an empty key/value machine.
func NewKVStore() *KVStore { return &KVStore{data: make(map[string][]byte)} }

// NewKVMachine is a Factory for KVStore.
func NewKVMachine() Machine { return NewKVStore() }

// EncodePut encodes a put operation.
func EncodePut(key string, value []byte) []byte {
	w := types.NewWriter(2 + len(key) + len(value) + 8)
	w.Byte(byte(KVPut))
	w.String(key)
	w.BytesField(value)
	return w.Bytes()
}

// EncodeGet encodes a get operation.
func EncodeGet(key string) []byte {
	w := types.NewWriter(2 + len(key))
	w.Byte(byte(KVGet))
	w.String(key)
	return w.Bytes()
}

// EncodeDelete encodes a delete operation.
func EncodeDelete(key string) []byte {
	w := types.NewWriter(2 + len(key))
	w.Byte(byte(KVDelete))
	w.String(key)
	return w.Bytes()
}

// EncodeAppend encodes an append operation.
func EncodeAppend(key string, suffix []byte) []byte {
	w := types.NewWriter(2 + len(key) + len(suffix) + 8)
	w.Byte(byte(KVAppend))
	w.String(key)
	w.BytesField(suffix)
	return w.Bytes()
}

// EncodeCAS encodes a compare-and-swap operation.
func EncodeCAS(key string, expect, newValue []byte) []byte {
	w := types.NewWriter(2 + len(key) + len(expect) + len(newValue) + 12)
	w.Byte(byte(KVCAS))
	w.String(key)
	w.BytesField(expect)
	w.BytesField(newValue)
	return w.Bytes()
}

// EncodeKeys encodes a prefix-list operation.
func EncodeKeys(prefix string, limit uint64) []byte {
	w := types.NewWriter(2 + len(prefix) + 8)
	w.Byte(byte(KVKeys))
	w.String(prefix)
	w.Uvarint(limit)
	return w.Bytes()
}

// EncodeSize encodes a size query.
func EncodeSize() []byte { return []byte{byte(KVSize)} }

// ReadOnly implements ReadOnlyDetector: gets, key listings and size queries
// never mutate the store.
func (m *KVStore) ReadOnly(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	switch KVOp(op[0]) {
	case KVGet, KVKeys, KVSize:
		return true
	default:
		return false
	}
}

// Apply implements Machine.
func (m *KVStore) Apply(op []byte) []byte {
	if len(op) == 0 {
		return statusReply(StatusBadOp)
	}
	r := types.NewReader(op[1:])
	switch KVOp(op[0]) {
	case KVPut:
		key := r.String()
		val := r.BytesField()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		m.data[key] = val
		return okReply(nil)
	case KVGet:
		key := r.String()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		v, ok := m.data[key]
		if !ok {
			return statusReply(StatusNotFound)
		}
		return okReply(v)
	case KVDelete:
		key := r.String()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		delete(m.data, key)
		return okReply(nil)
	case KVAppend:
		key := r.String()
		suffix := r.BytesField()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		cur := m.data[key]
		next := make([]byte, 0, len(cur)+len(suffix))
		next = append(next, cur...)
		next = append(next, suffix...)
		m.data[key] = next
		return okReply(nil)
	case KVCAS:
		key := r.String()
		expect := r.BytesField()
		newVal := r.BytesField()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		cur, ok := m.data[key]
		if !ok {
			return statusReply(StatusNotFound)
		}
		if !bytesEqual(cur, expect) {
			out := make([]byte, 0, 1+len(cur))
			out = append(out, byte(StatusConflict))
			return append(out, cur...)
		}
		m.data[key] = newVal
		return okReply(nil)
	case KVKeys:
		prefix := r.String()
		limit := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		keys := make([]string, 0, 16)
		for k := range m.data {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if limit > 0 && uint64(len(keys)) > limit {
			keys = keys[:limit]
		}
		w := types.NewWriter(1 + 8*len(keys))
		w.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.String(k)
		}
		return okReply(w.Bytes())
	case KVSize:
		w := types.NewWriter(4)
		w.Uvarint(uint64(len(m.data)))
		return okReply(w.Bytes())
	default:
		return statusReply(StatusBadOp)
	}
}

// Snapshot implements Machine. Keys are emitted in sorted order so snapshots
// are byte-identical across replicas with equal state.
func (m *KVStore) Snapshot() []byte {
	keys := make([]string, 0, len(m.data))
	total := 0
	for k, v := range m.data {
		keys = append(keys, k)
		total += len(k) + len(v) + 8
	}
	sort.Strings(keys)
	w := types.NewWriter(8 + total)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.BytesField(m.data[k])
	}
	return w.Bytes()
}

// Restore implements Machine.
func (m *KVStore) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("kv snapshot header: %w", err)
	}
	data := make(map[string][]byte, n)
	for i := uint64(0); i < n; i++ {
		k := r.String()
		v := r.BytesField()
		if err := r.Err(); err != nil {
			return fmt.Errorf("kv snapshot entry %d: %w", i, err)
		}
		data[k] = v
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in kv snapshot", types.ErrCodec, r.Remaining())
	}
	m.data = data
	return nil
}

// Len returns the number of keys, for tests and state-size accounting.
func (m *KVStore) Len() int { return len(m.data) }

// DecodeKeysReply parses the payload of a successful KVKeys reply.
func DecodeKeysReply(payload []byte) ([]string, error) {
	r := types.NewReader(payload)
	n := r.Uvarint()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
