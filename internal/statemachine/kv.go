package statemachine

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// KVOp enumerates the key/value machine's operations. Values start at 1.
type KVOp uint8

const (
	// KVPut sets key=value. Reply: OK.
	KVPut KVOp = 1
	// KVGet reads a key. Reply: OK+value or NotFound.
	KVGet KVOp = 2
	// KVDelete removes a key. Reply: OK (even if absent).
	KVDelete KVOp = 3
	// KVAppend appends bytes to a key's value (creating it). Reply: OK.
	KVAppend KVOp = 4
	// KVCAS sets key=new iff current value equals expect. Reply: OK or
	// Conflict+current (NotFound if the key is absent).
	KVCAS KVOp = 5
	// KVKeys lists up to limit keys with a prefix. Reply: OK+list.
	KVKeys KVOp = 6
	// KVSize reports the number of keys. Reply: OK+uvarint.
	KVSize KVOp = 7
)

// KVStore is a deterministic in-memory key/value machine. Keys are hashed
// across a fixed set of shards; a snapshot fork captures the shard map
// references and marks them shared, so the fork is O(shards) and the machine
// clones a shard lazily on first write after a fork (copy-on-write).
// The zero value is not usable; construct with NewKVStore.
type KVStore struct {
	shards [numShards]map[string][]byte
	// shared[i] means shards[i] may be referenced by an outstanding
	// snapshot fork and must be cloned before mutation.
	shared [numShards]bool
	// sizes[i] is the key count of shard i. Kept per shard (not one global
	// counter) so single-key ops running on distinct shards under parallel
	// apply never write a common field; aggregate queries sum it.
	sizes [numShards]int
}

var (
	_ Machine            = (*KVStore)(nil)
	_ ChunkedSnapshotter = (*KVStore)(nil)
	_ ShardedApplier     = (*KVStore)(nil)
)

// NewKVStore returns an empty key/value machine.
func NewKVStore() *KVStore {
	m := &KVStore{}
	for i := range m.shards {
		m.shards[i] = make(map[string][]byte)
	}
	return m
}

// NewKVMachine is a Factory for KVStore.
func NewKVMachine() Machine { return NewKVStore() }

// EncodePut encodes a put operation.
func EncodePut(key string, value []byte) []byte {
	w := types.NewWriter(2 + len(key) + len(value) + 8)
	w.Byte(byte(KVPut))
	w.String(key)
	w.BytesField(value)
	return w.Bytes()
}

// EncodeGet encodes a get operation.
func EncodeGet(key string) []byte {
	w := types.NewWriter(2 + len(key))
	w.Byte(byte(KVGet))
	w.String(key)
	return w.Bytes()
}

// EncodeDelete encodes a delete operation.
func EncodeDelete(key string) []byte {
	w := types.NewWriter(2 + len(key))
	w.Byte(byte(KVDelete))
	w.String(key)
	return w.Bytes()
}

// EncodeAppend encodes an append operation.
func EncodeAppend(key string, suffix []byte) []byte {
	w := types.NewWriter(2 + len(key) + len(suffix) + 8)
	w.Byte(byte(KVAppend))
	w.String(key)
	w.BytesField(suffix)
	return w.Bytes()
}

// EncodeCAS encodes a compare-and-swap operation.
func EncodeCAS(key string, expect, newValue []byte) []byte {
	w := types.NewWriter(2 + len(key) + len(expect) + len(newValue) + 12)
	w.Byte(byte(KVCAS))
	w.String(key)
	w.BytesField(expect)
	w.BytesField(newValue)
	return w.Bytes()
}

// EncodeKeys encodes a prefix-list operation.
func EncodeKeys(prefix string, limit uint64) []byte {
	w := types.NewWriter(2 + len(prefix) + 8)
	w.Byte(byte(KVKeys))
	w.String(prefix)
	w.Uvarint(limit)
	return w.Bytes()
}

// EncodeSize encodes a size query.
func EncodeSize() []byte { return []byte{byte(KVSize)} }

// ReadOnly implements ReadOnlyDetector: gets, key listings and size queries
// never mutate the store.
func (m *KVStore) ReadOnly(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	switch KVOp(op[0]) {
	case KVGet, KVKeys, KVSize:
		return true
	default:
		return false
	}
}

// get reads a key without triggering a clone.
func (m *KVStore) get(key string) ([]byte, bool) {
	v, ok := m.shards[shardOf(key)][key]
	return v, ok
}

// mutable returns the shard holding key, cloning it first if a snapshot fork
// may still reference it.
func (m *KVStore) mutable(key string) map[string][]byte {
	i := shardOf(key)
	if m.shared[i] {
		clone := make(map[string][]byte, len(m.shards[i]))
		for k, v := range m.shards[i] {
			clone[k] = v
		}
		m.shards[i] = clone
		m.shared[i] = false
	}
	return m.shards[i]
}

// Apply implements Machine.
func (m *KVStore) Apply(op []byte) []byte {
	if len(op) == 0 {
		return statusReply(StatusBadOp)
	}
	r := types.NewReader(op[1:])
	switch KVOp(op[0]) {
	case KVPut:
		key := r.String()
		val := r.BytesField()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		sh := m.mutable(key)
		if _, ok := sh[key]; !ok {
			m.sizes[shardOf(key)]++
		}
		sh[key] = val
		return okReply(nil)
	case KVGet:
		key := r.String()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		v, ok := m.get(key)
		if !ok {
			return statusReply(StatusNotFound)
		}
		return okReply(v)
	case KVDelete:
		key := r.String()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		if _, ok := m.get(key); ok {
			delete(m.mutable(key), key)
			m.sizes[shardOf(key)]--
		}
		return okReply(nil)
	case KVAppend:
		key := r.String()
		suffix := r.BytesField()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		sh := m.mutable(key)
		cur, ok := sh[key]
		if !ok {
			m.sizes[shardOf(key)]++
		}
		next := make([]byte, 0, len(cur)+len(suffix))
		next = append(next, cur...)
		next = append(next, suffix...)
		sh[key] = next
		return okReply(nil)
	case KVCAS:
		key := r.String()
		expect := r.BytesField()
		newVal := r.BytesField()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		cur, ok := m.get(key)
		if !ok {
			return statusReply(StatusNotFound)
		}
		if !bytesEqual(cur, expect) {
			out := make([]byte, 0, 1+len(cur))
			out = append(out, byte(StatusConflict))
			return append(out, cur...)
		}
		m.mutable(key)[key] = newVal
		return okReply(nil)
	case KVKeys:
		prefix := r.String()
		limit := r.Uvarint()
		if r.Err() != nil {
			return statusReply(StatusBadOp)
		}
		keys := make([]string, 0, 16)
		for i := range m.shards {
			for k := range m.shards[i] {
				if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
					keys = append(keys, k)
				}
			}
		}
		sort.Strings(keys)
		if limit > 0 && uint64(len(keys)) > limit {
			keys = keys[:limit]
		}
		w := types.NewWriter(1 + 8*len(keys))
		w.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.String(k)
		}
		return okReply(w.Bytes())
	case KVSize:
		w := types.NewWriter(4)
		w.Uvarint(uint64(m.Len()))
		return okReply(w.Bytes())
	default:
		return statusReply(StatusBadOp)
	}
}

// Snapshot implements Machine. Keys are emitted in globally sorted order so
// snapshots are byte-identical across replicas with equal state (and
// byte-identical to the pre-sharding format).
func (m *KVStore) Snapshot() []byte {
	keys := make([]string, 0, m.Len())
	total := 0
	for i := range m.shards {
		for k, v := range m.shards[i] {
			keys = append(keys, k)
			total += len(k) + len(v) + 8
		}
	}
	sort.Strings(keys)
	w := types.NewWriter(8 + total)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.BytesField(m.shards[shardOf(k)][k])
	}
	return w.Bytes()
}

// Restore implements Machine.
func (m *KVStore) Restore(snapshot []byte) error {
	r := types.NewReader(snapshot)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("kv snapshot header: %w", err)
	}
	var shards [numShards]map[string][]byte
	for i := range shards {
		shards[i] = make(map[string][]byte)
	}
	for i := uint64(0); i < n; i++ {
		k := r.String()
		v := r.BytesField()
		if err := r.Err(); err != nil {
			return fmt.Errorf("kv snapshot entry %d: %w", i, err)
		}
		shards[shardOf(k)][k] = v
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in kv snapshot", types.ErrCodec, r.Remaining())
	}
	m.shards = shards
	m.shared = [numShards]bool{}
	for i := range shards {
		m.sizes[i] = len(shards[i])
	}
	return nil
}

// kvFork is a copy-on-write snapshot of a KVStore: it holds the shard map
// references captured at fork time. The maps are never mutated after capture
// (the machine clones a shared shard before writing), so serializing them
// concurrently with further applies is safe.
type kvFork struct {
	shards [numShards]map[string][]byte
}

// ForkSnapshot implements ChunkedSnapshotter. O(numShards): it copies the
// shard references and marks every shard shared; the next write to a shard
// pays for one clone. Stale shared marks (after the fork is dropped) cost at
// most one extra clone per shard and are cleared by Restore.
func (m *KVStore) ForkSnapshot() SnapshotSource {
	f := &kvFork{shards: m.shards}
	for i := range m.shared {
		m.shared[i] = true
	}
	return f
}

func (f *kvFork) Format() byte   { return SnapshotFormatShards }
func (f *kvFork) NumChunks() int { return numShards }

// Chunk serializes shard i: uvarint count, then sorted (key, value) pairs.
func (f *kvFork) Chunk(i int) []byte {
	sh := f.shards[i]
	keys := make([]string, 0, len(sh))
	total := 0
	for k, v := range sh {
		keys = append(keys, k)
		total += len(k) + len(v) + 8
	}
	sort.Strings(keys)
	w := types.NewWriter(8 + total)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.BytesField(sh[k])
	}
	return w.Bytes()
}

// RestoreChunk implements ChunkedSnapshotter: installs shard index from its
// serialized form. Chunks may arrive in any order.
func (m *KVStore) RestoreChunk(index int, data []byte) error {
	if index < 0 || index >= numShards {
		return fmt.Errorf("%w: kv chunk index %d out of range", types.ErrCodec, index)
	}
	r := types.NewReader(data)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("kv chunk %d header: %w", index, err)
	}
	sh := make(map[string][]byte, n)
	for i := uint64(0); i < n; i++ {
		k := r.String()
		v := r.BytesField()
		if err := r.Err(); err != nil {
			return fmt.Errorf("kv chunk %d entry %d: %w", index, i, err)
		}
		if shardOf(k) != index {
			return fmt.Errorf("%w: key %q does not belong to kv shard %d", types.ErrCodec, k, index)
		}
		sh[k] = v
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: trailing bytes in kv chunk %d", types.ErrCodec, index)
	}
	m.shards[index] = sh
	m.shared[index] = false
	m.sizes[index] = len(sh)
	return nil
}

// FinishRestore implements ChunkedSnapshotter.
func (m *KVStore) FinishRestore(total int) error {
	if total != numShards {
		return fmt.Errorf("%w: kv chunked snapshot has %d chunks, want %d", types.ErrCodec, total, numShards)
	}
	return nil
}

// Range calls fn for every key/value pair, in no particular order, stopping
// early if fn returns false. The router's partitioned machine uses it to
// extract one hash partition's keys when handing a shard to another group;
// values must not be mutated by fn.
func (m *KVStore) Range(fn func(key string, value []byte) bool) {
	for i := range m.shards {
		for k, v := range m.shards[i] {
			if !fn(k, v) {
				return
			}
		}
	}
}

// Len returns the number of keys, for tests and state-size accounting.
func (m *KVStore) Len() int {
	n := 0
	for i := range m.sizes {
		n += m.sizes[i]
	}
	return n
}

// OpShard implements ShardedApplier. Single-key ops report the shard of
// their key; KVKeys and KVSize scan every shard, so they (and anything
// malformed or unknown) are barriers.
func (m *KVStore) OpShard(op []byte) (int, bool) {
	if len(op) == 0 {
		return 0, false
	}
	switch KVOp(op[0]) {
	case KVPut, KVGet, KVDelete, KVAppend, KVCAS:
		r := types.NewReader(op[1:])
		key := r.String()
		if r.Err() != nil {
			return 0, false
		}
		return shardOf(key), true
	default:
		return 0, false
	}
}

// NumShards implements ShardedApplier.
func (m *KVStore) NumShards() int { return numShards }

// DecodeKeysReply parses the payload of a successful KVKeys reply.
func DecodeKeysReply(payload []byte) ([]string, error) {
	r := types.NewReader(payload)
	n := r.Uvarint()
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
