package statemachine

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/types"
)

func TestSessionLimitEvictsLeastRecentlyWritten(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	s.SetSessionLimit(2)
	s.ApplyCommand(appCmd("a", 1, EncodeAdd(1)))
	s.ApplyCommand(appCmd("b", 1, EncodeAdd(1)))
	s.ApplyCommand(appCmd("a", 2, EncodeAdd(1))) // refresh a
	s.ApplyCommand(appCmd("c", 1, EncodeAdd(1))) // evicts b, not a
	if s.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", s.Sessions())
	}
	if s.LastSeq("b") != 0 {
		t.Fatal("b not evicted")
	}
	if s.LastSeq("a") != 2 || s.LastSeq("c") != 1 {
		t.Fatalf("wrong survivors: a=%d c=%d", s.LastSeq("a"), s.LastSeq("c"))
	}
}

// An evicted client that retries a command is refused — treated as a stale
// duplicate, never re-executed — while a genuinely new client (seq 1) is
// always admitted.
func TestSessionEvictedRetryRefused(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	s.SetSessionLimit(1)
	s.ApplyCommand(appCmd("a", 1, EncodeAdd(10)))
	s.ApplyCommand(appCmd("b", 1, EncodeAdd(1))) // evicts a

	rep, dup := s.ApplyCommand(appCmd("a", 2, EncodeAdd(10)))
	if !dup || rep != nil {
		t.Fatalf("evicted retry executed: dup=%v rep=%v", dup, rep)
	}
	v, _ := DecodeUvarintReply(ReplyPayload(mustReply(t, s, "probe")))
	if v != 11 {
		t.Fatalf("counter %d, want 11 (evicted retry must not apply)", v)
	}

	// A fresh client starting at seq 1 is admitted as usual.
	if _, dup := s.ApplyCommand(appCmd("fresh", 1, EncodeAdd(1))); dup {
		t.Fatal("fresh seq-1 client refused")
	}
}

func mustReply(t *testing.T, s *Sessioned, client types.NodeID) []byte {
	t.Helper()
	rep, dup := s.ApplyCommand(appCmd(client, 1, EncodeAdd(0)))
	if dup {
		t.Fatalf("probe refused for %s", client)
	}
	return rep
}

// Unbounded tables keep the historical behavior: unknown clients at any seq
// are admitted (a restarted client may legitimately resume mid-sequence).
func TestUnboundedTableAdmitsUnknownHighSeq(t *testing.T) {
	s := NewSessioned(NewCounterMachine())
	if _, dup := s.ApplyCommand(appCmd("a", 7, EncodeAdd(1))); dup {
		t.Fatal("unbounded table refused an unknown high-seq client")
	}
}

// Two replicas applying the same command sequence must evict the same
// sessions and produce byte-identical snapshots — eviction order is
// replicated state under a bound.
func TestSessionLimitDeterministicAcrossReplicas(t *testing.T) {
	run := func() *Sessioned {
		s := NewSessioned(NewCounterMachine())
		s.SetSessionLimit(3)
		for i := 0; i < 40; i++ {
			c := types.NodeID(fmt.Sprintf("c%d", i%7))
			s.ApplyCommand(appCmd(c, uint64(i/7+1), EncodeAdd(1)))
		}
		return s
	}
	a, b := run(), run()
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("replicas with identical histories snapshot differently")
	}
}

// A snapshot taken under a bound restores the recency order, so a joiner
// evicts the same victim the source would.
func TestSessionLimitSurvivesSnapshotRestore(t *testing.T) {
	src := NewSessioned(NewCounterMachine())
	src.SetSessionLimit(2)
	src.ApplyCommand(appCmd("a", 1, EncodeAdd(1)))
	src.ApplyCommand(appCmd("b", 1, EncodeAdd(1)))
	src.ApplyCommand(appCmd("a", 2, EncodeAdd(1))) // order now: b, a

	dst := NewSessioned(NewCounterMachine())
	dst.SetSessionLimit(2)
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Same next command on both sides must evict the same session (b).
	src.ApplyCommand(appCmd("c", 1, EncodeAdd(1)))
	dst.ApplyCommand(appCmd("c", 1, EncodeAdd(1)))
	if !bytes.Equal(src.Snapshot(), dst.Snapshot()) {
		t.Fatal("restored replica diverged on next eviction")
	}
	if dst.LastSeq("b") != 0 || dst.LastSeq("a") != 2 {
		t.Fatalf("wrong victim after restore: b=%d a=%d", dst.LastSeq("b"), dst.LastSeq("a"))
	}
}

// The chunked path (chunk 0 = session table) must carry the same order.
func TestSessionLimitSurvivesChunkedRestore(t *testing.T) {
	src := NewSessioned(NewCounterMachine())
	src.SetSessionLimit(2)
	src.ApplyCommand(appCmd("a", 1, EncodeAdd(1)))
	src.ApplyCommand(appCmd("b", 1, EncodeAdd(1)))
	src.ApplyCommand(appCmd("a", 2, EncodeAdd(1)))

	fork := src.ForkSnapshot()
	dst := NewSessioned(NewCounterMachine())
	dst.SetSessionLimit(2)
	for i := 0; i < fork.NumChunks(); i++ {
		if err := dst.RestoreChunk(i, fork.Chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.FinishRestore(fork.NumChunks()); err != nil {
		t.Fatal(err)
	}
	src.ApplyCommand(appCmd("c", 1, EncodeAdd(1)))
	dst.ApplyCommand(appCmd("c", 1, EncodeAdd(1)))
	if dst.LastSeq("b") != 0 || dst.LastSeq("a") != 2 || dst.LastSeq("c") != 1 {
		t.Fatalf("chunked restore lost recency order: b=%d a=%d c=%d",
			dst.LastSeq("b"), dst.LastSeq("a"), dst.LastSeq("c"))
	}
}

// ApplyBatch (serial and parallel) must enforce the same eviction and
// refusal rules as ApplyCommand, in decided order.
func TestSessionLimitApplyBatchMatchesSerial(t *testing.T) {
	build := func() []types.Command {
		var cmds []types.Command
		for i := 0; i < 64; i++ {
			c := types.NodeID(fmt.Sprintf("c%d", i%9))
			cmds = append(cmds, appCmd(c, uint64(i/9+1), EncodePut(fmt.Sprintf("k%d", i%9), []byte{byte(i)})))
		}
		// An evicted client's high-seq retry rides in the middle.
		cmds = append(cmds, appCmd("ghost", 5, EncodePut("g", []byte("x"))))
		return cmds
	}
	serial := NewSessioned(NewKVStore())
	serial.SetSessionLimit(4)
	parallel := NewSessioned(NewKVStore())
	parallel.SetSessionLimit(4)

	cmds := build()
	sr, sd := serial.ApplyBatch(cmds, false)
	pr, pd := parallel.ApplyBatch(cmds, true)
	for i := range cmds {
		if sd[i] != pd[i] || !bytes.Equal(sr[i], pr[i]) {
			t.Fatalf("cmd %d diverged: serial dup=%v rep=%q, parallel dup=%v rep=%q",
				i, sd[i], sr[i], pd[i], pr[i])
		}
	}
	if !bytes.Equal(serial.Snapshot(), parallel.Snapshot()) {
		t.Fatal("serial and parallel batch apply diverged")
	}
	if serial.LastSeq("ghost") != 0 {
		t.Fatal("unknown high-seq client executed under a bound")
	}
}

// Pin the per-session costs at 100k sessions: table build, dedup lookup, and
// bytes per session. The dedup fast path must stay O(1) regardless of table
// size for the megaload harness to be honest.
func BenchmarkSessionTable100k(b *testing.B) {
	const n = 100_000
	s := NewSessioned(NewCounterMachine())
	for i := 0; i < n; i++ {
		s.ApplyCommand(appCmd(types.NodeID(fmt.Sprintf("sess-%06d", i)), 1, EncodeAdd(1)))
	}
	if s.Sessions() != n {
		b.Fatalf("sessions = %d", s.Sessions())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := types.NodeID(fmt.Sprintf("sess-%06d", i%n))
		if _, dup := s.ApplyCommand(appCmd(c, 1, EncodeAdd(1))); !dup {
			b.Fatal("lookup missed")
		}
	}
}

func BenchmarkSessionTable100kBounded(b *testing.B) {
	const n = 100_000
	s := NewSessioned(NewCounterMachine())
	s.SetSessionLimit(n / 2) // constant churn: every insert evicts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := types.NodeID(fmt.Sprintf("sess-%06d", i))
		s.ApplyCommand(appCmd(c, 1, EncodeAdd(1)))
	}
}
