// Package nemesis generates and executes deterministic fault schedules
// against a replicated cluster. Generate is a pure function of (seed,
// profile): the same inputs always produce the same []Step, so any failing
// chaos run replays byte-for-byte from its printed seed. Execute drives a
// schedule against anything implementing Cluster — the in-process transport
// simulator plus reconfig nodes in tests, or a harness deployment.
package nemesis

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/types"
)

// Kind enumerates fault types. Values start at 1.
type Kind uint8

const (
	// KindPartition splits the node pool into two connected halves.
	KindPartition Kind = 1
	// KindIsolate cuts one node off from everyone else.
	KindIsolate Kind = 2
	// KindCrashRestart stops a node and restarts it over the same store
	// (same StorageDir for on-disk backends), i.e. a process crash.
	KindCrashRestart Kind = 3
	// KindReconfigure moves the cluster to a random member subset.
	KindReconfigure Kind = 4
	// KindLeaderKill crash-restarts whichever node currently leads.
	KindLeaderKill Kind = 5
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPartition:
		return "partition"
	case KindIsolate:
		return "isolate"
	case KindCrashRestart:
		return "crash-restart"
	case KindReconfigure:
		return "reconfigure"
	case KindLeaderKill:
		return "leader-kill"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// AllKinds is the default fault mix.
var AllKinds = []Kind{KindPartition, KindIsolate, KindCrashRestart, KindReconfigure, KindLeaderKill}

// Step is one scheduled fault. Exactly the fields relevant to its Kind are
// set; a leader-kill resolves its victim at execution time.
type Step struct {
	Kind    Kind
	Sides   [][]types.NodeID // KindPartition: the two halves
	Target  types.NodeID     // KindIsolate, KindCrashRestart
	Members []types.NodeID   // KindReconfigure: the next configuration
	Hold    time.Duration    // how long the fault stays active before healing
	Settle  time.Duration    // quiet time after healing, before the next step
}

// String renders a step for logs.
func (s Step) String() string {
	switch s.Kind {
	case KindPartition:
		return fmt.Sprintf("partition %v | %v hold=%s", s.Sides[0], s.Sides[1], s.Hold)
	case KindIsolate:
		return fmt.Sprintf("isolate %s hold=%s", s.Target, s.Hold)
	case KindCrashRestart:
		return fmt.Sprintf("crash-restart %s hold=%s", s.Target, s.Hold)
	case KindReconfigure:
		return fmt.Sprintf("reconfigure -> %v", s.Members)
	case KindLeaderKill:
		return fmt.Sprintf("leader-kill hold=%s", s.Hold)
	default:
		return s.Kind.String()
	}
}

// Profile describes the space of schedules Generate draws from.
type Profile struct {
	// Pool is the full set of nodes faults may touch (including spares).
	Pool []types.NodeID
	// Steps is the schedule length.
	Steps int
	// Kinds is the enabled fault mix (nil = AllKinds), drawn uniformly.
	Kinds []Kind
	// MinMembers/MaxMembers bound reconfiguration target sizes
	// (defaults 3 and len(Pool)).
	MinMembers int
	MaxMembers int
	// Hold is how long each fault stays active (default 80ms).
	Hold time.Duration
	// Settle is the pause after each heal (default 60ms).
	Settle time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.Kinds == nil {
		p.Kinds = AllKinds
	}
	if p.MinMembers == 0 {
		p.MinMembers = 3
	}
	if p.MaxMembers == 0 || p.MaxMembers > len(p.Pool) {
		p.MaxMembers = len(p.Pool)
	}
	if p.Hold == 0 {
		p.Hold = 80 * time.Millisecond
	}
	if p.Settle == 0 {
		p.Settle = 60 * time.Millisecond
	}
	return p
}

// Generate derives a fault schedule deterministically from seed. It is pure:
// equal (seed, profile) inputs yield equal schedules.
func Generate(seed int64, p Profile) []Step {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	steps := make([]Step, 0, p.Steps)
	for i := 0; i < p.Steps; i++ {
		kind := p.Kinds[rng.Intn(len(p.Kinds))]
		st := Step{Kind: kind, Hold: p.Hold, Settle: p.Settle}
		switch kind {
		case KindPartition:
			perm := rng.Perm(len(p.Pool))
			cut := 1 + rng.Intn(len(p.Pool)-1)
			a := make([]types.NodeID, 0, cut)
			b := make([]types.NodeID, 0, len(p.Pool)-cut)
			for _, idx := range perm[:cut] {
				a = append(a, p.Pool[idx])
			}
			for _, idx := range perm[cut:] {
				b = append(b, p.Pool[idx])
			}
			st.Sides = [][]types.NodeID{a, b}
		case KindIsolate, KindCrashRestart:
			st.Target = p.Pool[rng.Intn(len(p.Pool))]
		case KindReconfigure:
			span := p.MaxMembers - p.MinMembers + 1
			size := p.MinMembers + rng.Intn(span)
			perm := rng.Perm(len(p.Pool))
			members := make([]types.NodeID, 0, size)
			for _, idx := range perm[:size] {
				members = append(members, p.Pool[idx])
			}
			st.Members = members
		case KindLeaderKill:
			// Victim resolved at execution time via Cluster.Leader.
		}
		steps = append(steps, st)
	}
	return steps
}

// Cluster is the fault surface Execute drives. Implementations adapt the
// transport simulator plus whatever node runtime the test uses.
type Cluster interface {
	// Partition installs a network split between the given sides.
	Partition(sides ...[]types.NodeID)
	// Isolate cuts one node's links.
	Isolate(id types.NodeID)
	// Heal removes all network faults.
	Heal()
	// CrashRestart stops a node and restarts it over the same store.
	CrashRestart(ctx context.Context, id types.NodeID) error
	// Reconfigure moves the cluster to the given membership.
	Reconfigure(ctx context.Context, members []types.NodeID) error
	// Leader reports the current leader ("" if unknown).
	Leader() types.NodeID
}

// Stats counts what Execute actually did.
type Stats struct {
	Partitions  int
	Isolations  int
	Crashes     int // crash-restarts, including leader kills
	LeaderKills int
	Reconfigs   int // successful reconfigurations only
	Failed      int // steps whose action returned an error
}

// Total returns the number of injected faults.
func (s Stats) Total() int {
	return s.Partitions + s.Isolations + s.Crashes + s.Reconfigs
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	parts := []string{
		fmt.Sprintf("partitions=%d", s.Partitions),
		fmt.Sprintf("isolations=%d", s.Isolations),
		fmt.Sprintf("crashes=%d", s.Crashes),
		fmt.Sprintf("leader-kills=%d", s.LeaderKills),
		fmt.Sprintf("reconfigs=%d", s.Reconfigs),
	}
	if s.Failed > 0 {
		parts = append(parts, fmt.Sprintf("failed=%d", s.Failed))
	}
	return strings.Join(parts, " ")
}

// Execute runs a schedule to completion (or ctx cancellation), healing the
// network after every fault window. A step whose action errors is counted in
// Stats.Failed and the schedule continues: under churn a reconfiguration may
// legitimately time out and the point of the harness is to keep going.
func Execute(ctx context.Context, c Cluster, steps []Step) Stats {
	var st Stats
	for _, step := range steps {
		if ctx.Err() != nil {
			break
		}
		switch step.Kind {
		case KindPartition:
			c.Partition(step.Sides...)
			st.Partitions++
			sleep(ctx, step.Hold)
			c.Heal()
		case KindIsolate:
			c.Isolate(step.Target)
			st.Isolations++
			sleep(ctx, step.Hold)
			c.Heal()
		case KindCrashRestart:
			if err := c.CrashRestart(ctx, step.Target); err != nil {
				st.Failed++
			} else {
				st.Crashes++
			}
			sleep(ctx, step.Hold)
		case KindLeaderKill:
			victim := c.Leader()
			if victim == "" {
				st.Failed++
				sleep(ctx, step.Hold)
				break
			}
			if err := c.CrashRestart(ctx, victim); err != nil {
				st.Failed++
			} else {
				st.Crashes++
				st.LeaderKills++
			}
			sleep(ctx, step.Hold)
		case KindReconfigure:
			if err := c.Reconfigure(ctx, step.Members); err != nil {
				st.Failed++
			} else {
				st.Reconfigs++
			}
		}
		sleep(ctx, step.Settle)
	}
	return st
}

func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
