package nemesis

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/types"
)

func pool(n int) []types.NodeID {
	out := make([]types.NodeID, n)
	for i := range out {
		out[i] = types.NodeID(fmt.Sprintf("n%d", i+1))
	}
	return out
}

func fastProfile(p Profile) Profile {
	p.Hold = time.Millisecond
	p.Settle = time.Millisecond
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Pool: pool(5), Steps: 40}
	a := Generate(9, p)
	b := Generate(9, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Generate(10, p)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical 40-step schedules")
	}
}

func TestGenerateRespectsProfile(t *testing.T) {
	nodes := pool(5)
	inPool := make(map[types.NodeID]bool, len(nodes))
	for _, id := range nodes {
		inPool[id] = true
	}
	p := Profile{Pool: nodes, Steps: 200, MinMembers: 3, MaxMembers: 4}
	for i, st := range Generate(3, p) {
		switch st.Kind {
		case KindPartition:
			if len(st.Sides) != 2 || len(st.Sides[0]) == 0 || len(st.Sides[1]) == 0 {
				t.Fatalf("step %d: degenerate partition %v", i, st.Sides)
			}
			if len(st.Sides[0])+len(st.Sides[1]) != len(nodes) {
				t.Fatalf("step %d: partition doesn't cover pool: %v", i, st.Sides)
			}
		case KindIsolate, KindCrashRestart:
			if !inPool[st.Target] {
				t.Fatalf("step %d: target %q not in pool", i, st.Target)
			}
		case KindReconfigure:
			if len(st.Members) < 3 || len(st.Members) > 4 {
				t.Fatalf("step %d: member count %d outside [3,4]", i, len(st.Members))
			}
			seen := make(map[types.NodeID]bool)
			for _, m := range st.Members {
				if !inPool[m] || seen[m] {
					t.Fatalf("step %d: bad members %v", i, st.Members)
				}
				seen[m] = true
			}
		}
	}
}

func TestGenerateKindFilter(t *testing.T) {
	p := Profile{Pool: pool(4), Steps: 50, Kinds: []Kind{KindPartition, KindIsolate}}
	for i, st := range Generate(7, p) {
		if st.Kind != KindPartition && st.Kind != KindIsolate {
			t.Fatalf("step %d: kind %s not in the enabled mix", i, st.Kind)
		}
	}
}

// fakeCluster records the call sequence so Execute's heal-after-fault
// discipline is observable.
type fakeCluster struct {
	calls      []string
	leader     types.NodeID
	crashErr   error
	reconfErr  error
	reconfSeen [][]types.NodeID
}

func (f *fakeCluster) Partition(sides ...[]types.NodeID) { f.calls = append(f.calls, "partition") }
func (f *fakeCluster) Isolate(id types.NodeID)           { f.calls = append(f.calls, "isolate:"+string(id)) }
func (f *fakeCluster) Heal()                             { f.calls = append(f.calls, "heal") }
func (f *fakeCluster) CrashRestart(ctx context.Context, id types.NodeID) error {
	f.calls = append(f.calls, "crash:"+string(id))
	return f.crashErr
}
func (f *fakeCluster) Reconfigure(ctx context.Context, members []types.NodeID) error {
	f.calls = append(f.calls, "reconfigure")
	f.reconfSeen = append(f.reconfSeen, members)
	return f.reconfErr
}
func (f *fakeCluster) Leader() types.NodeID { return f.leader }

func TestExecuteCountsAndHeals(t *testing.T) {
	fc := &fakeCluster{leader: "n2"}
	steps := []Step{
		{Kind: KindPartition, Sides: [][]types.NodeID{{"n1"}, {"n2", "n3"}}},
		{Kind: KindIsolate, Target: "n3"},
		{Kind: KindCrashRestart, Target: "n1"},
		{Kind: KindLeaderKill},
		{Kind: KindReconfigure, Members: pool(3)},
	}
	st := Execute(context.Background(), fc, steps)
	want := Stats{Partitions: 1, Isolations: 1, Crashes: 2, LeaderKills: 1, Reconfigs: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	if st.Total() != 5 {
		t.Fatalf("total = %d, want 5", st.Total())
	}
	wantCalls := []string{
		"partition", "heal",
		"isolate:n3", "heal",
		"crash:n1",
		"crash:n2", // leader kill resolved n2
		"reconfigure",
	}
	if !reflect.DeepEqual(fc.calls, wantCalls) {
		t.Fatalf("calls = %v, want %v", fc.calls, wantCalls)
	}
}

func TestExecuteCountsFailures(t *testing.T) {
	fc := &fakeCluster{crashErr: context.DeadlineExceeded, reconfErr: context.DeadlineExceeded}
	steps := []Step{
		{Kind: KindCrashRestart, Target: "n1"},
		{Kind: KindReconfigure, Members: pool(3)},
		{Kind: KindLeaderKill}, // leader unknown ("") -> failed, no crash call
	}
	st := Execute(context.Background(), fc, steps)
	if st.Failed != 3 || st.Total() != 0 {
		t.Fatalf("stats = %+v, want 3 failures and 0 faults", st)
	}
}

func TestExecuteStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fc := &fakeCluster{}
	steps := Generate(1, fastProfile(Profile{Pool: pool(3), Steps: 100}))
	st := Execute(ctx, fc, steps)
	if got := st.Total() + st.Failed; got > 1 {
		t.Fatalf("cancelled execute still ran %d steps", got)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Partitions: 1, Crashes: 2, LeaderKills: 1, Reconfigs: 3, Failed: 1}
	got := s.String()
	for _, want := range []string{"partitions=1", "crashes=2", "leader-kills=1", "reconfigs=3", "failed=1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Stats.String() = %q missing %q", got, want)
		}
	}
	if strings.Contains(Stats{}.String(), "failed") {
		t.Fatalf("zero stats should omit failed: %q", Stats{}.String())
	}
}

func TestStepAndKindStrings(t *testing.T) {
	steps := []Step{
		{Kind: KindPartition, Sides: [][]types.NodeID{{"a"}, {"b"}}, Hold: time.Millisecond},
		{Kind: KindIsolate, Target: "a", Hold: time.Millisecond},
		{Kind: KindCrashRestart, Target: "b", Hold: time.Millisecond},
		{Kind: KindReconfigure, Members: []types.NodeID{"a", "b"}},
		{Kind: KindLeaderKill, Hold: time.Millisecond},
	}
	for _, st := range steps {
		if st.String() == "" || st.Kind.String() == "" {
			t.Fatalf("empty rendering for %v", st.Kind)
		}
	}
	if Kind(42).String() != "kind(42)" {
		t.Fatalf("unknown kind rendering: %q", Kind(42).String())
	}
}
