// Package client is the user-facing library for the reconfigurable SMR
// service. A Client is one session against the service; a Directory is the
// shared, process-wide view of the service that any number of sessions
// multiplex over: one transport connection per server (the rpc peer
// request-id-matches unlimited concurrent calls), one cached configuration
// chain position, one leader hint. A session adopts the freshest
// configuration observed by ANY session's reply, so a forwarding chain is
// walked at most once per process, not once per session — the property that
// makes 100k sessions affordable.
//
// The client guarantees at-most-once execution through per-session sequence
// numbers (commands are always retried under the same sequence number until
// acknowledged), follows redirects left by wedged configurations, honors
// SubmitBusy shed replies with the server's RetryAfter hint, and backs off
// between attempts with jittered exponential delays (the same discipline the
// servers use for state-transfer retries).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/reconfig"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options tunes the client's retry behavior. Zero values take defaults.
type Options struct {
	// AttemptTimeout bounds one RPC attempt. Default 500ms.
	AttemptTimeout time.Duration
	// Resend is the in-attempt RPC retransmission interval. Default 50ms.
	Resend time.Duration
	// RetryBackoff is the base of the jittered exponential backoff between
	// failed attempts (doubling, capped at RetryMax). Default 2ms.
	RetryBackoff time.Duration
	// RetryMax caps the exponential backoff. Default 250ms.
	RetryMax time.Duration
	// RetryBudget bounds the attempts one Submit makes before giving up
	// with a BudgetError. 0 = retry until ctx expires. The budget only
	// bounds attempts while the command provably never executed (every
	// attempt answered with a redirect or a shed): once an attempt's
	// outcome is unknown the command may already be applied, and abandoning
	// it would turn at-most-once into a silent drop, so the client keeps
	// pursuing the same sequence number (idempotent under the session
	// dedup) until a definitive reply or ctx expiry. The Naive ablation
	// gives up at the budget unconditionally.
	RetryBudget int
	// NoJitter pins the backoff schedule to its deterministic midpoint
	// (test hook; production clients want decorrelated retries).
	NoJitter bool
	// Naive reverts the client to its pre-directory behavior — a
	// per-session configuration cache, a fixed RetryBackoff sleep between
	// attempts, and SubmitBusy's RetryAfter hint ignored. It exists as the
	// ablation arm of the megaload experiment (C1) and should never be set
	// in production use.
	Naive bool
	// Recorder, when set, captures every Submit/SubmitSeq as a history
	// operation: acknowledged submits record their reply; a submit that
	// gives up after an attempt may have reached the service records an
	// ambiguous outcome; one that provably never executed (every attempt
	// was answered with a redirect or a shed) records a failure.
	Recorder *history.Recorder
}

func (o Options) withDefaults() Options {
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 500 * time.Millisecond
	}
	if o.Resend <= 0 {
		o.Resend = 50 * time.Millisecond
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 250 * time.Millisecond
	}
	return o
}

// Stats counts one session's control-plane activity.
type Stats struct {
	Submits   int64 // completed Submit calls (including reads)
	Reads     int64 // completed Read calls
	Attempts  int64 // individual RPC attempts
	Redirects int64 // redirect replies followed
	Busy      int64 // SubmitBusy shed replies received
}

// DirectoryStats counts the shared cache's activity.
type DirectoryStats struct {
	Adopts int64 // configuration adoptions (strictly newer than cached)
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("client: closed")

// ErrBudgetExhausted matches (via errors.Is) a BudgetError.
var ErrBudgetExhausted = errors.New("client: retry budget exhausted")

// BudgetError reports a Submit that ran out of its retry budget. Ambiguous
// distinguishes "the command may have executed" (an attempt timed out or the
// reply was lost) from "the command provably never executed" (every attempt
// was answered with a redirect or a shed) — the distinction open-loop load
// harnesses need to count silent drops. The smart client never returns an
// ambiguous BudgetError (it pursues a maybe-applied command until ctx
// expiry); only the Naive ablation abandons one at the budget.
type BudgetError struct {
	Attempts  int
	Ambiguous bool
}

func (e *BudgetError) Error() string {
	state := "provably not executed"
	if e.Ambiguous {
		state = "outcome ambiguous"
	}
	return fmt.Sprintf("client: retry budget exhausted after %d attempts (%s)", e.Attempts, state)
}

func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExhausted }

// Directory is the process-wide service view shared by all sessions: one rpc
// peer (sessions multiplex over its per-server connections), one cached
// configuration + leader hint, one round-robin cursor. All methods are safe
// for concurrent use.
type Directory struct {
	peer  *rpc.Peer
	seeds []types.NodeID

	mu     sync.Mutex
	cfg    types.Config
	leader types.NodeID
	rr     int
	rng    *rand.Rand // shared jitter source: a rand.Rand is ~5KB, too big per session
	adopts int64
	closed bool
}

// NewDirectory creates a shared service view attached to the network via ep,
// knowing at least the seed nodes.
func NewDirectory(ep *transport.Endpoint, seeds []types.NodeID) *Directory {
	return &Directory{
		peer:  rpc.NewPeer(ep, reconfig.ControlStream, nil),
		seeds: types.CloneNodeIDs(seeds),
		rng:   rand.New(rand.NewSource(reconfig.SeedFor("client-directory"))),
	}
}

// Session creates a client session named id over this directory. Sessions
// are cheap — a couple hundred bytes, no transport state, no private rng —
// so a megaload harness can hold 100k of them.
func (d *Directory) Session(id types.NodeID, opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{id: id, dir: d, opts: opts}
	if opts.Naive {
		c.naive = &dirCache{}
	}
	return c
}

// backoff draws one jittered delay from the shared source.
func (d *Directory) backoff(attempt int, base, max time.Duration) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return reconfig.BackoffDelay(attempt, base, max, d.rng)
}

// Close releases the directory's transport resources. Sessions created from
// it stop working.
func (d *Directory) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.peer.Close()
}

// Stats returns a snapshot of the directory's counters.
func (d *Directory) Stats() DirectoryStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DirectoryStats{Adopts: d.adopts}
}

// KnownConfig returns the cached configuration (zero before the first
// successful interaction).
func (d *Directory) KnownConfig() types.Config {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.Clone()
}

// dirCache is the mutable routing state a target choice needs: the cached
// configuration, the one-shot leader hint, and the rotation cursor. The
// Directory embeds one logically (shared by all sessions); a Naive session
// carries a private one.
type dirCache struct {
	cfg    types.Config
	leader types.NodeID
	rr     int
}

func (dc *dirCache) next(seeds []types.NodeID) types.NodeID {
	if dc.leader != "" && dc.cfg.IsMember(dc.leader) {
		lead := dc.leader
		dc.leader = "" // use it once; a failure falls back to rotation
		return lead
	}
	pool := dc.cfg.Members
	if len(pool) == 0 {
		pool = seeds
	}
	if len(pool) == 0 {
		return ""
	}
	dc.rr++
	return pool[dc.rr%len(pool)]
}

// observe folds reply hints into the cache; reports whether a strictly newer
// configuration was adopted.
func (dc *dirCache) observe(cfg types.Config, leader types.NodeID) bool {
	adopted := false
	if cfg.ID > dc.cfg.ID {
		dc.cfg = cfg.Clone()
		adopted = true
	}
	if leader != "" {
		dc.leader = leader
	}
	return adopted
}

// nextTarget picks where to send the next attempt: the cached leader if it
// is still a member, else round-robin over the cached configuration, else
// the seeds.
func (d *Directory) nextTarget() types.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	dc := dirCache{cfg: d.cfg, leader: d.leader, rr: d.rr}
	t := dc.next(d.seeds)
	d.cfg, d.leader, d.rr = dc.cfg, dc.leader, dc.rr
	return t
}

// observe folds hints from a reply into the shared cache. Adoption is
// generation-gated: a session reporting an older configuration than the
// cache never regresses it, and the adoption counter increments exactly once
// per generation no matter how many sessions race to report it.
func (d *Directory) observe(cfg types.Config, leader types.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dc := dirCache{cfg: d.cfg, leader: d.leader, rr: d.rr}
	if dc.observe(cfg, leader) {
		d.adopts++
	}
	d.cfg, d.leader, d.rr = dc.cfg, dc.leader, dc.rr
}

// Client is a session against the replicated service, multiplexed over its
// Directory's shared transport. A session's methods must not be called
// concurrently with each other (sequence numbers order its commands);
// distinct sessions are independent.
type Client struct {
	id   types.NodeID
	dir  *Directory
	opts Options

	// naive, when non-nil, is this session's private routing cache — the
	// C1 ablation arm. The shared directory is bypassed entirely.
	naive *dirCache

	mu     sync.Mutex
	ownDir bool // Close tears down dir too (New-created sessions)
	seq    uint64
	closed bool
	stats  Stats
}

// New creates a standalone client identified by id (its session name),
// attached to the network via ep, knowing at least the seed nodes. It owns a
// private Directory; use NewDirectory + Session to share one across
// sessions.
func New(id types.NodeID, ep *transport.Endpoint, seeds []types.NodeID, opts Options) *Client {
	c := NewDirectory(ep, seeds).Session(id, opts)
	c.ownDir = true
	return c
}

// Close releases the client's resources. A session created with New closes
// its private directory (and transport); a Directory-shared session only
// marks itself closed.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	own := c.ownDir
	c.mu.Unlock()
	if own {
		c.dir.Close()
	}
}

// ID returns the client's session identifier.
func (c *Client) ID() types.NodeID { return c.id }

// Directory returns the shared service view this session routes through.
func (c *Client) Directory() *Directory { return c.dir }

// Stats returns a snapshot of the session's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// KnownConfig returns the cached configuration (the session-private one in
// Naive mode, the shared one otherwise).
func (c *Client) KnownConfig() types.Config {
	if c.naive != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.naive.cfg.Clone()
	}
	return c.dir.KnownConfig()
}

// target picks the next node to try.
func (c *Client) target() types.NodeID {
	if c.naive != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.naive.next(c.dir.seeds)
	}
	return c.dir.nextTarget()
}

// observe folds reply hints into the routing cache.
func (c *Client) observe(cfg types.Config, leader types.NodeID) {
	if c.naive != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.naive.observe(cfg, leader)
		return
	}
	c.dir.observe(cfg, leader)
}

// retryDelay computes the pause before the next attempt: jittered
// exponential backoff, floored by the server's RetryAfter hint when one was
// given. The Naive ablation sleeps a fixed RetryBackoff and ignores hints.
func (c *Client) retryDelay(attempt int, hint time.Duration) time.Duration {
	if c.opts.Naive {
		return c.opts.RetryBackoff
	}
	var d time.Duration
	if c.opts.NoJitter {
		d = reconfig.BackoffDelay(attempt, c.opts.RetryBackoff, c.opts.RetryMax, nil)
	} else {
		d = c.dir.backoff(attempt, c.opts.RetryBackoff, c.opts.RetryMax)
	}
	if hint > d {
		d = hint
	}
	return d
}

// Submit executes op with a fresh sequence number, retrying across leader
// changes and reconfigurations until acknowledged, the retry budget runs
// out, or ctx expires.
func (c *Client) Submit(ctx context.Context, op []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	return c.SubmitSeq(ctx, seq, op)
}

// SubmitSeq executes op under an explicit sequence number. Re-invoking with
// the same seq is safe (at-most-once); it returns the original reply.
func (c *Client) SubmitSeq(ctx context.Context, seq uint64, op []byte) ([]byte, error) {
	cmd := types.Command{Kind: types.CmdApp, Client: c.id, Seq: seq, Data: op}
	req := reconfig.EncodeSubmitRequest(cmd)
	rec := c.opts.Recorder
	h := -1
	if rec != nil {
		h = rec.Invoke(c.id, seq, op)
	}
	// maybeApplied: true once some attempt's outcome is unknown (the call
	// errored, or the reply was undecodable). While false, every attempt
	// was answered with a redirect or a shed — the command provably never
	// executed, so giving up is a clean failure, not a silent drop.
	maybeApplied := false
	giveUp := func(err error) ([]byte, error) {
		if rec != nil {
			if maybeApplied {
				rec.Info(h)
			} else {
				rec.Fail(h)
			}
		}
		return nil, err
	}
	for attempt := 1; ; attempt++ {
		target := c.target()
		if target == "" {
			return giveUp(fmt.Errorf("client: no known nodes"))
		}
		c.mu.Lock()
		c.stats.Attempts++
		c.mu.Unlock()

		var hint time.Duration
		actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		resp, err := c.peer().Call(actx, target, req, c.opts.Resend)
		cancel()
		if err != nil {
			maybeApplied = true // the command may have reached the node
		} else if res, derr := reconfig.DecodeSubmitResult(resp); derr != nil {
			maybeApplied = true
		} else {
			c.observe(res.Config, res.Leader)
			switch res.Status {
			case reconfig.SubmitApplied:
				c.mu.Lock()
				c.stats.Submits++
				c.mu.Unlock()
				if rec != nil {
					rec.Ok(h, res.Reply)
				}
				return res.Reply, nil
			case reconfig.SubmitRedirect:
				c.mu.Lock()
				c.stats.Redirects++
				c.mu.Unlock()
			case reconfig.SubmitBusy:
				c.mu.Lock()
				c.stats.Busy++
				c.mu.Unlock()
				if !c.opts.Naive {
					hint = res.RetryAfter
				}
			default:
				maybeApplied = true // unknown status: assume the worst
			}
		}
		// The budget bounds clean refusals only: a maybe-applied command is
		// pursued (same seq, dedup-idempotent) until a definitive reply or
		// ctx expiry — abandoning it here would be a silent drop. The Naive
		// ablation gives up regardless; C1 counts what that costs.
		if c.opts.RetryBudget > 0 && attempt >= c.opts.RetryBudget && (!maybeApplied || c.opts.Naive) {
			return giveUp(&BudgetError{Attempts: attempt, Ambiguous: maybeApplied})
		}
		select {
		case <-ctx.Done():
			if rec != nil {
				if maybeApplied {
					rec.Info(h)
				} else {
					rec.Fail(h)
				}
			}
			return nil, ctx.Err()
		case <-time.After(c.retryDelay(attempt, hint)):
		}
	}
}

func (c *Client) peer() *rpc.Peer { return c.dir.peer }

// Read executes a read-only op. The wire protocol is the same as Submit —
// the service classifies read-only ops and serves them through the read
// fast path when one is enabled — so Read is Submit plus read accounting.
// The leader hint cached from each reply keeps consecutive reads targeted
// at the node that can serve them without a log append.
func (c *Client) Read(ctx context.Context, op []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	return c.ReadSeq(ctx, seq, op)
}

// ReadSeq executes a read-only op under an explicit sequence number.
func (c *Client) ReadSeq(ctx context.Context, seq uint64, op []byte) ([]byte, error) {
	reply, err := c.SubmitSeq(ctx, seq, op)
	if err == nil {
		c.mu.Lock()
		c.stats.Reads++
		c.mu.Unlock()
	}
	return reply, err
}

// Locate queries any reachable node for the current configuration.
func (c *Client) Locate(ctx context.Context) (types.Config, error) {
	req := reconfig.EncodeLocateRequest()
	for attempt := 1; ; attempt++ {
		target := c.target()
		if target == "" {
			return types.Config{}, fmt.Errorf("client: no known nodes")
		}
		actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		resp, err := c.peer().Call(actx, target, req, c.opts.Resend)
		cancel()
		if err == nil {
			if res, derr := reconfig.DecodeLocateResult(resp); derr == nil && res.Config.ID != 0 {
				c.observe(res.Config, res.Leader)
				return res.Config, nil
			}
		}
		select {
		case <-ctx.Done():
			return types.Config{}, ctx.Err()
		case <-time.After(c.retryDelay(attempt, 0)):
		}
	}
}

// Reconfigure asks the service (via any member) to change membership.
func (c *Client) Reconfigure(ctx context.Context, members []types.NodeID) (types.Config, error) {
	req := reconfig.EncodeReconfigRequest(members)
	for attempt := 1; ; attempt++ {
		target := c.target()
		if target == "" {
			return types.Config{}, fmt.Errorf("client: no known nodes")
		}
		// Reconfiguration includes consensus + transfer: allow a longer
		// attempt than a plain submit.
		actx, cancel := context.WithTimeout(ctx, 4*c.opts.AttemptTimeout)
		resp, err := c.peer().Call(actx, target, req, c.opts.Resend)
		cancel()
		if err == nil {
			if res, derr := reconfig.DecodeReconfigResult(resp); derr == nil {
				if res.OK {
					c.observe(res.Config, "")
					return res.Config, nil
				}
				// Not-serving nodes report a reason; rotate and retry.
			}
		}
		select {
		case <-ctx.Done():
			return types.Config{}, ctx.Err()
		case <-time.After(c.retryDelay(attempt, 0)):
		}
	}
}

// Chain fetches the configuration chain from any reachable node.
func (c *Client) Chain(ctx context.Context) (reconfig.ChainResult, error) {
	req := reconfig.EncodeChainRequest()
	for attempt := 1; ; attempt++ {
		target := c.target()
		if target == "" {
			return reconfig.ChainResult{}, fmt.Errorf("client: no known nodes")
		}
		actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		resp, err := c.peer().Call(actx, target, req, c.opts.Resend)
		cancel()
		if err == nil {
			if res, derr := reconfig.DecodeChainResult(resp); derr == nil {
				return res, nil
			}
		}
		select {
		case <-ctx.Done():
			return reconfig.ChainResult{}, ctx.Err()
		case <-time.After(c.retryDelay(attempt, 0)):
		}
	}
}
