// Package client is the user-facing library for the reconfigurable SMR
// service. A Client tracks the configuration chain as it evolves: it caches
// the current configuration and leader hint, follows redirects left by
// wedged configurations, retries across reconfigurations, and guarantees
// at-most-once execution through per-session sequence numbers (commands are
// always retried under the same sequence number until acknowledged).
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/reconfig"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options tunes the client's retry behavior. Zero values take defaults.
type Options struct {
	// AttemptTimeout bounds one RPC attempt. Default 500ms.
	AttemptTimeout time.Duration
	// Resend is the in-attempt RPC retransmission interval. Default 50ms.
	Resend time.Duration
	// RetryBackoff is the pause between failed attempts. Default 5ms.
	RetryBackoff time.Duration
	// Recorder, when set, captures every Submit/SubmitSeq as a history
	// operation: acknowledged submits record their reply, a submit that
	// gives up (ctx expired or client closed) after the command may have
	// reached the service records an ambiguous outcome, and one that
	// provably never left the client records a failure.
	Recorder *history.Recorder
}

func (o Options) withDefaults() Options {
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 500 * time.Millisecond
	}
	if o.Resend <= 0 {
		o.Resend = 50 * time.Millisecond
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	return o
}

// Stats counts the client's control-plane activity.
type Stats struct {
	Submits   int64 // completed Submit calls (including reads)
	Reads     int64 // completed Read calls
	Attempts  int64 // individual RPC attempts
	Redirects int64 // redirect replies followed
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("client: closed")

// Client is a session against the replicated service.
type Client struct {
	id    types.NodeID
	peer  *rpc.Peer
	seeds []types.NodeID
	opts  Options

	mu     sync.Mutex
	seq    uint64
	cfg    types.Config
	leader types.NodeID
	rr     int // round-robin cursor
	closed bool
	stats  Stats
}

// New creates a client identified by id (its session name), attached to the
// network via ep, knowing at least the seed nodes.
func New(id types.NodeID, ep *transport.Endpoint, seeds []types.NodeID, opts Options) *Client {
	return &Client{
		id:    id,
		peer:  rpc.NewPeer(ep, reconfig.ControlStream, nil),
		seeds: types.CloneNodeIDs(seeds),
		opts:  opts.withDefaults(),
	}
}

// Close releases the client's transport resources.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.peer.Close()
}

// ID returns the client's session identifier.
func (c *Client) ID() types.NodeID { return c.id }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// KnownConfig returns the client's cached configuration (zero before the
// first successful interaction).
func (c *Client) KnownConfig() types.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Clone()
}

// nextTarget picks where to send the next attempt: the cached leader if it
// is still a member, else round-robin over the cached configuration, else
// the seeds.
func (c *Client) nextTarget() types.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader != "" && c.cfg.IsMember(c.leader) {
		lead := c.leader
		c.leader = "" // use it once; a failure falls back to rotation
		return lead
	}
	pool := c.cfg.Members
	if len(pool) == 0 {
		pool = c.seeds
	}
	if len(pool) == 0 {
		return ""
	}
	c.rr++
	return pool[c.rr%len(pool)]
}

// observe folds hints from a reply into the cache.
func (c *Client) observe(cfg types.Config, leader types.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cfg.ID > c.cfg.ID {
		c.cfg = cfg.Clone()
	}
	if leader != "" {
		c.leader = leader
	}
}

// Submit executes op with a fresh sequence number, retrying across leader
// changes and reconfigurations until acknowledged or ctx expires.
func (c *Client) Submit(ctx context.Context, op []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	return c.SubmitSeq(ctx, seq, op)
}

// SubmitSeq executes op under an explicit sequence number. Re-invoking with
// the same seq is safe (at-most-once); it returns the original reply.
func (c *Client) SubmitSeq(ctx context.Context, seq uint64, op []byte) ([]byte, error) {
	cmd := types.Command{Kind: types.CmdApp, Client: c.id, Seq: seq, Data: op}
	req := reconfig.EncodeSubmitRequest(cmd)
	rec := c.opts.Recorder
	h := -1
	if rec != nil {
		h = rec.Invoke(c.id, seq, op)
	}
	sent := false // true once any attempt may have reached the service
	for {
		target := c.nextTarget()
		if target == "" {
			if rec != nil {
				if sent {
					rec.Info(h)
				} else {
					rec.Fail(h)
				}
			}
			return nil, fmt.Errorf("client: no known nodes")
		}
		c.mu.Lock()
		c.stats.Attempts++
		c.mu.Unlock()

		sent = true
		attempt, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		resp, err := c.peer.Call(attempt, target, req, c.opts.Resend)
		cancel()
		if err == nil {
			if res, derr := reconfig.DecodeSubmitResult(resp); derr == nil {
				c.observe(res.Config, res.Leader)
				switch res.Status {
				case reconfig.SubmitApplied:
					c.mu.Lock()
					c.stats.Submits++
					c.mu.Unlock()
					if rec != nil {
						rec.Ok(h, res.Reply)
					}
					return res.Reply, nil
				case reconfig.SubmitRedirect:
					c.mu.Lock()
					c.stats.Redirects++
					c.mu.Unlock()
				}
			}
		}
		select {
		case <-ctx.Done():
			if rec != nil {
				rec.Info(h)
			}
			return nil, ctx.Err()
		case <-time.After(c.opts.RetryBackoff):
		}
	}
}

// Read executes a read-only op. The wire protocol is the same as Submit —
// the service classifies read-only ops and serves them through the read
// fast path when one is enabled — so Read is Submit plus read accounting.
// The leader hint cached from each reply keeps consecutive reads targeted
// at the node that can serve them without a log append.
func (c *Client) Read(ctx context.Context, op []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	return c.ReadSeq(ctx, seq, op)
}

// ReadSeq executes a read-only op under an explicit sequence number.
func (c *Client) ReadSeq(ctx context.Context, seq uint64, op []byte) ([]byte, error) {
	reply, err := c.SubmitSeq(ctx, seq, op)
	if err == nil {
		c.mu.Lock()
		c.stats.Reads++
		c.mu.Unlock()
	}
	return reply, err
}

// Locate queries any reachable node for the current configuration.
func (c *Client) Locate(ctx context.Context) (types.Config, error) {
	req := reconfig.EncodeLocateRequest()
	for {
		target := c.nextTarget()
		if target == "" {
			return types.Config{}, fmt.Errorf("client: no known nodes")
		}
		attempt, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		resp, err := c.peer.Call(attempt, target, req, c.opts.Resend)
		cancel()
		if err == nil {
			if res, derr := reconfig.DecodeLocateResult(resp); derr == nil && res.Config.ID != 0 {
				c.observe(res.Config, res.Leader)
				return res.Config, nil
			}
		}
		select {
		case <-ctx.Done():
			return types.Config{}, ctx.Err()
		case <-time.After(c.opts.RetryBackoff):
		}
	}
}

// Reconfigure asks the service (via any member) to change membership.
func (c *Client) Reconfigure(ctx context.Context, members []types.NodeID) (types.Config, error) {
	req := reconfig.EncodeReconfigRequest(members)
	for {
		target := c.nextTarget()
		if target == "" {
			return types.Config{}, fmt.Errorf("client: no known nodes")
		}
		// Reconfiguration includes consensus + transfer: allow a longer
		// attempt than a plain submit.
		attempt, cancel := context.WithTimeout(ctx, 4*c.opts.AttemptTimeout)
		resp, err := c.peer.Call(attempt, target, req, c.opts.Resend)
		cancel()
		if err == nil {
			if res, derr := reconfig.DecodeReconfigResult(resp); derr == nil {
				if res.OK {
					c.observe(res.Config, "")
					return res.Config, nil
				}
				// Not-serving nodes report a reason; rotate and retry.
			}
		}
		select {
		case <-ctx.Done():
			return types.Config{}, ctx.Err()
		case <-time.After(c.opts.RetryBackoff):
		}
	}
}

// Chain fetches the configuration chain from any reachable node.
func (c *Client) Chain(ctx context.Context) (reconfig.ChainResult, error) {
	req := reconfig.EncodeChainRequest()
	for {
		target := c.nextTarget()
		if target == "" {
			return reconfig.ChainResult{}, fmt.Errorf("client: no known nodes")
		}
		attempt, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
		resp, err := c.peer.Call(attempt, target, req, c.opts.Resend)
		cancel()
		if err == nil {
			if res, derr := reconfig.DecodeChainResult(resp); derr == nil {
				return res, nil
			}
		}
		select {
		case <-ctx.Done():
			return reconfig.ChainResult{}, ctx.Err()
		case <-time.After(c.opts.RetryBackoff):
		}
	}
}
