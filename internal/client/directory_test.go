package client

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/reconfig"
	"repro/internal/transport"
	"repro/internal/types"
)

func busy(cfg types.Config, retryAfter time.Duration) reconfig.SubmitResult {
	return reconfig.SubmitResult{Status: reconfig.SubmitBusy, Config: cfg, RetryAfter: retryAfter}
}

// All sessions of one directory share the configuration cache: after one
// session walks a redirect, the others start at the fresh configuration
// without re-walking the chain.
func TestDirectorySharesConfigAcrossSessions(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg2 := types.MustConfig(2, "n2")
	old := newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		return redirect(cfg2, "n2")
	})
	newFakeNode(t, net, "n2", func(cmd types.Command) reconfig.SubmitResult {
		return applied([]byte("ok"), cfg2, "n2")
	})
	dir := NewDirectory(net.Endpoint("c"), []types.NodeID{"n1"})
	defer dir.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1 := dir.Session("c1", Options{})
	if _, err := s1.Submit(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if dir.KnownConfig().ID != 2 {
		t.Fatalf("directory did not adopt: %v", dir.KnownConfig())
	}
	before := old.submits.Load()

	// A second session must go straight to cfg2's member.
	s2 := dir.Session("c2", Options{})
	if _, err := s2.Submit(ctx, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if old.submits.Load() != before {
		t.Fatalf("second session re-walked the chain through retired n1")
	}
}

// Concurrent sessions racing to report the same newer configuration adopt it
// exactly once: the generation gate makes later reports no-ops.
func TestDirectoryAdoptsExactlyOnce(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	dir := NewDirectory(net.Endpoint("c"), []types.NodeID{"n1"})
	defer dir.Close()

	cfg2 := types.MustConfig(2, "n2")
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dir.observe(cfg2, "n2")
		}()
	}
	wg.Wait()
	if got := dir.Stats().Adopts; got != 1 {
		t.Fatalf("adopted %d times, want exactly once", got)
	}
	// An older hint must never regress the cache or count as adoption.
	dir.observe(types.MustConfig(1, "n1"), "")
	if dir.KnownConfig().ID != 2 || dir.Stats().Adopts != 1 {
		t.Fatalf("stale hint regressed cache: cfg=%v adopts=%d",
			dir.KnownConfig(), dir.Stats().Adopts)
	}
}

// A Naive session keeps a private cache and leaves the directory untouched —
// the ablation arm must not accidentally benefit from sharing.
func TestNaiveSessionBypassesDirectory(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(2, "n1")
	newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		return applied([]byte("ok"), cfg, "n1")
	})
	dir := NewDirectory(net.Endpoint("c"), []types.NodeID{"n1"})
	defer dir.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s := dir.Session("c1", Options{Naive: true})
	if _, err := s.Submit(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s.KnownConfig().ID != 2 {
		t.Fatalf("naive session did not cache locally: %v", s.KnownConfig())
	}
	if dir.KnownConfig().ID != 0 {
		t.Fatalf("naive session leaked into the directory: %v", dir.KnownConfig())
	}
}

// Schedule pinning: with jitter off, the delays between attempts follow
// BackoffDelay's deterministic midpoints exactly, and a server RetryAfter
// hint floors the delay.
func TestClientBackoffSchedule(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	dir := NewDirectory(net.Endpoint("c"), []types.NodeID{"n1"})
	defer dir.Close()
	base, max := 2*time.Millisecond, 16*time.Millisecond
	c := dir.Session("c1", Options{RetryBackoff: base, RetryMax: max, NoJitter: true})

	want := []time.Duration{2, 4, 8, 16, 16, 16} // ms: doubling, capped
	for i, w := range want {
		if got := c.retryDelay(i+1, 0); got != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// The server hint floors the backoff but never shortens it.
	if got := c.retryDelay(1, 50*time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("hint ignored: %v", got)
	}
	if got := c.retryDelay(4, time.Millisecond); got != 16*time.Millisecond {
		t.Fatalf("short hint shortened backoff: %v", got)
	}
	// The naive ablation sleeps a fixed interval and ignores hints.
	n := dir.Session("c2", Options{RetryBackoff: 5 * time.Millisecond, Naive: true})
	if got := n.retryDelay(7, 50*time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("naive delay %v, want fixed 5ms", got)
	}
}

// A budget-exhausted submit whose every attempt was answered with a shed is
// provably unexecuted: BudgetError.Ambiguous=false and the recorder sees a
// clean failure, not an ambiguous drop.
func TestClientBudgetExhaustedOnBusyIsClean(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(1, "n1")
	shed := newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		return busy(cfg, time.Millisecond)
	})
	rec := history.New()
	dir := NewDirectory(net.Endpoint("c"), []types.NodeID{"n1"})
	defer dir.Close()
	c := dir.Session("c1", Options{
		RetryBackoff: time.Millisecond,
		RetryBudget:  3,
		Recorder:     rec,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.Submit(ctx, []byte("x"))
	var be *BudgetError
	if !errors.As(err, &be) || !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	if be.Ambiguous {
		t.Fatalf("all-shed budget exhaustion marked ambiguous: %+v", be)
	}
	if be.Attempts != 3 || shed.submits.Load() != 3 {
		t.Fatalf("attempts %d, server saw %d, want 3", be.Attempts, shed.submits.Load())
	}
	if c.Stats().Busy != 3 {
		t.Fatalf("busy count %d, want 3", c.Stats().Busy)
	}
	_, infoN, failN := rec.Counts()
	if failN != 1 || infoN != 0 {
		t.Fatalf("provably-unexecuted op must record fail: info=%d fail=%d", infoN, failN)
	}
}

// A timed-out attempt makes the command maybe-applied, and the smart client
// must NOT abandon it at the retry budget — it pursues the same sequence
// number until the context expires, then records Info (never Fail). The
// Naive ablation gives up at the budget with an ambiguous BudgetError —
// exactly the silent drop the C1 megaload experiment counts against it.
func TestClientPursuesAmbiguousPastBudget(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	net.Endpoint("mute") // registered, never answers
	rec := history.New()
	dir := NewDirectory(net.Endpoint("c"), []types.NodeID{"mute"})
	defer dir.Close()
	c := dir.Session("c1", Options{
		AttemptTimeout: 10 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
		RetryMax:       2 * time.Millisecond,
		RetryBudget:    2,
		Recorder:       rec,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := c.Submit(ctx, []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ctx deadline (pursued past budget), got %v", err)
	}
	if got := c.Stats().Attempts; got <= 2 {
		t.Fatalf("budget cut off the ambiguous pursuit after %d attempts", got)
	}
	_, infoN, failN := rec.Counts()
	if infoN != 1 || failN != 0 {
		t.Fatalf("ambiguous op must record info: info=%d fail=%d", infoN, failN)
	}

	nrec := history.New()
	n := dir.Session("c2", Options{
		AttemptTimeout: 10 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
		RetryBudget:    2,
		Naive:          true,
		Recorder:       nrec,
	})
	nctx, ncancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer ncancel()
	_, err = n.Submit(nctx, []byte("x"))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("naive: want BudgetError, got %v", err)
	}
	if !be.Ambiguous || be.Attempts != 2 {
		t.Fatalf("naive budget exhaustion: %+v, want ambiguous after 2", be)
	}
	_, infoN, failN = nrec.Counts()
	if infoN != 1 || failN != 0 {
		t.Fatalf("naive ambiguous op must record info: info=%d fail=%d", infoN, failN)
	}
}

// A shed client comes back and succeeds once the server recovers.
func TestClientRetriesThroughBusy(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(1, "n1")
	n := newFakeNode(t, net, "n1", nil)
	n.behavior = func(cmd types.Command) reconfig.SubmitResult {
		if n.submits.Load() <= 2 {
			return busy(cfg, time.Millisecond)
		}
		return applied([]byte("ok"), cfg, "n1")
	}
	dir := NewDirectory(net.Endpoint("c"), []types.NodeID{"n1"})
	defer dir.Close()
	c := dir.Session("c1", Options{RetryBackoff: time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := c.Submit(ctx, []byte("x"))
	if err != nil || string(reply) != "ok" {
		t.Fatalf("%q %v", reply, err)
	}
	if c.Stats().Busy == 0 {
		t.Fatal("busy replies not counted")
	}
}
