package client

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/reconfig"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/types"
)

// fakeNode scripts a control-plane server for client unit tests.
type fakeNode struct {
	peer     *rpc.Peer
	id       types.NodeID
	submits  atomic.Int64
	behavior func(cmd types.Command) reconfig.SubmitResult
}

func newFakeNode(t *testing.T, net *transport.Network, id types.NodeID,
	behavior func(cmd types.Command) reconfig.SubmitResult) *fakeNode {
	t.Helper()
	f := &fakeNode{id: id, behavior: behavior}
	f.peer = rpc.NewPeer(net.Endpoint(id), reconfig.ControlStream,
		func(from types.NodeID, req []byte, respond func([]byte)) {
			if len(req) == 0 || req[0] != 1 { // opSubmit
				return
			}
			cmd, err := types.DecodeCommand(req[1:])
			if err != nil {
				return
			}
			f.submits.Add(1)
			res := f.behavior(cmd)
			respond(encodeResult(res))
		})
	t.Cleanup(f.peer.Close)
	return f
}

// encodeResult builds the reply exactly the way a real node would.
func encodeResult(res reconfig.SubmitResult) []byte {
	return reconfig.EncodeSubmitResult(res)
}

func applied(reply []byte, cfg types.Config, leader types.NodeID) reconfig.SubmitResult {
	return reconfig.SubmitResult{Status: reconfig.SubmitApplied, Reply: reply, Config: cfg, Leader: leader}
}

func redirect(cfg types.Config, leader types.NodeID) reconfig.SubmitResult {
	return reconfig.SubmitResult{Status: reconfig.SubmitRedirect, Config: cfg, Leader: leader}
}

func TestClientSubmitHappyPath(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg := types.MustConfig(1, "n1")
	newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		return applied([]byte("reply:"+string(cmd.Data)), cfg, "n1")
	})
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"n1"}, Options{})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := c.Submit(ctx, []byte("op"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "reply:op" {
		t.Fatalf("reply %q", reply)
	}
	if c.KnownConfig().ID != 1 {
		t.Fatalf("config not cached: %v", c.KnownConfig())
	}
	if st := c.Stats(); st.Submits != 1 || st.Attempts < 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClientFollowsRedirectChain(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg1 := types.MustConfig(1, "n1")
	cfg2 := types.MustConfig(2, "n2")
	newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		return redirect(cfg2, "n2") // n1 was retired
	})
	n2 := newFakeNode(t, net, "n2", func(cmd types.Command) reconfig.SubmitResult {
		return applied([]byte("ok"), cfg2, "n2")
	})
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"n1"}, Options{})
	defer c.Close()
	_ = cfg1

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := c.Submit(ctx, []byte("x"))
	if err != nil || string(reply) != "ok" {
		t.Fatalf("%q %v", reply, err)
	}
	if c.KnownConfig().ID != 2 {
		t.Fatalf("client did not adopt redirect: %v", c.KnownConfig())
	}
	if c.Stats().Redirects == 0 {
		t.Fatal("redirect not counted")
	}
	if n2.submits.Load() == 0 {
		t.Fatal("redirect target never contacted")
	}
}

func TestClientIgnoresStaleConfigHint(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	cfg3 := types.MustConfig(3, "n1")
	cfg2 := types.MustConfig(2, "nOld")
	newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		// Reply carries an OLDER config hint than the client knows.
		return applied([]byte("ok"), cfg2, "")
	})
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"n1"}, Options{})
	defer c.Close()
	c.observe(cfg3, "")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Submit(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.KnownConfig().ID != 3 {
		t.Fatalf("client regressed to stale config: %v", c.KnownConfig())
	}
}

func TestClientRetriesThroughDeadSeed(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	// "dead" is registered but never answers; "live" applies.
	net.Endpoint("dead")
	newFakeNode(t, net, "live", func(cmd types.Command) reconfig.SubmitResult {
		return applied([]byte("ok"), types.MustConfig(1, "live"), "live")
	})
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"dead", "live"}, Options{
		AttemptTimeout: 50 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := c.Submit(ctx, []byte("x"))
	if err != nil || string(reply) != "ok" {
		t.Fatalf("%q %v", reply, err)
	}
}

func TestClientNoSeeds(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	c := New("c1", net.Endpoint("c1"), nil, Options{})
	defer c.Close()
	if _, err := c.Submit(context.Background(), []byte("x")); err == nil {
		t.Fatal("submit with no seeds succeeded")
	}
}

func TestClientContextCancel(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	net.Endpoint("mute") // never answers
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"mute"}, Options{
		AttemptTimeout: 20 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(ctx, []byte("x")); err == nil {
		t.Fatal("submit against mute node succeeded")
	}
}

func TestClientSeqMonotonic(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	var seqs []uint64
	newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		seqs = append(seqs, cmd.Seq)
		return applied(nil, types.MustConfig(1, "n1"), "n1")
	})
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"n1"}, Options{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(ctx, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence numbers not increasing: %v", seqs)
		}
	}
}

func TestClientRecordsHistory(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		return applied([]byte("reply"), types.MustConfig(1, "n1"), "n1")
	})
	rec := history.New()
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"n1"}, Options{Recorder: rec})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Submit(ctx, []byte("op")); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) != 1 {
		t.Fatalf("want 1 recorded op, got %d", len(ops))
	}
	op := ops[0]
	if op.Outcome != history.OutcomeOk || string(op.Output) != "reply" ||
		string(op.Input) != "op" || op.Client != "c1" {
		t.Fatalf("recorded op: %+v", op)
	}
}

// A timed-out submit is AMBIGUOUS — the command may have been delivered and
// applied even though no acknowledgment came back — so the recorder must get
// Info, never Fail.
func TestClientRecordsTimeoutAsInfo(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	net.Endpoint("mute") // registered, receives, never answers
	rec := history.New()
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"mute"}, Options{
		Recorder:       rec,
		AttemptTimeout: 20 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(ctx, []byte("x")); err == nil {
		t.Fatal("submit against mute node succeeded")
	}
	_, infoN, failN := rec.Counts()
	if infoN != 1 || failN != 0 {
		t.Fatalf("timeout must record info, not fail: info=%d fail=%d", infoN, failN)
	}
}

// A submit that never had a node to talk to certainly did not execute: Fail.
func TestClientRecordsNoSeedsAsFail(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	rec := history.New()
	c := New("c1", net.Endpoint("c1"), nil, Options{Recorder: rec})
	defer c.Close()
	if _, err := c.Submit(context.Background(), []byte("x")); err == nil {
		t.Fatal("submit with no seeds succeeded")
	}
	_, infoN, failN := rec.Counts()
	if failN != 1 || infoN != 0 {
		t.Fatalf("unsent op must record fail: info=%d fail=%d", infoN, failN)
	}
}

// Retrying the same seq after a timeout must merge into one logical op.
func TestClientRetryMergesIntoOneOp(t *testing.T) {
	net := transport.NewNetwork(transport.Options{})
	defer net.Close()
	newFakeNode(t, net, "n1", func(cmd types.Command) reconfig.SubmitResult {
		return applied([]byte("ok"), types.MustConfig(1, "n1"), "n1")
	})
	rec := history.New()
	c := New("c1", net.Endpoint("c1"), []types.NodeID{"n1"}, Options{Recorder: rec})
	defer c.Close()

	// First attempt: impossible deadline, times out -> info.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	_, err := c.SubmitSeq(ctx, 1, []byte("op"))
	cancel()
	if err == nil {
		t.Fatal("nanosecond deadline succeeded")
	}
	// Retry of the SAME seq succeeds; the recorder must show one ok op.
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.SubmitSeq(ctx, 1, []byte("op")); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Fatalf("retry created a second op: %d", rec.Len())
	}
	okN, infoN, _ := rec.Counts()
	if okN != 1 || infoN != 0 {
		t.Fatalf("merged op counts: ok=%d info=%d", okN, infoN)
	}
}
