package storage

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkStorageBackends compares the persistence backends on the acceptor
// hot-path workload: concurrent writers each durably persisting slot records
// (sync mode: the write must be on disk before Set returns). This is where
// group commit shows up — FileStore pays one fsync per write, the WAL
// coalesces all concurrent writers into ~one fsync per batch.
//
//	go test ./internal/storage/ -bench StorageBackends -benchtime 2s
func BenchmarkStorageBackends(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 64) // ~ an encoded accept record
	backends := []struct {
		name string
		open func(b *testing.B) Store
	}{
		{"file-sync", func(b *testing.B) Store {
			s, err := OpenFile(b.TempDir(), FileOptions{SyncWrites: true})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			return s
		}},
		{"wal-sync", func(b *testing.B) Store {
			s, err := OpenWALStore(b.TempDir(), WALStoreOptions{SyncWrites: true})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = s.Close() })
			return s
		}},
		{"wal-nosync", func(b *testing.B) Store {
			s, err := OpenWALStore(b.TempDir(), WALStoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = s.Close() })
			return s
		}},
	}
	for _, backend := range backends {
		for _, writers := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/writers=%d", backend.name, writers), func(b *testing.B) {
				s := backend.open(b)
				benchSlotWrites(b, s, writers, payload)
			})
		}
	}
}

// benchSlotWrites spreads b.N slot persists over the given number of
// concurrent writers, like independent Paxos instances sharing one disk.
func benchSlotWrites(b *testing.B, s Store, writers int, payload []byte) {
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prefix := fmt.Sprintf("r%d/acc/", g)
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if err := s.Set(SlotKey(prefix, uint64(i)), payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkWALStoreAppend isolates the record-encode + buffer path of a
// WALStore write (no fsync): the per-record allocation behavior of the
// mutation codec shows up directly in allocs/op.
//
//	go test ./internal/storage/ -bench WALStoreAppend -benchmem
func BenchmarkWALStoreAppend(b *testing.B) {
	value := bytes.Repeat([]byte{0xab}, 128)
	s, err := OpenWALStore(b.TempDir(), WALStoreOptions{CompactBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench/slot/%06d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Set(keys[i%len(keys)], value); err != nil {
			b.Fatal(err)
		}
	}
}
