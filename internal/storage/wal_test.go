package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// collectReplay returns a replay func appending (lsn, payload) pairs.
func collectReplay(lsns *[]uint64, payloads *[][]byte) func(uint64, []byte) error {
	return func(lsn uint64, payload []byte) error {
		*lsns = append(*lsns, lsn)
		cp := make([]byte, len(payload))
		copy(cp, payload)
		*payloads = append(*payloads, cp)
		return nil
	}
}

func TestWALAppendSyncReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	var last uint64
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		last, err = w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if last != uint64(i+1) {
			t.Fatalf("lsn %d for record %d", last, i)
		}
	}
	if err := w.Sync(last); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got != last {
		t.Fatalf("durable %d, want %d", got, last)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var lsns []uint64
	var got [][]byte
	w2, err := OpenWAL(dir, WALOptions{}, collectReplay(&lsns, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if lsns[i] != uint64(i+1) || !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: lsn %d payload %q", i, lsns[i], got[i])
		}
	}
	if w2.LastLSN() != last {
		t.Fatalf("reopened last LSN %d, want %d", w2.LastLSN(), last)
	}
}

// TestWALTornTail simulates a crash mid-append by truncating the segment at
// every possible byte offset. For each cut the reopen must (a) replay exactly
// the records whose frames lie wholly before the cut, in order, and (b) leave
// the log appendable.
func TestWALTornTail(t *testing.T) {
	// Build a reference log once to learn the on-disk layout.
	refDir := t.TempDir()
	w, err := OpenWAL(refDir, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	var last uint64
	for i := 0; i < 12; i++ {
		p := []byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", i)))
		payloads = append(payloads, p)
		if last, err = w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(last); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segName := fmt.Sprintf("%s%016x%s", walSegPrefix, 1, walSegSuffix)
	full, err := os.ReadFile(filepath.Join(refDir, segName))
	if err != nil {
		t.Fatal(err)
	}
	// Frame end offsets: ends[i] is the file offset just past record i.
	ends := []int{len(walMagic)}
	for _, p := range payloads {
		frame := appendWALRecord(nil, p)
		ends = append(ends, ends[len(ends)-1]+len(frame))
	}
	if ends[len(ends)-1] != len(full) {
		t.Fatalf("layout mismatch: computed %d bytes, file has %d", ends[len(ends)-1], len(full))
	}

	for cut := len(walMagic); cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for wantN+1 < len(ends) && ends[wantN+1] <= cut {
			wantN++
		}
		var lsns []uint64
		var got [][]byte
		w2, err := OpenWAL(dir, WALOptions{}, collectReplay(&lsns, &got))
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < wantN; i++ {
			if lsns[i] != uint64(i+1) || !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut=%d: record %d corrupted: lsn %d payload %q", cut, i, lsns[i], got[i])
			}
		}
		// The log must accept appends after tail truncation.
		lsn, err := w2.Append([]byte("after-crash"))
		if err != nil {
			t.Fatalf("cut=%d: append after reopen: %v", cut, err)
		}
		if lsn != uint64(wantN+1) {
			t.Fatalf("cut=%d: post-crash lsn %d, want %d", cut, lsn, wantN+1)
		}
		if err := w2.Sync(lsn); err != nil {
			t.Fatalf("cut=%d: sync after reopen: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := w.Sync(lsn); err != nil {
					errs <- err
					return
				}
				if w.DurableLSN() < lsn {
					errs <- fmt.Errorf("sync returned with durable %d < lsn %d", w.DurableLSN(), lsn)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := int64(writers * perWriter)
	if w.Appends() != total {
		t.Fatalf("appends %d, want %d", w.Appends(), total)
	}
	if w.DurableLSN() != uint64(total) {
		t.Fatalf("durable %d, want %d", w.DurableLSN(), total)
	}
	if w.Syncs() > total {
		t.Fatalf("syncs %d exceeds appends %d", w.Syncs(), total)
	}
	t.Logf("group commit: %d appends in %d fsyncs", total, w.Syncs())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	var got [][]byte
	w2, err := OpenWAL(dir, WALOptions{}, collectReplay(&lsns, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if int64(len(got)) != total {
		t.Fatalf("replayed %d records, want %d", len(got), total)
	}
}

// TestWALBatchedSyncCoalesces checks the deterministic half of group commit:
// one Sync covers every record appended before it.
func TestWALBatchedSyncCoalesces(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	var last uint64
	for i := 0; i < 100; i++ {
		if last, err = w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Syncs()
	if err := w.Sync(last); err != nil {
		t.Fatal(err)
	}
	if got := w.Syncs() - before; got != 1 {
		t.Fatalf("100 appends took %d fsyncs, want 1", got)
	}
	// All covered: syncing an older LSN is free.
	if err := w.Sync(1); err != nil {
		t.Fatal(err)
	}
	if got := w.Syncs() - before; got != 1 {
		t.Fatalf("redundant sync hit the disk (%d fsyncs)", got)
	}
}

func TestWALSegmentRollAndCompact(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 30; i++ {
		if last, err = w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(last); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >=3 segments at 64B roll size, got %d", len(segs))
	}
	if w.SealedBytes() == 0 {
		t.Fatal("sealed bytes should be nonzero")
	}

	// Compact through the middle: only segments wholly <= watermark go.
	mid := uint64(15)
	if err := w.Compact(mid); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	var got [][]byte
	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 64}, collectReplay(&lsns, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if len(lsns) == 0 {
		t.Fatal("no records survived compaction")
	}
	// Everything above the watermark must survive, with correct LSNs.
	if lsns[0] > mid+1 {
		t.Fatalf("first surviving LSN %d leaves a gap above watermark %d", lsns[0], mid)
	}
	if lsns[len(lsns)-1] != last {
		t.Fatalf("last surviving LSN %d, want %d", lsns[len(lsns)-1], last)
	}
	for i, lsn := range lsns {
		want := fmt.Sprintf("record-%02d", lsn-1)
		if string(got[i]) != want {
			t.Fatalf("lsn %d: payload %q, want %q", lsn, got[i], want)
		}
	}
	if w2.LastLSN() != last {
		t.Fatalf("reopened last LSN %d, want %d", w2.LastLSN(), last)
	}
}

func TestWALCorruptionInSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 30; i++ {
		if last, err = w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(last); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(segs))
	}
	// Flip a payload byte in the FIRST (sealed) segment: that is corruption,
	// not a torn tail, and open must refuse rather than silently drop data.
	path := segPath(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, WALOptions{}, nil); err == nil {
		t.Fatal("open accepted a corrupt sealed segment")
	}
}

func TestWALCloseMakesTailDurable(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil { // no Sync: Close must flush+fsync
		t.Fatal(err)
	}
	if _, err := w.Append(nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := w.Sync(99); err == nil {
		t.Fatal("sync of unappended lsn after close succeeded")
	}
	var lsns []uint64
	var got [][]byte
	w2, err := OpenWAL(dir, WALOptions{}, collectReplay(&lsns, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
}
