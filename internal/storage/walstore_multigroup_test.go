package storage

import (
	"fmt"
	"os"
	"testing"
)

// These tests cover the multi-group sharing contract: N prefixed views
// (one per RSM group) write interleaved records into ONE WALStore, and
// recovery must demultiplex them by key prefix with no cross-group loss,
// no cross-group leakage, and no double-apply after checkpoint compaction.

// groupViews opens nGroups prefixed views (group IDs 1..nGroups) over s.
func groupViews(s *WALStore, nGroups int) []Store {
	views := make([]Store, nGroups)
	for g := range views {
		views[g] = WithPrefix(s, GroupPrefix(uint64(g+1)))
	}
	return views
}

// TestWALStoreMultiGroupInterleavedRecovery: interleaved group-tagged
// records all survive a clean close/reopen, each visible only to its own
// group's view.
func TestWALStoreMultiGroupInterleavedRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTestWALStore(t, dir, WALStoreOptions{})
	const nGroups, perGroup = 4, 25
	views := groupViews(s, nGroups)
	// Interleave: one record per group per round, same logical keys in every
	// group so any prefix mixup shows up as a wrong value.
	for i := 0; i < perGroup; i++ {
		for g, v := range views {
			if err := v.Set(fmt.Sprintf("slot-%03d", i), []byte(fmt.Sprintf("g%d-i%d", g+1, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestWALStore(t, dir, WALStoreOptions{})
	defer func() { _ = s2.Close() }()
	for g, v := range groupViews(s2, nGroups) {
		kvs, err := v.Scan("slot-")
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != perGroup {
			t.Fatalf("group %d recovered %d records, want %d", g+1, len(kvs), perGroup)
		}
		for i, kv := range kvs {
			want := fmt.Sprintf("g%d-i%d", g+1, i)
			if string(kv.Value) != want {
				t.Fatalf("group %d %s = %q, want %q (cross-group leak)", g+1, kv.Key, kv.Value, want)
			}
		}
	}
}

// TestWALStoreMultiGroupTornTail: a torn tail after interleaved synced
// writes truncates at the corruption point only — every group's synced
// records survive, and no group sees another's keys.
func TestWALStoreMultiGroupTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTestWALStore(t, dir, WALStoreOptions{SyncWrites: true})
	const nGroups, perGroup = 3, 10
	views := groupViews(s, nGroups)
	for i := 0; i < perGroup; i++ {
		for g, v := range views {
			if err := v.Set(fmt.Sprintf("durable-%d", i), []byte(fmt.Sprintf("g%d", g+1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segPath(dir, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x17, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestWALStore(t, dir, WALStoreOptions{SyncWrites: true})
	defer func() { _ = s2.Close() }()
	for g, v := range groupViews(s2, nGroups) {
		kvs, err := v.Scan("durable-")
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != perGroup {
			t.Fatalf("group %d: %d records after torn tail, want %d", g+1, len(kvs), perGroup)
		}
		for _, kv := range kvs {
			if string(kv.Value) != fmt.Sprintf("g%d", g+1) {
				t.Fatalf("group %d key %s holds %q", g+1, kv.Key, kv.Value)
			}
		}
	}
}

// TestWALStoreMultiGroupCheckpointCompaction: checkpoint compaction over a
// log holding several groups' records preserves each group's latest state
// exactly once — overwrites compact away per group, deletes stay deleted,
// and post-checkpoint tail writes replay on top without double-apply.
func TestWALStoreMultiGroupCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTestWALStore(t, dir, WALStoreOptions{SegmentBytes: 256, CompactBytes: -1})
	const nGroups = 3
	views := groupViews(s, nGroups)
	// Churn the same 10 keys per group across many rounds so compaction has
	// garbage to drop in every group's namespace.
	for round := 0; round < 30; round++ {
		for g, v := range views {
			if err := v.Set(fmt.Sprintf("key-%d", round%10), []byte(fmt.Sprintf("g%d-r%d", g+1, round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Group 2 deletes one key; the tombstone must survive compaction.
	if err := views[1].Delete("key-3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail writes, one per group.
	for g, v := range views {
		if err := v.Set("post-ckpt", []byte(fmt.Sprintf("tail-g%d", g+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestWALStore(t, dir, WALStoreOptions{})
	defer func() { _ = s2.Close() }()
	for g, v := range groupViews(s2, nGroups) {
		kvs, err := v.Scan("key-")
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := 10
		if g == 1 {
			wantKeys = 9 // key-3 deleted
		}
		if len(kvs) != wantKeys {
			t.Fatalf("group %d recovered %d keys, want %d", g+1, len(kvs), wantKeys)
		}
		for _, kv := range kvs {
			var round int
			if _, err := fmt.Sscanf(kv.Key, "key-%d", &round); err != nil {
				t.Fatalf("group %d unexpected key %q", g+1, kv.Key)
			}
			// Latest write to key-k happened in round 20+k.
			want := fmt.Sprintf("g%d-r%d", g+1, 20+round)
			if string(kv.Value) != want {
				t.Fatalf("group %d %s = %q, want %q", g+1, kv.Key, kv.Value, want)
			}
		}
		if g == 1 {
			if _, ok, _ := v.Get("key-3"); ok {
				t.Fatal("group 2 delete resurrected by compaction")
			}
		}
		val, ok, _ := v.Get("post-ckpt")
		if !ok || string(val) != fmt.Sprintf("tail-g%d", g+1) {
			t.Fatalf("group %d post-checkpoint tail = %q %v", g+1, val, ok)
		}
	}
}
