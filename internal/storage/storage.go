// Package storage provides per-node stable storage for the replication
// stack: Paxos acceptor state, decided-log entries, configuration-chain
// records and snapshots all live here.
//
// The only implementation is an in-memory store with crash semantics: writes
// go to a dirty buffer and reach "disk" on Sync (or immediately when
// AutoSync is on, the default). Crash discards the dirty buffer, modeling a
// process that dies before fsync. A store survives node restarts — the
// cluster layer keeps it across crash/recover cycles — which is exactly what
// a file on disk would do, without the I/O nondeterminism.
//
// An optional write latency models fsync cost so experiments can charge
// durability realistically.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// KV is one key/value pair returned by Scan.
type KV struct {
	Key   string
	Value []byte
}

// Store is the durable key/value interface the protocol layers write to.
// Keys are arbitrary strings; Scan iterates a prefix in sorted key order.
type Store interface {
	// Set durably writes key=value (subject to the sync mode).
	Set(key string, value []byte) error
	// Get returns the value for key and whether it exists.
	Get(key string) ([]byte, bool, error)
	// Delete removes key if present.
	Delete(key string) error
	// Scan returns all pairs whose key starts with prefix, sorted by key.
	Scan(prefix string) ([]KV, error)
	// Sync flushes buffered writes to stable state.
	Sync() error
}

// ErrStoreClosed is returned by operations on a closed store.
var ErrStoreClosed = errors.New("storage: closed")

// BufferedStore is implemented by stores that can stage a write without the
// per-call durability wait, making the next Sync the durability barrier.
// Callers that batch many writes per fsync — the Paxos event loop's group
// commit — probe for it with a type assertion and fall back to plain Set.
type BufferedStore interface {
	Store
	// SetBuffered writes key=value visibly (read-your-writes, like an OS
	// page cache) but possibly non-durably, regardless of the store's sync
	// mode; the write reaches stable state on the next Sync.
	SetBuffered(key string, value []byte) error
}

// MemOptions configures a MemStore.
type MemOptions struct {
	// AutoSync makes every write immediately stable (default behaviour
	// when constructing with NewMem()).
	AutoSync bool
	// WriteLatency is charged on every Set/Delete, modeling device cost.
	WriteLatency time.Duration
	// SyncLatency is charged on every Sync (and every write if AutoSync).
	SyncLatency time.Duration
}

// MemStore is the in-memory Store implementation with crash modeling.
type MemStore struct {
	opts MemOptions

	mu     sync.Mutex
	stable map[string][]byte
	dirty  map[string]*[]byte // nil slot value = pending delete
	closed bool

	writes int64
	syncs  int64
}

var _ BufferedStore = (*MemStore)(nil)

// NewMem returns a store where every write is immediately stable.
func NewMem() *MemStore {
	return NewMemWithOptions(MemOptions{AutoSync: true})
}

// NewMemWithOptions returns a store with explicit options.
func NewMemWithOptions(opts MemOptions) *MemStore {
	return &MemStore{
		opts:   opts,
		stable: make(map[string][]byte),
		dirty:  make(map[string]*[]byte),
	}
}

// Set implements Store.
func (s *MemStore) Set(key string, value []byte) error {
	if s.opts.WriteLatency > 0 {
		time.Sleep(s.opts.WriteLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.writes++
	if s.opts.AutoSync {
		s.stable[key] = cp
		s.syncs++
		lat := s.opts.SyncLatency
		if lat > 0 {
			s.mu.Unlock()
			time.Sleep(lat)
			s.mu.Lock()
		}
		return nil
	}
	v := cp
	s.dirty[key] = &v
	return nil
}

// SetBuffered implements BufferedStore: the write is staged in the dirty
// buffer even with AutoSync on, and becomes stable on the next Sync.
func (s *MemStore) SetBuffered(key string, value []byte) error {
	if s.opts.WriteLatency > 0 {
		time.Sleep(s.opts.WriteLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	cp := clone(value)
	s.writes++
	s.dirty[key] = &cp
	return nil
}

// Get implements Store. It reads through the dirty buffer so a writer sees
// its own un-synced writes (like an OS page cache).
func (s *MemStore) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrStoreClosed
	}
	if p, ok := s.dirty[key]; ok {
		if *p == nil {
			return nil, false, nil
		}
		return clone(*p), true, nil
	}
	v, ok := s.stable[key]
	if !ok {
		return nil, false, nil
	}
	return clone(v), true, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	if s.opts.WriteLatency > 0 {
		time.Sleep(s.opts.WriteLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	s.writes++
	if s.opts.AutoSync {
		delete(s.stable, key)
		return nil
	}
	var nilv []byte
	s.dirty[key] = &nilv
	return nil
}

// Scan implements Store.
func (s *MemStore) Scan(prefix string) ([]KV, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStoreClosed
	}
	merged := make(map[string][]byte)
	for k, v := range s.stable {
		if strings.HasPrefix(k, prefix) {
			merged[k] = v
		}
	}
	for k, p := range s.dirty {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if *p == nil {
			delete(merged, k)
		} else {
			merged[k] = *p
		}
	}
	out := make([]KV, 0, len(merged))
	for k, v := range merged {
		out = append(out, KV{Key: k, Value: clone(v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Sync implements Store: dirty writes become stable.
func (s *MemStore) Sync() error {
	if s.opts.SyncLatency > 0 {
		time.Sleep(s.opts.SyncLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	for k, p := range s.dirty {
		if *p == nil {
			delete(s.stable, k)
		} else {
			s.stable[k] = *p
		}
	}
	s.dirty = make(map[string]*[]byte)
	s.syncs++
	return nil
}

// Crash discards all un-synced writes, modeling a power failure. The store
// remains usable (a restarted process reopens the same "disk").
func (s *MemStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty = make(map[string]*[]byte)
}

// Close marks the store closed; all subsequent operations fail.
func (s *MemStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Writes returns the number of write operations issued, for cost accounting.
func (s *MemStore) Writes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// Syncs returns the number of sync (stable-write) operations performed.
func (s *MemStore) Syncs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// Len returns the number of stable keys (dirty buffer excluded).
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stable)
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// SlotKey renders a log-slot key under prefix with fixed-width zero padding
// so lexicographic order equals numeric order.
func SlotKey(prefix string, slot uint64) string {
	return fmt.Sprintf("%s%020d", prefix, slot)
}
